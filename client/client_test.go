package client

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"attache"
	"attache/internal/core"
	"attache/internal/serve"
	"attache/internal/shard"
)

func testLine(fill byte) []byte {
	line := make([]byte, attache.LineSize)
	for i := range line {
		line[i] = fill
	}
	return line
}

// fastOpts are test backoffs so retries resolve in milliseconds.
func fastOpts(extra ...Option) []Option {
	opts := []Option{WithBackoff(time.Millisecond, 4*time.Millisecond), WithJitterSeed(1)}
	return append(opts, extra...)
}

// newDaemon spins a real engine + serve handler behind httptest.
func newDaemon(t *testing.T, cfg shard.Config) (*httptest.Server, *shard.Engine) {
	t.Helper()
	eng, err := shard.New(core.DefaultOptions(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	ts := httptest.NewServer(serve.New(eng, serve.Config{}).Handler())
	t.Cleanup(ts.Close)
	return ts, eng
}

// TestRoundTripAgainstRealDaemon covers the happy paths end to end:
// write, read, batch with per-op sentinel mapping, stats, health.
func TestRoundTripAgainstRealDaemon(t *testing.T) {
	ts, _ := newDaemon(t, shard.Config{Shards: 2})
	c := New(ts.URL, fastOpts()...)
	ctx := context.Background()

	if err := c.Write(ctx, 42, testLine(7)); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := c.Read(ctx, 42)
	if err != nil || !bytes.Equal(got, testLine(7)) {
		t.Fatalf("read back: %v", err)
	}
	if _, err := c.Read(ctx, 999); !errors.Is(err, attache.ErrNeverWritten) {
		t.Fatalf("read missing err = %v, want ErrNeverWritten", err)
	}

	res, err := c.Do(ctx, []attache.Op{
		{Write: true, Addr: 1, Data: testLine(1)},
		{Addr: 1},
		{Addr: 777}, // never written
		{Write: true, Addr: 2, Data: []byte("short")}, // bad size
	})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if res[0].Err != nil || res[1].Err != nil || !bytes.Equal(res[1].Data, testLine(1)) {
		t.Fatalf("batch ops 0/1: %v %v", res[0].Err, res[1].Err)
	}
	if !errors.Is(res[2].Err, attache.ErrNeverWritten) {
		t.Fatalf("batch op2 err = %v, want ErrNeverWritten", res[2].Err)
	}
	if !errors.Is(res[3].Err, attache.ErrBadLineSize) {
		t.Fatalf("batch op3 err = %v, want ErrBadLineSize", res[3].Err)
	}

	snap, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if snap.Total.Writes != 2 || snap.Total.Reads != 2 {
		t.Fatalf("stats snapshot off: %+v", snap.Total)
	}
	if err := c.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}
}

// TestRetriesOverloadedThenSucceeds pins the retry loop: two 429s (with
// Retry-After) and then success, all inside one client call.
func TestRetriesOverloadedThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"overloaded"}`)
			return
		}
		fmt.Fprintf(w, `{"addr":5,"ok":true}`)
	}))
	defer ts.Close()

	c := New(ts.URL, fastOpts()...)
	if err := c.Write(context.Background(), 5, testLine(1)); err != nil {
		t.Fatalf("write should have survived two 429s: %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3 (2 retries)", calls.Load())
	}
}

// TestRetriesExhausted pins the give-up path and sentinel mapping: a
// server that always sheds yields ErrOverloaded after MaxRetries+1 tries.
func TestRetriesExhausted(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	c := New(ts.URL, fastOpts(WithMaxRetries(2))...)
	err := c.Write(context.Background(), 1, testLine(1))
	if !errors.Is(err, attache.ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
}

// TestDeadlineBudget pins that retries respect the budget: against a
// permanently overloaded server, the call returns once the budget is
// spent — well before the retries alone would finish — and the error
// carries both the deadline and the last server failure.
func TestDeadlineBudget(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1") // would force 1s sleeps
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	c := New(ts.URL, fastOpts(WithMaxRetries(10), WithDeadlineBudget(50*time.Millisecond))...)
	start := time.Now()
	err := c.Write(context.Background(), 1, testLine(1))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("budgeted call against a dead server must fail")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded in chain", err)
	}
	if !errors.Is(err, attache.ErrOverloaded) {
		t.Fatalf("err = %v, want last server error (ErrOverloaded) in chain", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("budgeted call took %v, budget was 50ms", elapsed)
	}
}

// TestCallerDeadlineWins: an explicit context deadline is not overridden
// by the budget and cancels in-flight waits.
func TestCallerDeadlineWins(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // hang until the test ends
	}))
	defer ts.Close()
	defer close(release)

	c := New(ts.URL, fastOpts(WithDeadlineBudget(time.Hour))...)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := c.Read(ctx, 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// TestShedMapsToOverloaded drives a saturated daemon through the client
// with retries disabled: the 429 surfaces as ErrOverloaded.
func TestShedMapsToOverloaded(t *testing.T) {
	ts, eng := newDaemon(t, shard.Config{
		Shards:     1,
		QueueDepth: 1,
		Faults:     shard.FaultPlan{Seed: 4, DelayP: 1, Delay: 50 * time.Millisecond},
	})
	// Saturate: one op executing (slow), one parked in the 1-deep queue.
	go eng.Do([]attache.Op{{Write: true, Addr: 1, Data: testLine(1)}})
	time.Sleep(10 * time.Millisecond)
	go eng.Do([]attache.Op{{Write: true, Addr: 2, Data: testLine(2)}})
	time.Sleep(10 * time.Millisecond)

	c := New(ts.URL, fastOpts(WithMaxRetries(0))...)
	_, err := c.Read(context.Background(), 1)
	if !errors.Is(err, attache.ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
}

func TestParseRetryAfter(t *testing.T) {
	for h, want := range map[string]time.Duration{
		"":    0,
		"0":   0,
		"2":   2 * time.Second,
		"-1":  0,
		"abc": 0,
	} {
		if got := parseRetryAfter(h); got != want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", h, got, want)
		}
	}
}
