package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"attache"
	"attache/internal/obs"
	"attache/internal/serve"
)

// TestTraceRoundTripThroughClient is the acceptance path for the
// observability layer: a request sent through the client with tracing
// on returns a trace ID whose /v1/trace/{id} timeline shows all four
// pipeline stages with the queue-wait + service-time decomposition —
// trace ID surviving engine → HTTP → client and back.
func TestTraceRoundTripThroughClient(t *testing.T) {
	o := attache.NewObserver(attache.ObserverConfig{Seed: 1})
	eng, err := attache.NewEngine(attache.WithShards(2), attache.WithObserver(o))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv := httptest.NewServer(serve.New(eng, serve.Config{Obs: o}).Handler())
	defer srv.Close()

	c := New(srv.URL)
	ctx, id := ContextWithTrace(context.Background())
	if id == "" {
		t.Fatal("ContextWithTrace returned an empty ID")
	}
	line := make([]byte, attache.LineSize)
	for i := range line {
		line[i] = byte(i)
	}
	if err := c.Write(ctx, 42, line); err != nil {
		t.Fatal(err)
	}

	tl, err := c.Trace(context.Background(), id)
	if err != nil {
		t.Fatalf("Trace(%s): %v", id, err)
	}
	if tl.TraceID != id {
		t.Fatalf("timeline ID %s, want %s (the client-assigned one)", tl.TraceID, id)
	}
	stages := make(map[string]bool)
	for _, ev := range tl.Events {
		stages[ev.Stage] = true
	}
	for _, want := range []string{"enqueue", "dequeue", "execute", "respond"} {
		if !stages[want] {
			t.Fatalf("timeline missing stage %q: %+v", want, tl.Events)
		}
	}
	if tl.ServiceNanos <= 0 || tl.TotalNanos < tl.ServiceNanos || tl.QueueWaitNanos < 0 {
		t.Fatalf("decomposition inconsistent: wait %d, service %d, total %d ns",
			tl.QueueWaitNanos, tl.ServiceNanos, tl.TotalNanos)
	}

	// A second traced call reuses nothing: distinct ID, distinct timeline.
	ctx2, id2 := ContextWithTrace(context.Background())
	if id2 == id {
		t.Fatalf("ContextWithTrace reissued ID %s", id)
	}
	if _, err := c.Read(ctx2, 42); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Trace(context.Background(), id2); err != nil {
		t.Fatalf("Trace(%s) after read: %v", id2, err)
	}
}

// TestClientSendsTraceHeader pins the wire format: the header goes out
// only when the context carries an ID, and carries it verbatim.
func TestClientSendsTraceHeader(t *testing.T) {
	var got []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = append(got, r.Header.Get(obs.TraceHeader))
	}))
	defer srv.Close()

	c := New(srv.URL, WithMaxRetries(0))
	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx := ContextWithTraceID(context.Background(), "00000000000000ab")
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "" || got[1] != "00000000000000ab" {
		t.Fatalf("trace headers seen = %q, want [\"\", \"00000000000000ab\"]", got)
	}
}
