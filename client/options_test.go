package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"attache/internal/obs"
	"attache/internal/shard"
)

// TestNewFromConfigEquivalence proves the deprecated struct constructor
// is a pure shim: for every knob, NewFromConfig yields a client with the
// same resolved settings as New with the matching functional option.
func TestNewFromConfigEquivalence(t *testing.T) {
	hc := &http.Client{Timeout: 3 * time.Second}
	cases := []struct {
		name string
		cfg  Config
		opts []Option
	}{
		{name: "zero config = all defaults"},
		{
			name: "every knob set",
			cfg: Config{
				HTTPClient:     hc,
				MaxRetries:     7,
				BackoffBase:    5 * time.Millisecond,
				BackoffMax:     80 * time.Millisecond,
				DeadlineBudget: 250 * time.Millisecond,
				Tenant:         "acme",
				TraceHeader:    "X-Proxy-Trace",
				JitterSeed:     42,
			},
			opts: []Option{
				WithHTTPClient(hc),
				WithRetry(7),
				WithBackoff(5*time.Millisecond, 80*time.Millisecond),
				WithDeadlineBudget(250 * time.Millisecond),
				WithTenant("acme"),
				WithTraceHeader("X-Proxy-Trace"),
				WithJitterSeed(42),
			},
		},
		{
			name: "partial backoff fills the other default",
			cfg:  Config{BackoffBase: 9 * time.Millisecond},
			opts: []Option{WithBackoff(9*time.Millisecond, 2*time.Second)},
		},
		{
			name: "negative MaxRetries disables retries",
			cfg:  Config{MaxRetries: -1},
			opts: []Option{WithRetry(0)},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := NewFromConfig("http://daemon:8080/", tc.cfg)
			want := New("http://daemon:8080/", tc.opts...)
			if got.base != want.base {
				t.Errorf("base = %q, want %q", got.base, want.base)
			}
			if tc.cfg.HTTPClient != nil && got.hc != want.hc {
				t.Errorf("http client = %p, want %p", got.hc, want.hc)
			}
			if got.maxRetries != want.maxRetries {
				t.Errorf("maxRetries = %d, want %d", got.maxRetries, want.maxRetries)
			}
			if got.baseBackoff != want.baseBackoff || got.maxBackoff != want.maxBackoff {
				t.Errorf("backoff = (%v,%v), want (%v,%v)", got.baseBackoff, got.maxBackoff, want.baseBackoff, want.maxBackoff)
			}
			if got.budget != want.budget {
				t.Errorf("budget = %v, want %v", got.budget, want.budget)
			}
			if got.tenant != want.tenant {
				t.Errorf("tenant = %q, want %q", got.tenant, want.tenant)
			}
			if got.traceHeader != want.traceHeader {
				t.Errorf("traceHeader = %q, want %q", got.traceHeader, want.traceHeader)
			}
		})
	}
}

// TestTenantHeaderSent pins the tenancy plumbing on the wire: WithTenant
// stamps every request, ContextWithTenant overrides per call, and a bare
// client sends no tenant header at all.
func TestTenantHeaderSent(t *testing.T) {
	var (
		mu   sync.Mutex
		seen []string
	)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen = append(seen, r.Header.Get(obs.TenantHeader))
		mu.Unlock()
		w.Write([]byte(`{"addr":1,"ok":true}`))
	}))
	defer ts.Close()

	ctx := context.Background()
	if err := New(ts.URL, fastOpts()...).Write(ctx, 1, testLine(1)); err != nil {
		t.Fatal(err)
	}
	c := New(ts.URL, fastOpts(WithTenant("acme"))...)
	if err := c.Write(ctx, 1, testLine(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(ContextWithTenant(ctx, "globex"), 1, testLine(1)); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	want := []string{"", "acme", "globex"}
	for i, w := range want {
		if seen[i] != w {
			t.Errorf("request %d tenant header = %q, want %q", i, seen[i], w)
		}
	}
}

// TestStatsV2RoundTrip drives the versioned stats surface end to end
// against a real daemon: v2 is the default schema and carries the
// cluster section; Stats() keeps decoding the pinned v1 shape.
func TestStatsV2RoundTrip(t *testing.T) {
	ts, _ := newDaemon(t, shard.Config{Shards: 2})
	c := New(ts.URL, fastOpts(WithTenant("acme"))...)
	ctx := context.Background()

	if err := c.Write(ctx, 3, testLine(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(ctx, 3); err != nil {
		t.Fatal(err)
	}

	doc, err := c.StatsV2(ctx)
	if err != nil {
		t.Fatalf("stats v2: %v", err)
	}
	if doc.SchemaVersion != 2 {
		t.Fatalf("schema_version = %d, want 2", doc.SchemaVersion)
	}
	if doc.Cluster.Instances != 1 || doc.Cluster.Router != "passthrough" {
		t.Fatalf("cluster section = %+v, want 1 passthrough instance", doc.Cluster)
	}
	if doc.Engine.Total.Reads != 1 || doc.Engine.Total.Writes != 1 {
		t.Fatalf("engine totals = %+v, want 1 read / 1 write", doc.Engine.Total)
	}
	if len(doc.Tenants) != 1 || doc.Tenants[0].Tenant != "acme" || doc.Tenants[0].OK != 2 {
		t.Fatalf("tenants = %+v, want acme with 2 ok ops", doc.Tenants)
	}
	if len(doc.Cluster.Classes) != 1 || doc.Cluster.Classes[0].Class != "best-effort" {
		t.Fatalf("classes = %+v, want one best-effort class", doc.Cluster.Classes)
	}

	snap, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats v1: %v", err)
	}
	if snap.Total.Reads != 1 || snap.Total.Writes != 1 {
		t.Fatalf("v1 totals = %+v, want 1 read / 1 write", snap.Total)
	}
}
