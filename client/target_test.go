package client

import (
	"attache/internal/loadgen"
)

// The HTTP client is a loadgen.Target in its own right — cmd/attacheload
// drives scenarios and replays straight through it, no adapter.
var _ loadgen.Target = (*Client)(nil)
