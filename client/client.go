// Package client is the Go client for the attached daemon: line
// reads/writes and batches over HTTP with automatic retry, exponential
// backoff with full jitter, and a deadline budget.
//
// Retry policy: transport errors and 429/502/503/504 responses are
// retried up to MaxRetries times. A 429's Retry-After hint becomes the
// floor of the next backoff sleep. Every sleep is checked against the
// context deadline first — the client gives up early (returning the last
// error) rather than sleeping past the budget. Batch responses are 200
// with per-op outcomes; per-op failures inside a batch are returned to
// the caller unretried, since the neighbouring ops already landed.
//
// Errors carry the daemon's taxonomy: errors.Is works against
// attache.ErrOverloaded, attache.ErrNeverWritten, attache.ErrClosed,
// attache.ErrBadLineSize, attache.ErrOutOfRange, and the context
// sentinels, whether the failure was a whole response (StatusError) or
// one op inside a batch.
//
// Tracing: a context built with ContextWithTrace (or ContextWithTraceID)
// sends its ID in the X-Attache-Trace header on every request made with
// it, so a daemon running with tracing enabled records the request's
// pipeline timeline, retrievable from /v1/trace/{id} (or Client.Trace):
//
//	ctx, id := client.ContextWithTrace(context.Background())
//	data, err := c.Read(ctx, 42)
//	tl, err := c.Trace(context.Background(), id)  // queue wait vs service time
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"attache"
	"attache/internal/obs"
)

// Client talks to one attached daemon. It is safe for concurrent use.
type Client struct {
	base        string
	hc          *http.Client
	maxRetries  int
	baseBackoff time.Duration
	maxBackoff  time.Duration
	budget      time.Duration
	tenant      string
	traceHeader string

	mu  sync.Mutex
	rng *rand.Rand
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient swaps the underlying *http.Client (timeouts, transport).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithRetry caps retry attempts after the first try (default 4).
func WithRetry(n int) Option {
	return func(c *Client) { c.maxRetries = n }
}

// WithMaxRetries caps retry attempts after the first try.
//
// Deprecated: use WithRetry.
func WithMaxRetries(n int) Option { return WithRetry(n) }

// WithTenant stamps every request with the X-Attache-Tenant header, so a
// clustered daemon books the client's ops to that tenant's admission
// quota and SLO class. A per-call ContextWithTenant overrides it.
func WithTenant(tenant string) Option {
	return func(c *Client) { c.tenant = tenant }
}

// WithTraceHeader renames the header carrying the outgoing trace ID
// (default "X-Attache-Trace") — for daemons behind proxies that rewrite
// or reserve the canonical name. The daemon must be configured to match.
func WithTraceHeader(name string) Option {
	return func(c *Client) { c.traceHeader = name }
}

// WithBackoff sets the exponential-backoff window: sleeps are drawn
// uniformly from (0, min(max, base<<attempt)] — "full jitter". Defaults
// are 50ms base, 2s max.
func WithBackoff(base, max time.Duration) Option {
	return func(c *Client) { c.baseBackoff, c.maxBackoff = base, max }
}

// WithDeadlineBudget bounds each call that arrives without its own
// context deadline: the call (including all retries and sleeps) gets at
// most d. 0 (the default) means no implicit bound.
func WithDeadlineBudget(d time.Duration) Option {
	return func(c *Client) { c.budget = d }
}

// WithJitterSeed makes the backoff jitter deterministic — for tests.
func WithJitterSeed(seed int64) Option {
	return func(c *Client) { c.rng = rand.New(rand.NewSource(seed)) }
}

// New builds a client for the daemon at baseURL (e.g. "http://host:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:        strings.TrimRight(baseURL, "/"),
		hc:          &http.Client{},
		maxRetries:  4,
		baseBackoff: 50 * time.Millisecond,
		maxBackoff:  2 * time.Second,
		traceHeader: obs.TraceHeader,
		rng:         rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	for _, o := range opts {
		o(c)
	}
	if c.traceHeader == "" {
		c.traceHeader = obs.TraceHeader
	}
	return c
}

// Config is the struct form of the client knobs, one field per
// functional option; zero values take the option's default.
//
// Deprecated: configure with New and functional options (WithRetry,
// WithBackoff, WithDeadlineBudget, WithTenant, WithTraceHeader,
// WithHTTPClient, WithJitterSeed). NewFromConfig remains as a shim for
// one release.
type Config struct {
	HTTPClient     *http.Client
	MaxRetries     int // 0 keeps the default of 4; negative disables retries
	BackoffBase    time.Duration
	BackoffMax     time.Duration
	DeadlineBudget time.Duration
	Tenant         string
	TraceHeader    string
	JitterSeed     int64 // non-zero makes backoff jitter deterministic
}

// NewFromConfig builds a client from the struct form of the knobs. It is
// a thin shim over New: every field maps to exactly one functional
// option, proven equivalent by TestNewFromConfigEquivalence.
//
// Deprecated: use New with functional options.
func NewFromConfig(baseURL string, cfg Config) *Client {
	var opts []Option
	if cfg.HTTPClient != nil {
		opts = append(opts, WithHTTPClient(cfg.HTTPClient))
	}
	if cfg.MaxRetries != 0 {
		opts = append(opts, WithRetry(max(cfg.MaxRetries, 0)))
	}
	if cfg.BackoffBase != 0 || cfg.BackoffMax != 0 {
		base, maxB := cfg.BackoffBase, cfg.BackoffMax
		if base == 0 {
			base = 50 * time.Millisecond
		}
		if maxB == 0 {
			maxB = 2 * time.Second
		}
		opts = append(opts, WithBackoff(base, maxB))
	}
	if cfg.DeadlineBudget != 0 {
		opts = append(opts, WithDeadlineBudget(cfg.DeadlineBudget))
	}
	if cfg.Tenant != "" {
		opts = append(opts, WithTenant(cfg.Tenant))
	}
	if cfg.TraceHeader != "" {
		opts = append(opts, WithTraceHeader(cfg.TraceHeader))
	}
	if cfg.JitterSeed != 0 {
		opts = append(opts, WithJitterSeed(cfg.JitterSeed))
	}
	return New(baseURL, opts...)
}

// StatusError is a non-retryable (or retry-exhausted) HTTP failure.
// errors.Is resolves it to the matching attache sentinel via Unwrap.
type StatusError struct {
	Code    int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("client: server answered %d: %s", e.Code, e.Message)
}

func (e *StatusError) Unwrap() error {
	switch e.Code {
	case http.StatusNotFound:
		return attache.ErrNeverWritten
	case http.StatusTooManyRequests:
		return attache.ErrOverloaded
	case http.StatusServiceUnavailable:
		return attache.ErrClosed
	case http.StatusGatewayTimeout:
		return context.DeadlineExceeded
	}
	return nil
}

func retryable(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// backoff draws the attempt'th full-jitter sleep, floored at the
// server's Retry-After hint.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	window := c.baseBackoff << attempt
	if window > c.maxBackoff || window <= 0 {
		window = c.maxBackoff
	}
	c.mu.Lock()
	d := time.Duration(c.rng.Int63n(int64(window))) + 1
	c.mu.Unlock()
	if d < retryAfter {
		d = retryAfter
	}
	return d
}

func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// traceKey keys the outgoing trace ID in a context.
type traceKey struct{}

// idCtr seeds fresh client-side trace IDs (mixed with the wall clock at
// init so concurrent processes do not collide).
var idCtr atomic.Uint64

func init() { idCtr.Store(uint64(time.Now().UnixNano())) }

// ContextWithTrace returns a child context carrying a fresh trace ID,
// and the ID itself. Every request made with the context sends the ID
// in the X-Attache-Trace header; a daemon with tracing enabled records
// that request's pipeline timeline under it.
func ContextWithTrace(ctx context.Context) (context.Context, string) {
	id := attache.TraceID(idCtr.Add(0x9E3779B97F4A7C15) | 1).String()
	return ContextWithTraceID(ctx, id), id
}

// ContextWithTraceID is ContextWithTrace with a caller-chosen ID (the
// hex form, up to 16 digits), e.g. one assigned by an upstream system.
func ContextWithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// ContextWithTenant returns a child context whose requests carry tenant
// in the X-Attache-Tenant header, overriding any client-level WithTenant
// for calls made with it.
func ContextWithTenant(ctx context.Context, tenant string) context.Context {
	return obs.ContextWithTenant(ctx, tenant)
}

// roundTrip POSTs (or GETs, for empty body) path with retries and
// returns the final response status and body.
func (c *Client) roundTrip(ctx context.Context, method, path string, body []byte) (int, []byte, error) {
	if c.budget > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, c.budget)
			defer cancel()
		}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, bytes.NewReader(body))
		if err != nil {
			return 0, nil, fmt.Errorf("client: %w", err)
		}
		req.Header.Set("Content-Type", "application/json")
		if id, ok := ctx.Value(traceKey{}).(string); ok && id != "" {
			req.Header.Set(c.traceHeader, id)
		}
		if t := obs.TenantFromContext(ctx); t != "" {
			req.Header.Set(obs.TenantHeader, t)
		} else if c.tenant != "" {
			req.Header.Set(obs.TenantHeader, c.tenant)
		}

		var retryAfter time.Duration
		resp, err := c.hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return 0, nil, budgetErr(ctx.Err(), attempt, lastErr)
			}
			lastErr = err
		} else {
			respBody, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				lastErr = rerr
			} else if !retryable(resp.StatusCode) {
				return resp.StatusCode, respBody, nil
			} else {
				retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
				lastErr = &StatusError{Code: resp.StatusCode, Message: strings.TrimSpace(string(respBody))}
			}
		}

		if attempt >= c.maxRetries {
			return 0, nil, fmt.Errorf("client: giving up after %d attempts: %w", attempt+1, lastErr)
		}
		sleep := c.backoff(attempt, retryAfter)
		if deadline, ok := ctx.Deadline(); ok && time.Now().Add(sleep).After(deadline) {
			return 0, nil, budgetErr(context.DeadlineExceeded, attempt, lastErr)
		}
		select {
		case <-time.After(sleep):
		case <-ctx.Done():
			return 0, nil, budgetErr(ctx.Err(), attempt, lastErr)
		}
	}
}

// budgetErr reports an exhausted deadline budget, keeping both the
// context sentinel and the last server error visible to errors.Is.
func budgetErr(ctxErr error, attempts int, lastErr error) error {
	if lastErr == nil {
		return ctxErr
	}
	return fmt.Errorf("client: deadline budget exhausted after %d attempts (%w): last error: %w", attempts+1, ctxErr, lastErr)
}

// statusToErr turns a terminal non-2xx response into an error.
func statusToErr(code int, body []byte) error {
	var er struct {
		Error string `json:"error"`
	}
	msg := strings.TrimSpace(string(body))
	if json.Unmarshal(body, &er) == nil && er.Error != "" {
		msg = er.Error
	}
	return &StatusError{Code: code, Message: msg}
}

type lineBody struct {
	Addr uint64 `json:"addr"`
	Data []byte `json:"data,omitempty"`
}

// Read fetches the 64-byte line at addr.
func (c *Client) Read(ctx context.Context, addr uint64) ([]byte, error) {
	body, err := json.Marshal(lineBody{Addr: addr})
	if err != nil {
		return nil, err
	}
	code, respBody, err := c.roundTrip(ctx, http.MethodPost, "/v1/read", body)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, statusToErr(code, respBody)
	}
	var resp lineBody
	if err := json.Unmarshal(respBody, &resp); err != nil {
		return nil, fmt.Errorf("client: bad read response: %w", err)
	}
	return resp.Data, nil
}

// Write stores the 64-byte line data at addr.
func (c *Client) Write(ctx context.Context, addr uint64, data []byte) error {
	body, err := json.Marshal(lineBody{Addr: addr, Data: data})
	if err != nil {
		return err
	}
	code, respBody, err := c.roundTrip(ctx, http.MethodPost, "/v1/write", body)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return statusToErr(code, respBody)
	}
	return nil
}

type batchOp struct {
	Op   string `json:"op"`
	Addr uint64 `json:"addr"`
	Data []byte `json:"data,omitempty"`
}

type batchResult struct {
	Addr  uint64 `json:"addr"`
	Data  []byte `json:"data,omitempty"`
	OK    bool   `json:"ok,omitempty"`
	Error string `json:"error,omitempty"`
}

// Do submits a batch of ops with the daemon's per-op failure isolation:
// the returned slice matches ops in order, and each Result carries its
// own error (resolved to attache sentinels where possible).
func (c *Client) Do(ctx context.Context, ops []attache.Op) ([]attache.Result, error) {
	reqOps := make([]batchOp, len(ops))
	for i, op := range ops {
		reqOps[i] = batchOp{Op: "read", Addr: op.Addr}
		if op.Write {
			reqOps[i].Op, reqOps[i].Data = "write", op.Data
		}
	}
	body, err := json.Marshal(reqOps)
	if err != nil {
		return nil, err
	}
	code, respBody, err := c.roundTrip(ctx, http.MethodPost, "/v1/batch", body)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, statusToErr(code, respBody)
	}
	var resp struct {
		Results []batchResult `json:"results"`
	}
	if err := json.Unmarshal(respBody, &resp); err != nil {
		return nil, fmt.Errorf("client: bad batch response: %w", err)
	}
	if len(resp.Results) != len(ops) {
		return nil, fmt.Errorf("client: batch answered %d results for %d ops", len(resp.Results), len(ops))
	}
	out := make([]attache.Result, len(ops))
	for i, r := range resp.Results {
		if r.Error != "" {
			out[i].Err = opErr(r.Error)
			continue
		}
		out[i].Data = r.Data
	}
	return out, nil
}

// DoCtx is Do under the method name the sharded Engine exposes, so a
// *Client satisfies the same batch-submission shape as an in-process
// engine (loadgen.Target): harnesses and replay tooling drive either
// interchangeably.
func (c *Client) DoCtx(ctx context.Context, ops []attache.Op) ([]attache.Result, error) {
	return c.Do(ctx, ops)
}

// opErr maps a per-op error message from the daemon back onto the typed
// sentinels, so batch callers can errors.Is without parsing strings.
func opErr(msg string) error {
	for _, m := range []struct {
		needle   string
		sentinel error
	}{
		{"overloaded", attache.ErrOverloaded},
		{"never written", attache.ErrNeverWritten},
		{"64 bytes", attache.ErrBadLineSize},
		{"out of range", attache.ErrOutOfRange},
		{"injected fault", attache.ErrFaultInjected},
		{"engine closed", attache.ErrClosed},
		{"context deadline exceeded", context.DeadlineExceeded},
		{"context canceled", context.Canceled},
	} {
		if strings.Contains(msg, m.needle) {
			return fmt.Errorf("%s: %w", msg, m.sentinel)
		}
	}
	return errors.New(msg)
}

// Stats fetches the daemon's merged engine snapshot. It pins the
// deprecated v1 flat schema (?v=1) so the shape keeps round-tripping
// into attache.EngineSnapshot across the stats v2 redesign; new code
// wanting per-instance, per-class, or per-tenant breakdowns should use
// StatsV2.
func (c *Client) Stats(ctx context.Context) (attache.EngineSnapshot, error) {
	var snap attache.EngineSnapshot
	code, respBody, err := c.roundTrip(ctx, http.MethodGet, "/v1/stats?v=1", nil)
	if err != nil {
		return snap, err
	}
	if code != http.StatusOK {
		return snap, statusToErr(code, respBody)
	}
	if err := json.Unmarshal(respBody, &snap); err != nil {
		return snap, fmt.Errorf("client: bad stats response: %w", err)
	}
	return snap, nil
}

// StatsV2 is the schema-version-2 stats document served at /v1/stats:
// nested sections with per-instance engine snapshots, per-SLO-class
// latency quantiles, a Jain fairness index, and per-tenant accounting.
type StatsV2 struct {
	SchemaVersion int `json:"schema_version"`
	Engine        struct {
		Shards      int                      `json:"shards"`
		SRAMBytes   int                      `json:"sram_bytes"`
		Total       attache.StatsSnapshot    `json:"total"`
		PerInstance []attache.EngineSnapshot `json:"per_instance"`
	} `json:"engine"`
	Robust    attache.RobustStats `json:"robust"`
	Telemetry struct {
		UptimeSeconds float64              `json:"uptime_seconds"`
		Gauges        []attache.ShardGauge `json:"gauges"`
	} `json:"telemetry"`
	Cluster struct {
		Instances    int     `json:"instances"`
		Router       string  `json:"router"`
		JainFairness float64 `json:"jain_fairness"`
		Classes      []struct {
			Class   string  `json:"class"`
			Calls   int64   `json:"calls"`
			Ops     int64   `json:"ops"`
			P50us   float64 `json:"p50_us"`
			P90us   float64 `json:"p90_us"`
			P99us   float64 `json:"p99_us"`
			MaxUs   float64 `json:"max_us"`
			Samples int     `json:"samples"`
		} `json:"classes"`
	} `json:"cluster"`
	Tenants []struct {
		Tenant      string `json:"tenant"`
		Class       string `json:"class"`
		Ops         int64  `json:"ops"`
		OK          int64  `json:"ok"`
		ShedQuota   int64  `json:"shed_quota"`
		ShedBackend int64  `json:"shed_backend"`
		Errors      int64  `json:"errors"`
	} `json:"tenants"`
}

// StatsV2 fetches the current (schema v2) stats document.
func (c *Client) StatsV2(ctx context.Context) (StatsV2, error) {
	var doc StatsV2
	code, respBody, err := c.roundTrip(ctx, http.MethodGet, "/v1/stats?v=2", nil)
	if err != nil {
		return doc, err
	}
	if code != http.StatusOK {
		return doc, statusToErr(code, respBody)
	}
	if err := json.Unmarshal(respBody, &doc); err != nil {
		return doc, fmt.Errorf("client: bad stats response: %w", err)
	}
	return doc, nil
}

// Trace fetches the pipeline timeline of a traced request by ID (as
// returned by ContextWithTrace). The daemon retains a bounded ring of
// recent traces, so look timelines up promptly.
func (c *Client) Trace(ctx context.Context, id string) (attache.Timeline, error) {
	var tl attache.Timeline
	code, respBody, err := c.roundTrip(ctx, http.MethodGet, "/v1/trace/"+id, nil)
	if err != nil {
		return tl, err
	}
	if code != http.StatusOK {
		return tl, statusToErr(code, respBody)
	}
	if err := json.Unmarshal(respBody, &tl); err != nil {
		return tl, fmt.Errorf("client: bad trace response: %w", err)
	}
	return tl, nil
}

// Health probes /healthz; nil means the daemon is live and not draining.
func (c *Client) Health(ctx context.Context) error {
	code, respBody, err := c.roundTrip(ctx, http.MethodGet, "/healthz", nil)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return statusToErr(code, respBody)
	}
	return nil
}
