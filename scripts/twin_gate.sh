#!/usr/bin/env sh
# Twin calibration gate — the CI twin-calibration job.
#
# Runs the committed calibration sweep (every preset scenario × every
# stress config) through both the analytical twin and the real
# simulator, prints the per-point comparison table, and enforces the
# committed tolerance bands (internal/twin/testdata/calibration.json):
# per-metric MAPE ceilings and Pearson floors. Exits non-zero on any
# violation.
#
# The test-level contract (go test ./internal/twin -run TestCalibration)
# checks the same bands plus the <1ms evaluation bound and the
# bands-within-ceilings invariant; run both so CI logs carry the full
# observation table when the gate trips.
#
# After an intentional model or engine change, regenerate the bands:
#   go test ./internal/twin -run TestCalibration -update
set -eu
cd "$(dirname "$0")/.."

go run ./cmd/attachetwin calibrate -bands internal/twin/testdata/calibration.json
go test ./internal/twin -count=1 -run 'TestCalibration|TestCommittedBandsWithinCeilings' -v
