#!/usr/bin/env bash
# Tiered-backend e2e smoke: boots an attached daemon with a two-tier
# memory (-tiers) and -snapshot-on-drain, drives traffic over real HTTP,
# drains it with SIGTERM, restarts from the written snapshot (-restore),
# and asserts the snapshot/restore contract end to end:
#
#   - /v1/stats v2 carries the tiers section while serving, and its
#     books conserve: promotions == demotions + near_resident
#   - /v1/snapshot serves a decodable snapv1 image (ATSNAP magic)
#   - SIGTERM drains and writes the snapshot file atomically
#   - the restarted daemon reports byte-identical engine totals and tier
#     counters — nothing is lost or invented across the restart
#
# Needs: curl, jq. Exits non-zero on the first broken assertion.
set -euo pipefail
cd "$(dirname "$0")/.."

addr="127.0.0.1:${TIER_SMOKE_PORT:-18081}"
base="http://$addr"
bin="${TMPDIR:-/tmp}/attache-tier-smoke.$$"
mkdir -p "$bin"
daemon_pid=""
trap 'kill "$daemon_pid" 2>/dev/null || true; wait "$daemon_pid" 2>/dev/null || true; rm -rf "$bin"' EXIT

go build -o "$bin/attached" ./cmd/attached
go build -o "$bin/attacheload" ./cmd/attacheload

snap="$bin/drain.snap"
"$bin/attached" -addr "$addr" -shards 4 -tiers 'near=256,policy=freq,freq-threshold=2' \
  -snapshot-on-drain "$snap" -log-level warn &
daemon_pid=$!

for _ in $(seq 100); do
  curl -sf "$base/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "$base/healthz" >/dev/null

# Zipf-free mixed traffic over a working set much larger than the near
# tier, so both tiers see reads and writes.
"$bin/attacheload" -target "$base" -events 3000 -space 4096 -json >"$bin/report.json"
jq -e '.ops_ok > 0' "$bin/report.json" >/dev/null ||
  { echo "FAIL: load run completed no ops"; exit 1; }

stats1="$(curl -sf "$base/v1/stats?v=2")"
echo "$stats1" | jq -e '.engine.tiers != null' >/dev/null ||
  { echo "FAIL: tiered daemon stats carry no tiers section"; exit 1; }
echo "$stats1" | jq -e '.engine.tiers.policy == "freq"' >/dev/null ||
  { echo "FAIL: tier policy wrong"; exit 1; }
echo "$stats1" | jq -e '.engine.tiers | (.near_reads + .far_reads > 0) and (.promotions == .demotions + .near_resident)' >/dev/null ||
  { echo "FAIL: tier books do not conserve"; exit 1; }

# The snapshot endpoint serves a snapv1 image.
curl -sf "$base/v1/snapshot" -o "$bin/live.snap"
[ "$(head -c 6 "$bin/live.snap")" = "ATSNAP" ] ||
  { echo "FAIL: /v1/snapshot body is not snapv1"; exit 1; }

# Drain; the daemon must write the snapshot file on its way out.
kill -TERM "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
[ -s "$snap" ] || { echo "FAIL: -snapshot-on-drain wrote nothing"; exit 1; }
[ "$(head -c 6 "$snap")" = "ATSNAP" ] ||
  { echo "FAIL: drain snapshot is not snapv1"; exit 1; }

# Restart from the snapshot. No -tiers: the snapshot is authoritative.
"$bin/attached" -addr "$addr" -restore "$snap" -log-level warn &
daemon_pid=$!
for _ in $(seq 100); do
  curl -sf "$base/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "$base/healthz" >/dev/null

stats2="$(curl -sf "$base/v1/stats?v=2")"
# Totals and tier counters must survive the restart exactly.
same() {
  a="$(echo "$stats1" | jq -c "$1")"
  b="$(echo "$stats2" | jq -c "$1")"
  [ "$a" = "$b" ] || { echo "FAIL: $1 diverged across restart: $a vs $b"; exit 1; }
}
same '.engine.total.reads'
same '.engine.total.writes'
same '.engine.total.blocks_read'
same '.engine.total.blocks_written'
same '.engine.tiers'

kill -TERM "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""

echo "tier smoke OK: $(echo "$stats2" | jq -c '{policy: .engine.tiers.policy, near_resident: .engine.tiers.near_resident, promotions: .engine.tiers.promotions, reads: .engine.total.reads}')"
