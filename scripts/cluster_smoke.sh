#!/usr/bin/env bash
# Cluster e2e smoke: boots a 3-instance attached daemon with one
# quota-capped tenant, drives two tenants through attacheload over real
# HTTP, and asserts the multi-tenant contract end to end:
#
#   - per-tenant stats conserve: ops == ok + shed_quota + shed_backend + errors
#   - only the over-quota tenant is refused (429); the other sees zero
#     quota sheds
#   - stats v2 carries the cluster section (instances, router, classes,
#     jain_fairness) and v1 still round-trips the flat legacy shape
#
# Needs: curl, jq. Exits non-zero on the first broken assertion.
set -euo pipefail
cd "$(dirname "$0")/.."

addr="127.0.0.1:${CLUSTER_SMOKE_PORT:-18080}"
base="http://$addr"
bin="${TMPDIR:-/tmp}/attache-smoke.$$"
mkdir -p "$bin"
trap 'kill "$daemon_pid" 2>/dev/null || true; wait "$daemon_pid" 2>/dev/null || true; rm -rf "$bin"' EXIT

go build -o "$bin/attached" ./cmd/attached
go build -o "$bin/attacheload" ./cmd/attacheload

"$bin/attached" -addr "$addr" -cluster 3 -router least-loaded \
  -quotas 'hog=2000:2000' -classes 'vip=gold' -log-level warn &
daemon_pid=$!

for _ in $(seq 100); do
  curl -sf "$base/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "$base/healthz" >/dev/null

# Two tenants, dealt round-robin; hog's quota is far below the unpaced
# offered rate, so hog must shed and vip must not.
"$bin/attacheload" -target "$base" -tenants hog,vip -events 4000 -json \
  >"$bin/report.json"

jq -e '.per_tenant.hog.shed > 0' "$bin/report.json" >/dev/null ||
  { echo "FAIL: over-quota tenant was never refused"; exit 1; }
jq -e '.per_tenant.vip.shed == 0' "$bin/report.json" >/dev/null ||
  { echo "FAIL: unquotaed tenant was quota-shed"; exit 1; }

stats="$(curl -sf "$base/v1/stats?v=2")"
echo "$stats" | jq -e '.schema_version == 2' >/dev/null ||
  { echo "FAIL: default stats schema is not v2"; exit 1; }
echo "$stats" | jq -e '.cluster.instances == 3 and .cluster.router == "least-loaded"' >/dev/null ||
  { echo "FAIL: cluster section wrong"; exit 1; }
echo "$stats" | jq -e 'all(.tenants[]; .ops == .ok + .shed_quota + .shed_backend + .errors)' >/dev/null ||
  { echo "FAIL: per-tenant books do not conserve"; exit 1; }
echo "$stats" | jq -e '.tenants | map(select(.tenant == "hog"))[0].shed_quota > 0' >/dev/null ||
  { echo "FAIL: hog shows no quota sheds in stats"; exit 1; }
echo "$stats" | jq -e '.tenants | map(select(.tenant == "vip"))[0] | .shed_quota == 0 and .class == "gold"' >/dev/null ||
  { echo "FAIL: vip was shed or lost its class"; exit 1; }
echo "$stats" | jq -e '.cluster.jain_fairness > 0 and .cluster.jain_fairness <= 1' >/dev/null ||
  { echo "FAIL: jain_fairness out of range"; exit 1; }
echo "$stats" | jq -e '.cluster.classes | map(.class) | index("gold") != null' >/dev/null ||
  { echo "FAIL: gold class missing from quantiles"; exit 1; }

# The deprecated v1 shape still round-trips, without v2 fields.
curl -sf "$base/v1/stats?v=1" |
  jq -e '(.total.writes > 0) and (.schema_version == null) and (.telemetry | length == 0 | not)' >/dev/null ||
  { echo "FAIL: legacy v1 stats broken"; exit 1; }

# The admitted work conserves across the fleet: merged totals equal the
# sum of per-instance totals.
echo "$stats" | jq -e '
  .engine.total.writes == ([.engine.per_instance[].total.writes] | add) and
  .engine.total.reads  == ([.engine.per_instance[].total.reads]  | add)' >/dev/null ||
  { echo "FAIL: merged totals do not equal per-instance sums"; exit 1; }

kill -TERM "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true

echo "cluster smoke OK: $(echo "$stats" | jq -c '{instances: .cluster.instances, router: .cluster.router, jain: .cluster.jain_fairness, tenants: [.tenants[] | {tenant, ok, shed_quota}]}')"
