#!/usr/bin/env sh
# Benchmark regression gate: run the two throughput benchmarks that pin
# the hot paths (the simulator loop and the sharded engine pipeline),
# summarize over -count runs (minimum ns/op — scheduler noise only ever
# adds time, so min-of-N is the robust estimator on busy machines;
# average allocs/op — those are deterministic), and fail if either
# regresses against the committed baseline (scripts/bench_baseline.txt):
#
#   - time/op   more than BENCH_GATE_TIME_TOL percent slower (default 10)
#   - allocs/op more than BENCH_GATE_ALLOC_TOL percent higher (default
#     0.2, plus a 0.5-alloc absolute epsilon). Alloc counts are nearly
#     deterministic — the epsilon only absorbs iteration-count jitter
#     in benches whose per-op figure amortizes setup; a real leak adds
#     at least one alloc per op, orders of magnitude above it.
#   - time/op more than BENCH_GATE_IMPROVE_TOL percent FASTER (default
#     25). An unexpected improvement is either a real win that belongs
#     in the baseline (re-pin it so the gate keeps guarding the new
#     level instead of tolerating a slide back to the old one) or a
#     broken benchmark that stopped measuring the work. Either way the
#     gate should not wave it through silently.
#
# Also writes BENCH_5.json (name, ns/op, allocs/op per benchmark) for CI
# artifact upload, and prints a benchstat comparison when benchstat is
# on PATH (report only — the gate itself needs nothing beyond awk).
#
# Refresh the baseline (deliberately, on the machine the gate will run
# on — time/op does not transfer between machines):
#
#	UPDATE=1 ./scripts/bench_gate.sh    # or: make bench-pin
#
# allocs/op transfers fine; when gating on a different machine than the
# baseline's, raise BENCH_GATE_TIME_TOL rather than trusting raw ns.
set -eu

# awk parses and compares floats; pin the decimal separator.
LC_ALL=C
export LC_ALL

cd "$(dirname "$0")/.."

baseline=scripts/bench_baseline.txt
json="${BENCH_JSON:-BENCH_5.json}"
count="${BENCH_COUNT:-5}"
time_tol="${BENCH_GATE_TIME_TOL:-10}"
alloc_tol="${BENCH_GATE_ALLOC_TOL:-0.2}"
improve_tol="${BENCH_GATE_IMPROVE_TOL:-25}"

current="${TMPDIR:-/tmp}/attache-bench.$$.txt"
trap 'rm -f "$current"' EXIT

echo "bench gate: running benchmarks (count=$count)..."
{
	go test -run '^$' -bench 'BenchmarkSimulatorThroughput$' -benchmem -count="$count" .
	go test -run '^$' -bench 'BenchmarkShardedThroughput$|BenchmarkSubmitLatency$' -benchmem -count="$count" ./internal/shard
} | tee "$current"

# summarize: min ns/op and mean allocs/op per benchmark, with the
# GOMAXPROCS "-N" name suffix stripped so runs from machines with
# different core counts line up.
summarize() {
	awk '
		/^Benchmark/ {
			name = $1
			sub(/-[0-9]+$/, "", name)
			for (i = 2; i <= NF; i++) {
				if ($i == "ns/op" && (!(name in ns) || $(i-1) < ns[name])) { ns[name] = $(i-1) }
				if ($i == "allocs/op") { al[name] += $(i-1) }
			}
			n[name]++
		}
		END {
			for (name in n)
				printf "%s %.2f %.2f\n", name, ns[name], al[name]/n[name]
		}
	' "$1" | sort
}

if [ "${UPDATE:-}" = "1" ]; then
	cp "$current" "$baseline"
	echo "bench gate: baseline updated ($baseline)"
	exit 0
fi

[ -f "$baseline" ] || { echo "bench gate: no baseline — run UPDATE=1 $0 first"; exit 1; }

summarize "$current" > "${current}.cur"
summarize "$baseline" > "${current}.base"
trap 'rm -f "$current" "${current}.cur" "${current}.base"' EXIT

# BENCH_5.json: the averaged summary, for artifact upload.
awk '
	BEGIN { print "[" }
	{
		if (NR > 1) print ","
		printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s}", $1, $2, $3
	}
	END { print "\n]" }
' "${current}.cur" > "$json"
echo "bench gate: wrote $json"

if command -v benchstat >/dev/null 2>&1; then
	echo "bench gate: benchstat comparison (baseline vs current):"
	benchstat "$baseline" "$current" || true
fi

awk -v time_tol="$time_tol" -v alloc_tol="$alloc_tol" -v improve_tol="$improve_tol" '
	NR == FNR { base_ns[$1] = $2; base_al[$1] = $3; next }
	{
		if (!($1 in base_ns)) {
			printf "bench gate: NEW  %-50s %12.0f ns/op %10.1f allocs/op (no baseline, not gated)\n", $1, $2, $3
			next
		}
		dns = (base_ns[$1] > 0) ? 100 * ($2 - base_ns[$1]) / base_ns[$1] : 0
		printf "bench gate:      %-50s %12.0f ns/op (%+6.1f%%) %10.1f allocs/op (base %.1f)\n", $1, $2, dns, $3, base_al[$1]
		if (dns > time_tol) {
			printf "bench gate: FAIL %s time/op regressed %.1f%% (tolerance %s%%)\n", $1, dns, time_tol
			bad = 1
		}
		if (dns < -improve_tol) {
			printf "bench gate: FAIL %s time/op improved %.1f%% past tolerance %s%% — re-pin the baseline (UPDATE=1 or make bench-pin) so the gate guards the new level\n", $1, -dns, improve_tol
			bad = 1
		}
		if ($3 > base_al[$1] * (1 + alloc_tol / 100) + 0.5) {
			printf "bench gate: FAIL %s allocs/op rose %.1f -> %.1f (tolerance %s%% + 0.5)\n", $1, base_al[$1], $3, alloc_tol
			bad = 1
		}
		seen[$1] = 1
	}
	END {
		for (name in base_ns)
			if (!(name in seen)) {
				printf "bench gate: FAIL baseline benchmark %s missing from current run\n", name
				bad = 1
			}
		if (bad) {
			print "bench gate: FAIL — fix the regression, or re-baseline deliberately with UPDATE=1"
			exit 1
		}
		print "bench gate: OK"
	}
' "${current}.base" "${current}.cur"
