#!/usr/bin/env sh
# Sharding crossover gate — the CI crossover job.
#
# Asserts the performance claim the sharded engine exists for: at four
# shards, BenchmarkShardedThroughput/shards4 must beat the unsharded
# baseline-memory engine wall-clock. Each configuration runs
# CROSSOVER_COUNT times (default 3) and the minimum ns/op represents it,
# so scheduler noise can only hide a win, never manufacture one.
#
# Skips (exit 0, with a logged notice) when fewer than 4 CPUs are
# online: the parallelism the shards exploit is not available, and an
# oversubscribed run measures context-switch overhead, not the engine.
set -eu
cd "$(dirname "$0")/.."

cpus="$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo 1)"
if [ "$cpus" -lt 4 ]; then
	echo "crossover gate: SKIPPED — $cpus CPU(s) online, need >= 4 for the shards4 configuration"
	exit 0
fi

count="${CROSSOVER_COUNT:-3}"
benchtime="${CROSSOVER_BENCHTIME:-1s}"
out="$(go test ./internal/shard -run '^$' \
	-bench 'BenchmarkShardedThroughput/(baseline-memory|shards4)$' \
	-benchtime "$benchtime" -count "$count")"
echo "$out"

base="$(echo "$out" | awk '$1 ~ /^BenchmarkShardedThroughput\/baseline-memory/ {print $3}' | sort -n | head -1)"
sh4="$(echo "$out" | awk '$1 ~ /^BenchmarkShardedThroughput\/shards4/ {print $3}' | sort -n | head -1)"
if [ -z "$base" ] || [ -z "$sh4" ]; then
	echo "crossover gate: FAILED to parse benchmark output" >&2
	exit 1
fi

awk -v base="$base" -v sh4="$sh4" 'BEGIN {
	if (sh4 < base) {
		printf "crossover gate: OK — shards4 %.0f ns/op beats baseline %.0f ns/op (%.2fx)\n", sh4, base, base / sh4
		exit 0
	}
	printf "crossover gate: FAILED — shards4 %.0f ns/op does not beat baseline %.0f ns/op\n", sh4, base
	exit 1
}'
