#!/usr/bin/env sh
# Coverage ratchet: fail if total statement coverage drops more than
# 1 point below the committed baseline (scripts/coverage_baseline.txt).
#
# Raise the baseline by running with UPDATE=1:
#
#	UPDATE=1 ./scripts/coverage_ratchet.sh
#
# The baseline is a floor, not a target — when a PR raises coverage
# meaningfully, re-baseline so the ratchet keeps holding the new ground.
set -eu

# awk compares coverage percentages as floats; pin the locale so the
# decimal separator is always "." regardless of the host's LANG.
LC_ALL=C
export LC_ALL

cd "$(dirname "$0")/.."
baseline_file=scripts/coverage_baseline.txt
profile="${TMPDIR:-/tmp}/attache-cover.$$.out"
trap 'rm -f "$profile"' EXIT

go test -count=1 -coverprofile="$profile" ./... >/dev/null
total="$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $3); print $3}')"
[ -n "$total" ] || { echo "ratchet: could not read total coverage"; exit 1; }

if [ "${UPDATE:-}" = "1" ]; then
	echo "$total" > "$baseline_file"
	echo "ratchet: baseline updated to ${total}%"
	exit 0
fi

baseline="$(cat "$baseline_file")"
echo "ratchet: total coverage ${total}% (baseline ${baseline}%, tolerance 1.0)"
awk -v t="$total" -v b="$baseline" 'BEGIN { exit !(t + 1.0 < b) }' && {
	echo "ratchet: FAIL — coverage dropped more than 1 point below baseline"
	echo "ratchet: add tests, or re-baseline deliberately with UPDATE=1"
	exit 1
}
echo "ratchet: OK"
