module attache

go 1.22
