// Package attache is a Go implementation of Attaché (Hong, Nair, Abali,
// Buyuktosunoglu, Kim, Healy — MICRO 2018): main-memory compression that
// blends metadata into the data itself (BLEM) and predicts compressibility
// before reads (COPR), eliminating the metadata bandwidth overheads that
// erode the benefits of sub-ranked memory compression.
//
// The package offers three levels of API:
//
//   - A functional compressed memory (Memory / Framework): exact 64-byte
//     line Store/Load round-trips through the real BDI/FPC codecs, the
//     scrambler, the CID/XID blended-metadata header, the Replacement
//     Area, and the COPR predictor — with traffic accounting in sub-rank
//     block units. A Memory is single-goroutine.
//   - A sharded concurrent Engine (NewEngine) that pools N Memory shards
//     behind a batched request pipeline — the concurrent entry point,
//     served over HTTP by the cmd/attached daemon.
//   - A full performance-simulation stack under internal/, driven by the
//     attachesim command, that reproduces every table and figure of the
//     paper's evaluation (see DESIGN.md and EXPERIMENTS.md).
//
// Constructors take either the classic Options struct or functional
// options:
//
//	mem, err := attache.NewMemory(attache.DefaultOptions())
//	mem, err := attache.NewMemoryWith(attache.WithCIDWidth(13), attache.WithSeed(7))
//	eng, err := attache.NewEngine(attache.WithShards(8))
//
// Quickstart:
//
//	mem, err := attache.NewMemory(attache.DefaultOptions())
//	if err != nil { ... }
//	line := make([]byte, attache.LineSize)
//	copy(line, myData)
//	if err := mem.Write(42, line); err != nil { ... }
//	back, err := mem.Read(42)
//	savings := mem.StatsSnapshot().BandwidthSavings()
//
// Errors wrap the typed sentinels ErrBadLineSize, ErrOutOfRange, and
// ErrNeverWritten; match them with errors.Is.
package attache

import (
	"context"
	"io"

	"attache/internal/copr"
	"attache/internal/core"
	"attache/internal/obs"
	"attache/internal/shard"
	"attache/internal/tier"
)

// LineSize is the memory-block granularity of the framework: one 64-byte
// cacheline.
const LineSize = core.LineSize

// SubRankBlock is the transfer unit of one sub-rank: 32 bytes.
const SubRankBlock = core.SubRankBlock

// Options configures a framework: CID width, seed, predictor sizing.
type Options = core.Options

// PredictorConfig sizes and enables the COPR components (LiPR, PaPR, GI).
type PredictorConfig = copr.Config

// Framework is the Attaché engine: compression, scrambling, BLEM, COPR.
type Framework = core.Framework

// Memory is a functional compressed memory built on the framework. It is
// not safe for concurrent use — concurrent callers go through Engine.
type Memory = core.Memory

// StatsSnapshot is an immutable copy of a Memory's (or, merged, an
// Engine's) counters and derived metrics.
type StatsSnapshot = core.StatsSnapshot

// StoredLine is the physical two-block image of a stored line.
type StoredLine = core.StoredLine

// AccessTrace reports the cost of one framework operation.
type AccessTrace = core.AccessTrace

// Engine is the sharded concurrent compressed-memory pool: N address-
// sharded Memory shards, each owned by one goroutine behind a batched
// request pipeline. All Engine methods are safe for concurrent use.
//
// Besides the blocking Do/Read/Write surface, the engine offers
// context-aware variants (DoCtx/ReadCtx/WriteCtx) that honor deadlines
// and cancellation and shed load with ErrOverloaded when a shard queue
// is saturated instead of blocking.
type Engine = shard.Engine

// Op is one read or write in an Engine batch.
type Op = shard.Op

// Result is the per-op outcome of an Engine batch.
type Result = shard.Result

// EngineSnapshot is an Engine's merged stats view (totals + per shard +
// degradation counters).
type EngineSnapshot = shard.Snapshot

// RobustStats are an Engine's degradation counters: load sheds, context
// cancellations, and injected faults.
type RobustStats = shard.RobustStats

// FaultPlan configures seeded, deterministic fault injection on an
// Engine's shard pipelines (per-op delay/error probabilities, per-batch
// partial failure). The zero value disables injection. See WithFaultPlan.
type FaultPlan = shard.FaultPlan

// TierConfig configures an Engine's two-tier backend (see WithTiers):
// near-tier capacity, replacement policy ("lru", "freq", "static"), and
// the far-link cost model. The zero value (then WithDefaults) is an
// unbounded-near LRU tier; NearLines 0 built through WithTiers means
// zero near capacity (pure far passthrough).
type TierConfig = tier.Config

// TierSnapshot is the two-tier stats view an engine or cluster exposes
// when running tiered: residency, per-tier traffic, promotions and
// demotions, and the far-link cost model figures.
type TierSnapshot = tier.Snapshot

// TierLinkModel is the far-link cost model inside a TierConfig: added
// latency, bandwidth multiplier, and per-byte energy weights.
type TierLinkModel = tier.LinkModel

// Observer is the observability hub an Engine (and the serve layer)
// reports into: structured slog logging, sampled request tracing with
// ring-buffer retention, and per-shard queue gauges. Build one with
// NewObserver and attach it with WithObserver. A nil Observer is "off"
// and costs one branch per submission.
type Observer = obs.Observer

// ObserverConfig sizes an Observer: logger, trace sample rate, and
// retained-trace ring size.
type ObserverConfig = obs.Config

// TraceID identifies one traced request (16 hex digits).
type TraceID = obs.TraceID

// Trace accumulates one request's pipeline spans. Create one with
// NewTrace, attach it with ContextWithTrace, submit through DoCtx, and
// read the queue-wait/service-time split with Decompose or Timeline.
type Trace = obs.Trace

// Timeline is the JSON rendering of a finished Trace: raw span events
// plus the queue-wait / service-time / total decomposition.
type Timeline = obs.Timeline

// ShardGauge is one shard's point-in-time queue telemetry (depth,
// in-flight, last batch size), as returned by Engine.Gauges.
type ShardGauge = obs.ShardGauge

// Typed sentinel errors; every error the package returns wraps one of
// these (match with errors.Is).
var (
	// ErrBadLineSize reports a write payload that is not exactly LineSize bytes.
	ErrBadLineSize = core.ErrBadLineSize
	// ErrOutOfRange reports a parameter or address outside its configured range.
	ErrOutOfRange = core.ErrOutOfRange
	// ErrNeverWritten reports a read of an address that was never written.
	ErrNeverWritten = core.ErrNeverWritten
	// ErrClosed reports an operation on an Engine after Close.
	ErrClosed = shard.ErrClosed
	// ErrOverloaded reports an op shed by an Engine's admission control:
	// the owning shard's queue was full, the op never ran. Back off and
	// retry (attache/client does this automatically).
	ErrOverloaded = core.ErrOverloaded
	// ErrFaultInjected reports an op failed by an active FaultPlan rather
	// than by the memory itself.
	ErrFaultInjected = shard.ErrFaultInjected
)

// DefaultOptions returns the paper's configuration: a 15-bit CID and the
// 368 KB COPR predictor.
func DefaultOptions() Options { return core.DefaultOptions() }

// DefaultPredictorConfig returns the paper's 368 KB COPR sizing.
func DefaultPredictorConfig() PredictorConfig { return copr.DefaultConfig() }

// settings is what the functional options assemble: framework Options
// plus the engine-level knobs that only NewEngine consumes.
type settings struct {
	opts       Options
	shards     int
	queueDepth int
	maxLines   uint64
	faults     FaultPlan
	obs        *Observer
	tiers      *TierConfig
}

// Option customizes a constructor. Options compose left to right; later
// options win.
type Option func(*settings)

// WithOptions replaces the framework Options wholesale — the bridge from
// the classic struct to the functional-options surface. Engine-level
// settings (shards, queue depth, capacity) are untouched.
func WithOptions(o Options) Option {
	return func(s *settings) { s.opts = o }
}

// WithCIDWidth sets the Compression ID width in bits (15 in the paper,
// valid range [1,15] — checked at construction).
func WithCIDWidth(bits int) Option {
	return func(s *settings) { s.opts.CIDBits = bits }
}

// WithSeed sets the seed deriving the boot-time CID and scrambler key.
func WithSeed(seed int64) Option {
	return func(s *settings) { s.opts.Seed = seed }
}

// WithPredictorSizing replaces the COPR predictor sizing (see
// DefaultPredictorConfig for the paper's 368 KB split).
func WithPredictorSizing(cfg PredictorConfig) Option {
	return func(s *settings) { s.opts.Predictor = cfg }
}

// WithoutPredictor runs BLEM-only: reads conservatively fetch both
// sub-rank blocks.
func WithoutPredictor() Option {
	return func(s *settings) { s.opts.DisablePredictor = true }
}

// WithExtendedCompression adds the CPack dictionary codec to the
// compression engine (the §IV-A5 multi-algorithm configuration).
func WithExtendedCompression() Option {
	return func(s *settings) { s.opts.ExtendedCompression = true }
}

// WithShards sets an Engine's shard count (0 = GOMAXPROCS). Ignored by
// NewMemoryWith, which always builds a single unsharded Memory.
//
// Shards bound parallelism, not baseline cost: an uncontended shard
// executes ops inline on the submitting goroutine (no handoff, no
// per-op allocation), so a lightly loaded engine performs like a plain
// Memory at any shard count, and extra shards only start paying off —
// rather than costing — as concurrent submitters pile up. A 1-shard
// engine remains bit-identical to an unsharded Memory with the same
// options.
func WithShards(n int) Option {
	return func(s *settings) { s.shards = n }
}

// WithQueueDepth sets an Engine's per-shard ring buffer (0 = 64): how
// many submitted tasks a busy shard holds before Do blocks
// (backpressure) and DoCtx sheds with ErrOverloaded. The depth is only
// felt under contention — uncontended submissions bypass the ring
// entirely. Ignored by NewMemoryWith.
func WithQueueDepth(n int) Option {
	return func(s *settings) { s.queueDepth = n }
}

// WithMaxLines bounds an Engine's line address space: ops at addresses
// >= n fail with ErrOutOfRange. 0 (the default) means unbounded. Ignored
// by NewMemoryWith.
func WithMaxLines(n uint64) Option {
	return func(s *settings) { s.maxLines = n }
}

// WithFaultPlan enables seeded fault injection on an Engine's shard
// pipelines — the chaos-testing hook. Off by default (and zero-cost when
// off). Ignored by NewMemoryWith.
func WithFaultPlan(p FaultPlan) Option {
	return func(s *settings) { s.faults = p }
}

// WithTiers puts a two-tier memory backend in front of each shard's
// compressed memory: a bounded near tier holding hot lines uncompressed
// (DRAM-speed, no far-link crossing) over the compressed far tier
// reached across a modeled CXL-style link. The engine's StatsSnapshot
// gains a Tiers section; Total then describes the far tier only. The
// configured NearLines capacity is for the whole engine and is split
// across shards. cfg.NearLines == 0 means a zero-capacity near tier —
// bit-identical to the untiered engine. Ignored by NewMemoryWith.
func WithTiers(cfg TierConfig) Option {
	return func(s *settings) { s.tiers = &cfg }
}

// DefaultTierLink returns the default far-link cost model (250 ns added
// latency, 1x bandwidth, DRAM-vs-CXL energy weights).
func DefaultTierLink() TierLinkModel { return tier.DefaultLink() }

// WithObserver attaches an observability hub to an Engine: requests
// carrying a Trace in their context — and a sampled fraction of the
// rest, per the observer's SampleRate — get per-stage pipeline spans
// (enqueue, dequeue, execute, respond) decomposing latency into queue
// wait vs. service time. The unsampled path stays allocation-free.
// Ignored by NewMemoryWith.
func WithObserver(o *Observer) Option {
	return func(s *settings) { s.obs = o }
}

// NewObserver builds an observability hub (see WithObserver and
// serve.Config.Obs).
func NewObserver(cfg ObserverConfig) *Observer { return obs.New(cfg) }

// NewTrace starts an explicit request trace; attach it to a context
// with ContextWithTrace and submit through the Engine's ctx-aware ops.
// id 0 is replaced by a generated ID when used with an Observer's
// StartTrace; here it is kept as given.
func NewTrace(id TraceID) *Trace { return obs.NewTrace(id) }

// ContextWithTrace returns a child context carrying tr; Engine ops
// called with it record their pipeline spans into tr.
func ContextWithTrace(ctx context.Context, tr *Trace) context.Context {
	return obs.ContextWithTrace(ctx, tr)
}

// TraceFromContext returns the context's trace, or nil.
func TraceFromContext(ctx context.Context) *Trace { return obs.TraceFromContext(ctx) }

func apply(opts []Option) settings {
	s := settings{opts: core.DefaultOptions()}
	for _, o := range opts {
		o(&s)
	}
	return s
}

// New builds a Framework.
func New(opts Options) (*Framework, error) { return core.New(opts) }

// NewMemory builds a functional compressed Memory from an Options struct.
func NewMemory(opts Options) (*Memory, error) { return core.NewMemory(opts) }

// NewMemoryWith builds a functional compressed Memory from functional
// options, starting from DefaultOptions.
func NewMemoryWith(opts ...Option) (*Memory, error) {
	return core.NewMemory(apply(opts).opts)
}

// NewEngine builds a sharded concurrent Engine from functional options,
// starting from DefaultOptions and GOMAXPROCS shards. A 1-shard engine
// produces bit-identical results to a plain Memory with the same
// options. Close it to drain the pipelines.
func NewEngine(opts ...Option) (*Engine, error) {
	s := apply(opts)
	return shard.New(s.opts, shard.Config{
		Shards:     s.shards,
		QueueDepth: s.queueDepth,
		MaxLines:   s.maxLines,
		Faults:     s.faults,
		Obs:        s.obs,
		Tier:       s.tiers,
	})
}

// RestoreEngine rebuilds an Engine from a snapv1 snapshot previously
// written with Engine.WriteSnapshot (or attached -snapshot-on-drain),
// so that every subsequent operation and stats read behaves exactly as
// it would have on the original. The snapshot is authoritative for the
// framework options, tier configuration, and shard count; the given
// functional options may supply only runtime knobs (queue depth, fault
// plan, observer, max lines). WithShards must be absent or match the
// snapshot; WithTiers must be absent (the snapshot carries the tier
// configuration).
func RestoreEngine(r io.Reader, opts ...Option) (*Engine, error) {
	s := apply(opts)
	return shard.RestoreEngineFrom(r, shard.Config{
		Shards:     s.shards,
		QueueDepth: s.queueDepth,
		MaxLines:   s.maxLines,
		Faults:     s.faults,
		Obs:        s.obs,
		Tier:       s.tiers,
	})
}
