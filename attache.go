// Package attache is a Go implementation of Attaché (Hong, Nair, Abali,
// Buyuktosunoglu, Kim, Healy — MICRO 2018): main-memory compression that
// blends metadata into the data itself (BLEM) and predicts compressibility
// before reads (COPR), eliminating the metadata bandwidth overheads that
// erode the benefits of sub-ranked memory compression.
//
// The package offers two levels of API:
//
//   - A functional compressed memory (Memory / Framework): exact 64-byte
//     line Store/Load round-trips through the real BDI/FPC codecs, the
//     scrambler, the CID/XID blended-metadata header, the Replacement
//     Area, and the COPR predictor — with traffic accounting in sub-rank
//     block units.
//   - A full performance-simulation stack under internal/, driven by the
//     attachesim command, that reproduces every table and figure of the
//     paper's evaluation (see DESIGN.md and EXPERIMENTS.md).
//
// Quickstart:
//
//	mem, err := attache.NewMemory(attache.DefaultOptions())
//	if err != nil { ... }
//	line := make([]byte, attache.LineSize)
//	copy(line, myData)
//	if err := mem.Write(42, line); err != nil { ... }
//	back, err := mem.Read(42)
//	savings := mem.Stats.BandwidthSavings()
package attache

import (
	"attache/internal/core"
)

// LineSize is the memory-block granularity of the framework: one 64-byte
// cacheline.
const LineSize = core.LineSize

// SubRankBlock is the transfer unit of one sub-rank: 32 bytes.
const SubRankBlock = core.SubRankBlock

// Options configures a framework: CID width, seed, predictor sizing.
type Options = core.Options

// Framework is the Attaché engine: compression, scrambling, BLEM, COPR.
type Framework = core.Framework

// Memory is a functional compressed memory built on the framework.
type Memory = core.Memory

// MemoryStats aggregates a Memory's traffic in paper units.
type MemoryStats = core.MemoryStats

// StoredLine is the physical two-block image of a stored line.
type StoredLine = core.StoredLine

// AccessTrace reports the cost of one framework operation.
type AccessTrace = core.AccessTrace

// DefaultOptions returns the paper's configuration: a 15-bit CID and the
// 368 KB COPR predictor.
func DefaultOptions() Options { return core.DefaultOptions() }

// New builds a Framework.
func New(opts Options) (*Framework, error) { return core.New(opts) }

// NewMemory builds a functional compressed Memory.
func NewMemory(opts Options) (*Memory, error) { return core.NewMemory(opts) }
