// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation (DESIGN.md §3 maps ids to artifacts), plus ablation
// benches for the design choices DESIGN.md §6 calls out.
//
// Each figure bench runs its experiment end-to-end at a reduced scale and
// prints the same rows/series the paper reports (visible with -v). For
// paper-scale numbers use:
//
//	go run ./cmd/attachesim -experiment all -scale 2
package attache_test

import (
	"fmt"
	"testing"

	"attache"
	"attache/internal/blem"
	"attache/internal/compress"
	"attache/internal/config"
	"attache/internal/dram"
	"attache/internal/exp"
	"attache/internal/scramble"
	"attache/internal/sim"
	"attache/internal/trace"

	"math/rand"
)

// benchScale keeps every figure bench in single-digit seconds.
const benchScale = 0.15

func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		h := exp.NewHarness(benchScale)
		_, runners := h.Experiments()
		tab, err := runners[id]()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tab.String())
		}
	}
}

// BenchmarkFig1 regenerates Figure 1: metadata traffic overhead with a
// 1 MB metadata cache, per benchmark.
func BenchmarkFig1(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFig2 regenerates Figure 2: baseline vs sub-ranking vs
// sub-ranking + compression latency/bandwidth micro-comparison.
func BenchmarkFig2(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFig4 regenerates Figure 4: % of cachelines compressible to
// 30 bytes under the real BDI/FPC codecs.
func BenchmarkFig4(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5 regenerates Figure 5: metadata-cache size sweep.
func BenchmarkFig5(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig8 regenerates Figure 8: CID collision probability vs
// number of accesses (analytic + Monte-Carlo through the scrambler).
func BenchmarkFig8(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkTable1 regenerates Table I: CID width vs information bits vs
// collision probability.
func BenchmarkTable1(b *testing.B) { runExperiment(b, "tab1") }

// BenchmarkFig11 regenerates Figure 11: COPR prediction accuracy.
func BenchmarkFig11(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12 regenerates Figure 12: speedup of MDCache / Attaché /
// Ideal over the uncompressed baseline.
func BenchmarkFig12(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFig13 regenerates Figure 13: normalized energy.
func BenchmarkFig13(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkFig14 regenerates Figure 14: bandwidth usage and average
// memory latency per system.
func BenchmarkFig14(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkFig15 regenerates Figure 15: normalized request counts under
// metadata caching.
func BenchmarkFig15(b *testing.B) { runExperiment(b, "fig15") }

// BenchmarkFig16 regenerates Figure 16: metadata-cache hit rate under
// LRU / DRRIP / SHiP.
func BenchmarkFig16(b *testing.B) { runExperiment(b, "fig16") }

// BenchmarkFig17 regenerates Figure 17: speedup by COPR component mix.
func BenchmarkFig17(b *testing.B) { runExperiment(b, "fig17") }

// --- Ablation benches (DESIGN.md §6) ------------------------------------

// BenchmarkAblationCIDWidth sweeps the CID width and reports the measured
// collision rate and Replacement Area traffic — the trade Table I frames.
func BenchmarkAblationCIDWidth(b *testing.B) {
	for _, bits := range []int{7, 11, 13, 14, 15} {
		b.Run(fmt.Sprintf("cid%d", bits), func(b *testing.B) {
			scr := scramble.New(0x5EED)
			line := make([]byte, 64)
			for i := 0; i < b.N; i++ {
				e := blem.NewEngine(bits, 99)
				const n = 200000
				collisions := 0
				for j := 0; j < n; j++ {
					for k := range line {
						line[k] = 0
					}
					scr.Apply(uint64(j), line)
					if _, c := e.StoreUncompressed(uint64(j), line); c {
						collisions++
					}
				}
				if i == 0 {
					b.Logf("cid=%d collisions=%d/%d (analytic %.5f%%)",
						bits, collisions, n, blem.CollisionProbability(bits)*100)
				}
			}
		})
	}
}

// BenchmarkAblationScrambling quantifies why BLEM needs the scrambler:
// with adversarial all-zero data and a zero CID, every unscrambled store
// collides; scrambling restores the 2^-15 rate.
func BenchmarkAblationScrambling(b *testing.B) {
	line := make([]byte, 64)
	scr := scramble.New(0xD00D)
	for i := 0; i < b.N; i++ {
		collideScrambled, collideRaw := 0, 0
		const n = 100000
		eS := blem.NewEngine(15, 4) // engine CID is whatever the seed gives
		eR := blem.NewEngine(15, 4)
		// Adversarial content: the first two bytes of every line equal
		// the CID pattern.
		h := eR.CID() << 1
		for j := 0; j < n; j++ {
			for k := range line {
				line[k] = 0
			}
			line[0], line[1] = byte(h>>8), byte(h)
			if _, c := eR.StoreUncompressed(uint64(j), line); c {
				collideRaw++
			}
			scr.Apply(uint64(j), line)
			if _, c := eS.StoreUncompressed(uint64(j), line); c {
				collideScrambled++
			}
		}
		if i == 0 {
			b.Logf("adversarial data: raw collisions=%d/%d, scrambled=%d/%d",
				collideRaw, n, collideScrambled, n)
		}
	}
}

// BenchmarkAblationWriteWatermark sweeps the write-drain watermark and
// reports runtime on a write-heavy workload.
func BenchmarkAblationWriteWatermark(b *testing.B) {
	prof, err := trace.ByName("lbm")
	if err != nil {
		b.Fatal(err)
	}
	for _, hw := range []int{8, 24, 48, 60} {
		b.Run(fmt.Sprintf("high%d", hw), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := config.Default()
				cfg.DRAM.WriteHighWater = hw
				cfg.DRAM.WriteLowWater = hw / 3
				m, err := exp.Run(exp.RunConfig{
					Cfg: cfg, Kind: config.SystemAttache,
					Profiles:        exp.RateMode(prof, cfg.CPU.Cores),
					AccessesPerCore: 3000, Seed: 42,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("highwater=%d cycles=%d latency=%.0f", hw, m.Cycles, m.AvgReadLatency)
				}
			}
		})
	}
}

// BenchmarkAblationSubRankPlacement compares the paper's row-parity
// compressed-line placement against this implementation's row+column
// parity on a streaming workload (see memctrl.subRankFor).
func BenchmarkAblationSubRankPlacement(b *testing.B) {
	// Directly measurable at the channel level: a stream of compressed
	// (32-byte) reads whose sub-rank is chosen by either policy.
	for _, policy := range []string{"row-parity", "row+col-parity"} {
		b.Run(policy, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := sim.NewEngine()
				ch := dram.NewChannel(eng, config.Default(), 0)
				var last sim.Time
				const n = 1024
				for j := 0; j < n; j++ {
					row, col := 1+j/128, j%128
					parity := row % 2
					if policy == "row+col-parity" {
						parity = (row + col) % 2
					}
					mask := dram.SubRank0
					if parity == 0 {
						mask = dram.SubRank1
					}
					ch.Submit(&dram.Request{Loc: dram.Location{Row: row, Col: col}, SubRanks: mask,
						Done: func(now sim.Time) { last = now }})
				}
				eng.RunUntilDone(1e7)
				if i == 0 {
					b.Logf("%s: %d compressed reads in %d cycles", policy, n, last)
				}
			}
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed: simulated
// memory references per wall-second for the full 8-core Attaché stack.
func BenchmarkSimulatorThroughput(b *testing.B) {
	prof, err := trace.ByName("zeusmp")
	if err != nil {
		b.Fatal(err)
	}
	cfg := config.Default()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := exp.Run(exp.RunConfig{
			Cfg: cfg, Kind: config.SystemAttache,
			Profiles:        exp.RateMode(prof, cfg.CPU.Cores),
			AccessesPerCore: 4000, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = m
	}
	b.ReportMetric(float64(4000*cfg.CPU.Cores*b.N), "memrefs/op-total")
}

// BenchmarkFrameworkStoreLoad measures the functional path: full
// compress + scramble + BLEM store and predict + classify + decompress
// load per line.
func BenchmarkFrameworkStoreLoad(b *testing.B) {
	mem, err := attache.NewMemory(attache.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	line := make([]byte, 64)
	for i := 0; i < 8; i++ {
		line[i*8] = byte(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i % 8192)
		if err := mem.Write(addr, line); err != nil {
			b.Fatal(err)
		}
		if _, err := mem.Read(addr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFAW shows the effect of enabling the DDR4 four-activate
// window (not specified in Table II, so disabled by default) on a
// row-miss-heavy workload.
func BenchmarkAblationFAW(b *testing.B) {
	prof, err := trace.ByName("RAND")
	if err != nil {
		b.Fatal(err)
	}
	for _, faw := range []int64{0, 28} {
		b.Run(fmt.Sprintf("tfaw%d", faw), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := config.Default()
				cfg.DRAM.TFAW = faw
				m, err := exp.Run(exp.RunConfig{
					Cfg: cfg, Kind: config.SystemAttache,
					Profiles:        exp.RateMode(prof, cfg.CPU.Cores),
					AccessesPerCore: 2500, Seed: 42,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("tFAW=%d cycles=%d latency=%.0f", faw, m.Cycles, m.AvgReadLatency)
				}
			}
		})
	}
}

// BenchmarkAblationExtendedEngine compares the paper's BDI+FPC engine
// against the extended engine with the CPack dictionary codec on each
// workload's data (compressibility gained per benchmark).
func BenchmarkAblationExtendedEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		std := 0
		ext := 0
		const samples = 2000
		scratch := make([]byte, trace.LineSize)
		for _, p := range trace.Catalog() {
			dm := p.DataModel()
			se := benchStdEngine()
			ee := benchExtEngine()
			for a := uint64(0); a < samples; a++ {
				line := dm.LineInto(a, scratch)
				if se.Compressible(line) {
					std++
				}
				if ee.Compressible(line) {
					ext++
				}
			}
		}
		// Dictionary-style data (few distinct words per line): the
		// extension's target case.
		rng := rand.New(rand.NewSource(9))
		dictStd, dictExt := 0, 0
		se, ee := benchStdEngine(), benchExtEngine()
		line := make([]byte, 64)
		for t := 0; t < samples; t++ {
			vocab := [3]uint32{rng.Uint32(), rng.Uint32(), rng.Uint32()}
			for w := 0; w < 16; w++ {
				v := vocab[rng.Intn(3)]
				line[w*4] = byte(v)
				line[w*4+1] = byte(v >> 8)
				line[w*4+2] = byte(v >> 16)
				line[w*4+3] = byte(v >> 24)
			}
			if se.Compressible(line) {
				dictStd++
			}
			if ee.Compressible(line) {
				dictExt++
			}
		}
		if i == 0 {
			total := samples * len(trace.Catalog())
			b.Logf("catalog data: bdi+fpc %d/%d, +cpack %d/%d", std, total, ext, total)
			b.Logf("dictionary data: bdi+fpc %d/%d, +cpack %d/%d", dictStd, samples, dictExt, samples)
		}
	}
}

func benchStdEngine() *compress.Engine { return compress.NewEngine() }

func benchExtEngine() *compress.Engine { return compress.NewExtendedEngine() }

// BenchmarkPredictorsExtension regenerates the §VII-A comparison: COPR
// vs an ECC-metadata system with a last-outcome predictor.
func BenchmarkPredictorsExtension(b *testing.B) { runExperiment(b, "predictors") }

// BenchmarkEnergyBreakdown regenerates the per-component energy split.
func BenchmarkEnergyBreakdown(b *testing.B) { runExperiment(b, "energy") }

// BenchmarkAblationLLCPrefetch compares the systems with and without the
// LLC's next-line prefetcher on a strided workload — prefetching raises
// memory pressure, which compression then relieves.
func BenchmarkAblationLLCPrefetch(b *testing.B) {
	prof, err := trace.ByName("leslie3d")
	if err != nil {
		b.Fatal(err)
	}
	for _, pf := range []bool{false, true} {
		b.Run(fmt.Sprintf("prefetch=%v", pf), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := config.Default()
				cfg.CPU.LLCPrefetch = pf
				var cyc [2]int64
				for j, k := range []config.SystemKind{config.SystemBaseline, config.SystemAttache} {
					m, err := exp.Run(exp.RunConfig{
						Cfg: cfg, Kind: k,
						Profiles:        exp.RateMode(prof, cfg.CPU.Cores),
						AccessesPerCore: 2500, Seed: 42,
					})
					if err != nil {
						b.Fatal(err)
					}
					cyc[j] = int64(m.Cycles)
				}
				if i == 0 {
					b.Logf("prefetch=%v: baseline=%d attache=%d speedup=%.3f",
						pf, cyc[0], cyc[1], float64(cyc[0])/float64(cyc[1]))
				}
			}
		})
	}
}

// BenchmarkSchedulerAblation compares FR-FCFS against strict FCFS and
// open-page against closed-page row policies (DESIGN.md §7).
func BenchmarkSchedulerAblation(b *testing.B) {
	prof, err := trace.ByName("zeusmp")
	if err != nil {
		b.Fatal(err)
	}
	variants := []struct {
		name         string
		fcfs, closed bool
	}{
		{"frfcfs-open", false, false},
		{"fcfs-open", true, false},
		{"frfcfs-closed", false, true},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := config.Default()
				cfg.DRAM.SchedFCFS = v.fcfs
				cfg.DRAM.ClosedPage = v.closed
				m, err := exp.Run(exp.RunConfig{
					Cfg: cfg, Kind: config.SystemAttache,
					Profiles:        exp.RateMode(prof, cfg.CPU.Cores),
					AccessesPerCore: 2500, Seed: 42,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("%s: cycles=%d latency=%.0f", v.name, m.Cycles, m.AvgReadLatency)
				}
			}
		})
	}
}
