package shard

import (
	"context"
	"errors"
	"testing"
	"time"

	"attache/internal/core"
)

// TestDoCtxExpiredBeforeSubmit is the deadline-propagation table: a
// context that is already dead must return immediately from DoCtx (and
// the Read/Write wrappers) without enqueueing anything — no stats
// movement, no robust-counter movement.
func TestDoCtxExpiredBeforeSubmit(t *testing.T) {
	e := newTestEngine(t, 2, Config{})
	if err := e.Write(1, testLine(1)); err != nil {
		t.Fatal(err)
	}
	before := e.StatsSnapshot()

	expired, cancelE := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancelE()
	cancelled, cancelC := context.WithCancel(context.Background())
	cancelC()

	cases := []struct {
		name    string
		ctx     context.Context
		wantErr error
	}{
		{"expired deadline", expired, context.DeadlineExceeded},
		{"cancelled", cancelled, context.Canceled},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := e.DoCtx(tc.ctx, []Op{{Addr: 1}}); !errors.Is(err, tc.wantErr) {
				t.Fatalf("DoCtx err = %v, want %v", err, tc.wantErr)
			}
			if _, err := e.ReadCtx(tc.ctx, 1); !errors.Is(err, tc.wantErr) {
				t.Fatalf("ReadCtx err = %v, want %v", err, tc.wantErr)
			}
			if err := e.WriteCtx(tc.ctx, 2, testLine(2)); !errors.Is(err, tc.wantErr) {
				t.Fatalf("WriteCtx err = %v, want %v", err, tc.wantErr)
			}
		})
	}

	after := e.StatsSnapshot()
	if after.Total != before.Total {
		t.Fatalf("dead-context submissions moved the counters:\n before %+v\n after  %+v", before.Total, after.Total)
	}
	if after.Robust != (RobustStats{}) {
		t.Fatalf("dead-context submissions touched robust counters: %+v", after.Robust)
	}
}

// TestDoCtxMatchesDoWhenHealthy pins that a live context changes nothing
// about results: DoCtx with headroom behaves exactly like Do.
func TestDoCtxMatchesDoWhenHealthy(t *testing.T) {
	e := newTestEngine(t, 4, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for a := uint64(0); a < 128; a++ {
		if err := e.WriteCtx(ctx, a, testLine(a)); err != nil {
			t.Fatalf("WriteCtx %d: %v", a, err)
		}
	}
	res, err := e.DoCtx(ctx, []Op{{Addr: 3}, {Addr: 99}, {Write: true, Addr: 1000, Data: testLine(9)}})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("op %d: %v", i, r.Err)
		}
	}
	got, err := e.ReadCtx(ctx, 1000)
	if err != nil || string(got) != string(testLine(9)) {
		t.Fatalf("ReadCtx round trip: %v", err)
	}
}

// TestMidQueueCancellationFreesSlot enqueues a task behind a slow op,
// cancels it while it waits, and verifies the worker skips it without
// executing: the op reports context.Canceled (not ErrNeverWritten, which
// is what executing it would produce), the canceled counter moves, and
// the shard keeps serving afterwards.
func TestMidQueueCancellationFreesSlot(t *testing.T) {
	e := newTestEngine(t, 1, Config{
		QueueDepth: 4,
		Faults:     FaultPlan{Seed: 7, DelayP: 1, Delay: 100 * time.Millisecond},
	})

	// Occupy the worker: every op sleeps 100ms under the fault plan.
	blocker := make(chan struct{})
	go func() {
		defer close(blocker)
		e.Do([]Op{{Write: true, Addr: 1, Data: testLine(1)}})
	}()
	time.Sleep(20 * time.Millisecond) // let the blocker reach the worker

	ctx, cancel := context.WithCancel(context.Background())
	resc := make(chan []Result, 1)
	go func() {
		res, err := e.DoCtx(ctx, []Op{{Addr: 9999}}) // never-written addr: executing it would say so
		if err != nil {
			t.Errorf("DoCtx whole-call err = %v, want per-op error", err)
		}
		resc <- res
	}()
	time.Sleep(20 * time.Millisecond) // let it enqueue behind the blocker
	cancel()

	select {
	case res := <-resc:
		if !errors.Is(res[0].Err, context.Canceled) {
			t.Fatalf("mid-queue op err = %v, want context.Canceled", res[0].Err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled task never resolved")
	}
	<-blocker

	if got := e.StatsSnapshot().Robust.Canceled; got != 1 {
		t.Fatalf("canceled counter = %d, want 1", got)
	}
	// The slot is free and the shard still serves.
	if err := e.Write(2, testLine(2)); err != nil {
		t.Fatalf("write after cancellation: %v", err)
	}
	if _, err := e.Read(9999); !errors.Is(err, core.ErrNeverWritten) {
		t.Fatal("cancelled read must not have executed")
	}
}

// TestDoCtxShedsOnFullQueue drives a 1-deep queue into saturation and
// checks the admission-control contract: DoCtx fails fast with
// core.ErrOverloaded, counts the shed, and never blocks; plain Do on the
// same engine still applies backpressure and completes.
func TestDoCtxShedsOnFullQueue(t *testing.T) {
	e := newTestEngine(t, 1, Config{
		QueueDepth: 1,
		Faults:     FaultPlan{Seed: 3, DelayP: 1, Delay: 80 * time.Millisecond},
	})

	// One op executing (worker sleeps), one op parked in the queue.
	first := make(chan struct{})
	go func() { defer close(first); e.Do([]Op{{Write: true, Addr: 1, Data: testLine(1)}}) }()
	time.Sleep(20 * time.Millisecond)
	second := make(chan struct{})
	go func() { defer close(second); e.Do([]Op{{Write: true, Addr: 2, Data: testLine(2)}}) }()
	time.Sleep(20 * time.Millisecond)

	start := time.Now()
	res, err := e.DoCtx(context.Background(), []Op{{Addr: 1}, {Addr: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if waited := time.Since(start); waited > 50*time.Millisecond {
		t.Fatalf("shed admission took %v, must not block", waited)
	}
	for i, r := range res {
		if !errors.Is(r.Err, core.ErrOverloaded) {
			t.Fatalf("op %d err = %v, want ErrOverloaded", i, r.Err)
		}
	}
	if got := e.StatsSnapshot().Robust.Sheds; got != 2 {
		t.Fatalf("sheds = %d, want 2", got)
	}

	<-first
	<-second
	// Once the queue drains, DoCtx admits again.
	if _, err := e.ReadCtx(context.Background(), 1); err != nil {
		t.Fatalf("read after drain: %v", err)
	}
}
