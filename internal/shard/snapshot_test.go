package shard

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"attache/internal/core"
	"attache/internal/snap"
	"attache/internal/tier"
)

// seededBatch builds the i-th batch of a deterministic chaos-flavored
// op sequence: single writes, single reads, and 8-op mixed batches over
// a 256-line working set, exactly the shape TestPassthroughBitIdentity
// pins for cluster passthrough.
func seededBatch(rng *rand.Rand, i int) []Op {
	switch rng.Intn(3) {
	case 0:
		return []Op{{Write: true, Addr: uint64(rng.Intn(256)), Data: testLine(uint64(i))}}
	case 1:
		return []Op{{Addr: uint64(rng.Intn(256))}}
	default:
		ops := make([]Op, 0, 8)
		for j := 0; j < 8; j++ {
			addr := uint64(rng.Intn(256))
			if j%2 == 0 {
				ops = append(ops, Op{Write: true, Addr: addr, Data: testLine(uint64(i*8 + j))})
			} else {
				ops = append(ops, Op{Addr: addr})
			}
		}
		return ops
	}
}

// runLockstep submits the same seeded batches to both engines and
// fails on the first per-op divergence (data bytes, error presence, or
// error text).
func runLockstep(t *testing.T, a, b *Engine, rng *rand.Rand, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		ops := seededBatch(rng, i)
		want, werr := a.Do(append([]Op(nil), ops...))
		got, gerr := b.Do(append([]Op(nil), ops...))
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("batch %d: call errors diverged: %v vs %v", i, werr, gerr)
		}
		for k := range want {
			if !bytes.Equal(want[k].Data, got[k].Data) {
				t.Fatalf("batch %d op %d: data diverged", i, k)
			}
			if (want[k].Err == nil) != (got[k].Err == nil) {
				t.Fatalf("batch %d op %d: errors diverged: %v vs %v", i, k, want[k].Err, got[k].Err)
			}
			if want[k].Err != nil && want[k].Err.Error() != got[k].Err.Error() {
				t.Fatalf("batch %d op %d: error text diverged: %q vs %q", i, k, want[k].Err, got[k].Err)
			}
		}
	}
}

// TestSnapshotRestoreEquivalence is the acceptance gate for engine
// snapshot/restore, the pin alongside TestPassthroughBitIdentity: run a
// seeded workload to its midpoint, snapshot, restore into a fresh
// engine, and the second half must be byte-identical op for op on both
// — finishing with byte-identical stats (and tier) snapshots.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	configs := map[string]*tier.Config{
		"untiered": nil,
		"tiered":   {NearLines: 12, Policy: tier.PolicyFreq, FreqThreshold: 2, FreqDecayEvery: 64},
		"lru":      {NearLines: 16, Policy: tier.PolicyLRU},
	}
	for name, tc := range configs {
		t.Run(name, func(t *testing.T) {
			opts := core.DefaultOptions()
			opts.Seed = 7
			cfg := Config{Shards: 2, Tier: tc}
			a, err := New(opts, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer a.Close()

			// First half on the original engine only.
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < 200; i++ {
				if _, err := a.Do(seededBatch(rng, i)); err != nil {
					t.Fatal(err)
				}
			}

			// Snapshot mid-workload and restore. The snapshot carries the
			// options, tier config, and shard count; cfg stays empty.
			b, err := RestoreEngine(a.ExportState(), Config{})
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			defer b.Close()
			if b.Tiered() != a.Tiered() {
				t.Fatalf("restored engine tiered = %v, want %v", b.Tiered(), a.Tiered())
			}

			// The restored engine must already agree on the books...
			if as, bs := a.StatsSnapshot(), b.StatsSnapshot(); !reflect.DeepEqual(as, bs) {
				t.Fatalf("post-restore snapshots diverged:\noriginal %+v\nrestored %+v", as, bs)
			}

			// ...and stay in lockstep through the second half.
			runLockstep(t, a, b, rng, 200, 400)
			if as, bs := a.StatsSnapshot(), b.StatsSnapshot(); !reflect.DeepEqual(as, bs) {
				t.Fatalf("final snapshots diverged:\noriginal %+v\nrestored %+v", as, bs)
			}
			if tc != nil {
				at, _ := a.TierSnapshot()
				bt, _ := b.TierSnapshot()
				if !reflect.DeepEqual(at, bt) {
					t.Fatalf("tier snapshots diverged:\noriginal %+v\nrestored %+v", at, bt)
				}
			}
		})
	}
}

// TestSnapshotRestoreFromStream: the same equivalence holds through
// the wire format — WriteSnapshot then RestoreEngineFrom, not just the
// in-memory state tree.
func TestSnapshotRestoreFromStream(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Seed = 11
	a, err := New(opts, Config{Shards: 3, Tier: &tier.Config{NearLines: 8}})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 150; i++ {
		if _, err := a.Do(seededBatch(rng, i)); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := a.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := RestoreEngineFrom(&buf, Config{})
	if err != nil {
		t.Fatalf("restore from stream: %v", err)
	}
	defer b.Close()

	runLockstep(t, a, b, rng, 150, 300)
	if as, bs := a.StatsSnapshot(), b.StatsSnapshot(); !reflect.DeepEqual(as, bs) {
		t.Fatalf("snapshots diverged after stream restore:\noriginal %+v\nrestored %+v", as, bs)
	}
}

// TestSnapshotAfterClose: -snapshot-on-drain captures final state after
// Close; the restored engine must serve reads of everything written and
// carry the exact final books.
func TestSnapshotAfterClose(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Seed = 3
	a, err := New(opts, Config{Shards: 2, Tier: &tier.Config{NearLines: 4}})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[uint64][]byte)
	for i := 0; i < 64; i++ {
		addr := uint64(i % 32)
		line := testLine(uint64(i))
		if err := a.Write(addr, line); err != nil {
			t.Fatal(err)
		}
		want[addr] = line
	}
	stats := a.StatsSnapshot()
	a.Close()

	b, err := RestoreEngine(a.ExportState(), Config{})
	if err != nil {
		t.Fatalf("restore after close: %v", err)
	}
	defer b.Close()
	if bs := b.StatsSnapshot(); !reflect.DeepEqual(stats, bs) {
		t.Fatalf("restored stats diverged from pre-close books:\nwant %+v\ngot  %+v", stats, bs)
	}
	for addr, line := range want {
		got, err := b.Read(addr)
		if err != nil {
			t.Fatalf("read %#x after restore: %v", addr, err)
		}
		if !bytes.Equal(got, line) {
			t.Fatalf("line %#x diverged after restore", addr)
		}
	}
}

// TestZeroCapacityNearEngineBitIdentity: an engine configured with a
// zero-capacity near tier is bit-identical to a plain engine — same
// data, same errors, same stats books — with the tier section showing
// pure far traffic.
func TestZeroCapacityNearEngineBitIdentity(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Seed = 5
	plain, err := New(opts, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	tiered, err := New(opts, Config{Shards: 2, Tier: &tier.Config{NearLines: 0}})
	if err != nil {
		t.Fatal(err)
	}
	defer tiered.Close()

	rng := rand.New(rand.NewSource(9))
	runLockstep(t, plain, tiered, rng, 0, 300)

	ps, ts := plain.StatsSnapshot(), tiered.StatsSnapshot()
	if ts.Tiers == nil {
		t.Fatal("tiered engine snapshot has no tier section")
	}
	if ts.Tiers.NearReads != 0 || ts.Tiers.NearWrites != 0 || ts.Tiers.Promotions != 0 || ts.Tiers.NearResident != 0 {
		t.Fatalf("zero-capacity near tier saw traffic: %+v", ts.Tiers)
	}
	// Blind the comparison to the tier section itself: everything else
	// (totals, per-shard, percentiles) must match the plain engine.
	ts.Tiers = nil
	if !reflect.DeepEqual(ps, ts) {
		t.Fatalf("zero-capacity tiered stats diverged from plain engine:\nplain  %+v\ntiered %+v", ps, ts)
	}
}

// TestRestoreEngineRejects pins the restore-side validation: empty
// snapshots, shard-count mismatches, and caller-supplied tier configs
// are refused up front.
func TestRestoreEngineRejects(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Seed = 1
	eng, err := New(opts, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	st := eng.ExportState()

	cases := []struct {
		name string
		st   *snap.EngineState
		cfg  Config
		want string
	}{
		{"nil-state", nil, Config{}, "no shards"},
		{"empty-state", &snap.EngineState{}, Config{}, "no shards"},
		{"shard-mismatch", st, Config{Shards: 5}, "configured 5 shards but snapshot has 2"},
		{"caller-tier", st, Config{Tier: &tier.Config{NearLines: 4}}, "cfg.Tier must be nil"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, err := RestoreEngine(tc.st, tc.cfg)
			if err == nil {
				e.Close()
				t.Fatalf("restore succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	t.Run("multi-engine-stream", func(t *testing.T) {
		var buf bytes.Buffer
		if err := snap.Encode(&buf, &snap.ClusterState{Engines: []*snap.EngineState{st, st}}); err != nil {
			t.Fatal(err)
		}
		e, err := RestoreEngineFrom(&buf, Config{})
		if err == nil {
			e.Close()
			t.Fatal("RestoreEngineFrom accepted a 2-engine snapshot")
		}
		if !strings.Contains(err.Error(), "want 1") {
			t.Fatalf("error %q does not point at the cluster restore path", err)
		}
	})
}
