package shard

import (
	"context"
	"testing"

	"attache/internal/core"
	"attache/internal/obs"
)

// TestSpanTimelineBalanced pins the span contract: every traced
// submission produces, per touched shard, exactly one enqueue, one
// dequeue, and one execute span covering the same op count, plus one
// request-level respond event — and the dequeue/execute spans decompose
// into non-negative queue-wait and service time.
func TestSpanTimelineBalanced(t *testing.T) {
	o := obs.New(obs.Config{Seed: 1})
	e, err := New(core.DefaultOptions(), Config{Shards: 4, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	line := make([]byte, core.LineSize)
	ops := make([]Op, 32)
	for i := range ops {
		ops[i] = Op{Write: true, Addr: uint64(i * 97), Data: line}
	}
	tr := obs.NewTrace(0xabc)
	ctx := obs.ContextWithTrace(context.Background(), tr)
	res, err := e.DoCtx(ctx, ops)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("op %d: %v", i, r.Err)
		}
	}

	type key struct {
		stage obs.Stage
		shard int
	}
	spans := make(map[key]int) // ops covered per (stage, shard)
	responds := 0
	for _, ev := range tr.Events() {
		if ev.End < ev.Start {
			t.Fatalf("event %v ends before it starts", ev)
		}
		if ev.Stage == obs.StageRespond {
			responds++
			if ev.Shard != -1 || ev.Ops != len(ops) {
				t.Fatalf("respond event = shard %d, ops %d; want -1, %d", ev.Shard, ev.Ops, len(ops))
			}
			continue
		}
		spans[key{ev.Stage, ev.Shard}] += ev.Ops
	}
	if responds != 1 {
		t.Fatalf("got %d respond events, want 1", responds)
	}
	totalPerStage := make(map[obs.Stage]int)
	for k, n := range spans {
		totalPerStage[k.stage] += n
		// Each shard's three stages must agree on the op count.
		if d := spans[key{obs.StageDequeue, k.shard}]; d != spans[key{obs.StageEnqueue, k.shard}] {
			t.Fatalf("shard %d: dequeue covers %d ops, enqueue %d", k.shard, d, spans[key{obs.StageEnqueue, k.shard}])
		}
		if x := spans[key{obs.StageExecute, k.shard}]; x != spans[key{obs.StageEnqueue, k.shard}] {
			t.Fatalf("shard %d: execute covers %d ops, enqueue %d", k.shard, x, spans[key{obs.StageEnqueue, k.shard}])
		}
	}
	for _, st := range []obs.Stage{obs.StageEnqueue, obs.StageDequeue, obs.StageExecute} {
		if totalPerStage[st] != len(ops) {
			t.Fatalf("stage %v covers %d ops total, want %d", st, totalPerStage[st], len(ops))
		}
	}
	qw, sv, tot := tr.Decompose()
	if sv <= 0 {
		t.Fatalf("service time %v, want > 0", sv)
	}
	if tot < qw+0 || tot < sv {
		t.Fatalf("total %v below components (wait %v, service %v)", tot, qw, sv)
	}
}

// TestEngineSampledTraceReachesRing covers the engine-owned sampling
// path: with SampleRate 1 a plain Do (no context, no explicit trace) is
// traced and finished into the observer's ring.
func TestEngineSampledTraceReachesRing(t *testing.T) {
	o := obs.New(obs.Config{SampleRate: 1, Seed: 1})
	e, err := New(core.DefaultOptions(), Config{Shards: 2, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	line := make([]byte, core.LineSize)
	if err := e.Write(7, line); err != nil {
		t.Fatal(err)
	}
	recent := o.Recent(1)
	if len(recent) != 1 {
		t.Fatalf("ring holds %d traces after a sampled Do, want 1", len(recent))
	}
	stages := make(map[string]bool)
	for _, ev := range recent[0].Events {
		stages[ev.Stage] = true
	}
	for _, want := range []string{"enqueue", "dequeue", "execute", "respond"} {
		if !stages[want] {
			t.Fatalf("sampled timeline missing stage %q: %+v", want, recent[0].Events)
		}
	}
	if id, err := obs.ParseTraceID(recent[0].TraceID); err != nil {
		t.Fatalf("ring trace ID %q unparseable: %v", recent[0].TraceID, err)
	} else if _, ok := o.Timeline(id); !ok {
		t.Fatalf("trace %s not resolvable by ID", recent[0].TraceID)
	}
}

// TestUnsampledPathAllocationFree pins the zero-cost-when-off
// guarantee: an engine with an observer at sample rate 0 allocates
// exactly as much per op as an engine with no observer at all.
func TestUnsampledPathAllocationFree(t *testing.T) {
	mk := func(o *obs.Observer) *Engine {
		e, err := New(core.DefaultOptions(), Config{Shards: 1, Obs: o})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	line := make([]byte, core.LineSize)
	single := []Op{{Write: true, Addr: 3, Data: line}}
	batch := make([]Op, 8)
	for i := range batch {
		batch[i] = Op{Write: true, Addr: uint64(i * 131), Data: line}
	}
	measure := func(e *Engine, ops []Op) float64 {
		return testing.AllocsPerRun(200, func() {
			if _, err := e.Do(ops); err != nil {
				t.Fatal(err)
			}
		})
	}
	plain := mk(nil)
	defer plain.Close()
	unsampled := mk(obs.New(obs.Config{SampleRate: 0, Seed: 1}))
	defer unsampled.Close()

	// The whole submit path — routing, inline execution, envelope pooling
	// — must cost the same with an idle observer, for single ops and for
	// batches.
	for _, ops := range [][]Op{single, batch} {
		base, withObs := measure(plain, ops), measure(unsampled, ops)
		if withObs > base {
			t.Fatalf("unsampled observer path allocates %.1f per %d-op Do vs %.1f without observer",
				withObs, len(ops), base)
		}
	}
}

// TestGaugesTrackQueueState checks the telemetry surface: gauges exist
// per shard, and after traffic the last-batch gauge reflects the final
// submitted batch size.
func TestGaugesTrackQueueState(t *testing.T) {
	e, err := New(core.DefaultOptions(), Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	g := e.Gauges()
	if len(g) != 2 || g[0].Shard != 0 || g[1].Shard != 1 {
		t.Fatalf("fresh gauges = %+v", g)
	}
	line := make([]byte, core.LineSize)
	for a := uint64(0); a < 64; a++ {
		if err := e.Write(a, line); err != nil {
			t.Fatal(err)
		}
	}
	var lastBatch, inflight int64
	for _, s := range e.Gauges() {
		if s.LastBatchOps > lastBatch {
			lastBatch = s.LastBatchOps
		}
		inflight += s.InFlight
	}
	if lastBatch != 1 {
		t.Fatalf("last batch gauge = %d after single-op writes, want 1", lastBatch)
	}
	if inflight != 0 {
		t.Fatalf("in-flight gauge = %d after quiescence, want 0", inflight)
	}
}
