package shard

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"attache/internal/core"
)

// BenchmarkShardedThroughput measures lines/second through the engine at
// 1..8 shards against the single-Memory serial baseline, with every
// client goroutine submitting mixed 64-op batches (3 reads per write).
// Scaling beyond 1 shard needs >1 CPU; on a 1-CPU host the sharded
// numbers track the baseline minus pipeline overhead.
func BenchmarkShardedThroughput(b *testing.B) {
	const batch = 64
	const space = 1 << 14 // line addresses touched

	mkOps := func(rng *rand.Rand, line []byte) []Op {
		ops := make([]Op, batch)
		for i := range ops {
			a := uint64(rng.Intn(space))
			if i%4 == 0 {
				ops[i] = Op{Write: true, Addr: a, Data: line}
			} else {
				ops[i] = Op{Addr: a % (space / 2)} // reads stay in the prefilled half
			}
		}
		return ops
	}
	line := make([]byte, core.LineSize)
	for w := 0; w < 8; w++ {
		line[w*8] = byte(w)
	}

	b.Run("baseline-memory", func(b *testing.B) {
		mem, err := core.NewMemory(core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		for a := uint64(0); a < space/2; a++ {
			if err := mem.Write(a, line); err != nil {
				b.Fatal(err)
			}
		}
		rng := rand.New(rand.NewSource(1))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, op := range mkOps(rng, line) {
				if op.Write {
					if err := mem.Write(op.Addr, op.Data); err != nil {
						b.Fatal(err)
					}
				} else if _, err := mem.Read(op.Addr); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "lines/s")
	})

	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards%d", shards), func(b *testing.B) {
			benchShards(b, shards, batch, space, mkOps, line)
		})
	}
}

func benchShards(b *testing.B, shards, batch, space int, mkOps func(*rand.Rand, []byte) []Op, line []byte) {
	e, err := New(core.DefaultOptions(), Config{Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	for a := uint64(0); a < uint64(space/2); a++ {
		if err := e.Write(a, line); err != nil {
			b.Fatal(err)
		}
	}
	var seed atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seed.Add(1)))
		for pb.Next() {
			res, err := e.Do(mkOps(rng, line))
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range res {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
	})
	b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "lines/s")
}

// BenchmarkSubmitLatency isolates the submission pipeline itself: tiny
// fixed batches against a prefilled engine, so ns/op is dominated by
// routing + handoff rather than compression work, and allocs/op is
// exactly the envelope cost the pool is supposed to elide.
//
// The contended/uncontended axis is deterministic, not statistical:
// "uncontended" engines take the inline fast path (idle shard, caller
// executes), "contended" engines are built with the fast path disabled
// so every task pays the full ring handoff — the same path a genuinely
// busy shard would impose.
func BenchmarkSubmitLatency(b *testing.B) {
	line := make([]byte, core.LineSize)
	mkBatch := func(n int) []Op {
		ops := make([]Op, n)
		for i := range ops {
			a := uint64(i * 37)
			if i%2 == 0 {
				ops[i] = Op{Write: true, Addr: a, Data: line}
			} else {
				ops[i] = Op{Addr: a}
			}
		}
		return ops
	}
	for _, mode := range []struct {
		name     string
		noInline bool
	}{
		{"uncontended", false},
		{"contended", true},
	} {
		for _, n := range []int{1, 8} {
			mk := func(b *testing.B) *Engine {
				e, err := New(core.DefaultOptions(), Config{Shards: 4, noInline: mode.noInline})
				if err != nil {
					b.Fatal(err)
				}
				for a := uint64(0); a < 512; a++ {
					if err := e.Write(a, line); err != nil {
						b.Fatal(err)
					}
				}
				return e
			}
			b.Run(fmt.Sprintf("%s/ops%d/serial", mode.name, n), func(b *testing.B) {
				e := mk(b)
				defer e.Close()
				ops := mkBatch(n)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := e.Do(ops); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("%s/ops%d/parallel", mode.name, n), func(b *testing.B) {
				e := mk(b)
				defer e.Close()
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					ops := mkBatch(n)
					for pb.Next() {
						if _, err := e.Do(ops); err != nil {
							b.Fatal(err)
						}
					}
				})
			})
		}
	}
}
