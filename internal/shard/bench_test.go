package shard

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"attache/internal/core"
)

// BenchmarkShardedThroughput measures lines/second through the engine at
// 1..8 shards against the single-Memory serial baseline, with every
// client goroutine submitting mixed 64-op batches (3 reads per write).
// Scaling beyond 1 shard needs >1 CPU; on a 1-CPU host the sharded
// numbers track the baseline minus pipeline overhead.
func BenchmarkShardedThroughput(b *testing.B) {
	const batch = 64
	const space = 1 << 14 // line addresses touched

	mkOps := func(rng *rand.Rand, line []byte) []Op {
		ops := make([]Op, batch)
		for i := range ops {
			a := uint64(rng.Intn(space))
			if i%4 == 0 {
				ops[i] = Op{Write: true, Addr: a, Data: line}
			} else {
				ops[i] = Op{Addr: a % (space / 2)} // reads stay in the prefilled half
			}
		}
		return ops
	}
	line := make([]byte, core.LineSize)
	for w := 0; w < 8; w++ {
		line[w*8] = byte(w)
	}

	b.Run("baseline-memory", func(b *testing.B) {
		mem, err := core.NewMemory(core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		for a := uint64(0); a < space/2; a++ {
			if err := mem.Write(a, line); err != nil {
				b.Fatal(err)
			}
		}
		rng := rand.New(rand.NewSource(1))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, op := range mkOps(rng, line) {
				if op.Write {
					if err := mem.Write(op.Addr, op.Data); err != nil {
						b.Fatal(err)
					}
				} else if _, err := mem.Read(op.Addr); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "lines/s")
	})

	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards%d", shards), func(b *testing.B) {
			e, err := New(core.DefaultOptions(), Config{Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			for a := uint64(0); a < space/2; a++ {
				if err := e.Write(a, line); err != nil {
					b.Fatal(err)
				}
			}
			var seed atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(seed.Add(1)))
				for pb.Next() {
					res, err := e.Do(mkOps(rng, line))
					if err != nil {
						b.Fatal(err)
					}
					for _, r := range res {
						if r.Err != nil {
							b.Fatal(r.Err)
						}
					}
				}
			})
			b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "lines/s")
		})
	}
}
