package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"attache/internal/core"
)

// TestCloseInterruptsInFlightDo pins the Close-vs-Do race: callers
// blocked in backpressure sends when Close fires must come back with
// per-op ErrClosed (or completed results) instead of hanging. Run under
// -race in CI, this also proves the stop-channel handoff is clean.
func TestCloseInterruptsInFlightDo(t *testing.T) {
	e, err := New(core.DefaultOptions(), Config{
		Shards:     1,
		QueueDepth: 1,
		// Slow every op down so queues stay full and submitters block.
		Faults: FaultPlan{Seed: 11, DelayP: 1, Delay: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				res, err := e.Do([]Op{{Write: true, Addr: uint64(g*1000 + i), Data: testLine(uint64(i))}})
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						errc <- fmt.Errorf("g%d Do err = %v, want ErrClosed", g, err)
					}
					return
				}
				for _, r := range res {
					if r.Err != nil && !errors.Is(r.Err, ErrClosed) {
						errc <- fmt.Errorf("g%d op err = %v, want nil or ErrClosed", g, r.Err)
						return
					}
				}
			}
		}(g)
	}

	time.Sleep(40 * time.Millisecond) // let the queue fill and senders block
	closed := make(chan struct{})
	go func() { defer close(closed); e.Close() }()

	doneAll := make(chan struct{})
	go func() { defer close(doneAll); wg.Wait() }()
	for name, ch := range map[string]chan struct{}{"Close": closed, "submitters": doneAll} {
		select {
		case <-ch:
		case <-time.After(15 * time.Second):
			t.Fatalf("%s hung after Close during in-flight Do", name)
		}
	}
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// The engine is fully closed: every surface rejects, including ctx ops.
	if _, err := e.Do([]Op{{Addr: 1}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Do after close err = %v, want ErrClosed", err)
	}
	if _, err := e.DoCtx(context.Background(), []Op{{Addr: 1}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("DoCtx after close err = %v, want ErrClosed", err)
	}
}
