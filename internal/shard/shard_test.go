package shard

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"attache/internal/core"
)

// testLine builds a deterministic 64-byte line for addr: even addresses
// get array-like (compressible) content, odd get pseudo-random bytes.
func testLine(addr uint64) []byte {
	line := make([]byte, core.LineSize)
	if addr%2 == 0 {
		base := uint64(0x7F0000000000) + addr*4096
		for w := 0; w < 8; w++ {
			binary.LittleEndian.PutUint64(line[w*8:], base+addr%512)
		}
	} else {
		rng := rand.New(rand.NewSource(int64(addr)))
		rng.Read(line)
	}
	return line
}

func newTestEngine(t testing.TB, shards int, cfg Config) *Engine {
	t.Helper()
	cfg.Shards = shards
	e, err := New(core.DefaultOptions(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// TestRoundTripAcrossShards checks exact Store/Load round-trips for every
// shard count, interleaving rewrites.
func TestRoundTripAcrossShards(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8} {
		t.Run(fmt.Sprintf("shards%d", n), func(t *testing.T) {
			e := newTestEngine(t, n, Config{})
			const lines = 512
			for a := uint64(0); a < lines; a++ {
				if err := e.Write(a, testLine(a)); err != nil {
					t.Fatalf("write %d: %v", a, err)
				}
			}
			// Rewrite a quarter with different content.
			for a := uint64(0); a < lines; a += 4 {
				if err := e.Write(a, testLine(a+10_000)); err != nil {
					t.Fatalf("rewrite %d: %v", a, err)
				}
			}
			for a := uint64(0); a < lines; a++ {
				want := testLine(a)
				if a%4 == 0 {
					want = testLine(a + 10_000)
				}
				got, err := e.Read(a)
				if err != nil {
					t.Fatalf("read %d: %v", a, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("round trip mismatch at %d", a)
				}
			}
			snap := e.StatsSnapshot()
			if snap.Total.Lines != lines {
				t.Fatalf("snapshot lines = %d, want %d", snap.Total.Lines, lines)
			}
		})
	}
}

// TestSingleShardMatchesMemory pins the acceptance criterion that >1
// shard scaling does not change single-shard results: a 1-shard engine
// must be bit-identical to a plain Memory fed the same op sequence.
func TestSingleShardMatchesMemory(t *testing.T) {
	opts := core.DefaultOptions()
	mem, err := core.NewMemory(opts)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(opts, Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const lines = 400
	for a := uint64(0); a < lines; a++ {
		line := testLine(a)
		if err := mem.Write(a, line); err != nil {
			t.Fatal(err)
		}
		if err := e.Write(a, line); err != nil {
			t.Fatal(err)
		}
	}
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < lines; a++ {
			want, err := mem.Read(a)
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.Read(a)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("pass %d addr %d: engine diverges from Memory", pass, a)
			}
		}
	}
	if got, want := e.StatsSnapshot().Total, mem.StatsSnapshot(); got != want {
		t.Fatalf("1-shard snapshot diverges from Memory:\n  engine %+v\n  memory %+v", got, want)
	}
}

// TestBatchSemantics checks order preservation and per-op failure
// isolation: bad ops fail alone, their neighbours succeed.
func TestBatchSemantics(t *testing.T) {
	e := newTestEngine(t, 4, Config{MaxLines: 1 << 16})
	if err := e.Write(7, testLine(7)); err != nil {
		t.Fatal(err)
	}

	ops := []Op{
		{Addr: 7},  // ok read
		{Addr: 99}, // never written
		{Write: true, Addr: 8, Data: testLine(8)},     // ok write
		{Write: true, Addr: 9, Data: []byte("short")}, // bad line size
		{Addr: 1 << 20}, // beyond MaxLines
		{Addr: 8},       // reads the write two slots up (same batch, same shard order)
	}
	res, err := e.Do(ops)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil || !bytes.Equal(res[0].Data, testLine(7)) {
		t.Fatalf("op0: %v", res[0].Err)
	}
	if !errors.Is(res[1].Err, core.ErrNeverWritten) {
		t.Fatalf("op1 err = %v, want ErrNeverWritten", res[1].Err)
	}
	if res[2].Err != nil {
		t.Fatalf("op2: %v", res[2].Err)
	}
	if !errors.Is(res[3].Err, core.ErrBadLineSize) {
		t.Fatalf("op3 err = %v, want ErrBadLineSize", res[3].Err)
	}
	if !errors.Is(res[4].Err, core.ErrOutOfRange) {
		t.Fatalf("op4 err = %v, want ErrOutOfRange", res[4].Err)
	}
	if res[5].Err != nil || !bytes.Equal(res[5].Data, testLine(8)) {
		t.Fatalf("op5 did not observe the in-batch write: %v", res[5].Err)
	}

	// BatchRead/BatchWrite wrappers.
	wres, err := e.BatchWrite([]uint64{20, 21}, [][]byte{testLine(20), testLine(21)})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range wres {
		if r.Err != nil {
			t.Fatalf("batch write %d: %v", i, r.Err)
		}
	}
	rres, err := e.BatchRead([]uint64{21, 20})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rres[0].Data, testLine(21)) || !bytes.Equal(rres[1].Data, testLine(20)) {
		t.Fatal("batch read order not preserved")
	}
	if _, err := e.BatchWrite([]uint64{1}, nil); err == nil {
		t.Fatal("mismatched batch write lengths must error")
	}
}

// TestSnapshotMerge checks that the merged totals equal the sum of the
// per-shard snapshots and count every op exactly once.
func TestSnapshotMerge(t *testing.T) {
	e := newTestEngine(t, 4, Config{})
	const lines = 600
	for a := uint64(0); a < lines; a++ {
		if err := e.Write(a, testLine(a)); err != nil {
			t.Fatal(err)
		}
	}
	for a := uint64(0); a < lines; a += 2 {
		if _, err := e.Read(a); err != nil {
			t.Fatal(err)
		}
	}
	snap := e.StatsSnapshot()
	if len(snap.PerShard) != 4 {
		t.Fatalf("per-shard snapshots = %d, want 4", len(snap.PerShard))
	}
	var sum core.StatsSnapshot
	for _, s := range snap.PerShard {
		sum.Accumulate(s)
	}
	if sum != snap.Total {
		t.Fatalf("total %+v != accumulated per-shard %+v", snap.Total, sum)
	}
	if snap.Total.Writes != lines || snap.Total.Reads != lines/2 || snap.Total.Lines != lines {
		t.Fatalf("lost ops in merge: %+v", snap.Total)
	}
	// Every shard should have received some of the 600 mixed addresses.
	for i, s := range snap.PerShard {
		if s.Lines == 0 {
			t.Fatalf("shard %d received no lines: address mixing is broken", i)
		}
	}
}

// TestClose checks drain-then-reject semantics.
func TestClose(t *testing.T) {
	e, err := New(core.DefaultOptions(), Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Write(1, testLine(1)); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := e.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second close err = %v, want ErrClosed", err)
	}
	if _, err := e.Read(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close err = %v, want ErrClosed", err)
	}
	if err := e.Write(2, testLine(2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close err = %v, want ErrClosed", err)
	}
	// A post-drain snapshot still works and still holds the traffic.
	if snap := e.StatsSnapshot(); snap.Total.Writes != 1 || snap.Total.Lines != 1 {
		t.Fatalf("post-close snapshot lost traffic: %+v", snap.Total)
	}
}

// TestConcurrentHammer is the -race test of the data-race satellite: 16
// goroutines hammer one sharded engine with single ops, batches, and
// snapshots, each verifying exact round-trips in its own address range
// and in a shared read-only region.
func TestConcurrentHammer(t *testing.T) {
	e := newTestEngine(t, 4, Config{QueueDepth: 16})

	// Shared read-only region, written before the hammer starts.
	const sharedLines = 64
	for a := uint64(0); a < sharedLines; a++ {
		if err := e.Write(a, testLine(a)); err != nil {
			t.Fatal(err)
		}
	}

	const goroutines = 16
	const opsPer = 400
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			base := uint64(1000 + g*10_000) // private range per goroutine
			written := make(map[uint64]uint64)
			for i := 0; i < opsPer; i++ {
				switch rng.Intn(5) {
				case 0: // single write
					a := base + uint64(rng.Intn(256))
					v := uint64(rng.Intn(1 << 20))
					if err := e.Write(a, testLine(v)); err != nil {
						errc <- fmt.Errorf("g%d write: %w", g, err)
						return
					}
					written[a] = v
				case 1: // single read of own data
					for a, v := range written {
						got, err := e.Read(a)
						if err != nil || !bytes.Equal(got, testLine(v)) {
							errc <- fmt.Errorf("g%d read %d: %v", g, a, err)
							return
						}
						break
					}
				case 2: // shared-region read
					a := uint64(rng.Intn(sharedLines))
					got, err := e.Read(a)
					if err != nil || !bytes.Equal(got, testLine(a)) {
						errc <- fmt.Errorf("g%d shared read %d: %v", g, a, err)
						return
					}
				case 3: // mixed batch over own range + shared
					ops := make([]Op, 0, 8)
					for k := 0; k < 4; k++ {
						a := base + uint64(rng.Intn(256))
						v := uint64(rng.Intn(1 << 20))
						ops = append(ops, Op{Write: true, Addr: a, Data: testLine(v)})
						written[a] = v
						ops = append(ops, Op{Addr: uint64(rng.Intn(sharedLines))})
					}
					res, err := e.Do(ops)
					if err != nil {
						errc <- fmt.Errorf("g%d batch: %w", g, err)
						return
					}
					for j, r := range res {
						if r.Err != nil {
							errc <- fmt.Errorf("g%d batch op %d: %w", g, j, r.Err)
							return
						}
					}
				case 4: // stats snapshot racing the traffic
					snap := e.StatsSnapshot()
					if snap.Total.Reads+snap.Total.Writes == 0 {
						errc <- fmt.Errorf("g%d empty snapshot mid-hammer", g)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Post-hammer: the shared region is intact and counters are sane.
	for a := uint64(0); a < sharedLines; a++ {
		got, err := e.Read(a)
		if err != nil || !bytes.Equal(got, testLine(a)) {
			t.Fatalf("shared region corrupted at %d: %v", a, err)
		}
	}
	snap := e.StatsSnapshot()
	if snap.Total.Lines < sharedLines {
		t.Fatalf("lines vanished: %+v", snap.Total)
	}
}

// TestConfigValidation pins the constructor's range checks.
func TestConfigValidation(t *testing.T) {
	if _, err := New(core.DefaultOptions(), Config{Shards: -1}); !errors.Is(err, core.ErrOutOfRange) {
		t.Fatalf("negative shards err = %v, want ErrOutOfRange", err)
	}
	opts := core.DefaultOptions()
	opts.CIDBits = 99
	if _, err := New(opts, Config{Shards: 2}); !errors.Is(err, core.ErrOutOfRange) {
		t.Fatalf("bad CID width err = %v, want ErrOutOfRange", err)
	}
	e, err := New(core.DefaultOptions(), Config{}) // all defaults
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Shards() < 1 {
		t.Fatal("default shard count must be >= 1")
	}
}
