package shard

import (
	"fmt"
	"io"

	"attache/internal/snap"
)

// ExportState captures the engine's complete serializable state as one
// consistent cut: it acquires every shard's execution lock (in shard
// order, so concurrent exports cannot deadlock), exports, then releases.
// Traffic stalls for the duration — inline submitters fall back to the
// rings and ring drains wait on the execution locks — but no op is ever
// torn across the cut. It also works after Close (the locks are simply
// uncontended), which is how -snapshot-on-drain captures final state.
func (e *Engine) ExportState() *snap.EngineState {
	st := &snap.EngineState{
		Opts:   e.opts,
		Shards: make([]snap.ShardState, len(e.shards)),
	}
	if e.cfg.Tier != nil {
		tc := *e.cfg.Tier
		st.Tier = &tc
	}
	for _, w := range e.shards {
		w.memMu.Lock()
	}
	for i, w := range e.shards {
		st.Shards[i].Mem = w.mem.ExportState()
		if w.tier != nil {
			st.Shards[i].Tier = w.tier.ExportState()
		}
	}
	for _, w := range e.shards {
		w.memMu.Unlock()
	}
	st.Robust = [4]uint64{
		e.robust.sheds.Load(),
		e.robust.canceled.Load(),
		e.robust.injectedErrs.Load(),
		e.robust.injectedDelays.Load(),
	}
	return st
}

// WriteSnapshot serializes the engine as a single-instance snapv1
// snapshot. Safe at any time, including after Close.
func (e *Engine) WriteSnapshot(out io.Writer) error {
	return snap.Encode(out, &snap.ClusterState{Engines: []*snap.EngineState{e.ExportState()}})
}

// RestoreEngine rebuilds an engine from a snapshot so that every
// subsequent operation (and stats read) behaves exactly as it would
// have on the original. The snapshot is authoritative for the framework
// options, the tier configuration, and the shard count; cfg supplies
// only runtime knobs (queue depth, fault plan, observer, MaxLines).
// cfg.Shards, if set, must match the snapshot; cfg.Tier must be nil.
func RestoreEngine(st *snap.EngineState, cfg Config) (*Engine, error) {
	if st == nil || len(st.Shards) == 0 {
		return nil, fmt.Errorf("shard: snapshot has no shards: %w", snap.ErrCorrupt)
	}
	if cfg.Shards != 0 && cfg.Shards != len(st.Shards) {
		return nil, fmt.Errorf("shard: configured %d shards but snapshot has %d", cfg.Shards, len(st.Shards))
	}
	if cfg.Tier != nil {
		return nil, fmt.Errorf("shard: RestoreEngine takes the tier configuration from the snapshot; cfg.Tier must be nil")
	}
	cfg.Shards = len(st.Shards)
	cfg.Tier = st.Tier
	return build(st.Opts, cfg, st)
}

// RestoreEngineFrom decodes a single-instance snapv1 snapshot from r
// and restores it. Multi-instance snapshots belong to the cluster
// layer (cluster.Restore).
func RestoreEngineFrom(r io.Reader, cfg Config) (*Engine, error) {
	cs, err := snap.Decode(r)
	if err != nil {
		return nil, err
	}
	if len(cs.Engines) != 1 {
		return nil, fmt.Errorf("shard: snapshot holds %d engines, want 1 (use the cluster restore path)", len(cs.Engines))
	}
	return RestoreEngine(cs.Engines[0], cfg)
}
