package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// ErrFaultInjected reports an op failed by the fault-injection hook, not
// by the memory itself. Injection happens before the op executes, so a
// fault-failed write never lands and a fault-failed read never trains
// the predictor — engine state stays consistent with what callers were
// told.
var ErrFaultInjected = errors.New("shard: injected fault")

// FaultPlan configures deterministic fault injection on the per-shard
// pipeline. The zero value disables injection entirely and costs one nil
// check per task on the hot path.
//
// Each shard draws from its own rand.Rand seeded from Seed and the shard
// index, so a given op order per shard reproduces the same faults on
// every run — chaos tests replay exactly.
type FaultPlan struct {
	// Seed feeds the per-shard RNGs; shard i uses Seed mixed with i.
	Seed int64
	// ErrP is the per-op probability of failing with ErrFaultInjected
	// instead of executing.
	ErrP float64
	// DelayP is the per-op probability of sleeping Delay before the op
	// executes (the op itself still runs).
	DelayP float64
	// Delay is the injected stall; 0 defaults to 100µs when DelayP > 0.
	Delay time.Duration
	// PartialP is the per-task probability that the tail of the task's
	// op slice (from a random cut point) fails with ErrFaultInjected —
	// modeling a batch that dies partway through.
	PartialP float64
}

// Enabled reports whether the plan injects anything.
func (p FaultPlan) Enabled() bool {
	return p.ErrP > 0 || p.DelayP > 0 || p.PartialP > 0
}

func (p FaultPlan) validate() error {
	for _, pr := range []float64{p.ErrP, p.DelayP, p.PartialP} {
		if pr < 0 || pr > 1 {
			return fmt.Errorf("shard: fault probability %v not in [0,1]: %w", pr, errBadProb)
		}
	}
	return nil
}

var errBadProb = errors.New("bad probability")

// injector is one shard's fault source: plan plus private RNG. A nil
// *injector means injection is off.
type injector struct {
	plan  FaultPlan
	delay time.Duration
	rng   *rand.Rand
}

func newInjector(p FaultPlan, shardIdx int) *injector {
	if !p.Enabled() {
		return nil
	}
	d := p.Delay
	if d == 0 {
		d = 100 * time.Microsecond
	}
	seed := p.Seed ^ int64(uint64(shardIdx+1)*0xBF58476D1CE4E5B9)
	return &injector{plan: p, delay: d, rng: rand.New(rand.NewSource(seed))}
}

// cut returns the index past which a task's ops should fail wholesale,
// or n when the task is spared.
func (in *injector) cut(n int) int {
	if in.plan.PartialP > 0 && in.rng.Float64() < in.plan.PartialP {
		return in.rng.Intn(n)
	}
	return n
}

// op decides one op's fate: an optional injected stall, then an optional
// injected error. It reports (delayed, err).
func (in *injector) op() (bool, error) {
	delayed := false
	if in.plan.DelayP > 0 && in.rng.Float64() < in.plan.DelayP {
		time.Sleep(in.delay)
		delayed = true
	}
	if in.plan.ErrP > 0 && in.rng.Float64() < in.plan.ErrP {
		return delayed, ErrFaultInjected
	}
	return delayed, nil
}
