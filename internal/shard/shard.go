// Package shard provides the concurrent entry point to the Attaché
// functional memory: an N-way address-sharded pool of core.Memory
// instances fed through a low-overhead submission pipeline.
//
// The design follows the shape CRAM and the CXL-pooling line of work give
// compressed memory — a shared pool behind a request interface:
//
//   - Sharding: a line address is mixed and reduced to a shard index, so
//     each 64-byte line lives in exactly one shard and round-trips are
//     exact regardless of shard count. Every shard holds an independent
//     framework (its own CID, scrambler key, and COPR predictor), exactly
//     as the paper's per-controller state would be replicated across
//     memory controllers.
//   - Inline fast path: when a shard is uncontended (its execution lock
//     is free and its ring is empty), the submitter applies that shard's
//     ops on its own goroutine — no handoff, no wakeup, no allocation.
//     This is the software analogue of the paper's thesis: the per-access
//     metadata cost (here, a channel send and a goroutine switch per op)
//     is elided entirely on the common path, not merely parallelized.
//   - Batched ring: when a shard is busy, tasks land in a mutex-guarded
//     power-of-two ring with a single coalescing wake signal; the shard
//     goroutine drains the whole backlog per wakeup, so one handoff
//     amortizes across every queued task.
//   - Stats: each shard mutates only its own Memory's counters. Snapshot
//     claims each shard's execution lock (or routes a marker through its
//     ring) so every shard publishes a coherent core.StatsSnapshot, then
//     merges them with Accumulate — aggregation by ownership rather than
//     by atomics.
//
// core.Memory itself is not safe for concurrent use; this package is how
// concurrent callers (cmd/attached, tests, user code via
// attache.NewEngine) get at it. Exclusive ownership is enforced by each
// shard's execution lock: either the shard goroutine (draining the ring)
// or one inline submitter holds it, never both.
package shard

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"attache/internal/core"
	"attache/internal/obs"
	"attache/internal/snap"
	"attache/internal/tier"
)

// ErrClosed reports an operation on an engine after Close.
var ErrClosed = errors.New("shard: engine closed")

// Config sizes the engine.
type Config struct {
	// Shards is the number of independent Memory shards (and goroutines).
	// 0 defaults to GOMAXPROCS.
	Shards int
	// QueueDepth is the per-shard ring buffer: how many submitted tasks a
	// shard can hold before backpressure kicks in. Do blocks on a full
	// ring; DoCtx sheds instead, failing the shard's ops with
	// core.ErrOverloaded. 0 defaults to 64.
	QueueDepth int
	// MaxLines, when non-zero, bounds the line address space: ops at
	// addresses >= MaxLines fail with core.ErrOutOfRange.
	MaxLines uint64
	// Faults, when enabled, injects seeded delays/errors/partial-batch
	// failures into every shard's pipeline. Off (zero) by default.
	Faults FaultPlan
	// Tier, when non-nil, fronts every shard's compressed Memory with an
	// uncompressed near tier (the CXL scenario): Tier.NearLines is the
	// engine-level capacity, split across shards. nil keeps the classic
	// single-tier engine, and a zero-capacity near tier is bit-identical
	// to it by construction.
	Tier *tier.Config
	// Obs, when non-nil, turns on pipeline tracing: requests carrying a
	// trace in their context (and a sampled fraction of the rest, per the
	// observer's sample rate) get enqueue/dequeue/execute/respond spans
	// recorded, decomposing latency into queue wait vs. service time.
	// nil (the default) costs one branch per submission and zero
	// allocations. Spans survive the inline fast path: an inline-executed
	// task records the same four stages with a ~zero queue wait.
	Obs *obs.Observer

	// noInline disables the inline fast path, forcing every task through
	// the ring and the shard goroutine — the deterministic "contended"
	// configuration used by tests and benchmarks to pin the handoff path.
	noInline bool
}

func (c Config) withDefaults() Config {
	if c.Shards == 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	return c
}

// Op is one read or write in a batch.
type Op struct {
	// Write selects the operation; false means read.
	Write bool
	// Addr is the line address.
	Addr uint64
	// Data is the 64-byte payload for writes; it must not be mutated
	// until the submitting call returns. Ignored for reads.
	Data []byte
}

// Result is the outcome of one Op, in submission order.
type Result struct {
	// Data holds the line read; nil for writes and failed ops.
	Data []byte
	// Err is the op's failure, if any; batch submission isolates
	// failures per op, so one bad op never poisons its neighbours.
	Err error
}

// task is one shard's slice of a submitted batch, or (when snap is
// non-nil) a stats-snapshot marker flowing through the same pipeline so
// it serializes against in-flight ops. ops is the submitter's full batch
// and idx the positions owned by this shard; both are borrowed, never
// copied — the submitter blocks until done fires, so sharing is safe and
// the steady-state path allocates nothing. ctx is non-nil only for DoCtx
// submissions; execution checks it once per task so a cancelled task
// frees its ring slot without executing.
type task struct {
	ctx      context.Context
	ops      []Op
	idx      []int // positions of this shard's ops in ops / res
	res      []Result
	snap     *core.StatsSnapshot
	tierSnap *tier.Snapshot // filled alongside snap on tiered engines
	done     *sync.WaitGroup

	// tr, when non-nil, receives this task's pipeline spans; enq is the
	// trace-relative enqueue instant the dequeue span starts from. Both
	// are zero on the untraced path.
	tr  *obs.Trace
	enq time.Duration
}

// submitState is the reusable per-submission envelope: the per-shard
// index lists and the completion WaitGroup. Pooled per engine so the
// steady-state submit path performs zero envelope allocations; it is
// returned to the pool only after done.Wait(), when no worker can still
// reference its slices.
type submitState struct {
	perShard [][]int
	done     sync.WaitGroup
}

// robustCounters are the engine-level degradation counters: everything
// that happened to ops besides executing them. They sit off the happy
// path — an op that executes normally touches none of them.
type robustCounters struct {
	sheds          atomic.Uint64
	canceled       atomic.Uint64
	injectedErrs   atomic.Uint64
	injectedDelays atomic.Uint64
}

// RobustStats is the exported snapshot of the degradation counters.
type RobustStats struct {
	// Sheds counts ops rejected with ErrOverloaded because their shard's
	// ring was full at DoCtx admission.
	Sheds uint64 `json:"sheds"`
	// Canceled counts ops that returned a context error: expired or
	// cancelled while queued, skipped without executing.
	Canceled uint64 `json:"canceled"`
	// InjectedErrors / InjectedDelays count fault-injection outcomes
	// (always 0 with injection off).
	InjectedErrors uint64 `json:"injected_errors"`
	InjectedDelays uint64 `json:"injected_delays"`
}

// worker owns one shard: one Memory, one goroutine, one ring, and (when
// fault injection is on) one seeded injector.
//
// Two locks with distinct roles: memMu is the execution right — whoever
// holds it (the shard goroutine draining the ring, or a submitter on the
// inline fast path) owns mem exclusively; mu guards the ring state and
// the condition variable blocked submitters wait on. The only path that
// holds both is the drain loop (memMu outermost), so the pair cannot
// deadlock. inflight and lastBatch are the shard's queue telemetry,
// maintained unconditionally (two atomic ops per task, no allocation) so
// Engine.Gauges always has live data.
type worker struct {
	id  int
	mem *core.Memory
	// tier, when non-nil, is the two-tier front over mem (which is then
	// the far tier); ops dispatch through it and mem's own counters
	// describe far-tier traffic only.
	tier   *tier.Memory
	inj    *injector
	robust *robustCounters

	memMu sync.Mutex // execution right over mem (drain loop or inline submitter)

	mu          sync.Mutex
	cond        sync.Cond // ring space freed, or Close fired
	ring        []task    // power-of-two circular buffer
	mask        uint64
	head        uint64 // ring[head&mask] is the next task to pop
	tail        uint64 // ring[tail&mask] is the next free slot
	depth       uint64 // admission cap (Config.QueueDepth)
	interrupted bool   // Close fired: blocked admits abandon with ErrClosed
	stopped     bool   // no enqueue can ever arrive again: drain and exit

	wake chan struct{} // cap-1 doorbell: the ring went non-empty

	qlen      atomic.Int64 // tasks currently in the ring
	inflight  atomic.Int64 // op tasks admitted but not yet completed
	lastBatch atomic.Int64 // ops in the most recently executed task
}

// push appends t to the ring. Callers hold w.mu and have checked space.
func (w *worker) push(t task) {
	w.ring[w.tail&w.mask] = t
	w.tail++
	w.qlen.Add(1)
}

// signal rings the worker's doorbell; a full buffer means a wakeup is
// already pending, which covers this push too.
func (w *worker) signal() {
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// admit pushes t with Do's blocking backpressure: a full ring waits for
// space. Reports false when Close interrupts the wait instead.
func (w *worker) admit(t task) bool {
	w.mu.Lock()
	for w.tail-w.head >= w.depth {
		if w.interrupted {
			w.mu.Unlock()
			return false
		}
		w.cond.Wait()
	}
	w.push(t)
	w.mu.Unlock()
	w.signal()
	return true
}

// tryAdmit pushes t only if the ring has space — DoCtx's shed-on-full
// admission control.
func (w *worker) tryAdmit(t task) bool {
	w.mu.Lock()
	if w.tail-w.head >= w.depth {
		w.mu.Unlock()
		return false
	}
	w.push(t)
	w.mu.Unlock()
	w.signal()
	return true
}

// admitAlways pushes t, waiting out a full ring even during Close — used
// by StatsSnapshot markers, which must reach the shard as long as its
// goroutine is alive (guaranteed while the submitter holds the engine's
// read lock).
func (w *worker) admitAlways(t task) {
	w.mu.Lock()
	for w.tail-w.head >= w.depth {
		w.cond.Wait()
	}
	w.push(t)
	w.mu.Unlock()
	w.signal()
}

// run is the shard goroutine: sleep on the doorbell, drain the whole
// backlog, exit once Close has guaranteed no further enqueues and the
// ring is empty.
func (w *worker) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		<-w.wake
		w.drain()
		w.mu.Lock()
		exit := w.stopped && w.head == w.tail
		w.mu.Unlock()
		if exit {
			return
		}
	}
}

// drain claims the execution right once and applies every queued task —
// the amortization that replaces a per-task channel handoff. Popping a
// task frees its ring slot immediately (before execution), so blocked
// submitters make progress while the batch runs.
func (w *worker) drain() {
	if w.qlen.Load() == 0 {
		return
	}
	w.memMu.Lock()
	for {
		w.mu.Lock()
		if w.head == w.tail {
			w.mu.Unlock()
			break
		}
		t := w.ring[w.head&w.mask]
		w.ring[w.head&w.mask] = task{} // drop borrowed slices promptly
		w.head++
		w.qlen.Add(-1)
		w.cond.Broadcast()
		w.mu.Unlock()
		w.execute(&t)
	}
	w.memMu.Unlock()
}

// execute applies one admitted task against the shard's memory. The
// caller holds w.memMu. Snapshot markers publish and return; op tasks
// honor cancellation, fault injection, and span recording exactly the
// same way whether they arrived through the ring or the inline path.
func (w *worker) execute(t *task) {
	if t.snap != nil {
		*t.snap = w.mem.StatsSnapshot()
		if t.tierSnap != nil && w.tier != nil {
			*t.tierSnap = w.tier.Snapshot()
		}
		t.done.Done()
		return
	}
	w.lastBatch.Store(int64(len(t.idx)))
	if t.tr != nil {
		// The dequeue span is the queue wait: enqueue instant → now.
		// Inline tasks record it too (≈zero), so timelines stay balanced.
		t.tr.Record(obs.StageDequeue, w.id, len(t.idx), t.enq, t.tr.Now())
	}
	// A task whose context died while it sat in the ring is skipped
	// wholesale: the slot was already freed, the memory is untouched, and
	// every op reports the context's error.
	if t.ctx != nil {
		if err := t.ctx.Err(); err != nil {
			for _, j := range t.idx {
				t.res[j].Err = err
			}
			w.robust.canceled.Add(uint64(len(t.idx)))
			w.inflight.Add(-1)
			t.done.Done()
			return
		}
	}
	var x0 time.Duration
	if t.tr != nil {
		x0 = t.tr.Now()
	}
	cut := len(t.idx)
	if w.inj != nil {
		cut = w.inj.cut(cut)
	}
	for i, j := range t.idx {
		if w.inj != nil {
			if i >= cut {
				t.res[j].Err = fmt.Errorf("shard: batch died at op %d of %d: %w", i, len(t.idx), ErrFaultInjected)
				w.robust.injectedErrs.Add(1)
				continue
			}
			delayed, err := w.inj.op()
			if delayed {
				w.robust.injectedDelays.Add(1)
			}
			if err != nil {
				t.res[j].Err = fmt.Errorf("shard: op at %#x: %w", t.ops[j].Addr, err)
				w.robust.injectedErrs.Add(1)
				continue
			}
		}
		op := t.ops[j]
		if w.tier != nil {
			if op.Write {
				t.res[j].Err = w.tier.Write(op.Addr, op.Data)
			} else {
				t.res[j].Data, t.res[j].Err = w.tier.Read(op.Addr)
			}
		} else if op.Write {
			t.res[j].Err = w.mem.Write(op.Addr, op.Data)
		} else {
			t.res[j].Data, t.res[j].Err = w.mem.Read(op.Addr)
		}
	}
	if t.tr != nil {
		// The execute span is the service time on this shard.
		t.tr.Record(obs.StageExecute, w.id, len(t.idx), x0, t.tr.Now())
	}
	w.inflight.Add(-1)
	t.done.Done()
}

// Engine is the sharded concurrent compressed-memory pool. All methods
// are safe for concurrent use by any number of goroutines.
type Engine struct {
	cfg       Config
	opts      core.Options // base options; shard i derives its seed from them
	shards    []*worker
	sramBytes int
	robust    robustCounters
	obs       *obs.Observer // nil = tracing off
	states    sync.Pool     // *submitState envelopes, reused across submissions

	closing atomic.Bool

	mu     sync.RWMutex // guards closed vs. submissions; not on the per-shard hot path
	closed bool
	wg     sync.WaitGroup
}

// New builds an engine of cfg.Shards independent Memory shards, each
// configured from opts. Shard i derives its seed from opts.Seed so a
// 1-shard engine is bit-identical to a plain NewMemory(opts).
func New(opts core.Options, cfg Config) (*Engine, error) {
	return build(opts, cfg, nil)
}

// shardTierConfig splits an engine-level tier configuration across
// shards: a positive near capacity distributes as evenly as possible
// (low shards take the remainder); zero and unbounded pass through.
func shardTierConfig(tc tier.Config, i, shards int) tier.Config {
	if tc.NearLines > 0 {
		per := tc.NearLines / int64(shards)
		if int64(i) < tc.NearLines%int64(shards) {
			per++
		}
		tc.NearLines = per
	}
	return tc
}

// build is the shared constructor behind New and RestoreEngine: st, when
// non-nil, supplies each shard's memory and tier state instead of
// starting empty.
func build(opts core.Options, cfg Config, st *snap.EngineState) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d not in [1,∞): %w", cfg.Shards, core.ErrOutOfRange)
	}
	if cfg.QueueDepth < 1 {
		return nil, fmt.Errorf("shard: queue depth %d not in [1,∞): %w", cfg.QueueDepth, core.ErrOutOfRange)
	}
	if err := cfg.Faults.validate(); err != nil {
		return nil, err
	}
	if cfg.Tier != nil {
		if err := cfg.Tier.Validate(); err != nil {
			return nil, err
		}
	}
	e := &Engine{cfg: cfg, opts: opts, shards: make([]*worker, cfg.Shards), obs: cfg.Obs}
	e.states.New = func() any {
		return &submitState{perShard: make([][]int, cfg.Shards)}
	}
	ringLen := uint64(1)
	for ringLen < uint64(cfg.QueueDepth) {
		ringLen <<= 1
	}
	for i := range e.shards {
		o := opts
		// Shard 0 keeps the caller's seed exactly (single-shard results
		// must match a plain Memory); later shards mix in their index so
		// each gets a distinct CID and scrambler key.
		o.Seed = opts.Seed ^ int64(uint64(i)*0x9E3779B97F4A7C15)
		var mem *core.Memory
		var err error
		if st != nil {
			mem, err = core.RestoreMemory(o, st.Shards[i].Mem)
		} else {
			mem, err = core.NewMemory(o)
		}
		if err != nil {
			return nil, err
		}
		var tm *tier.Memory
		if cfg.Tier != nil {
			tc := shardTierConfig(*cfg.Tier, i, cfg.Shards)
			if st != nil {
				if st.Shards[i].Tier == nil {
					return nil, fmt.Errorf("shard: snapshot shard %d has no tier state but the engine is tiered: %w",
						i, snap.ErrCorrupt)
				}
				tm, err = tier.RestoreMemory(tc, mem, st.Shards[i].Tier)
			} else {
				tm, err = tier.NewMemory(tc, mem)
			}
			if err != nil {
				return nil, err
			}
		} else if st != nil && st.Shards[i].Tier != nil {
			return nil, fmt.Errorf("shard: snapshot shard %d carries tier state but the engine is untiered: %w",
				i, snap.ErrCorrupt)
		}
		e.sramBytes += mem.Framework().StorageOverheadBytes()
		w := &worker{
			id:     i,
			mem:    mem,
			tier:   tm,
			ring:   make([]task, ringLen),
			mask:   ringLen - 1,
			depth:  uint64(cfg.QueueDepth),
			wake:   make(chan struct{}, 1),
			inj:    newInjector(cfg.Faults, i),
			robust: &e.robust,
		}
		w.cond.L = &w.mu
		e.shards[i] = w
		e.wg.Add(1)
		go w.run(&e.wg)
	}
	if st != nil {
		e.robust.sheds.Store(st.Robust[0])
		e.robust.canceled.Store(st.Robust[1])
		e.robust.injectedErrs.Store(st.Robust[2])
		e.robust.injectedDelays.Store(st.Robust[3])
	}
	return e, nil
}

// shardFor maps a line address to its owning shard: the splitmix64
// finalizer gives full avalanche over strided address patterns, then a
// multiply-shift (Lemire) reduction maps the mixed value to [0, shards)
// without the modulo bias — and without the hardware divide — that a
// plain `%` pays when the shard count is not a power of two.
func (e *Engine) shardFor(addr uint64) int {
	x := addr + 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	x ^= x >> 31
	hi, _ := bits.Mul64(x, uint64(len(e.shards)))
	return int(hi)
}

// Shards reports the configured shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// StorageOverheadBytes reports the summed SRAM cost of every shard's
// predictor tables and CID register.
func (e *Engine) StorageOverheadBytes() int { return e.sramBytes }

// InFlight reports the total tasks admitted to the engine but not yet
// completed, summed across shards. Lock-free and safe at any time; the
// cluster's least-loaded router reads it as its load signal.
func (e *Engine) InFlight() int64 {
	var n int64
	for _, w := range e.shards {
		n += w.inflight.Load()
	}
	return n
}

// Gauges reads each shard's live queue telemetry: ring depth (tasks
// buffered waiting for the shard), in-flight count (tasks admitted but
// not yet completed), and the size of the last executed batch. Lock-free
// and safe at any time; feed it to obs.PollGauges for a periodic signal.
func (e *Engine) Gauges() []obs.ShardGauge {
	out := make([]obs.ShardGauge, len(e.shards))
	for i, w := range e.shards {
		out[i] = obs.ShardGauge{
			Shard:        i,
			QueueDepth:   int(w.qlen.Load()),
			InFlight:     w.inflight.Load(),
			LastBatchOps: w.lastBatch.Load(),
		}
	}
	return out
}

// Do submits a batch of ops and blocks until every op completes,
// returning results in submission order. Failures are isolated per op.
// Do itself errors only when the engine is closed.
//
// A full shard ring applies backpressure: Do blocks until the shard
// drains (or Close interrupts the wait, failing the unsent ops with
// ErrClosed per op). For deadline-aware submission and load shedding use
// DoCtx.
//
// Ops for the same shard are applied in batch order; ops for different
// shards run concurrently. Two racing Do calls that touch the same
// address are serialized by that address's shard, in admission order
// (inline claims and ring order).
func (e *Engine) Do(ops []Op) ([]Result, error) {
	return e.submit(nil, ops)
}

// DoCtx is Do with deadline, cancellation, and load-shed semantics:
//
//   - An already-expired or cancelled ctx returns (nil, ctx.Err())
//     immediately — nothing is enqueued, nothing executes.
//   - Admission is non-blocking: a full shard ring sheds that shard's
//     ops with core.ErrOverloaded per op instead of waiting. Shed ops
//     were never enqueued and had no effect.
//   - If ctx dies while a task is queued, the owning shard skips the
//     task (freeing the slot without executing) and its ops report
//     ctx.Err() per op.
//
// Ops that were already enqueued when ctx expires still complete if the
// shard reaches them first; DoCtx always waits for enqueued tasks to be
// resolved one way or the other, so results are never torn.
func (e *Engine) DoCtx(ctx context.Context, ops []Op) ([]Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.submit(ctx, ops)
}

// submit routes ops to their shards. ctx == nil selects Do's blocking
// backpressure; a non-nil ctx selects DoCtx's shed-on-full admission.
//
// Per shard, admission takes the inline fast path when the shard is
// uncontended: claim the execution lock, verify the ring is empty, and
// apply the ops right here on the submitting goroutine — zero handoff,
// zero allocation. A busy shard falls back to the ring. The steady-state
// cost of a submission is therefore one Result-slice allocation; the
// index lists and completion WaitGroup come from the engine's pool.
func (e *Engine) submit(ctx context.Context, ops []Op) ([]Result, error) {
	res := make([]Result, len(ops))
	if len(ops) == 0 {
		return res, nil
	}
	// Trace resolution: a trace already in the context (the HTTP layer or
	// a harness put it there) is always honored; otherwise the observer's
	// sampler may start one that the engine owns and finishes itself.
	// With no observer configured this is a single nil check.
	var tr *obs.Trace
	owned := false
	if e.obs != nil {
		if ctx != nil {
			tr = obs.TraceFromContext(ctx)
		}
		if tr == nil && e.obs.Sampled() {
			tr = e.obs.StartTrace(0)
			owned = true
		}
	}
	st := e.states.Get().(*submitState)
	perShard := st.perShard
	for i := range perShard {
		perShard[i] = perShard[i][:0]
	}
	for i, op := range ops {
		if e.cfg.MaxLines > 0 && op.Addr >= e.cfg.MaxLines {
			res[i].Err = fmt.Errorf("shard: addr %#x beyond configured capacity %d: %w",
				op.Addr, e.cfg.MaxLines, core.ErrOutOfRange)
			continue
		}
		s := e.shardFor(op.Addr)
		perShard[s] = append(perShard[s], i)
	}

	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		e.states.Put(st)
		return nil, ErrClosed
	}
	closing := false
	for s, idx := range perShard {
		if len(idx) == 0 {
			continue
		}
		if closing {
			// Close fired mid-submission: fail the rest without blocking.
			markAll(res, idx, fmt.Errorf("shard: shard %d: submit interrupted by Close: %w", s, ErrClosed))
			continue
		}
		w := e.shards[s]
		t := task{ctx: ctx, ops: ops, idx: idx, res: res, done: &st.done}
		if tr != nil {
			t.tr = tr
			t.enq = tr.Now()
		}
		st.done.Add(1)
		if !e.cfg.noInline && w.memMu.TryLock() {
			if w.qlen.Load() == 0 {
				// Inline fast path: the shard is idle and we hold its
				// execution right — run the ops here, no handoff.
				w.inflight.Add(1)
				if tr != nil {
					tr.Record(obs.StageEnqueue, s, len(idx), t.enq, t.enq)
				}
				w.execute(&t)
				w.memMu.Unlock()
				continue
			}
			// Tasks are queued ahead of us; keep FIFO, use the ring.
			w.memMu.Unlock()
		}
		sent := false
		if ctx == nil {
			if w.admit(t) {
				sent = true
			} else {
				st.done.Done()
				closing = true
				markAll(res, idx, fmt.Errorf("shard: shard %d: submit interrupted by Close: %w", s, ErrClosed))
			}
		} else {
			if w.tryAdmit(t) {
				sent = true
			} else {
				st.done.Done()
				e.robust.sheds.Add(uint64(len(idx)))
				markAll(res, idx, fmt.Errorf("shard: shard %d queue full (depth %d): %w",
					s, e.cfg.QueueDepth, core.ErrOverloaded))
			}
		}
		if sent {
			w.inflight.Add(1)
			if tr != nil {
				// Enqueue is recorded only for tasks that actually entered
				// a ring, so shed submissions never leave a dangling span.
				tr.Record(obs.StageEnqueue, s, len(idx), t.enq, t.enq)
			}
		}
	}
	e.mu.RUnlock()
	st.done.Wait()
	if tr != nil {
		now := tr.Now()
		tr.Record(obs.StageRespond, -1, len(ops), now, now)
		if owned {
			e.obs.Finish(tr)
		}
	}
	// Every task has completed; no worker references the envelope now.
	e.states.Put(st)
	return res, nil
}

// markAll fails every op at positions idx with err.
func markAll(res []Result, idx []int, err error) {
	for _, j := range idx {
		res[j].Err = err
	}
}

// Read loads the 64-byte line at addr through the pipeline.
func (e *Engine) Read(addr uint64) ([]byte, error) {
	res, err := e.Do([]Op{{Addr: addr}})
	if err != nil {
		return nil, err
	}
	return res[0].Data, res[0].Err
}

// Write stores a 64-byte line at addr through the pipeline.
func (e *Engine) Write(addr uint64, data []byte) error {
	res, err := e.Do([]Op{{Write: true, Addr: addr, Data: data}})
	if err != nil {
		return err
	}
	return res[0].Err
}

// ReadCtx is Read with DoCtx's deadline and load-shed semantics.
func (e *Engine) ReadCtx(ctx context.Context, addr uint64) ([]byte, error) {
	res, err := e.DoCtx(ctx, []Op{{Addr: addr}})
	if err != nil {
		return nil, err
	}
	return res[0].Data, res[0].Err
}

// WriteCtx is Write with DoCtx's deadline and load-shed semantics.
func (e *Engine) WriteCtx(ctx context.Context, addr uint64, data []byte) error {
	res, err := e.DoCtx(ctx, []Op{{Write: true, Addr: addr, Data: data}})
	if err != nil {
		return err
	}
	return res[0].Err
}

// BatchRead loads every address, isolating failures per op.
func (e *Engine) BatchRead(addrs []uint64) ([]Result, error) {
	ops := make([]Op, len(addrs))
	for i, a := range addrs {
		ops[i] = Op{Addr: a}
	}
	return e.Do(ops)
}

// BatchWrite stores lines[i] at addrs[i], isolating failures per op.
// The two slices must be the same length.
func (e *Engine) BatchWrite(addrs []uint64, lines [][]byte) ([]Result, error) {
	if len(addrs) != len(lines) {
		return nil, fmt.Errorf("shard: batch write has %d addrs but %d lines", len(addrs), len(lines))
	}
	ops := make([]Op, len(addrs))
	for i, a := range addrs {
		ops[i] = Op{Write: true, Addr: a, Data: lines[i]}
	}
	return e.Do(ops)
}

// Snapshot is the engine-level stats view: the merged totals plus each
// shard's own snapshot.
type Snapshot struct {
	// Total merges every shard with core.StatsSnapshot.Accumulate:
	// counters sum; PredictionAccuracy is the reads-weighted mean.
	Total core.StatsSnapshot `json:"total"`
	// PerShard holds shard i's snapshot at index i.
	PerShard []core.StatsSnapshot `json:"per_shard"`
	// SRAMBytes is the summed predictor + CID register overhead.
	SRAMBytes int `json:"sram_bytes"`
	// Robust holds the engine-level degradation counters: sheds,
	// cancellations, and injected faults. Ops counted here never touched
	// a Memory, so they are disjoint from the per-shard counters.
	Robust RobustStats `json:"robust"`
	// Tiers, present only on tiered engines, merges the per-shard tier
	// snapshots. On a tiered engine Total/PerShard describe the far
	// (compressed) tier only; near-tier traffic lives here.
	Tiers *tier.Snapshot `json:"tiers,omitempty"`
}

// StatsSnapshot captures a coherent per-shard snapshot: an idle shard is
// read directly under its execution lock; a busy one gets a marker
// routed through its ring so the snapshot serializes against in-flight
// ops. After Close it reads the idle shards directly, so a final
// post-drain snapshot still works.
func (e *Engine) StatsSnapshot() Snapshot {
	snap := Snapshot{
		PerShard:  make([]core.StatsSnapshot, len(e.shards)),
		SRAMBytes: e.sramBytes,
		Robust: RobustStats{
			Sheds:          e.robust.sheds.Load(),
			Canceled:       e.robust.canceled.Load(),
			InjectedErrors: e.robust.injectedErrs.Load(),
			InjectedDelays: e.robust.injectedDelays.Load(),
		},
	}
	var perTier []tier.Snapshot
	if e.cfg.Tier != nil {
		perTier = make([]tier.Snapshot, len(e.shards))
	}
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		// Workers have exited (Close waited for them), so direct reads
		// are exclusive again.
		for i, w := range e.shards {
			snap.PerShard[i] = w.mem.StatsSnapshot()
			if perTier != nil {
				perTier[i] = w.tier.Snapshot()
			}
		}
	} else {
		var done sync.WaitGroup
		for i, w := range e.shards {
			if w.memMu.TryLock() {
				if w.qlen.Load() == 0 {
					snap.PerShard[i] = w.mem.StatsSnapshot()
					if perTier != nil {
						perTier[i] = w.tier.Snapshot()
					}
					w.memMu.Unlock()
					continue
				}
				w.memMu.Unlock()
			}
			done.Add(1)
			t := task{snap: &snap.PerShard[i], done: &done}
			if perTier != nil {
				t.tierSnap = &perTier[i]
			}
			w.admitAlways(t)
		}
		e.mu.RUnlock()
		done.Wait()
	}
	for _, s := range snap.PerShard {
		snap.Total.Accumulate(s)
	}
	if perTier != nil {
		var ts tier.Snapshot
		for _, s := range perTier {
			ts.Accumulate(s)
		}
		snap.Tiers = &ts
	}
	return snap
}

// Tiered reports whether the engine runs the two-tier backend.
func (e *Engine) Tiered() bool { return e.cfg.Tier != nil }

// TierSnapshot reports the merged tier snapshot of a tiered engine; ok
// is false on a classic single-tier engine. Coherence matches
// StatsSnapshot (execution lock or marker per shard).
func (e *Engine) TierSnapshot() (tier.Snapshot, bool) {
	if e.cfg.Tier == nil {
		return tier.Snapshot{}, false
	}
	s := e.StatsSnapshot()
	return *s.Tiers, true
}

// Close drains every shard's ring and stops the shard goroutines.
// In-flight and queued ops complete; subsequent submissions fail with
// ErrClosed. A Do blocked on a full ring when Close fires is
// interrupted: its unsent ops fail with ErrClosed per op instead of
// holding the caller (and Close) hostage behind backpressure. Close is
// idempotent: the first call drains, later calls report ErrClosed.
func (e *Engine) Close() error {
	if !e.closing.CompareAndSwap(false, true) {
		return ErrClosed
	}
	// Interrupt submitters blocked on full rings first; only then can the
	// write lock be acquired (blocked submitters hold the read lock while
	// they wait for ring space).
	for _, w := range e.shards {
		w.mu.Lock()
		w.interrupted = true
		w.cond.Broadcast()
		w.mu.Unlock()
	}
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	// No submitter can admit past this point (they all observe closed);
	// tell the shard goroutines to finish the backlog and exit.
	for _, w := range e.shards {
		w.mu.Lock()
		w.stopped = true
		w.mu.Unlock()
		w.signal()
	}
	e.wg.Wait()
	return nil
}
