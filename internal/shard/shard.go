// Package shard provides the concurrent entry point to the Attaché
// functional memory: an N-way address-sharded pool of core.Memory
// instances, each owned by a single goroutine fed through a batched
// request pipeline.
//
// The design follows the shape CRAM and the CXL-pooling line of work give
// compressed memory — a shared pool behind a request interface:
//
//   - Sharding: a line address is mixed and reduced to a shard index, so
//     each 64-byte line lives in exactly one shard and round-trips are
//     exact regardless of shard count. Every shard holds an independent
//     framework (its own CID, scrambler key, and COPR predictor), exactly
//     as the paper's per-controller state would be replicated across
//     memory controllers.
//   - Pipeline: callers submit batches of ops; the engine splits a batch
//     by shard, enqueues one task per touched shard, and the per-shard
//     goroutine applies the ops back-to-back — the hot path takes no
//     locks around the Memory itself, because ownership is exclusive.
//   - Stats: each shard mutates only its own Memory's counters. Snapshot
//     routes a marker through every pipeline so each shard publishes a
//     coherent core.StatsSnapshot, then merges them with Accumulate —
//     lock-free aggregation by ownership rather than by atomics.
//
// core.Memory itself is not safe for concurrent use; this package is how
// concurrent callers (cmd/attached, tests, user code via
// attache.NewEngine) get at it.
package shard

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"attache/internal/core"
)

// ErrClosed reports an operation on an engine after Close.
var ErrClosed = errors.New("shard: engine closed")

// Config sizes the engine.
type Config struct {
	// Shards is the number of independent Memory shards (and goroutines).
	// 0 defaults to GOMAXPROCS.
	Shards int
	// QueueDepth is the per-shard pipeline buffer: how many submitted
	// tasks a shard can hold before submitters block (backpressure).
	// 0 defaults to 64.
	QueueDepth int
	// MaxLines, when non-zero, bounds the line address space: ops at
	// addresses >= MaxLines fail with core.ErrOutOfRange.
	MaxLines uint64
}

func (c Config) withDefaults() Config {
	if c.Shards == 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	return c
}

// Op is one read or write in a batch.
type Op struct {
	// Write selects the operation; false means read.
	Write bool
	// Addr is the line address.
	Addr uint64
	// Data is the 64-byte payload for writes; it must not be mutated
	// until the submitting call returns. Ignored for reads.
	Data []byte
}

// Result is the outcome of one Op, in submission order.
type Result struct {
	// Data holds the line read; nil for writes and failed ops.
	Data []byte
	// Err is the op's failure, if any; batch submission isolates
	// failures per op, so one bad op never poisons its neighbours.
	Err error
}

// task is one shard's slice of a submitted batch, or (when snap is
// non-nil) a stats-snapshot marker flowing through the same pipeline so
// it serializes against in-flight ops.
type task struct {
	ops  []Op
	idx  []int // positions of ops in the caller's batch / result slice
	res  []Result
	snap *core.StatsSnapshot
	done *sync.WaitGroup
}

// worker owns one shard: one Memory, one goroutine, one queue.
type worker struct {
	mem  *core.Memory
	reqs chan task
}

func (w *worker) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for t := range w.reqs {
		if t.snap != nil {
			*t.snap = w.mem.StatsSnapshot()
			t.done.Done()
			continue
		}
		for i, j := range t.idx {
			op := t.ops[i]
			if op.Write {
				t.res[j].Err = w.mem.Write(op.Addr, op.Data)
			} else {
				t.res[j].Data, t.res[j].Err = w.mem.Read(op.Addr)
			}
		}
		t.done.Done()
	}
}

// Engine is the sharded concurrent compressed-memory pool. All methods
// are safe for concurrent use by any number of goroutines.
type Engine struct {
	cfg       Config
	shards    []*worker
	sramBytes int

	mu     sync.RWMutex // guards closed vs. submissions; not on the per-shard hot path
	closed bool
	wg     sync.WaitGroup
}

// New builds an engine of cfg.Shards independent Memory shards, each
// configured from opts. Shard i derives its seed from opts.Seed so a
// 1-shard engine is bit-identical to a plain NewMemory(opts).
func New(opts core.Options, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d not in [1,∞): %w", cfg.Shards, core.ErrOutOfRange)
	}
	if cfg.QueueDepth < 1 {
		return nil, fmt.Errorf("shard: queue depth %d not in [1,∞): %w", cfg.QueueDepth, core.ErrOutOfRange)
	}
	e := &Engine{cfg: cfg, shards: make([]*worker, cfg.Shards)}
	for i := range e.shards {
		o := opts
		// Shard 0 keeps the caller's seed exactly (single-shard results
		// must match a plain Memory); later shards mix in their index so
		// each gets a distinct CID and scrambler key.
		o.Seed = opts.Seed ^ int64(uint64(i)*0x9E3779B97F4A7C15)
		mem, err := core.NewMemory(o)
		if err != nil {
			return nil, err
		}
		e.sramBytes += mem.Framework().StorageOverheadBytes()
		e.shards[i] = &worker{mem: mem, reqs: make(chan task, cfg.QueueDepth)}
		e.wg.Add(1)
		go e.shards[i].run(&e.wg)
	}
	return e, nil
}

// shardFor maps a line address to its owning shard. The multiply-xor mix
// keeps strided address patterns from piling onto one shard.
func (e *Engine) shardFor(addr uint64) int {
	x := addr * 0x9E3779B97F4A7C15
	x ^= x >> 32
	return int(x % uint64(len(e.shards)))
}

// Shards reports the configured shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// StorageOverheadBytes reports the summed SRAM cost of every shard's
// predictor tables and CID register.
func (e *Engine) StorageOverheadBytes() int { return e.sramBytes }

// Do submits a batch of ops and blocks until every op completes,
// returning results in submission order. Failures are isolated per op.
// Do itself errors only when the engine is closed.
//
// Ops for the same shard are applied in batch order; ops for different
// shards run concurrently. Two racing Do calls that touch the same
// address are serialized by that address's shard, in channel order.
func (e *Engine) Do(ops []Op) ([]Result, error) {
	res := make([]Result, len(ops))
	if len(ops) == 0 {
		return res, nil
	}
	perShard := make([][]int, len(e.shards))
	for i, op := range ops {
		if e.cfg.MaxLines > 0 && op.Addr >= e.cfg.MaxLines {
			res[i].Err = fmt.Errorf("shard: addr %#x beyond configured capacity %d: %w",
				op.Addr, e.cfg.MaxLines, core.ErrOutOfRange)
			continue
		}
		s := e.shardFor(op.Addr)
		perShard[s] = append(perShard[s], i)
	}

	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return nil, ErrClosed
	}
	var done sync.WaitGroup
	for s, idx := range perShard {
		if len(idx) == 0 {
			continue
		}
		sub := make([]Op, len(idx))
		for k, j := range idx {
			sub[k] = ops[j]
		}
		done.Add(1)
		e.shards[s].reqs <- task{ops: sub, idx: idx, res: res, done: &done}
	}
	e.mu.RUnlock()
	done.Wait()
	return res, nil
}

// Read loads the 64-byte line at addr through the pipeline.
func (e *Engine) Read(addr uint64) ([]byte, error) {
	res, err := e.Do([]Op{{Addr: addr}})
	if err != nil {
		return nil, err
	}
	return res[0].Data, res[0].Err
}

// Write stores a 64-byte line at addr through the pipeline.
func (e *Engine) Write(addr uint64, data []byte) error {
	res, err := e.Do([]Op{{Write: true, Addr: addr, Data: data}})
	if err != nil {
		return err
	}
	return res[0].Err
}

// BatchRead loads every address, isolating failures per op.
func (e *Engine) BatchRead(addrs []uint64) ([]Result, error) {
	ops := make([]Op, len(addrs))
	for i, a := range addrs {
		ops[i] = Op{Addr: a}
	}
	return e.Do(ops)
}

// BatchWrite stores lines[i] at addrs[i], isolating failures per op.
// The two slices must be the same length.
func (e *Engine) BatchWrite(addrs []uint64, lines [][]byte) ([]Result, error) {
	if len(addrs) != len(lines) {
		return nil, fmt.Errorf("shard: batch write has %d addrs but %d lines", len(addrs), len(lines))
	}
	ops := make([]Op, len(addrs))
	for i, a := range addrs {
		ops[i] = Op{Write: true, Addr: a, Data: lines[i]}
	}
	return e.Do(ops)
}

// Snapshot is the engine-level stats view: the merged totals plus each
// shard's own snapshot.
type Snapshot struct {
	// Total merges every shard with core.StatsSnapshot.Accumulate:
	// counters sum; PredictionAccuracy is the reads-weighted mean.
	Total core.StatsSnapshot `json:"total"`
	// PerShard holds shard i's snapshot at index i.
	PerShard []core.StatsSnapshot `json:"per_shard"`
	// SRAMBytes is the summed predictor + CID register overhead.
	SRAMBytes int `json:"sram_bytes"`
}

// StatsSnapshot captures a coherent per-shard snapshot by routing a
// marker through every shard's pipeline (so it serializes against
// in-flight ops) and merges the results. After Close it reads the idle
// shards directly, so a final post-drain snapshot still works.
func (e *Engine) StatsSnapshot() Snapshot {
	snap := Snapshot{PerShard: make([]core.StatsSnapshot, len(e.shards)), SRAMBytes: e.sramBytes}
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		// Workers have exited (Close waited for them), so direct reads
		// are exclusive again.
		for i, w := range e.shards {
			snap.PerShard[i] = w.mem.StatsSnapshot()
		}
	} else {
		var done sync.WaitGroup
		done.Add(len(e.shards))
		for i, w := range e.shards {
			w.reqs <- task{snap: &snap.PerShard[i], done: &done}
		}
		e.mu.RUnlock()
		done.Wait()
	}
	for _, s := range snap.PerShard {
		snap.Total.Accumulate(s)
	}
	return snap
}

// Close drains every shard's pipeline and stops the shard goroutines.
// In-flight and queued ops complete; subsequent submissions fail with
// ErrClosed. Close is idempotent: the first call drains, later calls
// report ErrClosed.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	e.closed = true
	for _, w := range e.shards {
		close(w.reqs)
	}
	e.mu.Unlock()
	e.wg.Wait()
	return nil
}
