// Package shard provides the concurrent entry point to the Attaché
// functional memory: an N-way address-sharded pool of core.Memory
// instances, each owned by a single goroutine fed through a batched
// request pipeline.
//
// The design follows the shape CRAM and the CXL-pooling line of work give
// compressed memory — a shared pool behind a request interface:
//
//   - Sharding: a line address is mixed and reduced to a shard index, so
//     each 64-byte line lives in exactly one shard and round-trips are
//     exact regardless of shard count. Every shard holds an independent
//     framework (its own CID, scrambler key, and COPR predictor), exactly
//     as the paper's per-controller state would be replicated across
//     memory controllers.
//   - Pipeline: callers submit batches of ops; the engine splits a batch
//     by shard, enqueues one task per touched shard, and the per-shard
//     goroutine applies the ops back-to-back — the hot path takes no
//     locks around the Memory itself, because ownership is exclusive.
//   - Stats: each shard mutates only its own Memory's counters. Snapshot
//     routes a marker through every pipeline so each shard publishes a
//     coherent core.StatsSnapshot, then merges them with Accumulate —
//     lock-free aggregation by ownership rather than by atomics.
//
// core.Memory itself is not safe for concurrent use; this package is how
// concurrent callers (cmd/attached, tests, user code via
// attache.NewEngine) get at it.
package shard

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"attache/internal/core"
	"attache/internal/obs"
)

// ErrClosed reports an operation on an engine after Close.
var ErrClosed = errors.New("shard: engine closed")

// Config sizes the engine.
type Config struct {
	// Shards is the number of independent Memory shards (and goroutines).
	// 0 defaults to GOMAXPROCS.
	Shards int
	// QueueDepth is the per-shard pipeline buffer: how many submitted
	// tasks a shard can hold before backpressure kicks in. Do blocks on a
	// full queue; DoCtx sheds instead, failing the shard's ops with
	// core.ErrOverloaded. 0 defaults to 64.
	QueueDepth int
	// MaxLines, when non-zero, bounds the line address space: ops at
	// addresses >= MaxLines fail with core.ErrOutOfRange.
	MaxLines uint64
	// Faults, when enabled, injects seeded delays/errors/partial-batch
	// failures into every shard's pipeline. Off (zero) by default.
	Faults FaultPlan
	// Obs, when non-nil, turns on pipeline tracing: requests carrying a
	// trace in their context (and a sampled fraction of the rest, per the
	// observer's sample rate) get enqueue/dequeue/execute/respond spans
	// recorded, decomposing latency into queue wait vs. service time.
	// nil (the default) costs one branch per submission and zero
	// allocations.
	Obs *obs.Observer
}

func (c Config) withDefaults() Config {
	if c.Shards == 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	return c
}

// Op is one read or write in a batch.
type Op struct {
	// Write selects the operation; false means read.
	Write bool
	// Addr is the line address.
	Addr uint64
	// Data is the 64-byte payload for writes; it must not be mutated
	// until the submitting call returns. Ignored for reads.
	Data []byte
}

// Result is the outcome of one Op, in submission order.
type Result struct {
	// Data holds the line read; nil for writes and failed ops.
	Data []byte
	// Err is the op's failure, if any; batch submission isolates
	// failures per op, so one bad op never poisons its neighbours.
	Err error
}

// task is one shard's slice of a submitted batch, or (when snap is
// non-nil) a stats-snapshot marker flowing through the same pipeline so
// it serializes against in-flight ops. ctx is non-nil only for DoCtx
// submissions; the worker checks it once per task so a cancelled task
// frees its queue slot without executing.
type task struct {
	ctx  context.Context
	ops  []Op
	idx  []int // positions of ops in the caller's batch / result slice
	res  []Result
	snap *core.StatsSnapshot
	done *sync.WaitGroup

	// tr, when non-nil, receives this task's pipeline spans; enq is the
	// trace-relative enqueue instant the dequeue span starts from. Both
	// are zero on the untraced path.
	tr  *obs.Trace
	enq time.Duration
}

// robustCounters are the engine-level degradation counters: everything
// that happened to ops besides executing them. They sit off the happy
// path — an op that executes normally touches none of them.
type robustCounters struct {
	sheds          atomic.Uint64
	canceled       atomic.Uint64
	injectedErrs   atomic.Uint64
	injectedDelays atomic.Uint64
}

// RobustStats is the exported snapshot of the degradation counters.
type RobustStats struct {
	// Sheds counts ops rejected with ErrOverloaded because their shard's
	// queue was full at DoCtx admission.
	Sheds uint64 `json:"sheds"`
	// Canceled counts ops that returned a context error: expired or
	// cancelled while queued, skipped without executing.
	Canceled uint64 `json:"canceled"`
	// InjectedErrors / InjectedDelays count fault-injection outcomes
	// (always 0 with injection off).
	InjectedErrors uint64 `json:"injected_errors"`
	InjectedDelays uint64 `json:"injected_delays"`
}

// worker owns one shard: one Memory, one goroutine, one queue, and (when
// fault injection is on) one seeded injector. inflight and lastBatch are
// the shard's queue telemetry, maintained unconditionally (two atomic
// ops per task, no allocation) so Engine.Gauges always has live data.
type worker struct {
	id     int
	mem    *core.Memory
	reqs   chan task
	inj    *injector
	robust *robustCounters

	inflight  atomic.Int64 // op tasks admitted but not yet completed
	lastBatch atomic.Int64 // ops in the most recently dequeued task
}

func (w *worker) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for t := range w.reqs {
		if t.snap != nil {
			*t.snap = w.mem.StatsSnapshot()
			t.done.Done()
			continue
		}
		w.lastBatch.Store(int64(len(t.idx)))
		if t.tr != nil {
			// The dequeue span is the queue wait: enqueue instant → now.
			t.tr.Record(obs.StageDequeue, w.id, len(t.idx), t.enq, t.tr.Now())
		}
		// A task whose context died while it sat in the queue is skipped
		// wholesale: the slot is freed without touching the memory, and
		// every op reports the context's error.
		if t.ctx != nil {
			if err := t.ctx.Err(); err != nil {
				for _, j := range t.idx {
					t.res[j].Err = err
				}
				w.robust.canceled.Add(uint64(len(t.idx)))
				w.inflight.Add(-1)
				t.done.Done()
				continue
			}
		}
		var x0 time.Duration
		if t.tr != nil {
			x0 = t.tr.Now()
		}
		cut := len(t.idx)
		if w.inj != nil {
			cut = w.inj.cut(cut)
		}
		for i, j := range t.idx {
			if w.inj != nil {
				if i >= cut {
					t.res[j].Err = fmt.Errorf("shard: batch died at op %d of %d: %w", i, len(t.idx), ErrFaultInjected)
					w.robust.injectedErrs.Add(1)
					continue
				}
				delayed, err := w.inj.op()
				if delayed {
					w.robust.injectedDelays.Add(1)
				}
				if err != nil {
					t.res[j].Err = fmt.Errorf("shard: op at %#x: %w", t.ops[i].Addr, err)
					w.robust.injectedErrs.Add(1)
					continue
				}
			}
			op := t.ops[i]
			if op.Write {
				t.res[j].Err = w.mem.Write(op.Addr, op.Data)
			} else {
				t.res[j].Data, t.res[j].Err = w.mem.Read(op.Addr)
			}
		}
		if t.tr != nil {
			// The execute span is the service time on this shard.
			t.tr.Record(obs.StageExecute, w.id, len(t.idx), x0, t.tr.Now())
		}
		w.inflight.Add(-1)
		t.done.Done()
	}
}

// Engine is the sharded concurrent compressed-memory pool. All methods
// are safe for concurrent use by any number of goroutines.
type Engine struct {
	cfg       Config
	shards    []*worker
	sramBytes int
	robust    robustCounters
	obs       *obs.Observer // nil = tracing off

	// stop is closed at the start of Close, before the submission lock is
	// taken: it interrupts submitters blocked on full queues so Close
	// never waits behind backpressure (those ops fail with ErrClosed).
	stop    chan struct{}
	closing atomic.Bool

	mu     sync.RWMutex // guards closed vs. submissions; not on the per-shard hot path
	closed bool
	wg     sync.WaitGroup
}

// New builds an engine of cfg.Shards independent Memory shards, each
// configured from opts. Shard i derives its seed from opts.Seed so a
// 1-shard engine is bit-identical to a plain NewMemory(opts).
func New(opts core.Options, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d not in [1,∞): %w", cfg.Shards, core.ErrOutOfRange)
	}
	if cfg.QueueDepth < 1 {
		return nil, fmt.Errorf("shard: queue depth %d not in [1,∞): %w", cfg.QueueDepth, core.ErrOutOfRange)
	}
	if err := cfg.Faults.validate(); err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, shards: make([]*worker, cfg.Shards), stop: make(chan struct{}), obs: cfg.Obs}
	for i := range e.shards {
		o := opts
		// Shard 0 keeps the caller's seed exactly (single-shard results
		// must match a plain Memory); later shards mix in their index so
		// each gets a distinct CID and scrambler key.
		o.Seed = opts.Seed ^ int64(uint64(i)*0x9E3779B97F4A7C15)
		mem, err := core.NewMemory(o)
		if err != nil {
			return nil, err
		}
		e.sramBytes += mem.Framework().StorageOverheadBytes()
		e.shards[i] = &worker{
			id:     i,
			mem:    mem,
			reqs:   make(chan task, cfg.QueueDepth),
			inj:    newInjector(cfg.Faults, i),
			robust: &e.robust,
		}
		e.wg.Add(1)
		go e.shards[i].run(&e.wg)
	}
	return e, nil
}

// shardFor maps a line address to its owning shard. The multiply-xor mix
// keeps strided address patterns from piling onto one shard.
func (e *Engine) shardFor(addr uint64) int {
	x := addr * 0x9E3779B97F4A7C15
	x ^= x >> 32
	return int(x % uint64(len(e.shards)))
}

// Shards reports the configured shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// StorageOverheadBytes reports the summed SRAM cost of every shard's
// predictor tables and CID register.
func (e *Engine) StorageOverheadBytes() int { return e.sramBytes }

// Gauges reads each shard's live queue telemetry: queue depth (tasks
// buffered in the pipeline channel), in-flight count (tasks admitted
// but not yet completed), and the size of the last dequeued batch.
// Lock-free and safe at any time; feed it to obs.PollGauges for a
// periodic signal.
func (e *Engine) Gauges() []obs.ShardGauge {
	out := make([]obs.ShardGauge, len(e.shards))
	for i, w := range e.shards {
		out[i] = obs.ShardGauge{
			Shard:        i,
			QueueDepth:   len(w.reqs),
			InFlight:     w.inflight.Load(),
			LastBatchOps: w.lastBatch.Load(),
		}
	}
	return out
}

// Do submits a batch of ops and blocks until every op completes,
// returning results in submission order. Failures are isolated per op.
// Do itself errors only when the engine is closed.
//
// A full shard queue applies backpressure: Do blocks until the shard
// drains (or Close interrupts the wait, failing the unsent ops with
// ErrClosed per op). For deadline-aware submission and load shedding use
// DoCtx.
//
// Ops for the same shard are applied in batch order; ops for different
// shards run concurrently. Two racing Do calls that touch the same
// address are serialized by that address's shard, in channel order.
func (e *Engine) Do(ops []Op) ([]Result, error) {
	return e.submit(nil, ops)
}

// DoCtx is Do with deadline, cancellation, and load-shed semantics:
//
//   - An already-expired or cancelled ctx returns (nil, ctx.Err())
//     immediately — nothing is enqueued, nothing executes.
//   - Admission is non-blocking: a full shard queue sheds that shard's
//     ops with core.ErrOverloaded per op instead of waiting. Shed ops
//     were never enqueued and had no effect.
//   - If ctx dies while a task is queued, the owning shard skips the
//     task (freeing the slot without executing) and its ops report
//     ctx.Err() per op.
//
// Ops that were already enqueued when ctx expires still complete if the
// worker reaches them first; DoCtx always waits for enqueued tasks to be
// resolved one way or the other, so results are never torn.
func (e *Engine) DoCtx(ctx context.Context, ops []Op) ([]Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.submit(ctx, ops)
}

// submit routes ops to their shards. ctx == nil selects Do's blocking
// backpressure; a non-nil ctx selects DoCtx's shed-on-full admission.
func (e *Engine) submit(ctx context.Context, ops []Op) ([]Result, error) {
	res := make([]Result, len(ops))
	if len(ops) == 0 {
		return res, nil
	}
	// Trace resolution: a trace already in the context (the HTTP layer or
	// a harness put it there) is always honored; otherwise the observer's
	// sampler may start one that the engine owns and finishes itself.
	// With no observer configured this is a single nil check.
	var tr *obs.Trace
	owned := false
	if e.obs != nil {
		if ctx != nil {
			tr = obs.TraceFromContext(ctx)
		}
		if tr == nil && e.obs.Sampled() {
			tr = e.obs.StartTrace(0)
			owned = true
		}
	}
	perShard := make([][]int, len(e.shards))
	for i, op := range ops {
		if e.cfg.MaxLines > 0 && op.Addr >= e.cfg.MaxLines {
			res[i].Err = fmt.Errorf("shard: addr %#x beyond configured capacity %d: %w",
				op.Addr, e.cfg.MaxLines, core.ErrOutOfRange)
			continue
		}
		s := e.shardFor(op.Addr)
		perShard[s] = append(perShard[s], i)
	}

	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return nil, ErrClosed
	}
	var done sync.WaitGroup
	closing := false
	for s, idx := range perShard {
		if len(idx) == 0 {
			continue
		}
		if closing {
			// Close fired mid-submission: fail the rest without blocking.
			markAll(res, idx, fmt.Errorf("shard: shard %d: submit interrupted by Close: %w", s, ErrClosed))
			continue
		}
		sub := make([]Op, len(idx))
		for k, j := range idx {
			sub[k] = ops[j]
		}
		t := task{ctx: ctx, ops: sub, idx: idx, res: res, done: &done}
		if tr != nil {
			t.tr = tr
			t.enq = tr.Now()
		}
		done.Add(1)
		sent := false
		if ctx == nil {
			select {
			case e.shards[s].reqs <- t:
				sent = true
			case <-e.stop:
				done.Done()
				closing = true
				markAll(res, idx, fmt.Errorf("shard: shard %d: submit interrupted by Close: %w", s, ErrClosed))
			}
		} else {
			select {
			case e.shards[s].reqs <- t:
				sent = true
			default:
				done.Done()
				e.robust.sheds.Add(uint64(len(idx)))
				markAll(res, idx, fmt.Errorf("shard: shard %d queue full (depth %d): %w",
					s, e.cfg.QueueDepth, core.ErrOverloaded))
			}
		}
		if sent {
			e.shards[s].inflight.Add(1)
			if tr != nil {
				// Enqueue is recorded only for tasks that actually entered
				// a queue, so shed submissions never leave a dangling span.
				tr.Record(obs.StageEnqueue, s, len(idx), t.enq, t.enq)
			}
		}
	}
	e.mu.RUnlock()
	done.Wait()
	if tr != nil {
		now := tr.Now()
		tr.Record(obs.StageRespond, -1, len(ops), now, now)
		if owned {
			e.obs.Finish(tr)
		}
	}
	return res, nil
}

// markAll fails every op at positions idx with err.
func markAll(res []Result, idx []int, err error) {
	for _, j := range idx {
		res[j].Err = err
	}
}

// Read loads the 64-byte line at addr through the pipeline.
func (e *Engine) Read(addr uint64) ([]byte, error) {
	res, err := e.Do([]Op{{Addr: addr}})
	if err != nil {
		return nil, err
	}
	return res[0].Data, res[0].Err
}

// Write stores a 64-byte line at addr through the pipeline.
func (e *Engine) Write(addr uint64, data []byte) error {
	res, err := e.Do([]Op{{Write: true, Addr: addr, Data: data}})
	if err != nil {
		return err
	}
	return res[0].Err
}

// ReadCtx is Read with DoCtx's deadline and load-shed semantics.
func (e *Engine) ReadCtx(ctx context.Context, addr uint64) ([]byte, error) {
	res, err := e.DoCtx(ctx, []Op{{Addr: addr}})
	if err != nil {
		return nil, err
	}
	return res[0].Data, res[0].Err
}

// WriteCtx is Write with DoCtx's deadline and load-shed semantics.
func (e *Engine) WriteCtx(ctx context.Context, addr uint64, data []byte) error {
	res, err := e.DoCtx(ctx, []Op{{Write: true, Addr: addr, Data: data}})
	if err != nil {
		return err
	}
	return res[0].Err
}

// BatchRead loads every address, isolating failures per op.
func (e *Engine) BatchRead(addrs []uint64) ([]Result, error) {
	ops := make([]Op, len(addrs))
	for i, a := range addrs {
		ops[i] = Op{Addr: a}
	}
	return e.Do(ops)
}

// BatchWrite stores lines[i] at addrs[i], isolating failures per op.
// The two slices must be the same length.
func (e *Engine) BatchWrite(addrs []uint64, lines [][]byte) ([]Result, error) {
	if len(addrs) != len(lines) {
		return nil, fmt.Errorf("shard: batch write has %d addrs but %d lines", len(addrs), len(lines))
	}
	ops := make([]Op, len(addrs))
	for i, a := range addrs {
		ops[i] = Op{Write: true, Addr: a, Data: lines[i]}
	}
	return e.Do(ops)
}

// Snapshot is the engine-level stats view: the merged totals plus each
// shard's own snapshot.
type Snapshot struct {
	// Total merges every shard with core.StatsSnapshot.Accumulate:
	// counters sum; PredictionAccuracy is the reads-weighted mean.
	Total core.StatsSnapshot `json:"total"`
	// PerShard holds shard i's snapshot at index i.
	PerShard []core.StatsSnapshot `json:"per_shard"`
	// SRAMBytes is the summed predictor + CID register overhead.
	SRAMBytes int `json:"sram_bytes"`
	// Robust holds the engine-level degradation counters: sheds,
	// cancellations, and injected faults. Ops counted here never touched
	// a Memory, so they are disjoint from the per-shard counters.
	Robust RobustStats `json:"robust"`
}

// StatsSnapshot captures a coherent per-shard snapshot by routing a
// marker through every shard's pipeline (so it serializes against
// in-flight ops) and merges the results. After Close it reads the idle
// shards directly, so a final post-drain snapshot still works.
func (e *Engine) StatsSnapshot() Snapshot {
	snap := Snapshot{
		PerShard:  make([]core.StatsSnapshot, len(e.shards)),
		SRAMBytes: e.sramBytes,
		Robust: RobustStats{
			Sheds:          e.robust.sheds.Load(),
			Canceled:       e.robust.canceled.Load(),
			InjectedErrors: e.robust.injectedErrs.Load(),
			InjectedDelays: e.robust.injectedDelays.Load(),
		},
	}
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		// Workers have exited (Close waited for them), so direct reads
		// are exclusive again.
		for i, w := range e.shards {
			snap.PerShard[i] = w.mem.StatsSnapshot()
		}
	} else {
		var done sync.WaitGroup
		done.Add(len(e.shards))
		for i, w := range e.shards {
			w.reqs <- task{snap: &snap.PerShard[i], done: &done}
		}
		e.mu.RUnlock()
		done.Wait()
	}
	for _, s := range snap.PerShard {
		snap.Total.Accumulate(s)
	}
	return snap
}

// Close drains every shard's pipeline and stops the shard goroutines.
// In-flight and queued ops complete; subsequent submissions fail with
// ErrClosed. A Do blocked on a full queue when Close fires is
// interrupted: its unsent ops fail with ErrClosed per op instead of
// holding the caller (and Close) hostage behind backpressure. Close is
// idempotent: the first call drains, later calls report ErrClosed.
func (e *Engine) Close() error {
	if !e.closing.CompareAndSwap(false, true) {
		return ErrClosed
	}
	// Interrupt submitters blocked in backpressure sends first; only then
	// can the write lock be acquired (submitters hold the read lock for
	// the duration of their sends).
	close(e.stop)
	e.mu.Lock()
	e.closed = true
	for _, w := range e.shards {
		close(w.reqs)
	}
	e.mu.Unlock()
	e.wg.Wait()
	return nil
}
