package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"attache/internal/core"
)

// chaosTally is one goroutine's ledger of what it asked for and what it
// was told, keyed the way the conservation check needs it.
type chaosTally struct {
	attemptedReads, attemptedWrites uint64
	okReads, okWrites               uint64
	shedReads, shedWrites           uint64
	faultReads, faultWrites         uint64
}

func (c *chaosTally) add(o chaosTally) {
	c.attemptedReads += o.attemptedReads
	c.attemptedWrites += o.attemptedWrites
	c.okReads += o.okReads
	c.okWrites += o.okWrites
	c.shedReads += o.shedReads
	c.shedWrites += o.shedWrites
	c.faultReads += o.faultReads
	c.faultWrites += o.faultWrites
}

// TestChaosConservation is the chaos regression suite: under seeded
// fault injection (error p=0.05, delay p=0.05) and occasional load
// shedding, the engine must lose no acknowledged write, and the
// engine-side counters must conserve against the caller-side ledger —
// every attempted read is exactly one of a hit, a misprediction, a shed,
// or an injected fault:
//
//	attempted = (Reads - Mispredictions) + Mispredictions + Sheds + InjectedErrors
//
// (hits and mispredictions both complete, so they sit inside Total.Reads).
func TestChaosConservation(t *testing.T) {
	e, err := New(core.DefaultOptions(), Config{
		Shards:     2,
		QueueDepth: 4, // small enough that injected delays force real sheds
		Faults:     FaultPlan{Seed: 42, ErrP: 0.05, DelayP: 0.05, Delay: 50 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const goroutines = 4
	const iters = 400
	ctx := context.Background()

	tallies := make([]chaosTally, goroutines)
	acked := make([]map[uint64]uint64, goroutines) // addr -> payload version last acknowledged
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		acked[g] = make(map[uint64]uint64)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 100))
			tl := &tallies[g]
			base := uint64(g) * 10_000 // private range: exact read-back verification
			for i := 0; i < iters; i++ {
				if rng.Intn(2) == 0 || len(acked[g]) == 0 { // write
					addr := base + uint64(rng.Intn(64))
					version := uint64(rng.Intn(1 << 20))
					tl.attemptedWrites++
					err := e.WriteCtx(ctx, addr, testLine(version))
					switch {
					case err == nil:
						tl.okWrites++
						acked[g][addr] = version // acknowledged: must never be lost
					case errors.Is(err, core.ErrOverloaded):
						tl.shedWrites++
					case errors.Is(err, ErrFaultInjected):
						tl.faultWrites++
					default:
						errc <- fmt.Errorf("g%d write: unexpected %v", g, err)
						return
					}
				} else { // read something this goroutine was told landed
					var addr, want uint64
					for a, v := range acked[g] {
						addr, want = a, v
						break
					}
					tl.attemptedReads++
					data, err := e.ReadCtx(ctx, addr)
					switch {
					case err == nil:
						tl.okReads++
						if !bytes.Equal(data, testLine(want)) {
							errc <- fmt.Errorf("g%d: acknowledged write at %#x lost or torn", g, addr)
							return
						}
					case errors.Is(err, core.ErrOverloaded):
						tl.shedReads++
					case errors.Is(err, ErrFaultInjected):
						tl.faultReads++
					default:
						errc <- fmt.Errorf("g%d read %#x: unexpected %v", g, addr, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	var total chaosTally
	for i := range tallies {
		total.add(tallies[i])
	}
	snap := e.StatsSnapshot()

	// The suite is vacuous if the fault plan never fired; the seeded plan
	// at p=0.05 over ~1600 ops makes both taxonomies deterministic enough
	// to demand activity.
	if total.faultReads+total.faultWrites == 0 {
		t.Fatal("fault injection never fired — chaos suite is not exercising anything")
	}

	// Engine-side counters vs caller-side ledger: exact conservation.
	if snap.Total.Reads != total.okReads {
		t.Fatalf("engine Reads = %d, callers saw %d successful reads", snap.Total.Reads, total.okReads)
	}
	if snap.Total.Writes != total.okWrites {
		t.Fatalf("engine Writes = %d, callers saw %d acknowledged writes", snap.Total.Writes, total.okWrites)
	}
	if snap.Total.Mispredictions > snap.Total.Reads {
		t.Fatalf("mispredictions %d exceed reads %d", snap.Total.Mispredictions, snap.Total.Reads)
	}
	if got, want := snap.Robust.Sheds, total.shedReads+total.shedWrites; got != want {
		t.Fatalf("engine Sheds = %d, callers saw %d", got, want)
	}
	if got, want := snap.Robust.InjectedErrors, total.faultReads+total.faultWrites; got != want {
		t.Fatalf("engine InjectedErrors = %d, callers saw %d", got, want)
	}
	// The read identity from the doc comment, both sides fully expanded.
	hits := snap.Total.Reads - snap.Total.Mispredictions
	if total.attemptedReads != hits+snap.Total.Mispredictions+total.shedReads+total.faultReads {
		t.Fatalf("read conservation broken: attempted %d != hits %d + mispred %d + sheds %d + faults %d",
			total.attemptedReads, hits, snap.Total.Mispredictions, total.shedReads, total.faultReads)
	}

	// No acknowledged write may be lost: read everything back, retrying
	// through the still-active fault plan.
	readRetry := func(addr uint64) ([]byte, error) {
		var err error
		for attempt := 0; attempt < 100; attempt++ {
			var data []byte
			data, err = e.ReadCtx(ctx, addr)
			if err == nil {
				return data, nil
			}
			if !errors.Is(err, ErrFaultInjected) && !errors.Is(err, core.ErrOverloaded) {
				return nil, err
			}
		}
		return nil, err
	}
	for g := range acked {
		for addr, version := range acked[g] {
			data, err := readRetry(addr)
			if err != nil {
				t.Fatalf("acknowledged write at %#x unreadable: %v", addr, err)
			}
			if !bytes.Equal(data, testLine(version)) {
				t.Fatalf("acknowledged write at %#x lost: stored bytes differ", addr)
			}
		}
	}
}

// TestFaultInjectionDeterministic pins reproducibility: two engines with
// the same fault plan fed the same sequential op stream fail and delay
// the same ops.
func TestFaultInjectionDeterministic(t *testing.T) {
	plan := FaultPlan{Seed: 9, ErrP: 0.2, PartialP: 0.1}
	run := func() []bool {
		e, err := New(core.DefaultOptions(), Config{Shards: 2, Faults: plan})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		var outcomes []bool
		for i := uint64(0); i < 200; i++ {
			err := e.Write(i, testLine(i))
			if err != nil && !errors.Is(err, ErrFaultInjected) {
				t.Fatalf("op %d: %v", i, err)
			}
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault injection not reproducible: op %d diverges across identical runs", i)
		}
	}
}

// TestFaultPartialBatch checks the partial-batch failure mode: a task is
// cut at one point — a prefix executes, the suffix fails with
// ErrFaultInjected, and nothing interleaves.
func TestFaultPartialBatch(t *testing.T) {
	e, err := New(core.DefaultOptions(), Config{
		Shards: 1,
		Faults: FaultPlan{Seed: 5, PartialP: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	ops := make([]Op, 16)
	for i := range ops {
		ops[i] = Op{Write: true, Addr: uint64(i), Data: testLine(uint64(i))}
	}
	res, err := e.Do(ops)
	if err != nil {
		t.Fatal(err)
	}
	cut := len(res)
	for i, r := range res {
		if r.Err != nil {
			cut = i
			break
		}
	}
	if cut == len(res) {
		t.Fatal("PartialP=1 task was never cut")
	}
	for i, r := range res {
		if i < cut && r.Err != nil {
			t.Fatalf("op %d before cut %d failed: %v", i, cut, r.Err)
		}
		if i >= cut && !errors.Is(r.Err, ErrFaultInjected) {
			t.Fatalf("op %d after cut %d err = %v, want ErrFaultInjected", i, cut, r.Err)
		}
	}
	if got := e.StatsSnapshot().Robust.InjectedErrors; got != uint64(len(res)-cut) {
		t.Fatalf("InjectedErrors = %d, want %d", got, len(res)-cut)
	}
}
