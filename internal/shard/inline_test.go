package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"attache/internal/core"
)

// TestInlineFastPathMatchesQueuedPath pins the central fast-path
// contract: an engine that executes inline (uncontended submission) and
// an engine forced through the ring handoff (noInline) produce
// byte-identical results, identical in-batch ordering, and identical
// statistics for the same deterministic op stream.
func TestInlineFastPathMatchesQueuedPath(t *testing.T) {
	type outcome struct {
		data []byte
		err  string
	}
	run := func(noInline bool) ([]outcome, Snapshot) {
		e, err := New(core.DefaultOptions(), Config{Shards: 3, MaxLines: 1 << 16, noInline: noInline})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		rng := rand.New(rand.NewSource(77))
		var out []outcome
		for iter := 0; iter < 60; iter++ {
			n := 1 + rng.Intn(24)
			ops := make([]Op, n)
			for i := range ops {
				a := uint64(rng.Intn(300))
				switch {
				case i%5 == 4:
					// In-batch write-then-read of the same address: the
					// read must observe the write regardless of path.
					ops[i] = Op{Addr: ops[i-1].Addr}
				case rng.Intn(2) == 0:
					ops[i] = Op{Write: true, Addr: a, Data: testLine(a*31 + uint64(iter))}
				default:
					ops[i] = Op{Addr: a}
				}
			}
			// Sprinkle in out-of-range ops: failure isolation must not
			// depend on the path either.
			if iter%7 == 0 {
				ops[rng.Intn(n)] = Op{Addr: 1 << 20}
			}
			res, err := e.Do(ops)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range res {
				o := outcome{data: append([]byte(nil), r.Data...)}
				if r.Err != nil {
					o.err = r.Err.Error()
				}
				out = append(out, o)
			}
		}
		return out, e.StatsSnapshot()
	}
	inline, inlineSnap := run(false)
	queued, queuedSnap := run(true)
	if len(inline) != len(queued) {
		t.Fatalf("result counts diverge: inline %d, queued %d", len(inline), len(queued))
	}
	for i := range inline {
		if !bytes.Equal(inline[i].data, queued[i].data) {
			t.Fatalf("op %d: inline data != queued data", i)
		}
		if inline[i].err != queued[i].err {
			t.Fatalf("op %d: inline err %q, queued err %q", i, inline[i].err, queued[i].err)
		}
	}
	if inlineSnap.Total != queuedSnap.Total {
		t.Fatalf("stats diverge:\ninline %+v\nqueued %+v", inlineSnap.Total, queuedSnap.Total)
	}
}

// TestInlineContendedSubmissionQueues forces real contention
// deterministically: the test holds shard 0's execution lock (exactly
// what a long-running drain would), so inline claims must fail and every
// submission must take the ring. Releasing the lock lets the shard
// goroutine drain, and every op must have landed exactly once, in order
// per goroutine.
func TestInlineContendedSubmissionQueues(t *testing.T) {
	e, err := New(core.DefaultOptions(), Config{Shards: 1, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	w := e.shards[0]
	w.memMu.Lock() // the shard is "busy": no submitter may execute inline

	const goroutines = 4
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, err := e.Do([]Op{{Write: true, Addr: uint64(g), Data: testLine(uint64(g) + 100)}})
			if err != nil {
				errs[g] = err
				return
			}
			errs[g] = res[0].Err
		}(g)
	}
	// All four submissions must end up queued — none may sneak past the
	// held execution lock.
	deadline := time.Now().Add(5 * time.Second)
	for w.qlen.Load() != goroutines {
		if time.Now().After(deadline) {
			w.memMu.Unlock()
			t.Fatalf("queue depth = %d, want %d (inline path bypassed a busy shard?)", w.qlen.Load(), goroutines)
		}
		time.Sleep(time.Millisecond)
	}
	w.memMu.Unlock()
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	for g := 0; g < goroutines; g++ {
		data, err := e.Read(uint64(g))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, testLine(uint64(g)+100)) {
			t.Fatalf("write %d lost through the contended path", g)
		}
	}
	if sheds := e.StatsSnapshot().Robust.Sheds; sheds != 0 {
		t.Fatalf("blocking Do shed %d ops under contention", sheds)
	}
}

// TestInlineSubmitPathAllocationBudget pins the steady-state allocation
// cost of the submit path itself, observer off: a Do with a caller-built
// batch may allocate at most 1 beyond what core.Memory charges for the
// same ops (the Result slice handed back), and the one-op convenience
// wrappers at most 2 (plus their Op-slice literal). The envelope —
// per-shard index lists, completion state, task — must come from the
// pool.
func TestInlineSubmitPathAllocationBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; absolute budgets only hold without -race")
	}
	mem, err := core.NewMemory(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(core.DefaultOptions(), Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	line := testLine(9)
	if err := mem.Write(3, line); err != nil {
		t.Fatal(err)
	}
	if err := e.Write(3, line); err != nil {
		t.Fatal(err)
	}

	memWrite := testing.AllocsPerRun(300, func() { mem.Write(3, line) })
	memRead := testing.AllocsPerRun(300, func() { mem.Read(3) })

	ops := []Op{{Write: true, Addr: 3, Data: line}}
	doOverhead := testing.AllocsPerRun(300, func() {
		if _, err := e.Do(ops); err != nil {
			t.Fatal(err)
		}
	}) - memWrite
	if doOverhead > 1.1 {
		t.Fatalf("Do adds %.2f allocs/op over plain Memory, budget is 1 (the Result slice)", doOverhead)
	}
	writeOverhead := testing.AllocsPerRun(300, func() {
		if err := e.Write(3, line); err != nil {
			t.Fatal(err)
		}
	}) - memWrite
	readOverhead := testing.AllocsPerRun(300, func() {
		if _, err := e.Read(3); err != nil {
			t.Fatal(err)
		}
	}) - memRead
	if writeOverhead > 2.1 || readOverhead > 2.1 {
		t.Fatalf("wrapper overhead = %.2f (write) / %.2f (read) allocs/op, budget is 2", writeOverhead, readOverhead)
	}

	// Batches must amortize: the envelope is per submission, not per op.
	ops8 := make([]Op, 8)
	for i := range ops8 {
		ops8[i] = Op{Write: true, Addr: uint64(i), Data: line}
	}
	if _, err := e.Do(ops8); err != nil {
		t.Fatal(err)
	}
	batchOverhead := testing.AllocsPerRun(300, func() {
		if _, err := e.Do(ops8); err != nil {
			t.Fatal(err)
		}
	}) - 8*memWrite
	if batchOverhead > 1.1 {
		t.Fatalf("8-op Do adds %.2f allocs over 8 plain writes, budget is 1 per batch", batchOverhead)
	}
}

// TestShardDistributionBalanced pins shardFor's spread: over strided
// address patterns (the pathological input for a modulo mapping), every
// shard — including non-power-of-two counts — must land within 5% of a
// perfectly even split.
func TestShardDistributionBalanced(t *testing.T) {
	for _, shards := range []int{2, 3, 4, 5, 6, 7, 8, 12} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			e, err := New(core.DefaultOptions(), Config{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			counts := make([]int, shards)
			n := 0
			for _, stride := range []uint64{1, 2, 3, 4, 5, 7, 8, 16, 64, 512, 4096} {
				for i := uint64(0); i < 4096; i++ {
					counts[e.shardFor(i*stride)]++
					n++
				}
			}
			mean := float64(n) / float64(shards)
			for s, c := range counts {
				dev := (float64(c) - mean) / mean
				if dev < 0 {
					dev = -dev
				}
				if dev > 0.05 {
					t.Fatalf("shard %d holds %d of %d addrs (%.1f%% off an even split, tolerance 5%%)",
						s, c, n, dev*100)
				}
			}
		})
	}
}

// TestPoolReuseNoAliasing is the pool-correctness guard: overlapping
// batches from racing goroutines, with faults and cancellations firing,
// while every goroutine retains its previous Result slices and
// re-verifies them after later submissions. A pooled envelope that
// leaked into a result, or an index slice reused while still referenced,
// shows up here as a retroactively mutated Result.
func TestPoolReuseNoAliasing(t *testing.T) {
	e, err := New(core.DefaultOptions(), Config{
		Shards:     2,
		QueueDepth: 4,
		Faults:     FaultPlan{Seed: 11, ErrP: 0.05, PartialP: 0.05, DelayP: 0.02, Delay: 20 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	type retained struct {
		res  []Result
		data [][]byte // deep copies taken at return time
		errs []string
	}
	snapshotOf := func(res []Result) retained {
		r := retained{res: res, data: make([][]byte, len(res)), errs: make([]string, len(res))}
		for i := range res {
			if res[i].Data != nil {
				r.data[i] = append([]byte(nil), res[i].Data...)
			}
			if res[i].Err != nil {
				r.errs[i] = res[i].Err.Error()
			}
		}
		return r
	}
	verify := func(r retained) error {
		for i := range r.res {
			if !bytes.Equal(r.res[i].Data, r.data[i]) {
				return fmt.Errorf("result %d data mutated after return (pool aliasing)", i)
			}
			got := ""
			if r.res[i].Err != nil {
				got = r.res[i].Err.Error()
			}
			if got != r.errs[i] {
				return fmt.Errorf("result %d error mutated after return: %q -> %q", i, r.errs[i], got)
			}
		}
		return nil
	}

	const goroutines = 6
	const iters = 150
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) * 31))
			var held []retained
			for i := 0; i < iters; i++ {
				n := 1 + rng.Intn(12)
				ops := make([]Op, n)
				for j := range ops {
					a := uint64(rng.Intn(256)) // shared range: batches overlap across goroutines
					if rng.Intn(2) == 0 {
						ops[j] = Op{Write: true, Addr: a, Data: testLine(a + uint64(g*1000+i))}
					} else {
						ops[j] = Op{Addr: a}
					}
				}
				var res []Result
				var err error
				if rng.Intn(4) == 0 {
					ctx, cancel := context.WithTimeout(context.Background(), time.Duration(rng.Intn(50))*time.Microsecond)
					res, err = e.DoCtx(ctx, ops)
					cancel()
				} else {
					res, err = e.Do(ops)
				}
				if err != nil {
					if errors.Is(err, context.DeadlineExceeded) {
						continue
					}
					errc <- fmt.Errorf("g%d iter %d: %v", g, i, err)
					return
				}
				if len(res) != len(ops) {
					errc <- fmt.Errorf("g%d iter %d: %d results for %d ops", g, i, len(res), len(ops))
					return
				}
				for j := range res {
					if res[j].Data != nil && res[j].Err != nil {
						errc <- fmt.Errorf("g%d iter %d op %d: torn result (data and error)", g, i, j)
						return
					}
					if ops[j].Write && res[j].Data != nil {
						errc <- fmt.Errorf("g%d iter %d op %d: write returned data", g, i, j)
						return
					}
				}
				held = append(held, snapshotOf(res))
				if len(held) > 4 {
					held = held[1:]
				}
				// Everything returned earlier must still read exactly as it
				// did the moment it was returned.
				for _, h := range held {
					if err := verify(h); err != nil {
						errc <- fmt.Errorf("g%d iter %d: %v", g, i, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
