//go:build !race

package shard

// raceEnabled reports whether the race detector is compiled in; the
// absolute allocation-budget assertions skip under it, since race
// instrumentation itself allocates.
const raceEnabled = false
