package copr

// pagePredictor is PaPR: a set-associative table of 2-bit saturating
// counters indexed by page number (paper §IV-C3). Counter >= 2 predicts
// the page's lines compressible.
type pagePredictor struct {
	table *assoc[uint8]
}

// paprEntryBits approximates the SRAM cost of one PaPR entry: a 2-bit
// counter plus a page tag (~16 bits after set indexing) and valid bit.
const paprEntryBits = 19

func newPagePredictor(budgetBytes, ways int) *pagePredictor {
	entries := budgetBytes * 8 / paprEntryBits
	return &pagePredictor{table: newAssoc[uint8](entries, ways)}
}

// lookup reports the counter for page, if present.
func (p *pagePredictor) lookup(page uint64) (uint8, bool) {
	return p.table.lookup(page)
}

// train adjusts an existing entry toward the observation and returns the
// new counter value. Calling train for an absent page is a no-op that
// returns 0; use insert to allocate.
func (p *pagePredictor) train(page uint64, compressed bool) uint8 {
	c, ok := p.table.lookup(page)
	if !ok {
		return 0
	}
	if compressed {
		if c < 3 {
			c++
		}
	} else if c > 0 {
		c--
	}
	p.table.insert(page, c)
	return c
}

// insert allocates (or overwrites) the page's counter.
func (p *pagePredictor) insert(page uint64, counter uint8) {
	if counter > 3 {
		counter = 3
	}
	p.table.insert(page, counter)
}

// capacity reports the number of page entries.
func (p *pagePredictor) capacity() int { return p.table.capacity() }
