// Package copr implements the Compression Predictor (paper §IV-C), the
// second component of the Attaché framework. COPR replaces the
// Metadata-Cache: before issuing a read, the memory controller asks COPR
// whether the line is compressed (enable one sub-rank) or not (enable
// both). BLEM delivers the ground truth with the data, so a misprediction
// costs only a corrective 32-byte fetch and never any metadata traffic.
//
// COPR predicts at three granularities:
//
//   - LiPR  — line-level: a set-associative table of 64-bit vectors, one
//     bit per cacheline of a 4 KB page (176 KB).
//   - PaPR  — page-level: a set-associative table of 2-bit saturating
//     counters indexed by page number (192 KB).
//   - GI    — global: eight 2-bit saturating counters, one per 1/8th of
//     the physical memory space.
//
// Lookup prefers the finest available level; GI seeds newly allocated
// PaPR entries so pages inherit the application's global behaviour.
package copr

import (
	"fmt"

	"attache/internal/stats"
)

// Page geometry: 4 KB pages of 64-byte lines = 64 lines per page, which
// is exactly one LiPR 64-bit vector.
const (
	pageShift    = 12
	lineShift    = 6
	LinesPerPage = 1 << (pageShift - lineShift)
)

// Source identifies which predictor level produced a prediction.
type Source uint8

// Prediction sources, finest first.
const (
	SourceLiPR Source = iota
	SourcePaPR
	SourceGI
	SourceDefault // every component disabled or cold
)

// String names the source.
func (s Source) String() string {
	switch s {
	case SourceLiPR:
		return "lipr"
	case SourcePaPR:
		return "papr"
	case SourceGI:
		return "gi"
	case SourceDefault:
		return "default"
	default:
		return fmt.Sprintf("Source(%d)", uint8(s))
	}
}

// Config sizes and enables the predictor components; the zero value is
// invalid — use DefaultConfig.
type Config struct {
	MemorySize  int64 // modeled physical memory, for GI region mapping
	GICounters  int   // eight in the paper
	GIThreshold uint8 // GI counter value (exclusive) above which new PaPR entries start saturated

	PaPRBytes int // storage budget, 192 KB in the paper
	PaPRWays  int

	LiPRBytes int // storage budget, 176 KB in the paper
	LiPRWays  int

	EnableGI   bool
	EnablePaPR bool
	EnableLiPR bool
}

// DefaultConfig returns the paper's 368 KB configuration for a 16 GB
// memory system.
func DefaultConfig() Config {
	return Config{
		MemorySize:  16 << 30,
		GICounters:  8,
		GIThreshold: 2,
		PaPRBytes:   192 << 10,
		PaPRWays:    16,
		LiPRBytes:   176 << 10,
		LiPRWays:    16,
		EnableGI:    true,
		EnablePaPR:  true,
		EnableLiPR:  true,
	}
}

// Stats aggregates prediction accuracy, overall and per source.
type Stats struct {
	Overall  stats.Ratio
	BySource [SourceDefault + 1]stats.Ratio
}

// Predictor is the full COPR unit.
type Predictor struct {
	cfg   Config
	gi    *globalIndicator
	papr  *pagePredictor
	lipr  *linePredictor
	Stats Stats
}

// New builds a predictor from cfg.
func New(cfg Config) *Predictor {
	if cfg.MemorySize <= 0 {
		panic("copr: memory size must be positive")
	}
	if cfg.GICounters <= 0 || cfg.GICounters&(cfg.GICounters-1) != 0 {
		panic(fmt.Sprintf("copr: GI counters must be a positive power of two, got %d", cfg.GICounters))
	}
	p := &Predictor{cfg: cfg}
	p.gi = newGlobalIndicator(cfg.GICounters, cfg.MemorySize)
	if cfg.EnablePaPR {
		p.papr = newPagePredictor(cfg.PaPRBytes, cfg.PaPRWays)
	}
	if cfg.EnableLiPR {
		p.lipr = newLinePredictor(cfg.LiPRBytes, cfg.LiPRWays)
	}
	return p
}

// Predict guesses whether the line at addr is stored compressed, and
// reports which component decided. It does not mutate predictor state;
// training happens in Update once BLEM reveals the truth.
func (p *Predictor) Predict(addr uint64) (compressed bool, src Source) {
	page := addr >> pageShift
	lineIdx := int(addr>>lineShift) & (LinesPerPage - 1)
	if p.lipr != nil {
		// LiPR answers only for lines it has directly observed: a wrong
		// "compressed" guess costs a serialized corrective fetch, so
		// unobserved lines defer to the page-level structures.
		if pred, seen, ok := p.lipr.lookup(page); ok && seen&(1<<uint(lineIdx)) != 0 {
			return pred&(1<<uint(lineIdx)) != 0, SourceLiPR
		}
	}
	if p.papr != nil {
		if c, ok := p.papr.lookup(page); ok {
			return c >= 2, SourcePaPR
		}
	}
	if p.cfg.EnableGI {
		return p.gi.predict(addr), SourceGI
	}
	return false, SourceDefault
}

// Update records whether the current prediction for addr matches the
// observed compressibility, then trains every enabled component. This is
// the read path: the controller predicts, BLEM reveals the truth, COPR
// learns (paper §IV-C2).
func (p *Predictor) Update(addr uint64, compressed bool) {
	predicted, src := p.Predict(addr)
	correct := predicted == compressed
	p.Stats.Overall.Observe(correct)
	p.Stats.BySource[src].Observe(correct)
	p.Train(addr, compressed)
}

// Train teaches the predictor without scoring accuracy — the write path,
// where the controller knows the outcome because it ran the compressor
// itself and no prediction was ever consulted.
func (p *Predictor) Train(addr uint64, compressed bool) {
	page := addr >> pageShift
	lineIdx := int(addr>>lineShift) & (LinesPerPage - 1)

	// GI always trains: it tracks the application's global behaviour.
	p.gi.update(addr, compressed)

	// PaPR trains next so LiPR's neighbor update sees fresh counters.
	var paprCounter uint8
	var paprPresent bool
	if p.papr != nil {
		_, paprPresent = p.papr.lookup(page)
		if paprPresent {
			paprCounter = p.papr.train(page, compressed)
		} else {
			init := uint8(0)
			if p.cfg.EnableGI && p.gi.counterFor(addr) > p.cfg.GIThreshold {
				init = 3
			}
			// The entry starts from the GI hint, then absorbs this
			// observation.
			if compressed && init < 3 {
				init++
			} else if !compressed && init > 0 {
				init--
			}
			p.papr.insert(page, init)
			paprCounter = init
			paprPresent = true
		}
	}

	if p.lipr != nil {
		// A confident PaPR counter deems the page homogeneous: the
		// proactive neighbor update propagates the observation to the
		// page's unobserved lines (paper §IV-C3). Lines already observed
		// keep their learned bits, so mixed pages converge.
		homogeneous := paprPresent && paprCounter >= 2
		fallback := !paprPresent && p.cfg.EnableGI && p.gi.predict(addr)
		p.lipr.train(page, lineIdx, compressed, homogeneous, fallback)
	}
}

// Accuracy reports overall prediction accuracy so far.
func (p *Predictor) Accuracy() float64 { return p.Stats.Overall.Value() }

// StorageBytes reports the SRAM the configured predictor occupies — the
// paper's 368 KB headline for the default configuration.
func (p *Predictor) StorageBytes() int {
	total := p.cfg.GICounters / 4 // 2 bits per counter
	if total == 0 {
		total = 1
	}
	if p.papr != nil {
		total += p.cfg.PaPRBytes
	}
	if p.lipr != nil {
		total += p.cfg.LiPRBytes
	}
	return total
}
