package copr

// assoc is a small set-associative table with LRU replacement, shared by
// PaPR and LiPR. Values are generic; keys are page numbers.
type assoc[V any] struct {
	sets    int
	ways    int
	entries []assocEntry[V] // sets*ways, set-major
	tick    uint64
}

type assocEntry[V any] struct {
	valid bool
	key   uint64
	value V
	used  uint64
}

// newAssoc builds a table with capacity for at least `entries` items,
// rounding the set count down to a power of two.
func newAssoc[V any](entries, ways int) *assoc[V] {
	if ways <= 0 {
		panic("copr: ways must be positive")
	}
	sets := entries / ways
	if sets < 1 {
		sets = 1
	}
	// Round down to a power of two for cheap indexing.
	for sets&(sets-1) != 0 {
		sets &= sets - 1
	}
	return &assoc[V]{
		sets:    sets,
		ways:    ways,
		entries: make([]assocEntry[V], sets*ways),
	}
}

// capacity reports the number of entries the table can hold.
func (a *assoc[V]) capacity() int { return a.sets * a.ways }

func (a *assoc[V]) set(key uint64) []assocEntry[V] {
	s := int(key) & (a.sets - 1)
	return a.entries[s*a.ways : (s+1)*a.ways]
}

// lookup finds key and refreshes its LRU position.
func (a *assoc[V]) lookup(key uint64) (V, bool) {
	set := a.set(key)
	for i := range set {
		if set[i].valid && set[i].key == key {
			a.tick++
			set[i].used = a.tick
			return set[i].value, true
		}
	}
	var zero V
	return zero, false
}

// insert adds or updates key, evicting the LRU way when the set is full.
func (a *assoc[V]) insert(key uint64, value V) {
	set := a.set(key)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].key == key {
			victim = i
			break
		}
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	a.tick++
	set[victim] = assocEntry[V]{valid: true, key: key, value: value, used: a.tick}
}
