package copr

import "fmt"

// EntryState is one way of a set-associative predictor table in slot
// order. A and B carry the value payload: PaPR stores its 2-bit counter
// in A (B unused); LiPR stores the per-line prediction vector in A and
// the observed-line vector in B.
type EntryState struct {
	Valid bool
	Key   uint64
	A, B  uint64
	Used  uint64
}

// TableState is the serializable image of one set-associative table,
// including the LRU clock — `used` ordering is behavioral (it picks
// eviction victims), so it must round-trip exactly.
type TableState struct {
	Tick    uint64
	Sets    int
	Ways    int
	Entries []EntryState // len == Sets*Ways, set-major slot order
}

// RatioState is the serializable image of a stats.Ratio.
type RatioState struct {
	Hits  uint64
	Total uint64
}

// State is the serializable image of a whole COPR predictor.
type State struct {
	GI       []uint8
	PaPR     *TableState // nil when PaPR is disabled
	LiPR     *TableState // nil when LiPR is disabled
	Overall  RatioState
	BySource [SourceDefault + 1]RatioState
}

func exportAssoc[V any](a *assoc[V], enc func(V) (uint64, uint64)) *TableState {
	st := &TableState{
		Tick:    a.tick,
		Sets:    a.sets,
		Ways:    a.ways,
		Entries: make([]EntryState, len(a.entries)),
	}
	for i, e := range a.entries {
		va, vb := enc(e.value)
		st.Entries[i] = EntryState{Valid: e.valid, Key: e.key, A: va, B: vb, Used: e.used}
	}
	return st
}

func restoreAssoc[V any](a *assoc[V], st *TableState, dec func(va, vb uint64) V) error {
	if st.Sets != a.sets || st.Ways != a.ways {
		return fmt.Errorf("copr: snapshot table geometry %dx%d does not match configured %dx%d",
			st.Sets, st.Ways, a.sets, a.ways)
	}
	if len(st.Entries) != a.sets*a.ways {
		return fmt.Errorf("copr: snapshot table has %d entries, want %d", len(st.Entries), a.sets*a.ways)
	}
	for _, e := range st.Entries {
		if e.Used > st.Tick {
			return fmt.Errorf("copr: snapshot entry used=%d exceeds tick=%d", e.Used, st.Tick)
		}
	}
	a.tick = st.Tick
	for i, e := range st.Entries {
		a.entries[i] = assocEntry[V]{valid: e.Valid, key: e.Key, value: dec(e.A, e.B), used: e.Used}
	}
	return nil
}

// ExportState captures the predictor's learned state and accuracy
// counters. Copies everything, so the snapshot stays stable while the
// predictor keeps training.
func (p *Predictor) ExportState() *State {
	st := &State{
		GI:      append([]uint8(nil), p.gi.counters...),
		Overall: RatioState{Hits: p.Stats.Overall.Hits(), Total: p.Stats.Overall.Total()},
	}
	for i := range st.BySource {
		st.BySource[i] = RatioState{Hits: p.Stats.BySource[i].Hits(), Total: p.Stats.BySource[i].Total()}
	}
	if p.papr != nil {
		st.PaPR = exportAssoc(p.papr.table, func(v uint8) (uint64, uint64) { return uint64(v), 0 })
	}
	if p.lipr != nil {
		st.LiPR = exportAssoc(p.lipr.table, func(v liprEntry) (uint64, uint64) { return v.pred, v.seen })
	}
	return st
}

// RestoreState overwrites the predictor's learned state from a
// snapshot. The snapshot must have been taken from a predictor with the
// same configuration: component presence and table geometry must match.
func (p *Predictor) RestoreState(st *State) error {
	if len(st.GI) != len(p.gi.counters) {
		return fmt.Errorf("copr: snapshot has %d GI counters, configured %d", len(st.GI), len(p.gi.counters))
	}
	if (st.PaPR != nil) != (p.papr != nil) {
		return fmt.Errorf("copr: snapshot PaPR presence (%v) does not match configuration (%v)",
			st.PaPR != nil, p.papr != nil)
	}
	if (st.LiPR != nil) != (p.lipr != nil) {
		return fmt.Errorf("copr: snapshot LiPR presence (%v) does not match configuration (%v)",
			st.LiPR != nil, p.lipr != nil)
	}
	for _, g := range st.GI {
		if g > 3 {
			return fmt.Errorf("copr: snapshot GI counter %d exceeds 2-bit range", g)
		}
	}
	if p.papr != nil {
		if err := restoreAssoc(p.papr.table, st.PaPR, func(va, _ uint64) uint8 {
			if va > 3 {
				va = 3
			}
			return uint8(va)
		}); err != nil {
			return err
		}
	}
	if p.lipr != nil {
		if err := restoreAssoc(p.lipr.table, st.LiPR, func(va, vb uint64) liprEntry {
			return liprEntry{pred: va, seen: vb}
		}); err != nil {
			return err
		}
	}
	copy(p.gi.counters, st.GI)
	p.Stats.Overall.Restore(st.Overall.Hits, st.Overall.Total)
	for i := range st.BySource {
		p.Stats.BySource[i].Restore(st.BySource[i].Hits, st.BySource[i].Total)
	}
	return nil
}
