package copr

// linePredictor is LiPR: a set-associative table indexed by page number,
// one prediction bit per cacheline of the page (paper §IV-C3). It
// captures pages whose lines have mixed compressibility, which PaPR's
// single counter cannot express.
//
// Each entry carries two 64-bit vectors: pred holds the per-line
// predictions, seen marks lines whose compressibility was directly
// observed. The paper's "proactive neighbor update" (applied when PaPR
// deems the page homogeneous) rewrites only the unobserved bits, so
// learned per-line state is never wiped by a transient page-level signal.
type linePredictor struct {
	table *assoc[liprEntry]
}

type liprEntry struct {
	pred uint64
	seen uint64
}

// liprEntryBits approximates the SRAM cost of one LiPR entry: the
// prediction and observed vectors plus a page tag (~16 bits) and valid
// bit.
const liprEntryBits = 145

func newLinePredictor(budgetBytes, ways int) *linePredictor {
	entries := budgetBytes * 8 / liprEntryBits
	return &linePredictor{table: newAssoc[liprEntry](entries, ways)}
}

// lookup reports the page's prediction and observed vectors, if present.
func (l *linePredictor) lookup(page uint64) (pred, seen uint64, ok bool) {
	e, ok := l.table.lookup(page)
	return e.pred, e.seen, ok
}

// train records an observation for one line of a page, allocating the
// entry if needed. homogeneous applies the proactive neighbor update to
// the unobserved lines; fallback seeds a brand-new entry's unobserved
// bits when no page-level signal exists.
func (l *linePredictor) train(page uint64, lineIdx int, compressed, homogeneous, fallback bool) {
	e, ok := l.table.lookup(page)
	if !ok {
		if fallback {
			e.pred = ^uint64(0)
		}
	}
	bit := uint64(1) << uint(lineIdx)
	if homogeneous {
		// Unobserved neighbors follow the observed line (paper §IV-C3).
		if compressed {
			e.pred |= ^e.seen
		} else {
			e.pred &^= ^e.seen
		}
	}
	if compressed {
		e.pred |= bit
	} else {
		e.pred &^= bit
	}
	e.seen |= bit
	l.table.insert(page, e)
}

// capacity reports the number of page entries.
func (l *linePredictor) capacity() int { return l.table.capacity() }
