package copr

import (
	"math/rand"
	"testing"
)

func TestTrainDoesNotScoreAccuracy(t *testing.T) {
	p := New(testConfig())
	for i := 0; i < 100; i++ {
		p.Train(addrOf(uint64(i%8), i%64), i%2 == 0)
	}
	if p.Stats.Overall.Total() != 0 {
		t.Fatalf("Train recorded %d accuracy observations", p.Stats.Overall.Total())
	}
	// But the tables did learn: a subsequent Predict on a trained page
	// consults PaPR/LiPR, not the default.
	p2 := New(testConfig())
	for i := 0; i < 8; i++ {
		p2.Train(addrOf(3, i), true)
	}
	if c, src := p2.Predict(addrOf(3, 0)); !c || src == SourceDefault {
		t.Fatalf("training had no effect: (%v, %v)", c, src)
	}
}

func TestUpdateEquivalentToPredictPlusTrain(t *testing.T) {
	// Update == score(Predict) + Train: two predictors fed the same
	// stream through either path end in identical prediction states.
	a := New(testConfig())
	b := New(testConfig())
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		page := uint64(rng.Intn(128))
		line := rng.Intn(64)
		comp := rng.Intn(3) > 0
		addr := addrOf(page, line)
		a.Update(addr, comp)
		b.Train(addr, comp) // no scoring, same learning
	}
	for i := 0; i < 2000; i++ {
		addr := addrOf(uint64(rng.Intn(128)), rng.Intn(64))
		ca, sa := a.Predict(addr)
		cb, sb := b.Predict(addr)
		if ca != cb || sa != sb {
			t.Fatalf("states diverge at %d: (%v,%v) vs (%v,%v)", addr, ca, sa, cb, sb)
		}
	}
}

func TestLiPRSeenGating(t *testing.T) {
	p := New(testConfig())
	page := uint64(5)
	// Observe only line 10 (incompressible) on a page PaPR believes
	// compressible.
	for i := 0; i < 4; i++ {
		p.Update(addrOf(page, 0), true)
		p.Update(addrOf(page, 1), true)
	}
	p.Update(addrOf(page, 10), false)
	// Observed line: LiPR answers with the exact bit.
	if c, src := p.Predict(addrOf(page, 10)); c || src != SourceLiPR {
		t.Fatalf("observed line: (%v, %v), want (false, lipr)", c, src)
	}
	// Unobserved line: defer to PaPR's page-level view.
	if _, src := p.Predict(addrOf(page, 30)); src == SourceLiPR {
		t.Fatal("unobserved line must not be answered by LiPR")
	}
}

func TestGISaturationGate(t *testing.T) {
	cfg := testConfig()
	cfg.EnablePaPR, cfg.EnableLiPR = false, false
	p := New(cfg)
	// Two compressible observations: counter at 2, still conservative.
	p.Update(0, true)
	p.Update(64, true)
	if c, _ := p.Predict(128); c {
		t.Fatal("GI predicted compressed below saturation")
	}
	// Third: saturated, now predicts compressed.
	p.Update(128, true)
	if c, _ := p.Predict(192); !c {
		t.Fatal("saturated GI should predict compressed")
	}
}

func TestBySourceAccuracyTracked(t *testing.T) {
	p := New(testConfig())
	for i := 0; i < 1000; i++ {
		p.Update(addrOf(uint64(i%16), i%64), true)
	}
	var total uint64
	for s := range p.Stats.BySource {
		total += p.Stats.BySource[s].Total()
	}
	if total != p.Stats.Overall.Total() {
		t.Fatalf("per-source totals %d != overall %d", total, p.Stats.Overall.Total())
	}
}
