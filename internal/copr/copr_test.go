package copr

import (
	"math/rand"
	"testing"
)

func testConfig() Config {
	c := DefaultConfig()
	c.MemorySize = 1 << 30 // smaller regions so GI tests are compact
	return c
}

func addrOf(page uint64, line int) uint64 {
	return page<<pageShift | uint64(line)<<lineShift
}

func TestDefaultStorageBudget(t *testing.T) {
	p := New(DefaultConfig())
	// The paper's headline: 368 KB of SRAM for COPR.
	if got := p.StorageBytes(); got < 368<<10 || got > 369<<10 {
		t.Fatalf("storage = %d bytes, want ~368 KB", got)
	}
}

func TestPredictDefaultWhenAllDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.EnableGI, cfg.EnablePaPR, cfg.EnableLiPR = false, false, false
	p := New(cfg)
	compressed, src := p.Predict(0x1000)
	if compressed || src != SourceDefault {
		t.Fatalf("got (%v, %v), want (false, default)", compressed, src)
	}
}

func TestGILearnsGlobalBehaviour(t *testing.T) {
	cfg := testConfig()
	cfg.EnablePaPR, cfg.EnableLiPR = false, false
	p := New(cfg)
	// Everything compressible: after a few updates GI predicts true.
	for i := 0; i < 8; i++ {
		p.Update(uint64(i)*64, true)
	}
	if c, src := p.Predict(512); !c || src != SourceGI {
		t.Fatalf("GI should predict compressible, got (%v, %v)", c, src)
	}
	// One incompressible access resets the region counter.
	p.Update(0, false)
	if c, _ := p.Predict(512); c {
		t.Fatal("GI counter should reset to 0 on incompressible access")
	}
}

func TestGIRegionsIndependent(t *testing.T) {
	cfg := testConfig()
	cfg.EnablePaPR, cfg.EnableLiPR = false, false
	p := New(cfg)
	regionSize := uint64(cfg.MemorySize) / uint64(cfg.GICounters)
	for i := 0; i < 4; i++ {
		p.Update(0, true) // region 0 compressible
		p.Update(regionSize*3, false)
	}
	if c, _ := p.Predict(64); !c {
		t.Fatal("region 0 should predict compressible")
	}
	if c, _ := p.Predict(regionSize*3 + 64); c {
		t.Fatal("region 3 should predict incompressible")
	}
}

func TestPaPRLearnsPageBehaviour(t *testing.T) {
	cfg := testConfig()
	cfg.EnableGI, cfg.EnableLiPR = false, false
	p := New(cfg)
	page := uint64(42)
	for line := 0; line < 4; line++ {
		p.Update(addrOf(page, line), true)
	}
	if c, src := p.Predict(addrOf(page, 9)); !c || src != SourcePaPR {
		t.Fatalf("PaPR should predict compressible, got (%v, %v)", c, src)
	}
	// Train the page incompressible; counter decays below threshold.
	for line := 0; line < 4; line++ {
		p.Update(addrOf(page, line), false)
	}
	if c, _ := p.Predict(addrOf(page, 9)); c {
		t.Fatal("PaPR counter should have decayed")
	}
}

func TestGISeedsNewPaPREntries(t *testing.T) {
	cfg := testConfig()
	cfg.EnableLiPR = false
	p := New(cfg)
	// Warm GI with compressible accesses in region 0.
	for page := uint64(0); page < 4; page++ {
		p.Update(addrOf(page, 0), true)
	}
	// First touch of a brand-new page (same region): the PaPR entry is
	// allocated from GI saturated, so the *next* access predicts via PaPR
	// as compressible even though the page itself was seen once.
	fresh := uint64(1000)
	p.Update(addrOf(fresh, 0), true)
	if c, src := p.Predict(addrOf(fresh, 1)); !c || src != SourcePaPR {
		t.Fatalf("GI-seeded PaPR entry should predict compressible, got (%v, %v)", c, src)
	}

	// Without GI, a fresh page starts cold (counter from 0) and needs
	// more evidence.
	cfg2 := testConfig()
	cfg2.EnableGI, cfg2.EnableLiPR = false, false
	p2 := New(cfg2)
	p2.Update(addrOf(fresh, 0), true)
	if c, _ := p2.Predict(addrOf(fresh, 1)); c {
		t.Fatal("cold PaPR entry should not yet predict compressible")
	}
}

func TestLiPRTracksMixedPages(t *testing.T) {
	cfg := testConfig()
	p := New(cfg)
	page := uint64(7)
	// Alternate: even lines compressible, odd lines not. Train twice so
	// PaPR hovers mid-range and LiPR keeps per-line bits.
	for pass := 0; pass < 6; pass++ {
		for line := 0; line < LinesPerPage; line++ {
			p.Update(addrOf(page, line), line%2 == 0)
		}
	}
	correct := 0
	for line := 0; line < LinesPerPage; line++ {
		c, src := p.Predict(addrOf(page, line))
		if src != SourceLiPR {
			t.Fatalf("line %d predicted by %v, want lipr", line, src)
		}
		if c == (line%2 == 0) {
			correct++
		}
	}
	if correct < LinesPerPage*9/10 {
		t.Fatalf("LiPR got %d/%d mixed-page lines", correct, LinesPerPage)
	}
}

func TestLiPRNeighborUpdateOnHomogeneousPage(t *testing.T) {
	cfg := testConfig()
	p := New(cfg)
	page := uint64(3)
	// Build PaPR confidence that the page is compressible.
	for i := 0; i < 4; i++ {
		p.Update(addrOf(page, i), true)
	}
	// Untouched lines still predict compressible, but through the
	// page-level structure: LiPR only answers for lines it has observed
	// (a wrong "compressed" guess costs a corrective fetch).
	c, src := p.Predict(addrOf(page, 50))
	if !c {
		t.Fatalf("homogeneous page: unobserved line predicted incompressible (src %v)", src)
	}
	if src == SourceLiPR {
		t.Fatal("LiPR must not answer for unobserved lines")
	}
	// Once the line is observed, LiPR takes over.
	p.Update(addrOf(page, 50), true)
	if _, src := p.Predict(addrOf(page, 50)); src != SourceLiPR {
		t.Fatalf("observed line predicted by %v, want lipr", src)
	}
}

func TestAccuracyOnStablePhases(t *testing.T) {
	p := New(testConfig())
	rng := rand.New(rand.NewSource(1))
	// Phase 1: fully compressible pages; phase 2: fully incompressible.
	for i := 0; i < 20000; i++ {
		page := uint64(rng.Intn(64))
		line := rng.Intn(LinesPerPage)
		p.Update(addrOf(page, line), true)
	}
	for i := 0; i < 20000; i++ {
		page := uint64(64 + rng.Intn(64))
		line := rng.Intn(LinesPerPage)
		p.Update(addrOf(page, line), false)
	}
	if acc := p.Accuracy(); acc < 0.95 {
		t.Fatalf("accuracy on stable phases = %.3f, want > 0.95", acc)
	}
}

func TestAccuracyBeatsColdMDCacheOnHomogeneousPages(t *testing.T) {
	// The paper's claim: COPR ~88% on workloads with page-level
	// similarity. Model: 90% of pages uniform, 10% mixed.
	p := New(testConfig())
	rng := rand.New(rand.NewSource(9))
	pageClass := make(map[uint64]int) // 0 uniform-comp, 1 uniform-incomp, 2 mixed
	for i := 0; i < 100000; i++ {
		page := uint64(rng.Intn(2048))
		cls, ok := pageClass[page]
		if !ok {
			r := rng.Float64()
			switch {
			case r < 0.45:
				cls = 0
			case r < 0.9:
				cls = 1
			default:
				cls = 2
			}
			pageClass[page] = cls
		}
		line := rng.Intn(LinesPerPage)
		var compressed bool
		switch cls {
		case 0:
			compressed = true
		case 1:
			compressed = false
		default:
			compressed = line%2 == 0
		}
		p.Update(addrOf(page, line), compressed)
	}
	if acc := p.Accuracy(); acc < 0.85 {
		t.Fatalf("accuracy = %.3f, want > 0.85", acc)
	}
}

func TestSourceString(t *testing.T) {
	for s, want := range map[Source]string{
		SourceLiPR: "lipr", SourcePaPR: "papr", SourceGI: "gi",
		SourceDefault: "default", Source(9): "Source(9)",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", uint8(s), s.String())
		}
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	for _, mut := range []func(*Config){
		func(c *Config) { c.MemorySize = 0 },
		func(c *Config) { c.GICounters = 0 },
		func(c *Config) { c.GICounters = 3 },
	} {
		cfg := testConfig()
		mut(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			New(cfg)
		}()
	}
}

func TestPredictDoesNotTrain(t *testing.T) {
	p := New(testConfig())
	p.Update(addrOf(5, 0), true)
	before := p.Stats.Overall.Total()
	for i := 0; i < 10; i++ {
		p.Predict(addrOf(5, 0))
	}
	if p.Stats.Overall.Total() != before {
		t.Fatal("Predict must not record accuracy observations")
	}
}
