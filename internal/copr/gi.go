package copr

// globalIndicator is the GI: eight two-bit saturating counters, each
// tracking the compressibility of 1/8th of the memory space (paper
// §IV-C3). A counter increments when an access to its region is
// compressible and resets to zero otherwise, so a high value means "recent
// accesses here were consistently compressible".
type globalIndicator struct {
	counters   []uint8
	regionSize uint64
}

func newGlobalIndicator(nCounters int, memorySize int64) *globalIndicator {
	region := uint64(memorySize) / uint64(nCounters)
	if region == 0 {
		region = 1
	}
	return &globalIndicator{
		counters:   make([]uint8, nCounters),
		regionSize: region,
	}
}

func (g *globalIndicator) index(addr uint64) int {
	i := int(addr / g.regionSize)
	if i >= len(g.counters) {
		i = len(g.counters) - 1
	}
	return i
}

// counterFor reports the current counter value for addr's region.
func (g *globalIndicator) counterFor(addr uint64) uint8 {
	return g.counters[g.index(addr)]
}

// predict reports the GI's guess for addr: compressible only when the
// region's counter is saturated. The guess backs a pre-read sub-rank
// decision whose false-"compressed" outcome costs a serialized corrective
// fetch, so the global fallback only fires at full confidence.
func (g *globalIndicator) predict(addr uint64) bool {
	return g.counterFor(addr) >= 3
}

// update trains the region counter: saturating increment on compressible,
// reset to zero on incompressible (paper: "otherwise it is reinitialized
// to zero").
func (g *globalIndicator) update(addr uint64, compressed bool) {
	i := g.index(addr)
	if compressed {
		if g.counters[i] < 3 {
			g.counters[i]++
		}
	} else {
		g.counters[i] = 0
	}
}
