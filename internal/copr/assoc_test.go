package copr

import (
	"testing"
	"testing/quick"
)

func TestAssocBasic(t *testing.T) {
	a := newAssoc[int](16, 4)
	if a.capacity() != 16 {
		t.Fatalf("capacity = %d, want 16", a.capacity())
	}
	a.insert(1, 100)
	a.insert(2, 200)
	if v, ok := a.lookup(1); !ok || v != 100 {
		t.Fatalf("lookup(1) = %d,%v", v, ok)
	}
	if _, ok := a.lookup(3); ok {
		t.Fatal("lookup(3) should miss")
	}
}

func TestAssocUpdateInPlace(t *testing.T) {
	a := newAssoc[int](16, 4)
	a.insert(5, 1)
	a.insert(5, 2)
	if v, _ := a.lookup(5); v != 2 {
		t.Fatalf("value = %d, want 2", v)
	}
	// Updating must not consume a second way.
	count := 0
	for _, e := range a.entries {
		if e.valid {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("valid entries = %d, want 1", count)
	}
}

func TestAssocLRUEviction(t *testing.T) {
	a := newAssoc[int](4, 4) // one set, 4 ways
	for k := uint64(0); k < 4; k++ {
		a.insert(k*4, int(k)) // same set (keys differ above set bits)
	}
	a.lookup(0) // refresh key 0
	a.insert(16, 99)
	if _, ok := a.lookup(0); !ok {
		t.Fatal("recently used key 0 was evicted")
	}
	if _, ok := a.lookup(4); ok {
		t.Fatal("LRU key 4 should have been evicted")
	}
}

func TestAssocSetsRoundedToPowerOfTwo(t *testing.T) {
	a := newAssoc[int](100, 4) // 25 sets -> rounds down to 16
	if a.sets != 16 {
		t.Fatalf("sets = %d, want 16", a.sets)
	}
	a2 := newAssoc[int](2, 4) // fewer entries than ways -> one set
	if a2.sets != 1 {
		t.Fatalf("sets = %d, want 1", a2.sets)
	}
}

func TestAssocPanicsOnZeroWays(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newAssoc[int](16, 0)
}

// Property: after inserting a key, it is always found with its value until
// at least `ways` other inserts hit the same set.
func TestAssocInsertThenLookupProperty(t *testing.T) {
	f := func(keys []uint64) bool {
		a := newAssoc[uint64](256, 8)
		for _, k := range keys {
			a.insert(k, k*2+1)
			if v, ok := a.lookup(k); !ok || v != k*2+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPaPRCapacityFromBudget(t *testing.T) {
	p := newPagePredictor(192<<10, 16)
	// 192KB * 8 / 19 bits ~= 82K entries; power-of-two set rounding can
	// halve that at worst.
	if c := p.capacity(); c < 40000 || c > 90000 {
		t.Fatalf("PaPR capacity = %d entries, want 40K..90K", c)
	}
}

func TestLiPRCapacityFromBudget(t *testing.T) {
	l := newLinePredictor(176<<10, 16)
	// 176KB * 8 / 81 bits ~= 17.8K entries.
	if c := l.capacity(); c < 8000 || c > 18000 {
		t.Fatalf("LiPR capacity = %d entries, want 8K..18K", c)
	}
}

func TestPaPRTrainSaturation(t *testing.T) {
	p := newPagePredictor(1<<10, 4)
	p.insert(1, 0)
	for i := 0; i < 10; i++ {
		p.train(1, true)
	}
	if c, _ := p.lookup(1); c != 3 {
		t.Fatalf("counter = %d, want saturation at 3", c)
	}
	for i := 0; i < 10; i++ {
		p.train(1, false)
	}
	if c, _ := p.lookup(1); c != 0 {
		t.Fatalf("counter = %d, want floor at 0", c)
	}
}

func TestPaPRTrainAbsentPageNoop(t *testing.T) {
	p := newPagePredictor(1<<10, 4)
	if got := p.train(99, true); got != 0 {
		t.Fatalf("train(absent) = %d, want 0", got)
	}
	if _, ok := p.lookup(99); ok {
		t.Fatal("train must not allocate")
	}
}

func TestPaPRInsertClampsCounter(t *testing.T) {
	p := newPagePredictor(1<<10, 4)
	p.insert(1, 200)
	if c, _ := p.lookup(1); c != 3 {
		t.Fatalf("counter = %d, want clamp to 3", c)
	}
}

func TestGIBoundaryAddress(t *testing.T) {
	g := newGlobalIndicator(8, 1<<20)
	// Addresses at or past the end of memory map to the last counter
	// rather than out of range.
	g.update(1<<20+5, true)
	if g.index(1<<20+5) != 7 {
		t.Fatalf("index = %d, want 7", g.index(1<<20+5))
	}
}
