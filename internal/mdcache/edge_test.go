package mdcache

import "testing"

// keyForSet returns the n-th distinct key mapping to set s of c.
func keyForSet(c *Cache, s int, n int) uint64 {
	return uint64(s) + uint64(n)*uint64(c.Sets())
}

// TestSetSaturationAllPolicies drives one set far past its associativity
// under every policy: the set must stay exactly full (never overflow its
// ways, never evict to emptiness), every miss must install, and the RRIP
// aging loop must always terminate with a victim.
func TestSetSaturationAllPolicies(t *testing.T) {
	for _, pol := range []Policy{LRU, DRRIP, SHiP} {
		t.Run(pol.String(), func(t *testing.T) {
			c := New(64*LineSize, 4, pol) // 16 sets, 4 ways
			const rounds = 64
			for n := 0; n < rounds; n++ {
				c.Access(keyForSet(c, 3, n), n%2 == 0)
			}
			resident := 0
			for n := 0; n < rounds; n++ {
				if c.Contains(keyForSet(c, 3, n)) {
					resident++
				}
			}
			if resident != c.Ways() {
				t.Fatalf("saturated set holds %d lines, want exactly %d", resident, c.Ways())
			}
			if got := c.Stats.Installs.Value(); got != rounds {
				t.Fatalf("installs = %d, want %d (every distinct key misses)", got, rounds)
			}
			// The most recent insertions must be the survivors under LRU.
			if pol == LRU {
				for n := rounds - c.Ways(); n < rounds; n++ {
					if !c.Contains(keyForSet(c, 3, n)) {
						t.Fatalf("LRU evicted a most-recent line (n=%d)", n)
					}
				}
			}
		})
	}
}

// TestDirtyEvictionAccounting checks the writeback ledger under
// saturation: every dirty line displaced from a full set must surface as
// exactly one EvictedDirty result carrying the right victim key, and the
// DirtyEvicts counter must agree with the sum of results.
func TestDirtyEvictionAccounting(t *testing.T) {
	for _, pol := range []Policy{LRU, DRRIP, SHiP} {
		t.Run(pol.String(), func(t *testing.T) {
			c := New(16*LineSize, 2, pol) // 8 sets, 2 ways
			dirty := map[uint64]bool{}
			var writebacks uint64
			const rounds = 40
			for n := 0; n < rounds; n++ {
				key := keyForSet(c, 5, n)
				write := n%3 != 2 // mixed dirty/clean installs
				res := c.Access(key, write)
				if res.Hit {
					t.Fatalf("key %d unexpectedly hit", key)
				}
				if res.EvictedDirty {
					writebacks++
					if !dirty[res.VictimKey] {
						t.Fatalf("writeback for key %d which was never dirty", res.VictimKey)
					}
					delete(dirty, res.VictimKey)
				}
				if write {
					dirty[key] = true
				}
			}
			if got := c.Stats.DirtyEvicts.Value(); got != writebacks {
				t.Fatalf("DirtyEvicts counter %d != observed writebacks %d", got, writebacks)
			}
			// Conservation: every dirty line is either still resident or
			// was written back.
			for key := range dirty {
				if !c.Contains(key) {
					t.Fatalf("dirty key %d vanished without a writeback", key)
				}
			}
		})
	}
}

// TestWriteHitDirtiesExistingLine ensures a clean install followed by a
// write hit still produces a writeback on eviction (dirtiness must not be
// an install-time-only property).
func TestWriteHitDirtiesExistingLine(t *testing.T) {
	c := New(2*LineSize, 2, LRU) // 1 set, 2 ways
	c.Access(0, false)           // clean install
	c.Access(0, true)            // write hit dirties it
	c.Access(1, false)
	// Next install evicts key 0 (LRU): must write back.
	res := c.Access(2, false)
	if !res.EvictedDirty || res.VictimKey != 0 {
		t.Fatalf("eviction of write-hit line: got %+v, want dirty victim 0", res)
	}
}

// TestSHiPSignatureAliasing exercises the signature history table when
// two disjoint key streams alias to the same SHCT entry semantics: a
// stream whose lines die without reuse drags its signatures' counters to
// zero, so later installs from those signatures insert at distant RRPV
// and are evicted before lines with reuse history. The test asserts the
// observable consequence: under a mixed stream, the reused working set
// keeps hitting while the dead stream never pollutes it out of the cache.
func TestSHiPSignatureAliasing(t *testing.T) {
	c := New(32*LineSize, 4, SHiP) // 8 sets, 4 ways

	// Teach SHCT: a small working set with strong reuse...
	hot := []uint64{keyForSet(c, 2, 0), keyForSet(c, 2, 1), keyForSet(c, 2, 2)}
	for round := 0; round < 16; round++ {
		for _, k := range hot {
			c.Access(k, false)
		}
	}
	// ...and a long dead stream through the same set, never reused.
	for n := 10; n < 200; n++ {
		c.Access(keyForSet(c, 2, n), false)
		// Hot set keeps its reuse pattern alive between dead installs.
		for _, k := range hot {
			c.Access(k, false)
		}
	}
	hits, accesses := c.Stats.Hits.Value(), c.Stats.Accesses.Value()
	if hits == 0 || accesses == 0 {
		t.Fatal("test produced no traffic")
	}
	// Every hot access after warmup should hit: the dead stream inserts
	// at distant RRPV and is evicted first.
	for _, k := range hot {
		if !c.Contains(k) {
			t.Fatalf("hot key %d evicted by dead stream", k)
		}
	}
	if rate := c.Stats.HitRate(); rate < 0.70 {
		t.Fatalf("hit rate %.2f: dead stream polluted the reused working set", rate)
	}
}

// TestSHiPDeadStreamDemotesSignature checks the SHCT learning mechanism
// directly: after a no-reuse stream, new installs from the same
// signatures must be inserted at rrpvMax (predicted dead) and therefore
// be the first victims, protecting a fresh SRRIP-inserted line.
func TestSHiPDeadStreamDemotesSignature(t *testing.T) {
	c := New(8*LineSize, 4, SHiP) // 2 sets, 4 ways
	set := 1
	// Run enough no-reuse installs that every touched signature's counter
	// decays to zero (counters start at 1; one dead eviction suffices).
	for n := 0; n < 256; n++ {
		c.Access(keyForSet(c, set, n), false)
	}
	// The set now holds 4 predicted-dead lines. A new install from a
	// signature with default history must stay resident through the next
	// few dead installs: dead-predicted lines (rrpv 3) are victimized
	// before it (rrpv 2).
	probe := keyForSet(c, set, 1000)
	c.Access(probe, false)
	c.Access(probe, false) // reuse promotes it to rrpv 0
	for n := 300; n < 303; n++ {
		c.Access(keyForSet(c, set, n), false)
	}
	if !c.Contains(probe) {
		t.Fatal("reused line evicted before predicted-dead lines")
	}
}

// TestRRIPAgingTerminates saturates a set with maximally-promoted lines
// (rrpv 0 everywhere) and forces a victim choice: the aging loop must
// terminate and pick a way rather than spin.
func TestRRIPAgingTerminates(t *testing.T) {
	for _, pol := range []Policy{DRRIP, SHiP} {
		t.Run(pol.String(), func(t *testing.T) {
			c := New(4*LineSize, 4, pol) // 1 set, 4 ways
			for n := 0; n < 4; n++ {
				k := keyForSet(c, 0, n)
				c.Access(k, false)
				c.Access(k, false) // hit: rrpv -> 0
			}
			res := c.Access(keyForSet(c, 0, 99), false) // must age 0 -> 3 and evict
			if res.Hit {
				t.Fatal("install reported as hit")
			}
			resident := 0
			for n := 0; n < 100; n++ {
				if c.Contains(keyForSet(c, 0, n)) {
					resident++
				}
			}
			if resident != 4 {
				t.Fatalf("set holds %d lines after forced aging, want 4", resident)
			}
		})
	}
}

// TestDuelingLeaderSetsCoverBothPolicies sanity-checks the DRRIP
// set-dueling plumbing on a cache large enough to have both leader
// kinds: misses in leader sets move PSEL in opposite directions.
func TestDuelingLeaderSetsCoverBothPolicies(t *testing.T) {
	c := New(64*32*LineSize, 4, DRRIP) // 512 sets: 16 SRRIP + 16 BRRIP leaders
	var srrip, brrip, followers int
	for s := 0; s < c.Sets(); s++ {
		switch c.leaderKind(uint64(s)) {
		case 0:
			srrip++
		case 1:
			brrip++
		default:
			followers++
		}
	}
	if srrip == 0 || brrip == 0 || followers == 0 {
		t.Fatalf("leader distribution srrip=%d brrip=%d followers=%d: dueling cannot work", srrip, brrip, followers)
	}

	before := c.psel
	c.Access(uint64(0), false) // SRRIP leader set 0 miss: psel++
	if c.psel != before+1 {
		t.Fatalf("SRRIP leader miss moved psel %d -> %d, want +1", before, c.psel)
	}
	before = c.psel
	c.Access(uint64(duelPeriod/2), false) // BRRIP leader miss: psel--
	if c.psel != before-1 {
		t.Fatalf("BRRIP leader miss moved psel %d -> %d, want -1", before, c.psel)
	}
}

// TestTinyCacheDegenerateGeometry covers the sets-rounding edge: a cache
// smaller than one way's worth of lines still works as a 1-set cache.
func TestTinyCacheDegenerateGeometry(t *testing.T) {
	for _, pol := range []Policy{LRU, DRRIP, SHiP} {
		c := New(LineSize, 8, pol) // fewer lines than ways
		if c.Sets() != 1 {
			t.Fatalf("%v: sets = %d, want 1", pol, c.Sets())
		}
		for n := uint64(0); n < 20; n++ {
			c.Access(n, true)
		}
		if c.Stats.Accesses.Value() != 20 {
			t.Fatalf("%v: lost accesses", pol)
		}
	}
}
