package mdcache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{"lru": LRU, "drrip": DRRIP, "ship": SHiP} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePolicy("fifo"); err == nil {
		t.Error("expected error for unknown policy")
	}
}

func TestPolicyString(t *testing.T) {
	for p, want := range map[Policy]string{LRU: "lru", DRRIP: "drrip", SHiP: "ship", Policy(9): "Policy(9)"} {
		if p.String() != want {
			t.Errorf("%d.String() = %q", uint8(p), p.String())
		}
	}
}

func TestCapacityGeometry(t *testing.T) {
	c := New(1<<20, 16, LRU)
	if c.CapacityLines() != 1<<20/64 {
		t.Fatalf("capacity = %d lines, want %d", c.CapacityLines(), 1<<20/64)
	}
	if c.Sets() != 1024 || c.Ways() != 16 {
		t.Fatalf("geometry = %dx%d, want 1024x16", c.Sets(), c.Ways())
	}
}

func TestHitAfterInstall(t *testing.T) {
	c := New(64<<10, 16, LRU)
	if got := c.Access(42, false); got.Hit {
		t.Fatal("first access should miss")
	}
	if got := c.Access(42, false); !got.Hit {
		t.Fatal("second access should hit")
	}
	if c.Stats.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", c.Stats.HitRate())
	}
}

func TestDirtyEvictionGeneratesWriteback(t *testing.T) {
	c := New(64*4, 4, LRU) // one set, 4 ways
	c.Access(0, true)      // dirty
	for k := uint64(1); k < 4; k++ {
		c.Access(k, false)
	}
	res := c.Access(4, false) // evicts key 0 (LRU, dirty)
	if !res.EvictedDirty {
		t.Fatal("expected dirty eviction")
	}
	if c.Stats.DirtyEvicts.Value() != 1 {
		t.Fatal("dirty evict counter not charged")
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	c := New(64*2, 2, LRU)
	c.Access(0, false)
	c.Access(1, false)
	res := c.Access(2, false)
	if res.EvictedDirty {
		t.Fatal("clean eviction should not write back")
	}
}

func TestWriteHitMarksDirty(t *testing.T) {
	c := New(64*2, 2, LRU)
	c.Access(0, false) // clean install
	c.Access(0, true)  // write hit -> dirty
	c.Access(1, false)
	if res := c.Access(2, false); !res.EvictedDirty {
		t.Fatal("write-hit line should evict dirty")
	}
}

func TestLRUVictimSelection(t *testing.T) {
	c := New(64*4, 4, LRU)
	for k := uint64(0); k < 4; k++ {
		c.Access(k, false)
	}
	c.Access(0, false) // refresh 0
	c.Access(4, false) // evicts 1
	if !c.Contains(0) || c.Contains(1) {
		t.Fatal("LRU evicted the wrong line")
	}
}

func TestContainsDoesNotPerturb(t *testing.T) {
	c := New(64*2, 2, LRU)
	c.Access(0, false)
	c.Access(1, false)
	for i := 0; i < 10; i++ {
		c.Contains(0) // must not refresh LRU position
	}
	c.Access(2, false) // should still evict 0 (oldest by Access)
	if c.Contains(0) {
		t.Fatal("Contains perturbed replacement state")
	}
}

func TestAllPoliciesBasicCaching(t *testing.T) {
	for _, p := range []Policy{LRU, DRRIP, SHiP} {
		c := New(16<<10, 16, p)
		// A small working set must be fully cached under any policy.
		for pass := 0; pass < 4; pass++ {
			for k := uint64(0); k < 64; k++ {
				c.Access(k, false)
			}
		}
		hr := c.Stats.HitRate()
		if hr < 0.70 {
			t.Errorf("%v: hit rate %v on cache-resident set, want > 0.70", p, hr)
		}
	}
}

func TestRRIPPoliciesSurviveScan(t *testing.T) {
	// A classic RRIP advantage: a resident working set mixed with a
	// one-shot scan. DRRIP/SHiP should protect the working set at least
	// as well as random-ish insertion; this is a smoke check that the
	// policies are functional, not a performance proof.
	for _, p := range []Policy{DRRIP, SHiP} {
		c := New(8<<10, 8, p) // 128 lines
		rng := rand.New(rand.NewSource(4))
		hits, total := 0, 0
		for i := 0; i < 20000; i++ {
			var key uint64
			if rng.Intn(2) == 0 {
				key = uint64(rng.Intn(64)) // working set
			} else {
				key = 1000 + uint64(i) // scan, never reused
			}
			res := c.Access(key, false)
			if key < 64 {
				total++
				if res.Hit {
					hits++
				}
			}
		}
		if total == 0 || float64(hits)/float64(total) < 0.5 {
			t.Errorf("%v: working-set hit rate %.2f under scan, want > 0.5", p, float64(hits)/float64(total))
		}
	}
}

func TestInstallsEqualMisses(t *testing.T) {
	c := New(4<<10, 4, LRU)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		c.Access(uint64(rng.Intn(500)), rng.Intn(4) == 0)
	}
	misses := c.Stats.Accesses.Value() - c.Stats.Hits.Value()
	if c.Stats.Installs.Value() != misses {
		t.Fatalf("installs = %d, misses = %d", c.Stats.Installs.Value(), misses)
	}
	if c.Stats.DirtyEvicts.Value() > c.Stats.Installs.Value() {
		t.Fatal("more dirty evictions than installs")
	}
}

func TestNewPanicsOnZeroWays(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1024, 0, LRU)
}

// Property: immediately after any access, the key is cached; hit rate is
// within [0,1]; and a second access to the same key hits, for every policy.
func TestAccessThenHitProperty(t *testing.T) {
	f := func(keys []uint64, policyByte uint8) bool {
		p := Policy(policyByte % 3)
		c := New(32<<10, 8, p)
		for _, k := range keys {
			c.Access(k, false)
			if !c.Contains(k) {
				return false
			}
			if res := c.Access(k, false); !res.Hit {
				return false
			}
		}
		hr := c.Stats.HitRate()
		return hr >= 0 && hr <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPaperHitRateBallpark drives the cache with a page-local metadata
// stream like the paper's workloads produce and checks the 1MB cache
// reaches a high hit rate (the paper reports 77% on real traces).
func TestPaperHitRateBallpark(t *testing.T) {
	c := New(1<<20, 16, LRU)
	rng := rand.New(rand.NewSource(10))
	// Metadata keys cover rows; reuse distance modest.
	hot := make([]uint64, 4096)
	for i := range hot {
		hot[i] = uint64(i)
	}
	for i := 0; i < 200000; i++ {
		var key uint64
		if rng.Float64() < 0.85 {
			key = hot[rng.Intn(len(hot))]
		} else {
			key = uint64(100000 + rng.Intn(1000000))
		}
		c.Access(key, false)
	}
	if hr := c.Stats.HitRate(); hr < 0.7 || hr > 0.95 {
		t.Fatalf("hit rate = %.3f, want 0.70..0.95", hr)
	}
}
