// Package mdcache implements the Metadata-Cache that prior compressed-
// memory proposals keep inside the memory controller (paper §II-G, §IV-C1)
// and that Attaché replaces with COPR. It is a set-associative cache of
// 64-byte metadata lines with selectable replacement policy: LRU (the
// paper's baseline), DRRIP, and SHiP (the Fig. 16 sensitivity study).
//
// The cache only tracks presence and dirtiness — metadata content lives
// with the simulator's memory model. A miss means the controller must
// issue an install read to the metadata region; evicting a dirty victim
// adds a writeback. Those two request streams are exactly the bandwidth
// overhead Attaché eliminates (Fig. 15).
package mdcache

import (
	"fmt"

	"attache/internal/stats"
)

// LineSize is the size of one cached metadata line in bytes.
const LineSize = 64

// Policy selects the replacement algorithm.
type Policy uint8

// Supported replacement policies (Fig. 16).
const (
	LRU Policy = iota
	DRRIP
	SHiP
)

// ParsePolicy converts a configuration string into a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "lru":
		return LRU, nil
	case "drrip":
		return DRRIP, nil
	case "ship":
		return SHiP, nil
	default:
		return 0, fmt.Errorf("mdcache: unknown policy %q (want lru, drrip, or ship)", s)
	}
}

// String names the policy.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case DRRIP:
		return "drrip"
	case SHiP:
		return "ship"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// Result describes the consequences of one cache access for the memory
// controller's request stream.
type Result struct {
	Hit bool
	// EvictedDirty reports that installing the new line displaced a dirty
	// victim, requiring a metadata writeback request to VictimKey's home.
	EvictedDirty bool
	// VictimKey is the key of the displaced dirty line (valid only when
	// EvictedDirty is set).
	VictimKey uint64
}

// Stats counts cache activity.
type Stats struct {
	Accesses    stats.Counter
	Hits        stats.Counter
	Installs    stats.Counter // == misses: each needs a metadata read
	DirtyEvicts stats.Counter // each needs a metadata write
}

// HitRate reports hits/accesses.
func (s *Stats) HitRate() float64 {
	if s.Accesses.Value() == 0 {
		return 0
	}
	return float64(s.Hits.Value()) / float64(s.Accesses.Value())
}

type line struct {
	valid   bool
	tag     uint64
	dirty   bool
	used    uint64 // LRU timestamp
	rrpv    uint8  // DRRIP / SHiP re-reference prediction value
	outcome bool   // SHiP: re-referenced since insertion
	sig     uint16 // SHiP: signature that inserted the line
}

// Cache is the metadata cache.
type Cache struct {
	policy Policy
	sets   int
	ways   int
	lines  []line
	tick   uint64

	// DRRIP set-dueling state.
	psel     int
	brripCtr uint32

	// SHiP signature history counter table.
	shct []uint8

	Stats Stats
}

const (
	rrpvMax    = 3
	pselMax    = 1023
	shctBits   = 14
	duelPeriod = 32 // every 32nd set is a leader set
)

// New builds a cache of the given total size. Sets are rounded down to a
// power of two.
func New(sizeBytes, ways int, policy Policy) *Cache {
	if ways <= 0 {
		panic("mdcache: ways must be positive")
	}
	nLines := sizeBytes / LineSize
	sets := nLines / ways
	if sets < 1 {
		sets = 1
	}
	for sets&(sets-1) != 0 {
		sets &= sets - 1
	}
	c := &Cache{
		policy: policy,
		sets:   sets,
		ways:   ways,
		lines:  make([]line, sets*ways),
		psel:   pselMax / 2,
	}
	if policy == SHiP {
		c.shct = make([]uint8, 1<<shctBits)
		for i := range c.shct {
			c.shct[i] = 1
		}
	}
	return c
}

// Policy reports the configured replacement policy.
func (c *Cache) Policy() Policy { return c.policy }

// Sets reports the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways reports the associativity.
func (c *Cache) Ways() int { return c.ways }

// CapacityLines reports the number of metadata lines the cache holds.
func (c *Cache) CapacityLines() int { return c.sets * c.ways }

func (c *Cache) setIndex(key uint64) int { return int(key) & (c.sets - 1) }

func (c *Cache) set(key uint64) []line {
	s := c.setIndex(key)
	return c.lines[s*c.ways : (s+1)*c.ways]
}

func (c *Cache) signature(key uint64) uint16 {
	// Address-based signature (the SHiP paper uses the requesting PC,
	// which a metadata stream does not have; the memory-region signature
	// is the standard substitution).
	h := key * 0x9E3779B97F4A7C15
	return uint16(h>>32) & (1<<shctBits - 1)
}

// Access looks up the metadata line for key, installing it on a miss.
// write marks the metadata as modified (the line becomes dirty).
func (c *Cache) Access(key uint64, write bool) Result {
	c.Stats.Accesses.Inc()
	set := c.set(key)
	for i := range set {
		if set[i].valid && set[i].tag == key {
			c.Stats.Hits.Inc()
			c.onHit(key, &set[i])
			if write {
				set[i].dirty = true
			}
			return Result{Hit: true}
		}
	}
	// Miss: install, possibly evicting a dirty victim.
	c.Stats.Installs.Inc()
	victim := c.victim(key, set)
	res := Result{}
	if set[victim].valid {
		if c.policy == SHiP && !set[victim].outcome {
			// Dead-on-eviction: the signature that inserted it gets
			// demoted.
			if c.shct[set[victim].sig] > 0 {
				c.shct[set[victim].sig]--
			}
		}
		if set[victim].dirty {
			res.EvictedDirty = true
			res.VictimKey = set[victim].tag
			c.Stats.DirtyEvicts.Inc()
		}
	}
	c.tick++
	set[victim] = line{
		valid: true,
		tag:   key,
		dirty: write,
		used:  c.tick,
		rrpv:  c.insertRRPV(key),
		sig:   c.signature(key),
	}
	c.updateDueling(key)
	return res
}

// Contains reports whether key is cached, without touching replacement
// state.
func (c *Cache) Contains(key uint64) bool {
	for _, l := range c.set(key) {
		if l.valid && l.tag == key {
			return true
		}
	}
	return false
}

func (c *Cache) onHit(key uint64, l *line) {
	c.tick++
	l.used = c.tick
	switch c.policy {
	case DRRIP:
		l.rrpv = 0
	case SHiP:
		l.rrpv = 0
		if !l.outcome {
			l.outcome = true
			if c.shct[l.sig] < 7 {
				c.shct[l.sig]++
			}
		}
	}
}

// victim picks the way to replace in set.
func (c *Cache) victim(key uint64, set []line) int {
	for i := range set {
		if !set[i].valid {
			return i
		}
	}
	switch c.policy {
	case LRU:
		v := 0
		for i := range set {
			if set[i].used < set[v].used {
				v = i
			}
		}
		return v
	default: // DRRIP and SHiP share RRIP victim selection
		for {
			for i := range set {
				if set[i].rrpv == rrpvMax {
					return i
				}
			}
			for i := range set {
				set[i].rrpv++
			}
		}
	}
}

// leaderKind classifies a set for DRRIP set-dueling: 0 = SRRIP leader,
// 1 = BRRIP leader, 2 = follower.
func (c *Cache) leaderKind(key uint64) int {
	s := c.setIndex(key)
	switch s % duelPeriod {
	case 0:
		return 0
	case duelPeriod / 2:
		return 1
	default:
		return 2
	}
}

// insertRRPV chooses the insertion RRPV for a new line.
func (c *Cache) insertRRPV(key uint64) uint8 {
	switch c.policy {
	case DRRIP:
		useBRRIP := false
		switch c.leaderKind(key) {
		case 0:
			useBRRIP = false
		case 1:
			useBRRIP = true
		default:
			useBRRIP = c.psel > pselMax/2
		}
		if useBRRIP {
			// BRRIP: mostly distant (rrpvMax), occasionally long.
			c.brripCtr++
			if c.brripCtr%32 == 0 {
				return rrpvMax - 1
			}
			return rrpvMax
		}
		return rrpvMax - 1 // SRRIP insertion
	case SHiP:
		if c.shct[c.signature(key)] == 0 {
			return rrpvMax // predicted dead: distant re-reference
		}
		return rrpvMax - 1
	default:
		return 0
	}
}

// updateDueling charges a miss in a leader set against its policy.
func (c *Cache) updateDueling(key uint64) {
	if c.policy != DRRIP {
		return
	}
	switch c.leaderKind(key) {
	case 0: // SRRIP leader missed: nudge toward BRRIP
		if c.psel < pselMax {
			c.psel++
		}
	case 1: // BRRIP leader missed: nudge toward SRRIP
		if c.psel > 0 {
			c.psel--
		}
	}
}
