package cluster

import (
	"testing"
	"time"
)

// fakeClock is a hand-advanced admission clock.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestAdmitterBurstAndRefill(t *testing.T) {
	clk := newFakeClock()
	a := newAdmitter(map[string]Quota{"hog": {Rate: 10}}, Quota{}, clk.now)

	// Burst defaults to Rate: 10 ops fit at once, the 11th does not.
	if !a.admit("hog", 10) {
		t.Fatal("full burst refused")
	}
	if a.admit("hog", 1) {
		t.Fatal("over-burst op admitted")
	}
	// Half a second refills half the bucket.
	clk.advance(500 * time.Millisecond)
	if !a.admit("hog", 5) {
		t.Fatal("refilled tokens refused")
	}
	if a.admit("hog", 1) {
		t.Fatal("empty bucket admitted")
	}
	// Refill is capped at capacity, not unbounded.
	clk.advance(time.Hour)
	if !a.admit("hog", 10) || a.admit("hog", 1) {
		t.Fatal("refill not capped at burst capacity")
	}
}

func TestAdmitterAllOrNothing(t *testing.T) {
	clk := newFakeClock()
	a := newAdmitter(map[string]Quota{"hog": {Rate: 10, Burst: 3}}, Quota{}, clk.now)

	// A 4-op batch against 3 tokens is refused whole — and spends nothing.
	if a.admit("hog", 4) {
		t.Fatal("batch larger than bucket admitted")
	}
	if !a.admit("hog", 3) {
		t.Fatal("refused batch consumed tokens")
	}
}

func TestAdmitterDefaultQuotaIsPerTenant(t *testing.T) {
	clk := newFakeClock()
	a := newAdmitter(nil, Quota{Rate: 5}, clk.now)

	// Two unnamed tenants each get their own 5-op bucket, not a shared one.
	if !a.admit("a", 5) || !a.admit("b", 5) {
		t.Fatal("default quota behaved like a shared pool")
	}
	if a.admit("a", 1) || a.admit("b", 1) {
		t.Fatal("per-tenant default bucket did not empty")
	}
}

func TestAdmitterUnlimited(t *testing.T) {
	a := newAdmitter(map[string]Quota{"vip": {}}, Quota{}, newFakeClock().now)
	for i := 0; i < 3; i++ {
		if !a.admit("vip", 1_000_000) {
			t.Fatal("zero quota should be unlimited")
		}
	}
	// No quotas at all: everyone is unlimited.
	if !a.admit("anyone", 1_000_000) {
		t.Fatal("zero default quota should be unlimited")
	}
}
