package cluster

import (
	"sync"
	"time"
)

// Quota is a per-tenant token-bucket admission limit. Rate is the
// sustained ops/sec refill; Burst is the bucket capacity (defaults to
// Rate when zero, so a tenant can always spend one second of quota at
// once). A zero-value Quota means unlimited.
type Quota struct {
	Rate  float64 // ops per second; 0 = unlimited
	Burst float64 // bucket capacity in ops; 0 = Rate
}

// unlimited reports whether this quota admits everything.
func (q Quota) unlimited() bool { return q.Rate <= 0 }

func (q Quota) capacity() float64 {
	if q.Burst > 0 {
		return q.Burst
	}
	return q.Rate
}

// bucket is one tenant's token bucket. Guarded by admitter.mu.
type bucket struct {
	quota  Quota
	tokens float64
	last   time.Time
}

// admitter applies per-tenant token-bucket admission control. Tenants
// with an explicit quota use it; everyone else shares the default quota
// shape (each unknown tenant gets its OWN bucket of that shape — the
// default is a per-tenant ceiling, not a shared pool). The clock is
// injectable so tests drive time deterministically.
type admitter struct {
	mu       sync.Mutex
	quotas   map[string]Quota
	fallback Quota
	buckets  map[string]*bucket
	now      func() time.Time
}

func newAdmitter(quotas map[string]Quota, fallback Quota, now func() time.Time) *admitter {
	if now == nil {
		now = time.Now
	}
	q := make(map[string]Quota, len(quotas))
	for k, v := range quotas {
		q[k] = v
	}
	return &admitter{
		quotas:   q,
		fallback: fallback,
		buckets:  make(map[string]*bucket),
		now:      now,
	}
}

// admit asks to spend n ops of tenant's quota. It is all-or-nothing: a
// batch either fits in the bucket or is shed whole (partial admission
// would break in-batch read-your-write ordering). Unlimited tenants
// never touch a bucket.
func (a *admitter) admit(tenant string, n int) bool {
	q, ok := a.quotas[tenant]
	if !ok {
		q = a.fallback
	}
	if q.unlimited() {
		return true
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.buckets[tenant]
	t := a.now()
	if b == nil {
		b = &bucket{quota: q, tokens: q.capacity(), last: t}
		a.buckets[tenant] = b
	}
	if dt := t.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.quota.Rate
		if cap := b.quota.capacity(); b.tokens > cap {
			b.tokens = cap
		}
		b.last = t
	}
	if b.tokens < float64(n) {
		return false
	}
	b.tokens -= float64(n)
	return true
}
