package cluster

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"attache/internal/core"
	"attache/internal/obs"
	"attache/internal/shard"
	"attache/internal/workload"
)

func testLine(v uint64) []byte {
	line := make([]byte, core.LineSize)
	for i := 0; i < 8; i++ {
		line[i] = byte(v >> (8 * i))
	}
	return line
}

func TestInstanceSeedDerivation(t *testing.T) {
	const base = int64(42)
	if InstanceSeed(base, 0) != base {
		t.Fatalf("instance 0 seed = %d, want the base %d unchanged", InstanceSeed(base, 0), base)
	}
	seen := map[int64]int{}
	for i := 0; i < 16; i++ {
		s := InstanceSeed(base, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("instances %d and %d share seed %d", prev, i, s)
		}
		seen[s] = i
	}
}

// TestPassthroughBitIdentity is the acceptance gate for cluster mode: a
// 1-instance passthrough cluster must be indistinguishable from calling
// the engine directly — same per-op results (including seeded injected
// faults) and a byte-identical stats snapshot — under a chaos-flavored
// mixed workload.
func TestPassthroughBitIdentity(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Seed = 7
	cfg := shard.Config{
		Shards: 2,
		Faults: shard.FaultPlan{Seed: 99, ErrP: 0.05},
	}

	eng, err := shard.New(opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	cl, err := New(opts, cfg, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.RouterName() != Passthrough {
		t.Fatalf("1-instance default router = %s, want passthrough", cl.RouterName())
	}

	// The same seeded op sequence, submitted sequentially to both, must
	// produce identical outcomes op for op.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 400; i++ {
		var ops []shard.Op
		switch rng.Intn(3) {
		case 0:
			ops = []shard.Op{{Write: true, Addr: uint64(rng.Intn(256)), Data: testLine(uint64(i))}}
		case 1:
			ops = []shard.Op{{Addr: uint64(rng.Intn(256))}}
		default:
			for j := 0; j < 8; j++ {
				addr := uint64(rng.Intn(256))
				if j%2 == 0 {
					ops = append(ops, shard.Op{Write: true, Addr: addr, Data: testLine(uint64(i*8 + j))})
				} else {
					ops = append(ops, shard.Op{Addr: addr})
				}
			}
		}
		want, werr := eng.Do(cloneOps(ops))
		got, gerr := cl.Do(cloneOps(ops))
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("batch %d: call errors diverged: engine %v, cluster %v", i, werr, gerr)
		}
		for k := range want {
			if !bytes.Equal(want[k].Data, got[k].Data) {
				t.Fatalf("batch %d op %d: data diverged", i, k)
			}
			if (want[k].Err == nil) != (got[k].Err == nil) {
				t.Fatalf("batch %d op %d: errors diverged: engine %v, cluster %v", i, k, want[k].Err, got[k].Err)
			}
			if want[k].Err != nil && want[k].Err.Error() != got[k].Err.Error() {
				t.Fatalf("batch %d op %d: error text diverged: %q vs %q", i, k, want[k].Err, got[k].Err)
			}
		}
	}

	if es, cs := eng.StatsSnapshot(), cl.EngineSnapshot(); !reflect.DeepEqual(es, cs) {
		t.Fatalf("snapshots diverged:\nengine  %+v\ncluster %+v", es, cs)
	}
}

func cloneOps(ops []shard.Op) []shard.Op {
	out := make([]shard.Op, len(ops))
	copy(out, ops)
	return out
}

// TestQuotaShedsOnlyOverQuota pins admission semantics end to end: only
// the over-quota tenant is refused (whole batches, ErrOverloaded), the
// unlimited tenant rides through untouched, the per-tenant books
// conserve, and the Jain index reflects the resulting skew exactly.
func TestQuotaShedsOnlyOverQuota(t *testing.T) {
	clk := newFakeClock()
	cl, err := New(core.DefaultOptions(), shard.Config{Shards: 2}, 1, Config{
		Quotas: map[string]Quota{"hog": {Rate: 10, Burst: 10}},
		Now:    clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	hog := obs.ContextWithTenant(t.Context(), "hog")
	polite := obs.ContextWithTenant(t.Context(), "polite")

	var hogOK, hogShed int
	for i := 0; i < 15; i++ {
		err := cl.WriteCtx(hog, uint64(i), testLine(uint64(i)))
		switch {
		case err == nil:
			hogOK++
		case errors.Is(err, core.ErrOverloaded):
			hogShed++
		default:
			t.Fatalf("hog write %d: %v", i, err)
		}
	}
	if hogOK != 10 || hogShed != 5 {
		t.Fatalf("hog: %d ok / %d shed, want 10/5", hogOK, hogShed)
	}
	for i := 0; i < 20; i++ {
		if err := cl.WriteCtx(polite, uint64(1000+i), testLine(uint64(i))); err != nil {
			t.Fatalf("unquotaed tenant shed: write %d: %v", i, err)
		}
	}

	tenants := cl.TenantSnapshots()
	if len(tenants) != 2 || tenants[0].Tenant != "hog" || tenants[1].Tenant != "polite" {
		t.Fatalf("tenants = %+v", tenants)
	}
	if h := tenants[0]; h.Ops != 15 || h.OK != 10 || h.ShedQuota != 5 || h.ShedBackend != 0 {
		t.Fatalf("hog book = %+v, want 15 ops / 10 ok / 5 quota-shed", h)
	}
	if p := tenants[1]; p.Ops != 20 || p.OK != 20 || p.ShedQuota != 0 {
		t.Fatalf("polite book = %+v, want 20/20 clean", p)
	}
	// Per-tenant conservation: every op is ok, quota-shed, backend-shed,
	// or errored.
	for _, tn := range tenants {
		if tn.Ops != tn.OK+tn.ShedQuota+tn.ShedBackend+tn.Errors {
			t.Fatalf("tenant %s books do not conserve: %+v", tn.Tenant, tn)
		}
	}
	// Only admitted ops reached the engine.
	if w := cl.EngineSnapshot().Total.Writes; w != 30 {
		t.Fatalf("engine writes = %d, want 30 admitted", w)
	}
	// Jain over ok throughput [10, 20]: (30)²/(2·(100+400)) = 0.9.
	if j := cl.JainFairness(); math.Abs(j-0.9) > 1e-9 {
		t.Fatalf("Jain index = %v, want 0.9", j)
	}

	// Refill restores the hog's service without touching anyone else.
	clk.advance(time.Second)
	for i := 0; i < 10; i++ {
		if err := cl.WriteCtx(hog, uint64(i), testLine(uint64(i))); err != nil {
			t.Fatalf("hog post-refill write %d: %v", i, err)
		}
	}
}

// pinnedRouter always routes to one instance — a WhatIf foil.
type pinnedRouter struct{ to int }

func (p pinnedRouter) Name() string { return "pinned" }
func (p pinnedRouter) Route(ops []shard.Op, loads []int64, assign []int) {
	for i := range assign {
		assign[i] = p.to
	}
}

// TestWhatIfCounterfactual pins the decision log and its replay: an
// identical policy reports zero divergence, a policy that must move
// traffic reports exactly the ops it moves.
func TestWhatIfCounterfactual(t *testing.T) {
	cl, err := New(core.DefaultOptions(), shard.Config{Shards: 1}, 2, Config{Router: Affinity})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	rng := rand.New(rand.NewSource(3))
	totalOps := 0
	for i := 0; i < 50; i++ {
		ops := make([]shard.Op, 4)
		for j := range ops {
			ops[j] = shard.Op{Write: true, Addr: uint64(rng.Intn(1 << 12)), Data: testLine(uint64(i))}
		}
		if _, err := cl.Do(ops); err != nil {
			t.Fatal(err)
		}
		totalOps += len(ops)
	}

	decisions := cl.Decisions(100)
	if len(decisions) != 50 {
		t.Fatalf("decision log holds %d decisions, want 50", len(decisions))
	}
	for i := 1; i < len(decisions); i++ {
		if decisions[i].Seq != decisions[i-1].Seq+1 {
			t.Fatalf("decision seqs not contiguous: %d then %d", decisions[i-1].Seq, decisions[i].Seq)
		}
	}

	// Replaying the same policy the cluster ran must not diverge.
	same := WhatIf(decisions, NewAffinityRouter(2, DefaultAffinityPrefixBits))
	if same.Diverged != 0 || same.OpsMoved != 0 {
		t.Fatalf("self-replay diverged: %+v", same)
	}
	if same.Decisions != 50 {
		t.Fatalf("self-replay covered %d decisions, want 50", same.Decisions)
	}

	// Pinning everything to instance 1 must move exactly the ops that
	// were recorded on instance 0.
	on0 := 0
	for _, d := range decisions {
		on0 += d.PerInstance[0]
	}
	pinned := WhatIf(decisions, pinnedRouter{to: 1})
	if pinned.OpsMoved != on0 {
		t.Fatalf("pinned replay moved %d ops, want the %d recorded on instance 0", pinned.OpsMoved, on0)
	}
	if got := pinned.PerInstance[1]; got != totalOps {
		t.Fatalf("pinned replay placed %d ops on instance 1, want all %d", got, totalOps)
	}
}

// composeScenario expands a preset and prefills target through the
// cluster itself, so lines live wherever the router puts them.
func composeScenario(t *testing.T, name string, seed int64, events int, cl *Cluster) ([]shard.Op, uint64) {
	t.Helper()
	spec, err := workload.Preset(name, seed, events)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := workload.Compose(spec)
	if err != nil {
		t.Fatal(err)
	}
	prefill := spec.Prefill
	if prefill == 0 {
		prefill = int(min(spec.AddrSpace/2, 1<<16))
	}
	pay := workload.PrefillPayload(spec)
	const chunk = 256
	for base := 0; base < prefill; base += chunk {
		var ops []shard.Op
		for a := base; a < prefill && a < base+chunk; a++ {
			ops = append(ops, shard.Op{Write: true, Addr: uint64(a), Data: pay(uint64(a))})
		}
		if _, err := cl.Do(ops); err != nil {
			t.Fatal(err)
		}
	}
	var flat []shard.Op
	for _, ev := range evs {
		flat = append(flat, ev.Ops...)
	}
	return flat, spec.AddrSpace
}

// TestAffinityKeepsPredictorAccuracy is the router-locality acceptance
// test: on zipfian-hot-page, page-affinity routing must keep the fleet's
// COPR accuracy within tolerance of a single instance seeing the whole
// stream, because each hot page trains exactly one predictor.
func TestAffinityKeepsPredictorAccuracy(t *testing.T) {
	run := func(instances int, router string) float64 {
		cl, err := New(core.DefaultOptions(), shard.Config{Shards: 1}, instances, Config{Router: router, DecisionLog: -1})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		ops, _ := composeScenario(t, "zipfian-hot-page", 11, 3000, cl)
		const batch = 64
		for i := 0; i < len(ops); i += batch {
			end := min(i+batch, len(ops))
			if _, err := cl.Do(ops[i:end]); err != nil {
				t.Fatal(err)
			}
		}
		return cl.EngineSnapshot().Total.PredictionAccuracy
	}

	single := run(1, Passthrough)
	multi := run(3, Affinity)
	if single <= 0 || single > 1 {
		t.Fatalf("single-instance accuracy %v out of range", single)
	}
	if diff := math.Abs(single - multi); diff > 0.05 {
		t.Fatalf("affinity accuracy %v strayed %.4f from single-instance %v (tolerance 0.05)",
			multi, diff, single)
	}
}

// TestLeastLoadedBalancesWriteBurst pins the load-aware policy's whole
// point: under write-burst no instance is starved and no instance hogs —
// the max/min ratio of ops routed per instance stays within a small
// constant factor. (Routed ops, from the decision log, is the quantity
// the policy actually balances; served-write counts additionally depend
// on each batch's read/write mix.)
func TestLeastLoadedBalancesWriteBurst(t *testing.T) {
	cl, err := New(core.DefaultOptions(), shard.Config{Shards: 1}, 3, Config{Router: LeastLoaded, DecisionLog: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	spec, err := workload.Preset("write-burst", 5, 2000)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := workload.Compose(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent submitters make the inflight gauge a live signal.
	feed := make(chan []shard.Op)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ops := range feed {
				if _, err := cl.Do(ops); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for _, ev := range evs {
		feed <- ev.Ops
	}
	close(feed)
	wg.Wait()

	routed := make([]int, cl.Instances())
	for _, d := range cl.Decisions(4096) {
		for i, n := range d.PerInstance {
			routed[i] += n
		}
	}
	lo, hi := routed[0], routed[0]
	for i, n := range routed {
		if n == 0 {
			t.Fatalf("instance %d was routed no ops (routed %v)", i, routed)
		}
		lo = min(lo, n)
		hi = max(hi, n)
	}
	if ratio := float64(hi) / float64(lo); ratio > 2.0 {
		t.Fatalf("routing imbalance %0.2f (routed %v), want <= 2.0", ratio, routed)
	}
}

// TestClusterStatsSurfaces covers the read-side API a stats consumer
// walks: the convenience ops, per-instance snapshots, global shard
// gauges, and the ordered per-class quantile books (gold, silver,
// best-effort all populated).
func TestClusterStatsSurfaces(t *testing.T) {
	clk := newFakeClock()
	cl, err := New(core.DefaultOptions(), shard.Config{Shards: 2}, 2, Config{
		Router:  Affinity,
		Classes: map[string]Class{"au": ClassGold, "ag": ClassSilver},
		Now:     clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if cl.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 2 instances x 2 shards", cl.Shards())
	}
	if cl.Engine(0) == cl.Engine(1) {
		t.Fatal("Engine(0) and Engine(1) are the same engine")
	}

	// Convenience single-op surface; affinity routing makes the read
	// land on the instance that took the write.
	if err := cl.Write(7, testLine(7)); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Read(7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, testLine(7)) {
		t.Fatal("read-your-write through the convenience surface failed")
	}

	// One classed call per tenant so every class has samples.
	for i, tenant := range []string{"au", "ag", "anon"} {
		ctx := obs.ContextWithTenant(t.Context(), tenant)
		for j := 0; j < 8; j++ {
			addr := uint64(1000*(i+1) + j)
			if err := cl.WriteCtx(ctx, addr, testLine(addr)); err != nil {
				t.Fatal(err)
			}
			if _, err := cl.ReadCtx(ctx, addr); err != nil {
				t.Fatal(err)
			}
		}
	}

	snaps := cl.PerInstanceSnapshots()
	if len(snaps) != 2 {
		t.Fatalf("per-instance snapshots = %d, want 2", len(snaps))
	}
	var writes uint64
	for _, s := range snaps {
		writes += s.Total.Writes
	}
	if merged := cl.EngineSnapshot(); merged.Total.Writes != writes || writes != 25 {
		t.Fatalf("writes: merged %d, per-instance sum %d, want 25", merged.Total.Writes, writes)
	}

	gauges := cl.Gauges()
	if len(gauges) != 4 {
		t.Fatalf("gauges = %d, want one per global shard", len(gauges))
	}
	for i, g := range gauges {
		if g.Shard != i {
			t.Fatalf("gauge %d reports shard %d, want global renumbering", i, g.Shard)
		}
	}

	classes := cl.ClassSnapshots()
	if len(classes) != 3 {
		t.Fatalf("classes = %+v, want gold, silver, best-effort", classes)
	}
	wantOrder := []Class{ClassGold, ClassSilver, ClassBestEffort}
	for i, c := range classes {
		if c.Class != wantOrder[i] {
			t.Fatalf("class %d = %s, want %s (rank order)", i, c.Class, wantOrder[i])
		}
		if c.Samples == 0 || c.Calls == 0 || c.Ops == 0 {
			t.Fatalf("class %s has no samples: %+v", c.Class, c)
		}
		if c.P50us <= 0 || c.P90us < c.P50us || c.P99us < c.P90us || c.MaxUs < c.P99us {
			t.Fatalf("class %s quantiles not monotone: %+v", c.Class, c)
		}
	}
	// Best-effort saw the anonymous tenant plus the unclassed
	// convenience ops above.
	if classes[2].Ops != 16+2 {
		t.Fatalf("best-effort ops = %d, want 18", classes[2].Ops)
	}
}
