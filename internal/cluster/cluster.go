// Package cluster fronts N shard.Engine instances with a pluggable
// router, per-tenant token-bucket admission control, and SLO-class
// accounting — the scale-out layer between the HTTP daemon and the
// engines.
//
// Layering: serve → cluster → shard.Engine → core.Memory. The cluster
// is deliberately thin on the data path: route, forward, account. A
// 1-instance cluster with the passthrough router forwards each batch
// verbatim to its engine, so it is bit-identical to calling the engine
// directly (the same pinning discipline TestSingleShardMatchesMemory
// applies one layer down).
//
// Every routing decision can be recorded (inputs and outcome) into a
// bounded ring, and WhatIf replays those decisions under an alternative
// policy for counterfactual analysis.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"attache/internal/core"
	"attache/internal/obs"
	"attache/internal/shard"
	"attache/internal/tier"
)

// Config shapes a cluster around its engines.
type Config struct {
	// Router names the routing policy (see NewRouter). Empty defaults to
	// passthrough for 1 instance and round-robin otherwise.
	Router string
	// Quotas maps tenant → admission quota. Tenants absent from the map
	// use DefaultQuota.
	Quotas map[string]Quota
	// DefaultQuota applies per-tenant to every tenant without an explicit
	// quota (each gets its own bucket of this shape). Zero = unlimited.
	DefaultQuota Quota
	// Classes maps tenant → SLO class; unmapped tenants are best-effort.
	Classes map[string]Class
	// DecisionLog sizes the routing-decision ring: 0 defaults to 1024,
	// negative disables recording.
	DecisionLog int
	// Now is the admission clock; nil means time.Now. Injectable so
	// quota tests drive time deterministically.
	Now func() time.Time
	// OpCost prices one op for the least-loaded router, so it balances
	// predicted work instead of op counts. Nil means every op costs 1.
	// twin.Prediction.CostModel().OpCost fits here; other policies
	// ignore it.
	OpCost func(write bool) float64
}

// Cluster owns N engines behind a router. Safe for concurrent use.
type Cluster struct {
	engines []*shard.Engine
	router  Router
	adm     *admitter
	slo     *sloBook
	log     *decisionLog
}

// InstanceSeed derives instance i's engine seed from a base seed.
// Instance 0 keeps the base exactly — a 1-instance cluster must build
// the same engine a direct shard.New would — and later instances mix in
// their index with a distinct odd constant (NOT the engine's per-shard
// constant, so instance 1's shard 0 never collides with instance 0's
// shard 1).
func InstanceSeed(base int64, i int) int64 {
	return base ^ int64(uint64(i)*0xD1B54A32D192ED03)
}

// New builds instances engines, each of shardCfg shards configured from
// opts with InstanceSeed-derived seeds, behind cfg's router.
func New(opts core.Options, shardCfg shard.Config, instances int, cfg Config) (*Cluster, error) {
	if instances < 1 {
		return nil, fmt.Errorf("cluster: instance count %d not in [1,∞): %w", instances, core.ErrOutOfRange)
	}
	engines := make([]*shard.Engine, instances)
	for i := range engines {
		o := opts
		o.Seed = InstanceSeed(opts.Seed, i)
		eng, err := shard.New(o, shardCfg)
		if err != nil {
			for _, e := range engines[:i] {
				e.Close()
			}
			return nil, err
		}
		engines[i] = eng
	}
	c, err := Wrap(engines, cfg)
	if err != nil {
		for _, e := range engines {
			e.Close()
		}
		return nil, err
	}
	return c, nil
}

// Wrap fronts existing engines with a cluster. The cluster takes
// ownership: Close closes every engine.
func Wrap(engines []*shard.Engine, cfg Config) (*Cluster, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("cluster: need at least one engine: %w", core.ErrOutOfRange)
	}
	policy := cfg.Router
	if policy == "" {
		if len(engines) == 1 {
			policy = Passthrough
		} else {
			policy = RoundRobin
		}
	}
	r, err := NewRouter(policy, len(engines))
	if err != nil {
		return nil, err
	}
	if ll, ok := r.(*leastLoadedRouter); ok && cfg.OpCost != nil {
		ll.cost = cfg.OpCost
	}
	logSize := cfg.DecisionLog
	if logSize == 0 {
		logSize = 1024
	}
	return &Cluster{
		engines: engines,
		router:  r,
		adm:     newAdmitter(cfg.Quotas, cfg.DefaultQuota, cfg.Now),
		slo:     newSLOBook(cfg.Classes),
		log:     newDecisionLog(logSize),
	}, nil
}

// Instances reports the engine count.
func (c *Cluster) Instances() int { return len(c.engines) }

// RouterName reports the active routing policy.
func (c *Cluster) RouterName() string { return c.router.Name() }

// Shards reports the total shard count across instances.
func (c *Cluster) Shards() int {
	n := 0
	for _, e := range c.engines {
		n += e.Shards()
	}
	return n
}

// Engine returns instance i's engine, for tests that inspect one
// instance directly.
func (c *Cluster) Engine(i int) *shard.Engine { return c.engines[i] }

// Do submits a batch without a context: untenanted, never quota-shed
// (unless a default quota is set), blocking on backpressure like
// shard.Engine.Do.
func (c *Cluster) Do(ops []shard.Op) ([]shard.Result, error) {
	return c.DoCtx(context.Background(), ops)
}

// DoCtx routes a batch to its instance(s) and blocks until every op
// completes, with shard.Engine.DoCtx's deadline/shed semantics per
// instance. The context's tenant (obs.ContextWithTenant) selects the
// admission quota and SLO class; an over-quota batch is refused whole —
// every op fails with core.ErrOverloaded and nothing reaches an engine,
// so callers see the same sentinel (and servers the same 429) as an
// engine-level shed.
func (c *Cluster) DoCtx(ctx context.Context, ops []shard.Op) ([]shard.Result, error) {
	tenant := obs.TenantFromContext(ctx)
	if len(ops) == 0 {
		return nil, nil
	}
	if !c.adm.admit(tenant, len(ops)) {
		c.slo.recordQuotaShed(tenant, len(ops))
		err := fmt.Errorf("cluster: tenant %q over quota: %w", tenant, core.ErrOverloaded)
		res := make([]shard.Result, len(ops))
		for i := range res {
			res[i].Err = err
		}
		return res, nil
	}

	loads := make([]int64, len(c.engines))
	for i, e := range c.engines {
		loads[i] = e.InFlight()
	}
	assign := make([]int, len(ops))
	c.router.Route(ops, loads, assign)

	start := time.Now()
	res, err := c.dispatch(ctx, ops, assign)
	c.record(tenant, ops, loads, assign, time.Since(start), res, err)
	return res, err
}

// dispatch executes the routed batch. The single-instance case — every
// whole-batch router, and any affinity batch that happens to map to one
// instance — forwards the caller's ops slice verbatim, which is what
// makes the 1-instance passthrough cluster bit-identical to a bare
// engine. Split batches regroup per instance, run concurrently, and
// scatter results back into submission order.
func (c *Cluster) dispatch(ctx context.Context, ops []shard.Op, assign []int) ([]shard.Result, error) {
	single := true
	for _, a := range assign[1:] {
		if a != assign[0] {
			single = false
			break
		}
	}
	if single {
		return c.engines[assign[0]].DoCtx(ctx, ops)
	}

	groups := make(map[int][]int, len(c.engines))
	for i, a := range assign {
		groups[a] = append(groups[a], i)
	}
	res := make([]shard.Result, len(ops))
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
		failed   int
	)
	for inst, idx := range groups {
		wg.Add(1)
		go func(inst int, idx []int) {
			defer wg.Done()
			sub := make([]shard.Op, len(idx))
			for j, k := range idx {
				sub[j] = ops[k]
			}
			out, err := c.engines[inst].DoCtx(ctx, sub)
			if err != nil {
				// Call-level failure (cancelled context, closed engine):
				// every op in this group reports it.
				for _, k := range idx {
					res[k].Err = err
				}
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				failed++
				errMu.Unlock()
				return
			}
			for j, k := range idx {
				res[k] = out[j]
			}
		}(inst, idx)
	}
	wg.Wait()
	if failed == len(groups) {
		return nil, firstErr
	}
	return res, nil
}

// record books the decision and the SLO outcome for one executed batch.
func (c *Cluster) record(tenant string, ops []shard.Op, loads []int64, assign []int, lat time.Duration, res []shard.Result, err error) {
	per := make([]int, len(c.engines))
	for _, a := range assign {
		per[a]++
	}
	chosen := 0
	for i, n := range per {
		if n > per[chosen] {
			chosen = i
		}
	}
	addrs := make([]uint64, 0, min(len(ops), decisionAddrCap))
	for i := 0; i < len(ops) && i < decisionAddrCap; i++ {
		addrs = append(addrs, ops[i].Addr)
	}
	c.log.add(Decision{
		Tenant:      tenant,
		Class:       c.slo.classFor(tenant),
		Ops:         len(ops),
		Addrs:       addrs,
		Loads:       loads,
		PerInstance: per,
		Chosen:      chosen,
	})

	if err != nil {
		c.slo.record(tenant, lat, len(ops), 0, 0, len(ops))
		return
	}
	ok, shed, errs := 0, 0, 0
	for i := range res {
		switch {
		case res[i].Err == nil:
			ok++
		case errors.Is(res[i].Err, core.ErrOverloaded):
			shed++
		default:
			errs++
		}
	}
	c.slo.record(tenant, lat, len(ops), ok, shed, errs)
}

// Read, Write, ReadCtx, WriteCtx are single-op conveniences mirroring
// shard.Engine's, routed and accounted like any batch.

func (c *Cluster) Read(addr uint64) ([]byte, error) {
	return c.ReadCtx(context.Background(), addr)
}

func (c *Cluster) Write(addr uint64, data []byte) error {
	return c.WriteCtx(context.Background(), addr, data)
}

func (c *Cluster) ReadCtx(ctx context.Context, addr uint64) ([]byte, error) {
	res, err := c.DoCtx(ctx, []shard.Op{{Addr: addr}})
	if err != nil {
		return nil, err
	}
	return res[0].Data, res[0].Err
}

func (c *Cluster) WriteCtx(ctx context.Context, addr uint64, data []byte) error {
	res, err := c.DoCtx(ctx, []shard.Op{{Write: true, Addr: addr, Data: data}})
	if err != nil {
		return err
	}
	return res[0].Err
}

// EngineSnapshot merges every instance into one shard.Snapshot — the
// view v1 stats and the metrics exposition render. PerShard concatenates
// instance shards in order, totals and robust counters sum, so a
// 1-instance cluster's merged snapshot is exactly its engine's.
func (c *Cluster) EngineSnapshot() shard.Snapshot {
	if len(c.engines) == 1 {
		return c.engines[0].StatsSnapshot()
	}
	var merged shard.Snapshot
	for _, e := range c.engines {
		s := e.StatsSnapshot()
		merged.PerShard = append(merged.PerShard, s.PerShard...)
		merged.SRAMBytes += s.SRAMBytes
		merged.Robust.Sheds += s.Robust.Sheds
		merged.Robust.Canceled += s.Robust.Canceled
		merged.Robust.InjectedErrors += s.Robust.InjectedErrors
		merged.Robust.InjectedDelays += s.Robust.InjectedDelays
		if s.Tiers != nil {
			if merged.Tiers == nil {
				merged.Tiers = &tier.Snapshot{}
			}
			merged.Tiers.Accumulate(*s.Tiers)
		}
	}
	for _, s := range merged.PerShard {
		merged.Total.Accumulate(s)
	}
	return merged
}

// PerInstanceSnapshots returns each instance's own snapshot, index i
// for instance i — the per_instance section of stats v2.
func (c *Cluster) PerInstanceSnapshots() []shard.Snapshot {
	out := make([]shard.Snapshot, len(c.engines))
	for i, e := range c.engines {
		out[i] = e.StatsSnapshot()
	}
	return out
}

// Gauges flattens every instance's shard gauges into one slice with
// globally unique shard indices (instance i's shard j appears as shard
// base+j, where base is the shard count of instances before i).
func (c *Cluster) Gauges() []obs.ShardGauge {
	var out []obs.ShardGauge
	base := 0
	for _, e := range c.engines {
		for _, g := range e.Gauges() {
			g.Shard += base
			out = append(out, g)
		}
		base += e.Shards()
	}
	return out
}

// ClassSnapshots reports per-SLO-class latency quantiles.
func (c *Cluster) ClassSnapshots() []ClassSnapshot { return c.slo.ClassSnapshots() }

// TenantSnapshots reports per-tenant op accounting.
func (c *Cluster) TenantSnapshots() []TenantSnapshot { return c.slo.TenantSnapshots() }

// JainFairness reports Jain's fairness index over per-tenant successful
// throughput (1.0 = perfectly even; 1/n = one tenant got everything).
func (c *Cluster) JainFairness() float64 { return c.slo.JainFairness() }

// Decisions returns up to n recent routing decisions, oldest first, for
// counterfactual replay with WhatIf.
func (c *Cluster) Decisions(n int) []Decision { return c.log.recent(n) }

// Close closes every engine, returning the first error.
func (c *Cluster) Close() error {
	var first error
	for _, e := range c.engines {
		if err := e.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
