package cluster

import (
	"sync"

	"attache/internal/shard"
)

// decisionAddrCap bounds how many addresses one Decision records. Big
// batches keep their first 32 addresses — enough to replay the routing
// of any realistic batch while bounding ring memory.
const decisionAddrCap = 32

// Decision is one recorded routing outcome: which instance(s) a batch
// went to, and the inputs (loads, addresses) the router saw. Recording
// the inputs is what makes counterfactual replay honest — WhatIf re-runs
// an alternative policy against the loads that actually prevailed, not
// today's.
type Decision struct {
	Seq         uint64   `json:"seq"`
	Tenant      string   `json:"tenant,omitempty"`
	Class       Class    `json:"class"`
	Ops         int      `json:"ops"`
	Addrs       []uint64 `json:"addrs"`        // first decisionAddrCap op addresses
	Loads       []int64  `json:"loads"`        // per-instance inflight at decision time
	PerInstance []int    `json:"per_instance"` // ops sent to each instance
	Chosen      int      `json:"chosen"`       // instance serving most ops (ties: lowest)
}

// decisionLog is a fixed-size ring of recent Decisions.
type decisionLog struct {
	mu   sync.Mutex
	ring []Decision
	next int
	seq  uint64
	full bool
}

func newDecisionLog(size int) *decisionLog {
	if size <= 0 {
		return nil
	}
	return &decisionLog{ring: make([]Decision, size)}
}

func (l *decisionLog) add(d Decision) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.seq++
	d.Seq = l.seq
	l.ring[l.next] = d
	l.next = (l.next + 1) % len(l.ring)
	if l.next == 0 {
		l.full = true
	}
	l.mu.Unlock()
}

// recent returns up to n most-recent decisions, oldest first.
func (l *decisionLog) recent(n int) []Decision {
	if l == nil || n <= 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	size := l.next
	if l.full {
		size = len(l.ring)
	}
	if n > size {
		n = size
	}
	out := make([]Decision, 0, n)
	start := l.next - n
	if start < 0 {
		start += len(l.ring)
	}
	for i := 0; i < n; i++ {
		out = append(out, l.ring[(start+i)%len(l.ring)])
	}
	return out
}

// Divergence is the outcome of replaying recorded decisions under an
// alternative router: how many batches would have landed elsewhere, and
// how many ops would have moved to each instance.
type Divergence struct {
	Router      string `json:"router"`       // alternative policy replayed
	Decisions   int    `json:"decisions"`    // batches replayed
	Diverged    int    `json:"diverged"`     // batches whose placement changed
	OpsMoved    int    `json:"ops_moved"`    // ops that changed instance
	PerInstance []int  `json:"per_instance"` // ops per instance under alt policy
}

// WhatIf replays recorded routing decisions under alt, feeding it the
// loads each decision actually saw, and reports how placement would
// have differed. Decisions whose batch exceeded the recorded address
// cap replay only the recorded prefix — the comparison stays apples to
// apples because both placements are compared over the same prefix.
func WhatIf(decisions []Decision, alt Router) Divergence {
	div := Divergence{Router: alt.Name()}
	for _, d := range decisions {
		if len(d.Addrs) == 0 {
			continue
		}
		n := len(d.PerInstance)
		if n == 0 {
			continue
		}
		if div.PerInstance == nil {
			div.PerInstance = make([]int, n)
		}
		ops := make([]shard.Op, len(d.Addrs))
		for i, a := range d.Addrs {
			ops[i] = shard.Op{Addr: a}
		}
		assign := make([]int, len(ops))
		alt.Route(ops, d.Loads, assign)
		div.Decisions++

		// Reconstruct the recorded per-op placement over the same
		// prefix. Whole-batch routers recorded one instance; the
		// affinity router's per-op split is deterministic on Addr, so
		// recompute it from PerInstance order-preservingly.
		recorded := recordedAssignment(d, len(ops))
		moved := 0
		for i := range assign {
			if assign[i] != recorded[i] {
				moved++
			}
			if assign[i] >= 0 && assign[i] < n {
				div.PerInstance[assign[i]]++
			}
		}
		if moved > 0 {
			div.Diverged++
			div.OpsMoved += moved
		}
	}
	return div
}

// recordedAssignment rebuilds a per-op instance assignment consistent
// with the decision's PerInstance histogram: ops are dealt to instances
// in index order, matching how the cluster splits batches (stable,
// order-preserving grouping).
func recordedAssignment(d Decision, n int) []int {
	out := make([]int, n)
	if single := singleInstance(d.PerInstance); single >= 0 {
		for i := range out {
			out[i] = single
		}
		return out
	}
	// Multi-instance decisions come only from per-op routers whose
	// mapping is a pure function of Addr — recompute via the affinity
	// hash with default prefix bits (the only per-op policy shipped).
	r := affinityRouter{n: uint64(len(d.PerInstance)), prefixBits: DefaultAffinityPrefixBits}
	for i, a := range d.Addrs[:n] {
		out[i] = r.instanceFor(a)
	}
	return out
}

// singleInstance returns the lone instance with ops, or -1 if the batch
// was split.
func singleInstance(per []int) int {
	idx := -1
	for i, c := range per {
		if c > 0 {
			if idx >= 0 {
				return -1
			}
			idx = i
		}
	}
	return idx
}
