package cluster

import (
	"fmt"
	"io"

	"attache/internal/shard"
	"attache/internal/snap"
)

// ExportState captures every instance's serializable state, instance
// order preserved. Each instance's cut is internally consistent (all of
// its shard locks held at once); instances are exported one after
// another, so cross-instance skew is possible while traffic flows —
// take the snapshot on a drained cluster for a globally exact image.
func (c *Cluster) ExportState() *snap.ClusterState {
	st := &snap.ClusterState{Engines: make([]*snap.EngineState, len(c.engines))}
	for i, e := range c.engines {
		st.Engines[i] = e.ExportState()
	}
	return st
}

// WriteSnapshot serializes the whole cluster as one snapv1 snapshot.
// Safe at any time, including after Close.
func (c *Cluster) WriteSnapshot(out io.Writer) error {
	return snap.Encode(out, c.ExportState())
}

// Restore rebuilds a cluster from a snapshot: one engine per serialized
// instance (each restored via shard.RestoreEngine, so the snapshot is
// authoritative for options, tier configuration, and shard count),
// fronted by cfg's router and admission control. Router and admission
// state are rebuilt fresh — they are load-balancing hints, not
// behavioral state, and are not part of snapv1.
func Restore(st *snap.ClusterState, shardCfg shard.Config, cfg Config) (*Cluster, error) {
	if len(st.Engines) == 0 {
		return nil, fmt.Errorf("cluster: snapshot has no engines: %w", snap.ErrCorrupt)
	}
	engines := make([]*shard.Engine, len(st.Engines))
	for i, es := range st.Engines {
		eng, err := shard.RestoreEngine(es, shardCfg)
		if err != nil {
			for _, e := range engines[:i] {
				e.Close()
			}
			return nil, fmt.Errorf("cluster: restoring instance %d: %w", i, err)
		}
		engines[i] = eng
	}
	c, err := Wrap(engines, cfg)
	if err != nil {
		for _, e := range engines {
			e.Close()
		}
		return nil, err
	}
	return c, nil
}

// RestoreFrom decodes a snapv1 snapshot from r and restores the
// cluster it holds.
func RestoreFrom(r io.Reader, shardCfg shard.Config, cfg Config) (*Cluster, error) {
	cs, err := snap.Decode(r)
	if err != nil {
		return nil, err
	}
	return Restore(cs, shardCfg, cfg)
}
