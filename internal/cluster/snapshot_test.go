package cluster

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"attache/internal/core"
	"attache/internal/shard"
	"attache/internal/snap"
	"attache/internal/tier"
)

// clusterBatch builds the i-th batch of a deterministic mixed op
// sequence over a 256-line working set.
func clusterBatch(rng *rand.Rand, i int) []shard.Op {
	switch rng.Intn(3) {
	case 0:
		return []shard.Op{{Write: true, Addr: uint64(rng.Intn(256)), Data: testLine(uint64(i))}}
	case 1:
		return []shard.Op{{Addr: uint64(rng.Intn(256))}}
	default:
		ops := make([]shard.Op, 0, 8)
		for j := 0; j < 8; j++ {
			addr := uint64(rng.Intn(256))
			if j%2 == 0 {
				ops = append(ops, shard.Op{Write: true, Addr: addr, Data: testLine(uint64(i*8 + j))})
			} else {
				ops = append(ops, shard.Op{Addr: addr})
			}
		}
		return ops
	}
}

// TestClusterSnapshotRestore: a drained multi-instance tiered cluster
// round-trips through snapv1 — the restored cluster carries the same
// instance count, byte-identical merged books (including the tier
// section), and serves the written lines.
func TestClusterSnapshotRestore(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Seed = 13
	shardCfg := shard.Config{
		Shards: 2,
		Tier:   &tier.Config{NearLines: 8, Policy: tier.PolicyLRU},
	}
	cl, err := New(opts, shardCfg, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		if _, err := cl.Do(clusterBatch(rng, i)); err != nil {
			t.Fatal(err)
		}
	}
	want := cl.EngineSnapshot()
	if want.Tiers == nil {
		t.Fatal("tiered cluster snapshot has no merged tier section")
	}

	var buf bytes.Buffer
	if err := cl.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Restore: the snapshot is authoritative for shard count and tier
	// config, so the restore-side shard config stays empty.
	re, err := RestoreFrom(&buf, shard.Config{}, Config{})
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	defer re.Close()

	if re.Instances() != cl.Instances() {
		t.Fatalf("restored %d instances, want %d", re.Instances(), cl.Instances())
	}
	if got := re.EngineSnapshot(); !reflect.DeepEqual(want, got) {
		t.Fatalf("merged snapshots diverged:\noriginal %+v\nrestored %+v", want, got)
	}

	// The restored cluster must stay in lockstep with the original on a
	// shared second half. Router state is rebuilt fresh on restore (it is
	// a load-balancing hint, not behavioral state), so the first half is
	// an even number of batches — round-robin over 2 instances lands both
	// counters on the same instance.
	for i := 200; i < 320; i++ {
		ops := clusterBatch(rng, i)
		a, aerr := cl.Do(append([]shard.Op(nil), ops...))
		b, berr := re.Do(append([]shard.Op(nil), ops...))
		if (aerr == nil) != (berr == nil) {
			t.Fatalf("batch %d: call errors diverged: %v vs %v", i, aerr, berr)
		}
		for k := range a {
			if !bytes.Equal(a[k].Data, b[k].Data) {
				t.Fatalf("batch %d op %d: data diverged", i, k)
			}
			if (a[k].Err == nil) != (b[k].Err == nil) {
				t.Fatalf("batch %d op %d: errors diverged: %v vs %v", i, k, a[k].Err, b[k].Err)
			}
		}
	}
	if as, bs := cl.EngineSnapshot(), re.EngineSnapshot(); !reflect.DeepEqual(as, bs) {
		t.Fatalf("final merged snapshots diverged:\noriginal %+v\nrestored %+v", as, bs)
	}
}

// TestClusterTierMerge: the merged EngineSnapshot tier section is the
// exact accumulation of the per-instance tier snapshots.
func TestClusterTierMerge(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Seed = 21
	cl, err := New(opts, shard.Config{Shards: 2, Tier: &tier.Config{NearLines: 4}}, 3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 150; i++ {
		if _, err := cl.Do(clusterBatch(rng, i)); err != nil {
			t.Fatal(err)
		}
	}

	var want tier.Snapshot
	for _, es := range cl.ExportState().Engines {
		eng, err := shard.RestoreEngine(es, shard.Config{})
		if err != nil {
			t.Fatal(err)
		}
		ts, ok := eng.TierSnapshot()
		eng.Close()
		if !ok {
			t.Fatal("restored instance is not tiered")
		}
		want.Accumulate(ts)
	}
	got := cl.EngineSnapshot().Tiers
	if got == nil {
		t.Fatal("merged snapshot has no tier section")
	}
	if !reflect.DeepEqual(want, *got) {
		t.Fatalf("merged tier section is not the per-instance sum:\nsum    %+v\nmerged %+v", want, *got)
	}
	if got.Promotions != got.Demotions+got.NearResident {
		t.Fatalf("merged promotion balance broken: %d promotions, %d demotions, %d resident",
			got.Promotions, got.Demotions, got.NearResident)
	}
}

// TestClusterUntieredNoTierSection: classic clusters must not grow a
// tier section in the merged snapshot.
func TestClusterUntieredNoTierSection(t *testing.T) {
	cl, err := New(core.DefaultOptions(), shard.Config{Shards: 2}, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Write(1, testLine(1)); err != nil {
		t.Fatal(err)
	}
	if s := cl.EngineSnapshot(); s.Tiers != nil {
		t.Fatalf("untiered cluster grew a tier section: %+v", s.Tiers)
	}
}

// TestClusterRestoreRejects pins the cluster restore failure modes:
// engine-less snapshots are corrupt, and per-instance restore failures
// name the instance and leak no engines.
func TestClusterRestoreRejects(t *testing.T) {
	t.Run("no-engines", func(t *testing.T) {
		_, err := Restore(&snap.ClusterState{}, shard.Config{}, Config{})
		if !errors.Is(err, snap.ErrCorrupt) {
			t.Fatalf("empty snapshot: got %v, want ErrCorrupt", err)
		}
	})
	t.Run("instance-restore-failure", func(t *testing.T) {
		cl, err := New(core.DefaultOptions(), shard.Config{Shards: 2}, 2, Config{})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		st := cl.ExportState()
		// A caller-supplied tier config is rejected per instance.
		_, err = Restore(st, shard.Config{Tier: &tier.Config{NearLines: 4}}, Config{})
		if err == nil {
			t.Fatal("restore with caller tier config succeeded")
		}
		if !strings.Contains(err.Error(), "instance 0") {
			t.Fatalf("error %q does not name the failing instance", err)
		}
	})
	t.Run("decode-failure", func(t *testing.T) {
		if _, err := RestoreFrom(bytes.NewReader([]byte("not a snapshot")), shard.Config{}, Config{}); !errors.Is(err, snap.ErrCorrupt) {
			t.Fatalf("garbage stream: got %v, want ErrCorrupt", err)
		}
	})
}
