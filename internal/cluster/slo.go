package cluster

import (
	"sort"
	"sync"
	"time"
)

// Class is an SLO service class label. Tenants map to classes via
// Config.Classes; unmapped tenants ride in ClassBestEffort.
type Class string

const (
	ClassGold       Class = "gold"
	ClassSilver     Class = "silver"
	ClassBestEffort Class = "best-effort"
)

// classReservoirSize bounds the per-class latency sample buffer. 4096
// samples keeps P99 stable at smoke-test volumes without unbounded
// growth; once full, the reservoir overwrites oldest-first (a sliding
// window, which is what an SLO dashboard wants anyway).
const classReservoirSize = 4096

// ClassSnapshot is one SLO class's latency view in stats v2.
type ClassSnapshot struct {
	Class   Class   `json:"class"`
	Calls   int64   `json:"calls"`
	Ops     int64   `json:"ops"`
	P50us   float64 `json:"p50_us"`
	P90us   float64 `json:"p90_us"`
	P99us   float64 `json:"p99_us"`
	MaxUs   float64 `json:"max_us"`
	Samples int     `json:"samples"`
}

// TenantSnapshot is one tenant's accounting in stats v2. ShedQuota
// counts ops refused by admission control (HTTP 429); ShedBackend
// counts ops the engine itself shed under queue pressure.
type TenantSnapshot struct {
	Tenant      string `json:"tenant"`
	Class       Class  `json:"class"`
	Ops         int64  `json:"ops"`
	OK          int64  `json:"ok"`
	ShedQuota   int64  `json:"shed_quota"`
	ShedBackend int64  `json:"shed_backend"`
	Errors      int64  `json:"errors"`
}

// classStats is one class's live accumulator.
type classStats struct {
	calls   int64
	ops     int64
	lat     []float64 // µs, ring once full
	next    int       // ring cursor
	wrapped bool
}

// tenantStats is one tenant's live accumulator.
type tenantStats struct {
	class       Class
	ops         int64
	ok          int64
	shedQuota   int64
	shedBackend int64
	errors      int64
}

// sloBook tracks per-class latency reservoirs and per-tenant counters.
type sloBook struct {
	mu      sync.Mutex
	classes map[Class]*classStats
	tenants map[string]*tenantStats
	classOf map[string]Class
}

func newSLOBook(classOf map[string]Class) *sloBook {
	c := make(map[string]Class, len(classOf))
	for k, v := range classOf {
		c[k] = v
	}
	return &sloBook{
		classes: make(map[Class]*classStats),
		tenants: make(map[string]*tenantStats),
		classOf: c,
	}
}

func (b *sloBook) classFor(tenant string) Class {
	if c, ok := b.classOf[tenant]; ok {
		return c
	}
	return ClassBestEffort
}

func (b *sloBook) tenant(tenant string) *tenantStats {
	t := b.tenants[tenant]
	if t == nil {
		t = &tenantStats{class: b.classFor(tenant)}
		b.tenants[tenant] = t
	}
	return t
}

// recordQuotaShed books a batch refused by admission control.
func (b *sloBook) recordQuotaShed(tenant string, ops int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.tenant(tenant)
	t.ops += int64(ops)
	t.shedQuota += int64(ops)
}

// record books one executed batch: latency into the tenant's class
// reservoir, per-op outcomes into the tenant counters. Quota sheds are
// booked separately — their latency is a refusal, not service time.
func (b *sloBook) record(tenant string, lat time.Duration, ops, ok, shedBackend, errs int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.tenant(tenant)
	t.ops += int64(ops)
	t.ok += int64(ok)
	t.shedBackend += int64(shedBackend)
	t.errors += int64(errs)

	cl := t.class
	c := b.classes[cl]
	if c == nil {
		c = &classStats{}
		b.classes[cl] = c
	}
	c.calls++
	c.ops += int64(ops)
	us := float64(lat.Nanoseconds()) / 1e3
	if len(c.lat) < classReservoirSize {
		c.lat = append(c.lat, us)
	} else {
		c.lat[c.next] = us
		c.next = (c.next + 1) % classReservoirSize
		c.wrapped = true
	}
}

// ClassSnapshots returns per-class quantiles, sorted gold → silver →
// best-effort → others alphabetically, so the JSON is stable.
func (b *sloBook) ClassSnapshots() []ClassSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]ClassSnapshot, 0, len(b.classes))
	for cl, c := range b.classes {
		s := ClassSnapshot{Class: cl, Calls: c.calls, Ops: c.ops, Samples: len(c.lat)}
		if len(c.lat) > 0 {
			sorted := append([]float64(nil), c.lat...)
			sort.Float64s(sorted)
			s.P50us = quantile(sorted, 0.50)
			s.P90us = quantile(sorted, 0.90)
			s.P99us = quantile(sorted, 0.99)
			s.MaxUs = sorted[len(sorted)-1]
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return classRank(out[i].Class) < classRank(out[j].Class) })
	return out
}

func classRank(c Class) string {
	switch c {
	case ClassGold:
		return "0"
	case ClassSilver:
		return "1"
	case ClassBestEffort:
		return "2"
	}
	return "3" + string(c)
}

// TenantSnapshots returns per-tenant counters sorted by tenant name.
func (b *sloBook) TenantSnapshots() []TenantSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]TenantSnapshot, 0, len(b.tenants))
	for name, t := range b.tenants {
		out = append(out, TenantSnapshot{
			Tenant:      name,
			Class:       t.class,
			Ops:         t.ops,
			OK:          t.ok,
			ShedQuota:   t.shedQuota,
			ShedBackend: t.shedBackend,
			Errors:      t.errors,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// JainFairness computes Jain's index J = (Σx)² / (n·Σx²) over
// per-tenant successful throughput: 1.0 means perfectly even service,
// 1/n means one tenant got everything. Returns 1 when fewer than two
// tenants have been seen — a single stream is trivially fair.
func (b *sloBook) JainFairness() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	var sum, sumSq float64
	n := 0
	for _, t := range b.tenants {
		x := float64(t.ok)
		sum += x
		sumSq += x * x
		n++
	}
	if n < 2 || sumSq == 0 {
		return 1
	}
	return (sum * sum) / (float64(n) * sumSq)
}

// quantile reads q from an ascending-sorted slice using the nearest-rank
// convention loadgen's report quantiles use.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
