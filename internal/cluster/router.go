package cluster

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"attache/internal/core"
	"attache/internal/shard"
)

// Router assigns each op in a batch to an instance. Implementations must
// be safe for concurrent use; any state they keep (round-robin cursors,
// cumulative load tallies) is their own. Route fills assign[i] with the
// instance index for ops[i]; loads[i] is instance i's in-flight task
// count at decision time, the live signal load-aware policies key off.
//
// Routing is deliberately a pure placement decision — no admission, no
// retries — so a decision can be recorded and replayed counterfactually
// (WhatIf) under a different policy.
type Router interface {
	Name() string
	Route(ops []shard.Op, loads []int64, assign []int)
}

// Policies accepted by NewRouter (and the attached -router flag).
const (
	Passthrough = "passthrough"
	RoundRobin  = "round-robin"
	LeastLoaded = "least-loaded"
	Affinity    = "affinity"
)

// DefaultAffinityPrefixBits is how many low address bits the affinity
// router ignores: 6 bits groups 64 lines (one 4 KB page of 64-byte
// lines) onto the same instance, so a hot page trains exactly one
// instance's COPR predictor instead of smearing its history across all
// of them.
const DefaultAffinityPrefixBits = 6

// NewRouter builds a named routing policy for an n-instance cluster.
func NewRouter(policy string, n int) (Router, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: instance count %d not in [1,∞): %w", n, core.ErrOutOfRange)
	}
	switch policy {
	case Passthrough:
		if n != 1 {
			return nil, fmt.Errorf("cluster: passthrough router requires exactly 1 instance, got %d: %w", n, core.ErrOutOfRange)
		}
		return passthroughRouter{}, nil
	case RoundRobin:
		return &roundRobinRouter{n: n}, nil
	case LeastLoaded:
		return &leastLoadedRouter{routed: make([]float64, n)}, nil
	case Affinity:
		return NewAffinityRouter(n, DefaultAffinityPrefixBits), nil
	}
	return nil, fmt.Errorf("cluster: unknown router policy %q (want %s, %s, %s, or %s)",
		policy, Passthrough, RoundRobin, LeastLoaded, Affinity)
}

// passthroughRouter sends everything to instance 0 — the 1-instance
// configuration that must be bit-identical to a bare engine.
type passthroughRouter struct{}

func (passthroughRouter) Name() string { return Passthrough }

func (passthroughRouter) Route(ops []shard.Op, loads []int64, assign []int) {
	for i := range assign {
		assign[i] = 0
	}
}

// roundRobinRouter cycles whole batches across instances: one atomic
// add per decision, no load signal. Batches stay intact so in-batch
// read-your-write ordering holds.
type roundRobinRouter struct {
	n   int
	ctr atomic.Uint64
}

func (r *roundRobinRouter) Name() string { return RoundRobin }

func (r *roundRobinRouter) Route(ops []shard.Op, loads []int64, assign []int) {
	k := int((r.ctr.Add(1) - 1) % uint64(r.n))
	for i := range assign {
		assign[i] = k
	}
}

// leastLoadedPenalty converts one in-flight task into equivalent
// already-routed ops when scoring instances. An in-flight task is a
// whole batch, so weigh it like a typical batch — enough that an idle
// peer wins over a busy one when cumulative counts are close, without
// letting the live signal veto an instance that is far behind on work.
const leastLoadedPenalty = 32

// leastLoadedRouter sends each whole batch to the instance with the
// lowest load score: cumulative ops routed plus a per-in-flight-task
// penalty (ties: lowest index). The cumulative term makes this a greedy
// balancer — max/min ops per instance stays within one batch plus the
// penalty — while the inflight term steers new arrivals away from an
// instance that is momentarily busy. A pure inflight argmin would veto
// any busy instance outright, which under mixed batch sizes starves the
// instance serving large batches and funnels every burst to it.
// An optional cost hook (cluster Config.OpCost — e.g. the analytical
// twin's CostModel) reweighs ops by predicted blocks moved, so a batch
// of hostile-payload writes counts as more work than an equal batch of
// compressed reads; nil keeps the historical 1-op-1-unit accounting.
type leastLoadedRouter struct {
	mu     sync.Mutex
	routed []float64 // cumulative op cost assigned per instance
	cost   func(write bool) float64
}

func (r *leastLoadedRouter) Name() string { return LeastLoaded }

func (r *leastLoadedRouter) Route(ops []shard.Op, loads []int64, assign []int) {
	batch := float64(len(ops))
	if r.cost != nil {
		batch = 0
		for i := range ops {
			batch += r.cost(ops[i].Write)
		}
	}
	r.mu.Lock()
	pick, best := 0, 0.0
	for i := range r.routed {
		score := r.routed[i]
		if i < len(loads) {
			score += leastLoadedPenalty * float64(loads[i])
		}
		if i == 0 || score < best {
			pick, best = i, score
		}
	}
	r.routed[pick] += batch
	r.mu.Unlock()
	for i := range assign {
		assign[i] = pick
	}
}

// affinityRouter pins address prefixes to instances: every op whose
// address shares the same high bits (addr >> prefixBits) always lands on
// the same instance, so a hot page's access stream trains one COPR
// predictor and keeps its locality — the property the zipfian-hot-page
// router test pins. Batches are split per op; the cluster regroups them.
type affinityRouter struct {
	n          uint64
	prefixBits uint
}

// NewAffinityRouter builds an affinity router that ignores the low
// prefixBits address bits when choosing an instance.
func NewAffinityRouter(n int, prefixBits uint) Router {
	return affinityRouter{n: uint64(n), prefixBits: prefixBits}
}

func (r affinityRouter) Name() string { return Affinity }

func (r affinityRouter) Route(ops []shard.Op, loads []int64, assign []int) {
	for i, op := range ops {
		assign[i] = r.instanceFor(op.Addr)
	}
}

// instanceFor mixes the address prefix through the splitmix64 finalizer
// and Lemire-reduces it to [0, n) — the same unbiased mapping the
// engine's shardFor uses, over page prefixes instead of line addresses.
func (r affinityRouter) instanceFor(addr uint64) int {
	x := (addr >> r.prefixBits) + 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	x ^= x >> 31
	hi, _ := bits.Mul64(x, r.n)
	return int(hi)
}
