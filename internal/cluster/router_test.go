package cluster

import (
	"errors"
	"testing"

	"attache/internal/core"
	"attache/internal/shard"
)

func TestNewRouterValidation(t *testing.T) {
	if _, err := NewRouter(RoundRobin, 0); !errors.Is(err, core.ErrOutOfRange) {
		t.Fatalf("0 instances: err = %v, want ErrOutOfRange", err)
	}
	if _, err := NewRouter(Passthrough, 2); !errors.Is(err, core.ErrOutOfRange) {
		t.Fatalf("passthrough over 2 instances: err = %v, want ErrOutOfRange", err)
	}
	if _, err := NewRouter("weighted", 2); err == nil {
		t.Fatal("unknown policy accepted")
	}
	for _, p := range []string{Passthrough, RoundRobin, LeastLoaded, Affinity} {
		n := 3
		if p == Passthrough {
			n = 1
		}
		r, err := NewRouter(p, n)
		if err != nil {
			t.Fatalf("NewRouter(%s, %d): %v", p, n, err)
		}
		if r.Name() != p {
			t.Fatalf("router %s reports name %s", p, r.Name())
		}
	}
}

func TestRoundRobinCyclesWholeBatches(t *testing.T) {
	r, _ := NewRouter(RoundRobin, 3)
	counts := make([]int, 3)
	for batch := 0; batch < 9; batch++ {
		ops := make([]shard.Op, 4)
		assign := make([]int, len(ops))
		r.Route(ops, []int64{0, 0, 0}, assign)
		for _, a := range assign[1:] {
			if a != assign[0] {
				t.Fatalf("round-robin split a batch: %v", assign)
			}
		}
		counts[assign[0]]++
	}
	for i, c := range counts {
		if c != 3 {
			t.Fatalf("instance %d served %d of 9 batches, want 3 (counts %v)", i, c, counts)
		}
	}
}

func TestLeastLoadedPicksIdleInstance(t *testing.T) {
	r, _ := NewRouter(LeastLoaded, 3)
	ops := make([]shard.Op, 2)
	assign := make([]int, len(ops))

	r.Route(ops, []int64{5, 0, 9}, assign)
	if assign[0] != 1 {
		t.Fatalf("loads [5 0 9] routed to %d, want 1", assign[0])
	}
	// Tie on inflight: the instance with fewer cumulatively routed ops
	// wins, so an idle cluster still spreads rather than piling on 0.
	r.Route(ops, []int64{0, 0, 0}, assign)
	if assign[0] == 1 {
		t.Fatalf("tie-break re-picked the instance that just got a batch")
	}
}

func TestAffinityPinsPagesAndSpreadsThem(t *testing.T) {
	const n = 4
	r := NewAffinityRouter(n, DefaultAffinityPrefixBits).(affinityRouter)

	// Every line of one page lands on the same instance.
	page := uint64(0x1234) << DefaultAffinityPrefixBits
	want := r.instanceFor(page)
	for off := uint64(0); off < 1<<DefaultAffinityPrefixBits; off++ {
		if got := r.instanceFor(page + off); got != want {
			t.Fatalf("page split: addr %#x -> %d, addr %#x -> %d", page, want, page+off, got)
		}
	}

	// Across many pages the mapping is roughly uniform: with 4096 pages
	// over 4 instances, expect ~1024 each; allow ±25%.
	counts := make([]int, n)
	for p := uint64(0); p < 4096; p++ {
		counts[r.instanceFor(p<<DefaultAffinityPrefixBits)]++
	}
	for i, c := range counts {
		if c < 768 || c > 1280 {
			t.Fatalf("instance %d got %d of 4096 pages (counts %v), want ~1024", i, c, counts)
		}
	}
}

// With a cost hook installed, the least-loaded router balances
// predicted blocks moved instead of op counts: a stream of expensive
// write batches and cheap read batches should even out so each
// instance carries roughly equal cost, not equal ops.
func TestLeastLoadedHonorsCostHook(t *testing.T) {
	r := &leastLoadedRouter{
		routed: make([]float64, 2),
		cost: func(write bool) float64 {
			if write {
				return 4
			}
			return 1
		},
	}
	route := func(write bool, n int) int {
		ops := make([]shard.Op, n)
		for i := range ops {
			ops[i].Write = write
		}
		assign := make([]int, n)
		r.Route(ops, []int64{0, 0}, assign)
		return assign[0]
	}
	// One write batch (cost 4) then four read batches (cost 1 each):
	// the writes instance must sit out until the reads catch up.
	first := route(true, 1)
	for i := 0; i < 4; i++ {
		if got := route(false, 1); got == first {
			t.Fatalf("read batch %d routed to the write-loaded instance %d before cost evened out (routed %v)", i, got, r.routed)
		}
	}
	// Now both instances carry cost 4: the next batch may go anywhere,
	// but cumulative cost must stay balanced.
	if r.routed[0] != r.routed[1] {
		t.Fatalf("cost imbalance after interleaving: %v", r.routed)
	}
}

// The hook is wired through cluster Config: Wrap must install OpCost
// on a least-loaded router and ignore it for other policies.
func TestConfigOpCostInstalled(t *testing.T) {
	cost := func(write bool) float64 { return 7 }
	c, err := New(core.DefaultOptions(), shard.Config{Shards: 1}, 2, Config{Router: LeastLoaded, OpCost: cost})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ll, ok := c.router.(*leastLoadedRouter)
	if !ok {
		t.Fatalf("router is %T, want *leastLoadedRouter", c.router)
	}
	if ll.cost == nil {
		t.Fatal("Wrap did not install Config.OpCost on the least-loaded router")
	}
	if got := ll.cost(true); got != 7 {
		t.Fatalf("installed cost hook returned %v, want 7", got)
	}

	// Other policies must tolerate (and ignore) the hook.
	c2, err := New(core.DefaultOptions(), shard.Config{Shards: 1}, 2, Config{Router: RoundRobin, OpCost: cost})
	if err != nil {
		t.Fatalf("round-robin with OpCost: %v", err)
	}
	c2.Close()
}
