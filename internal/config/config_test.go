package config

import "testing"

func TestDefaultIsValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestDefaultMatchesTableII(t *testing.T) {
	c := Default()
	if c.CPU.Cores != 8 || c.CPU.IssueWidth != 4 {
		t.Fatal("core parameters do not match Table II")
	}
	if c.CPU.LLCBytes != 8<<20 || c.CPU.LLCWays != 8 || c.CPU.LLCLatency != 20 {
		t.Fatal("LLC parameters do not match Table II")
	}
	if c.DRAM.Channels != 2 || c.DRAM.RanksPerCh != 1 {
		t.Fatal("channel parameters do not match Table II")
	}
	if c.DRAM.BankGroups != 4 || c.DRAM.BanksPerGroup != 4 {
		t.Fatal("bank parameters do not match Table II")
	}
	if c.DRAM.RowsPerBank != 65536 || c.DRAM.BlocksPerRow != 128 {
		t.Fatal("row parameters do not match Table II")
	}
	if c.DRAM.TRCD != 22 || c.DRAM.TRP != 22 || c.DRAM.TCAS != 22 {
		t.Fatal("DRAM timings do not match Table II")
	}
}

func TestBusToCPUConversion(t *testing.T) {
	c := Default()
	if r := c.CPUCyclesPerBusCycle(); r != 2.5 {
		t.Fatalf("clock ratio = %v, want 2.5", r)
	}
	if got := c.BusToCPU(22); got != 55 {
		t.Fatalf("BusToCPU(22) = %d, want 55", got)
	}
	if got := c.BusToCPU(4); got != 10 {
		t.Fatalf("BusToCPU(4) = %d, want 10", got)
	}
}

func TestMemorySize(t *testing.T) {
	c := Default()
	// 2 ch x 1 rank x 16 banks x 64K rows x 8KB rows = 16 GB.
	if got := c.MemorySize(); got != 16<<30 {
		t.Fatalf("memory size = %d, want 16 GiB", got)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero cores", func(c *Config) { c.CPU.Cores = 0 }},
		{"zero issue", func(c *Config) { c.CPU.IssueWidth = 0 }},
		{"zero rob", func(c *Config) { c.CPU.ROBSize = 0 }},
		{"zero mshrs", func(c *Config) { c.CPU.MSHRs = 0 }},
		{"three channels", func(c *Config) { c.DRAM.Channels = 3 }},
		{"zero bank groups", func(c *Config) { c.DRAM.BankGroups = 0 }},
		{"odd blocks per row", func(c *Config) { c.DRAM.BlocksPerRow = 100 }},
		{"three sub-ranks", func(c *Config) { c.DRAM.SubRanks = 3 }},
		{"zero CID", func(c *Config) { c.Attache.CIDBits = 0 }},
		{"16-bit CID", func(c *Config) { c.Attache.CIDBits = 16 }},
		{"tiny md cache", func(c *Config) { c.MDCache.Bytes = 1 }},
		{"high water over depth", func(c *Config) { c.DRAM.WriteHighWater = c.DRAM.WriteBufDepth + 1 }},
		{"low water over high", func(c *Config) { c.DRAM.WriteLowWater = c.DRAM.WriteHighWater }},
	}
	for _, m := range mutations {
		c := Default()
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error", m.name)
		}
	}
}

func TestSystemKindString(t *testing.T) {
	cases := map[SystemKind]string{
		SystemBaseline: "baseline",
		SystemMDCache:  "mdcache",
		SystemAttache:  "attache",
		SystemIdeal:    "ideal",
		SystemKind(9):  "SystemKind(9)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestGeometryConstants(t *testing.T) {
	if LinesPerPage != 64 {
		t.Fatalf("LinesPerPage = %d, want 64 (matches 64-bit LiPR entries)", LinesPerPage)
	}
	if TargetPayload+MetaHeaderBytes != SubRankSize {
		t.Fatal("target payload + header must fill one sub-rank")
	}
}
