// Package config defines the system configurations used across the Attaché
// simulator. The defaults reproduce Table II of the paper (baseline system
// configuration) plus the Attaché-specific parameters from Sections III-IV.
package config

import "fmt"

// Cacheline and sub-rank geometry (paper §I, §II).
const (
	LineSize        = 64 // bytes per cacheline / memory block
	SubRankSize     = 32 // bytes provided by one sub-rank per access
	TargetPayload   = 30 // compressed payload that fits one sub-rank with the 2-byte Metadata-Header
	MetaHeaderBytes = 2  // 15-bit CID + 1-bit XID
	PageSize        = 4096
	LinesPerPage    = PageSize / LineSize // 64 — matches the 64-bit LiPR entry
)

// CheckLevel selects how much runtime self-validation the simulator
// performs (DESIGN.md §8). Checking never changes simulated behaviour or
// results — it only observes and cross-validates them.
type CheckLevel int

const (
	// CheckOff disables all runtime checking (the default; zero overhead).
	CheckOff CheckLevel = iota
	// CheckInvariants enables cheap conservation/timing assertions: every
	// scheduled event fires exactly once, every issued DRAM request
	// retires, per-sub-rank data-bus bursts never overlap, MSHR and queue
	// occupancies stay within bounds.
	CheckInvariants
	// CheckOracle additionally runs the differential oracle on Attaché
	// systems: a functional shadow (compress + scramble + BLEM + a
	// mirrored COPR) driven from the same request stream, asserting
	// returned line data, compression outcomes, and predictions match an
	// ideal oracle-metadata flow bit-for-bit. Slow; for validation runs.
	CheckOracle
)

// String returns the CLI spelling of the level.
func (l CheckLevel) String() string {
	switch l {
	case CheckOff:
		return "off"
	case CheckInvariants:
		return "invariants"
	case CheckOracle:
		return "oracle"
	default:
		return fmt.Sprintf("CheckLevel(%d)", int(l))
	}
}

// ParseCheckLevel converts a CLI string into a CheckLevel.
func ParseCheckLevel(s string) (CheckLevel, error) {
	switch s {
	case "off", "":
		return CheckOff, nil
	case "invariants":
		return CheckInvariants, nil
	case "oracle":
		return CheckOracle, nil
	default:
		return 0, fmt.Errorf("config: unknown check level %q (want off, invariants, or oracle)", s)
	}
}

// SystemKind selects which memory-system organization a simulation models.
type SystemKind int

const (
	// SystemBaseline is the uncompressed, non-sub-ranked system every
	// result is normalized against.
	SystemBaseline SystemKind = iota
	// SystemMDCache is sub-ranking + compression with a Metadata-Cache
	// (the prior-work organization Attaché is compared to).
	SystemMDCache
	// SystemAttache is sub-ranking + compression with BLEM + COPR.
	SystemAttache
	// SystemIdeal is sub-ranking + compression with free oracle metadata:
	// no metadata traffic, perfect pre-read compressibility knowledge.
	SystemIdeal
	// SystemECC models the Deb et al. alternative the paper contrasts in
	// §VII-A: metadata rides for free in ECC storage (so, like BLEM, it
	// arrives with the data), but the pre-read guess comes from a simple
	// last-outcome predictor instead of COPR.
	SystemECC
)

// String returns the canonical name used in tables and figures.
func (k SystemKind) String() string {
	switch k {
	case SystemBaseline:
		return "baseline"
	case SystemMDCache:
		return "mdcache"
	case SystemAttache:
		return "attache"
	case SystemIdeal:
		return "ideal"
	case SystemECC:
		return "ecc-meta"
	default:
		return fmt.Sprintf("SystemKind(%d)", int(k))
	}
}

// CPU holds the processor-side parameters (Table II).
type CPU struct {
	Cores      int // 8 OoO cores
	ClockGHz   float64
	IssueWidth int   // 4
	ROBSize    int   // reorder-buffer window in instructions
	MSHRs      int   // outstanding LLC misses per core
	LLCBytes   int64 // 8 MB shared
	LLCWays    int   // 8
	LLCLatency int64 // 20 cycles
	// LLCPrefetch enables the LLC's next-line prefetcher (off by
	// default: Table II does not specify one).
	LLCPrefetch bool
}

// DRAM holds the memory-system parameters (Table II). All timing values are
// in memory-bus cycles; CPUCyclesPerBusCycle converts them into the engine's
// CPU-cycle clock.
type DRAM struct {
	Channels        int // 2
	RanksPerCh      int // 1
	BankGroups      int // 4
	BanksPerGroup   int // 4
	RowsPerBank     int // 64K
	BlocksPerRow    int // 128 x 64B = 8KB row
	BusMHz          float64
	TRCD, TRP, TCAS int64 // 22-22-22 bus cycles
	TRFC            int64 // refresh cycle time, bus cycles (350ns)
	TREFI           int64 // refresh interval, bus cycles (7.8us)
	// TFAW is the four-activate window in bus cycles; at most four row
	// activations may issue to a (sub-)rank within it. Table II does not
	// specify it, so the default configuration disables it (0); the
	// ablation benches exercise DDR4-typical values (~28).
	TFAW           int64
	BurstBusCycles int64 // BL8: 4 bus cycles per 64B (or 32B per sub-rank)
	SubRanks       int   // 2 when sub-ranking is enabled

	// Controller queueing.
	ReadQueueDepth int
	WriteBufDepth  int
	WriteHighWater int // drain writes above this occupancy
	WriteLowWater  int // stop draining below this

	// SchedFCFS disables the row-hit-first scheduler (FR-FCFS, the
	// default) in favor of strict first-come-first-served — an ablation
	// knob (DESIGN.md §7).
	SchedFCFS bool
	// ClosedPage precharges a bank right after each access instead of
	// keeping the row open (open-page is the default).
	ClosedPage bool
}

// Attache holds the Attaché framework parameters (Sections III-IV).
type Attache struct {
	CIDBits int // 15
	// COPR component sizes.
	PaPRBytes        int // 192 KB
	PaPRWays         int
	LiPRBytes        int // 176 KB
	LiPRWays         int
	GICounters       int  // eight 2-bit counters
	EnableGI         bool // ablation switches (Fig. 17)
	EnablePaPR       bool
	EnableLiPR       bool
	PredictorLatency int64 // 8 CPU cycles, same as the MD-cache lookup
}

// MDCache holds the Metadata-Cache baseline parameters (§II-G, §IV-C1).
type MDCache struct {
	Bytes           int    // 1 MB by default ("optimistically impractical")
	Ways            int    // 16
	Policy          string // "lru", "drrip", "ship"
	Latency         int64  // 8 CPU cycles lookup
	MetaBitsPerLine int    // 4 bits of metadata per data line (§IV-A1)
}

// Config bundles a full system configuration.
type Config struct {
	CPU     CPU
	DRAM    DRAM
	Attache Attache
	MDCache MDCache
	// Check selects the runtime self-validation level (DESIGN.md §8).
	// It never changes simulated timing or results.
	Check CheckLevel
}

// Default returns the Table II baseline configuration with the paper's
// Attaché parameters.
func Default() Config {
	return Config{
		CPU: CPU{
			Cores:      8,
			ClockGHz:   4.0,
			IssueWidth: 4,
			ROBSize:    192,
			MSHRs:      16,
			LLCBytes:   8 << 20,
			LLCWays:    8,
			LLCLatency: 20,
		},
		DRAM: DRAM{
			Channels:       2,
			RanksPerCh:     1,
			BankGroups:     4,
			BanksPerGroup:  4,
			RowsPerBank:    64 * 1024,
			BlocksPerRow:   128,
			BusMHz:         1600,
			TRCD:           22,
			TRP:            22,
			TCAS:           22,
			TRFC:           560,   // 350 ns @ 1600 MHz
			TREFI:          12480, // 7.8 us @ 1600 MHz
			BurstBusCycles: 4,
			SubRanks:       2,
			ReadQueueDepth: 64,
			WriteBufDepth:  64,
			WriteHighWater: 48,
			WriteLowWater:  16,
		},
		Attache: Attache{
			CIDBits:          15,
			PaPRBytes:        192 << 10,
			PaPRWays:         16,
			LiPRBytes:        176 << 10,
			LiPRWays:         16,
			GICounters:       8,
			EnableGI:         true,
			EnablePaPR:       true,
			EnableLiPR:       true,
			PredictorLatency: 8,
		},
		MDCache: MDCache{
			Bytes:           1 << 20,
			Ways:            16,
			Policy:          "lru",
			Latency:         8,
			MetaBitsPerLine: 4,
		},
	}
}

// CPUCyclesPerBusCycle reports the CPU-clock to memory-bus-clock ratio
// (4 GHz / 1600 MHz = 2.5). Timing conversion multiplies bus cycles by this
// and rounds to the nearest CPU cycle.
func (c Config) CPUCyclesPerBusCycle() float64 {
	return c.CPU.ClockGHz * 1000 / c.DRAM.BusMHz
}

// BusToCPU converts a bus-cycle count into CPU cycles.
func (c Config) BusToCPU(busCycles int64) int64 {
	return int64(float64(busCycles)*c.CPUCyclesPerBusCycle() + 0.5)
}

// MemorySize reports the modeled main-memory capacity in bytes.
func (c Config) MemorySize() int64 {
	rowBytes := int64(c.DRAM.BlocksPerRow) * LineSize
	banks := int64(c.DRAM.BankGroups * c.DRAM.BanksPerGroup)
	return int64(c.DRAM.Channels) * int64(c.DRAM.RanksPerCh) * banks * int64(c.DRAM.RowsPerBank) * rowBytes
}

// Validate reports an error for configurations the simulator cannot model.
func (c Config) Validate() error {
	switch {
	case c.CPU.Cores <= 0:
		return fmt.Errorf("config: cores must be positive, got %d", c.CPU.Cores)
	case c.CPU.IssueWidth <= 0:
		return fmt.Errorf("config: issue width must be positive, got %d", c.CPU.IssueWidth)
	case c.CPU.ROBSize <= 0:
		return fmt.Errorf("config: ROB size must be positive, got %d", c.CPU.ROBSize)
	case c.CPU.MSHRs <= 0:
		return fmt.Errorf("config: MSHRs must be positive, got %d", c.CPU.MSHRs)
	case c.DRAM.Channels <= 0 || c.DRAM.Channels&(c.DRAM.Channels-1) != 0:
		return fmt.Errorf("config: channels must be a positive power of two, got %d", c.DRAM.Channels)
	case c.DRAM.BankGroups <= 0 || c.DRAM.BanksPerGroup <= 0:
		return fmt.Errorf("config: bank geometry must be positive")
	case c.DRAM.BlocksPerRow <= 0 || c.DRAM.BlocksPerRow&(c.DRAM.BlocksPerRow-1) != 0:
		return fmt.Errorf("config: blocks per row must be a positive power of two, got %d", c.DRAM.BlocksPerRow)
	case c.DRAM.SubRanks != 1 && c.DRAM.SubRanks != 2:
		return fmt.Errorf("config: sub-ranks must be 1 or 2, got %d", c.DRAM.SubRanks)
	case c.Attache.CIDBits < 1 || c.Attache.CIDBits > 15:
		return fmt.Errorf("config: CID bits must be in [1,15], got %d", c.Attache.CIDBits)
	case c.MDCache.Bytes < LineSize:
		return fmt.Errorf("config: metadata cache smaller than one line")
	case c.DRAM.WriteHighWater > c.DRAM.WriteBufDepth:
		return fmt.Errorf("config: write high watermark exceeds buffer depth")
	case c.DRAM.WriteLowWater >= c.DRAM.WriteHighWater:
		return fmt.Errorf("config: write low watermark must be below high watermark")
	case c.Check < CheckOff || c.Check > CheckOracle:
		return fmt.Errorf("config: unknown check level %d", int(c.Check))
	}
	return nil
}
