package core

import "errors"

// Typed sentinel errors for the framework and memory layers. Callers
// match them with errors.Is; every returned error wraps one of these with
// operation-specific context (address, sizes).
var (
	// ErrBadLineSize reports a Store/Write payload that is not exactly
	// LineSize bytes.
	ErrBadLineSize = errors.New("attache: line must be exactly 64 bytes")

	// ErrOutOfRange reports a parameter or address outside its configured
	// range (CID width outside [1,15], a line address beyond an engine's
	// configured capacity).
	ErrOutOfRange = errors.New("attache: out of range")

	// ErrNeverWritten reports a read of a line address that was never
	// written. A real controller would return whatever junk DRAM holds,
	// which no software relies on, so the functional memory rejects it.
	ErrNeverWritten = errors.New("attache: line was never written")

	// ErrOverloaded reports an op shed by admission control: the owning
	// shard's queue was full when the op arrived. The op was never
	// enqueued, so it had no effect; callers should back off and retry
	// (the HTTP layer maps it to 429 with Retry-After).
	ErrOverloaded = errors.New("attache: overloaded")
)
