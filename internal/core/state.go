package core

import (
	"fmt"
	"sort"

	"attache/internal/blem"
	"attache/internal/copr"
)

// Delete removes the line at lineAddr, keeping the compressed-line and
// RA-occupancy gauges consistent. It reports whether the line existed.
// The tiered backend uses it to keep residency exclusive: promoting a
// line to the near tier removes the far copy.
func (m *Memory) Delete(lineAddr uint64) bool {
	st, ok := m.lines[lineAddr]
	if !ok {
		return false
	}
	delete(m.lines, lineAddr)
	if m.shadow != nil {
		delete(m.shadow, lineAddr)
	}
	if st.Compressed {
		m.stats.CompressedLines.Dec()
	}
	if st.Collision {
		m.stats.RAOccupancy.Dec()
	}
	return true
}

// Contains reports whether a line is currently stored at lineAddr.
func (m *Memory) Contains(lineAddr uint64) bool {
	_, ok := m.lines[lineAddr]
	return ok
}

// Options reports the options the memory was built with — the other
// half of what RestoreMemory needs besides ExportState.
func (m *Memory) Options() Options { return m.f.opts }

// LineState is the serializable image of one stored line.
type LineState struct {
	Addr       uint64
	Compressed bool
	Collision  bool
	Blocks     [2][SubRankBlock]byte
}

// MemoryState is the serializable image of a whole Memory: stored lines,
// traffic counters, BLEM state (CID + Replacement Area), and predictor
// state. It is what the snapv1 codec persists per shard.
type MemoryState struct {
	// Lines is sorted by address; addresses must be unique.
	Lines []LineState
	// Stats carries the eight counters; the derived Lines and
	// PredictionAccuracy fields are recomputed and ignored on restore.
	Stats StatsSnapshot
	Blem  blem.State
	// Copr is nil when the predictor is disabled.
	Copr *copr.State
}

// ExportState captures the memory's full state as a plain value tree.
// Everything is copied: the state stays stable while the memory serves.
func (m *Memory) ExportState() *MemoryState {
	st := &MemoryState{
		Lines: make([]LineState, 0, len(m.lines)),
		Stats: m.StatsSnapshot(),
		Blem:  m.f.Blem.ExportState(),
	}
	for addr, line := range m.lines {
		st.Lines = append(st.Lines, LineState{
			Addr:       addr,
			Compressed: line.Compressed,
			Collision:  line.Collision,
			Blocks:     line.Blocks,
		})
	}
	sort.Slice(st.Lines, func(i, j int) bool { return st.Lines[i].Addr < st.Lines[j].Addr })
	if m.f.Copr != nil {
		st.Copr = m.f.Copr.ExportState()
	}
	return st
}

// RestoreMemory builds a Memory from opts and overwrites its state from
// a snapshot, so that every subsequent operation behaves exactly as it
// would have on the original. The snapshot must match the configuration:
// predictor presence and geometry are validated, and the gauge counters
// must agree with the stored lines.
func RestoreMemory(opts Options, st *MemoryState) (*Memory, error) {
	m, err := NewMemory(opts)
	if err != nil {
		return nil, err
	}
	var compressed, collided uint64
	for i, l := range st.Lines {
		if _, dup := m.lines[l.Addr]; dup {
			return nil, fmt.Errorf("core: snapshot stores line %#x twice", l.Addr)
		}
		if i > 0 && st.Lines[i-1].Addr > l.Addr {
			return nil, fmt.Errorf("core: snapshot lines not sorted at index %d", i)
		}
		m.lines[l.Addr] = StoredLine{Blocks: l.Blocks, Compressed: l.Compressed, Collision: l.Collision}
		if l.Compressed {
			compressed++
		}
		if l.Collision {
			collided++
		}
	}
	if st.Stats.CompressedLines != compressed {
		return nil, fmt.Errorf("core: snapshot compressed-lines gauge %d, but %d lines are compressed",
			st.Stats.CompressedLines, compressed)
	}
	if st.Stats.RAOccupancy != collided {
		return nil, fmt.Errorf("core: snapshot RA-occupancy gauge %d, but %d lines are collided",
			st.Stats.RAOccupancy, collided)
	}
	m.stats.Reads.Restore(st.Stats.Reads)
	m.stats.Writes.Restore(st.Stats.Writes)
	m.stats.BlocksRead.Restore(st.Stats.BlocksRead)
	m.stats.BlocksWritten.Restore(st.Stats.BlocksWritten)
	m.stats.Mispredictions.Restore(st.Stats.Mispredictions)
	m.stats.RAAccesses.Restore(st.Stats.RAAccesses)
	m.stats.CompressedLines.Restore(st.Stats.CompressedLines)
	m.stats.RAOccupancy.Restore(st.Stats.RAOccupancy)
	if err := m.f.Blem.RestoreState(st.Blem); err != nil {
		return nil, err
	}
	if (st.Copr != nil) != (m.f.Copr != nil) {
		return nil, fmt.Errorf("core: snapshot predictor presence (%v) does not match configuration (%v)",
			st.Copr != nil, m.f.Copr != nil)
	}
	if st.Copr != nil {
		if err := m.f.Copr.RestoreState(st.Copr); err != nil {
			return nil, err
		}
	}
	return m, nil
}
