package core

import (
	"math/rand"
	"testing"
)

// TestCorruptedStoredLinesNeverPanic injects random bit flips into stored
// images and verifies the read path degrades gracefully: it may return an
// error (malformed compressed payload) or wrong bytes (silent corruption,
// as in real non-ECC DRAM), but it must never panic.
func TestCorruptedStoredLinesNeverPanic(t *testing.T) {
	f := newFramework(t)
	rng := rand.New(rand.NewSource(99))
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("read path panicked on corrupted data: %v", r)
		}
	}()
	for trial := 0; trial < 3000; trial++ {
		var data []byte
		if trial%2 == 0 {
			data = compressibleLine(trial)
		} else {
			data = randomLine(rng)
		}
		st, _, err := f.Store(uint64(trial), data)
		if err != nil {
			t.Fatal(err)
		}
		// Flip 1-8 random bits across the stored image.
		for n := 1 + rng.Intn(8); n > 0; n-- {
			block := rng.Intn(2)
			byteIdx := rng.Intn(SubRankBlock)
			st.Blocks[block][byteIdx] ^= 1 << uint(rng.Intn(8))
		}
		// Load must not panic; errors and wrong data are acceptable.
		_, _, _ = f.Load(uint64(trial), st)
	}
}

// TestTruncatedPayloadErrors: zeroing the payload region of a compressed
// block can produce an undecodable image; the error must be reported, not
// panicked, and must identify the line.
func TestCorruptionDetectedWhenDecodable(t *testing.T) {
	f := newFramework(t)
	data := compressibleLine(3)
	st, _, err := f.Store(5, data)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Compressed {
		t.Fatal("expected compressed store")
	}
	// Preserve the CID/XID header but scramble the payload bytes with a
	// value that cannot begin a valid packed payload once descrambled.
	for i := 2; i < SubRankBlock; i++ {
		st.Blocks[0][i] ^= 0xA5
	}
	got, _, err := f.Load(5, st)
	if err == nil && string(got) == string(data) {
		t.Fatal("corrupted payload round-tripped to original data")
	}
}
