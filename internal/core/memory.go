package core

import (
	"bytes"
	"fmt"

	"attache/internal/stats"
)

// MemoryStats aggregates traffic through a Memory in the units the paper
// reports.
type MemoryStats struct {
	Reads           stats.Counter
	Writes          stats.Counter
	BlocksRead      stats.Counter // 32-byte sub-rank transfers
	BlocksWritten   stats.Counter
	Mispredictions  stats.Counter
	RAAccesses      stats.Counter
	CompressedLines stats.Counter // current count of compressed lines
}

// BandwidthSavings reports the fraction of 32-byte transfers avoided
// relative to an uncompressed system (2 blocks per access).
func (s *MemoryStats) BandwidthSavings() float64 {
	total := s.Reads.Value() + s.Writes.Value()
	if total == 0 {
		return 0
	}
	moved := s.BlocksRead.Value() + s.BlocksWritten.Value()
	return 1 - float64(moved)/float64(2*total)
}

// Memory is a functional compressed memory backed by the Attaché
// framework: a sparse map of stored lines with exact Store/Load
// round-trips. It is the container the examples build on.
type Memory struct {
	f     *Framework
	lines map[uint64]StoredLine
	// shadow, when non-nil (EnableCheck), keeps the raw bytes of every
	// written line so Read can assert the compress/scramble/BLEM
	// round-trip returned exactly what was stored.
	shadow map[uint64][LineSize]byte
	Stats  MemoryStats
}

// NewMemory builds a memory with its own framework instance.
func NewMemory(opts Options) (*Memory, error) {
	f, err := New(opts)
	if err != nil {
		return nil, err
	}
	return &Memory{f: f, lines: make(map[uint64]StoredLine)}, nil
}

// Framework exposes the underlying framework (predictor stats, BLEM
// counters).
func (m *Memory) Framework() *Framework { return m.f }

// EnableCheck turns on the memory's self-check: every Write keeps a raw
// copy of the line and every Read compares the round-tripped bytes
// against it, failing loudly on the first divergence. Costs one 64-byte
// copy per line; off by default.
func (m *Memory) EnableCheck() {
	if m.shadow == nil {
		m.shadow = make(map[uint64][LineSize]byte)
	}
}

// Write stores a 64-byte line at lineAddr.
func (m *Memory) Write(lineAddr uint64, data []byte) error {
	prev, existed := m.lines[lineAddr]
	st, tr, err := m.f.Store(lineAddr, data)
	if err != nil {
		return err
	}
	m.lines[lineAddr] = st
	if m.shadow != nil {
		var raw [LineSize]byte
		copy(raw[:], data)
		m.shadow[lineAddr] = raw
	}
	m.Stats.Writes.Inc()
	m.Stats.BlocksWritten.Add(uint64(tr.BlocksTouched))
	if tr.RAAccess {
		m.Stats.RAAccesses.Inc()
	}
	switch {
	case st.Compressed && (!existed || !prev.Compressed):
		m.Stats.CompressedLines.Inc()
	case !st.Compressed && existed && prev.Compressed:
		m.Stats.CompressedLines.Dec()
	}
	return nil
}

// Read loads the 64-byte line at lineAddr. Reading a never-written line
// is an error — a real controller would return whatever junk DRAM holds,
// which no software relies on.
func (m *Memory) Read(lineAddr uint64) ([]byte, error) {
	st, ok := m.lines[lineAddr]
	if !ok {
		return nil, fmt.Errorf("core: line %d was never written", lineAddr)
	}
	data, tr, err := m.f.Load(lineAddr, st)
	if err != nil {
		return nil, err
	}
	if m.shadow != nil {
		if want, ok := m.shadow[lineAddr]; ok && !bytes.Equal(data, want[:]) {
			return nil, fmt.Errorf("core: self-check failed at line %#x: read bytes differ from last write", lineAddr)
		}
	}
	m.Stats.Reads.Inc()
	m.Stats.BlocksRead.Add(uint64(tr.BlocksTouched))
	if tr.Mispredicted {
		m.Stats.Mispredictions.Inc()
	}
	if tr.RAAccess {
		m.Stats.RAAccesses.Inc()
	}
	return data, nil
}

// Lines reports how many distinct lines have been written.
func (m *Memory) Lines() int { return len(m.lines) }

// PredictionAccuracy reports COPR's running accuracy, or 1 when the
// predictor is disabled.
func (m *Memory) PredictionAccuracy() float64 {
	if m.f.Copr == nil {
		return 1
	}
	return m.f.Copr.Accuracy()
}
