package core

import (
	"bytes"
	"fmt"

	"attache/internal/stats"
)

// MemoryStats aggregates traffic through a Memory in the units the paper
// reports.
type MemoryStats struct {
	Reads           stats.Counter
	Writes          stats.Counter
	BlocksRead      stats.Counter // 32-byte sub-rank transfers
	BlocksWritten   stats.Counter
	Mispredictions  stats.Counter
	RAAccesses      stats.Counter
	CompressedLines stats.Counter // current count of compressed lines
	RAOccupancy     stats.Counter // current count of lines parked in the Replacement Area
}

// BandwidthSavings reports the fraction of 32-byte transfers avoided
// relative to an uncompressed system (2 blocks per access).
func (s *MemoryStats) BandwidthSavings() float64 {
	total := s.Reads.Value() + s.Writes.Value()
	if total == 0 {
		return 0
	}
	moved := s.BlocksRead.Value() + s.BlocksWritten.Value()
	return 1 - float64(moved)/float64(2*total)
}

// StatsSnapshot is an immutable copy of a Memory's counters plus its
// derived metrics, taken at one instant. Snapshots are plain values:
// safe to retain, compare, serialize, and merge across shards.
type StatsSnapshot struct {
	Reads           uint64 `json:"reads"`
	Writes          uint64 `json:"writes"`
	BlocksRead      uint64 `json:"blocks_read"`
	BlocksWritten   uint64 `json:"blocks_written"`
	Mispredictions  uint64 `json:"mispredictions"`
	RAAccesses      uint64 `json:"ra_accesses"`
	CompressedLines uint64 `json:"compressed_lines"`
	RAOccupancy     uint64 `json:"ra_occupancy"`
	Lines           uint64 `json:"lines"`
	// PredictionAccuracy is COPR's running accuracy at snapshot time
	// (1 when the predictor is disabled). When snapshots are merged with
	// Accumulate it becomes the reads-weighted mean across shards.
	PredictionAccuracy float64 `json:"prediction_accuracy"`
}

// BandwidthSavings reports the fraction of 32-byte transfers the snapshot
// saw avoided relative to an uncompressed system.
func (s StatsSnapshot) BandwidthSavings() float64 {
	total := s.Reads + s.Writes
	if total == 0 {
		return 0
	}
	return 1 - float64(s.BlocksRead+s.BlocksWritten)/float64(2*total)
}

// CompressedLineRatio reports the fraction of stored lines currently
// compressed, or 0 when the memory is empty.
func (s StatsSnapshot) CompressedLineRatio() float64 {
	if s.Lines == 0 {
		return 0
	}
	return float64(s.CompressedLines) / float64(s.Lines)
}

// Accumulate folds another snapshot into s: counters add, and
// PredictionAccuracy becomes the reads-weighted mean of the two, so
// merging per-shard snapshots yields fleet-level metrics.
func (s *StatsSnapshot) Accumulate(o StatsSnapshot) {
	if s.Reads+o.Reads > 0 {
		s.PredictionAccuracy = (s.PredictionAccuracy*float64(s.Reads) +
			o.PredictionAccuracy*float64(o.Reads)) / float64(s.Reads+o.Reads)
	}
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.BlocksRead += o.BlocksRead
	s.BlocksWritten += o.BlocksWritten
	s.Mispredictions += o.Mispredictions
	s.RAAccesses += o.RAAccesses
	s.CompressedLines += o.CompressedLines
	s.RAOccupancy += o.RAOccupancy
	s.Lines += o.Lines
}

// Memory is a functional compressed memory backed by the Attaché
// framework: a sparse map of stored lines with exact Store/Load
// round-trips. It is the container the examples build on.
//
// A Memory is NOT safe for concurrent use: Read mutates the COPR
// predictor and the stats counters, so concurrent Read/Write or
// Read/PredictionAccuracy calls race. The concurrent entry point is the
// sharded engine (internal/shard, attache.NewEngine), which guards each
// shard's Memory with an execution lock — note "exclusive lock", not
// "dedicated goroutine": an engine may apply ops on whichever goroutine
// submitted them (the inline fast path), so Memory must not assume any
// goroutine affinity, only mutual exclusion.
type Memory struct {
	f     *Framework
	lines map[uint64]StoredLine
	// shadow, when non-nil (EnableCheck), keeps the raw bytes of every
	// written line so Read can assert the compress/scramble/BLEM
	// round-trip returned exactly what was stored.
	shadow map[uint64][LineSize]byte
	// stats holds the memory's traffic counters. Readers go through
	// StatsSnapshot, which returns an immutable copy that stays coherent
	// while an engine is running.
	stats MemoryStats
}

// NewMemory builds a memory with its own framework instance.
func NewMemory(opts Options) (*Memory, error) {
	f, err := New(opts)
	if err != nil {
		return nil, err
	}
	return &Memory{f: f, lines: make(map[uint64]StoredLine)}, nil
}

// Framework exposes the underlying framework (predictor stats, BLEM
// counters).
func (m *Memory) Framework() *Framework { return m.f }

// EnableCheck turns on the memory's self-check: every Write keeps a raw
// copy of the line and every Read compares the round-tripped bytes
// against it, failing loudly on the first divergence. Costs one 64-byte
// copy per line; off by default.
func (m *Memory) EnableCheck() {
	if m.shadow == nil {
		m.shadow = make(map[uint64][LineSize]byte)
	}
}

// Write stores a 64-byte line at lineAddr.
func (m *Memory) Write(lineAddr uint64, data []byte) error {
	prev, existed := m.lines[lineAddr]
	st, tr, err := m.f.Store(lineAddr, data)
	if err != nil {
		return err
	}
	m.lines[lineAddr] = st
	if m.shadow != nil {
		var raw [LineSize]byte
		copy(raw[:], data)
		m.shadow[lineAddr] = raw
	}
	m.stats.Writes.Inc()
	m.stats.BlocksWritten.Add(uint64(tr.BlocksTouched))
	if tr.RAAccess {
		m.stats.RAAccesses.Inc()
	}
	switch {
	case st.Compressed && (!existed || !prev.Compressed):
		m.stats.CompressedLines.Inc()
	case !st.Compressed && existed && prev.Compressed:
		m.stats.CompressedLines.Dec()
	}
	switch {
	case st.Collision && (!existed || !prev.Collision):
		m.stats.RAOccupancy.Inc()
	case !st.Collision && existed && prev.Collision:
		m.stats.RAOccupancy.Dec()
	}
	return nil
}

// Read loads the 64-byte line at lineAddr. Reading a never-written line
// returns ErrNeverWritten.
func (m *Memory) Read(lineAddr uint64) ([]byte, error) {
	st, ok := m.lines[lineAddr]
	if !ok {
		return nil, fmt.Errorf("core: line %#x: %w", lineAddr, ErrNeverWritten)
	}
	data, tr, err := m.f.Load(lineAddr, st)
	if err != nil {
		return nil, err
	}
	if m.shadow != nil {
		if want, ok := m.shadow[lineAddr]; ok && !bytes.Equal(data, want[:]) {
			return nil, fmt.Errorf("core: self-check failed at line %#x: read bytes differ from last write", lineAddr)
		}
	}
	m.stats.Reads.Inc()
	m.stats.BlocksRead.Add(uint64(tr.BlocksTouched))
	if tr.Mispredicted {
		m.stats.Mispredictions.Inc()
	}
	if tr.RAAccess {
		m.stats.RAAccesses.Inc()
	}
	return data, nil
}

// BatchRead loads the lines at addrs in order. It fails fast: on the
// first error it returns the successfully read prefix alongside an error
// that names the failing index and address and wraps the cause (so
// errors.Is sees ErrNeverWritten etc.). Per-op failure isolation lives
// one level up, in the sharded engine's Do.
func (m *Memory) BatchRead(addrs []uint64) ([][]byte, error) {
	out := make([][]byte, 0, len(addrs))
	for i, a := range addrs {
		data, err := m.Read(a)
		if err != nil {
			return out, fmt.Errorf("core: batch read op %d (addr %#x): %w", i, a, err)
		}
		out = append(out, data)
	}
	return out, nil
}

// BatchWrite stores lines[i] at addrs[i] in order, failing fast like
// BatchRead. The two slices must be the same length.
func (m *Memory) BatchWrite(addrs []uint64, lines [][]byte) error {
	if len(addrs) != len(lines) {
		return fmt.Errorf("core: batch write has %d addrs but %d lines", len(addrs), len(lines))
	}
	for i, a := range addrs {
		if err := m.Write(a, lines[i]); err != nil {
			return fmt.Errorf("core: batch write op %d (addr %#x): %w", i, a, err)
		}
	}
	return nil
}

// StatsSnapshot returns an immutable copy of the memory's counters and
// derived metrics. This is the supported way to read stats: the returned
// value never changes, so callers can hold it across further traffic.
func (m *Memory) StatsSnapshot() StatsSnapshot {
	return StatsSnapshot{
		Reads:              m.stats.Reads.Value(),
		Writes:             m.stats.Writes.Value(),
		BlocksRead:         m.stats.BlocksRead.Value(),
		BlocksWritten:      m.stats.BlocksWritten.Value(),
		Mispredictions:     m.stats.Mispredictions.Value(),
		RAAccesses:         m.stats.RAAccesses.Value(),
		CompressedLines:    m.stats.CompressedLines.Value(),
		RAOccupancy:        m.stats.RAOccupancy.Value(),
		Lines:              uint64(len(m.lines)),
		PredictionAccuracy: m.PredictionAccuracy(),
	}
}

// Lines reports how many distinct lines have been written.
func (m *Memory) Lines() int { return len(m.lines) }

// PredictionAccuracy reports COPR's running accuracy, or 1 when the
// predictor is disabled. Like every Memory method it must not race with
// Read/Write; concurrent callers go through the sharded engine.
func (m *Memory) PredictionAccuracy() float64 {
	if m.f.Copr == nil {
		return 1
	}
	return m.f.Copr.Accuracy()
}
