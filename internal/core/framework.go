// Package core implements the Attaché framework itself — the paper's
// primary contribution (§III-IV): the memory-controller-side read and
// write flows that blend metadata into data (BLEM), predict
// compressibility before reads (COPR), and compress/scramble line
// contents on the way to memory.
//
// The package is fully functional: Store/Load operate on real 64-byte
// lines and return the exact bytes written, while reporting the access
// trace (sub-rank blocks touched, predictions, Replacement Area traffic)
// that the performance simulator models at scale. Memory wraps the
// framework into a usable compressed-memory container.
package core

import (
	"fmt"

	"attache/internal/blem"
	"attache/internal/compress"
	"attache/internal/copr"
	"attache/internal/scramble"
)

// LineSize is the framework's access granularity.
const LineSize = 64

// SubRankBlock is half a line: what one sub-rank delivers per access.
const SubRankBlock = 32

// Options configures a framework instance.
type Options struct {
	// CIDBits is the Compression ID width (15 in the paper).
	CIDBits int
	// Seed derives the boot-time CID value and scrambler key.
	Seed int64
	// Predictor configures COPR; zero value uses copr.DefaultConfig.
	Predictor copr.Config
	// DisablePredictor runs BLEM-only (always fetch conservatively).
	DisablePredictor bool
	// ExtendedCompression adds the CPack dictionary codec to the engine —
	// the multi-algorithm configuration addressed by the CID information
	// bits of §IV-A5.
	ExtendedCompression bool
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{CIDBits: 15, Seed: 0x41747461, Predictor: copr.DefaultConfig()}
}

// StoredLine is the physical image of one line: two sub-rank blocks.
// Compressed lines live entirely in Blocks[0] (header + packed payload);
// uncompressed lines span both blocks.
type StoredLine struct {
	Blocks     [2][SubRankBlock]byte
	Compressed bool
	Collision  bool
}

// AccessTrace reports what one framework operation cost, in the units the
// paper's evaluation counts.
type AccessTrace struct {
	// BlocksTouched is the number of 32-byte sub-rank transfers (a
	// baseline uncompressed system always spends 2 per line).
	BlocksTouched int
	// PredictedCompressed / ActualCompressed describe the COPR outcome
	// for reads.
	PredictedCompressed bool
	ActualCompressed    bool
	Mispredicted        bool
	// RAAccess marks a Replacement Area read or write.
	RAAccess bool
}

// Framework is one memory controller's Attaché instance.
type Framework struct {
	opts Options
	Comp *compress.Engine
	Scr  *scramble.Scrambler
	Blem *blem.Engine
	Copr *copr.Predictor
}

// New builds a framework.
func New(opts Options) (*Framework, error) {
	if opts.CIDBits < 1 || opts.CIDBits > 15 {
		return nil, fmt.Errorf("core: CID width %d not in [1,15]: %w", opts.CIDBits, ErrOutOfRange)
	}
	eng := compress.NewEngine()
	if opts.ExtendedCompression {
		eng = compress.NewExtendedEngine()
	}
	f := &Framework{
		opts: opts,
		Comp: eng,
		Scr:  scramble.New(uint64(opts.Seed) * 0x9E3779B97F4A7C15),
		Blem: blem.NewEngine(opts.CIDBits, opts.Seed),
	}
	if !opts.DisablePredictor {
		cfg := opts.Predictor
		if cfg.MemorySize == 0 {
			cfg = copr.DefaultConfig()
		}
		f.Copr = copr.New(cfg)
	}
	return f, nil
}

// Store runs the write path of Fig. 9(a-c): compress, scramble, and blend
// the metadata header, parking a displaced bit in the Replacement Area on
// a CID collision. data must be exactly 64 bytes.
func (f *Framework) Store(lineAddr uint64, data []byte) (StoredLine, AccessTrace, error) {
	if len(data) != LineSize {
		return StoredLine{}, AccessTrace{}, fmt.Errorf("core: Store needs a %d-byte line, got %d: %w", LineSize, len(data), ErrBadLineSize)
	}
	var out StoredLine
	tr := AccessTrace{}

	c := f.Comp.Compress(data)
	if c.Algo != compress.AlgoNone {
		packed := c.Pack()
		f.Scr.Apply(lineAddr, packed)
		block, err := f.Blem.PackCompressed(packed)
		if err != nil {
			return StoredLine{}, tr, err
		}
		out.Blocks[0] = block
		out.Compressed = true
		tr.ActualCompressed = true
		tr.BlocksTouched = 1
	} else {
		scrambled := f.Scr.Scrambled(lineAddr, data)
		stored, collision := f.Blem.StoreUncompressed(lineAddr, scrambled)
		copy(out.Blocks[0][:], stored[:SubRankBlock])
		copy(out.Blocks[1][:], stored[SubRankBlock:])
		out.Collision = collision
		tr.BlocksTouched = 2
		if collision {
			tr.RAAccess = true
		}
	}
	if f.Copr != nil {
		// The controller knows the line's compressibility on writes and
		// keeps the predictor warm with it; no prediction was consulted,
		// so this trains without scoring accuracy.
		f.Copr.Train(lineAddr*LineSize, out.Compressed)
	}
	return out, tr, nil
}

// Load runs the read path of Fig. 9(d-f): predict with COPR, fetch the
// predicted sub-rank block(s), classify via the blended header, correct a
// misprediction with the remaining block, consult the Replacement Area on
// a collision, then descramble and decompress.
func (f *Framework) Load(lineAddr uint64, stored StoredLine) ([]byte, AccessTrace, error) {
	tr := AccessTrace{ActualCompressed: stored.Compressed}
	if f.Copr != nil {
		tr.PredictedCompressed, _ = f.Copr.Predict(lineAddr * LineSize)
	} else {
		tr.PredictedCompressed = false // conservative: fetch both halves
	}

	if tr.PredictedCompressed {
		tr.BlocksTouched = 1 // fetched the header-bearing block only
	} else {
		tr.BlocksTouched = 2
	}

	cls := f.Blem.Classify(stored.Blocks[0][:])
	var data []byte
	switch cls {
	case blem.ClassCompressed:
		packed := make([]byte, blem.MaxPayload)
		copy(packed, blem.PayloadOf(stored.Blocks[0][:]))
		f.Scr.Apply(lineAddr, packed)
		n, err := compress.MeasurePacked(packed)
		if err != nil {
			return nil, tr, fmt.Errorf("core: corrupt compressed block at %d: %w", lineAddr, err)
		}
		u, err := compress.Unpack(packed[:n])
		if err != nil {
			return nil, tr, err
		}
		data, err = f.Comp.Decompress(u)
		if err != nil {
			return nil, tr, err
		}
	case blem.ClassUncompressed, blem.ClassCollision:
		if tr.PredictedCompressed {
			tr.Mispredicted = true
			tr.BlocksTouched++ // corrective fetch of the second block
		}
		full := make([]byte, LineSize)
		copy(full, stored.Blocks[0][:])
		copy(full[SubRankBlock:], stored.Blocks[1][:])
		if cls == blem.ClassCollision {
			tr.RAAccess = true
			restored := f.Blem.LoadCollided(lineAddr, full)
			full = restored[:]
		}
		f.Scr.Apply(lineAddr, full)
		data = full
	}
	if tr.PredictedCompressed != tr.ActualCompressed {
		tr.Mispredicted = true
	}
	if f.Copr != nil {
		f.Copr.Update(lineAddr*LineSize, stored.Compressed)
	}
	return data, tr, nil
}

// StorageOverheadBytes reports the framework's SRAM cost: the predictor
// tables plus the CID register (the paper's "368KB of SRAM and a single
// register").
func (f *Framework) StorageOverheadBytes() int {
	if f.Copr == nil {
		return 2
	}
	return f.Copr.StorageBytes() + 2
}
