package core

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"attache/internal/copr"
)

func compressibleLine(i int) []byte {
	l := make([]byte, LineSize)
	base := uint64(0xABCD0000_00000000)
	for w := 0; w < 8; w++ {
		binary.LittleEndian.PutUint64(l[w*8:], base+uint64(i*8+w))
	}
	return l
}

func randomLine(rng *rand.Rand) []byte {
	l := make([]byte, LineSize)
	rng.Read(l)
	return l
}

func newFramework(t *testing.T) *Framework {
	t.Helper()
	f, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestStoreLoadCompressedRoundTrip(t *testing.T) {
	f := newFramework(t)
	for i := 0; i < 200; i++ {
		data := compressibleLine(i)
		st, tr, err := f.Store(uint64(i), data)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Compressed || tr.BlocksTouched != 1 {
			t.Fatalf("line %d: compressed=%v blocks=%d", i, st.Compressed, tr.BlocksTouched)
		}
		got, _, err := f.Load(uint64(i), st)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("line %d round trip mismatch", i)
		}
	}
}

func TestStoreLoadUncompressedRoundTrip(t *testing.T) {
	f := newFramework(t)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		data := randomLine(rng)
		st, tr, err := f.Store(uint64(i), data)
		if err != nil {
			t.Fatal(err)
		}
		if st.Compressed {
			t.Fatalf("random line %d stored compressed", i)
		}
		if tr.BlocksTouched != 2 {
			t.Fatalf("uncompressed store touched %d blocks", tr.BlocksTouched)
		}
		got, _, err := f.Load(uint64(i), st)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("line %d round trip mismatch", i)
		}
	}
}

func TestScramblingPreventsAdversarialCollisions(t *testing.T) {
	// An all-zero uncompressed line would match a zero CID on every
	// write without scrambling. Scrambling makes the stored bits
	// pseudo-random, so collisions stay at the 2^-cidBits rate. Here we
	// store a *barely incompressible* repeating pattern across many
	// addresses and verify collisions are rare.
	f := newFramework(t)
	rng := rand.New(rand.NewSource(3))
	collisions := 0
	const n = 20000
	for i := 0; i < n; i++ {
		data := randomLine(rng)
		st, _, err := f.Store(uint64(i), data)
		if err != nil {
			t.Fatal(err)
		}
		if st.Collision {
			collisions++
			// Collided lines must still round-trip exactly.
			got, tr, err := f.Load(uint64(i), st)
			if err != nil || !bytes.Equal(got, data) {
				t.Fatalf("collided line %d corrupt", i)
			}
			if !tr.RAAccess {
				t.Fatal("collision load must touch the Replacement Area")
			}
		}
	}
	// Expected n * 2^-15 ~= 0.6; allow up to 8.
	if collisions > 8 {
		t.Fatalf("collisions = %d/%d, want ~0", collisions, n)
	}
}

func TestPredictorLearnsAndSavesBandwidth(t *testing.T) {
	f := newFramework(t)
	// Same page, all compressible: after warmup, loads should touch one
	// block with correct predictions.
	stored := map[uint64]StoredLine{}
	for i := 0; i < 64; i++ {
		st, _, err := f.Store(uint64(i), compressibleLine(i))
		if err != nil {
			t.Fatal(err)
		}
		stored[uint64(i)] = st
	}
	misses := 0
	for i := 0; i < 64; i++ {
		_, tr, err := f.Load(uint64(i), stored[uint64(i)])
		if err != nil {
			t.Fatal(err)
		}
		if tr.Mispredicted {
			misses++
		}
		if !tr.Mispredicted && tr.BlocksTouched != 1 {
			t.Fatalf("correct compressed prediction touched %d blocks", tr.BlocksTouched)
		}
	}
	if misses > 4 {
		t.Fatalf("mispredictions = %d/64 after write-warmed predictor", misses)
	}
}

func TestMispredictionCorrected(t *testing.T) {
	// Predictor disabled -> conservative fetch of both blocks; the data
	// must still be exact for compressed lines.
	opts := DefaultOptions()
	opts.DisablePredictor = true
	f, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	data := compressibleLine(1)
	st, _, _ := f.Store(9, data)
	got, tr, err := f.Load(9, st)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatal("round trip failed")
	}
	if tr.BlocksTouched != 2 {
		t.Fatalf("conservative load touched %d blocks", tr.BlocksTouched)
	}
}

func TestStoreRejectsBadLength(t *testing.T) {
	f := newFramework(t)
	if _, _, err := f.Store(0, make([]byte, 63)); err == nil {
		t.Fatal("expected length error")
	}
}

func TestNewRejectsBadCID(t *testing.T) {
	opts := DefaultOptions()
	opts.CIDBits = 16
	if _, err := New(opts); err == nil {
		t.Fatal("expected CID width error")
	}
}

func TestStorageOverheadMatchesPaper(t *testing.T) {
	f := newFramework(t)
	got := f.StorageOverheadBytes()
	if got < 368<<10 || got > 369<<10 {
		t.Fatalf("overhead = %d bytes, want ~368 KB", got)
	}
}

// Property: Store/Load round-trips arbitrary content at arbitrary
// addresses, with and without the predictor.
func TestFrameworkRoundTripProperty(t *testing.T) {
	opts := DefaultOptions()
	opts.Predictor = copr.DefaultConfig()
	f, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	check := func(addr uint64, raw [LineSize]byte) bool {
		st, _, err := f.Store(addr, raw[:])
		if err != nil {
			return false
		}
		got, _, err := f.Load(addr, st)
		return err == nil && bytes.Equal(got, raw[:])
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestExtendedCompressionRoundTrip(t *testing.T) {
	opts := DefaultOptions()
	opts.ExtendedCompression = true
	f, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	// Dictionary-style data: a small vocabulary of full words.
	sawCompressed := false
	for trial := 0; trial < 300; trial++ {
		line := make([]byte, LineSize)
		vocab := []uint32{rng.Uint32(), rng.Uint32(), rng.Uint32()}
		for w := 0; w < 16; w++ {
			v := vocab[rng.Intn(3)]
			binary.LittleEndian.PutUint32(line[w*4:], v)
		}
		st, _, err := f.Store(uint64(trial), line)
		if err != nil {
			t.Fatal(err)
		}
		if st.Compressed {
			sawCompressed = true
		}
		got, _, err := f.Load(uint64(trial), st)
		if err != nil || !bytes.Equal(got, line) {
			t.Fatalf("trial %d round trip failed", trial)
		}
	}
	if !sawCompressed {
		t.Fatal("extended engine compressed nothing on vocabulary data")
	}
}

func TestMemoryContainer(t *testing.T) {
	m, err := NewMemory(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	written := map[uint64][]byte{}
	for i := 0; i < 500; i++ {
		addr := uint64(rng.Intn(300))
		var data []byte
		if rng.Intn(2) == 0 {
			data = compressibleLine(i)
		} else {
			data = randomLine(rng)
		}
		if err := m.Write(addr, data); err != nil {
			t.Fatal(err)
		}
		written[addr] = data
	}
	for addr, want := range written {
		got, err := m.Read(addr)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("addr %d mismatch", addr)
		}
	}
	if m.Lines() != len(written) {
		t.Fatalf("lines = %d, want %d", m.Lines(), len(written))
	}
	if m.stats.Reads.Value() != uint64(len(written)) {
		t.Fatal("read counter wrong")
	}
	if acc := m.PredictionAccuracy(); acc < 0 || acc > 1 {
		t.Fatalf("accuracy = %v", acc)
	}
}

func TestMemoryReadUnwritten(t *testing.T) {
	m, _ := NewMemory(DefaultOptions())
	if _, err := m.Read(42); err == nil {
		t.Fatal("expected error for unwritten line")
	}
}

func TestMemoryBandwidthSavingsPositiveForCompressibleData(t *testing.T) {
	m, _ := NewMemory(DefaultOptions())
	for i := 0; i < 2000; i++ {
		if err := m.Write(uint64(i), compressibleLine(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2000; i++ {
		if _, err := m.Read(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// All lines compressible: writes move 1 block instead of 2; reads
	// mostly 1 after the predictor warms. Savings should approach 50%.
	if s := m.stats.BandwidthSavings(); s < 0.40 {
		t.Fatalf("bandwidth savings = %.3f, want > 0.40", s)
	}
}

func TestCompressedLinesGaugeTracksOverwrites(t *testing.T) {
	m, _ := NewMemory(DefaultOptions())
	rng := rand.New(rand.NewSource(31))
	if err := m.Write(1, compressibleLine(0)); err != nil {
		t.Fatal(err)
	}
	if m.stats.CompressedLines.Value() != 1 {
		t.Fatalf("gauge = %d, want 1", m.stats.CompressedLines.Value())
	}
	// Overwrite with incompressible content: the gauge must drop.
	if err := m.Write(1, randomLine(rng)); err != nil {
		t.Fatal(err)
	}
	if m.stats.CompressedLines.Value() != 0 {
		t.Fatalf("gauge = %d after uncompressible overwrite, want 0", m.stats.CompressedLines.Value())
	}
	// And recover when compressible data returns.
	if err := m.Write(1, compressibleLine(2)); err != nil {
		t.Fatal(err)
	}
	if m.stats.CompressedLines.Value() != 1 {
		t.Fatalf("gauge = %d, want 1", m.stats.CompressedLines.Value())
	}
}
