package workload

import (
	"math"
	"math/rand"
	"testing"
)

// TestGapMomentsMatchEmpirical: the analytic mean/variance of every
// inter-arrival process must match empirical moments over 20k samples
// from the real sampler. The tolerance mirrors the KS suite's spirit:
// tight enough to catch a wrong formula (a swapped shape/scale moves
// the variance by an integer factor), loose enough for sampling noise —
// heavy-tailed shapes get a wider variance band because the sample
// variance of Weibull(0.6)/Gamma(0.3) converges slowly.
func TestGapMomentsMatchEmpirical(t *testing.T) {
	cases := []struct {
		name    string
		arrival Arrival
		varTol  float64 // relative tolerance on the variance
	}{
		{"poisson", Arrival{Process: Poisson, Rate: 2}, 0.10},
		{"gamma-shape-3", Arrival{Process: GammaProc, Rate: 1, Shape: 3}, 0.10},
		{"gamma-shape-0.3", Arrival{Process: GammaProc, Rate: 4, Shape: 0.3}, 0.25},
		{"weibull-shape-2", Arrival{Process: WeibullProc, Rate: 1, Shape: 2}, 0.10},
		{"weibull-shape-0.6", Arrival{Process: WeibullProc, Rate: 0.5, Shape: 0.6}, 0.25},
		{"gamma-shape-0-defaults-to-exponential", Arrival{Process: GammaProc, Rate: 3}, 0.10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := tc.arrival.GapMoments()
			rng := rand.New(rand.NewSource(777))
			var sum, sumSq float64
			for i := 0; i < distSamples; i++ {
				g := sampleGap(rng, tc.arrival)
				sum += g
				sumSq += g * g
			}
			mean := sum / distSamples
			variance := sumSq/distSamples - mean*mean
			if rel := math.Abs(mean-want.Mean) / want.Mean; rel > 0.05 {
				t.Fatalf("empirical mean %.5f vs analytic %.5f (rel err %.3f)", mean, want.Mean, rel)
			}
			if rel := math.Abs(variance-want.Variance) / want.Variance; rel > tc.varTol {
				t.Fatalf("empirical variance %.5f vs analytic %.5f (rel err %.3f > %.2f)",
					variance, want.Variance, rel, tc.varTol)
			}
		})
	}
}

// TestMixMomentsMatchCompose: expected per-event op counts must match
// what Compose actually generates, measured over a single-client spec
// large enough for the law of large numbers to bite.
func TestMixMomentsMatchCompose(t *testing.T) {
	cases := []struct {
		name string
		mix  Mix
	}{
		{"balanced", Mix{ReadWeight: 4, WriteWeight: 1, BatchWeight: 1, BatchSize: 16}},
		{"batch-only-default-write-fraction", Mix{BatchWeight: 1, BatchSize: 8}},
		{"write-heavy", Mix{ReadWeight: 0, WriteWeight: 2, BatchWeight: 1, BatchSize: 32}},
		{"default-batch-size", Mix{ReadWeight: 1, WriteWeight: 1, BatchWeight: 2}},
	}
	const events = 20000
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := Spec{
				Name: "mix-probe", Seed: 99, AddrSpace: 1 << 12,
				Clients: []ClientSpec{{
					Name: "c", Events: events,
					Arrival: Arrival{Process: Poisson, Rate: 1000},
					Mix:     tc.mix,
					Addr:    AddrPattern{Kind: AddrUniform},
					Payload: PayloadMixed,
				}},
			}
			evs, err := Compose(spec)
			if err != nil {
				t.Fatal(err)
			}
			var ops, reads, writes float64
			for _, ev := range evs {
				ops += float64(len(ev.Ops))
				for _, op := range ev.Ops {
					if op.Write {
						writes++
					} else {
						reads++
					}
				}
			}
			mm := tc.mix.Moments()
			check := func(name string, got, want float64) {
				t.Helper()
				if want == 0 {
					if got != 0 {
						t.Fatalf("%s: got %.3f, want exactly 0", name, got)
					}
					return
				}
				if rel := math.Abs(got-want) / want; rel > 0.03 {
					t.Fatalf("%s: empirical %.4f vs analytic %.4f (rel err %.4f)", name, got, want, rel)
				}
			}
			check("ops/event", ops/events, mm.OpsPerEvent)
			check("reads/event", reads/events, mm.ReadOpsPerEvent)
			check("writes/event", writes/events, mm.WriteOpsPerEvent)
		})
	}
}

// TestSpecMomentsAggregates: multi-client totals, resolved prefill, and
// the write-weighted payload mix.
func TestSpecMomentsAggregates(t *testing.T) {
	spec := Spec{
		Name: "agg", Seed: 1, AddrSpace: 1 << 13, Prefill: 0, // 0 → space/2
		Clients: []ClientSpec{
			{
				Name: "a", Events: 1000,
				Arrival: Arrival{Process: Poisson, Rate: 100},
				Mix:     Mix{ReadWeight: 1},
				Addr:    AddrPattern{Kind: AddrZipf},
				Payload: PayloadCompressible,
			},
			{
				Name: "b", Events: 500,
				Arrival: Arrival{Process: GammaProc, Rate: 200, Shape: 2},
				Mix:     Mix{WriteWeight: 1},
				Addr:    AddrPattern{Kind: AddrStream},
				Payload: PayloadHostile,
			},
		},
	}
	m := spec.Moments()
	if m.Prefill != 1<<12 {
		t.Fatalf("resolved prefill = %d, want %d", m.Prefill, 1<<12)
	}
	if m.PrefillPayload != PayloadCompressible {
		t.Fatalf("prefill payload = %v, want first client's %v", m.PrefillPayload, PayloadCompressible)
	}
	if m.Events != 1500 || m.ReadOps != 1000 || m.WriteOps != 500 {
		t.Fatalf("totals events/reads/writes = %d/%.0f/%.0f, want 1500/1000/500", m.Events, m.ReadOps, m.WriteOps)
	}
	// Write-weighted payload mix: 4096 compressible prefill lines + 500
	// hostile client writes.
	wantComp := 4096.0 / 4596.0
	if w := m.PayloadWeights[PayloadCompressible]; math.Abs(w-wantComp) > 1e-12 {
		t.Fatalf("compressible weight = %.6f, want %.6f", w, wantComp)
	}
	var sum float64
	for _, w := range m.PayloadWeights {
		sum += w
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("payload weights sum to %.6f, want 1", sum)
	}
	// Defaults resolved on the pattern.
	if m.Clients[0].Addr.ZipfS != 1.2 || m.Clients[0].Addr.PageLines != 64 {
		t.Fatalf("zipf defaults not resolved: %+v", m.Clients[0].Addr)
	}
	if m.Clients[1].Addr.Stride != 1 {
		t.Fatalf("stream stride default not resolved: %+v", m.Clients[1].Addr)
	}
	// Negative prefill resolves to none.
	spec.Prefill = -1
	if p := spec.Moments().Prefill; p != 0 {
		t.Fatalf("negative prefill resolved to %d, want 0", p)
	}
}

// TestZipfPageWeights: the analytic page weights must match the pmf the
// chi-square suite validates rand.Zipf against — and be nil off-Zipf.
func TestZipfPageWeights(t *testing.T) {
	p := AddrPattern{Kind: AddrZipf, ZipfS: 1.4, PageLines: 16}
	w := p.ZipfPageWeights(1 << 10)
	if len(w) != 64 {
		t.Fatalf("got %d pages, want 64", len(w))
	}
	for k := 1; k < len(w); k++ {
		if w[k] >= w[k-1] {
			t.Fatalf("weights not strictly decreasing at rank %d", k)
		}
	}
	if want := math.Pow(3, -1.4); math.Abs(w[2]-want) > 1e-12 {
		t.Fatalf("w[2] = %g, want (1+2)^-1.4 = %g", w[2], want)
	}
	if (AddrPattern{Kind: AddrUniform}).ZipfPageWeights(1<<10) != nil {
		t.Fatal("uniform pattern should have nil page weights")
	}
}
