package workload

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"

	"attache/internal/core"
	"attache/internal/loadgen"
	"attache/internal/shard"
)

// Profile is one scenario's behavioral fingerprint: the exact offered
// sequence (checksums, counts, error taxonomy) plus the engine-level
// metrics the paper cares about — compression ratio, predictor accuracy,
// bandwidth savings — and the run's latency quantiles. Profiles are
// pinned per scenario under testdata/golden/*.json and every change to
// the engine, predictor, or workload layer is diffed against them.
//
// Comparison discipline (CompareProfile): sequence identity and counts
// are exact — they are seeded-deterministic by construction. The derived
// float metrics get small tolerance bands. Latency is pinned by per-kind
// sample count and checked structurally (quantiles monotone); wall-clock
// micros do not transfer across machines, so goldens never store them.
type Profile struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	// Checksum fingerprints the full event stream (offsets included);
	// OpChecksum ignores offsets — the replay-identity fingerprint.
	Checksum   string `json:"checksum"`
	OpChecksum string `json:"op_checksum"`
	Events     int    `json:"events"`
	Ops        uint64 `json:"ops"`
	OpsOK      uint64 `json:"ops_ok"`
	// Errors is the loadgen taxonomy of the run (deterministic at
	// concurrency 1: e.g. never_written counts on un-prefilled reads).
	Errors map[string]uint64 `json:"errors,omitempty"`
	// The engine metrics, from the post-run merged stats snapshot.
	CompressionRatio  float64 `json:"compression_ratio"`
	PredictorAccuracy float64 `json:"predictor_accuracy"`
	BandwidthSavings  float64 `json:"bandwidth_savings"`
	ShedRate          float64 `json:"shed_rate"`
	// LatencyCounts pins the per-kind latency sample counts (one sample
	// per event, so these are plan-determined and exact).
	LatencyCounts map[string]uint64 `json:"latency_counts,omitempty"`
	// Latency holds the live per-kind quantiles of a measured run. It is
	// stripped from stored goldens (WriteProfile) because wall-clock
	// micros do not transfer across machines — regeneration stays
	// byte-identical on an unchanged tree. Live quantiles are still
	// checked structurally (monotone, counts matching LatencyCounts).
	Latency map[string]loadgen.Quantiles `json:"latency,omitempty"`
}

// ProfileTolerance bands the float metrics: a metric passes when
// |got-want| <= Abs + Rel*|want|.
type ProfileTolerance struct {
	Rel float64
	Abs float64
}

// DefaultProfileTolerance is deliberately tight: the metrics are
// deterministic at concurrency 1, so the band only absorbs float
// refactors (evaluation-order changes), not behavior drift.
func DefaultProfileTolerance() ProfileTolerance { return ProfileTolerance{Rel: 0.02, Abs: 0.01} }

// MeasureProfile composes spec, runs it to completion against a fresh
// 2-shard engine at concurrency 1 (sequential submission — the
// deterministic regime), and returns the profile. The engine uses the
// paper's default options with the spec's seed.
func MeasureProfile(ctx context.Context, spec Spec) (Profile, error) {
	events, err := Compose(spec)
	if err != nil {
		return Profile{}, err
	}
	opts := core.DefaultOptions()
	opts.Seed = spec.Seed
	eng, err := shard.New(opts, shard.Config{Shards: 2})
	if err != nil {
		return Profile{}, err
	}
	defer eng.Close()
	cfg := loadgen.Config{
		Seed:           spec.Seed,
		Concurrency:    1,
		AddrSpace:      spec.AddrSpace,
		Prefill:        spec.Prefill,
		PrefillPayload: PrefillPayload(spec),
	}
	rep, err := loadgen.RunEvents(ctx, eng, cfg, events)
	if err != nil {
		return Profile{}, err
	}
	snap := eng.StatsSnapshot()
	p := Profile{
		Scenario:          spec.Name,
		Seed:              spec.Seed,
		Checksum:          rep.Checksum,
		OpChecksum:        OpChecksum(events),
		Events:            rep.Events,
		Ops:               rep.Ops,
		OpsOK:             rep.OpsOK,
		Errors:            rep.Errors,
		CompressionRatio:  snap.Total.CompressedLineRatio(),
		PredictorAccuracy: snap.Total.PredictionAccuracy,
		BandwidthSavings:  snap.Total.BandwidthSavings(),
		ShedRate:          rep.ShedRate,
		Latency:           rep.Latency,
	}
	if len(rep.Latency) > 0 {
		p.LatencyCounts = make(map[string]uint64, len(rep.Latency))
		for kind, q := range rep.Latency {
			p.LatencyCounts[kind] = q.Count
		}
	}
	if len(p.Errors) == 0 {
		p.Errors = nil
	}
	return p, nil
}

// CompareProfile diffs a freshly measured profile against its golden
// snapshot and reports the first divergence.
func CompareProfile(got, want Profile, tol ProfileTolerance) error {
	if got.Scenario != want.Scenario {
		return fmt.Errorf("scenario changed: got %q, want %q", got.Scenario, want.Scenario)
	}
	if got.Seed != want.Seed {
		return fmt.Errorf("seed changed: got %d, want %d", got.Seed, want.Seed)
	}
	if got.Checksum != want.Checksum {
		return fmt.Errorf("event-stream checksum changed: got %s, want %s (the generated workload itself moved)", got.Checksum, want.Checksum)
	}
	if got.OpChecksum != want.OpChecksum {
		return fmt.Errorf("op checksum changed: got %s, want %s", got.OpChecksum, want.OpChecksum)
	}
	if got.Events != want.Events || got.Ops != want.Ops || got.OpsOK != want.OpsOK {
		return fmt.Errorf("counts changed: events/ops/ok got %d/%d/%d, want %d/%d/%d",
			got.Events, got.Ops, got.OpsOK, want.Events, want.Ops, want.OpsOK)
	}
	if len(got.Errors) != len(want.Errors) {
		return fmt.Errorf("error taxonomy changed: got %v, want %v", got.Errors, want.Errors)
	}
	for k, w := range want.Errors {
		if got.Errors[k] != w {
			return fmt.Errorf("error taxonomy[%s] changed: got %d, want %d", k, got.Errors[k], w)
		}
	}
	metric := func(name string, g, w float64) error {
		if math.Abs(g-w) > tol.Abs+tol.Rel*math.Abs(w) {
			return fmt.Errorf("%s out of band: got %.6g, want %.6g (tolerance rel=%g abs=%g)",
				name, g, w, tol.Rel, tol.Abs)
		}
		return nil
	}
	for _, m := range []struct {
		name string
		g, w float64
	}{
		{"compression_ratio", got.CompressionRatio, want.CompressionRatio},
		{"predictor_accuracy", got.PredictorAccuracy, want.PredictorAccuracy},
		{"bandwidth_savings", got.BandwidthSavings, want.BandwidthSavings},
		{"shed_rate", got.ShedRate, want.ShedRate},
	} {
		if err := metric(m.name, m.g, m.w); err != nil {
			return err
		}
	}
	// Latency: structural only. Counts are plan-determined; micros are not.
	if len(got.Latency) != len(want.LatencyCounts) {
		return fmt.Errorf("latency buckets changed: got %d kinds, want %d", len(got.Latency), len(want.LatencyCounts))
	}
	for kind, wantCount := range want.LatencyCounts {
		g, ok := got.Latency[kind]
		if !ok {
			return fmt.Errorf("latency bucket %q disappeared", kind)
		}
		if g.Count != wantCount {
			return fmt.Errorf("latency[%s] sample count changed: got %d, want %d", kind, g.Count, wantCount)
		}
		if !(g.P50Micros <= g.P90Micros && g.P90Micros <= g.P99Micros && g.P99Micros <= g.MaxMicros) {
			return fmt.Errorf("latency[%s] quantiles not monotone: %+v", kind, g)
		}
	}
	return nil
}

// WriteProfile serializes a golden profile with a trailing newline,
// stripping the machine-local latency micros (Latency) so regenerating
// an unchanged tree is byte-identical.
func WriteProfile(path string, p Profile) error {
	p.Latency = nil
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadProfile loads a checked-in golden profile.
func ReadProfile(path string) (Profile, error) {
	var p Profile
	data, err := os.ReadFile(path)
	if err != nil {
		return p, err
	}
	if err := json.Unmarshal(data, &p); err != nil {
		return p, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}
