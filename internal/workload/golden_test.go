package workload

import (
	"context"
	"flag"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "regenerate the per-scenario golden profiles under testdata/golden/")

// goldenSeed pins the scenario seed for the checked-in profiles; the
// goldens are fingerprints of (scenario, seed, engine), so it never
// changes casually.
const goldenSeed = 42

// TestScenarioGolden runs every preset scenario end to end against a
// fresh deterministic engine and diffs its behavioral profile —
// checksums, counts, error taxonomy, compression/predictor/bandwidth
// metrics, latency structure — against the checked-in golden. Run with
// -update after an intentional behavior change:
//
//	go test ./internal/workload -run TestScenarioGolden -update
//
// and commit the refreshed fixtures with a justification; an unchanged
// tree regenerates byte-identical files.
func TestScenarioGolden(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			spec, err := Preset(name, goldenSeed, 0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := MeasureProfile(context.Background(), spec)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", name+".json")
			if *updateGolden {
				if err := WriteProfile(path, got); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (checksum %s, op checksum %s)", path, got.Checksum, got.OpChecksum)
				return
			}
			want, err := ReadProfile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if err := CompareProfile(got, want, DefaultProfileTolerance()); err != nil {
				t.Fatalf("scenario %s drifted from its golden profile: %v\n(intentional? regenerate with -update and commit the diff)", name, err)
			}
		})
	}
}

// TestMeasureProfileDeterministic: the full measurement pipeline —
// compose, prefill, sequential run, stats snapshot — is replayable:
// two fresh engines produce identical profiles.
func TestMeasureProfileDeterministic(t *testing.T) {
	spec, err := Preset("streaming", 7, 400)
	if err != nil {
		t.Fatal(err)
	}
	a, err := MeasureProfile(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureProfile(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum != b.Checksum || a.OpChecksum != b.OpChecksum {
		t.Fatalf("checksums diverged across identical measurements: %s/%s vs %s/%s",
			a.Checksum, a.OpChecksum, b.Checksum, b.OpChecksum)
	}
	if a.Ops != b.Ops || a.OpsOK != b.OpsOK || a.Events != b.Events {
		t.Fatalf("counts diverged: %d/%d/%d vs %d/%d/%d", a.Events, a.Ops, a.OpsOK, b.Events, b.Ops, b.OpsOK)
	}
	if a.CompressionRatio != b.CompressionRatio || a.PredictorAccuracy != b.PredictorAccuracy ||
		a.BandwidthSavings != b.BandwidthSavings || a.ShedRate != b.ShedRate {
		t.Fatalf("engine metrics diverged across identical measurements:\n%+v\n%+v", a, b)
	}
	for k, v := range a.LatencyCounts {
		if b.LatencyCounts[k] != v {
			t.Fatalf("latency count[%s] diverged: %d vs %d", k, v, b.LatencyCounts[k])
		}
	}
	for k, v := range a.Errors {
		if b.Errors[k] != v {
			t.Fatalf("error taxonomy[%s] diverged: %d vs %d", k, v, b.Errors[k])
		}
	}
}
