package workload

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"attache/internal/loadgen"
	"attache/internal/shard"
)

// TestTraceRoundTrip: encode→decode is the identity on a composed
// scenario stream — kinds, addresses, payloads, and offsets all survive.
func TestTraceRoundTrip(t *testing.T) {
	spec, err := Preset("zipfian-hot-page", 9, 300)
	if err != nil {
		t.Fatal(err)
	}
	events, err := Compose(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, decoded) {
		t.Fatal("decode(encode(events)) != events")
	}
	if OpChecksum(events) != OpChecksum(decoded) {
		t.Fatal("op checksum changed across the codec")
	}
	if loadgen.Checksum(events) != loadgen.Checksum(decoded) {
		t.Fatal("full checksum changed across the codec (offsets lost?)")
	}
}

// TestTraceEmptyCapture: a header-only stream (a capture that saw no
// traffic) decodes to zero events, not an error.
func TestTraceEmptyCapture(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	events, err := DecodeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatalf("got %d events from an empty capture", len(events))
	}
}

// TestTraceDecodeMalformed: every malformed input is a descriptive
// error, never a panic, never a silent partial success.
func TestTraceDecodeMalformed(t *testing.T) {
	header := `{"format":"attache-trace","version":1}` + "\n"
	cases := []struct {
		name, input, wantSub string
	}{
		{"empty input", "", "missing header"},
		{"blank lines only", "\n\n\n", "missing header"},
		{"wrong format", `{"format":"other-trace","version":1}` + "\n", `format "other-trace"`},
		{"future version", `{"format":"attache-trace","version":2}` + "\n", "unsupported version 2"},
		{"header not json", "attache-trace v1\n", "bad header"},
		{"event bad json", header + `{"at":5,"ops":[` + "\n", "line 2"},
		{"event not object", header + `[1,2,3]` + "\n", "line 2"},
		{"negative offset", header + `{"at":-1,"ops":[{"a":1}]}` + "\n", "negative offset"},
		{"no ops", header + `{"at":0,"ops":[]}` + "\n", "no ops"},
		{"read with data", header + `{"at":0,"ops":[{"a":1,"d":"QUJD"}]}` + "\n", "carries data"},
		{"trailing garbage", header + `{"at":0,"ops":[{"a":1}]} extra` + "\n", "trailing data"},
		{"bad base64", header + `{"at":0,"ops":[{"w":true,"a":1,"d":"!!"}]}` + "\n", "line 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeTrace(strings.NewReader(tc.input))
			if err == nil {
				t.Fatal("malformed trace accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestTraceDecodeOversizedEvent: an event claiming more ops than the cap
// is rejected before it can balloon memory.
func TestTraceDecodeOversizedEvent(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(`{"format":"attache-trace","version":1}` + "\n")
	sb.WriteString(`{"at":0,"ops":[`)
	for i := 0; i <= maxTraceOps; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"a":%d}`, i)
	}
	sb.WriteString(`]}` + "\n")
	_, err := DecodeTrace(strings.NewReader(sb.String()))
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized event not rejected: %v", err)
	}
}

// TestTraceDecodeNormalizesKinds: captures do not store event kinds; the
// decoder rederives them from op shape.
func TestTraceDecodeNormalizesKinds(t *testing.T) {
	input := `{"format":"attache-trace","version":1}
{"at":0,"ops":[{"a":1}]}
{"at":1,"ops":[{"w":true,"a":2,"d":"` + strings.Repeat("A", 88) + `"}]}
{"at":2,"ops":[{"a":3},{"a":4}]}
`
	events, err := DecodeTrace(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	want := []loadgen.Kind{loadgen.Read, loadgen.Write, loadgen.Batch}
	if len(events) != len(want) {
		t.Fatalf("got %d events, want %d", len(events), len(want))
	}
	for i, k := range want {
		if events[i].Kind != k {
			t.Fatalf("event %d kind %v, want %v", i, events[i].Kind, k)
		}
	}
}

// TestTraceWriterConcurrent: the recorder takes events from many
// goroutines (the serve layer records per request), deep-copies
// payloads, and still yields a well-formed, decodable capture.
func TestTraceWriterConcurrent(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)

	const goroutines, perG = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			line := make([]byte, 64)
			for i := 0; i < perG; i++ {
				for b := range line {
					line[b] = byte(g)
				}
				tw.RecordOps([]shard.Op{{Write: true, Addr: uint64(g*1000 + i), Data: line}})
				// The writer must have copied: clobber the buffer.
				line[0] = 0xFF
			}
		}(g)
	}
	wg.Wait()
	tw.RecordOps(nil) // no-op, not an empty event
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if tw.Events() != goroutines*perG {
		t.Fatalf("recorded %d events, want %d", tw.Events(), goroutines*perG)
	}
	events, err := DecodeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != goroutines*perG {
		t.Fatalf("decoded %d events, want %d", len(events), goroutines*perG)
	}
	for i, ev := range events {
		if i > 0 && ev.At < events[i-1].At {
			t.Fatalf("event %d offset %v precedes %v — offsets must be non-decreasing", i, ev.At, events[i-1].At)
		}
		op := ev.Ops[0]
		g := op.Addr / 1000
		if op.Data[0] != byte(g) || op.Data[63] != byte(g) {
			t.Fatalf("event %d payload was not deep-copied at record time", i)
		}
	}
}
