package workload

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"attache/internal/core"
	"attache/internal/loadgen"
)

// TestComposeDeterministic: same spec, same stream — byte for byte,
// three times over, for every preset scenario. Distinct seeds diverge.
func TestComposeDeterministic(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			spec, err := Preset(name, 42, 400)
			if err != nil {
				t.Fatal(err)
			}
			first, err := Compose(spec)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 2; i++ {
				again, err := Compose(spec)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(first, again) {
					t.Fatalf("recompose %d diverged from first composition", i+2)
				}
			}
			other, err := Compose(Spec{
				Name: spec.Name, Seed: 43, AddrSpace: spec.AddrSpace,
				Prefill: spec.Prefill, Clients: spec.Clients,
			})
			if err != nil {
				t.Fatal(err)
			}
			if loadgen.Checksum(first) == loadgen.Checksum(other) {
				t.Fatal("distinct seeds produced identical streams")
			}
			if OpChecksum(first) == OpChecksum(other) {
				t.Fatal("distinct seeds produced identical op content")
			}
		})
	}
}

// TestComposeMergeOrder: the merged stream is sorted by arrival offset.
func TestComposeMergeOrder(t *testing.T) {
	spec, err := Preset("write-burst", 7, 500)
	if err != nil {
		t.Fatal(err)
	}
	events, err := Compose(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 500 {
		t.Fatalf("events: got %d, want 500", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatalf("event %d arrives at %v, before predecessor's %v", i, events[i].At, events[i-1].At)
		}
	}
}

// TestComposeAddressesBounded: every generated address stays inside the
// spec's space, for every address-pattern generator.
func TestComposeAddressesBounded(t *testing.T) {
	for _, name := range Names() {
		spec, err := Preset(name, 11, 300)
		if err != nil {
			t.Fatal(err)
		}
		events, err := Compose(spec)
		if err != nil {
			t.Fatal(err)
		}
		for i, ev := range events {
			for _, op := range ev.Ops {
				if op.Addr >= spec.AddrSpace {
					t.Fatalf("%s: event %d address %d outside space %d", name, i, op.Addr, spec.AddrSpace)
				}
				if op.Write && len(op.Data) != core.LineSize {
					t.Fatalf("%s: event %d write payload %dB, want %d", name, i, len(op.Data), core.LineSize)
				}
				if !op.Write && op.Data != nil {
					t.Fatalf("%s: event %d read op carries data", name, i)
				}
			}
		}
	}
}

// TestComposeClientIndependence: a client's sub-stream is a function of
// its (seed, index) alone — composing client B alongside A leaves A's
// events untouched, just interleaved. A's solo stream must be a
// subsequence of the merged stream.
func TestComposeClientIndependence(t *testing.T) {
	a := ClientSpec{
		Name: "a", Events: 200,
		Arrival: Arrival{Process: Poisson, Rate: 1000},
		Mix:     Mix{ReadWeight: 3, WriteWeight: 1, BatchWeight: 1, BatchSize: 4},
		Addr:    AddrPattern{Kind: AddrUniform},
		Payload: PayloadMixed,
	}
	b := ClientSpec{
		Name: "b", Events: 150,
		Arrival: Arrival{Process: GammaProc, Rate: 800, Shape: 2},
		Mix:     Mix{ReadWeight: 1, WriteWeight: 1, BatchWeight: 0},
		Addr:    AddrPattern{Kind: AddrStream},
		Payload: PayloadCompressible,
	}
	base := Spec{Name: "solo", Seed: 99, AddrSpace: 1 << 12, Prefill: -1}

	solo := base
	solo.Clients = []ClientSpec{a}
	soloEvents, err := Compose(solo)
	if err != nil {
		t.Fatal(err)
	}
	merged := base
	merged.Clients = []ClientSpec{a, b}
	mergedEvents, err := Compose(merged)
	if err != nil {
		t.Fatal(err)
	}
	if len(mergedEvents) != a.Events+b.Events {
		t.Fatalf("merged events: got %d, want %d", len(mergedEvents), a.Events+b.Events)
	}
	j := 0
	for _, ev := range mergedEvents {
		if j < len(soloEvents) && reflect.DeepEqual(ev, soloEvents[j]) {
			j++
		}
	}
	if j != len(soloEvents) {
		t.Fatalf("client a's solo stream is not a subsequence of the merged stream: matched %d/%d events", j, len(soloEvents))
	}
}

// TestOpChecksumIgnoresOffsets: shifting every arrival time changes the
// full-stream checksum but not the op checksum — the property replay
// verification rests on, since recorded offsets are wall-clock.
func TestOpChecksumIgnoresOffsets(t *testing.T) {
	spec, err := Preset("streaming", 5, 200)
	if err != nil {
		t.Fatal(err)
	}
	events, err := Compose(spec)
	if err != nil {
		t.Fatal(err)
	}
	shifted := make([]loadgen.Event, len(events))
	copy(shifted, events)
	for i := range shifted {
		shifted[i].At += time.Duration(i+1) * time.Millisecond
	}
	if OpChecksum(events) != OpChecksum(shifted) {
		t.Fatal("OpChecksum changed when only arrival offsets moved")
	}
	if loadgen.Checksum(events) == loadgen.Checksum(shifted) {
		t.Fatal("full Checksum ignored arrival offsets")
	}
}

// TestValidate: the first structural problem is reported, valid specs
// pass.
func TestValidate(t *testing.T) {
	ok := ClientSpec{
		Name: "c", Events: 10,
		Arrival: Arrival{Process: Poisson, Rate: 100},
		Mix:     Mix{ReadWeight: 1},
	}
	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantErr bool
	}{
		{"valid", func(s *Spec) {}, false},
		{"zero space", func(s *Spec) { s.AddrSpace = 0 }, true},
		{"no clients", func(s *Spec) { s.Clients = nil }, true},
		{"zero events", func(s *Spec) { s.Clients[0].Events = 0 }, true},
		{"zero rate", func(s *Spec) { s.Clients[0].Arrival.Rate = 0 }, true},
		{"negative shape", func(s *Spec) {
			s.Clients[0].Arrival = Arrival{Process: GammaProc, Rate: 1, Shape: -1}
		}, true},
		{"zero mix", func(s *Spec) { s.Clients[0].Mix = Mix{} }, true},
		{"negative weight", func(s *Spec) { s.Clients[0].Mix = Mix{ReadWeight: -1, WriteWeight: 2} }, true},
		{"zipf s too small", func(s *Spec) {
			s.Clients[0].Addr = AddrPattern{Kind: AddrZipf, ZipfS: 0.9}
		}, true},
		{"zipf s default ok", func(s *Spec) {
			s.Clients[0].Addr = AddrPattern{Kind: AddrZipf}
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := Spec{Name: "v", Seed: 1, AddrSpace: 64, Clients: []ClientSpec{ok}}
			tc.mutate(&spec)
			err := spec.Validate()
			if tc.wantErr && err == nil {
				t.Fatal("want error, got nil")
			}
			if !tc.wantErr && err != nil {
				t.Fatalf("want ok, got %v", err)
			}
		})
	}
}

// TestPayloadGenerators: every payload builder emits full deterministic
// lines with its advertised compressibility character.
func TestPayloadGenerators(t *testing.T) {
	kinds := []PayloadKind{PayloadMixed, PayloadCompressible, PayloadPointer, PayloadHostile, PayloadZero}
	for _, k := range kinds {
		pay := payloadFunc(k)
		a, b := pay(42, 7), pay(42, 7)
		if len(a) != core.LineSize {
			t.Fatalf("%s: line is %dB, want %d", k, len(a), core.LineSize)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: payload not deterministic", k)
		}
	}
	if !bytes.Equal(zeroLine(9, 9), make([]byte, core.LineSize)) {
		t.Fatal("zero payload is not all-zero")
	}
	if bytes.Equal(hostileLine(1, 0), hostileLine(3, 0)) {
		t.Fatal("hostile payload identical across addresses")
	}
	// The mixed generator must stay in lockstep with loadgen's default so
	// mixed-scenario residency matches flat-plan residency.
	if !bytes.Equal(mixedLine(6, 3), loadgenDefaultLine(6, 3)) ||
		!bytes.Equal(mixedLine(7, 3), loadgenDefaultLine(7, 3)) {
		t.Fatal("mixed payload diverged from loadgen's default generator")
	}
}

// loadgenDefaultLine reimplements loadgen's payload() (unexported) to pin
// the mixed generator against it.
func loadgenDefaultLine(addr, version uint64) []byte {
	line := make([]byte, core.LineSize)
	if addr%2 == 0 {
		base := addr*4096 + version%512
		for w := 0; w < 8; w++ {
			for b := 0; b < 8; b++ {
				line[w*8+b] = byte(base >> (8 * b))
			}
		}
	} else {
		x := addr ^ version | 1
		for w := 0; w < 8; w++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			for b := 0; b < 8; b++ {
				line[w*8+b] = byte(x >> (8 * b))
			}
		}
	}
	return line
}

// TestEnvelope: the rate envelope floors at 0.05 (traffic slows, never
// stops) and defaults to 1 with no periods.
func TestEnvelope(t *testing.T) {
	if f := envelopeAt(nil, time.Second); f != 1 {
		t.Fatalf("empty envelope: got %g, want 1", f)
	}
	deep := []Period{{Period: 4 * time.Second, Amplitude: -10}}
	if f := envelopeAt(deep, time.Second); f != 0.05 {
		t.Fatalf("trough floor: got %g, want 0.05", f)
	}
	peak := []Period{{Period: 4 * time.Second, Amplitude: 0.5}}
	if f := envelopeAt(peak, time.Second); f <= 1.49 || f >= 1.51 {
		t.Fatalf("peak: got %g, want ~1.5", f)
	}
}

// TestPresets: the catalogue is complete, described, and rejects unknown
// names.
func TestPresets(t *testing.T) {
	names := Names()
	want := []string{"compression-hostile", "pointer-chasing", "streaming", "tiered-hotset", "write-burst", "zipfian-hot-page"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for _, n := range names {
		if Describe(n) == "" {
			t.Fatalf("%s: empty description", n)
		}
		spec, err := Preset(n, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("%s: default preset invalid: %v", n, err)
		}
		total := 0
		for _, c := range spec.Clients {
			total += c.Events
		}
		if total != 2000 {
			t.Fatalf("%s: default event budget %d, want 2000", n, total)
		}
	}
	if _, err := Preset("no-such-scenario", 1, 10); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// TestPrefillPayloadMatchesFirstClient: scenario prefill writes the same
// compressibility class the first client traffics in.
func TestPrefillPayloadMatchesFirstClient(t *testing.T) {
	spec, err := Preset("compression-hostile", 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	pre := PrefillPayload(spec)
	if !bytes.Equal(pre(17), hostileLine(17, 0)) {
		t.Fatal("prefill payload does not match the first client's payload kind")
	}
	if !bytes.Equal(pre(17), pre(17)) {
		t.Fatal("prefill payload not deterministic")
	}
}
