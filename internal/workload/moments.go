package workload

import "math"

// This file exposes the closed-form moments of a Spec — the workload
// parameters the analytical twin (internal/twin) consumes. Everything
// here is derived from the Spec alone, never from sampling: the twin
// must be evaluable in microseconds, so the moments are the analytic
// mean/variance of each generator, not empirical estimates.

// GapMoments are the analytic moments of one inter-arrival process,
// in seconds, excluding any rate envelope (Period modulation rescales
// individual gaps and is a time-varying effect the static moments do
// not capture).
type GapMoments struct {
	// Mean is E[gap] = 1/Rate: all three processes normalize to it.
	Mean float64
	// Variance is Var[gap]; burstiness lives here. Poisson: mean².
	// Gamma(k): mean²/k. Weibull(k): mean²·(Γ(1+2/k)/Γ²(1+1/k) − 1).
	Variance float64
}

// GapMoments reports the analytic mean and variance of the arrival
// process's inter-arrival gap. The shape defaulting matches sampleGap:
// Shape 0 means 1, which reduces Gamma and Weibull to exponential.
func (a Arrival) GapMoments() GapMoments {
	mean := 1 / a.Rate
	shape := a.Shape
	if shape == 0 {
		shape = 1
	}
	var variance float64
	switch a.Process {
	case GammaProc:
		// Gamma(k, θ=mean/k): Var = kθ² = mean²/k.
		variance = mean * mean / shape
	case WeibullProc:
		// Weibull(k, λ=mean/Γ(1+1/k)): Var = λ²(Γ(1+2/k) − Γ²(1+1/k)).
		g1 := math.Gamma(1 + 1/shape)
		g2 := math.Gamma(1 + 2/shape)
		variance = mean * mean * (g2 - g1*g1) / (g1 * g1)
	default: // Poisson → exponential gaps.
		variance = mean * mean
	}
	return GapMoments{Mean: mean, Variance: variance}
}

// MixMoments are the expected per-event op counts of a Mix, mirroring
// exactly how Compose draws events: event kind proportional to the
// weights, batches of BatchSize ops with the in-batch write fraction
// following the read/write balance (1-in-4 for batch-only mixes).
type MixMoments struct {
	OpsPerEvent      float64
	ReadOpsPerEvent  float64
	WriteOpsPerEvent float64
	// InBatchWriteFraction is the probability one op inside a batch
	// event is a write.
	InBatchWriteFraction float64
}

// Moments reports the mix's expected per-event op counts. The BatchSize
// defaulting (0 → 16) matches Compose.
func (m Mix) Moments() MixMoments {
	batch := float64(m.BatchSize)
	if m.BatchSize == 0 {
		batch = 16
	}
	wsum := float64(m.ReadWeight + m.WriteWeight + m.BatchWeight)
	wf := 0.25
	if m.ReadWeight+m.WriteWeight > 0 {
		wf = float64(m.WriteWeight) / float64(m.ReadWeight+m.WriteWeight)
	}
	r, w, b := float64(m.ReadWeight)/wsum, float64(m.WriteWeight)/wsum, float64(m.BatchWeight)/wsum
	return MixMoments{
		OpsPerEvent:          r + w + b*batch,
		ReadOpsPerEvent:      r + b*batch*(1-wf),
		WriteOpsPerEvent:     w + b*batch*wf,
		InBatchWriteFraction: wf,
	}
}

// WithDefaults resolves the pattern's documented zero-value defaults
// (stride 1, ZipfS 1.2, PageLines 64) so consumers see the parameters
// newAddrGen actually uses.
func (p AddrPattern) WithDefaults() AddrPattern {
	if p.Kind == AddrStream && p.Stride == 0 {
		p.Stride = 1
	}
	if p.Kind == AddrZipf {
		if p.ZipfS == 0 {
			p.ZipfS = 1.2
		}
		if p.PageLines == 0 {
			p.PageLines = 64
		}
	}
	return p
}

// ZipfPageWeights returns the unnormalized page-popularity weights of
// an AddrZipf pattern over the given address space — weight(k) ∝
// (1+k)^−s, matching rand.NewZipf(rng, s, 1, pages−1) — along with the
// page count. Lines within a page are uniform. Returns nil for
// non-Zipf patterns.
func (p AddrPattern) ZipfPageWeights(addrSpace uint64) []float64 {
	if p.Kind != AddrZipf {
		return nil
	}
	p = p.WithDefaults()
	pages := addrSpace / p.PageLines
	if pages == 0 {
		pages = 1
	}
	w := make([]float64, pages)
	for k := range w {
		w[k] = math.Pow(1+float64(k), -p.ZipfS)
	}
	return w
}

// ClientMoments are one client's analytic traffic moments.
type ClientMoments struct {
	Name   string
	Events int
	// Gap and MeanRate describe the arrival process (events/second).
	Gap      GapMoments
	MeanRate float64
	Mix      MixMoments
	// ReadOps/WriteOps are the expected op totals over the client's run.
	ReadOps  float64
	WriteOps float64
	// Addr is the pattern with its defaults resolved; Payload is the
	// line class every write of this client carries.
	Addr    AddrPattern
	Payload PayloadKind
}

// SpecMoments are the whole spec's analytic moments: the workload
// parameters (compressibility mix, page locality, read/write ratio) the
// paper's metrics are functions of.
type SpecMoments struct {
	AddrSpace uint64
	// Prefill is the resolved prefill line count (loadgen semantics:
	// 0 → AddrSpace/2 capped at 64Ki, negative → none) and
	// PrefillPayload the class those lines carry (first client's).
	Prefill        uint64
	PrefillPayload PayloadKind
	Events         int
	// Expected op totals across all clients (prefill excluded).
	Ops      float64
	ReadOps  float64
	WriteOps float64
	// PayloadWeights is the write-op-weighted payload-class mix,
	// prefill included; weights sum to 1.
	PayloadWeights map[PayloadKind]float64
	Clients        []ClientMoments
}

// Moments derives the spec's analytic moments. It assumes the spec
// validates; call Validate first when the spec is untrusted.
func (s Spec) Moments() SpecMoments {
	m := SpecMoments{
		AddrSpace:      s.AddrSpace,
		PrefillPayload: PayloadMixed,
		PayloadWeights: make(map[PayloadKind]float64),
	}
	switch {
	case s.Prefill > 0:
		m.Prefill = uint64(s.Prefill)
	case s.Prefill == 0:
		m.Prefill = s.AddrSpace / 2
		if m.Prefill > 1<<16 {
			m.Prefill = 1 << 16
		}
	}
	if len(s.Clients) > 0 {
		m.PrefillPayload = s.Clients[0].Payload
	}
	totalWrites := float64(m.Prefill)
	m.PayloadWeights[m.PrefillPayload] += float64(m.Prefill)
	for _, c := range s.Clients {
		mm := c.Mix.Moments()
		cm := ClientMoments{
			Name:     c.Name,
			Events:   c.Events,
			Gap:      c.Arrival.GapMoments(),
			MeanRate: c.Arrival.Rate,
			Mix:      mm,
			ReadOps:  float64(c.Events) * mm.ReadOpsPerEvent,
			WriteOps: float64(c.Events) * mm.WriteOpsPerEvent,
			Addr:     c.Addr.WithDefaults(),
			Payload:  c.Payload,
		}
		m.Events += c.Events
		m.Ops += float64(c.Events) * mm.OpsPerEvent
		m.ReadOps += cm.ReadOps
		m.WriteOps += cm.WriteOps
		m.PayloadWeights[c.Payload] += cm.WriteOps
		totalWrites += cm.WriteOps
		m.Clients = append(m.Clients, cm)
	}
	if totalWrites > 0 {
		for k := range m.PayloadWeights {
			m.PayloadWeights[k] /= totalWrites
		}
	}
	return m
}

// PayloadLine builds one line of the given payload class — the same
// pure (addr, version) function Compose uses for that class. The twin
// probes these through the real compressors to derive per-class size
// distributions instead of hardcoding codec behavior.
func PayloadLine(kind PayloadKind, addr, version uint64) []byte {
	return payloadFunc(kind)(addr, version)
}

// Kinds lists every payload class, in declaration order.
func Kinds() []PayloadKind {
	return []PayloadKind{PayloadMixed, PayloadCompressible, PayloadPointer, PayloadHostile, PayloadZero}
}
