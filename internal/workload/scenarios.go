package workload

import (
	"fmt"
	"sort"
	"time"
)

// A preset is a named scenario builder: given a seed and a total event
// budget it yields a fully-specified Spec. Presets are keyed to memory
// behavior, not to applications — each one isolates one compressibility
// × locality × burstiness corner the engine must keep handling.
type preset struct {
	desc  string
	build func(seed int64, events int) Spec
}

var presets = map[string]preset{
	// streaming: sequential array scan, highly compressible payloads,
	// steady Poisson arrivals. The predictor's easiest case (uniform
	// pages) and compression's best case.
	"streaming": {
		desc: "sequential scan, compressible array payloads, steady Poisson arrivals",
		build: func(seed int64, events int) Spec {
			return Spec{
				Name: "streaming", Seed: seed, AddrSpace: 1 << 13, Prefill: 1 << 13,
				Clients: []ClientSpec{{
					Name: "scanner", Events: events,
					Arrival: Arrival{Process: Poisson, Rate: 2000},
					Mix:     Mix{ReadWeight: 4, WriteWeight: 1, BatchWeight: 1, BatchSize: 16},
					Addr:    AddrPattern{Kind: AddrStream, Stride: 1},
					Payload: PayloadCompressible,
				}},
			}
		},
	},
	// pointer-chasing: dependent random walk with pointer-run payloads
	// and machine-regular Gamma(3) pacing. No page locality, so COPR
	// leans on its global/line components rather than page history.
	"pointer-chasing": {
		desc: "dependent pseudo-random walk, pointer-run payloads, regular Gamma(3) pacing",
		build: func(seed int64, events int) Spec {
			return Spec{
				Name: "pointer-chasing", Seed: seed, AddrSpace: 1 << 13, Prefill: 1 << 13,
				Clients: []ClientSpec{{
					Name: "chaser", Events: events,
					Arrival: Arrival{Process: GammaProc, Rate: 1500, Shape: 3},
					Mix:     Mix{ReadWeight: 6, WriteWeight: 1, BatchWeight: 1, BatchSize: 8},
					Addr:    AddrPattern{Kind: AddrChase},
					Payload: PayloadPointer,
				}},
			}
		},
	},
	// zipfian-hot-page: skewed page popularity with a two-period
	// (diurnal + hourly) rate envelope and mixed-compressibility lines —
	// the serving-cache shape where a few 4KB pages absorb most reads.
	"zipfian-hot-page": {
		desc: "Zipf(1.2) page skew, mixed payloads, diurnal+hourly rate envelope",
		build: func(seed int64, events int) Spec {
			return Spec{
				Name: "zipfian-hot-page", Seed: seed, AddrSpace: 1 << 14, Prefill: 1 << 14,
				Clients: []ClientSpec{{
					Name: "frontend", Events: events,
					Arrival: Arrival{Process: Poisson, Rate: 3000},
					Envelope: []Period{
						{Period: 60 * time.Second, Amplitude: 0.5},
						{Period: 7 * time.Second, Amplitude: 0.25, Phase: 1.3},
					},
					Mix:     Mix{ReadWeight: 8, WriteWeight: 1, BatchWeight: 1, BatchSize: 16},
					Addr:    AddrPattern{Kind: AddrZipf, ZipfS: 1.2, PageLines: 64},
					Payload: PayloadMixed,
				}},
			}
		},
	},
	// write-burst: a steady zipfian reader composed with a bursty
	// Gamma(0.3) sequential writer — write clumps slam the shard queues
	// while reads keep flowing, the checkpoint/flush shape.
	"write-burst": {
		desc: "steady zipfian reader + bursty Gamma(0.3) sequential batch writer",
		build: func(seed int64, events int) Spec {
			wEvents := events * 3 / 5
			rEvents := events - wEvents
			if rEvents < 1 {
				rEvents = 1
			}
			if wEvents < 1 {
				wEvents = 1
			}
			return Spec{
				Name: "write-burst", Seed: seed, AddrSpace: 1 << 13, Prefill: 1 << 12,
				Clients: []ClientSpec{
					{
						Name: "reader", Events: rEvents,
						Arrival: Arrival{Process: Poisson, Rate: 1000},
						Mix:     Mix{ReadWeight: 1, WriteWeight: 0, BatchWeight: 0},
						Addr:    AddrPattern{Kind: AddrZipf, ZipfS: 1.1, PageLines: 64},
						Payload: PayloadMixed,
					},
					{
						Name: "burster", Events: wEvents,
						Arrival: Arrival{Process: GammaProc, Rate: 2000, Shape: 0.3},
						Mix:     Mix{ReadWeight: 0, WriteWeight: 2, BatchWeight: 1, BatchSize: 32},
						Addr:    AddrPattern{Kind: AddrStream, Stride: 1},
						Payload: PayloadCompressible,
					},
				},
			}
		},
	},
	// tiered-hotset: a sharply skewed reader over a small hot set
	// composed with a cold sequential scanner. The shape the two-tier
	// backend is for — the hot set fits a modest near tier while the
	// scan would pollute it, so it splits lru vs freq policies: lru
	// promotes every scanned line once, freq keeps the scan out.
	"tiered-hotset": {
		desc: "Zipf(1.4) hot-set reader + cold sequential scanner, the near-tier capacity shape",
		build: func(seed int64, events int) Spec {
			hEvents := events * 4 / 5
			cEvents := events - hEvents
			if hEvents < 1 {
				hEvents = 1
			}
			if cEvents < 1 {
				cEvents = 1
			}
			return Spec{
				Name: "tiered-hotset", Seed: seed, AddrSpace: 1 << 14, Prefill: 1 << 14,
				Clients: []ClientSpec{
					{
						Name: "hotset", Events: hEvents,
						Arrival: Arrival{Process: Poisson, Rate: 2500},
						Mix:     Mix{ReadWeight: 6, WriteWeight: 1, BatchWeight: 1, BatchSize: 16},
						Addr:    AddrPattern{Kind: AddrZipf, ZipfS: 1.4, PageLines: 16},
						Payload: PayloadMixed,
					},
					{
						Name: "scanner", Events: cEvents,
						Arrival: Arrival{Process: GammaProc, Rate: 600, Shape: 2},
						Mix:     Mix{ReadWeight: 1, WriteWeight: 1, BatchWeight: 1, BatchSize: 32},
						Addr:    AddrPattern{Kind: AddrStream, Stride: 1},
						Payload: PayloadCompressible,
					},
				},
			}
		},
	},
	// compression-hostile: uniform addresses, incompressible payloads,
	// heavy-tailed Weibull(0.6) arrivals. Compression wins nothing, so
	// this pins the metadata-overhead floor the paper is about.
	"compression-hostile": {
		desc: "uniform random, incompressible payloads, heavy-tailed Weibull(0.6) arrivals",
		build: func(seed int64, events int) Spec {
			return Spec{
				Name: "compression-hostile", Seed: seed, AddrSpace: 1 << 13, Prefill: 1 << 12,
				Clients: []ClientSpec{{
					Name: "adversary", Events: events,
					Arrival: Arrival{Process: WeibullProc, Rate: 2000, Shape: 0.6},
					Mix:     Mix{ReadWeight: 2, WriteWeight: 2, BatchWeight: 1, BatchSize: 16},
					Addr:    AddrPattern{Kind: AddrUniform},
					Payload: PayloadHostile,
				}},
			}
		},
	},
}

// Names lists the preset scenarios, sorted.
func Names() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Describe returns a preset's one-line description, or "".
func Describe(name string) string { return presets[name].desc }

// Preset builds a named scenario Spec with the given seed and total
// event budget (0 defaults to 2000, split across the scenario's clients
// by its own weighting).
func Preset(name string, seed int64, events int) (Spec, error) {
	p, ok := presets[name]
	if !ok {
		return Spec{}, fmt.Errorf("workload: unknown scenario %q (have %v)", name, Names())
	}
	if events <= 0 {
		events = 2000
	}
	return p.build(seed, events), nil
}
