package workload

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// Distribution-fit tests: the arrival samplers must actually draw from
// the distributions they claim (Kolmogorov–Smirnov against the closed-
// form CDFs) and the zipf address generator must match its power law
// (chi-square). Seeds are fixed, so these are deterministic regression
// tests, not flaky statistics: the thresholds are the α=0.001 critical
// values, far above what a correct sampler produces at this n.

const distSamples = 20000

// ksStatistic computes the one-sample KS distance between samples and a
// reference CDF.
func ksStatistic(samples []float64, cdf func(float64) float64) float64 {
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	d := 0.0
	for i, x := range sorted {
		f := cdf(x)
		if hi := float64(i+1)/n - f; hi > d {
			d = hi
		}
		if lo := f - float64(i)/n; lo > d {
			d = lo
		}
	}
	return d
}

// gammaP is the regularized lower incomplete gamma P(k, x) — the
// Gamma(k, 1) CDF — via the standard series (x < k+1) and continued-
// fraction (x >= k+1) expansions.
func gammaP(k, x float64) float64 {
	if x <= 0 {
		return 0
	}
	lg, _ := math.Lgamma(k)
	if x < k+1 {
		// Series: P(k,x) = x^k e^-x / Γ(k) · Σ x^n / (k(k+1)...(k+n)).
		ap := k
		sum := 1 / k
		del := sum
		for i := 0; i < 500; i++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*1e-14 {
				break
			}
		}
		return sum * math.Exp(-x+k*math.Log(x)-lg)
	}
	// Continued fraction for Q(k,x) = 1 - P(k,x), modified Lentz.
	const tiny = 1e-300
	b := x + 1 - k
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - k)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-14 {
			break
		}
	}
	return 1 - math.Exp(-x+k*math.Log(x)-lg)*h
}

// TestGammaPSanity anchors the test-local CDF itself before it judges
// the samplers: P(1,x) must equal 1-e^-x.
func TestGammaPSanity(t *testing.T) {
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		want := 1 - math.Exp(-x)
		if got := gammaP(1, x); math.Abs(got-want) > 1e-10 {
			t.Fatalf("gammaP(1,%g) = %.12f, want %.12f", x, got, want)
		}
	}
	// P(k, k) is near the median for moderate k.
	if p := gammaP(3, 3); p < 0.5 || p > 0.65 {
		t.Fatalf("gammaP(3,3) = %g, want ~0.58", p)
	}
}

// TestInterArrivalDistributions: KS goodness-of-fit for every arrival
// process sampleGap supports, plus a mean check — all three
// distributions are normalized to mean 1/Rate by construction.
func TestInterArrivalDistributions(t *testing.T) {
	cases := []struct {
		name    string
		arrival Arrival
		cdf     func(float64) float64
	}{
		{
			"poisson-exponential",
			Arrival{Process: Poisson, Rate: 1},
			func(x float64) float64 { return 1 - math.Exp(-x) },
		},
		{
			"gamma-shape-3",
			Arrival{Process: GammaProc, Rate: 1, Shape: 3},
			// Gamma(k=3, θ=1/3): P(3, 3x).
			func(x float64) float64 { return gammaP(3, 3*x) },
		},
		{
			"gamma-shape-0.3-bursty",
			Arrival{Process: GammaProc, Rate: 1, Shape: 0.3},
			func(x float64) float64 { return gammaP(0.3, 0.3*x) },
		},
		{
			"weibull-shape-0.6-heavy-tail",
			Arrival{Process: WeibullProc, Rate: 1, Shape: 0.6},
			func(x float64) float64 {
				scale := 1 / math.Gamma(1+1/0.6)
				return 1 - math.Exp(-math.Pow(x/scale, 0.6))
			},
		},
		{
			"weibull-shape-2-regular",
			Arrival{Process: WeibullProc, Rate: 1, Shape: 2},
			func(x float64) float64 {
				scale := 1 / math.Gamma(1+1/2.0)
				return 1 - math.Exp(-math.Pow(x/scale, 2))
			},
		},
	}
	// α=0.001 KS critical value: 1.95/√n.
	threshold := 1.95 / math.Sqrt(distSamples)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(12345))
			samples := make([]float64, distSamples)
			mean := 0.0
			for i := range samples {
				samples[i] = sampleGap(rng, tc.arrival)
				mean += samples[i]
			}
			mean /= distSamples
			if d := ksStatistic(samples, tc.cdf); d > threshold {
				t.Fatalf("KS statistic %.5f exceeds α=0.001 threshold %.5f: sampler does not match its CDF", d, threshold)
			}
			if mean < 0.93 || mean > 1.07 {
				t.Fatalf("sample mean %.4f, want ~1.0 (all processes normalize to 1/Rate)", mean)
			}
		})
	}
}

// TestSampleGapDeterminism: the gap stream is a pure function of the RNG
// seed — identical across replays, distinct across seeds.
func TestSampleGapDeterminism(t *testing.T) {
	draw := func(seed int64) []float64 {
		rng := rand.New(rand.NewSource(seed))
		out := make([]float64, 256)
		for i := range out {
			out[i] = sampleGap(rng, Arrival{Process: GammaProc, Rate: 1000, Shape: 0.3})
		}
		return out
	}
	a, b, c := draw(7), draw(7), draw(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("gap %d diverged across same-seed replays: %g vs %g", i, a[i], b[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("distinct seeds produced an identical gap stream")
	}
}

// TestZipfPageChiSquare: the zipf address generator's page-visit
// frequencies must match p(k) ∝ (1+k)^-s. Top pages are tested
// individually, the tail pooled, chi-square at α=0.001.
func TestZipfPageChiSquare(t *testing.T) {
	const (
		space     = 1 << 14
		pageLines = 64
		s         = 1.2
		n         = 50000
	)
	pages := uint64(space / pageLines)
	rng := rand.New(rand.NewSource(424242))
	gen := newAddrGen(AddrPattern{Kind: AddrZipf, ZipfS: s, PageLines: pageLines}, space, rng)

	counts := make([]float64, pages)
	for i := 0; i < n; i++ {
		addr := gen.next(rng)
		counts[addr/pageLines]++
	}

	// Expected page probabilities: rand.NewZipf(r, s, 1, imax) draws k in
	// [0,imax] with p(k) ∝ (1+k)^-s.
	probs := make([]float64, pages)
	total := 0.0
	for k := range probs {
		probs[k] = math.Pow(1+float64(k), -s)
		total += probs[k]
	}
	for k := range probs {
		probs[k] /= total
	}

	// Bins: the 10 hottest pages individually, everything else pooled.
	const head = 10
	chi2 := 0.0
	tailObs, tailExp := 0.0, 0.0
	for k := uint64(0); k < pages; k++ {
		exp := probs[k] * n
		if k < head {
			chi2 += (counts[k] - exp) * (counts[k] - exp) / exp
		} else {
			tailObs += counts[k]
			tailExp += exp
		}
	}
	chi2 += (tailObs - tailExp) * (tailObs - tailExp) / tailExp
	// 11 bins ⇒ 10 degrees of freedom; χ²(10, α=0.001) = 29.59.
	if chi2 > 29.59 {
		t.Fatalf("chi-square %.2f exceeds χ²(10, 0.001)=29.59: zipf page skew does not match (1+k)^-%g", chi2, s)
	}
	// The skew must actually be skewed: page 0 dominates the coldest head page.
	if counts[0] < 4*counts[head-1] {
		t.Fatalf("page 0 saw %v visits vs page %d's %v — hot-page skew missing", counts[0], head-1, counts[head-1])
	}
}

// TestStreamChaseGenerators: the stream generator strides and wraps; the
// chase generator is a dependent chain (same walk from the same start).
func TestStreamChaseGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := &streamGen{cur: 5, stride: 3, space: 8}
	want := []uint64{5, 0, 3, 6, 1}
	for i, w := range want {
		if got := g.next(rng); got != w {
			t.Fatalf("stream step %d: got %d, want %d", i, got, w)
		}
	}
	c1 := &chaseGen{cur: 77, space: 1 << 12}
	c2 := &chaseGen{cur: 77, space: 1 << 12}
	for i := 0; i < 64; i++ {
		if a, b := c1.next(rng), c2.next(rng); a != b {
			t.Fatalf("chase step %d diverged from identical start: %d vs %d", i, a, b)
		}
	}
}
