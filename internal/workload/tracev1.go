package workload

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"attache/internal/loadgen"
	"attache/internal/shard"
)

// tracev1 is the versioned NDJSON capture format for engine traffic.
// Line 1 is the header; every following line is one event:
//
//	{"format":"attache-trace","version":1}
//	{"at":152340,"ops":[{"a":42},{"w":true,"a":7,"d":"<base64 64B>"}]}
//
// "at" is the event's offset from the start of the capture in
// nanoseconds, "a" the line address, "w" marks writes, and "d" carries
// the write payload (base64, as encoding/json renders []byte). The
// format is append-only by construction: a recorder can crash mid-file
// and every complete line before the tear still replays.
//
// Version bumps change "version" and get their own decoder; decoding
// rejects unknown versions rather than guessing.

// TraceFormat and TraceVersion identify the codec in the header line.
const (
	TraceFormat  = "attache-trace"
	TraceVersion = 1
)

// maxTraceOps bounds one recorded event, mirroring serve's batch cap so
// a malformed line cannot balloon memory during decode.
const maxTraceOps = 4096

type traceHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
}

type traceOp struct {
	Write bool   `json:"w,omitempty"`
	Addr  uint64 `json:"a"`
	Data  []byte `json:"d,omitempty"`
}

type traceEvent struct {
	At  int64     `json:"at"`
	Ops []traceOp `json:"ops"`
}

// EncodeTrace writes events as a tracev1 NDJSON stream.
func EncodeTrace(w io.Writer, events []loadgen.Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(traceHeader{Format: TraceFormat, Version: TraceVersion}); err != nil {
		return fmt.Errorf("workload: encode trace header: %w", err)
	}
	for i, ev := range events {
		te := traceEvent{At: int64(ev.At), Ops: make([]traceOp, len(ev.Ops))}
		for j, op := range ev.Ops {
			te.Ops[j] = traceOp{Write: op.Write, Addr: op.Addr, Data: op.Data}
		}
		if err := enc.Encode(te); err != nil {
			return fmt.Errorf("workload: encode trace event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// DecodeTrace parses a tracev1 stream back into replayable events.
// Every malformed input — wrong header, unknown version, bad JSON,
// negative offsets, empty or oversized events — is a returned error,
// never a panic, and the decoder normalizes what it accepts so that
// decode→encode→decode is the identity (pinned by FuzzTraceV1Decode).
func DecodeTrace(r io.Reader) ([]loadgen.Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	line := 0
	var events []loadgen.Event
	headerSeen := false
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if !headerSeen {
			var h traceHeader
			if err := strictUnmarshal(raw, &h); err != nil {
				return nil, fmt.Errorf("workload: trace line %d: bad header: %w", line, err)
			}
			if h.Format != TraceFormat {
				return nil, fmt.Errorf("workload: trace line %d: format %q, want %q", line, h.Format, TraceFormat)
			}
			if h.Version != TraceVersion {
				return nil, fmt.Errorf("workload: trace line %d: unsupported version %d (decoder speaks %d)", line, h.Version, TraceVersion)
			}
			headerSeen = true
			continue
		}
		var te traceEvent
		if err := strictUnmarshal(raw, &te); err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		if te.At < 0 {
			return nil, fmt.Errorf("workload: trace line %d: negative offset %d", line, te.At)
		}
		if len(te.Ops) == 0 {
			return nil, fmt.Errorf("workload: trace line %d: event with no ops", line)
		}
		if len(te.Ops) > maxTraceOps {
			return nil, fmt.Errorf("workload: trace line %d: %d ops exceeds limit %d", line, len(te.Ops), maxTraceOps)
		}
		ev := loadgen.Event{At: time.Duration(te.At), Ops: make([]shard.Op, len(te.Ops))}
		for j, op := range te.Ops {
			data := op.Data
			if len(data) == 0 {
				// Normalize empty to nil so re-encoding (omitempty) round-trips.
				data = nil
			}
			if !op.Write && data != nil {
				return nil, fmt.Errorf("workload: trace line %d: read op %d carries data", line, j)
			}
			ev.Ops[j] = shard.Op{Write: op.Write, Addr: op.Addr, Data: data}
		}
		ev.Kind = eventKind(ev.Ops)
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: trace read: %w", err)
	}
	if !headerSeen {
		return nil, fmt.Errorf("workload: trace: missing header line")
	}
	return events, nil
}

// strictUnmarshal rejects trailing garbage after the JSON value on a
// line (json.Unmarshal alone would, but with a vaguer error) and any
// non-object line.
func strictUnmarshal(raw []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON value")
	}
	return nil
}

// eventKind recovers the report bucket for a decoded event: captures do
// not store kinds because they are derivable — multi-op events are
// batches, single ops bucket by direction.
func eventKind(ops []shard.Op) loadgen.Kind {
	if len(ops) != 1 {
		return loadgen.Batch
	}
	if ops[0].Write {
		return loadgen.Write
	}
	return loadgen.Read
}

// TraceWriter records live op traffic as a tracev1 stream. It is safe
// for concurrent use — the serve layer records from every request
// goroutine — and assigns each event its wall-clock offset from the
// writer's creation. Ops are deep-copied at record time (payload
// included), so callers may reuse buffers immediately.
type TraceWriter struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	enc    *json.Encoder
	start  time.Time
	events int
	err    error
}

// NewTraceWriter starts a capture onto w, writing the header eagerly so
// even an empty capture is a valid trace.
func NewTraceWriter(w io.Writer) *TraceWriter {
	bw := bufio.NewWriterSize(w, 1<<16)
	tw := &TraceWriter{bw: bw, enc: json.NewEncoder(bw), start: time.Now()}
	tw.err = tw.enc.Encode(traceHeader{Format: TraceFormat, Version: TraceVersion})
	return tw
}

// RecordOps appends one event holding ops at the current offset. Errors
// are sticky and surfaced by Flush — recording is off the request hot
// path's error flow on purpose.
func (tw *TraceWriter) RecordOps(ops []shard.Op) {
	if len(ops) == 0 {
		return
	}
	te := traceEvent{Ops: make([]traceOp, len(ops))}
	for j, op := range ops {
		var data []byte
		if op.Write && len(op.Data) > 0 {
			data = append([]byte(nil), op.Data...)
		}
		te.Ops[j] = traceOp{Write: op.Write, Addr: op.Addr, Data: data}
	}
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if tw.err != nil {
		return
	}
	// Stamped under the lock so capture offsets are monotone — replay
	// pacing depends on non-decreasing arrival times.
	te.At = int64(time.Since(tw.start))
	if err := tw.enc.Encode(te); err != nil {
		tw.err = err
		return
	}
	tw.events++
}

// Events reports how many events have been recorded so far.
func (tw *TraceWriter) Events() int {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	return tw.events
}

// Flush drains buffered lines to the underlying writer and returns the
// first error the capture hit, if any.
func (tw *TraceWriter) Flush() error {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if tw.err != nil {
		return tw.err
	}
	return tw.bw.Flush()
}
