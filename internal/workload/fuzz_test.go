package workload

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzTraceV1Decode pins two properties of the tracev1 codec:
//
//  1. No input panics the decoder — malformed traces are errors.
//  2. Decoding is normalizing: whatever DecodeTrace accepts,
//     re-encoding and re-decoding it is the identity. This is what lets
//     a capture be rewritten (filtered, truncated) by third-party tools
//     and still replay identically.
//
// The checked-in corpus under testdata/fuzz/FuzzTraceV1Decode/ keeps the
// interesting shapes (valid traces, near-misses) regression-tested on
// every plain `go test` run; CI's fuzz-smoke job additionally explores
// from them.
func FuzzTraceV1Decode(f *testing.F) {
	f.Add([]byte(`{"format":"attache-trace","version":1}` + "\n"))
	f.Add([]byte(`{"format":"attache-trace","version":1}` + "\n" +
		`{"at":0,"ops":[{"a":42}]}` + "\n"))
	f.Add([]byte(`{"format":"attache-trace","version":1}` + "\n" +
		`{"at":152340,"ops":[{"a":1},{"w":true,"a":7,"d":"QUJDREVGR0g="}]}` + "\n"))
	f.Add([]byte(`{"format":"attache-trace","version":2}` + "\n"))
	f.Add([]byte(`{"at":0,"ops":[{"a":1}]}` + "\n"))
	f.Add([]byte(`{"format":"attache-trace","version":1}` + "\n" +
		`{"at":-5,"ops":[{"a":1}]}` + "\n"))
	f.Add([]byte(`{"format":"attache-trace","version":1}` + "\n" +
		`{"at":0,"ops":[]}` + "\n"))
	f.Add([]byte(`{"format":"attache-trace","version":1}` + "\n" +
		`{"at":0,"ops":[{"a":1,"d":"QQ=="}]}` + "\n"))
	f.Add([]byte("\xff\xfe not json at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := DecodeTrace(bytes.NewReader(data))
		if err != nil {
			return // rejected is fine; panicking is not
		}
		var out bytes.Buffer
		if err := EncodeTrace(&out, events); err != nil {
			t.Fatalf("accepted events failed to re-encode: %v", err)
		}
		again, err := DecodeTrace(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		if !reflect.DeepEqual(events, again) {
			t.Fatalf("decode∘encode is not the identity:\nfirst:  %#v\nsecond: %#v", events, again)
		}
		if OpChecksum(events) != OpChecksum(again) {
			t.Fatal("op checksum changed across a round trip")
		}
	})
}
