// Package workload is the generative workload layer: it turns a
// declarative Spec — one or more clients, each with its own stochastic
// arrival process, multi-period rate envelope, address pattern, payload
// compressibility, and op mix — into one seeded, deterministic event
// stream that anything implementing loadgen.Target can execute.
//
// The paper evaluates Attaché across workloads whose compressibility and
// locality profiles differ wildly (streaming array scans vs. pointer
// chasing vs. hot-page skew); this package makes those traffic shapes
// first-class, named, and regression-testable. Five preset scenarios
// (Names) each pin a distinct memory behavior, and per-scenario golden
// profiles under testdata/golden/ turn "did this PR change behavior
// under zipfian traffic?" into a deterministic test.
//
// Determinism contract: Compose expands a Spec into the full event
// sequence up front. Every random choice — inter-arrival gaps, op kinds,
// addresses, payloads — derives from Spec.Seed via per-client
// splitmix64-derived sub-seeds, so the same Spec always yields a
// byte-identical stream (fingerprinted by loadgen.Checksum /
// OpChecksum), and two clients never share RNG state: adding a client
// does not perturb the others' sequences.
//
// The companion tracev1 codec (EncodeTrace/DecodeTrace/TraceWriter)
// records real daemon traffic as versioned NDJSON so a capture taken
// once can be replayed byte-deterministically — see cmd/attacheload
// -replay and serve.Config.Record.
package workload

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"time"

	"attache/internal/core"
	"attache/internal/loadgen"
	"attache/internal/shard"
)

// Process selects a client's inter-arrival distribution.
type Process uint8

const (
	// Poisson arrivals: exponential gaps — memoryless open-loop traffic.
	Poisson Process = iota
	// Gamma arrivals with shape k: k>1 is more regular than Poisson
	// (machine-like pacing), k<1 is burstier (gaps cluster, then gape).
	GammaProc
	// Weibull arrivals with shape k: k<1 gives the heavy-tailed
	// bursty-session shape measured in production serving traces.
	WeibullProc
)

func (p Process) String() string {
	switch p {
	case Poisson:
		return "poisson"
	case GammaProc:
		return "gamma"
	case WeibullProc:
		return "weibull"
	}
	return fmt.Sprintf("process(%d)", uint8(p))
}

// Arrival is one client's inter-arrival process: a distribution, its
// mean rate in events/second, and (for Gamma/Weibull) a shape.
type Arrival struct {
	Process Process `json:"process"`
	// Rate is the mean arrival rate, events/second. Must be > 0.
	Rate float64 `json:"rate"`
	// Shape is the Gamma/Weibull shape parameter k (>0). Ignored for
	// Poisson. 0 defaults to 1 (which makes both reduce to exponential).
	Shape float64 `json:"shape,omitempty"`
}

// Period is one sinusoidal component of a client's rate envelope. An
// envelope of several Periods models multi-period (e.g. diurnal +
// hourly) load swings: the instantaneous rate is
//
//	rate(t) = Arrival.Rate * max(0.05, 1 + Σ Amplitude·sin(2πt/Period + Phase))
//
// and each sampled gap is scaled by the envelope at the client's current
// clock, so dense phases really do arrive densely.
type Period struct {
	Period    time.Duration `json:"period"`
	Amplitude float64       `json:"amplitude"`
	Phase     float64       `json:"phase,omitempty"`
}

// AddrKind selects a client's address-pattern generator.
type AddrKind uint8

const (
	// AddrUniform draws addresses uniformly over the space.
	AddrUniform AddrKind = iota
	// AddrStream walks the space sequentially with a fixed stride and
	// wraps — the array-scan / streaming pattern.
	AddrStream
	// AddrChase performs a deterministic pseudo-random walk (each address
	// is a hash of the previous one) — the dependent pointer-chasing
	// pattern with near-zero page locality.
	AddrChase
	// AddrZipf draws a page from a Zipf distribution and a uniform line
	// within it — the hot-page skew pattern.
	AddrZipf
)

func (k AddrKind) String() string {
	switch k {
	case AddrUniform:
		return "uniform"
	case AddrStream:
		return "stream"
	case AddrChase:
		return "chase"
	case AddrZipf:
		return "zipf"
	}
	return fmt.Sprintf("addr(%d)", uint8(k))
}

// AddrPattern configures a client's address generator.
type AddrPattern struct {
	Kind AddrKind `json:"kind"`
	// Stride is the line step for AddrStream. 0 defaults to 1.
	Stride uint64 `json:"stride,omitempty"`
	// ZipfS is the Zipf skew s (>1) for AddrZipf. 0 defaults to 1.2.
	ZipfS float64 `json:"zipf_s,omitempty"`
	// PageLines is the page size in lines for AddrZipf (the unit of
	// hotness). 0 defaults to 64 (a 4 KB page of 64-byte lines).
	PageLines uint64 `json:"page_lines,omitempty"`
}

// PayloadKind selects what a client writes, which is what decides how
// compressible the memory becomes under that client.
type PayloadKind uint8

const (
	// PayloadMixed alternates by address parity between an array-like
	// line and an incompressible one — loadgen's default mix.
	PayloadMixed PayloadKind = iota
	// PayloadCompressible writes base+small-delta word runs that BDI
	// packs well below the sub-rank block — the best case.
	PayloadCompressible
	// PayloadPointer writes plausible 48-bit pointer runs with small
	// strides — compressible, but through the delta path.
	PayloadPointer
	// PayloadHostile writes keyed xorshift noise — incompressible by
	// every codec, the metadata-bandwidth worst case.
	PayloadHostile
	// PayloadZero writes all-zero lines — the degenerate best case.
	PayloadZero
)

func (k PayloadKind) String() string {
	switch k {
	case PayloadMixed:
		return "mixed"
	case PayloadCompressible:
		return "compressible"
	case PayloadPointer:
		return "pointer"
	case PayloadHostile:
		return "hostile"
	case PayloadZero:
		return "zero"
	}
	return fmt.Sprintf("payload(%d)", uint8(k))
}

// Mix is a client's op mix: relative weights for read, write, and batch
// events, and the op count of one batch.
type Mix struct {
	ReadWeight  int `json:"read_weight"`
	WriteWeight int `json:"write_weight"`
	BatchWeight int `json:"batch_weight"`
	// BatchSize is ops per batch event. 0 defaults to 16.
	BatchSize int `json:"batch_size,omitempty"`
}

// ClientSpec is one traffic source inside a Spec.
type ClientSpec struct {
	// Name labels the client in errors and docs.
	Name string `json:"name"`
	// Events is how many events this client contributes. Must be > 0.
	Events int `json:"events"`
	// Arrival is the inter-arrival process; Envelope (optional) modulates
	// its rate over time.
	Arrival  Arrival     `json:"arrival"`
	Envelope []Period    `json:"envelope,omitempty"`
	Mix      Mix         `json:"mix"`
	Addr     AddrPattern `json:"addr"`
	Payload  PayloadKind `json:"payload"`
}

// Spec is a complete generative workload: a seed, an address space, and
// one or more clients whose event streams are merged by arrival time.
type Spec struct {
	// Name labels the spec (preset scenarios set it to their own name).
	Name string `json:"name"`
	// Seed drives every random choice. Same Spec ⇒ same stream.
	Seed int64 `json:"seed"`
	// AddrSpace bounds generated line addresses. Must be > 0.
	AddrSpace uint64 `json:"addr_space"`
	// Prefill carries loadgen semantics: lines to write before the
	// measured run (0 = AddrSpace/2 capped at 64K, negative = none).
	Prefill int `json:"prefill"`
	// Clients are the traffic sources. At least one.
	Clients []ClientSpec `json:"clients"`
}

// Validate reports the first structural problem with the spec.
func (s Spec) Validate() error {
	if s.AddrSpace == 0 {
		return fmt.Errorf("workload: spec %q: AddrSpace must be > 0", s.Name)
	}
	if len(s.Clients) == 0 {
		return fmt.Errorf("workload: spec %q: needs at least one client", s.Name)
	}
	for i, c := range s.Clients {
		label := c.Name
		if label == "" {
			label = fmt.Sprintf("client %d", i)
		}
		if c.Events <= 0 {
			return fmt.Errorf("workload: spec %q: %s: Events must be > 0", s.Name, label)
		}
		if !(c.Arrival.Rate > 0) {
			return fmt.Errorf("workload: spec %q: %s: Arrival.Rate must be > 0", s.Name, label)
		}
		if c.Arrival.Process != Poisson && c.Arrival.Shape < 0 {
			return fmt.Errorf("workload: spec %q: %s: Arrival.Shape must be >= 0", s.Name, label)
		}
		m := c.Mix
		if m.ReadWeight < 0 || m.WriteWeight < 0 || m.BatchWeight < 0 ||
			m.ReadWeight+m.WriteWeight+m.BatchWeight == 0 {
			return fmt.Errorf("workload: spec %q: %s: op mix weights must be non-negative and sum > 0", s.Name, label)
		}
		if c.Addr.Kind == AddrZipf && c.Addr.ZipfS != 0 && c.Addr.ZipfS <= 1 {
			return fmt.Errorf("workload: spec %q: %s: ZipfS must be > 1", s.Name, label)
		}
	}
	return nil
}

// splitmix64 is the sub-seed mixer: one multiply-xorshift pass with full
// avalanche, so adjacent client indices get unrelated RNG streams.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// clientSeed derives client i's private RNG seed from the spec seed.
func clientSeed(seed int64, i int) int64 {
	return int64(splitmix64(uint64(seed) ^ splitmix64(uint64(i)+1)))
}

// Compose expands spec into its deterministic, time-merged event
// sequence. Each client's stream is generated independently from its
// derived sub-seed, then the streams are merged by arrival offset with a
// stable (client index, sequence) tie-break.
func Compose(spec Spec) ([]loadgen.Event, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	type tagged struct {
		ev     loadgen.Event
		client int
		seq    int
	}
	total := 0
	for _, c := range spec.Clients {
		total += c.Events
	}
	all := make([]tagged, 0, total)
	for ci, cs := range spec.Clients {
		rng := rand.New(rand.NewSource(clientSeed(spec.Seed, ci)))
		gen := newAddrGen(cs.Addr, spec.AddrSpace, rng)
		pay := payloadFunc(cs.Payload)
		mix := cs.Mix
		if mix.BatchSize == 0 {
			mix.BatchSize = 16
		}
		wsum := mix.ReadWeight + mix.WriteWeight + mix.BatchWeight
		// In-batch write probability follows the read/write balance; a
		// batch-only mix falls back to 1-in-4 writes like loadgen.
		wNum, wDen := mix.WriteWeight, mix.ReadWeight+mix.WriteWeight
		if wDen == 0 {
			wNum, wDen = 1, 4
		}
		var clock time.Duration
		for i := 0; i < cs.Events; i++ {
			gap := sampleGap(rng, cs.Arrival)
			gap /= envelopeAt(cs.Envelope, clock)
			clock += time.Duration(gap * float64(time.Second))
			ev := loadgen.Event{At: clock}
			switch w := rng.Intn(wsum); {
			case w < mix.ReadWeight:
				ev.Kind = loadgen.Read
				ev.Ops = []shard.Op{{Addr: gen.next(rng)}}
			case w < mix.ReadWeight+mix.WriteWeight:
				ev.Kind = loadgen.Write
				addr := gen.next(rng)
				ev.Ops = []shard.Op{{Write: true, Addr: addr, Data: pay(addr, rng.Uint64())}}
			default:
				ev.Kind = loadgen.Batch
				ev.Ops = make([]shard.Op, mix.BatchSize)
				for j := range ev.Ops {
					addr := gen.next(rng)
					if rng.Intn(wDen) < wNum {
						ev.Ops[j] = shard.Op{Write: true, Addr: addr, Data: pay(addr, rng.Uint64())}
					} else {
						ev.Ops[j] = shard.Op{Addr: addr}
					}
				}
			}
			all = append(all, tagged{ev, ci, i})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].ev.At != all[j].ev.At {
			return all[i].ev.At < all[j].ev.At
		}
		if all[i].client != all[j].client {
			return all[i].client < all[j].client
		}
		return all[i].seq < all[j].seq
	})
	events := make([]loadgen.Event, len(all))
	for i := range all {
		events[i] = all[i].ev
	}
	return events, nil
}

// PrefillPayload returns the payload generator prefill should use for
// spec: the first client's payload kind at version 0, so a scenario's
// baseline residency matches its traffic's compressibility.
func PrefillPayload(spec Spec) func(addr uint64) []byte {
	kind := PayloadMixed
	if len(spec.Clients) > 0 {
		kind = spec.Clients[0].Payload
	}
	pay := payloadFunc(kind)
	return func(addr uint64) []byte { return pay(addr, 0) }
}

// OpChecksum fingerprints the op content of an event stream — kinds,
// directions, addresses, and write payloads, but NOT arrival offsets —
// so a recorded capture (whose timestamps are wall-clock) can be proven
// op-identical to the plan that generated the traffic.
func OpChecksum(events []loadgen.Event) string {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for _, ev := range events {
		u64(uint64(ev.Kind))
		u64(uint64(len(ev.Ops)))
		for _, op := range ev.Ops {
			u64(op.Addr)
			if op.Write {
				u64(1)
				u64(uint64(len(op.Data)))
				h.Write(op.Data)
			} else {
				u64(0)
			}
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// --- arrival sampling ------------------------------------------------------

// sampleGap draws one inter-arrival gap in seconds for a (mean-rate
// normalized) arrival process. All three distributions are parameterized
// to the same mean 1/Rate so envelopes and rates compose uniformly.
func sampleGap(rng *rand.Rand, a Arrival) float64 {
	mean := 1 / a.Rate
	shape := a.Shape
	if shape == 0 {
		shape = 1
	}
	switch a.Process {
	case GammaProc:
		// Gamma(k, θ) has mean kθ; θ = mean/k keeps the rate fixed as
		// shape moves burstiness.
		return sampleGamma(rng, shape) * (mean / shape)
	case WeibullProc:
		// Weibull(k, λ) has mean λΓ(1+1/k); inverse-CDF sampling.
		scale := mean / math.Gamma(1+1/shape)
		return scale * math.Pow(-math.Log1p(-rng.Float64()), 1/shape)
	default: // Poisson
		return rng.ExpFloat64() * mean
	}
}

// sampleGamma draws Gamma(k, 1) via Marsaglia–Tsang squeeze (shape >= 1)
// with the standard boost for k < 1. Deterministic given the RNG stream.
func sampleGamma(rng *rand.Rand, k float64) float64 {
	if k < 1 {
		// Gamma(k) = Gamma(k+1) · U^(1/k).
		u := rng.Float64()
		return sampleGamma(rng, k+1) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// envelopeAt evaluates the multi-period rate envelope at offset t,
// floored at 0.05 so a deep trough slows traffic instead of stopping it.
func envelopeAt(periods []Period, t time.Duration) float64 {
	if len(periods) == 0 {
		return 1
	}
	f := 1.0
	ts := t.Seconds()
	for _, p := range periods {
		f += p.Amplitude * math.Sin(2*math.Pi*ts/p.Period.Seconds()+p.Phase)
	}
	return math.Max(0.05, f)
}

// --- address generators ----------------------------------------------------

type addrGen interface {
	next(rng *rand.Rand) uint64
}

type uniformGen struct{ space uint64 }

func (g uniformGen) next(rng *rand.Rand) uint64 { return rng.Uint64() % g.space }

type streamGen struct {
	cur, stride, space uint64
}

func (g *streamGen) next(rng *rand.Rand) uint64 {
	a := g.cur
	g.cur = (g.cur + g.stride) % g.space
	return a
}

type chaseGen struct {
	cur, space uint64
}

func (g *chaseGen) next(rng *rand.Rand) uint64 {
	// Dependent chain: the next address is a hash of the current one, so
	// the walk has no stride, no page locality, and no prefetchable
	// structure — each hop depends on the last.
	g.cur = splitmix64(g.cur + 1)
	return g.cur % g.space
}

type zipfGen struct {
	z         *rand.Zipf
	pageLines uint64
	space     uint64
}

func (g *zipfGen) next(rng *rand.Rand) uint64 {
	page := g.z.Uint64()
	return (page*g.pageLines + rng.Uint64()%g.pageLines) % g.space
}

func newAddrGen(p AddrPattern, space uint64, rng *rand.Rand) addrGen {
	switch p.Kind {
	case AddrStream:
		stride := p.Stride
		if stride == 0 {
			stride = 1
		}
		return &streamGen{cur: rng.Uint64() % space, stride: stride, space: space}
	case AddrChase:
		return &chaseGen{cur: rng.Uint64(), space: space}
	case AddrZipf:
		s := p.ZipfS
		if s == 0 {
			s = 1.2
		}
		pageLines := p.PageLines
		if pageLines == 0 {
			pageLines = 64
		}
		pages := space / pageLines
		if pages == 0 {
			pages = 1
		}
		return &zipfGen{
			z:         rand.NewZipf(rng, s, 1, pages-1),
			pageLines: pageLines,
			space:     space,
		}
	default:
		return uniformGen{space: space}
	}
}

// --- payload generators ----------------------------------------------------

// payloadFunc returns the line builder for a payload kind. Every builder
// is a pure function of (addr, version), so replays regenerate identical
// bytes.
func payloadFunc(kind PayloadKind) func(addr, version uint64) []byte {
	switch kind {
	case PayloadCompressible:
		return compressibleLine
	case PayloadPointer:
		return pointerLine
	case PayloadHostile:
		return hostileLine
	case PayloadZero:
		return zeroLine
	default:
		return mixedLine
	}
}

// compressibleLine: eight words walking up from a shared base in 1-byte
// deltas — BDI's base+Δ1 sweet spot, well under the sub-rank block.
func compressibleLine(addr, version uint64) []byte {
	line := make([]byte, core.LineSize)
	base := addr*4096 + version%128
	for w := 0; w < 8; w++ {
		binary.LittleEndian.PutUint64(line[w*8:], base+uint64(w))
	}
	return line
}

// pointerLine: a run of plausible 48-bit heap pointers with 8-byte
// strides — the linked-structure image, compressible via small deltas.
func pointerLine(addr, version uint64) []byte {
	line := make([]byte, core.LineSize)
	base := 0x7f00_0000_0000 | (addr*512+version%256)&0xffff_ffff
	for w := 0; w < 8; w++ {
		binary.LittleEndian.PutUint64(line[w*8:], base+uint64(w)*8)
	}
	return line
}

// hostileLine: keyed xorshift noise — near-zero redundancy, so every
// codec gives up and the line stores uncompressed.
func hostileLine(addr, version uint64) []byte {
	line := make([]byte, core.LineSize)
	x := addr ^ version | 1
	for w := 0; w < 8; w++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		binary.LittleEndian.PutUint64(line[w*8:], x)
	}
	return line
}

func zeroLine(addr, version uint64) []byte {
	return make([]byte, core.LineSize)
}

// mixedLine mirrors loadgen's default payload: address parity picks
// array-like or incompressible, yielding a ~50% compressible residency.
func mixedLine(addr, version uint64) []byte {
	if addr%2 == 0 {
		line := make([]byte, core.LineSize)
		base := addr*4096 + version%512
		for w := 0; w < 8; w++ {
			binary.LittleEndian.PutUint64(line[w*8:], base)
		}
		return line
	}
	return hostileLine(addr, version)
}
