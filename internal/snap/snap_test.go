package snap_test

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"attache/internal/core"
	"attache/internal/shard"
	"attache/internal/snap"
	"attache/internal/tier"
)

// buildState drives a small deterministic workload through a real
// engine and exports it — the realistic snapshot shape for round-trip
// tests.
func buildState(t *testing.T, tiered bool) *snap.ClusterState {
	t.Helper()
	opts := core.DefaultOptions()
	opts.Seed = 42
	cfg := shard.Config{Shards: 2}
	if tiered {
		cfg.Tier = &tier.Config{NearLines: 8, Policy: tier.PolicyFreq, FreqThreshold: 2, FreqDecayEvery: 64}
	}
	eng, err := shard.New(opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	rng := rand.New(rand.NewSource(7))
	line := make([]byte, core.LineSize)
	for i := 0; i < 600; i++ {
		addr := uint64(rng.Intn(96))
		if rng.Intn(2) == 0 {
			for j := range line {
				line[j] = byte(addr + uint64(i+j))
			}
			if err := eng.Write(addr, line); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := eng.Read(addr); err != nil && !errors.Is(err, core.ErrNeverWritten) {
				t.Fatal(err)
			}
		}
	}
	cs := &snap.ClusterState{Engines: []*snap.EngineState{eng.ExportState()}}
	normalize(cs)
	return cs
}

// normalize zeroes the derived stats fields snapv1 does not serialize
// (the decoder recomputes Lines and leaves PredictionAccuracy to the
// restored predictor), so exported and decoded states compare equal.
func normalize(cs *snap.ClusterState) {
	for _, e := range cs.Engines {
		for i := range e.Shards {
			e.Shards[i].Mem.Stats.PredictionAccuracy = 0
			e.Shards[i].Mem.Stats.Lines = uint64(len(e.Shards[i].Mem.Lines))
		}
	}
}

// TestRoundTrip: decode(encode(state)) reproduces the state exactly,
// and encoding is deterministic.
func TestRoundTrip(t *testing.T) {
	for _, tiered := range []bool{false, true} {
		name := "untiered"
		if tiered {
			name = "tiered"
		}
		t.Run(name, func(t *testing.T) {
			cs := buildState(t, tiered)
			enc := snap.EncodeBytes(cs)
			if !bytes.Equal(enc, snap.EncodeBytes(cs)) {
				t.Fatal("encoding is not deterministic")
			}
			got, err := snap.DecodeBytes(enc)
			if err != nil {
				t.Fatalf("decode of a fresh encoding failed: %v", err)
			}
			if !reflect.DeepEqual(got, cs) {
				t.Fatalf("decode(encode(state)) != state")
			}
			if !bytes.Equal(snap.EncodeBytes(got), enc) {
				t.Fatal("encode(decode(bytes)) != bytes")
			}
		})
	}
}

// TestStreamRoundTrip: the io.Writer/io.Reader forms agree with the
// byte-slice forms.
func TestStreamRoundTrip(t *testing.T) {
	cs := buildState(t, true)
	var buf bytes.Buffer
	if err := snap.Encode(&buf, cs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), snap.EncodeBytes(cs)) {
		t.Fatal("Encode and EncodeBytes disagree")
	}
	got, err := snap.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cs) {
		t.Fatal("stream decode did not round-trip")
	}
}

// TestMultiEngine: a multi-instance cluster snapshot round-trips too.
func TestMultiEngine(t *testing.T) {
	a, b := buildState(t, true), buildState(t, false)
	cs := &snap.ClusterState{Engines: []*snap.EngineState{a.Engines[0], b.Engines[0]}}
	got, err := snap.DecodeBytes(snap.EncodeBytes(cs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cs) {
		t.Fatal("multi-engine snapshot did not round-trip")
	}
}

// TestDecodeRejects pins the decoder's failure taxonomy: every
// truncation of a valid snapshot fails cleanly, and targeted
// corruptions produce ErrCorrupt/ErrVersion rather than panics or
// silent acceptance.
func TestDecodeRejects(t *testing.T) {
	enc := snap.EncodeBytes(buildState(t, true))

	t.Run("every-truncation", func(t *testing.T) {
		// Every strict prefix must be rejected — no truncation may decode.
		step := 1
		if len(enc) > 4096 {
			step = len(enc) / 4096
		}
		for n := 0; n < len(enc); n += step {
			if _, err := snap.DecodeBytes(enc[:n]); err == nil {
				t.Fatalf("truncation to %d/%d bytes decoded successfully", n, len(enc))
			}
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		bad := append([]byte(nil), enc...)
		bad[0] ^= 0xFF
		if _, err := snap.DecodeBytes(bad); !errors.Is(err, snap.ErrCorrupt) {
			t.Fatalf("bad magic: got %v, want ErrCorrupt", err)
		}
	})
	t.Run("version-skew", func(t *testing.T) {
		bad := append([]byte(nil), enc...)
		bad[6] = 0xFE // u16 version lives right after the 6-byte magic
		bad[7] = 0xCA
		if _, err := snap.DecodeBytes(bad); !errors.Is(err, snap.ErrVersion) {
			t.Fatalf("version skew: got %v, want ErrVersion", err)
		}
	})
	t.Run("trailing-bytes", func(t *testing.T) {
		bad := append(append([]byte(nil), enc...), 0x00)
		if _, err := snap.DecodeBytes(bad); !errors.Is(err, snap.ErrCorrupt) {
			t.Fatalf("trailing byte: got %v, want ErrCorrupt", err)
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := snap.DecodeBytes(nil); err == nil {
			t.Fatal("empty input decoded")
		}
	})
	t.Run("huge-count", func(t *testing.T) {
		// Magic + version + an absurd engine count must fail on the count
		// guard, not attempt allocation.
		b := append([]byte("ATSNAP"), 1, 0, 0xFF, 0xFF, 0xFF, 0xFF)
		if _, err := snap.DecodeBytes(b); !errors.Is(err, snap.ErrCorrupt) {
			t.Fatalf("huge count: got %v, want ErrCorrupt", err)
		}
	})
}
