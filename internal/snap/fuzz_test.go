package snap_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"attache/internal/core"
	"attache/internal/snap"
	"attache/internal/tier"
)

var updateCorpus = flag.Bool("update-corpus", false, "regenerate the checked-in fuzz seed corpus under testdata/fuzz/")

// seedStates builds the hand-picked snapshot shapes the fuzzer starts
// from: empty cluster, minimal untiered engine, tiered engine with every
// section populated.
func seedStates() []*snap.ClusterState {
	minimal := &snap.EngineState{}
	minimal.Opts.CIDBits = 3
	minimal.Opts.DisablePredictor = true
	minimal.Shards = []snap.ShardState{{Mem: &core.MemoryState{}}}

	tiered := &snap.EngineState{
		Tier:   &tier.Config{NearLines: 2, Policy: tier.PolicyFreq, FreqThreshold: 2, FreqDecayEvery: 8, Link: tier.DefaultLink()},
		Robust: [4]uint64{1, 2, 3, 4},
	}
	tiered.Opts.CIDBits = 3
	tiered.Opts.DisablePredictor = true
	ms := core.MemoryState{}
	ms.Blem.CID = 5
	ms.Blem.RA = map[uint64]bool{7: true, 9: false}
	ts := &tier.State{
		Near:     []tier.NearLineState{{Addr: 3, Freq: 2}},
		FarFreq:  []tier.FreqCount{{Addr: 1, Count: 1}, {Addr: 4, Count: 2}},
		FreqOps:  5,
		Counters: [6]uint64{1, 2, 3, 4, 5, 6},
	}
	tiered.Shards = []snap.ShardState{{Mem: &ms, Tier: ts}}

	return []*snap.ClusterState{
		{},
		{Engines: []*snap.EngineState{minimal}},
		{Engines: []*snap.EngineState{tiered}},
	}
}

// FuzzSnapshotRoundTrip: the snapv1 decoder never panics on arbitrary
// input, and — because it enforces canonical form — any input it
// accepts re-encodes to exactly itself (decode∘encode is the identity
// on the accepted set).
func FuzzSnapshotRoundTrip(f *testing.F) {
	for _, cs := range seedStates() {
		f.Add(snap.EncodeBytes(cs))
	}
	f.Add([]byte("ATSNAP"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		cs, err := snap.DecodeBytes(data)
		if err != nil {
			return
		}
		enc := snap.EncodeBytes(cs)
		if !bytes.Equal(enc, data) {
			t.Fatalf("accepted input is not canonical: re-encoded %d bytes differ from %d-byte input", len(enc), len(data))
		}
		again, err := snap.DecodeBytes(enc)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		if !bytes.Equal(snap.EncodeBytes(again), enc) {
			t.Fatal("second round trip diverged")
		}
	})
}

// TestWriteFuzzCorpus (with -update-corpus) materializes the seed
// states as checked-in Go fuzz corpus files, so CI's fuzz smoke starts
// from structurally valid snapshots even before any cached corpus
// exists.
func TestWriteFuzzCorpus(t *testing.T) {
	if !*updateCorpus {
		t.Skip("run with -update-corpus to regenerate testdata/fuzz/FuzzSnapshotRoundTrip/")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzSnapshotRoundTrip")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, cs := range seedStates() {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", snap.EncodeBytes(cs))
		path := filepath.Join(dir, fmt.Sprintf("seed-%d", i))
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
	}
}
