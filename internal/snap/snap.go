// Package snap implements snapv1, the versioned binary serialization of
// a full engine: per-shard memory contents, BLEM state (CID +
// Replacement Area), COPR predictor tables, traffic counters, and tier
// residency. A snapshot restored through shard.RestoreEngine behaves
// byte-identically to the engine it was taken from.
//
// Format (all integers little-endian):
//
//	magic "ATSNAP" | u16 version=1 | u32 engineCount | engines...
//
// Each engine serializes its core.Options (so restore can rebuild the
// same framework), the engine-level robust counters, and one section
// per shard. Maps (Replacement Area, freq counters) are sorted by
// address, and stored lines are sorted by address, so encoding is
// deterministic; the near-tier lines are the single exception — they
// encode in recency order, least-recently-used first, because that
// order is semantic. The decoder enforces sortedness, so for any bytes
// it accepts, decode∘encode is the identity.
//
// Version-evolution rules: additions bump the u16 version; a decoder
// rejects versions it does not know with ErrVersion (never guesses),
// and every count field is validated against the remaining input before
// allocation, so truncated or corrupted snapshots fail cleanly instead
// of panicking or over-allocating.
package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"attache/internal/copr"
	"attache/internal/core"
	"attache/internal/tier"
)

// Version is the current snapv1 format version.
const Version = 1

var magic = [6]byte{'A', 'T', 'S', 'N', 'A', 'P'}

// ErrCorrupt reports a snapshot the decoder cannot make sense of.
var ErrCorrupt = errors.New("snap: corrupt snapshot")

// ErrVersion reports a snapshot written by an unknown format version.
var ErrVersion = errors.New("snap: unsupported snapshot version")

// ShardState is one shard's serialized state.
type ShardState struct {
	Mem *core.MemoryState
	// Tier is nil for untiered engines.
	Tier *tier.State
}

// EngineState is one engine's serialized state: enough to rebuild the
// framework (Opts, Tier) plus the per-shard contents.
type EngineState struct {
	Opts core.Options
	// Tier is the engine-level tier configuration; nil means untiered.
	Tier *tier.Config
	// Robust holds sheds, canceled, injectedErrs, injectedDelays.
	Robust [4]uint64
	Shards []ShardState
}

// ClusterState is the top-level snapshot container: one EngineState per
// cluster instance (a single-engine snapshot is a 1-element cluster).
type ClusterState struct {
	Engines []*EngineState
}

// ---------------------------------------------------------------------
// encoding

type writer struct {
	b []byte
}

func (w *writer) u8(v uint8)   { w.b = append(w.b, v) }
func (w *writer) u16(v uint16) { w.b = binary.LittleEndian.AppendUint16(w.b, v) }
func (w *writer) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *writer) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *writer) f64(v float64) {
	w.u64(math.Float64bits(v))
}
func (w *writer) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *writer) raw(p []byte) { w.b = append(w.b, p...) }

// EncodeBytes serializes a snapshot to its canonical byte form.
func EncodeBytes(cs *ClusterState) []byte {
	w := &writer{}
	w.raw(magic[:])
	w.u16(Version)
	w.u32(uint32(len(cs.Engines)))
	for _, e := range cs.Engines {
		encodeEngine(w, e)
	}
	return w.b
}

// Encode writes the canonical serialization of cs to out.
func Encode(out io.Writer, cs *ClusterState) error {
	_, err := out.Write(EncodeBytes(cs))
	return err
}

func encodeEngine(w *writer, e *EngineState) {
	o := e.Opts
	w.u32(uint32(o.CIDBits))
	w.u64(uint64(o.Seed))
	var flags uint8
	if o.DisablePredictor {
		flags |= 1
	}
	if o.ExtendedCompression {
		flags |= 2
	}
	w.u8(flags)
	p := o.Predictor
	w.u64(uint64(p.MemorySize))
	w.u32(uint32(p.GICounters))
	w.u8(p.GIThreshold)
	w.u32(uint32(p.PaPRBytes))
	w.u32(uint32(p.PaPRWays))
	w.u32(uint32(p.LiPRBytes))
	w.u32(uint32(p.LiPRWays))
	var en uint8
	if p.EnableGI {
		en |= 1
	}
	if p.EnablePaPR {
		en |= 2
	}
	if p.EnableLiPR {
		en |= 4
	}
	w.u8(en)

	w.bool(e.Tier != nil)
	if e.Tier != nil {
		t := *e.Tier
		w.u64(uint64(t.NearLines))
		w.u8(uint8(len(t.Policy)))
		w.raw([]byte(t.Policy))
		w.u64(t.FreqThreshold)
		w.u64(t.FreqDecayEvery)
		w.u32(t.PinShift)
		w.u64(t.PinPrefix)
		w.f64(t.Link.FarLatencyNs)
		w.f64(t.Link.FarBandwidthMult)
		w.f64(t.Link.NearEnergyPerByte)
		w.f64(t.Link.FarEnergyPerByte)
	}
	for _, r := range e.Robust {
		w.u64(r)
	}
	w.u32(uint32(len(e.Shards)))
	for i := range e.Shards {
		encodeShard(w, &e.Shards[i])
	}
}

func encodeShard(w *writer, s *ShardState) {
	m := s.Mem
	w.u64(uint64(len(m.Lines)))
	for _, l := range m.Lines {
		w.u64(l.Addr)
		var flags uint8
		if l.Compressed {
			flags |= 1
		}
		if l.Collision {
			flags |= 2
		}
		w.u8(flags)
		w.raw(l.Blocks[0][:])
		w.raw(l.Blocks[1][:])
	}
	for _, v := range []uint64{
		m.Stats.Reads, m.Stats.Writes, m.Stats.BlocksRead, m.Stats.BlocksWritten,
		m.Stats.Mispredictions, m.Stats.RAAccesses, m.Stats.CompressedLines, m.Stats.RAOccupancy,
	} {
		w.u64(v)
	}

	w.u16(m.Blem.CID)
	raAddrs := make([]uint64, 0, len(m.Blem.RA))
	for a := range m.Blem.RA {
		raAddrs = append(raAddrs, a)
	}
	sort.Slice(raAddrs, func(i, j int) bool { return raAddrs[i] < raAddrs[j] })
	w.u64(uint64(len(raAddrs)))
	for _, a := range raAddrs {
		w.u64(a)
		w.bool(m.Blem.RA[a])
	}
	for _, v := range m.Blem.Stats {
		w.u64(v)
	}

	w.bool(m.Copr != nil)
	if m.Copr != nil {
		c := m.Copr
		w.u32(uint32(len(c.GI)))
		w.raw(c.GI)
		encodeTable(w, c.PaPR)
		encodeTable(w, c.LiPR)
		w.u64(c.Overall.Hits)
		w.u64(c.Overall.Total)
		for _, r := range c.BySource {
			w.u64(r.Hits)
			w.u64(r.Total)
		}
	}

	w.bool(s.Tier != nil)
	if s.Tier != nil {
		t := s.Tier
		w.u64(uint64(len(t.Near)))
		for _, n := range t.Near {
			w.u64(n.Addr)
			w.u64(n.Freq)
			w.raw(n.Data[:])
		}
		w.u64(uint64(len(t.FarFreq)))
		for _, f := range t.FarFreq {
			w.u64(f.Addr)
			w.u64(f.Count)
		}
		w.u64(t.FreqOps)
		for _, v := range t.Counters {
			w.u64(v)
		}
	}
}

func encodeTable(w *writer, t *copr.TableState) {
	w.bool(t != nil)
	if t == nil {
		return
	}
	w.u64(t.Tick)
	w.u32(uint32(t.Sets))
	w.u32(uint32(t.Ways))
	for _, e := range t.Entries {
		w.bool(e.Valid)
		w.u64(e.Key)
		w.u64(e.A)
		w.u64(e.B)
		w.u64(e.Used)
	}
}

// ---------------------------------------------------------------------
// decoding

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format+": %w", append(args, ErrCorrupt)...)
	}
}

func (r *reader) remaining() int { return len(r.b) - r.off }

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.remaining() < n {
		r.fail("truncated at offset %d (need %d bytes, have %d)", r.off, n, r.remaining())
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

func (r *reader) u8() uint8 {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (r *reader) u16() uint16 {
	p := r.take(2)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(p)
}

func (r *reader) u32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (r *reader) u64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) bool() bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("boolean field at offset %d not 0 or 1", r.off-1)
		return false
	}
}

// count reads an element count and validates it against the remaining
// input, given the minimum encoded size of one element — a corrupted
// count can never force an over-allocation.
func (r *reader) count(minElem int, what string) int {
	n := r.u64()
	if r.err != nil {
		return 0
	}
	if n > uint64(r.remaining()/minElem) {
		r.fail("%s count %d exceeds remaining input", what, n)
		return 0
	}
	return int(n)
}

// DecodeBytes parses a canonical snapshot. It never panics: truncated,
// corrupted, or version-skewed input returns an error.
func DecodeBytes(b []byte) (*ClusterState, error) {
	r := &reader{b: b}
	if m := r.take(len(magic)); r.err == nil {
		for i := range magic {
			if m[i] != magic[i] {
				r.fail("bad magic")
				break
			}
		}
	}
	if v := r.u16(); r.err == nil && v != Version {
		return nil, fmt.Errorf("%w: got version %d, support %d", ErrVersion, v, Version)
	}
	nEng := r.u32()
	if r.err == nil && nEng > uint64Max32(r.remaining()) {
		r.fail("engine count %d exceeds remaining input", nEng)
	}
	cs := &ClusterState{}
	for i := uint32(0); r.err == nil && i < nEng; i++ {
		cs.Engines = append(cs.Engines, decodeEngine(r))
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%d trailing bytes after snapshot: %w", r.remaining(), ErrCorrupt)
	}
	return cs, nil
}

// uint64Max32 bounds a u32 count by the remaining bytes (each engine
// needs at least a few dozen bytes; 1 is a safe floor).
func uint64Max32(remaining int) uint32 {
	if remaining < 0 {
		return 0
	}
	return uint32(remaining)
}

// Decode reads all of in and parses it as a snapshot.
func Decode(in io.Reader) (*ClusterState, error) {
	b, err := io.ReadAll(in)
	if err != nil {
		return nil, fmt.Errorf("snap: reading snapshot: %w", err)
	}
	return DecodeBytes(b)
}

func decodeEngine(r *reader) *EngineState {
	e := &EngineState{}
	e.Opts.CIDBits = int(int32(r.u32()))
	e.Opts.Seed = int64(r.u64())
	flags := r.u8()
	if r.err == nil && flags > 3 {
		r.fail("unknown option flags %#x", flags)
	}
	e.Opts.DisablePredictor = flags&1 != 0
	e.Opts.ExtendedCompression = flags&2 != 0
	e.Opts.Predictor.MemorySize = int64(r.u64())
	e.Opts.Predictor.GICounters = int(int32(r.u32()))
	e.Opts.Predictor.GIThreshold = r.u8()
	e.Opts.Predictor.PaPRBytes = int(int32(r.u32()))
	e.Opts.Predictor.PaPRWays = int(int32(r.u32()))
	e.Opts.Predictor.LiPRBytes = int(int32(r.u32()))
	e.Opts.Predictor.LiPRWays = int(int32(r.u32()))
	en := r.u8()
	if r.err == nil && en > 7 {
		r.fail("unknown predictor enable flags %#x", en)
	}
	e.Opts.Predictor.EnableGI = en&1 != 0
	e.Opts.Predictor.EnablePaPR = en&2 != 0
	e.Opts.Predictor.EnableLiPR = en&4 != 0

	if r.bool() {
		t := &tier.Config{}
		t.NearLines = int64(r.u64())
		pl := int(r.u8())
		if r.err == nil && pl > 32 {
			r.fail("tier policy name length %d exceeds 32", pl)
		}
		t.Policy = string(r.take(pl))
		t.FreqThreshold = r.u64()
		t.FreqDecayEvery = r.u64()
		t.PinShift = r.u32()
		t.PinPrefix = r.u64()
		t.Link.FarLatencyNs = r.f64()
		t.Link.FarBandwidthMult = r.f64()
		t.Link.NearEnergyPerByte = r.f64()
		t.Link.FarEnergyPerByte = r.f64()
		if r.err == nil {
			e.Tier = t
		}
	}
	for i := range e.Robust {
		e.Robust[i] = r.u64()
	}
	nShards := r.u32()
	if r.err == nil && nShards > uint64Max32(r.remaining()) {
		r.fail("shard count %d exceeds remaining input", nShards)
	}
	for i := uint32(0); r.err == nil && i < nShards; i++ {
		e.Shards = append(e.Shards, decodeShard(r, e.Tier != nil))
	}
	return e
}

func decodeShard(r *reader, tiered bool) ShardState {
	s := ShardState{Mem: &core.MemoryState{}}
	m := s.Mem
	nLines := r.count(8+1+core.LineSize, "line")
	m.Lines = make([]core.LineState, 0, nLines)
	var prevAddr uint64
	for i := 0; r.err == nil && i < nLines; i++ {
		var l core.LineState
		l.Addr = r.u64()
		if i > 0 && l.Addr <= prevAddr {
			r.fail("lines not strictly sorted at index %d", i)
			break
		}
		prevAddr = l.Addr
		flags := r.u8()
		if r.err == nil && flags > 3 {
			r.fail("unknown line flags %#x at index %d", flags, i)
			break
		}
		if flags == 3 {
			r.fail("line %d both compressed and collided", i)
			break
		}
		l.Compressed = flags&1 != 0
		l.Collision = flags&2 != 0
		copy(l.Blocks[0][:], r.take(core.SubRankBlock))
		copy(l.Blocks[1][:], r.take(core.SubRankBlock))
		m.Lines = append(m.Lines, l)
	}
	m.Stats.Reads = r.u64()
	m.Stats.Writes = r.u64()
	m.Stats.BlocksRead = r.u64()
	m.Stats.BlocksWritten = r.u64()
	m.Stats.Mispredictions = r.u64()
	m.Stats.RAAccesses = r.u64()
	m.Stats.CompressedLines = r.u64()
	m.Stats.RAOccupancy = r.u64()
	m.Stats.Lines = uint64(len(m.Lines))

	m.Blem.CID = r.u16()
	nRA := r.count(9, "RA entry")
	m.Blem.RA = make(map[uint64]bool, nRA)
	var prevRA uint64
	for i := 0; r.err == nil && i < nRA; i++ {
		a := r.u64()
		if i > 0 && a <= prevRA {
			r.fail("RA entries not strictly sorted at index %d", i)
			break
		}
		prevRA = a
		m.Blem.RA[a] = r.bool()
	}
	for i := range m.Blem.Stats {
		m.Blem.Stats[i] = r.u64()
	}

	if r.bool() {
		c := &copr.State{}
		nGI := r.u32()
		if r.err == nil && int(nGI) > r.remaining() {
			r.fail("GI counter count %d exceeds remaining input", nGI)
		}
		c.GI = append([]uint8(nil), r.take(int(nGI))...)
		c.PaPR = decodeTable(r, "PaPR")
		c.LiPR = decodeTable(r, "LiPR")
		c.Overall.Hits = r.u64()
		c.Overall.Total = r.u64()
		for i := range c.BySource {
			c.BySource[i].Hits = r.u64()
			c.BySource[i].Total = r.u64()
		}
		if r.err == nil {
			m.Copr = c
		}
	}

	hasTier := r.bool()
	if r.err == nil && hasTier != tiered {
		r.fail("shard tier-state presence (%v) disagrees with engine tier config (%v)", hasTier, tiered)
	}
	if r.err == nil && hasTier {
		t := &tier.State{}
		nNear := r.count(8+8+tier.LineSize, "near line")
		t.Near = make([]tier.NearLineState, 0, nNear)
		for i := 0; r.err == nil && i < nNear; i++ {
			var n tier.NearLineState
			n.Addr = r.u64()
			n.Freq = r.u64()
			copy(n.Data[:], r.take(tier.LineSize))
			t.Near = append(t.Near, n)
		}
		nFreq := r.count(16, "freq counter")
		t.FarFreq = make([]tier.FreqCount, 0, nFreq)
		for i := 0; r.err == nil && i < nFreq; i++ {
			var f tier.FreqCount
			f.Addr = r.u64()
			if i > 0 && f.Addr <= t.FarFreq[i-1].Addr {
				r.fail("freq counters not strictly sorted at index %d", i)
				break
			}
			f.Count = r.u64()
			t.FarFreq = append(t.FarFreq, f)
		}
		t.FreqOps = r.u64()
		for i := range t.Counters {
			t.Counters[i] = r.u64()
		}
		if r.err == nil {
			s.Tier = t
		}
	}
	return s
}

func decodeTable(r *reader, what string) *copr.TableState {
	if !r.bool() {
		return nil
	}
	t := &copr.TableState{}
	t.Tick = r.u64()
	sets := r.u32()
	ways := r.u32()
	if r.err != nil {
		return nil
	}
	const maxDim = 1 << 24
	if sets > maxDim || ways > maxDim {
		r.fail("%s table geometry %dx%d out of range", what, sets, ways)
		return nil
	}
	n := uint64(sets) * uint64(ways)
	if n > uint64(r.remaining()/33) {
		r.fail("%s table entry count %d exceeds remaining input", what, n)
		return nil
	}
	t.Sets = int(sets)
	t.Ways = int(ways)
	t.Entries = make([]copr.EntryState, 0, n)
	for i := uint64(0); r.err == nil && i < n; i++ {
		var e copr.EntryState
		e.Valid = r.bool()
		e.Key = r.u64()
		e.A = r.u64()
		e.B = r.u64()
		e.Used = r.u64()
		t.Entries = append(t.Entries, e)
	}
	return t
}
