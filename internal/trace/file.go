package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Source produces a core's memory-access stream. Generator (synthetic)
// and FileTrace (recorded) both implement it.
type Source interface {
	Next() Access
}

// FileTrace replays a recorded memory trace. The text format has one
// access per line:
//
//	R 0x1a2b3c [gap]
//	W 453988 [gap]
//
// where the address is a byte address (hex with 0x prefix, or decimal),
// and the optional gap is the instruction distance from the previous
// access (default 1). Lines starting with '#' and blank lines are
// ignored. The trace loops when exhausted, so cores can replay it for
// any access budget.
type FileTrace struct {
	accesses []Access
	pos      int
}

// ParseTrace reads a trace from r.
func ParseTrace(r io.Reader) (*FileTrace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var accesses []Access
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("trace: line %d: want 'R|W addr [gap]', got %q", lineNo, line)
		}
		var store bool
		switch strings.ToUpper(fields[0]) {
		case "R", "L", "LD", "READ":
			store = false
		case "W", "S", "ST", "WRITE":
			store = true
		default:
			return nil, fmt.Errorf("trace: line %d: unknown op %q", lineNo, fields[0])
		}
		addr, err := strconv.ParseUint(strings.TrimPrefix(strings.ToLower(fields[1]), "0x"),
			base(fields[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad address %q: %v", lineNo, fields[1], err)
		}
		gap := int64(1)
		if len(fields) == 3 {
			gap, err = strconv.ParseInt(fields[2], 10, 64)
			if err != nil || gap < 1 {
				return nil, fmt.Errorf("trace: line %d: bad gap %q", lineNo, fields[2])
			}
		}
		accesses = append(accesses, Access{
			LineAddr: addr / LineSize,
			Store:    store,
			Gap:      gap,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	if len(accesses) == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	return &FileTrace{accesses: accesses}, nil
}

func base(s string) int {
	if strings.HasPrefix(strings.ToLower(s), "0x") {
		return 16
	}
	return 10
}

// Len reports the number of recorded accesses.
func (f *FileTrace) Len() int { return len(f.accesses) }

// Next returns the next access, looping at the end of the recording.
func (f *FileTrace) Next() Access {
	a := f.accesses[f.pos]
	f.pos++
	if f.pos == len(f.accesses) {
		f.pos = 0
	}
	return a
}

// Rewind restarts the replay.
func (f *FileTrace) Rewind() { f.pos = 0 }
