package trace

import (
	"fmt"
	"math/rand"
)

// Pattern classifies a workload's memory access behaviour.
type Pattern uint8

// The access-pattern classes the catalog draws from.
const (
	// PatternStream walks the footprint sequentially (lbm, libquantum,
	// bwaves, STREAM).
	PatternStream Pattern = iota
	// PatternRandom touches uniformly random lines (milc, omnetpp, RAND).
	PatternRandom
	// PatternPointerChase is random with serialized dependent loads
	// (mcf, GAP graph kernels).
	PatternPointerChase
	// PatternStrided walks with a fixed multi-line stride (leslie3d,
	// GemsFDTD, cactusADM).
	PatternStrided
	// PatternPageLocal bursts several accesses within a page before
	// jumping (soplex, gcc, zeusmp, wrf, sphinx3, pr.kron).
	PatternPageLocal
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case PatternStream:
		return "stream"
	case PatternRandom:
		return "random"
	case PatternPointerChase:
		return "pointer-chase"
	case PatternStrided:
		return "strided"
	case PatternPageLocal:
		return "page-local"
	default:
		return fmt.Sprintf("Pattern(%d)", uint8(p))
	}
}

// Access is one memory reference in a core's instruction stream.
type Access struct {
	// LineAddr is the line index (byte address / 64).
	LineAddr uint64
	// Store marks a write reference.
	Store bool
	// Gap is the number of instructions from the previous memory
	// reference to this one, inclusive of this reference (>= 1).
	Gap int64
	// Dependent marks a load whose address depends on the previous
	// load (pointer chasing): it cannot issue while loads are pending.
	Dependent bool
}

// Generator produces one core's access stream for a profile. Streams are
// deterministic per (profile, seed) pair.
type Generator struct {
	prof     Profile
	rng      *rand.Rand
	baseLine uint64 // per-core offset so rate-mode cores do not share data
	lines    uint64 // footprint in lines

	cursor    uint64 // for stream/strided
	burstLeft int    // page-local burst remaining
	burstPage uint64
}

// NewGenerator builds a generator. Core IDs give each rate-mode core a
// disjoint slice of the address space, offset by the footprint.
func NewGenerator(prof Profile, seed int64, coreID int) *Generator {
	lines := prof.FootprintBytes / LineSize
	return NewGeneratorAt(prof, seed^int64(coreID)*0x9E37, uint64(coreID)*lines)
}

// NewGeneratorAt builds a generator whose addresses start at baseLine —
// used by mixed workloads, where every core owns a fixed-size slice
// independent of its benchmark's footprint.
func NewGeneratorAt(prof Profile, seed int64, baseLine uint64) *Generator {
	if prof.FootprintBytes < LineSize*LinesPerPage {
		panic(fmt.Sprintf("trace: footprint %d too small", prof.FootprintBytes))
	}
	lines := prof.FootprintBytes / LineSize
	g := &Generator{
		prof:     prof,
		rng:      rand.New(rand.NewSource(seed)),
		baseLine: baseLine,
		lines:    lines,
	}
	g.cursor = uint64(g.rng.Int63n(int64(lines)))
	return g
}

// Profile reports the generating profile.
func (g *Generator) Profile() Profile { return g.prof }

// pick draws a random line index, honoring the profile's hot-region skew:
// with probability HotProb the access lands in the first HotFrac slice of
// the footprint. Real irregular workloads (graph kernels on power-law
// inputs, mcf's arc arrays) concentrate most touches on a small hot set;
// this is what lets page-grained structures (PaPR, LiPR, the metadata
// cache) capture them.
func (g *Generator) pick() uint64 {
	if g.prof.HotProb > 0 && g.rng.Float64() < g.prof.HotProb {
		hot := uint64(float64(g.lines) * g.prof.HotFrac)
		if hot < LinesPerPage {
			hot = LinesPerPage
		}
		return uint64(g.rng.Int63n(int64(hot)))
	}
	return uint64(g.rng.Int63n(int64(g.lines)))
}

// spatial implements the irregular patterns' short same-page bursts:
// after a jump, the next SpatialBurst-ish accesses touch random lines of
// the same page (struct/field locality) before the next jump.
func (g *Generator) spatial(_ bool) uint64 {
	if g.burstLeft > 0 {
		g.burstLeft--
		return g.burstPage*LinesPerPage + uint64(g.rng.Intn(LinesPerPage))
	}
	rel := g.pick()
	g.burstPage = rel / LinesPerPage
	if b := g.prof.SpatialBurst; b > 1 {
		g.burstLeft = g.rng.Intn(2*b - 1) // mean b-1 follow-on touches
	}
	return rel
}

// spatialChase is spatial with pointer-chase semantics: the jump access is
// dependent (its address came from the previous load); the follow-on
// same-page touches are independent field reads.
func (g *Generator) spatialChase() (uint64, bool) {
	jump := g.burstLeft == 0
	return g.spatial(true), jump
}

// Next produces the next access.
func (g *Generator) Next() Access {
	var rel uint64
	dependent := false
	switch g.prof.Pattern {
	case PatternStream:
		rel = g.cursor
		g.cursor = (g.cursor + 1) % g.lines
	case PatternStrided:
		rel = g.cursor
		g.cursor = (g.cursor + uint64(g.prof.Stride)) % g.lines
	case PatternRandom:
		rel = g.spatial(false)
	case PatternPointerChase:
		rel, dependent = g.spatialChase()
	case PatternPageLocal:
		if g.burstLeft == 0 {
			g.burstPage = g.pick() / LinesPerPage
			g.burstLeft = 4 + g.rng.Intn(12)
		}
		g.burstLeft--
		rel = g.burstPage*LinesPerPage + uint64(g.rng.Intn(LinesPerPage))
	default:
		panic(fmt.Sprintf("trace: unknown pattern %v", g.prof.Pattern))
	}

	gap := int64(1)
	if g.prof.MeanGap > 1 {
		// Geometric-ish gap with the requested mean, bounded to keep
		// simulations steady.
		gap = 1 + int64(g.rng.ExpFloat64()*float64(g.prof.MeanGap-1))
		if gap > 20*g.prof.MeanGap {
			gap = 20 * g.prof.MeanGap
		}
	}
	return Access{
		LineAddr:  g.baseLine + rel,
		Store:     g.rng.Float64() < g.prof.StoreFrac,
		Gap:       gap,
		Dependent: dependent,
	}
}
