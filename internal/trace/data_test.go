package trace

import (
	"bytes"
	"math"
	"testing"

	"attache/internal/compress"
)

func TestDataModelDeterministic(t *testing.T) {
	d := NewDataModel(42, 0.5, 0.9)
	for addr := uint64(0); addr < 200; addr++ {
		a := d.Line(addr)
		b := d.Line(addr)
		if !bytes.Equal(a, b) {
			t.Fatalf("line %d not deterministic", addr)
		}
		if d.Compressible(addr) != d.Compressible(addr) {
			t.Fatalf("class %d not deterministic", addr)
		}
	}
}

func TestDataMatchesClass(t *testing.T) {
	e := compress.NewEngine()
	d := NewDataModel(7, 0.5, 0.8)
	for addr := uint64(0); addr < 5000; addr++ {
		line := d.Line(addr)
		got := e.Compressible(line)
		if got != d.Compressible(addr) {
			t.Fatalf("line %d: engine says %v, model says %v", addr, got, d.Compressible(addr))
		}
	}
}

func TestCompressibleFractionCalibrated(t *testing.T) {
	for _, frac := range []float64{0.05, 0.3, 0.5, 0.7, 0.95} {
		d := NewDataModel(9, frac, 0.8)
		const n = 50000
		comp := 0
		for addr := uint64(0); addr < n; addr++ {
			if d.Compressible(addr) {
				comp++
			}
		}
		got := float64(comp) / n
		if math.Abs(got-frac) > 0.04 {
			t.Errorf("target %.2f: measured %.3f", frac, got)
		}
	}
}

func TestHomogeneityControlsPageUniformity(t *testing.T) {
	count := func(homog float64) (uniform, total int) {
		d := NewDataModel(11, 0.5, homog)
		for page := uint64(0); page < 800; page++ {
			first := d.Compressible(page * LinesPerPage)
			same := true
			for l := uint64(1); l < LinesPerPage; l++ {
				if d.Compressible(page*LinesPerPage+l) != first {
					same = false
					break
				}
			}
			if same {
				uniform++
			}
			total++
		}
		return
	}
	uniHigh, totHigh := count(1.0)
	if uniHigh != totHigh {
		t.Fatalf("homogeneity 1.0: %d/%d pages uniform", uniHigh, totHigh)
	}
	uniLow, _ := count(0.0)
	// At 50% per-line compressibility a uniform page is ~2*2^-64 likely.
	if uniLow > 5 {
		t.Fatalf("homogeneity 0.0: %d pages uniform, want ~0", uniLow)
	}
	uniMid, totMid := count(0.6)
	gotMid := float64(uniMid) / float64(totMid)
	if gotMid < 0.5 || gotMid > 0.7 {
		t.Fatalf("homogeneity 0.6: measured %.3f uniform pages", gotMid)
	}
}

func TestCIDCollisionRate(t *testing.T) {
	d := NewDataModel(5, 0.5, 0.5)
	const n = 1 << 21
	hits := 0
	for addr := uint64(0); addr < n; addr++ {
		if d.CIDCollides(addr, 15) {
			hits++
		}
	}
	want := float64(n) / (1 << 15) // 64
	if float64(hits) < want/3 || float64(hits) > want*3 {
		t.Fatalf("collisions = %d, want ~%.0f", hits, want)
	}
	// Deterministic.
	if d.CIDCollides(123, 15) != d.CIDCollides(123, 15) {
		t.Fatal("collision not deterministic")
	}
	// Shorter CIDs collide more.
	hits3 := 0
	for addr := uint64(0); addr < 10000; addr++ {
		if d.CIDCollides(addr, 3) {
			hits3++
		}
	}
	if hits3 < 800 || hits3 > 1700 {
		t.Fatalf("3-bit collisions = %d/10000, want ~1250", hits3)
	}
}

func TestDataModelPanicsOnBadFractions(t *testing.T) {
	for _, c := range []struct{ f, h float64 }{{-0.1, 0.5}, {1.1, 0.5}, {0.5, -1}, {0.5, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewDataModel(%v,%v) did not panic", c.f, c.h)
				}
			}()
			NewDataModel(1, c.f, c.h)
		}()
	}
}

func TestSeedsDecorrelate(t *testing.T) {
	a := NewDataModel(1, 0.5, 0.5)
	b := NewDataModel(2, 0.5, 0.5)
	same := 0
	for addr := uint64(0); addr < 1000; addr++ {
		if a.Compressible(addr) == b.Compressible(addr) {
			same++
		}
	}
	if same > 600 {
		t.Fatalf("seeds correlate: %d/1000 classes equal", same)
	}
}
