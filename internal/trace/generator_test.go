package trace

import (
	"math"
	"testing"
)

func miniProfile(p Pattern) Profile {
	return Profile{
		Name: "test", Pattern: p, Stride: 3,
		FootprintBytes: 1 << 20, CompressibleFrac: 0.5,
		PageHomogeneity: 0.8, StoreFrac: 0.3, MeanGap: 20, DataSeed: 1,
	}
}

func TestStreamIsSequential(t *testing.T) {
	g := NewGenerator(miniProfile(PatternStream), 1, 0)
	prev := g.Next().LineAddr
	for i := 0; i < 1000; i++ {
		cur := g.Next().LineAddr
		if cur != prev+1 && cur != 0 { // wrap allowed
			t.Fatalf("stream jumped from %d to %d", prev, cur)
		}
		prev = cur
	}
}

func TestStridedUsesStride(t *testing.T) {
	g := NewGenerator(miniProfile(PatternStrided), 1, 0)
	prev := g.Next().LineAddr
	for i := 0; i < 100; i++ {
		cur := g.Next().LineAddr
		if cur > prev && cur-prev != 3 {
			t.Fatalf("stride = %d, want 3", cur-prev)
		}
		prev = cur
	}
}

func TestPointerChaseMarksDependent(t *testing.T) {
	g := NewGenerator(miniProfile(PatternPointerChase), 1, 0)
	for i := 0; i < 100; i++ {
		if !g.Next().Dependent {
			t.Fatal("pointer-chase access not dependent")
		}
	}
	g2 := NewGenerator(miniProfile(PatternRandom), 1, 0)
	for i := 0; i < 100; i++ {
		if g2.Next().Dependent {
			t.Fatal("random access should not be dependent")
		}
	}
}

func TestPageLocalBursts(t *testing.T) {
	g := NewGenerator(miniProfile(PatternPageLocal), 1, 0)
	samePage := 0
	prevPage := g.Next().LineAddr / LinesPerPage
	const n = 5000
	for i := 0; i < n; i++ {
		page := g.Next().LineAddr / LinesPerPage
		if page == prevPage {
			samePage++
		}
		prevPage = page
	}
	if float64(samePage)/n < 0.6 {
		t.Fatalf("page-local same-page rate = %.2f, want > 0.6", float64(samePage)/n)
	}
}

func TestAddressesStayInCoreSlice(t *testing.T) {
	prof := miniProfile(PatternRandom)
	lines := prof.FootprintBytes / LineSize
	for core := 0; core < 3; core++ {
		g := NewGenerator(prof, 7, core)
		lo, hi := uint64(core)*lines, uint64(core+1)*lines
		for i := 0; i < 2000; i++ {
			a := g.Next().LineAddr
			if a < lo || a >= hi {
				t.Fatalf("core %d produced address %d outside [%d,%d)", core, a, lo, hi)
			}
		}
	}
}

func TestGapMeanApproximatesProfile(t *testing.T) {
	g := NewGenerator(miniProfile(PatternRandom), 3, 0)
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		a := g.Next()
		if a.Gap < 1 {
			t.Fatal("gap must be >= 1")
		}
		sum += float64(a.Gap)
	}
	mean := sum / n
	if math.Abs(mean-20) > 3 {
		t.Fatalf("mean gap = %.1f, want ~20", mean)
	}
}

func TestStoreFraction(t *testing.T) {
	g := NewGenerator(miniProfile(PatternRandom), 5, 0)
	stores := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if g.Next().Store {
			stores++
		}
	}
	got := float64(stores) / n
	if math.Abs(got-0.3) > 0.03 {
		t.Fatalf("store fraction = %.3f, want ~0.3", got)
	}
}

func TestGeneratorDeterministicPerSeed(t *testing.T) {
	a := NewGenerator(miniProfile(PatternRandom), 9, 2)
	b := NewGenerator(miniProfile(PatternRandom), 9, 2)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("generators with same seed diverge")
		}
	}
	c := NewGenerator(miniProfile(PatternRandom), 10, 2)
	diverged := false
	for i := 0; i < 100; i++ {
		if a.Next() != c.Next() {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestGeneratorPanicsOnTinyFootprint(t *testing.T) {
	p := miniProfile(PatternRandom)
	p.FootprintBytes = 64
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGenerator(p, 1, 0)
}

func TestPatternString(t *testing.T) {
	for p, want := range map[Pattern]string{
		PatternStream: "stream", PatternRandom: "random",
		PatternPointerChase: "pointer-chase", PatternStrided: "strided",
		PatternPageLocal: "page-local", Pattern(9): "Pattern(9)",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q", uint8(p), p.String())
		}
	}
}

func TestCatalogProperties(t *testing.T) {
	cat := Catalog()
	if len(cat) < 20 {
		t.Fatalf("catalog has %d profiles, want >= 20", len(cat))
	}
	var compSum float64
	seen := map[string]bool{}
	for _, p := range cat {
		if seen[p.Name] {
			t.Fatalf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
		if p.CompressibleFrac < 0 || p.CompressibleFrac > 1 {
			t.Fatalf("%s: bad compressible fraction", p.Name)
		}
		if p.MeanGap < 1 {
			t.Fatalf("%s: bad gap", p.Name)
		}
		if p.Pattern == PatternStrided && p.Stride < 2 {
			t.Fatalf("%s: strided profile needs a stride", p.Name)
		}
		compSum += p.CompressibleFrac
	}
	// Paper Fig. 4: on average ~50% of lines compress to 30 bytes.
	avg := compSum / float64(len(cat))
	if avg < 0.45 || avg < 0.4 || avg > 0.55 {
		t.Fatalf("catalog average compressibility = %.3f, want ~0.50", avg)
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("mcf")
	if err != nil || p.Name != "mcf" {
		t.Fatalf("ByName(mcf) = %v, %v", p.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestMixesReferToCatalogBenchmarks(t *testing.T) {
	for _, m := range Mixes() {
		if len(m.PerCore) != 8 {
			t.Fatalf("%s: %d cores, want 8", m.Name, len(m.PerCore))
		}
		for _, n := range m.PerCore {
			if _, err := ByName(n); err != nil {
				t.Fatalf("%s references unknown benchmark %q", m.Name, n)
			}
		}
	}
}

func TestProfileDataModelWiring(t *testing.T) {
	p, _ := ByName("libquantum")
	d := p.DataModel()
	comp := 0
	for addr := uint64(0); addr < 10000; addr++ {
		if d.Compressible(addr) {
			comp++
		}
	}
	// libquantum is essentially incompressible in the paper.
	if comp > 1000 {
		t.Fatalf("libquantum compressible lines = %d/10000, want few", comp)
	}
}
