package trace

import (
	"math/rand"
	"strings"
	"testing"
)

func TestParseTraceBasic(t *testing.T) {
	in := `
# a comment
R 0x1000
W 4096 12
read 0x2040 3
ST 128
`
	ft, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if ft.Len() != 4 {
		t.Fatalf("len = %d, want 4", ft.Len())
	}
	a := ft.Next()
	if a.LineAddr != 0x1000/64 || a.Store || a.Gap != 1 {
		t.Fatalf("access 1 = %+v", a)
	}
	a = ft.Next()
	if a.LineAddr != 64 || !a.Store || a.Gap != 12 {
		t.Fatalf("access 2 = %+v", a)
	}
	a = ft.Next()
	if a.LineAddr != 0x2040/64 || a.Store {
		t.Fatalf("access 3 = %+v", a)
	}
	a = ft.Next()
	if !a.Store || a.LineAddr != 2 {
		t.Fatalf("access 4 = %+v", a)
	}
	// Loops.
	a = ft.Next()
	if a.LineAddr != 0x1000/64 {
		t.Fatal("trace did not loop")
	}
	ft.Rewind()
	if ft.Next().LineAddr != 0x1000/64 {
		t.Fatal("rewind failed")
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := []string{
		"",                 // empty
		"R",                // missing address
		"X 0x1000",         // unknown op
		"R zzz",            // bad address
		"R 0x10 0",         // bad gap
		"R 0x10 1 extra x", // too many fields
	}
	for _, c := range cases {
		if _, err := ParseTrace(strings.NewReader(c)); err == nil {
			t.Errorf("input %q: expected error", c)
		}
	}
}

func TestFileTraceIsSource(t *testing.T) {
	var _ Source = &FileTrace{}
	var _ Source = &Generator{}
}

// Fuzz-ish robustness: random byte soup must never panic the parser.
func TestParseTraceRobustness(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(200)
		buf := make([]byte, n)
		for i := range buf {
			// Mostly printable with occasional control bytes.
			if rng.Intn(10) == 0 {
				buf[i] = byte(rng.Intn(256))
			} else {
				buf[i] = byte(32 + rng.Intn(95))
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ParseTrace panicked on %q: %v", buf, r)
				}
			}()
			ParseTrace(strings.NewReader(string(buf)))
		}()
	}
}

func TestParseTraceLargeAddresses(t *testing.T) {
	ft, err := ParseTrace(strings.NewReader("R 0xffffffffffc0\nW 0xFFFFFFFFFFFF 7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if a := ft.Next(); a.LineAddr != 0xffffffffffc0/64 {
		t.Fatalf("addr = %#x", a.LineAddr)
	}
}
