package trace

import (
	"bytes"
	"testing"
)

// TestLineIntoMatchesLine: the reusing path must produce byte-identical
// content to the allocating path, including after the buffer held a
// previous (different) line.
func TestLineIntoMatchesLine(t *testing.T) {
	d := NewDataModel(99, 0.5, 0.8)
	scratch := make([]byte, LineSize)
	for addr := uint64(0); addr < 2000; addr++ {
		want := d.Line(addr)
		got := d.LineInto(addr, scratch)
		if !bytes.Equal(got, want) {
			t.Fatalf("addr %d: LineInto differs from Line", addr)
		}
	}
	// Undersized buffers fall back to allocating.
	if got := d.LineInto(7, make([]byte, 3)); !bytes.Equal(got, d.Line(7)) {
		t.Fatal("LineInto with short buffer differs from Line")
	}
}
