// Package trace is the workload substrate standing in for the paper's
// Pin-driven SPEC2006/GAP traces (see DESIGN.md §4 for the substitution
// argument). It provides:
//
//   - DataModel: deterministic per-address synthesis of 64-byte line
//     contents with controlled compressibility and page-level homogeneity,
//     so the compression engine, BLEM, and COPR operate on real bytes;
//   - Generator: per-core memory access streams with per-benchmark
//     patterns (streaming, random, pointer-chasing, strided, page-local);
//   - Catalog: the benchmark profiles used by every experiment.
package trace

import (
	"encoding/binary"

	"attache/internal/compress"
)

// LineSize is the unit of data synthesis.
const LineSize = 64

// LinesPerPage matches the 4 KB page geometry used by COPR.
const LinesPerPage = 64

// DataModel deterministically assigns content to every line address. The
// same address always yields the same bytes for a given model, so stored
// compressibility is stable across a run — matching the paper's
// observation that line compressibility rarely changes over its lifetime
// (§VI-C).
type DataModel struct {
	seed        uint64
	compFrac    float64
	homogeneity float64
	engine      *compress.Engine
}

// NewDataModel builds a model where approximately compFrac of lines
// compress to <= 30 bytes and homogeneity is the probability that a page
// is uniform (all lines the same class) rather than line-mixed.
func NewDataModel(seed uint64, compFrac, homogeneity float64) *DataModel {
	if compFrac < 0 || compFrac > 1 || homogeneity < 0 || homogeneity > 1 {
		panic("trace: fractions must be in [0,1]")
	}
	return &DataModel{
		seed:        seed,
		compFrac:    compFrac,
		homogeneity: homogeneity,
		engine:      compress.NewEngine(),
	}
}

func mix(vs ...uint64) uint64 {
	x := uint64(0x9E3779B97F4A7C15)
	for _, v := range vs {
		x ^= v + 0x9E3779B97F4A7C15 + x<<6 + x>>2
		x += 0x9E3779B97F4A7C15
		x = (x ^ x>>30) * 0xBF58476D1CE4E5B9
		x = (x ^ x>>27) * 0x94D049BB133111EB
		x ^= x >> 31
	}
	return x
}

func unitFloat(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// Compressible reports whether the line at lineAddr (line index, i.e.
// byte address / 64) holds compressible content under this model.
func (d *DataModel) Compressible(lineAddr uint64) bool {
	page := lineAddr / LinesPerPage
	if unitFloat(mix(d.seed, page, 0xA11CE)) < d.homogeneity {
		// Uniform page: one class for all lines.
		return unitFloat(mix(d.seed, page, 0xBEEF)) < d.compFrac
	}
	return unitFloat(mix(d.seed, lineAddr, 0xC0DE)) < d.compFrac
}

// Line synthesizes the 64-byte content of lineAddr, consistent with
// Compressible(lineAddr).
func (d *DataModel) Line(lineAddr uint64) []byte {
	return d.LineInto(lineAddr, nil)
}

// LineInto is Line with buffer reuse: it writes the content into buf when
// buf has capacity for a full line (allocating otherwise) and returns the
// 64-byte slice. Hot loops that classify millions of lines pass the same
// scratch buffer to stay allocation-free.
func (d *DataModel) LineInto(lineAddr uint64, buf []byte) []byte {
	var line []byte
	if cap(buf) >= LineSize {
		line = buf[:LineSize]
		for i := range line {
			line[i] = 0
		}
	} else {
		line = make([]byte, LineSize)
	}
	h := mix(d.seed, lineAddr, 0xDA7A)
	if !d.Compressible(lineAddr) {
		// Incompressible: pseudo-random bytes. Random 64-byte strings
		// compress under neither BDI nor FPC (verified by construction
		// below and by the package tests).
		for i := 0; i < LineSize; i += 8 {
			binary.LittleEndian.PutUint64(line[i:], mix(h, uint64(i)))
		}
		// Guard: in the astronomically unlikely case the random line is
		// compressible, force it incompressible by maximizing word
		// entropy deterministically.
		for attempt := uint64(1); d.engine.Compressible(line); attempt++ {
			for i := 0; i < LineSize; i += 8 {
				binary.LittleEndian.PutUint64(line[i:], mix(h, attempt, uint64(i)))
			}
		}
		return line
	}
	// Compressible: draw a style the way real workloads mix patterns.
	switch h % 4 {
	case 0: // mostly-zero line (FPC zero words)
		for i := 0; i < 4; i++ {
			line[i*8] = byte(mix(h, uint64(i)) % 100)
		}
	case 1: // repeated 8-byte value (BDI rep)
		v := mix(h, 1)
		for i := 0; i < LineSize; i += 8 {
			binary.LittleEndian.PutUint64(line[i:], v)
		}
	case 2: // pointer-array style: common base + small deltas (BDI b8d1/b8d2)
		base := mix(h, 2) &^ 0xFFFF
		for i := 0; i < 8; i++ {
			delta := mix(h, uint64(3+i)) % 1024
			binary.LittleEndian.PutUint64(line[i*8:], base+delta)
		}
	default: // small-integer array (FPC sign-extended words)
		for w := 0; w < 16; w++ {
			v := uint32(mix(h, uint64(20+w)) % 128)
			binary.LittleEndian.PutUint32(line[w*4:], v)
		}
	}
	return line
}

// CompressibleFrac reports the target fraction of compressible lines.
func (d *DataModel) CompressibleFrac() float64 { return d.compFrac }

// CIDCollides reports whether the line at lineAddr, when stored
// uncompressed and scrambled, collides with a CID of the given width.
// It is deterministic per address: the scrambled bits of a fixed line at
// a fixed address never change. The probability over addresses is
// 2^-cidBits, the paper's 0.003% for 15 bits.
func (d *DataModel) CIDCollides(lineAddr uint64, cidBits int) bool {
	h := mix(d.seed, lineAddr, 0x5C4A)
	return h&(1<<uint(cidBits)-1) == 0
}
