package trace

import "fmt"

// Profile describes one benchmark's memory behaviour along the axes the
// paper's results depend on: how much data compresses to <= 30 bytes
// (Fig. 4), how that compressibility clusters in pages (drives COPR and
// the metadata cache), the access pattern (drives row locality and MLP),
// and the memory intensity (drives bandwidth pressure).
type Profile struct {
	Name           string
	Suite          string // "spec", "gap", or "synthetic"
	Pattern        Pattern
	Stride         int    // lines, for PatternStrided
	FootprintBytes uint64 // per-core working set
	// CompressibleFrac is the fraction of lines compressible to <= 30 B.
	CompressibleFrac float64
	// PageHomogeneity is the probability that a page holds a single
	// compressibility class.
	PageHomogeneity float64
	StoreFrac       float64
	// MeanGap is the mean number of instructions per LLC-reaching memory
	// reference (inverse of memory intensity).
	MeanGap int64
	// HotProb/HotFrac skew irregular patterns toward a hot region:
	// HotProb of accesses land in the first HotFrac of the footprint
	// (power-law reuse, see Generator.pick). Zero means uniform.
	HotProb float64
	HotFrac float64
	// SpatialBurst is the mean number of consecutive touches an
	// irregular pattern makes within one page before jumping (struct and
	// field locality); 0 or 1 means every access jumps.
	SpatialBurst int
	// DataSeed decorrelates data content across benchmarks.
	DataSeed uint64
}

// DataModel builds the content model for this profile.
func (p Profile) DataModel() *DataModel {
	return NewDataModel(p.DataSeed, p.CompressibleFrac, p.PageHomogeneity)
}

const mb = 1 << 20

// Catalog returns the benchmark profiles used across all experiments: the
// memory-intensive SPEC2006 and GAP workloads the paper evaluates (>1
// LLC MPKI, §V) plus the RAND and STREAM synthetics of Fig. 12/13.
// Compressibility and locality parameters are calibrated so the suite
// averages match the paper's reported aggregates: ~50% of lines
// compressible (Fig. 4), ~77% 1MB-metadata-cache hit rate (Fig. 5/16),
// ~88% COPR accuracy (Fig. 11).
func Catalog() []Profile {
	return []Profile{
		// SPEC CPU2006, memory-intensive subset.
		{Name: "mcf", Suite: "spec", Pattern: PatternPointerChase, FootprintBytes: 96 * mb, CompressibleFrac: 0.38, PageHomogeneity: 0.70, StoreFrac: 0.26, MeanGap: 14, HotProb: 0.72, HotFrac: 0.06, SpatialBurst: 4, DataSeed: 101},
		{Name: "lbm", Suite: "spec", Pattern: PatternStream, FootprintBytes: 64 * mb, CompressibleFrac: 0.56, PageHomogeneity: 0.95, StoreFrac: 0.45, MeanGap: 22, DataSeed: 102},
		{Name: "libquantum", Suite: "spec", Pattern: PatternStream, FootprintBytes: 64 * mb, CompressibleFrac: 0.04, PageHomogeneity: 0.98, StoreFrac: 0.25, MeanGap: 18, DataSeed: 103},
		{Name: "soplex", Suite: "spec", Pattern: PatternPageLocal, FootprintBytes: 64 * mb, CompressibleFrac: 0.62, PageHomogeneity: 0.85, StoreFrac: 0.22, MeanGap: 28, HotProb: 0.55, HotFrac: 0.10, DataSeed: 104},
		{Name: "milc", Suite: "spec", Pattern: PatternRandom, FootprintBytes: 96 * mb, CompressibleFrac: 0.46, PageHomogeneity: 0.82, StoreFrac: 0.30, MeanGap: 30, HotProb: 0.55, HotFrac: 0.10, SpatialBurst: 3, DataSeed: 105},
		{Name: "omnetpp", Suite: "spec", Pattern: PatternRandom, FootprintBytes: 48 * mb, CompressibleFrac: 0.52, PageHomogeneity: 0.75, StoreFrac: 0.32, MeanGap: 34, HotProb: 0.60, HotFrac: 0.08, SpatialBurst: 3, DataSeed: 106},
		{Name: "bwaves", Suite: "spec", Pattern: PatternStream, FootprintBytes: 96 * mb, CompressibleFrac: 0.52, PageHomogeneity: 0.92, StoreFrac: 0.38, MeanGap: 24, DataSeed: 107},
		{Name: "leslie3d", Suite: "spec", Pattern: PatternStrided, Stride: 3, FootprintBytes: 64 * mb, CompressibleFrac: 0.58, PageHomogeneity: 0.90, StoreFrac: 0.35, MeanGap: 30, DataSeed: 108},
		{Name: "sphinx3", Suite: "spec", Pattern: PatternPageLocal, FootprintBytes: 48 * mb, CompressibleFrac: 0.36, PageHomogeneity: 0.78, StoreFrac: 0.15, MeanGap: 36, HotProb: 0.50, HotFrac: 0.10, SpatialBurst: 3, DataSeed: 109},
		{Name: "GemsFDTD", Suite: "spec", Pattern: PatternStrided, Stride: 5, FootprintBytes: 96 * mb, CompressibleFrac: 0.62, PageHomogeneity: 0.88, StoreFrac: 0.40, MeanGap: 26, DataSeed: 110},
		{Name: "zeusmp", Suite: "spec", Pattern: PatternPageLocal, FootprintBytes: 64 * mb, CompressibleFrac: 0.68, PageHomogeneity: 0.90, StoreFrac: 0.36, MeanGap: 38, HotProb: 0.50, HotFrac: 0.12, DataSeed: 111},
		{Name: "cactusADM", Suite: "spec", Pattern: PatternStrided, Stride: 7, FootprintBytes: 64 * mb, CompressibleFrac: 0.48, PageHomogeneity: 0.86, StoreFrac: 0.33, MeanGap: 42, DataSeed: 112},
		{Name: "wrf", Suite: "spec", Pattern: PatternPageLocal, FootprintBytes: 64 * mb, CompressibleFrac: 0.56, PageHomogeneity: 0.88, StoreFrac: 0.30, MeanGap: 40, HotProb: 0.50, HotFrac: 0.12, DataSeed: 113},
		{Name: "gcc", Suite: "spec", Pattern: PatternPageLocal, FootprintBytes: 32 * mb, CompressibleFrac: 0.74, PageHomogeneity: 0.80, StoreFrac: 0.28, MeanGap: 44, HotProb: 0.60, HotFrac: 0.10, DataSeed: 114},
		// GAP graph kernels on kron input.
		{Name: "bc.kron", Suite: "gap", Pattern: PatternPointerChase, FootprintBytes: 128 * mb, CompressibleFrac: 0.42, PageHomogeneity: 0.48, StoreFrac: 0.20, MeanGap: 10, HotProb: 0.72, HotFrac: 0.05, SpatialBurst: 1, DataSeed: 201},
		{Name: "bfs.kron", Suite: "gap", Pattern: PatternPointerChase, FootprintBytes: 128 * mb, CompressibleFrac: 0.50, PageHomogeneity: 0.52, StoreFrac: 0.22, MeanGap: 12, HotProb: 0.70, HotFrac: 0.05, SpatialBurst: 2, DataSeed: 202},
		{Name: "cc.kron", Suite: "gap", Pattern: PatternPointerChase, FootprintBytes: 128 * mb, CompressibleFrac: 0.46, PageHomogeneity: 0.52, StoreFrac: 0.24, MeanGap: 11, HotProb: 0.70, HotFrac: 0.05, SpatialBurst: 2, DataSeed: 203},
		{Name: "pr.kron", Suite: "gap", Pattern: PatternPageLocal, FootprintBytes: 128 * mb, CompressibleFrac: 0.56, PageHomogeneity: 0.58, StoreFrac: 0.28, MeanGap: 13, HotProb: 0.70, HotFrac: 0.05, DataSeed: 204},
		{Name: "sssp.kron", Suite: "gap", Pattern: PatternPointerChase, FootprintBytes: 128 * mb, CompressibleFrac: 0.40, PageHomogeneity: 0.46, StoreFrac: 0.22, MeanGap: 12, HotProb: 0.68, HotFrac: 0.05, SpatialBurst: 2, DataSeed: 205},
		{Name: "tc.kron", Suite: "gap", Pattern: PatternRandom, FootprintBytes: 128 * mb, CompressibleFrac: 0.34, PageHomogeneity: 0.50, StoreFrac: 0.12, MeanGap: 16, HotProb: 0.60, HotFrac: 0.08, SpatialBurst: 2, DataSeed: 206},
		// Synthetics (Fig. 12/13 robustness columns).
		{Name: "RAND", Suite: "synthetic", Pattern: PatternRandom, FootprintBytes: 256 * mb, CompressibleFrac: 0.50, PageHomogeneity: 0.0, StoreFrac: 0.30, MeanGap: 22, DataSeed: 301},
		{Name: "STREAM", Suite: "synthetic", Pattern: PatternStream, FootprintBytes: 256 * mb, CompressibleFrac: 0.50, PageHomogeneity: 1.0, StoreFrac: 0.33, MeanGap: 16, DataSeed: 302},
	}
}

// ByName finds a catalog profile.
func ByName(name string) (Profile, error) {
	for _, p := range Catalog() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("trace: unknown benchmark %q", name)
}

// Mix is an 8-threaded mixed workload: one profile per core (paper §V:
// two benchmarks drawn from each of four compressibility categories).
type Mix struct {
	Name    string
	PerCore []string // 8 benchmark names
}

// Mixes returns the two mixed workloads of the evaluation.
func Mixes() []Mix {
	return []Mix{
		{Name: "MIX1", PerCore: []string{
			"gcc", "zeusmp", "lbm", "bwaves", "sphinx3", "mcf", "libquantum", "bc.kron",
		}},
		{Name: "MIX2", PerCore: []string{
			"soplex", "GemsFDTD", "milc", "pr.kron", "omnetpp", "tc.kron", "libquantum", "sssp.kron",
		}},
	}
}

// Names lists every single-benchmark workload in catalog order.
func Names() []string {
	cat := Catalog()
	names := make([]string, len(cat))
	for i, p := range cat {
		names[i] = p.Name
	}
	return names
}
