package trace

import (
	"strings"
	"testing"
)

// TestParseTraceTable is the exhaustive table-driven pass over the text
// trace grammar — one case per documented feature and per rejection:
// op-mnemonic aliases and casing, hex vs. decimal addresses,
// line-address conversion, default and explicit gaps, comment and blank
// lines, and every malformed shape with the substring its error must
// carry.
func TestParseTraceTable(t *testing.T) {
	type access struct {
		lineAddr uint64
		store    bool
		gap      int64
	}
	cases := []struct {
		name  string
		input string
		want  []access // nil means a parse error is expected
		// wantErrSub must appear in the error for rejection cases.
		wantErrSub string
	}{
		{
			name:  "read aliases",
			input: "R 64\nL 64\nLD 64\nREAD 64\nread 64\n",
			want: []access{
				{1, false, 1}, {1, false, 1}, {1, false, 1}, {1, false, 1}, {1, false, 1},
			},
		},
		{
			name:  "write aliases",
			input: "W 128\nS 128\nST 128\nWRITE 128\nwrite 128\n",
			want: []access{
				{2, true, 1}, {2, true, 1}, {2, true, 1}, {2, true, 1}, {2, true, 1},
			},
		},
		{
			name:  "hex and decimal addresses agree",
			input: "R 0x1000\nR 4096\nR 0X1000\n",
			want:  []access{{64, false, 1}, {64, false, 1}, {64, false, 1}},
		},
		{
			name:  "byte address maps to line address",
			input: "R 0\nR 63\nR 64\nR 65\n",
			want:  []access{{0, false, 1}, {0, false, 1}, {1, false, 1}, {1, false, 1}},
		},
		{
			name:  "default gap is 1, explicit gap honored",
			input: "R 0x40\nW 0x40 250\n",
			want:  []access{{1, false, 1}, {1, true, 250}},
		},
		{
			name:  "comments and blank lines skipped",
			input: "# header comment\n\nR 64\n   \n# trailing comment\nW 128 2\n",
			want:  []access{{1, false, 1}, {2, true, 2}},
		},
		{
			name:  "whitespace tolerant",
			input: "   R\t0x40   3  \n",
			want:  []access{{1, false, 3}},
		},
		{
			name:       "empty trace rejected",
			input:      "# only comments\n\n",
			wantErrSub: "empty trace",
		},
		{
			name:       "missing address",
			input:      "R\n",
			wantErrSub: "want 'R|W addr [gap]'",
		},
		{
			name:       "too many fields",
			input:      "R 64 1 surplus\n",
			wantErrSub: "want 'R|W addr [gap]'",
		},
		{
			name:       "unknown mnemonic",
			input:      "FETCH 64\n",
			wantErrSub: `unknown op "FETCH"`,
		},
		{
			name:       "unparseable address",
			input:      "R 0xzz\n",
			wantErrSub: "bad address",
		},
		{
			name:       "negative address",
			input:      "R -64\n",
			wantErrSub: "bad address",
		},
		{
			name:       "zero gap rejected",
			input:      "R 64 0\n",
			wantErrSub: "bad gap",
		},
		{
			name:       "negative gap rejected",
			input:      "R 64 -3\n",
			wantErrSub: "bad gap",
		},
		{
			name:       "non-numeric gap rejected",
			input:      "R 64 soon\n",
			wantErrSub: "bad gap",
		},
		{
			name:       "error names offending line",
			input:      "R 64\nR 128\nbogus line here\n",
			wantErrSub: "line 3",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ft, err := ParseTrace(strings.NewReader(tc.input))
			if tc.want == nil {
				if err == nil {
					t.Fatal("malformed trace accepted")
				}
				if !strings.Contains(err.Error(), tc.wantErrSub) {
					t.Fatalf("error %q does not mention %q", err, tc.wantErrSub)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if ft.Len() != len(tc.want) {
				t.Fatalf("parsed %d accesses, want %d", ft.Len(), len(tc.want))
			}
			for i, w := range tc.want {
				a := ft.Next()
				if a.LineAddr != w.lineAddr || a.Store != w.store || a.Gap != w.gap {
					t.Fatalf("access %d: got {line %d, store %v, gap %d}, want {line %d, store %v, gap %d}",
						i, a.LineAddr, a.Store, a.Gap, w.lineAddr, w.store, w.gap)
				}
			}
		})
	}
}
