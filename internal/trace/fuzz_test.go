package trace

import (
	"strings"
	"testing"
)

// FuzzParseTrace: arbitrary text must either parse into a valid trace or
// return an error — never panic, never produce a zero-length trace.
func FuzzParseTrace(f *testing.F) {
	f.Add("R 0x1000\nW 64 5\n")
	f.Add("# comment only\n")
	f.Add("read 0\n")
	f.Add("R")
	f.Fuzz(func(t *testing.T, input string) {
		ft, err := ParseTrace(strings.NewReader(input))
		if err != nil {
			return
		}
		if ft.Len() == 0 {
			t.Fatal("parsed trace with zero accesses")
		}
		for i := 0; i < ft.Len()+1; i++ {
			a := ft.Next() // looping must stay in bounds
			if a.Gap < 1 {
				t.Fatal("parsed gap below 1")
			}
		}
	})
}
