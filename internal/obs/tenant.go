package obs

import "context"

// TenantHeader is the HTTP header carrying a request's tenant identity
// end to end: clients send it (client.WithTenant), the daemon copies it
// into the request context, and the cluster layer keys admission
// control, SLO classes, and per-tenant stats off it.
const TenantHeader = "X-Attache-Tenant"

// tenantKey keys the tenant identity in a context. It lives here — the
// shared observability substrate — so the HTTP client, the serve layer,
// the load generator, and the cluster all agree on one key without
// import cycles.
type tenantKey struct{}

// ContextWithTenant returns a child context carrying tenant. Ops
// submitted to a cluster with it are attributed to that tenant; requests
// made by the HTTP client with it carry the X-Attache-Tenant header.
func ContextWithTenant(ctx context.Context, tenant string) context.Context {
	if tenant == "" {
		return ctx
	}
	return context.WithValue(ctx, tenantKey{}, tenant)
}

// TenantFromContext returns the context's tenant, or "".
func TenantFromContext(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	t, _ := ctx.Value(tenantKey{}).(string)
	return t
}
