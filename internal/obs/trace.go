package obs

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"
)

// Stage labels one pipeline stage of a traced request. The four stages
// decompose end-to-end latency: enqueue→dequeue is queue wait,
// execute start→end is service time, respond marks results handed back.
type Stage uint8

const (
	// StageEnqueue is the instant a shard task entered its queue.
	StageEnqueue Stage = iota
	// StageDequeue spans the queue wait: start is the enqueue instant,
	// end is when the shard worker picked the task up.
	StageDequeue
	// StageExecute spans the service time: the worker applying the
	// task's ops against its Memory.
	StageExecute
	// StageRespond is the instant results were handed back to the
	// submitter, after every touched shard completed.
	StageRespond
)

func (s Stage) String() string {
	switch s {
	case StageEnqueue:
		return "enqueue"
	case StageDequeue:
		return "dequeue"
	case StageExecute:
		return "execute"
	case StageRespond:
		return "respond"
	}
	return fmt.Sprintf("stage(%d)", uint8(s))
}

// TraceID identifies one traced request: 64 bits, rendered as 16 hex
// digits. 0 is never a valid ID (it means "generate one").
type TraceID uint64

func (id TraceID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// ParseTraceID parses the hex form (1–16 digits). The zero ID is
// rejected — it is the generate-one sentinel, not an identifier.
func ParseTraceID(s string) (TraceID, error) {
	if len(s) == 0 || len(s) > 16 {
		return 0, fmt.Errorf("obs: trace ID %q not 1-16 hex digits", s)
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("obs: bad trace ID %q: %w", s, err)
	}
	if v == 0 {
		return 0, fmt.Errorf("obs: trace ID 0 is reserved")
	}
	return TraceID(v), nil
}

// Event is one recorded span. Start and End are monotonic offsets from
// the trace's begin instant (time.Since on the begin time, so wall-clock
// adjustments never corrupt a timeline). Instant events have Start==End.
type Event struct {
	Stage Stage
	// Shard is the recording shard, or -1 for request-level events.
	Shard int
	// Ops is how many ops the span covered.
	Ops        int
	Start, End time.Duration
}

// Trace accumulates one request's span events. Record is safe for
// concurrent use (different shards of one request record in parallel).
type Trace struct {
	id    TraceID
	begin time.Time

	mu     sync.Mutex
	events []Event
}

// NewTrace starts a trace with the given ID; the monotonic clock starts
// now. Use Observer.StartTrace when an observer is at hand (it fills in
// a generated ID).
func NewTrace(id TraceID) *Trace {
	return &Trace{id: id, begin: time.Now(), events: make([]Event, 0, 8)}
}

// ID returns the trace's identifier.
func (t *Trace) ID() TraceID { return t.id }

// Now returns the monotonic offset since the trace began — the
// timestamp basis for Record.
func (t *Trace) Now() time.Duration { return time.Since(t.begin) }

// Record appends one span event. Nil-safe, so call sites can skip their
// own nil checks only when they are on a hot path. Safe from any
// goroutine: the engine records spans both from shard workers and from
// submitter goroutines executing on the inline fast path, often
// concurrently for one trace.
func (t *Trace) Record(stage Stage, shard, ops int, start, end time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, Event{Stage: stage, Shard: shard, Ops: ops, Start: start, End: end})
	t.mu.Unlock()
}

// Events returns a copy of the recorded events.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Decompose reduces the recorded spans to the critical-path latency
// split: queue wait and service time are the maximum per-shard dequeue
// and execute spans (the slowest shard gates the response), total is
// the latest event end.
func (t *Trace) Decompose() (queueWait, service, total time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, ev := range t.events {
		d := ev.End - ev.Start
		switch ev.Stage {
		case StageDequeue:
			if d > queueWait {
				queueWait = d
			}
		case StageExecute:
			if d > service {
				service = d
			}
		}
		if ev.End > total {
			total = ev.End
		}
	}
	return queueWait, service, total
}

// TimelineEvent is Event rendered for JSON consumers.
type TimelineEvent struct {
	Stage       string  `json:"stage"`
	Shard       int     `json:"shard"`
	Ops         int     `json:"ops"`
	StartMicros float64 `json:"start_us"`
	EndMicros   float64 `json:"end_us"`
}

// Timeline is the JSON view of one finished trace: the raw events plus
// the queue-wait / service-time decomposition.
type Timeline struct {
	TraceID        string          `json:"trace_id"`
	Events         []TimelineEvent `json:"events"`
	QueueWaitNanos int64           `json:"queue_wait_ns"`
	ServiceNanos   int64           `json:"service_ns"`
	TotalNanos     int64           `json:"total_ns"`
}

// Timeline renders the trace.
func (t *Trace) Timeline() Timeline {
	qw, sv, tot := t.Decompose()
	evs := t.Events()
	tl := Timeline{
		TraceID:        t.id.String(),
		Events:         make([]TimelineEvent, len(evs)),
		QueueWaitNanos: qw.Nanoseconds(),
		ServiceNanos:   sv.Nanoseconds(),
		TotalNanos:     tot.Nanoseconds(),
	}
	for i, ev := range evs {
		tl.Events[i] = TimelineEvent{
			Stage:       ev.Stage.String(),
			Shard:       ev.Shard,
			Ops:         ev.Ops,
			StartMicros: float64(ev.Start) / float64(time.Microsecond),
			EndMicros:   float64(ev.End) / float64(time.Microsecond),
		}
	}
	return tl
}

// ctxKey keys the request-scoped *Trace in a context.
type ctxKey struct{}

// ContextWithTrace returns a child context carrying tr; the shard
// engine records pipeline spans into whatever trace it finds there.
func ContextWithTrace(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, tr)
}

// TraceFromContext returns the context's trace, or nil. Allocation-free.
func TraceFromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}
