package obs

import (
	"context"
	"log/slog"
	"time"
)

// ShardGauge is one shard's point-in-time queue telemetry: how deep its
// request queue is, how many tasks are admitted but unfinished, and how
// large the most recently dequeued batch was. The engine produces these
// on demand; PollGauges turns them into a periodic signal.
type ShardGauge struct {
	Shard        int   `json:"shard"`
	QueueDepth   int   `json:"queue_depth"`
	InFlight     int64 `json:"in_flight"`
	LastBatchOps int64 `json:"last_batch_ops"`
}

// LatestGauges returns the most recent PollGauges snapshot (nil before
// the first poll).
func (o *Observer) LatestGauges() []ShardGauge {
	if o == nil {
		return nil
	}
	if p := o.gauges.Load(); p != nil {
		return *p
	}
	return nil
}

// PollGauges reads fn every interval until ctx is done, storing the
// latest snapshot (LatestGauges) and logging the aggregate at Debug
// level. Run it on its own goroutine; it blocks. interval <= 0
// defaults to 10s.
func (o *Observer) PollGauges(ctx context.Context, interval time.Duration, fn func() []ShardGauge) {
	if o == nil || fn == nil {
		return
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		g := fn()
		o.gauges.Store(&g)
		var depth, inflight int64
		maxDepth := 0
		for _, s := range g {
			depth += int64(s.QueueDepth)
			inflight += s.InFlight
			if s.QueueDepth > maxDepth {
				maxDepth = s.QueueDepth
			}
		}
		o.logger.LogAttrs(ctx, slog.LevelDebug, "gauges",
			slog.Int("shards", len(g)),
			slog.Int64("queue_depth_total", depth),
			slog.Int("queue_depth_max", maxDepth),
			slog.Int64("in_flight", inflight),
		)
	}
}
