// Package obs is the zero-dependency observability substrate for the
// attache engine stack: structured logging (log/slog), request-scoped
// trace IDs, lightweight pipeline spans with ring-buffer retention, and
// periodic shard gauges.
//
// The design principle is the paper's own: know where the cycles go.
// Attaché's argument (§4–§6) is an accounting of per-access overheads —
// metadata traffic vs. data traffic; this package exposes the same kind
// of breakdown for a running engine, decomposing each traced request
// into queue-wait and service time per pipeline stage (enqueue →
// dequeue → execute → respond).
//
// Cost model, in order of importance:
//
//   - Observer off (nil): zero cost. Callers nil-check before touching
//     anything here; the engine hot path adds one branch.
//   - Observer on, request unsampled: allocation-free. Sampled() is one
//     atomic add and a modulo; no trace is created.
//   - Request sampled (or explicitly traced via a context Trace): the
//     trace allocates, and span recording takes the trace's mutex. This
//     path is paid only by the sampled fraction.
//
// Trace lifecycle: whoever creates a Trace (NewTrace or
// Observer.StartTrace) owns it and calls Observer.Finish to seal it
// into the retention ring, where Timeline/Recent serve it to the
// /v1/trace/{id} endpoint. Components in between (the shard engine)
// only Record spans into a Trace they find in the request context.
package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader is the HTTP header carrying a request's trace ID, both
// directions: clients send it to request tracing, the daemon echoes the
// assigned ID on every traced response.
const TraceHeader = "X-Attache-Trace"

// Config sizes an Observer.
type Config struct {
	// Logger receives structured events (access logs, gauge reports).
	// nil discards.
	Logger *slog.Logger
	// SampleRate is the traced fraction of requests in [0,1]: 0 never
	// samples (explicit context traces are still recorded), 1 traces
	// everything, 0.01 traces ~1 in 100.
	SampleRate float64
	// RingSize is how many completed traces are retained for lookup.
	// 0 defaults to 1024.
	RingSize int
	// Seed, when non-zero, makes generated trace IDs deterministic —
	// for tests. 0 seeds from the wall clock at construction.
	Seed int64
}

// Observer is the shared observability hub: sampling decisions, the
// completed-trace ring, the gauge snapshot, and the logger. All methods
// are safe for concurrent use. A nil *Observer is a valid "off" value
// for the packages that accept one.
type Observer struct {
	logger *slog.Logger
	every  uint64 // sample 1 in every; 0 = never
	ctr    atomic.Uint64
	idCtr  atomic.Uint64
	idSeed uint64

	mu   sync.Mutex
	ring []*Trace
	byID map[TraceID]*Trace
	next int

	gauges atomic.Pointer[[]ShardGauge]
}

// New builds an Observer from cfg.
func New(cfg Config) *Observer {
	o := &Observer{logger: cfg.Logger}
	if o.logger == nil {
		o.logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	switch {
	case cfg.SampleRate <= 0:
		o.every = 0
	case cfg.SampleRate >= 1:
		o.every = 1
	default:
		o.every = uint64(1/cfg.SampleRate + 0.5)
	}
	size := cfg.RingSize
	if size <= 0 {
		size = 1024
	}
	o.ring = make([]*Trace, size)
	o.byID = make(map[TraceID]*Trace, size)
	o.idSeed = uint64(cfg.Seed)
	if o.idSeed == 0 {
		o.idSeed = uint64(time.Now().UnixNano())
	}
	return o
}

// Logger returns the structured logger (never nil).
func (o *Observer) Logger() *slog.Logger { return o.logger }

// ParseLevel maps a -log-level flag value (debug, info, warn, error —
// case-insensitive) to its slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", s)
}

// Sampled reports whether the next request should be traced, advancing
// the sampling counter. Allocation-free; callers only create a Trace
// when it returns true.
func (o *Observer) Sampled() bool {
	if o == nil || o.every == 0 {
		return false
	}
	return o.ctr.Add(1)%o.every == 0
}

// NewID generates a fresh trace ID (splitmix64 over a counter, so IDs
// are unique per observer and deterministic under Config.Seed).
func (o *Observer) NewID() TraceID {
	return TraceID(splitmix64(o.idSeed + o.idCtr.Add(1)))
}

// StartTrace begins a trace. id 0 generates a fresh ID. The caller owns
// the trace and must call Finish to make it visible to Timeline lookups.
func (o *Observer) StartTrace(id TraceID) *Trace {
	if id == 0 {
		id = o.NewID()
	}
	return NewTrace(id)
}

// Finish seals tr into the retention ring, evicting the oldest entry
// once the ring is full. Idempotent per trace pointer.
func (o *Observer) Finish(tr *Trace) {
	if o == nil || tr == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if old := o.ring[o.next]; old != nil {
		delete(o.byID, old.id)
	}
	o.ring[o.next] = tr
	o.byID[tr.id] = tr
	o.next = (o.next + 1) % len(o.ring)
}

// Timeline looks up a finished trace by ID and renders its timeline.
func (o *Observer) Timeline(id TraceID) (Timeline, bool) {
	o.mu.Lock()
	tr := o.byID[id]
	o.mu.Unlock()
	if tr == nil {
		return Timeline{}, false
	}
	return tr.Timeline(), true
}

// Recent returns up to limit finished traces, newest first.
func (o *Observer) Recent(limit int) []Timeline {
	o.mu.Lock()
	defer o.mu.Unlock()
	if limit <= 0 || limit > len(o.ring) {
		limit = len(o.ring)
	}
	out := make([]Timeline, 0, limit)
	for k := 0; k < len(o.ring) && len(out) < limit; k++ {
		i := ((o.next-1-k)%len(o.ring) + len(o.ring)) % len(o.ring)
		if o.ring[i] == nil {
			continue
		}
		out = append(out, o.ring[i].Timeline())
	}
	return out
}

// splitmix64 is the standard 64-bit finalizer — good dispersion from a
// sequential counter, so successive trace IDs share no visible prefix.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 { // 0 is the "generate one for me" sentinel
		x = 1
	}
	return x
}
