package obs

import (
	"context"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceIDRoundTrip(t *testing.T) {
	for _, id := range []TraceID{1, 0xdeadbeef, ^TraceID(0)} {
		s := id.String()
		if len(s) != 16 {
			t.Fatalf("TraceID %d rendered %q, want 16 hex digits", id, s)
		}
		back, err := ParseTraceID(s)
		if err != nil {
			t.Fatalf("ParseTraceID(%q): %v", s, err)
		}
		if back != id {
			t.Fatalf("round trip %d -> %q -> %d", id, s, back)
		}
	}
	for _, bad := range []string{"", "0", "zz", strings.Repeat("f", 17), "0000000000000000"} {
		if _, err := ParseTraceID(bad); err == nil {
			t.Errorf("ParseTraceID(%q) accepted, want error", bad)
		}
	}
}

func TestSamplingRate(t *testing.T) {
	o := New(Config{SampleRate: 0.25, Seed: 1})
	hits := 0
	for i := 0; i < 1000; i++ {
		if o.Sampled() {
			hits++
		}
	}
	if hits != 250 {
		t.Fatalf("rate 0.25 sampled %d of 1000, want exactly 250 (counter-based)", hits)
	}

	off := New(Config{SampleRate: 0, Seed: 1})
	for i := 0; i < 100; i++ {
		if off.Sampled() {
			t.Fatal("rate 0 sampled a request")
		}
	}
	all := New(Config{SampleRate: 1, Seed: 1})
	for i := 0; i < 100; i++ {
		if !all.Sampled() {
			t.Fatal("rate 1 skipped a request")
		}
	}
}

func TestSampledOffIsAllocationFree(t *testing.T) {
	o := New(Config{SampleRate: 0, Seed: 1})
	if n := testing.AllocsPerRun(100, func() { o.Sampled() }); n != 0 {
		t.Fatalf("Sampled() with rate 0 allocated %.1f/op, want 0", n)
	}
	on := New(Config{SampleRate: 0.5, Seed: 1})
	if n := testing.AllocsPerRun(100, func() { on.Sampled() }); n != 0 {
		t.Fatalf("Sampled() with rate 0.5 allocated %.1f/op, want 0", n)
	}
	ctx := context.Background()
	if n := testing.AllocsPerRun(100, func() { TraceFromContext(ctx) }); n != 0 {
		t.Fatalf("TraceFromContext on a bare context allocated %.1f/op, want 0", n)
	}
}

func TestNewIDDeterministicAndUnique(t *testing.T) {
	a, b := New(Config{Seed: 7}), New(Config{Seed: 7})
	seen := make(map[TraceID]bool)
	for i := 0; i < 1000; i++ {
		ida, idb := a.NewID(), b.NewID()
		if ida != idb {
			t.Fatalf("same seed diverged at %d: %s vs %s", i, ida, idb)
		}
		if ida == 0 {
			t.Fatal("generated the reserved zero ID")
		}
		if seen[ida] {
			t.Fatalf("duplicate ID %s at %d", ida, i)
		}
		seen[ida] = true
	}
}

func TestRingRetentionAndEviction(t *testing.T) {
	o := New(Config{RingSize: 4, Seed: 1})
	ids := make([]TraceID, 6)
	for i := range ids {
		tr := o.StartTrace(0)
		tr.Record(StageRespond, -1, 1, 0, 0)
		o.Finish(tr)
		ids[i] = tr.ID()
	}
	for _, id := range ids[:2] {
		if _, ok := o.Timeline(id); ok {
			t.Errorf("evicted trace %s still resolvable", id)
		}
	}
	for _, id := range ids[2:] {
		if _, ok := o.Timeline(id); !ok {
			t.Errorf("retained trace %s not resolvable", id)
		}
	}
	recent := o.Recent(10)
	if len(recent) != 4 {
		t.Fatalf("Recent returned %d traces, want 4", len(recent))
	}
	if recent[0].TraceID != ids[5].String() {
		t.Fatalf("Recent[0] = %s, want newest %s", recent[0].TraceID, ids[5])
	}
}

func TestDecomposeAndTimeline(t *testing.T) {
	tr := NewTrace(42)
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	tr.Record(StageEnqueue, 0, 2, ms(1), ms(1))
	tr.Record(StageDequeue, 0, 2, ms(1), ms(4)) // 3ms wait
	tr.Record(StageExecute, 0, 2, ms(4), ms(9)) // 5ms service
	tr.Record(StageEnqueue, 1, 1, ms(1), ms(1))
	tr.Record(StageDequeue, 1, 1, ms(1), ms(2)) // 1ms wait
	tr.Record(StageExecute, 1, 1, ms(2), ms(3)) // 1ms service
	tr.Record(StageRespond, -1, 3, ms(10), ms(10))

	qw, sv, tot := tr.Decompose()
	if qw != ms(3) || sv != ms(5) || tot != ms(10) {
		t.Fatalf("Decompose = wait %v, service %v, total %v; want 3ms, 5ms, 10ms", qw, sv, tot)
	}
	tl := tr.Timeline()
	if tl.TraceID != TraceID(42).String() || len(tl.Events) != 7 {
		t.Fatalf("Timeline = id %s, %d events; want %s, 7", tl.TraceID, len(tl.Events), TraceID(42))
	}
	if tl.QueueWaitNanos != ms(3).Nanoseconds() || tl.ServiceNanos != ms(5).Nanoseconds() {
		t.Fatalf("Timeline decomposition = %d/%d ns", tl.QueueWaitNanos, tl.ServiceNanos)
	}
}

func TestConcurrentRecord(t *testing.T) {
	tr := NewTrace(1)
	var wg sync.WaitGroup
	for s := 0; s < 8; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				now := tr.Now()
				tr.Record(StageExecute, s, 1, now, now)
			}
		}(s)
	}
	wg.Wait()
	if got := len(tr.Events()); got != 800 {
		t.Fatalf("concurrent Record kept %d events, want 800", got)
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := NewTrace(9)
	ctx := ContextWithTrace(context.Background(), tr)
	if got := TraceFromContext(ctx); got != tr {
		t.Fatalf("TraceFromContext = %p, want %p", got, tr)
	}
	if got := TraceFromContext(context.Background()); got != nil {
		t.Fatalf("TraceFromContext on bare context = %p, want nil", got)
	}
}

func TestPollGauges(t *testing.T) {
	var buf safeBuffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	o := New(Config{Logger: logger, Seed: 1})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		o.PollGauges(ctx, time.Millisecond, func() []ShardGauge {
			return []ShardGauge{{Shard: 0, QueueDepth: 3, InFlight: 2, LastBatchOps: 64}}
		})
	}()
	deadline := time.After(2 * time.Second)
	for o.LatestGauges() == nil {
		select {
		case <-deadline:
			t.Fatal("no gauge snapshot within 2s")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	<-done
	g := o.LatestGauges()
	if len(g) != 1 || g[0].QueueDepth != 3 || g[0].InFlight != 2 {
		t.Fatalf("LatestGauges = %+v", g)
	}
	if !strings.Contains(buf.String(), "gauges") {
		t.Fatalf("gauge poll logged nothing: %q", buf.String())
	}
}

func TestNilObserverIsSafe(t *testing.T) {
	var o *Observer
	if o.Sampled() {
		t.Fatal("nil observer sampled")
	}
	o.Finish(NewTrace(1))
	if g := o.LatestGauges(); g != nil {
		t.Fatal("nil observer returned gauges")
	}
	var tr *Trace
	tr.Record(StageEnqueue, 0, 1, 0, 0) // must not panic
}

// safeBuffer is a mutex-guarded strings.Builder for concurrent slog use.
type safeBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *safeBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *safeBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
