package loadgen

import (
	"bytes"
	"context"
	"testing"
	"time"

	"attache/internal/core"
	"attache/internal/shard"
)

// TestRunEventsExplicitSequence: RunEvents executes a hand-built
// sequence as offered — counts, checksum, and per-kind buckets all come
// from the sequence, not from a generated plan.
func TestRunEventsExplicitSequence(t *testing.T) {
	eng := newEngine(t, shard.Config{Shards: 2})
	line := make([]byte, core.LineSize)
	events := []Event{
		{Kind: Write, Ops: []shard.Op{{Write: true, Addr: 1, Data: line}}},
		{Kind: Read, Ops: []shard.Op{{Addr: 1}}},
		{Kind: Batch, Ops: []shard.Op{{Write: true, Addr: 2, Data: line}, {Addr: 1}, {Addr: 2}}},
	}
	rep, err := RunEvents(context.Background(), eng, Config{Concurrency: 1, Prefill: -1}, events)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events != 3 || rep.Ops != 5 || rep.OpsOK != 5 {
		t.Fatalf("events/ops/ok = %d/%d/%d, want 3/5/5", rep.Events, rep.Ops, rep.OpsOK)
	}
	if rep.Checksum != Checksum(events) {
		t.Fatalf("report checksum %s, want the sequence's %s", rep.Checksum, Checksum(events))
	}
	for kind, want := range map[string]uint64{"read": 1, "write": 1, "batch": 1} {
		if got := rep.Latency[kind].Count; got != want {
			t.Fatalf("latency[%s] count %d, want %d", kind, got, want)
		}
	}
}

// TestRunEventsPace: with Pace set, arrival offsets are honored even at
// Rate 0 — a replayed capture arrives at its recorded times; without it,
// the same sequence fires back to back.
func TestRunEventsPace(t *testing.T) {
	eng := newEngine(t, shard.Config{Shards: 1})
	events := []Event{
		{At: 0, Kind: Read, Ops: []shard.Op{{Addr: 1}}},
		{At: 120 * time.Millisecond, Kind: Read, Ops: []shard.Op{{Addr: 2}}},
	}
	cfg := Config{Concurrency: 1, Prefill: 16}

	unpaced, err := RunEvents(context.Background(), eng, cfg, events)
	if err != nil {
		t.Fatal(err)
	}
	if unpaced.Duration > 60*time.Millisecond {
		t.Fatalf("unpaced run took %v — offsets should be ignored without Pace", unpaced.Duration)
	}

	cfg.Pace = true
	paced, err := RunEvents(context.Background(), eng, cfg, events)
	if err != nil {
		t.Fatal(err)
	}
	if paced.Duration < 100*time.Millisecond {
		t.Fatalf("paced run took %v — the 120ms arrival offset was not honored", paced.Duration)
	}
}

// TestPrefillPayloadOverride: a custom prefill generator decides the
// baseline residency — the engine hands back exactly those lines.
func TestPrefillPayloadOverride(t *testing.T) {
	eng := newEngine(t, shard.Config{Shards: 1})
	stamp := func(addr uint64) []byte {
		line := make([]byte, core.LineSize)
		for i := range line {
			line[i] = byte(addr) ^ 0x5A
		}
		return line
	}
	cfg := Config{Concurrency: 1, Prefill: 4, PrefillPayload: stamp}
	if _, err := RunEvents(context.Background(), eng, cfg, nil); err != nil {
		t.Fatal(err)
	}
	for addr := uint64(0); addr < 4; addr++ {
		res, err := eng.DoCtx(context.Background(), []shard.Op{{Addr: addr}})
		if err != nil || res[0].Err != nil {
			t.Fatalf("read %d: %v %v", addr, err, res[0].Err)
		}
		if !bytes.Equal(res[0].Data, stamp(addr)) {
			t.Fatalf("line %d does not carry the custom prefill payload", addr)
		}
	}
}
