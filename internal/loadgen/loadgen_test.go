package loadgen

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"attache/internal/core"
	"attache/internal/obs"
	"attache/internal/shard"
)

func newEngine(t *testing.T, cfg shard.Config) *shard.Engine {
	t.Helper()
	eng, err := shard.New(core.DefaultOptions(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

// TestPlanDeterministic: same seed, same plan — byte for byte.
func TestPlanDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Events: 500}
	a, b := Plan(cfg), Plan(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two plans from the same config differ")
	}
	if Checksum(a) != Checksum(b) {
		t.Fatal("checksums differ for identical plans")
	}
	cfg.Seed = 43
	if Checksum(Plan(cfg)) == Checksum(a) {
		t.Fatal("different seeds produced the same checksum")
	}
}

// TestChecksumIndependentOfConcurrency is the acceptance criterion: the
// op sequence (fingerprinted by its checksum) is identical whether the
// run executes with 1 worker or 16.
func TestChecksumIndependentOfConcurrency(t *testing.T) {
	base := Config{Seed: 42, Events: 300, AddrSpace: 1 << 10}
	var sums []string
	for _, conc := range []int{1, 16} {
		cfg := base
		cfg.Concurrency = conc
		eng := newEngine(t, shard.Config{Shards: 2})
		rep, err := Run(context.Background(), eng, cfg)
		if err != nil {
			t.Fatalf("run conc=%d: %v", conc, err)
		}
		if rep.Ops == 0 || rep.OpsOK == 0 {
			t.Fatalf("run conc=%d did no work: %+v", conc, rep)
		}
		sums = append(sums, rep.Checksum)
	}
	if sums[0] != sums[1] {
		t.Fatalf("checksum differs across concurrency: %s vs %s", sums[0], sums[1])
	}
}

// TestRunReportShape: a clean run over a prefilled space completes every
// op, reports sane quantiles, and an empty taxonomy apart from
// never_written misses on un-prefilled addresses.
func TestRunReportShape(t *testing.T) {
	cfg := Config{Seed: 7, Events: 400, Concurrency: 4, AddrSpace: 256, Prefill: 256}
	eng := newEngine(t, shard.Config{Shards: 2})
	rep, err := Run(context.Background(), eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events != 400 {
		t.Fatalf("events = %d, want 400", rep.Events)
	}
	// Full prefill of the address space: every read hits, every op lands.
	if rep.OpsOK != rep.Ops {
		t.Fatalf("ops_ok %d != ops %d (errors: %v)", rep.OpsOK, rep.Ops, rep.Errors)
	}
	if rep.Throughput <= 0 {
		t.Fatalf("throughput = %v", rep.Throughput)
	}
	var sampleTotal uint64
	for kind, q := range rep.Latency {
		if q.Count == 0 || q.Max < q.P50 {
			t.Fatalf("degenerate quantiles for %s: %+v", kind, q)
		}
		sampleTotal += q.Count
	}
	if sampleTotal != uint64(rep.Events) {
		t.Fatalf("latency samples %d != events %d", sampleTotal, rep.Events)
	}
}

// TestRunTaxonomyUnderFaults: with fault injection on, the report's
// error taxonomy picks up fault_injected (and nothing lands in "other").
func TestRunTaxonomyUnderFaults(t *testing.T) {
	cfg := Config{Seed: 11, Events: 300, Concurrency: 4, AddrSpace: 128, Prefill: 128}
	eng := newEngine(t, shard.Config{
		Shards: 2,
		Faults: shard.FaultPlan{Seed: 11, ErrP: 0.2},
	})
	rep, err := Run(context.Background(), eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors["fault_injected"] == 0 {
		t.Fatalf("expected injected faults in taxonomy, got %v", rep.Errors)
	}
	if rep.Errors["other"] != 0 {
		t.Fatalf("unclassified errors leaked into 'other': %v", rep.Errors)
	}
	if rep.OpsOK+sum(rep.Errors) != rep.Ops {
		t.Fatalf("taxonomy does not conserve: ok %d + errs %d != ops %d",
			rep.OpsOK, sum(rep.Errors), rep.Ops)
	}
}

// TestRunShedRate: a tiny queue plus slow ops plus many workers must
// shed, and the shed rate must reconcile with the taxonomy.
func TestRunShedRate(t *testing.T) {
	cfg := Config{
		Seed: 3, Events: 200, Concurrency: 8, AddrSpace: 64,
		Prefill: -1, WriteWeight: 1, ReadWeight: 0, BatchWeight: 0,
	}
	eng := newEngine(t, shard.Config{
		Shards:     1,
		QueueDepth: 1,
		Faults:     shard.FaultPlan{Seed: 3, DelayP: 1, Delay: 2 * time.Millisecond},
	})
	rep, err := Run(context.Background(), eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors["overloaded"] == 0 {
		t.Fatalf("expected sheds, taxonomy: %v", rep.Errors)
	}
	want := float64(rep.Errors["overloaded"]) / float64(rep.Ops)
	if rep.ShedRate != want {
		t.Fatalf("shed rate %v, want %v", rep.ShedRate, want)
	}
}

// TestRunHonorsContext: cancelling the run context stops the workers
// promptly instead of draining all events.
func TestRunHonorsContext(t *testing.T) {
	cfg := Config{Seed: 5, Events: 100000, Concurrency: 2, Prefill: -1}
	eng := newEngine(t, shard.Config{
		Shards: 1,
		Faults: shard.FaultPlan{Seed: 5, DelayP: 1, Delay: time.Millisecond},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	rep, err := Run(ctx, eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events != 100000 {
		t.Fatalf("plan size changed: %d", rep.Events)
	}
	if rep.Ops >= 100000 {
		t.Fatal("cancelled run still executed every event")
	}
}

// TestClassify pins the taxonomy labels, including wrapped chains and
// string-flattened errors (as the HTTP client produces).
func TestClassify(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want string
	}{
		{nil, "ok"},
		{core.ErrOverloaded, "overloaded"},
		{fmt.Errorf("shard 3 queue full: %w", core.ErrOverloaded), "overloaded"},
		{errors.New("attache: overloaded (flattened)"), "overloaded"},
		{context.DeadlineExceeded, "deadline"},
		{context.Canceled, "canceled"},
		{shard.ErrFaultInjected, "fault_injected"},
		{shard.ErrClosed, "closed"},
		{core.ErrNeverWritten, "never_written"},
		{core.ErrBadLineSize, "bad_line_size"},
		{core.ErrOutOfRange, "out_of_range"},
		{errors.New("mystery"), "other"},
	} {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
}

func sum(m map[string]uint64) uint64 {
	var n uint64
	for _, v := range m {
		n += v
	}
	return n
}

// TestRunQueueWaitReport: with TraceQueueWait on (and an observer on the
// engine so context traces are honored), the report carries per-kind
// queue-wait quantiles, one sample per event, each no larger than the
// event's own latency.
func TestRunQueueWaitReport(t *testing.T) {
	cfg := Config{Seed: 5, Events: 200, Concurrency: 4, AddrSpace: 128, Prefill: 128, TraceQueueWait: true}
	eng := newEngine(t, shard.Config{Shards: 2, Obs: obs.New(obs.Config{Seed: 1})})
	rep, err := Run(context.Background(), eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.QueueWait) == 0 {
		t.Fatalf("TraceQueueWait set but report has no queue-wait buckets: %+v", rep)
	}
	var samples uint64
	for kind, q := range rep.QueueWait {
		samples += q.Count
		lat, ok := rep.Latency[kind]
		if !ok {
			t.Fatalf("queue-wait bucket %q has no latency bucket", kind)
		}
		if q.Count != lat.Count {
			t.Fatalf("%s: %d queue-wait samples vs %d latency samples", kind, q.Count, lat.Count)
		}
		if q.Max > lat.Max {
			t.Fatalf("%s: max queue wait %v exceeds max latency %v", kind, q.Max, lat.Max)
		}
	}
	if samples != uint64(rep.Events) {
		t.Fatalf("queue-wait samples %d != events %d", samples, rep.Events)
	}

	// Without the flag the section is absent entirely.
	cfg.TraceQueueWait = false
	rep, err = Run(context.Background(), eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.QueueWait != nil {
		t.Fatalf("queue-wait section present without the flag: %+v", rep.QueueWait)
	}
}
