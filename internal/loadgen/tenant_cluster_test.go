package loadgen

import (
	"context"
	"testing"
	"time"

	"attache/internal/cluster"
	"attache/internal/core"
	"attache/internal/shard"
)

// TestRunPerTenantReport drives a quota-capped cluster target with two
// tenants and checks the per-tenant breakdown: the over-quota tenant
// sheds, the unquotaed one doesn't, each tenant's books conserve, and
// tenancy never perturbs the offered op stream (same checksum as the
// untenanted plan).
func TestRunPerTenantReport(t *testing.T) {
	frozen := time.Unix(1_700_000_000, 0)
	cl, err := cluster.New(core.DefaultOptions(), shard.Config{Shards: 2}, 1, cluster.Config{
		Quotas: map[string]cluster.Quota{"hog": {Rate: 50, Burst: 50}},
		Now:    func() time.Time { return frozen },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	cfg := Config{
		Seed:        9,
		Events:      200,
		Concurrency: 4,
		AddrSpace:   256,
		Prefill:     256, // full space: reads never hit unwritten lines
		Tenants:     []string{"hog", "vip"},
	}
	rep, err := Run(context.Background(), cl, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Tenancy is checksum-invisible: the offered sequence is the same
	// plan an untenanted run would submit.
	plain := cfg
	plain.Tenants = nil
	if want := Checksum(Plan(plain)); rep.Checksum != want {
		t.Fatalf("checksum %s != untenanted plan %s", rep.Checksum, want)
	}

	if len(rep.PerTenant) != 2 {
		t.Fatalf("per-tenant = %+v, want exactly hog and vip", rep.PerTenant)
	}
	hog, okHog := rep.PerTenant["hog"]
	vip, okVip := rep.PerTenant["vip"]
	if !okHog || !okVip {
		t.Fatalf("per-tenant = %+v, want hog and vip", rep.PerTenant)
	}
	// Round-robin deal: 200 events split evenly.
	if hog.Events != 100 || vip.Events != 100 {
		t.Fatalf("events hog=%d vip=%d, want 100 each", hog.Events, vip.Events)
	}
	if got := hog.Ops + vip.Ops; got != rep.Ops {
		t.Fatalf("per-tenant ops %d != report ops %d", got, rep.Ops)
	}
	// Frozen clock: hog's bucket never refills past its 50-op burst, so
	// with ~100+ offered ops it must shed; vip has no quota at all.
	if hog.Shed == 0 {
		t.Fatalf("hog book = %+v, want quota sheds", hog)
	}
	if vip.Shed != 0 || vip.OpsOK != vip.Ops {
		t.Fatalf("vip book = %+v, want all ops ok", vip)
	}
	for name, tt := range rep.PerTenant {
		var errOps uint64
		for _, n := range tt.Errors {
			errOps += n
		}
		if tt.Ops != tt.OpsOK+errOps {
			t.Fatalf("tenant %s books do not conserve: %+v", name, tt)
		}
		if tt.Shed > tt.Errors["overloaded"] {
			t.Fatalf("tenant %s sheds %d exceed overloaded errors %d", name, tt.Shed, tt.Errors["overloaded"])
		}
	}
	// The cluster's own books agree with the load generator's view.
	for _, tn := range cl.TenantSnapshots() {
		tt, ok := rep.PerTenant[tn.Tenant]
		if tn.Tenant == "" {
			continue // untenanted prefill traffic
		}
		if !ok || uint64(tn.OK) != tt.OpsOK || uint64(tn.ShedQuota) != tt.Shed {
			t.Fatalf("cluster book %+v disagrees with report %+v", tn, tt)
		}
	}
}
