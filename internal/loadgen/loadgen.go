// Package loadgen is the deterministic load/chaos harness for the
// sharded engine: a seeded open-loop arrival process over configurable
// read/write/batch mixes, reporting throughput, per-op latency
// quantiles, shed rate, and an error taxonomy.
//
// Determinism is the point: Plan expands a Config into the full event
// sequence up front from a single seeded RNG, so the same seed produces
// the same op sequence — same kinds, addresses, payloads, and arrival
// offsets — at any concurrency. Checksum fingerprints that sequence;
// equal checksums mean equal workloads, which is what makes runs at
// different concurrency levels (or on different builds) comparable.
//
// The arrival process is open-loop when Rate > 0: event i fires at its
// scheduled offset whether or not earlier events have completed, so
// queueing delay shows up as latency instead of silently throttling the
// offered load (the classic closed-loop coordination-omission trap).
package loadgen

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"attache/internal/core"
	"attache/internal/obs"
	"attache/internal/shard"
	"attache/internal/tier"
)

// Target is anything the harness can drive — *shard.Engine satisfies it
// directly, and cmd/attacheload adapts the HTTP client to it.
type Target interface {
	DoCtx(ctx context.Context, ops []shard.Op) ([]shard.Result, error)
}

// Config shapes the workload.
type Config struct {
	// Seed drives every random choice (kinds, addresses, payloads,
	// arrival times). Same seed, same workload.
	Seed int64
	// Events is how many submissions to generate (a batch counts as one
	// event). 0 defaults to 1000.
	Events int
	// Concurrency is the worker count executing events. 0 defaults to 1.
	// Concurrency does not change the generated sequence.
	Concurrency int
	// AddrSpace bounds generated line addresses. 0 defaults to 1<<16.
	AddrSpace uint64
	// ReadWeight/WriteWeight/BatchWeight set the op mix (relative
	// weights; all zero defaults to 3/1/1).
	ReadWeight, WriteWeight, BatchWeight int
	// BatchSize is the op count of a batch event. 0 defaults to 16.
	BatchSize int
	// Rate is the open-loop arrival rate in events/second. 0 means no
	// pacing: workers fire events back to back.
	Rate float64
	// Pace makes RunEvents honor each event's At offset even when Rate
	// is 0 — the knob for replaying a recorded capture (or a composed
	// workload scenario) at its original arrival times. Ignored by Run,
	// whose plans only carry offsets when Rate > 0.
	Pace bool
	// OpTimeout, when non-zero, wraps each event in a deadline.
	OpTimeout time.Duration
	// Prefill writes this many lines (addresses 0..Prefill-1) before the
	// measured run so reads mostly hit written lines. 0 defaults to
	// AddrSpace/2, capped at 1<<16; negative disables prefill.
	Prefill int
	// PrefillPayload, when non-nil, builds the prefill lines instead of
	// the default mixed generator — so a scenario's baseline residency
	// matches its traffic's compressibility (internal/workload sets it).
	PrefillPayload func(addr uint64) []byte
	// Tenants, when non-empty, labels events with tenant identities,
	// dealt round-robin by event index — deterministic, independent of
	// the RNG, and invisible to Checksum (the op stream is identical
	// with or without tenancy). Each event runs under its tenant's
	// context (obs.ContextWithTenant), so a cluster target applies that
	// tenant's admission quota and SLO class, and the report gains a
	// per-tenant breakdown.
	Tenants []string
	// TraceQueueWait attaches a pipeline trace to every event so the
	// report can split event latency into queue wait vs. service time
	// (Report.QueueWait). Only meaningful against an in-process engine
	// built with an Observer (the engine ignores context traces when it
	// has none — that keeps its untraced hot path free): traces do not
	// cross the HTTP boundary, so with an HTTP target the samples are
	// all zero.
	TraceQueueWait bool
}

func (c Config) withDefaults() Config {
	if c.Events == 0 {
		c.Events = 1000
	}
	if c.Concurrency == 0 {
		c.Concurrency = 1
	}
	if c.AddrSpace == 0 {
		c.AddrSpace = 1 << 16
	}
	if c.ReadWeight == 0 && c.WriteWeight == 0 && c.BatchWeight == 0 {
		c.ReadWeight, c.WriteWeight, c.BatchWeight = 3, 1, 1
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.Prefill == 0 {
		c.Prefill = int(min(c.AddrSpace/2, 1<<16))
	}
	return c
}

// Kind labels an event for the per-op-type report buckets.
type Kind uint8

const (
	Read Kind = iota
	Write
	Batch
)

func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case Batch:
		return "batch"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one scheduled submission.
type Event struct {
	// At is the open-loop arrival offset from the start of the run.
	At time.Duration
	// Kind drives the report bucket; Ops is the payload (1 op for
	// read/write events, BatchSize for batches).
	Kind Kind
	Ops  []shard.Op
	// Tenant, when non-empty, runs the event under that tenant's context
	// and books it to the report's per-tenant bucket. Not part of the
	// Checksum fingerprint: tenancy labels traffic, it does not change it.
	Tenant string
}

// AssignTenants deals tenants onto events round-robin by index, in
// place — the same labeling Plan applies from Config.Tenants, usable on
// composed scenarios and decoded captures too. No-op when tenants is
// empty.
func AssignTenants(events []Event, tenants []string) {
	if len(tenants) == 0 {
		return
	}
	for i := range events {
		events[i].Tenant = tenants[i%len(tenants)]
	}
}

// Plan expands cfg into its deterministic event sequence.
func Plan(cfg Config) []Event {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	events := make([]Event, cfg.Events)
	wsum := cfg.ReadWeight + cfg.WriteWeight + cfg.BatchWeight
	var clock time.Duration
	for i := range events {
		if cfg.Rate > 0 {
			// Poisson arrivals: exponential inter-arrival gaps.
			gap := -math.Log(1-rng.Float64()) / cfg.Rate
			clock += time.Duration(gap * float64(time.Second))
		}
		ev := Event{At: clock}
		switch w := rng.Intn(wsum); {
		case w < cfg.ReadWeight:
			ev.Kind = Read
			ev.Ops = []shard.Op{{Addr: rng.Uint64() % cfg.AddrSpace}}
		case w < cfg.ReadWeight+cfg.WriteWeight:
			ev.Kind = Write
			addr := rng.Uint64() % cfg.AddrSpace
			ev.Ops = []shard.Op{{Write: true, Addr: addr, Data: payload(addr, rng.Uint64())}}
		default:
			ev.Kind = Batch
			ev.Ops = make([]shard.Op, cfg.BatchSize)
			for j := range ev.Ops {
				addr := rng.Uint64() % cfg.AddrSpace
				if rng.Intn(4) == 0 {
					ev.Ops[j] = shard.Op{Write: true, Addr: addr, Data: payload(addr, rng.Uint64())}
				} else {
					ev.Ops[j] = shard.Op{Addr: addr}
				}
			}
		}
		events[i] = ev
	}
	AssignTenants(events, cfg.Tenants)
	return events
}

// payload builds a deterministic 64-byte line from an address and a
// version: half the lines are array-like (compressible), half are mixed.
func payload(addr, version uint64) []byte {
	line := make([]byte, core.LineSize)
	if addr%2 == 0 {
		base := addr*4096 + version%512
		for w := 0; w < 8; w++ {
			binary.LittleEndian.PutUint64(line[w*8:], base)
		}
	} else {
		x := addr ^ version | 1
		for w := 0; w < 8; w++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			binary.LittleEndian.PutUint64(line[w*8:], x)
		}
	}
	return line
}

// Checksum fingerprints an event sequence: kinds, arrival offsets,
// addresses, directions, and full write payloads all feed the hash.
func Checksum(events []Event) string {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for _, ev := range events {
		u64(uint64(ev.Kind))
		u64(uint64(ev.At))
		for _, op := range ev.Ops {
			u64(op.Addr)
			if op.Write {
				u64(1)
				h.Write(op.Data)
			} else {
				u64(0)
			}
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Quantiles summarizes one kind's latency samples.
type Quantiles struct {
	Count         uint64        `json:"count"`
	P50, P90, P99 time.Duration `json:"-"`
	Max           time.Duration `json:"-"`
	P50Micros     float64       `json:"p50_us"`
	P90Micros     float64       `json:"p90_us"`
	P99Micros     float64       `json:"p99_us"`
	MaxMicros     float64       `json:"max_us"`
}

// Report is the outcome of a Run.
type Report struct {
	// Checksum fingerprints the op sequence that was offered (computed
	// from the plan, not from completions — identical across
	// concurrency levels by construction).
	Checksum string `json:"checksum"`
	// Events/Ops are offered totals; OpsOK counts ops that succeeded.
	Events int    `json:"events"`
	Ops    uint64 `json:"ops"`
	OpsOK  uint64 `json:"ops_ok"`
	// Duration is wall clock for the measured run; Throughput is
	// completed-ops/second (successes and failures both count — they
	// all cost a round trip).
	Duration   time.Duration `json:"duration_ns"`
	Throughput float64       `json:"ops_per_sec"`
	// ShedRate is sheds / offered ops.
	ShedRate float64 `json:"shed_rate"`
	// Errors is the taxonomy: classified error label -> op count.
	Errors map[string]uint64 `json:"errors"`
	// Latency holds per-kind event-latency quantiles.
	Latency map[string]Quantiles `json:"latency"`
	// QueueWait holds per-kind queue-wait quantiles (time an event's ops
	// spent buffered in shard queues before a worker picked them up).
	// Populated only when Config.TraceQueueWait is set.
	QueueWait map[string]Quantiles `json:"queue_wait,omitempty"`
	// PerTenant breaks offered/succeeded/shed ops down by tenant label.
	// Populated only when events carry tenants (Config.Tenants or
	// AssignTenants).
	PerTenant map[string]TenantReport `json:"per_tenant,omitempty"`
	// Tiers is the target's two-tier stats view after the run. Populated
	// only for in-process targets running a tiered backend (the target
	// implements TierSnapshot and reports one).
	Tiers *tier.Snapshot `json:"tiers,omitempty"`
}

// tierReporter is implemented by targets that can report a two-tier
// stats view (shard.Engine when built with a tier config).
type tierReporter interface {
	TierSnapshot() (tier.Snapshot, bool)
}

// TenantReport is one tenant's slice of a run.
type TenantReport struct {
	Events int               `json:"events"`
	Ops    uint64            `json:"ops"`
	OpsOK  uint64            `json:"ops_ok"`
	Shed   uint64            `json:"shed"`
	Errors map[string]uint64 `json:"errors,omitempty"`
}

// Classify buckets an op error for the taxonomy.
func Classify(err error) string {
	switch {
	case err == nil:
		return "ok"
	case isErr(err, core.ErrOverloaded):
		return "overloaded"
	case isErr(err, context.DeadlineExceeded):
		return "deadline"
	case isErr(err, context.Canceled):
		return "canceled"
	case isErr(err, shard.ErrFaultInjected):
		return "fault_injected"
	case isErr(err, shard.ErrClosed):
		return "closed"
	case isErr(err, core.ErrNeverWritten):
		return "never_written"
	case isErr(err, core.ErrBadLineSize):
		return "bad_line_size"
	case isErr(err, core.ErrOutOfRange):
		return "out_of_range"
	}
	return "other"
}

// isErr is errors.Is plus a message-substring fallback, so taxonomy
// survives error chains flattened to strings (the HTTP client path).
func isErr(err, sentinel error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, sentinel) || strings.Contains(err.Error(), sentinel.Error())
}

// workerTally is one worker's private accounting, merged after the run.
type workerTally struct {
	ops, opsOK uint64
	errs       map[string]uint64
	samples    map[Kind][]time.Duration
	qwait      map[Kind][]time.Duration
	tenants    map[string]*TenantReport
}

// tenant returns the worker's bucket for name, creating it on first use.
func (tl *workerTally) tenant(name string) *TenantReport {
	t := tl.tenants[name]
	if t == nil {
		t = &TenantReport{Errors: make(map[string]uint64)}
		tl.tenants[name] = t
	}
	return t
}

// Run executes the planned sequence against target and reports. The
// offered sequence (and its checksum) depends only on cfg, never on
// concurrency or target behavior.
func Run(ctx context.Context, target Target, cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	return RunEvents(ctx, target, cfg, Plan(cfg))
}

// RunEvents executes an explicit event sequence — a composed workload
// scenario or a decoded tracev1 capture — against target, with the same
// prefill, concurrency, reporting, and determinism contract as Run.
// Arrival offsets are honored when cfg.Rate > 0 or cfg.Pace is set;
// otherwise workers fire events back to back.
func RunEvents(ctx context.Context, target Target, cfg Config, events []Event) (Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Prefill > 0 {
		if err := prefill(ctx, target, cfg); err != nil {
			return Report{}, fmt.Errorf("loadgen: prefill: %w", err)
		}
	}
	paced := cfg.Rate > 0 || cfg.Pace

	var next atomic.Int64
	tallies := make([]workerTally, cfg.Concurrency)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tl := &tallies[w]
			tl.errs = make(map[string]uint64)
			tl.samples = make(map[Kind][]time.Duration)
			tl.qwait = make(map[Kind][]time.Duration)
			tl.tenants = make(map[string]*TenantReport)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(events) || ctx.Err() != nil {
					return
				}
				ev := events[i]
				if paced {
					// Open loop: fire at the scheduled offset; if we are
					// behind, fire immediately and let latency absorb it.
					if wait := ev.At - time.Since(start); wait > 0 {
						select {
						case <-time.After(wait):
						case <-ctx.Done():
							return
						}
					}
				}
				ectx, cancel := ctx, context.CancelFunc(func() {})
				if cfg.OpTimeout > 0 {
					ectx, cancel = context.WithTimeout(ctx, cfg.OpTimeout)
				}
				if ev.Tenant != "" {
					ectx = obs.ContextWithTenant(ectx, ev.Tenant)
				}
				var tr *obs.Trace
				if cfg.TraceQueueWait {
					tr = obs.NewTrace(obs.TraceID(uint64(i) + 1))
					ectx = obs.ContextWithTrace(ectx, tr)
				}
				t0 := time.Now()
				res, err := target.DoCtx(ectx, ev.Ops)
				lat := time.Since(t0)
				cancel()
				tl.samples[ev.Kind] = append(tl.samples[ev.Kind], lat)
				if tr != nil {
					qw, _, _ := tr.Decompose()
					tl.qwait[ev.Kind] = append(tl.qwait[ev.Kind], qw)
				}
				tl.ops += uint64(len(ev.Ops))
				var tt *TenantReport
				if ev.Tenant != "" {
					tt = tl.tenant(ev.Tenant)
					tt.Events++
					tt.Ops += uint64(len(ev.Ops))
				}
				if err != nil {
					// Whole-event failure (expired ctx, closed engine):
					// every op in it failed the same way.
					label := Classify(err)
					tl.errs[label] += uint64(len(ev.Ops))
					if tt != nil {
						tt.Errors[label] += uint64(len(ev.Ops))
						if label == "overloaded" {
							tt.Shed += uint64(len(ev.Ops))
						}
					}
					continue
				}
				for _, r := range res {
					if r.Err == nil {
						tl.opsOK++
						if tt != nil {
							tt.OpsOK++
						}
						continue
					}
					label := Classify(r.Err)
					tl.errs[label]++
					if tt != nil {
						tt.Errors[label]++
						if label == "overloaded" {
							tt.Shed++
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := Report{
		Checksum: Checksum(events),
		Events:   len(events),
		Duration: elapsed,
		Errors:   make(map[string]uint64),
		Latency:  make(map[string]Quantiles),
	}
	samples := make(map[Kind][]time.Duration)
	qwaits := make(map[Kind][]time.Duration)
	for i := range tallies {
		rep.Ops += tallies[i].ops
		rep.OpsOK += tallies[i].opsOK
		for k, v := range tallies[i].errs {
			rep.Errors[k] += v
		}
		for k, s := range tallies[i].samples {
			samples[k] = append(samples[k], s...)
		}
		for k, s := range tallies[i].qwait {
			qwaits[k] = append(qwaits[k], s...)
		}
		for name, t := range tallies[i].tenants {
			if rep.PerTenant == nil {
				rep.PerTenant = make(map[string]TenantReport)
			}
			agg := rep.PerTenant[name]
			agg.Events += t.Events
			agg.Ops += t.Ops
			agg.OpsOK += t.OpsOK
			agg.Shed += t.Shed
			for k, v := range t.Errors {
				if agg.Errors == nil {
					agg.Errors = make(map[string]uint64)
				}
				agg.Errors[k] += v
			}
			rep.PerTenant[name] = agg
		}
	}
	if elapsed > 0 {
		rep.Throughput = float64(rep.Ops) / elapsed.Seconds()
	}
	if rep.Ops > 0 {
		rep.ShedRate = float64(rep.Errors["overloaded"]) / float64(rep.Ops)
	}
	for k, s := range samples {
		rep.Latency[k.String()] = quantiles(s)
	}
	if cfg.TraceQueueWait {
		rep.QueueWait = make(map[string]Quantiles)
		for k, s := range qwaits {
			rep.QueueWait[k.String()] = quantiles(s)
		}
	}
	if tr, ok := target.(tierReporter); ok {
		if ts, tiered := tr.TierSnapshot(); tiered {
			rep.Tiers = &ts
		}
	}
	return rep, nil
}

// prefill writes cfg.Prefill deterministic lines through the target so
// the measured run's reads mostly land on written addresses.
func prefill(ctx context.Context, target Target, cfg Config) error {
	const chunk = 256
	for base := 0; base < cfg.Prefill; base += chunk {
		n := min(uint64(chunk), uint64(cfg.Prefill-base))
		ops := make([]shard.Op, n)
		for i := range ops {
			addr := uint64(base + i)
			data := cfg.PrefillPayload
			if data != nil {
				ops[i] = shard.Op{Write: true, Addr: addr, Data: data(addr)}
			} else {
				ops[i] = shard.Op{Write: true, Addr: addr, Data: payload(addr, 0)}
			}
		}
		// Plain retry loop: prefill must land even on a lossy target.
		for attempt := 0; ; attempt++ {
			res, err := target.DoCtx(ctx, ops)
			if err != nil {
				return err
			}
			var retry []shard.Op
			for i, r := range res {
				if r.Err != nil {
					retry = append(retry, ops[i])
				}
			}
			if len(retry) == 0 {
				break
			}
			if attempt > 100 {
				return fmt.Errorf("prefill op kept failing: %w", res[0].Err)
			}
			ops = retry
		}
	}
	return nil
}

func quantiles(s []time.Duration) Quantiles {
	if len(s) == 0 {
		return Quantiles{}
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(s)-1))
		return s[i]
	}
	qs := Quantiles{
		Count: uint64(len(s)),
		P50:   at(0.50),
		P90:   at(0.90),
		P99:   at(0.99),
		Max:   s[len(s)-1],
	}
	qs.P50Micros = float64(qs.P50) / float64(time.Microsecond)
	qs.P90Micros = float64(qs.P90) / float64(time.Microsecond)
	qs.P99Micros = float64(qs.P99) / float64(time.Microsecond)
	qs.MaxMicros = float64(qs.Max) / float64(time.Microsecond)
	return qs
}
