// Package cache models the shared last-level cache of Table II: 8 MB,
// 8-way, 64-byte lines, LRU, write-back write-allocate, with MSHR
// coalescing of outstanding misses. It sits between the cores and the
// memory controller and is the source of the eviction write traffic the
// memory system sees.
package cache

import (
	"attache/internal/sim"
	"attache/internal/stats"
)

// Backend is the lower level the LLC fills from and writes back to (the
// memory-controller system).
type Backend interface {
	Read(lineAddr uint64, done func(now sim.Time))
	Write(lineAddr uint64)
}

// Stats counts LLC activity.
type Stats struct {
	Accesses   stats.Counter
	Hits       stats.Counter
	Misses     stats.Counter
	Coalesced  stats.Counter // misses merged into an in-flight fill
	Writebacks stats.Counter // dirty evictions sent to memory
	Prefetches stats.Counter // next-line fills issued by the prefetcher
}

// HitRate reports hits/accesses.
func (s *Stats) HitRate() float64 {
	if s.Accesses.Value() == 0 {
		return 0
	}
	return float64(s.Hits.Value()) / float64(s.Accesses.Value())
}

type llcLine struct {
	valid bool
	tag   uint64
	dirty bool
	used  uint64
}

type mshrEntry struct {
	waiters []func(sim.Time)
	dirty   bool // a store merged into this fill
}

// LLC is the shared last-level cache.
type LLC struct {
	eng     *sim.Engine
	backend Backend
	latency sim.Time
	sets    int
	ways    int
	lines   []llcLine
	tick    uint64
	mshr    map[uint64]*mshrEntry
	// mshrFree recycles mshrEntry values (and their waiter slices): an
	// entry retires into the freelist when its fill completes, so the
	// steady-state miss path allocates neither the entry nor the first
	// waiter append. Purely an allocation optimization — entries are
	// single-owner and the fill order is untouched.
	mshrFree []*mshrEntry
	// prefetchNextLine issues a fill for addr+1 alongside every demand
	// miss (a simple sequential prefetcher; off by default — Table II
	// does not specify one).
	prefetchNextLine bool
	Stats            Stats
}

// New builds an LLC of sizeBytes with the given associativity and lookup
// latency (CPU cycles).
func New(eng *sim.Engine, backend Backend, sizeBytes int64, ways int, latency sim.Time) *LLC {
	if ways <= 0 {
		panic("cache: ways must be positive")
	}
	n := int(sizeBytes / 64)
	sets := n / ways
	if sets < 1 {
		sets = 1
	}
	for sets&(sets-1) != 0 {
		sets &= sets - 1
	}
	return &LLC{
		eng:     eng,
		backend: backend,
		latency: latency,
		sets:    sets,
		ways:    ways,
		lines:   make([]llcLine, sets*ways),
		mshr:    make(map[uint64]*mshrEntry),
	}
}

// Sets reports the number of sets.
func (c *LLC) Sets() int { return c.sets }

// EnableNextLinePrefetch turns the sequential prefetcher on or off.
func (c *LLC) EnableNextLinePrefetch(on bool) { c.prefetchNextLine = on }

// getEntry pops a recycled mshrEntry (empty, clean) or allocates one.
func (c *LLC) getEntry() *mshrEntry {
	if n := len(c.mshrFree); n > 0 {
		e := c.mshrFree[n-1]
		c.mshrFree = c.mshrFree[:n-1]
		return e
	}
	return &mshrEntry{}
}

func (c *LLC) set(addr uint64) []llcLine {
	s := int(addr) & (c.sets - 1)
	return c.lines[s*c.ways : (s+1)*c.ways]
}

func (c *LLC) find(addr uint64) *llcLine {
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == addr {
			return &set[i]
		}
	}
	return nil
}

// Read looks up addr; done runs when data is available (after the LLC
// latency on a hit, or after the memory fill on a miss). Concurrent
// misses to the same line coalesce into one fill.
func (c *LLC) Read(addr uint64, done func(now sim.Time)) {
	c.Stats.Accesses.Inc()
	if l := c.find(addr); l != nil {
		c.Stats.Hits.Inc()
		c.tick++
		l.used = c.tick
		c.eng.ScheduleAfter(c.latency, done)
		return
	}
	c.Stats.Misses.Inc()
	if e, ok := c.mshr[addr]; ok {
		c.Stats.Coalesced.Inc()
		e.waiters = append(e.waiters, done)
		return
	}
	e := c.getEntry()
	e.waiters = append(e.waiters, done)
	c.mshr[addr] = e
	c.eng.ScheduleAfter(c.latency, func(sim.Time) {
		c.backend.Read(addr, func(now sim.Time) { c.fill(addr, now) })
	})
	c.maybePrefetch(addr + 1)
}

// maybePrefetch issues a prefetch fill for addr when the prefetcher is
// enabled and the line is neither resident nor already in flight.
func (c *LLC) maybePrefetch(addr uint64) {
	if !c.prefetchNextLine {
		return
	}
	if c.find(addr) != nil {
		return
	}
	if _, ok := c.mshr[addr]; ok {
		return
	}
	c.Stats.Prefetches.Inc()
	c.mshr[addr] = c.getEntry() // no waiters: fill installs silently
	c.eng.ScheduleAfter(c.latency, func(sim.Time) {
		c.backend.Read(addr, func(now sim.Time) { c.fill(addr, now) })
	})
}

// Write performs a store to addr. Hits mark the line dirty; misses
// write-allocate by fetching the line (read-for-ownership) and install
// it dirty. Stores are posted: no completion is reported.
func (c *LLC) Write(addr uint64) {
	c.Stats.Accesses.Inc()
	if l := c.find(addr); l != nil {
		c.Stats.Hits.Inc()
		c.tick++
		l.used = c.tick
		l.dirty = true
		return
	}
	c.Stats.Misses.Inc()
	if e, ok := c.mshr[addr]; ok {
		c.Stats.Coalesced.Inc()
		e.dirty = true
		return
	}
	e := c.getEntry()
	e.dirty = true
	c.mshr[addr] = e
	c.eng.ScheduleAfter(c.latency, func(sim.Time) {
		c.backend.Read(addr, func(now sim.Time) { c.fill(addr, now) })
	})
}

// fill installs a returned line, evicting the LRU victim (writing it back
// if dirty) and releasing every coalesced waiter.
func (c *LLC) fill(addr uint64, now sim.Time) {
	e := c.mshr[addr]
	delete(c.mshr, addr)

	set := c.set(addr)
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	if set[victim].valid && set[victim].dirty {
		c.Stats.Writebacks.Inc()
		c.backend.Write(set[victim].tag)
	}
	c.tick++
	set[victim] = llcLine{valid: true, tag: addr, dirty: e.dirty, used: c.tick}
	for _, w := range e.waiters {
		w(now)
	}
	// Recycle only after the waiters ran: a waiter may re-enter the LLC
	// and take a fresh entry, but it can never still hold this one.
	for i := range e.waiters {
		e.waiters[i] = nil
	}
	e.waiters = e.waiters[:0]
	e.dirty = false
	c.mshrFree = append(c.mshrFree, e)
}

// OutstandingMisses reports in-flight fills (for drain checks).
func (c *LLC) OutstandingMisses() int { return len(c.mshr) }

// Prefill installs addr without generating memory traffic or statistics.
// The experiment harness uses it to warm the cache to steady state before
// measurement, standing in for the paper's 40-billion-instruction warmup.
func (c *LLC) Prefill(addr uint64, dirty bool) {
	if l := c.find(addr); l != nil {
		l.dirty = l.dirty || dirty
		return
	}
	set := c.set(addr)
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	c.tick++
	set[victim] = llcLine{valid: true, tag: addr, dirty: dirty, used: c.tick}
}
