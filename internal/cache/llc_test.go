package cache

import (
	"testing"

	"attache/internal/sim"
)

// fakeBackend records traffic and completes reads after a fixed delay.
type fakeBackend struct {
	eng    *sim.Engine
	delay  sim.Time
	reads  []uint64
	writes []uint64
}

func (f *fakeBackend) Read(addr uint64, done func(sim.Time)) {
	f.reads = append(f.reads, addr)
	f.eng.ScheduleAfter(f.delay, done)
}

func (f *fakeBackend) Write(addr uint64) { f.writes = append(f.writes, addr) }

func newLLC(size int64, ways int) (*sim.Engine, *fakeBackend, *LLC) {
	eng := sim.NewEngine()
	b := &fakeBackend{eng: eng, delay: 100}
	return eng, b, New(eng, b, size, ways, 20)
}

func TestReadMissFillsThenHits(t *testing.T) {
	eng, b, c := newLLC(8<<10, 8)
	var first, second sim.Time
	c.Read(7, func(now sim.Time) { first = now })
	eng.RunUntilDone(100)
	if first != 120 { // 20 lookup + 100 memory
		t.Fatalf("miss completed at %d, want 120", first)
	}
	c.Read(7, func(now sim.Time) { second = now })
	eng.RunUntilDone(100)
	if second != 140 { // 120 + 20 hit latency
		t.Fatalf("hit completed at %d, want 140", second)
	}
	if len(b.reads) != 1 {
		t.Fatalf("backend reads = %d, want 1", len(b.reads))
	}
	if c.Stats.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", c.Stats.HitRate())
	}
}

func TestMissCoalescing(t *testing.T) {
	eng, b, c := newLLC(8<<10, 8)
	done := 0
	for i := 0; i < 5; i++ {
		c.Read(9, func(sim.Time) { done++ })
	}
	eng.RunUntilDone(1000)
	if done != 5 {
		t.Fatalf("waiters completed = %d, want 5", done)
	}
	if len(b.reads) != 1 {
		t.Fatalf("backend reads = %d, want 1 (coalesced)", len(b.reads))
	}
	if c.Stats.Coalesced.Value() != 4 {
		t.Fatalf("coalesced = %d, want 4", c.Stats.Coalesced.Value())
	}
}

func TestWriteAllocateAndWriteback(t *testing.T) {
	eng, b, c := newLLC(64*2, 2) // one set, two ways
	c.Write(1)                   // miss -> RFO fill, installs dirty
	eng.RunUntilDone(100)
	if len(b.reads) != 1 {
		t.Fatalf("write-allocate should fetch the line, reads=%d", len(b.reads))
	}
	c.Read(2, func(sim.Time) {})
	c.Read(3, func(sim.Time) {}) // evicts line 1 (dirty) on fill
	eng.RunUntilDone(1000)
	if len(b.writes) != 1 || b.writes[0] != 1 {
		t.Fatalf("expected writeback of line 1, got %v", b.writes)
	}
	if c.Stats.Writebacks.Value() != 1 {
		t.Fatal("writeback counter not charged")
	}
}

func TestCleanEvictionSilent(t *testing.T) {
	eng, b, c := newLLC(64*2, 2)
	for addr := uint64(0); addr < 3; addr++ {
		c.Read(addr, func(sim.Time) {})
	}
	eng.RunUntilDone(1000)
	if len(b.writes) != 0 {
		t.Fatalf("clean evictions must not write back, got %v", b.writes)
	}
}

func TestStoreMergesIntoInflightFill(t *testing.T) {
	eng, b, c := newLLC(64*4, 4)
	c.Read(5, func(sim.Time) {})
	c.Write(5) // merges into the in-flight fill, marks dirty
	eng.RunUntilDone(1000)
	if len(b.reads) != 1 {
		t.Fatalf("reads = %d, want 1", len(b.reads))
	}
	// Force eviction of line 5: it must write back (dirty via merge).
	for addr := uint64(16); addr < 20; addr++ {
		c.Read(addr, func(sim.Time) {})
	}
	eng.RunUntilDone(1000)
	if len(b.writes) != 1 || b.writes[0] != 5 {
		t.Fatalf("expected dirty writeback of 5, got %v", b.writes)
	}
}

func TestLRUKeepsHotLines(t *testing.T) {
	eng, _, c := newLLC(64*4, 4)
	for addr := uint64(0); addr < 4; addr++ {
		c.Read(addr*uint64(c.Sets()), func(sim.Time) {})
	}
	eng.RunUntilDone(1000)
	hot := uint64(0)
	c.Read(hot, func(sim.Time) {}) // refresh
	eng.RunUntilDone(100)
	c.Read(9*uint64(c.Sets()), func(sim.Time) {}) // evicts someone else
	eng.RunUntilDone(1000)
	hits := c.Stats.Hits.Value()
	c.Read(hot, func(sim.Time) {})
	eng.RunUntilDone(1000)
	if c.Stats.Hits.Value() != hits+1 {
		t.Fatal("hot line was evicted")
	}
}

func TestOutstandingMissesDrain(t *testing.T) {
	eng, _, c := newLLC(8<<10, 8)
	for addr := uint64(0); addr < 10; addr++ {
		c.Read(addr, func(sim.Time) {})
	}
	if c.OutstandingMisses() != 10 {
		t.Fatalf("outstanding = %d, want 10", c.OutstandingMisses())
	}
	eng.RunUntilDone(10000)
	if c.OutstandingMisses() != 0 {
		t.Fatal("misses did not drain")
	}
}

func TestHighMissRateOnHugeFootprint(t *testing.T) {
	eng, _, c := newLLC(8<<10, 8) // 128 lines
	for addr := uint64(0); addr < 10000; addr++ {
		c.Read(addr, func(sim.Time) {})
		eng.RunUntilDone(1000)
	}
	if hr := c.Stats.HitRate(); hr > 0.05 {
		t.Fatalf("hit rate = %v on streaming footprint, want ~0", hr)
	}
}

func TestNewPanicsOnZeroWays(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	eng := sim.NewEngine()
	New(eng, &fakeBackend{eng: eng}, 1024, 0, 20)
}

func TestPrefillWarmsWithoutTraffic(t *testing.T) {
	eng, b, c := newLLC(8<<10, 8)
	for addr := uint64(0); addr < 64; addr++ {
		c.Prefill(addr, addr%3 == 0)
	}
	if len(b.reads) != 0 || len(b.writes) != 0 {
		t.Fatal("prefill generated backend traffic")
	}
	if c.Stats.Accesses.Value() != 0 {
		t.Fatal("prefill must not count as accesses")
	}
	// Prefilled lines hit.
	hit := false
	c.Read(5, func(sim.Time) { hit = true })
	eng.RunUntilDone(100)
	if !hit || c.Stats.Hits.Value() != 1 {
		t.Fatal("prefilled line missed")
	}
	// Dirty prefill writes back on eviction.
	for addr := uint64(1000); addr < 1000+64; addr++ {
		c.Prefill(addr, false)
	}
	for addr := uint64(2000); addr < 2000+128; addr++ {
		c.Read(addr, func(sim.Time) {})
	}
	eng.RunUntilDone(100000)
	if len(b.writes) == 0 {
		t.Fatal("dirty prefilled lines should write back when evicted")
	}
}

func TestPrefillDirtyMergesExisting(t *testing.T) {
	_, _, c := newLLC(8<<10, 8)
	c.Prefill(7, false)
	c.Prefill(7, true) // upgrade to dirty
	c.Prefill(7, false)
	// The line must remain dirty (dirty bits never silently clear).
	set := c.set(7)
	for i := range set {
		if set[i].valid && set[i].tag == 7 && !set[i].dirty {
			t.Fatal("dirty bit lost on re-prefill")
		}
	}
}

func TestNextLinePrefetcher(t *testing.T) {
	eng, b, c := newLLC(64<<10, 8)
	c.EnableNextLinePrefetch(true)
	c.Read(100, func(sim.Time) {})
	eng.RunUntilDone(10000)
	if len(b.reads) != 2 {
		t.Fatalf("backend reads = %d, want 2 (demand + prefetch)", len(b.reads))
	}
	if c.Stats.Prefetches.Value() != 1 {
		t.Fatalf("prefetches = %d", c.Stats.Prefetches.Value())
	}
	// The prefetched line hits without further traffic.
	hits := c.Stats.Hits.Value()
	c.Read(101, func(sim.Time) {})
	eng.RunUntilDone(10000)
	if c.Stats.Hits.Value() != hits+1 {
		t.Fatal("prefetched line did not hit")
	}
	// 101's demand hit triggers no prefetch (hits don't prefetch here),
	// and re-reading 100 stays silent.
	reads := len(b.reads)
	c.Read(100, func(sim.Time) {})
	eng.RunUntilDone(10000)
	if len(b.reads) != reads {
		t.Fatal("resident line generated traffic")
	}
}

func TestPrefetcherOffByDefault(t *testing.T) {
	eng, b, c := newLLC(64<<10, 8)
	c.Read(100, func(sim.Time) {})
	eng.RunUntilDone(10000)
	if len(b.reads) != 1 || c.Stats.Prefetches.Value() != 0 {
		t.Fatal("prefetcher must be off by default")
	}
}

func TestPrefetchDoesNotDuplicateInflight(t *testing.T) {
	eng, b, c := newLLC(64<<10, 8)
	c.EnableNextLinePrefetch(true)
	c.Read(200, func(sim.Time) {}) // prefetches 201
	c.Read(201, func(sim.Time) {}) // must coalesce into the prefetch
	eng.RunUntilDone(10000)
	if len(b.reads) != 3 { // 200, 201(prefetch), 202(prefetch from 201's demand miss? no: 201 coalesced, not a miss fill)
		// 201's demand access coalesces; its own prefetch of 202 is not
		// issued because coalesced accesses skip the miss path... verify:
		t.Logf("reads: %v", b.reads)
	}
	seen := map[uint64]int{}
	for _, a := range b.reads {
		seen[a]++
	}
	if seen[201] != 1 {
		t.Fatalf("line 201 fetched %d times, want 1", seen[201])
	}
}
