// Package sim provides the discrete-event simulation kernel that drives the
// Attaché memory-system model.
//
// Time is measured in CPU cycles (int64). Components schedule closures at
// absolute times; the Engine executes them in (time, insertion-order) order,
// which makes every simulation fully deterministic for a given seed.
package sim

// Time is an absolute simulation time in CPU cycles.
type Time = int64

// Event is a callback scheduled to run at a specific time.
type Event func(now Time)

type scheduledEvent struct {
	at  Time
	seq uint64
	fn  Event
}

// eventQueue is a hand-rolled binary min-heap ordered by (at, seq).
// container/heap is deliberately not used: its interface methods box every
// scheduledEvent into an `any` on Push and Pop, which made the two calls
// the largest allocation sites of whole-system simulations.
type eventQueue []scheduledEvent

func (q eventQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q *eventQueue) push(ev scheduledEvent) {
	*q = append(*q, ev)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *eventQueue) pop() scheduledEvent {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = scheduledEvent{} // release the Event so the GC can collect it
	h = h[:n]
	*q = h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		child := l
		if r < n && h.less(r, l) {
			child = r
		}
		if !h.less(child, i) {
			break
		}
		h[i], h[child] = h[child], h[i]
		i = child
	}
	return top
}

// Engine is a deterministic discrete-event simulator.
//
// The zero value is not ready to use; call NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	queue  eventQueue
	nsteps uint64
}

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{queue: make(eventQueue, 0, 64)}
}

// Now reports the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Steps reports how many events have been executed so far.
func (e *Engine) Steps() uint64 { return e.nsteps }

// Scheduled reports how many events have ever been enqueued. With an
// empty queue, Scheduled() == Steps() iff every scheduled event fired
// exactly once — the event-conservation invariant the check layer
// asserts after each run.
func (e *Engine) Scheduled() uint64 { return e.seq }

// Pending reports the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule enqueues fn to run at absolute time at. Scheduling in the past
// (at < Now) is clamped to the current time: the event runs "now", after any
// events already queued for the current time.
func (e *Engine) Schedule(at Time, fn Event) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.queue.push(scheduledEvent{at: at, seq: e.seq, fn: fn})
}

// ScheduleAfter enqueues fn to run delay cycles from now.
func (e *Engine) ScheduleAfter(delay Time, fn Event) {
	e.Schedule(e.now+delay, fn)
}

// Step executes the single earliest event. It reports false when the queue
// is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.queue.pop()
	e.now = ev.at
	e.nsteps++
	ev.fn(e.now)
	return true
}

// Run executes events until the queue is empty or the clock would pass
// until (exclusive). It returns the number of events executed. Pass a
// negative until to run until the queue drains.
func (e *Engine) Run(until Time) uint64 {
	var n uint64
	for len(e.queue) > 0 {
		if until >= 0 && e.queue[0].at >= until {
			break
		}
		e.Step()
		n++
	}
	return n
}

// RunUntilDone executes events until the queue is empty, with a safety cap
// on the number of events to guard against runaway simulations. It reports
// whether the queue drained before the cap.
func (e *Engine) RunUntilDone(maxEvents uint64) bool {
	for i := uint64(0); i < maxEvents; i++ {
		if !e.Step() {
			return true
		}
	}
	return len(e.queue) == 0
}
