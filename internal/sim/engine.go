// Package sim provides the discrete-event simulation kernel that drives the
// Attaché memory-system model.
//
// Time is measured in CPU cycles (int64). Components schedule closures at
// absolute times; the Engine executes them in (time, insertion-order) order,
// which makes every simulation fully deterministic for a given seed.
package sim

import "container/heap"

// Time is an absolute simulation time in CPU cycles.
type Time = int64

// Event is a callback scheduled to run at a specific time.
type Event func(now Time)

type scheduledEvent struct {
	at  Time
	seq uint64
	fn  Event
}

type eventQueue []scheduledEvent

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(scheduledEvent)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	*q = old[:n-1]
	return ev
}

// Engine is a deterministic discrete-event simulator.
//
// The zero value is not ready to use; call NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	queue  eventQueue
	nsteps uint64
}

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.queue)
	return e
}

// Now reports the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Steps reports how many events have been executed so far.
func (e *Engine) Steps() uint64 { return e.nsteps }

// Pending reports the number of events waiting in the queue.
func (e *Engine) Pending() int { return e.queue.Len() }

// Schedule enqueues fn to run at absolute time at. Scheduling in the past
// (at < Now) is clamped to the current time: the event runs "now", after any
// events already queued for the current time.
func (e *Engine) Schedule(at Time, fn Event) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.queue, scheduledEvent{at: at, seq: e.seq, fn: fn})
}

// ScheduleAfter enqueues fn to run delay cycles from now.
func (e *Engine) ScheduleAfter(delay Time, fn Event) {
	e.Schedule(e.now+delay, fn)
}

// Step executes the single earliest event. It reports false when the queue
// is empty.
func (e *Engine) Step() bool {
	if e.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(scheduledEvent)
	e.now = ev.at
	e.nsteps++
	ev.fn(e.now)
	return true
}

// Run executes events until the queue is empty or the clock would pass
// until (exclusive). It returns the number of events executed. Pass a
// negative until to run until the queue drains.
func (e *Engine) Run(until Time) uint64 {
	var n uint64
	for e.queue.Len() > 0 {
		if until >= 0 && e.queue[0].at >= until {
			break
		}
		e.Step()
		n++
	}
	return n
}

// RunUntilDone executes events until the queue is empty, with a safety cap
// on the number of events to guard against runaway simulations. It reports
// whether the queue drained before the cap.
func (e *Engine) RunUntilDone(maxEvents uint64) bool {
	for i := uint64(0); i < maxEvents; i++ {
		if !e.Step() {
			return true
		}
	}
	return e.queue.Len() == 0
}
