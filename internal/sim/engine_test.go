package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func(Time) { order = append(order, 3) })
	e.Schedule(10, func(Time) { order = append(order, 1) })
	e.Schedule(20, func(Time) { order = append(order, 2) })
	e.RunUntilDone(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %d, want 30", e.Now())
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func(Time) { order = append(order, i) })
	}
	e.RunUntilDone(100)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineScheduleInPastClamps(t *testing.T) {
	e := NewEngine()
	var ranAt Time = -1
	e.Schedule(100, func(now Time) {
		e.Schedule(50, func(now Time) { ranAt = now })
	})
	e.RunUntilDone(100)
	if ranAt != 100 {
		t.Fatalf("past-scheduled event ran at %d, want clamped to 100", ranAt)
	}
}

func TestEngineScheduleAfter(t *testing.T) {
	e := NewEngine()
	var ranAt Time = -1
	e.Schedule(40, func(now Time) {
		e.ScheduleAfter(7, func(now Time) { ranAt = now })
	})
	e.RunUntilDone(100)
	if ranAt != 47 {
		t.Fatalf("ScheduleAfter ran at %d, want 47", ranAt)
	}
}

func TestEngineRunUntilExclusive(t *testing.T) {
	e := NewEngine()
	var ran []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		e.Schedule(at, func(now Time) { ran = append(ran, now) })
	}
	n := e.Run(3)
	if n != 2 {
		t.Fatalf("Run(3) executed %d events, want 2", n)
	}
	if e.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", e.Pending())
	}
}

func TestEngineCascade(t *testing.T) {
	e := NewEngine()
	count := 0
	var chain func(now Time)
	chain = func(now Time) {
		count++
		if count < 100 {
			e.ScheduleAfter(1, chain)
		}
	}
	e.Schedule(0, chain)
	if !e.RunUntilDone(1000) {
		t.Fatal("engine did not drain")
	}
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
	if e.Now() != 99 {
		t.Fatalf("clock = %d, want 99", e.Now())
	}
}

func TestEngineRunUntilDoneCap(t *testing.T) {
	e := NewEngine()
	var chain func(now Time)
	chain = func(now Time) { e.ScheduleAfter(1, chain) }
	e.Schedule(0, chain)
	if e.RunUntilDone(50) {
		t.Fatal("expected cap to trip on infinite chain")
	}
}

// Property: for any set of event times, execution order is a sorted
// permutation of the input times.
func TestEngineOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		e := NewEngine()
		var got []Time
		for _, at := range times {
			at := Time(at)
			e.Schedule(at, func(now Time) { got = append(got, now) })
		}
		e.RunUntilDone(uint64(len(times)) + 1)
		if len(got) != len(times) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i-1] > got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
