package sim

import "testing"

// BenchmarkScheduleStep measures the kernel's hot loop: schedule a batch
// of events, drain them, repeat. With the hand-rolled heap this is
// allocation-free after the queue's backing array warms up.
func BenchmarkScheduleStep(b *testing.B) {
	e := NewEngine()
	var fired int
	ev := func(Time) { fired++ }
	// Warm the queue's backing array so steady-state allocs are measured.
	for i := 0; i < 64; i++ {
		e.Schedule(Time(i), ev)
	}
	for e.Step() {
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 16; j++ {
			e.Schedule(e.Now()+Time(j%5), ev)
		}
		for e.Step() {
		}
	}
	_ = fired
}

// BenchmarkScheduleOutOfOrder stresses sift-up/sift-down with reversed
// insertion times, the worst case for the binary heap.
func BenchmarkScheduleOutOfOrder(b *testing.B) {
	e := NewEngine()
	nop := func(Time) {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		base := e.Now()
		for j := 63; j >= 0; j-- {
			e.Schedule(base+Time(j), nop)
		}
		for e.Step() {
		}
	}
}
