package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"attache/internal/cluster"
	"attache/internal/core"
	"attache/internal/shard"
	"attache/internal/snap"
	"attache/internal/tier"
)

func newTieredServer(t testing.TB) *Server {
	t.Helper()
	eng, err := shard.New(core.DefaultOptions(), shard.Config{
		Shards: 2,
		Tier:   &tier.Config{NearLines: 8, Policy: tier.PolicyLRU},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return New(eng, Config{})
}

// TestSnapshotEndpoint: GET /v1/snapshot returns a decodable snapv1
// image that the cluster restore path accepts, with the written lines
// intact; non-GET methods are refused with Allow.
func TestSnapshotEndpoint(t *testing.T) {
	srv := newTieredServer(t)
	h := srv.Handler()

	for i := 0; i < 16; i++ {
		body := fmt.Sprintf(`{"addr":%d,"data":%q}`, i, b64(testLine(byte(i))))
		if w := do(t, h, "POST", "/v1/write", body); w.Code != 200 {
			t.Fatalf("write %d: %d %s", i, w.Code, w.Body)
		}
	}

	w := do(t, h, "GET", "/v1/snapshot", "")
	if w.Code != 200 {
		t.Fatalf("GET /v1/snapshot: %d %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("content type = %q", ct)
	}
	raw := w.Body.Bytes()
	if fmt.Sprint(len(raw)) != w.Header().Get("Content-Length") {
		t.Fatalf("content length %s does not match body length %d", w.Header().Get("Content-Length"), len(raw))
	}

	// The body is a valid snapv1 snapshot the cluster layer restores.
	if _, err := snap.DecodeBytes(raw); err != nil {
		t.Fatalf("snapshot body does not decode: %v", err)
	}
	re, err := cluster.RestoreFrom(bytes.NewReader(raw), shard.Config{}, cluster.Config{})
	if err != nil {
		t.Fatalf("restore from endpoint body: %v", err)
	}
	defer re.Close()
	for i := 0; i < 16; i++ {
		got, err := re.Read(uint64(i))
		if err != nil {
			t.Fatalf("read %d after restore: %v", i, err)
		}
		if !bytes.Equal(got, testLine(byte(i))) {
			t.Fatalf("line %d diverged after restore", i)
		}
	}

	wp := do(t, h, "POST", "/v1/snapshot", "")
	if wp.Code != 405 {
		t.Fatalf("POST /v1/snapshot: %d, want 405", wp.Code)
	}
	if allow := wp.Header().Get("Allow"); allow != "GET" {
		t.Fatalf("Allow = %q, want GET", allow)
	}
}

// TestStatsTiersSection: /v1/stats?v=2 carries the merged tier section
// on a tiered server and omits it on a classic one; /metrics exposes
// the tier series.
func TestStatsTiersSection(t *testing.T) {
	tiered := newTieredServer(t)
	h := tiered.Handler()
	for i := 0; i < 16; i++ {
		body := fmt.Sprintf(`{"addr":%d,"data":%q}`, i, b64(testLine(byte(i))))
		if w := do(t, h, "POST", "/v1/write", body); w.Code != 200 {
			t.Fatalf("write %d: %d %s", i, w.Code, w.Body)
		}
		if w := do(t, h, "POST", "/v1/read", fmt.Sprintf(`{"addr":%d}`, i)); w.Code != 200 {
			t.Fatalf("read %d: %d %s", i, w.Code, w.Body)
		}
	}

	w := do(t, h, "GET", "/v1/stats?v=2", "")
	if w.Code != 200 {
		t.Fatalf("stats v2: %d %s", w.Code, w.Body)
	}
	var v2 struct {
		Engine struct {
			Tiers *tier.Snapshot `json:"tiers"`
		} `json:"engine"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &v2); err != nil {
		t.Fatalf("stats v2 unmarshal: %v", err)
	}
	if v2.Engine.Tiers == nil {
		t.Fatalf("tiered server stats v2 has no tiers section: %s", w.Body)
	}
	ts := v2.Engine.Tiers
	if ts.NearReads+ts.FarReads == 0 {
		t.Fatalf("tier section shows no reads: %+v", ts)
	}
	if ts.Promotions != ts.Demotions+ts.NearResident {
		t.Fatalf("tier section promotion balance broken: %+v", ts)
	}

	wm := do(t, h, "GET", "/metrics", "")
	if wm.Code != 200 {
		t.Fatalf("metrics: %d", wm.Code)
	}
	for _, series := range []string{
		"attached_tier_near_reads_total",
		"attached_tier_promotions_total",
		"attached_tier_near_resident",
		"attached_tier_far_link_bytes",
	} {
		if !strings.Contains(wm.Body.String(), series) {
			t.Fatalf("metrics output missing %s", series)
		}
	}

	// A classic server must not grow the section or the series.
	classic := newTestServer(t)
	wc := do(t, classic.Handler(), "GET", "/v1/stats?v=2", "")
	if strings.Contains(wc.Body.String(), `"tiers"`) {
		t.Fatalf("untiered stats v2 grew a tiers section: %s", wc.Body)
	}
	wcm := do(t, classic.Handler(), "GET", "/metrics", "")
	if strings.Contains(wcm.Body.String(), "attached_tier_") {
		t.Fatal("untiered metrics output grew tier series")
	}
}
