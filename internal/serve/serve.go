// Package serve is the HTTP face of the engine cluster: the cmd/attached
// daemon is a thin wrapper around Server. Endpoints:
//
//	POST /v1/read    {"addr":42}                     -> {"addr":42,"data":"<base64 64B>"}
//	POST /v1/write   {"addr":42,"data":"<base64>"}   -> {"addr":42,"ok":true}
//	POST /v1/batch   ops as a JSON array, or one JSON object per line     -> per-op results
//	GET  /v1/stats   versioned stats: schema v2 by default (nested engine/
//	                 robust/telemetry/cluster/tenants sections), the
//	                 deprecated v1 flat shape via ?v=1
//	GET  /v1/trace/{id}  one traced request's pipeline timeline (Config.Obs)
//	GET  /v1/trace   the most recent retained timelines
//	GET  /v1/snapshot  the cluster's full snapv1 state image
//	                 (octet-stream); restore it with attached -restore
//	GET  /healthz    liveness ("ok", or 503 once draining)
//	GET  /metrics    Prometheus text exposition
//	GET  /debug/pprof/*  runtime profiles (Config.EnablePprof)
//
// The server fronts a cluster.Cluster — one or many engines behind a
// router. New wraps a single engine in a passthrough cluster (the
// bit-identical 1-instance configuration); NewCluster serves a real
// one. Data requests carrying an X-Attache-Tenant header run under that
// tenant: the cluster applies its admission quota (over-quota batches
// answer 429 like any shed) and books the ops to its SLO class.
//
// With Config.Obs set, the /v1 data endpoints are traced: a request
// carrying an X-Attache-Trace header is always traced under that ID
// (the header is echoed back), others are sampled at the observer's
// rate, and every traced request's engine pipeline timeline is
// retrievable from /v1/trace/{id}. The observer's slog logger receives
// access logs (Debug for 2xx, Info for 4xx, Warn for 5xx) and periodic
// per-shard queue gauges.
//
// With Config.Record set, every op batch the data endpoints offer to
// the engine is captured — in submission order, shed or not — through a
// Recorder (canonically workload.TraceWriter, the tracev1 NDJSON
// format), so one recorded session becomes a deterministic replay
// workload: attached -record capture.ndjson, then
// attacheload -replay capture.ndjson.
//
// Failures map to status codes by sentinel: ErrNeverWritten -> 404,
// ErrBadLineSize / ErrOutOfRange -> 400, ErrOverloaded -> 429 (with a
// Retry-After hint), context.DeadlineExceeded -> 504, ErrClosed -> 503.
// Batch requests isolate failures per op and always answer 200 with
// per-op errors inline ("partial failure" semantics).
//
// Every handler submits through the engine's context-aware ops with the
// request's context, so a client disconnect or deadline cancels queued
// work, and a saturated shard queue sheds the request instead of
// stalling the daemon — /healthz stays green under overload.
package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"attache/internal/cluster"
	"attache/internal/core"
	"attache/internal/obs"
	"attache/internal/shard"
)

// Config holds the daemon-level knobs: where to listen, HTTP timeouts,
// request-size ceilings, and how long a drain may take.
type Config struct {
	// Addr is the listen address, e.g. ":8080" or "127.0.0.1:0".
	Addr string
	// ReadTimeout / WriteTimeout bound one HTTP exchange; zero means the
	// stdlib default (no timeout).
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// IdleTimeout bounds keep-alive connections.
	IdleTimeout time.Duration
	// ShutdownTimeout bounds request draining once shutdown starts.
	// 0 defaults to 10s.
	ShutdownTimeout time.Duration
	// MaxBatchOps caps ops per /v1/batch request. 0 defaults to 4096.
	MaxBatchOps int
	// MaxBodyBytes caps a request body. 0 defaults to 8 MiB.
	MaxBodyBytes int64
	// RetryAfter is the backoff hint sent with 429 responses when the
	// engine sheds load. 0 defaults to 1s.
	RetryAfter time.Duration
	// Obs enables the observability layer: request tracing with
	// X-Attache-Trace propagation, the /v1/trace endpoints, slog access
	// logs, and periodic queue gauges. nil disables all of it.
	Obs *obs.Observer
	// Record, when non-nil, captures every op batch the data endpoints
	// offer to the engine — reads, writes, and batches, in submission
	// order, before admission — so real daemon traffic can be replayed
	// later as a regression workload (attacheload -replay). The daemon
	// wires a workload.TraceWriter here (-record); anything with the
	// same method works. Ops that are shed or fail are still recorded:
	// a capture is the offered load, not the accepted load.
	Record Recorder
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default; cmd/attached turns it on unless -pprof=false.
	EnablePprof bool
	// GaugeInterval paces the queue-gauge poller when Obs is set.
	// 0 defaults to 10s.
	GaugeInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.ShutdownTimeout == 0 {
		c.ShutdownTimeout = 10 * time.Second
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBatchOps == 0 {
		c.MaxBatchOps = 4096
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c
}

// Recorder receives every op batch offered to the engine by the /v1
// data endpoints, in submission order. Implementations must be safe for
// concurrent use and must copy what they keep: the ops (and their
// payloads) are borrowed from the request. workload.TraceWriter is the
// canonical implementation (the tracev1 NDJSON capture format).
type Recorder interface {
	RecordOps(ops []shard.Op)
}

// Server serves a cluster.Cluster (possibly a 1-instance passthrough
// around a single engine) over HTTP.
type Server struct {
	cl       *cluster.Cluster
	cfg      Config
	mux      *http.ServeMux
	metrics  *metricsSet
	started  time.Time
	draining atomic.Bool

	readyCh chan struct{}
	addr    atomic.Value // string, set once listening
}

// New wires a server around a single engine by wrapping it in a
// 1-instance passthrough cluster — request-for-request identical to
// serving the engine directly. Call ListenAndServe to run it, or test
// against Handler directly.
func New(eng *shard.Engine, cfg Config) *Server {
	cl, err := cluster.Wrap([]*shard.Engine{eng}, cluster.Config{})
	if err != nil {
		// Unreachable: a 1-engine passthrough wrap cannot fail.
		panic(err)
	}
	return NewCluster(cl, cfg)
}

// NewCluster wires a server around an existing cluster. The server takes
// ownership: ListenAndServe closes the cluster (and its engines) on
// drain.
func NewCluster(cl *cluster.Cluster, cfg Config) *Server {
	s := &Server{
		cl:      cl,
		cfg:     cfg.withDefaults(),
		mux:     http.NewServeMux(),
		started: time.Now(),
		readyCh: make(chan struct{}),
	}
	s.metrics = newMetricsSet("/v1/read", "/v1/write", "/v1/batch", "/v1/stats", "/v1/trace", "/v1/snapshot", "/healthz", "/metrics")
	// The three data endpoints go through the engine pipeline, so they
	// are the traced ones; the introspection endpoints are not.
	s.mux.HandleFunc("/v1/read", s.instrument("/v1/read", true, post(s.handleRead)))
	s.mux.HandleFunc("/v1/write", s.instrument("/v1/write", true, post(s.handleWrite)))
	s.mux.HandleFunc("/v1/batch", s.instrument("/v1/batch", true, post(s.handleBatch)))
	s.mux.HandleFunc("/v1/stats", s.instrument("/v1/stats", false, s.handleStats))
	s.mux.HandleFunc("/v1/trace/", s.instrument("/v1/trace", false, s.handleTrace))
	s.mux.HandleFunc("/v1/trace", s.instrument("/v1/trace", false, s.handleTrace))
	s.mux.HandleFunc("/v1/snapshot", s.instrument("/v1/snapshot", false, s.handleSnapshot))
	s.mux.HandleFunc("/healthz", s.instrument("/healthz", false, s.handleHealthz))
	s.mux.HandleFunc("/metrics", s.instrument("/metrics", false, s.handleMetrics))
	if s.cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Handler exposes the routed endpoints, for tests and embedding.
func (s *Server) Handler() http.Handler { return s.mux }

// Ready is closed once the listener is bound; Addr is valid after that.
func (s *Server) Ready() <-chan struct{} { return s.readyCh }

// Addr reports the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if v := s.addr.Load(); v != nil {
		return v.(string)
	}
	return s.cfg.Addr
}

// ListenAndServe runs the server until ctx is cancelled (the daemon
// cancels on SIGTERM/SIGINT), then drains: stop accepting, finish
// in-flight requests within ShutdownTimeout, and close the engine so
// every queued op completes. Returns nil on a clean drain.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.addr.Store(ln.Addr().String())
	close(s.readyCh)

	srv := &http.Server{
		Handler:      s.mux,
		ReadTimeout:  s.cfg.ReadTimeout,
		WriteTimeout: s.cfg.WriteTimeout,
		IdleTimeout:  s.cfg.IdleTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	if s.cfg.Obs != nil {
		// Periodic queue-depth/in-flight gauges; the poller exits with ctx
		// when the drain starts.
		go s.cfg.Obs.PollGauges(ctx, s.cfg.GaugeInterval, s.cl.Gauges)
	}

	select {
	case err := <-errc:
		s.cl.Close()
		return err
	case <-ctx.Done():
	}

	s.draining.Store(true)
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownTimeout)
	defer cancel()
	err = srv.Shutdown(dctx) // drains in-flight requests
	if cerr := s.cl.Close(); cerr != nil && !errors.Is(cerr, shard.ErrClosed) && err == nil {
		err = cerr
	}
	<-errc // Serve has returned http.ErrServerClosed
	return err
}

// --- request/response bodies ---------------------------------------------

type readReq struct {
	Addr *uint64 `json:"addr"`
}

type writeReq struct {
	Addr *uint64 `json:"addr"`
	Data []byte  `json:"data"` // base64 in JSON
}

type lineResp struct {
	Addr uint64 `json:"addr"`
	Data []byte `json:"data,omitempty"`
	OK   bool   `json:"ok,omitempty"`
}

type errResp struct {
	Error string `json:"error"`
}

// batchOp is one line of a /v1/batch request.
type batchOp struct {
	Op   string  `json:"op"` // "read" or "write"
	Addr *uint64 `json:"addr"`
	Data []byte  `json:"data,omitempty"`
}

// batchOpResult reports one op's outcome; exactly one of Data/OK/Error
// is meaningful.
type batchOpResult struct {
	Addr  uint64 `json:"addr"`
	Data  []byte `json:"data,omitempty"`
	OK    bool   `json:"ok,omitempty"`
	Error string `json:"error,omitempty"`
}

type batchResp struct {
	Results []batchOpResult `json:"results"`
	Failed  int             `json:"failed"`
}

// --- plumbing -------------------------------------------------------------

// statusWriter remembers the status code for the metrics layer.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with metrics, and — when an observer is
// configured — tracing (for pipeline endpoints) and slog access logs.
// An X-Attache-Trace request header forces tracing under that ID (an
// unparseable one gets a fresh ID); otherwise the sampler decides. The
// assigned ID is echoed in the response header, and the finished trace
// lands in the observer's ring for /v1/trace/{id}.
func (s *Server) instrument(endpoint string, traced bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		if t := r.Header.Get(obs.TenantHeader); t != "" && traced {
			// Data endpoints run under the request's tenant: the cluster
			// keys admission, SLO class, and per-tenant stats off it.
			r = r.WithContext(obs.ContextWithTenant(r.Context(), t))
		}
		var tr *obs.Trace
		if o := s.cfg.Obs; o != nil && traced {
			if hdr := r.Header.Get(obs.TraceHeader); hdr != "" {
				id, err := obs.ParseTraceID(hdr)
				if err != nil {
					id = 0 // bad ID: still trace, under a fresh one
				}
				tr = o.StartTrace(id)
			} else if o.Sampled() {
				tr = o.StartTrace(0)
			}
			if tr != nil {
				sw.Header().Set(obs.TraceHeader, tr.ID().String())
				r = r.WithContext(obs.ContextWithTrace(r.Context(), tr))
			}
		}
		h(sw, r)
		d := time.Since(start)
		s.metrics.observe(endpoint, sw.code, d)
		if o := s.cfg.Obs; o != nil {
			if tr != nil {
				o.Finish(tr)
			}
			s.accessLog(r, endpoint, sw.code, d, tr)
		}
	}
}

// accessLog emits one structured log line per request: Debug for
// successes (high-volume), Info for client errors, Warn for server
// errors — so a production log level of Info surfaces only trouble.
func (s *Server) accessLog(r *http.Request, endpoint string, code int, d time.Duration, tr *obs.Trace) {
	level := slog.LevelDebug
	switch {
	case code >= 500:
		level = slog.LevelWarn
	case code >= 400:
		level = slog.LevelInfo
	}
	attrs := []slog.Attr{
		slog.String("method", r.Method),
		slog.String("path", endpoint),
		slog.Int("code", code),
		slog.Duration("dur", d),
		slog.String("remote", r.RemoteAddr),
	}
	if tr != nil {
		attrs = append(attrs, slog.String("trace_id", tr.ID().String()))
	}
	s.cfg.Obs.Logger().LogAttrs(r.Context(), level, "http", attrs...)
}

func post(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeJSON(w, http.StatusMethodNotAllowed, errResp{Error: "use POST"})
			return
		}
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// statusClientClosedRequest is nginx's conventional code for a request
// whose client went away before the response: there is no standard
// status, but the metrics layer needs the taxonomy.
const statusClientClosedRequest = 499

// statusFor maps engine errors to HTTP statuses via the typed sentinels.
func statusFor(err error) int {
	switch {
	case errors.Is(err, core.ErrNeverWritten):
		return http.StatusNotFound
	case errors.Is(err, core.ErrBadLineSize), errors.Is(err, core.ErrOutOfRange):
		return http.StatusBadRequest
	case errors.Is(err, core.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	case errors.Is(err, shard.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) writeErr(w http.ResponseWriter, err error) {
	code := statusFor(err)
	if code == http.StatusTooManyRequests {
		secs := int((s.cfg.RetryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, code, errResp{Error: err.Error()})
}

func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errResp{Error: "bad JSON: " + err.Error()})
		return false
	}
	return true
}

// --- handlers -------------------------------------------------------------

func (s *Server) handleRead(w http.ResponseWriter, r *http.Request) {
	var req readReq
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Addr == nil {
		writeJSON(w, http.StatusBadRequest, errResp{Error: "missing addr"})
		return
	}
	if s.cfg.Record != nil {
		s.cfg.Record.RecordOps([]shard.Op{{Addr: *req.Addr}})
	}
	data, err := s.cl.ReadCtx(r.Context(), *req.Addr)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, lineResp{Addr: *req.Addr, Data: data})
}

func (s *Server) handleWrite(w http.ResponseWriter, r *http.Request) {
	var req writeReq
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Addr == nil {
		writeJSON(w, http.StatusBadRequest, errResp{Error: "missing addr"})
		return
	}
	if s.cfg.Record != nil {
		s.cfg.Record.RecordOps([]shard.Op{{Write: true, Addr: *req.Addr, Data: req.Data}})
	}
	if err := s.cl.WriteCtx(r.Context(), *req.Addr, req.Data); err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, lineResp{Addr: *req.Addr, OK: true})
}

// decodeBatch accepts either a single JSON array of ops or a stream of
// JSON objects (one per line — NDJSON — or whitespace-separated).
func (s *Server) decodeBatch(w http.ResponseWriter, r *http.Request) ([]batchOp, bool) {
	br := bufio.NewReader(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	first, err := firstNonSpace(br)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errResp{Error: "empty batch body"})
		return nil, false
	}
	dec := json.NewDecoder(br)
	var ops []batchOp
	if first == '[' {
		if err := dec.Decode(&ops); err != nil {
			writeJSON(w, http.StatusBadRequest, errResp{Error: "bad JSON: " + err.Error()})
			return nil, false
		}
	} else {
		for {
			var op batchOp
			if err := dec.Decode(&op); err == io.EOF {
				break
			} else if err != nil {
				writeJSON(w, http.StatusBadRequest, errResp{Error: "bad JSON: " + err.Error()})
				return nil, false
			}
			ops = append(ops, op)
			if len(ops) > s.cfg.MaxBatchOps {
				break
			}
		}
	}
	if len(ops) > s.cfg.MaxBatchOps {
		writeJSON(w, http.StatusBadRequest,
			errResp{Error: fmt.Sprintf("batch of %d ops exceeds limit %d", len(ops), s.cfg.MaxBatchOps)})
		return nil, false
	}
	return ops, true
}

// firstNonSpace peeks past leading JSON whitespace without consuming it.
func firstNonSpace(br *bufio.Reader) (byte, error) {
	for {
		b, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		switch b {
		case ' ', '\t', '\n', '\r':
			continue
		}
		return b, br.UnreadByte()
	}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	reqOps, ok := s.decodeBatch(w, r)
	if !ok {
		return
	}
	results := make([]batchOpResult, len(reqOps))
	ops := make([]shard.Op, 0, len(reqOps))
	opIdx := make([]int, 0, len(reqOps)) // results index of ops[k]
	for i, op := range reqOps {
		if op.Addr == nil {
			results[i].Error = "missing addr"
			continue
		}
		results[i].Addr = *op.Addr
		switch op.Op {
		case "read":
			ops = append(ops, shard.Op{Addr: *op.Addr})
			opIdx = append(opIdx, i)
		case "write":
			ops = append(ops, shard.Op{Write: true, Addr: *op.Addr, Data: op.Data})
			opIdx = append(opIdx, i)
		default:
			results[i].Error = fmt.Sprintf("unknown op %q (want read or write)", op.Op)
		}
	}
	if s.cfg.Record != nil && len(ops) > 0 {
		s.cfg.Record.RecordOps(ops)
	}
	res, err := s.cl.DoCtx(r.Context(), ops)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	failed := 0
	for k, rr := range res {
		i := opIdx[k]
		switch {
		case rr.Err != nil:
			results[i].Error = rr.Err.Error()
		case reqOps[i].Op == "read":
			results[i].Data = rr.Data
		default:
			results[i].OK = true
		}
	}
	for _, r := range results {
		if r.Error != "" {
			failed++
		}
	}
	writeJSON(w, http.StatusOK, batchResp{Results: results, Failed: failed})
}

// handleStats serves the versioned stats document: schema v2 by default,
// the deprecated v1 flat shape via ?v=1 (kept for one release; see
// README). ?decisions=N additionally inlines the N most recent routing
// decisions into the v2 cluster section.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	switch v := r.URL.Query().Get("v"); v {
	case "", "2":
		n := 0
		if d := r.URL.Query().Get("decisions"); d != "" {
			n, _ = strconv.Atoi(d)
		}
		writeJSON(w, http.StatusOK, s.statsV2(n))
	case "1":
		writeJSON(w, http.StatusOK, s.statsV1())
	default:
		writeJSON(w, http.StatusBadRequest,
			errResp{Error: fmt.Sprintf("unknown stats schema version %q (want 1 or 2)", v)})
	}
}

// handleTrace serves one traced request's timeline by ID
// (/v1/trace/{id}), or the most recent retained timelines when no ID is
// given (/v1/trace).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Obs == nil {
		writeJSON(w, http.StatusNotFound, errResp{Error: "tracing disabled: run with an observer (-trace-sample)"})
		return
	}
	idStr := strings.TrimPrefix(strings.TrimPrefix(r.URL.Path, "/v1/trace"), "/")
	if idStr == "" {
		writeJSON(w, http.StatusOK, struct {
			Traces []obs.Timeline `json:"traces"`
		}{s.cfg.Obs.Recent(32)})
		return
	}
	id, err := obs.ParseTraceID(idStr)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errResp{Error: err.Error()})
		return
	}
	tl, ok := s.cfg.Obs.Timeline(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errResp{Error: fmt.Sprintf("trace %s not retained (ring holds the most recent traces only)", id)})
		return
	}
	writeJSON(w, http.StatusOK, tl)
}

// handleSnapshot streams the cluster's snapv1 state image. Taking it
// quiesces every shard for the duration (each instance's cut is
// internally consistent), so this is an admin endpoint, not a data-path
// one — on a loaded cluster prefer -snapshot-on-drain. The bytes are
// buffered before the first write so an export failure still maps to a
// clean 500 instead of a torn body.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, errResp{Error: "use GET"})
		return
	}
	var buf bytes.Buffer
	if err := s.cl.WriteSnapshot(&buf); err != nil {
		writeJSON(w, http.StatusInternalServerError, errResp{Error: "snapshot: " + err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.Header().Set("Content-Disposition", `attachment; filename="attache.snap"`)
	w.Write(buf.Bytes())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, s.renderMetrics())
}
