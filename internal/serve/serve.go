// Package serve is the HTTP face of the sharded engine: the cmd/attached
// daemon is a thin wrapper around Server. Endpoints:
//
//	POST /v1/read    {"addr":42}                     -> {"addr":42,"data":"<base64 64B>"}
//	POST /v1/write   {"addr":42,"data":"<base64>"}   -> {"addr":42,"ok":true}
//	POST /v1/batch   ops as a JSON array, or one JSON object per line     -> per-op results
//	GET  /v1/stats   engine snapshot (totals + per shard) as JSON
//	GET  /healthz    liveness ("ok", or 503 once draining)
//	GET  /metrics    Prometheus text exposition
//
// Failures map to status codes by sentinel: ErrNeverWritten -> 404,
// ErrBadLineSize / ErrOutOfRange -> 400, ErrOverloaded -> 429 (with a
// Retry-After hint), context.DeadlineExceeded -> 504, ErrClosed -> 503.
// Batch requests isolate failures per op and always answer 200 with
// per-op errors inline ("partial failure" semantics).
//
// Every handler submits through the engine's context-aware ops with the
// request's context, so a client disconnect or deadline cancels queued
// work, and a saturated shard queue sheds the request instead of
// stalling the daemon — /healthz stays green under overload.
package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"attache/internal/core"
	"attache/internal/shard"
)

// Config holds the daemon-level knobs: where to listen, HTTP timeouts,
// request-size ceilings, and how long a drain may take.
type Config struct {
	// Addr is the listen address, e.g. ":8080" or "127.0.0.1:0".
	Addr string
	// ReadTimeout / WriteTimeout bound one HTTP exchange; zero means the
	// stdlib default (no timeout).
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// IdleTimeout bounds keep-alive connections.
	IdleTimeout time.Duration
	// ShutdownTimeout bounds request draining once shutdown starts.
	// 0 defaults to 10s.
	ShutdownTimeout time.Duration
	// MaxBatchOps caps ops per /v1/batch request. 0 defaults to 4096.
	MaxBatchOps int
	// MaxBodyBytes caps a request body. 0 defaults to 8 MiB.
	MaxBodyBytes int64
	// RetryAfter is the backoff hint sent with 429 responses when the
	// engine sheds load. 0 defaults to 1s.
	RetryAfter time.Duration
}

func (c Config) withDefaults() Config {
	if c.ShutdownTimeout == 0 {
		c.ShutdownTimeout = 10 * time.Second
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBatchOps == 0 {
		c.MaxBatchOps = 4096
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c
}

// Server serves one shard.Engine over HTTP.
type Server struct {
	eng      *shard.Engine
	cfg      Config
	mux      *http.ServeMux
	metrics  *metricsSet
	started  time.Time
	draining atomic.Bool

	readyCh chan struct{}
	addr    atomic.Value // string, set once listening
}

// New wires a server around eng. Call ListenAndServe to run it, or test
// against Handler directly.
func New(eng *shard.Engine, cfg Config) *Server {
	s := &Server{
		eng:     eng,
		cfg:     cfg.withDefaults(),
		mux:     http.NewServeMux(),
		started: time.Now(),
		readyCh: make(chan struct{}),
	}
	s.metrics = newMetricsSet("/v1/read", "/v1/write", "/v1/batch", "/v1/stats", "/healthz", "/metrics")
	s.mux.HandleFunc("/v1/read", s.instrument("/v1/read", post(s.handleRead)))
	s.mux.HandleFunc("/v1/write", s.instrument("/v1/write", post(s.handleWrite)))
	s.mux.HandleFunc("/v1/batch", s.instrument("/v1/batch", post(s.handleBatch)))
	s.mux.HandleFunc("/v1/stats", s.instrument("/v1/stats", s.handleStats))
	s.mux.HandleFunc("/healthz", s.instrument("/healthz", s.handleHealthz))
	s.mux.HandleFunc("/metrics", s.instrument("/metrics", s.handleMetrics))
	return s
}

// Handler exposes the routed endpoints, for tests and embedding.
func (s *Server) Handler() http.Handler { return s.mux }

// Ready is closed once the listener is bound; Addr is valid after that.
func (s *Server) Ready() <-chan struct{} { return s.readyCh }

// Addr reports the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if v := s.addr.Load(); v != nil {
		return v.(string)
	}
	return s.cfg.Addr
}

// ListenAndServe runs the server until ctx is cancelled (the daemon
// cancels on SIGTERM/SIGINT), then drains: stop accepting, finish
// in-flight requests within ShutdownTimeout, and close the engine so
// every queued op completes. Returns nil on a clean drain.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.addr.Store(ln.Addr().String())
	close(s.readyCh)

	srv := &http.Server{
		Handler:      s.mux,
		ReadTimeout:  s.cfg.ReadTimeout,
		WriteTimeout: s.cfg.WriteTimeout,
		IdleTimeout:  s.cfg.IdleTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		s.eng.Close()
		return err
	case <-ctx.Done():
	}

	s.draining.Store(true)
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownTimeout)
	defer cancel()
	err = srv.Shutdown(dctx) // drains in-flight requests
	if cerr := s.eng.Close(); cerr != nil && !errors.Is(cerr, shard.ErrClosed) && err == nil {
		err = cerr
	}
	<-errc // Serve has returned http.ErrServerClosed
	return err
}

// --- request/response bodies ---------------------------------------------

type readReq struct {
	Addr *uint64 `json:"addr"`
}

type writeReq struct {
	Addr *uint64 `json:"addr"`
	Data []byte  `json:"data"` // base64 in JSON
}

type lineResp struct {
	Addr uint64 `json:"addr"`
	Data []byte `json:"data,omitempty"`
	OK   bool   `json:"ok,omitempty"`
}

type errResp struct {
	Error string `json:"error"`
}

// batchOp is one line of a /v1/batch request.
type batchOp struct {
	Op   string  `json:"op"` // "read" or "write"
	Addr *uint64 `json:"addr"`
	Data []byte  `json:"data,omitempty"`
}

// batchOpResult reports one op's outcome; exactly one of Data/OK/Error
// is meaningful.
type batchOpResult struct {
	Addr  uint64 `json:"addr"`
	Data  []byte `json:"data,omitempty"`
	OK    bool   `json:"ok,omitempty"`
	Error string `json:"error,omitempty"`
}

type batchResp struct {
	Results []batchOpResult `json:"results"`
	Failed  int             `json:"failed"`
}

// --- plumbing -------------------------------------------------------------

// statusWriter remembers the status code for the metrics layer.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		s.metrics.observe(endpoint, sw.code, time.Since(start))
	}
}

func post(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeJSON(w, http.StatusMethodNotAllowed, errResp{Error: "use POST"})
			return
		}
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// statusClientClosedRequest is nginx's conventional code for a request
// whose client went away before the response: there is no standard
// status, but the metrics layer needs the taxonomy.
const statusClientClosedRequest = 499

// statusFor maps engine errors to HTTP statuses via the typed sentinels.
func statusFor(err error) int {
	switch {
	case errors.Is(err, core.ErrNeverWritten):
		return http.StatusNotFound
	case errors.Is(err, core.ErrBadLineSize), errors.Is(err, core.ErrOutOfRange):
		return http.StatusBadRequest
	case errors.Is(err, core.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	case errors.Is(err, shard.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) writeErr(w http.ResponseWriter, err error) {
	code := statusFor(err)
	if code == http.StatusTooManyRequests {
		secs := int((s.cfg.RetryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, code, errResp{Error: err.Error()})
}

func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errResp{Error: "bad JSON: " + err.Error()})
		return false
	}
	return true
}

// --- handlers -------------------------------------------------------------

func (s *Server) handleRead(w http.ResponseWriter, r *http.Request) {
	var req readReq
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Addr == nil {
		writeJSON(w, http.StatusBadRequest, errResp{Error: "missing addr"})
		return
	}
	data, err := s.eng.ReadCtx(r.Context(), *req.Addr)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, lineResp{Addr: *req.Addr, Data: data})
}

func (s *Server) handleWrite(w http.ResponseWriter, r *http.Request) {
	var req writeReq
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Addr == nil {
		writeJSON(w, http.StatusBadRequest, errResp{Error: "missing addr"})
		return
	}
	if err := s.eng.WriteCtx(r.Context(), *req.Addr, req.Data); err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, lineResp{Addr: *req.Addr, OK: true})
}

// decodeBatch accepts either a single JSON array of ops or a stream of
// JSON objects (one per line — NDJSON — or whitespace-separated).
func (s *Server) decodeBatch(w http.ResponseWriter, r *http.Request) ([]batchOp, bool) {
	br := bufio.NewReader(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	first, err := firstNonSpace(br)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errResp{Error: "empty batch body"})
		return nil, false
	}
	dec := json.NewDecoder(br)
	var ops []batchOp
	if first == '[' {
		if err := dec.Decode(&ops); err != nil {
			writeJSON(w, http.StatusBadRequest, errResp{Error: "bad JSON: " + err.Error()})
			return nil, false
		}
	} else {
		for {
			var op batchOp
			if err := dec.Decode(&op); err == io.EOF {
				break
			} else if err != nil {
				writeJSON(w, http.StatusBadRequest, errResp{Error: "bad JSON: " + err.Error()})
				return nil, false
			}
			ops = append(ops, op)
			if len(ops) > s.cfg.MaxBatchOps {
				break
			}
		}
	}
	if len(ops) > s.cfg.MaxBatchOps {
		writeJSON(w, http.StatusBadRequest,
			errResp{Error: fmt.Sprintf("batch of %d ops exceeds limit %d", len(ops), s.cfg.MaxBatchOps)})
		return nil, false
	}
	return ops, true
}

// firstNonSpace peeks past leading JSON whitespace without consuming it.
func firstNonSpace(br *bufio.Reader) (byte, error) {
	for {
		b, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		switch b {
		case ' ', '\t', '\n', '\r':
			continue
		}
		return b, br.UnreadByte()
	}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	reqOps, ok := s.decodeBatch(w, r)
	if !ok {
		return
	}
	results := make([]batchOpResult, len(reqOps))
	ops := make([]shard.Op, 0, len(reqOps))
	opIdx := make([]int, 0, len(reqOps)) // results index of ops[k]
	for i, op := range reqOps {
		if op.Addr == nil {
			results[i].Error = "missing addr"
			continue
		}
		results[i].Addr = *op.Addr
		switch op.Op {
		case "read":
			ops = append(ops, shard.Op{Addr: *op.Addr})
			opIdx = append(opIdx, i)
		case "write":
			ops = append(ops, shard.Op{Write: true, Addr: *op.Addr, Data: op.Data})
			opIdx = append(opIdx, i)
		default:
			results[i].Error = fmt.Sprintf("unknown op %q (want read or write)", op.Op)
		}
	}
	res, err := s.eng.DoCtx(r.Context(), ops)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	failed := 0
	for k, rr := range res {
		i := opIdx[k]
		switch {
		case rr.Err != nil:
			results[i].Error = rr.Err.Error()
		case reqOps[i].Op == "read":
			results[i].Data = rr.Data
		default:
			results[i].OK = true
		}
	}
	for _, r := range results {
		if r.Error != "" {
			failed++
		}
	}
	writeJSON(w, http.StatusOK, batchResp{Results: results, Failed: failed})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.eng.StatsSnapshot()
	writeJSON(w, http.StatusOK, struct {
		shard.Snapshot
		Shards        int     `json:"shards"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}{snap, s.eng.Shards(), time.Since(s.started).Seconds()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, s.renderMetrics())
}
