package serve

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"attache/internal/core"
	"attache/internal/shard"
)

// FuzzBatchParser throws arbitrary bytes at the /v1/batch decoder — both
// the JSON-array and NDJSON forms route through it. The contract: never
// panic, never hang, and answer either 200 (parsed, per-op outcomes) or
// 400 (rejected), no matter how malformed, huge, or truncated the body.
func FuzzBatchParser(f *testing.F) {
	eng, err := shard.New(core.DefaultOptions(), shard.Config{Shards: 1, MaxLines: 1 << 20})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { eng.Close() })
	// Small ceilings so the fuzzer can reach the cap paths cheaply.
	srv := New(eng, Config{MaxBatchOps: 16, MaxBodyBytes: 1 << 14})
	h := srv.Handler()

	line := b64(testLine(7))
	for _, seed := range []string{
		"",                         // empty body
		"[",                        // truncated array
		"[]",                       // empty array
		`[{"op":"read","addr":1}]`, // minimal valid array
		`{"op":"read","addr":1}`,   // single NDJSON object
		`{"op":"write","addr":2,"data":"` + line + `"}` + "\n" + `{"op":"read","addr":2}`,
		`{"op":"read","addr":1}` + "\n" + `{"op"`,                                       // truncated second frame
		`[{"op":"read","addr":1},{"op":"read"`,                                          // truncated mid-array
		`{"op":"frobnicate","addr":1}`,                                                  // unknown op
		`{"op":"read","addr":-1}`,                                                       // negative addr
		`{"op":"read","addr":18446744073709551615}`,                                     // max uint64
		`{"op":"write","addr":1,"data":"!!!"}`,                                          // invalid base64
		`[` + strings.Repeat(`{"op":"read","addr":1},`, 17) + `{"op":"read","addr":1}]`, // over MaxBatchOps
		strings.Repeat(`{"op":"read","addr":1}`+"\n", 64),                               // NDJSON over MaxBatchOps
		`{"op":"write","addr":1,"data":"` + strings.Repeat("A", 1<<15) + `"}`,           // huge line, over MaxBodyBytes
		"\x00\x01\x02",             // binary junk
		`[[[[[[[[[[[[`,             // nesting
		`   [ {"op" : "read" } ] `, // leading whitespace
	} {
		f.Add([]byte(seed))
	}

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest("POST", "/v1/batch", bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req) // any panic fails the fuzz run
		if w.Code != 200 && w.Code != 400 {
			t.Fatalf("batch parser answered %d (want 200 or 400) for %q", w.Code, body)
		}
	})
}
