package serve

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"attache/internal/core"
	"attache/internal/shard"
)

func testLine(fill byte) []byte {
	line := make([]byte, core.LineSize)
	for i := range line {
		line[i] = fill
	}
	return line
}

func b64(p []byte) string { return base64.StdEncoding.EncodeToString(p) }

func newTestServer(t testing.TB) *Server {
	t.Helper()
	eng, err := shard.New(core.DefaultOptions(), shard.Config{Shards: 2, MaxLines: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return New(eng, Config{})
}

func do(t testing.TB, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// TestHandlers is the table-driven pass over every endpoint's error and
// success paths.
func TestHandlers(t *testing.T) {
	srv := newTestServer(t)
	h := srv.Handler()

	// Seed a line the read cases can hit.
	seeded := testLine(0xAB)
	if w := do(t, h, "POST", "/v1/write", fmt.Sprintf(`{"addr":42,"data":%q}`, b64(seeded))); w.Code != 200 {
		t.Fatalf("seed write: %d %s", w.Code, w.Body)
	}

	cases := []struct {
		name, method, path, body string
		wantCode                 int
		wantBodySub              string // substring the response must contain
	}{
		{"read ok", "POST", "/v1/read", `{"addr":42}`, 200, b64(seeded)},
		{"read bad json", "POST", "/v1/read", `{"addr":`, 400, "bad JSON"},
		{"read missing addr", "POST", "/v1/read", `{}`, 400, "missing addr"},
		{"read never written", "POST", "/v1/read", `{"addr":77}`, 404, "never written"},
		{"read out of range", "POST", "/v1/read", `{"addr":1048576}`, 400, "out of range"},
		{"read wrong method", "GET", "/v1/read", "", 405, "use POST"},
		{"write ok", "POST", "/v1/write", fmt.Sprintf(`{"addr":43,"data":%q}`, b64(testLine(1))), 200, `"ok":true`},
		{"write bad json", "POST", "/v1/write", `not json`, 400, "bad JSON"},
		{"write missing addr", "POST", "/v1/write", fmt.Sprintf(`{"data":%q}`, b64(testLine(1))), 400, "missing addr"},
		{"write wrong line size", "POST", "/v1/write", fmt.Sprintf(`{"addr":44,"data":%q}`, b64([]byte("short"))), 400, "64 bytes"},
		{"write out of range", "POST", "/v1/write", fmt.Sprintf(`{"addr":9999999,"data":%q}`, b64(testLine(1))), 400, "out of range"},
		{"batch bad json", "POST", "/v1/batch", `{"op":`, 400, "bad JSON"},
		{"batch empty body", "POST", "/v1/batch", "", 400, "empty batch"},
		{"healthz", "GET", "/healthz", "", 200, "ok"},
		{"stats", "GET", "/v1/stats", "", 200, `"per_shard"`},
		{"metrics", "GET", "/metrics", "", 200, "attached_reads_total"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := do(t, h, tc.method, tc.path, tc.body)
			if w.Code != tc.wantCode {
				t.Fatalf("code = %d, want %d (body %s)", w.Code, tc.wantCode, w.Body)
			}
			if !strings.Contains(w.Body.String(), tc.wantBodySub) {
				t.Fatalf("body %q missing %q", w.Body, tc.wantBodySub)
			}
		})
	}
}

// TestBatchPartialFailure checks /v1/batch semantics: one bad op fails
// alone, the rest of the batch lands, and the response reports per-op
// outcomes in order.
func TestBatchPartialFailure(t *testing.T) {
	srv := newTestServer(t)
	h := srv.Handler()

	body := fmt.Sprintf(`[
		{"op":"write","addr":1,"data":%q},
		{"op":"read","addr":1},
		{"op":"read","addr":555},
		{"op":"write","addr":2,"data":%q},
		{"op":"frobnicate","addr":3},
		{"op":"read"}
	]`, b64(testLine(7)), b64([]byte("short")))
	w := do(t, h, "POST", "/v1/batch", body)
	if w.Code != 200 {
		t.Fatalf("partial failure must still answer 200, got %d: %s", w.Code, w.Body)
	}
	var resp struct {
		Results []struct {
			Addr  uint64 `json:"addr"`
			Data  []byte `json:"data"`
			OK    bool   `json:"ok"`
			Error string `json:"error"`
		} `json:"results"`
		Failed int `json:"failed"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 6 {
		t.Fatalf("results = %d, want 6", len(resp.Results))
	}
	if !resp.Results[0].OK {
		t.Fatalf("op0 write failed: %s", resp.Results[0].Error)
	}
	if !bytes.Equal(resp.Results[1].Data, testLine(7)) {
		t.Fatal("op1 read did not observe the in-batch write")
	}
	if !strings.Contains(resp.Results[2].Error, "never written") {
		t.Fatalf("op2 error = %q, want never-written", resp.Results[2].Error)
	}
	if !strings.Contains(resp.Results[3].Error, "64 bytes") {
		t.Fatalf("op3 error = %q, want bad line size", resp.Results[3].Error)
	}
	if !strings.Contains(resp.Results[4].Error, "unknown op") {
		t.Fatalf("op4 error = %q, want unknown op", resp.Results[4].Error)
	}
	if !strings.Contains(resp.Results[5].Error, "missing addr") {
		t.Fatalf("op5 error = %q, want missing addr", resp.Results[5].Error)
	}
	if resp.Failed != 4 {
		t.Fatalf("failed = %d, want 4", resp.Failed)
	}
}

// TestBatchNDJSON feeds the multi-line (one JSON object per line) form.
func TestBatchNDJSON(t *testing.T) {
	srv := newTestServer(t)
	h := srv.Handler()
	body := fmt.Sprintf("{\"op\":\"write\",\"addr\":10,\"data\":%q}\n{\"op\":\"read\",\"addr\":10}\n", b64(testLine(3)))
	w := do(t, h, "POST", "/v1/batch", body)
	if w.Code != 200 {
		t.Fatalf("ndjson batch: %d %s", w.Code, w.Body)
	}
	var resp struct {
		Results []struct {
			Data []byte `json:"data"`
		} `json:"results"`
		Failed int `json:"failed"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Failed != 0 || len(resp.Results) != 2 || !bytes.Equal(resp.Results[1].Data, testLine(3)) {
		t.Fatalf("ndjson round trip broken: %s", w.Body)
	}
}

// TestBatchCap rejects oversized batches up front.
func TestBatchCap(t *testing.T) {
	eng, err := shard.New(core.DefaultOptions(), shard.Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv := New(eng, Config{MaxBatchOps: 2})
	w := do(t, srv.Handler(), "POST", "/v1/batch",
		`[{"op":"read","addr":1},{"op":"read","addr":2},{"op":"read","addr":3}]`)
	if w.Code != 400 || !strings.Contains(w.Body.String(), "exceeds limit") {
		t.Fatalf("oversized batch: %d %s", w.Code, w.Body)
	}
}

// TestMetricsExposition checks the Prometheus text format: counters move
// with traffic and the latency histograms are cumulative and labelled.
func TestMetricsExposition(t *testing.T) {
	srv := newTestServer(t)
	h := srv.Handler()
	for i := 0; i < 5; i++ {
		do(t, h, "POST", "/v1/write", fmt.Sprintf(`{"addr":%d,"data":%q}`, i, b64(testLine(byte(i)))))
		do(t, h, "POST", "/v1/read", fmt.Sprintf(`{"addr":%d}`, i))
	}
	do(t, h, "POST", "/v1/read", `{"addr":404}`) // a 404 for the code label

	w := do(t, h, "GET", "/metrics", "")
	body := w.Body.String()
	for _, want := range []string{
		"attached_reads_total 5",
		"attached_writes_total 5",
		"attached_lines 5",
		"attached_compressed_line_ratio",
		"attached_predictor_accuracy",
		"attached_ra_occupancy",
		"attached_shards 2",
		`attached_shard_lines{shard="0"}`,
		`attached_http_requests_total{endpoint="/v1/read",code="200"} 5`,
		`attached_http_requests_total{endpoint="/v1/read",code="404"} 1`,
		`attached_http_request_duration_seconds_bucket{endpoint="/v1/write",le="+Inf"} 5`,
		`attached_http_request_duration_seconds_count{endpoint="/v1/write"} 5`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}
}

// TestEndToEndServeDrainShutdown runs the real daemon lifecycle: listen,
// serve concurrent client traffic over TCP, then cancel the context
// mid-traffic and verify every accepted request completed and the engine
// drained cleanly.
func TestEndToEndServeDrainShutdown(t *testing.T) {
	eng, err := shard.New(core.DefaultOptions(), shard.Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng, Config{Addr: "127.0.0.1:0", ShutdownTimeout: 5 * time.Second})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(ctx) }()
	select {
	case <-srv.Ready():
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + srv.Addr()

	if resp, err := http.Get(base + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", err, resp)
	} else {
		resp.Body.Close()
	}

	// Concurrent clients stream batches while the test runs.
	const clients = 8
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				addr := c*1000 + i
				body := fmt.Sprintf(`[{"op":"write","addr":%d,"data":%q},{"op":"read","addr":%d}]`,
					addr, b64(testLine(byte(c))), addr)
				resp, err := http.Post(base+"/v1/batch", "application/json", strings.NewReader(body))
				if err != nil {
					// The listener may close mid-loop once cancel fires;
					// connection errors after that are expected.
					return
				}
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 || !strings.Contains(string(b), `"failed":0`) {
					errc <- fmt.Errorf("client %d: %d %s", c, resp.StatusCode, b)
					return
				}
			}
		}(c)
	}

	time.Sleep(50 * time.Millisecond) // let traffic overlap the drain
	cancel()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ListenAndServe after drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain never finished")
	}

	// Engine is closed: further ops fail, final snapshot holds traffic.
	if _, err := eng.Read(0); err == nil {
		t.Fatal("engine must be closed after drain")
	}
	if snap := eng.StatsSnapshot(); snap.Total.Writes == 0 {
		t.Fatalf("post-drain snapshot lost traffic: %+v", snap.Total)
	}

	// New connections are refused after shutdown.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}
