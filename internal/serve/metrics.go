package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"attache/internal/shard"
)

// latencyBuckets are the upper bounds (seconds) of the per-endpoint
// request-duration histograms, exponential from 100µs to 2.5s; slower
// requests land in +Inf.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// nLatencyBuckets counts the finite buckets plus the +Inf overflow; a
// compile-time-adjacent check in newMetricsSet keeps it in sync with
// latencyBuckets.
const nLatencyBuckets = 15

// latencyHist is a fixed-bucket histogram with atomic counters, so the
// request hot path never takes a lock to observe a duration.
type latencyHist struct {
	buckets [nLatencyBuckets]atomic.Uint64 // last bucket is +Inf
	sumNano atomic.Uint64
	count   atomic.Uint64
}

func (h *latencyHist) observe(d time.Duration) {
	sec := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets, sec)
	h.buckets[i].Add(1)
	h.sumNano.Add(uint64(d.Nanoseconds()))
	h.count.Add(1)
}

// metricsSet tracks per-endpoint request counts (by status code) and
// latency histograms. Endpoints are registered up front, so the map is
// read-only after construction; only the code counters need a lock.
type metricsSet struct {
	hists map[string]*latencyHist

	mu    sync.Mutex
	codes map[string]map[int]uint64
}

func newMetricsSet(endpoints ...string) *metricsSet {
	if len(latencyBuckets)+1 != nLatencyBuckets {
		panic("serve: nLatencyBuckets out of sync with latencyBuckets")
	}
	m := &metricsSet{
		hists: make(map[string]*latencyHist, len(endpoints)),
		codes: make(map[string]map[int]uint64, len(endpoints)),
	}
	for _, ep := range endpoints {
		m.hists[ep] = &latencyHist{}
		m.codes[ep] = make(map[int]uint64)
	}
	return m
}

func (m *metricsSet) observe(endpoint string, code int, d time.Duration) {
	if h, ok := m.hists[endpoint]; ok {
		h.observe(d)
	}
	m.mu.Lock()
	if c, ok := m.codes[endpoint]; ok {
		c[code]++
	}
	m.mu.Unlock()
}

// renderMetrics emits the Prometheus text exposition (version 0.0.4) for
// the engine snapshot plus the HTTP-layer counters.
func (s *Server) renderMetrics() string {
	snap := s.cl.EngineSnapshot()
	var b strings.Builder

	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	t := snap.Total
	counter("attached_reads_total", "Line reads served.", t.Reads)
	counter("attached_writes_total", "Line writes served.", t.Writes)
	counter("attached_blocks_read_total", "32-byte sub-rank blocks fetched.", t.BlocksRead)
	counter("attached_blocks_written_total", "32-byte sub-rank blocks written.", t.BlocksWritten)
	counter("attached_mispredictions_total", "COPR mispredictions (corrective fetches).", t.Mispredictions)
	counter("attached_ra_accesses_total", "Replacement Area reads+writes (CID collisions).", t.RAAccesses)
	counter("attached_shed_ops_total", "Ops rejected with ErrOverloaded at shard-queue admission.", snap.Robust.Sheds)
	counter("attached_canceled_ops_total", "Ops skipped because their context expired in the queue.", snap.Robust.Canceled)
	counter("attached_injected_errors_total", "Fault-injection errors (0 unless a fault plan is active).", snap.Robust.InjectedErrors)
	counter("attached_injected_delays_total", "Fault-injection delays (0 unless a fault plan is active).", snap.Robust.InjectedDelays)
	gauge("attached_lines", "Distinct lines currently stored.", float64(t.Lines))
	gauge("attached_compressed_lines", "Lines currently stored compressed.", float64(t.CompressedLines))
	gauge("attached_compressed_line_ratio", "Fraction of stored lines compressed.", t.CompressedLineRatio())
	gauge("attached_ra_occupancy", "Lines currently parked in the Replacement Area.", float64(t.RAOccupancy))
	gauge("attached_predictor_accuracy", "COPR running accuracy, reads-weighted across shards.", t.PredictionAccuracy)
	gauge("attached_bandwidth_savings_ratio", "Fraction of sub-rank transfers avoided vs uncompressed.", t.BandwidthSavings())
	gauge("attached_shards", "Configured shard count.", float64(s.cl.Shards()))
	gauge("attached_sram_overhead_bytes", "Summed predictor+CID SRAM across shards.", float64(snap.SRAMBytes))
	gauge("attached_uptime_seconds", "Seconds since the daemon started serving.", time.Since(s.started).Seconds())
	gauge("attached_cluster_instances", "Engine instances behind the router.", float64(s.cl.Instances()))
	gauge("attached_cluster_jain_fairness", "Jain fairness index over per-tenant successful throughput.", s.cl.JainFairness())

	if tr := snap.Tiers; tr != nil {
		counter("attached_tier_near_reads_total", "Line reads served from the near (uncompressed) tier.", tr.NearReads)
		counter("attached_tier_near_writes_total", "Line writes absorbed by the near tier.", tr.NearWrites)
		counter("attached_tier_far_reads_total", "Line reads that crossed the far link.", tr.FarReads)
		counter("attached_tier_far_writes_total", "Line writes that crossed the far link.", tr.FarWrites)
		counter("attached_tier_promotions_total", "Lines promoted far-to-near.", tr.Promotions)
		counter("attached_tier_demotions_total", "Lines demoted near-to-far.", tr.Demotions)
		gauge("attached_tier_near_resident", "Lines currently resident in the near tier.", float64(tr.NearResident))
		gauge("attached_tier_far_resident", "Lines currently resident in the far tier.", float64(tr.FarResident))
		gauge("attached_tier_far_link_bytes", "Modeled bytes moved across the far link (bandwidth multiplier applied).", tr.FarLinkBytes)
		gauge("attached_tier_far_latency_ns", "Modeled cumulative far-link latency in nanoseconds.", tr.FarLatencyNs)
		gauge("attached_tier_energy_pj", "Modeled cumulative memory-traffic energy in picojoules.", tr.EnergyPJ)
	}

	s.renderPerShard(&b, snap)
	s.renderTenants(&b)
	s.renderHTTP(&b)
	return b.String()
}

// renderTenants emits per-tenant op counters; absent until the first
// tenant-attributed request arrives.
func (s *Server) renderTenants(b *strings.Builder) {
	tenants := s.cl.TenantSnapshots()
	if len(tenants) == 0 {
		return
	}
	fmt.Fprintf(b, "# HELP attached_tenant_ops_total Ops submitted, per tenant (including shed ops).\n# TYPE attached_tenant_ops_total counter\n")
	for _, t := range tenants {
		fmt.Fprintf(b, "attached_tenant_ops_total{tenant=%q,class=%q} %d\n", t.Tenant, t.Class, t.Ops)
	}
	fmt.Fprintf(b, "# HELP attached_tenant_shed_quota_total Ops refused by per-tenant admission control.\n# TYPE attached_tenant_shed_quota_total counter\n")
	for _, t := range tenants {
		fmt.Fprintf(b, "attached_tenant_shed_quota_total{tenant=%q,class=%q} %d\n", t.Tenant, t.Class, t.ShedQuota)
	}
}

func (s *Server) renderPerShard(b *strings.Builder, snap shard.Snapshot) {
	fmt.Fprintf(b, "# HELP attached_shard_reads_total Line reads served, per shard.\n# TYPE attached_shard_reads_total counter\n")
	for i, sh := range snap.PerShard {
		fmt.Fprintf(b, "attached_shard_reads_total{shard=\"%d\"} %d\n", i, sh.Reads)
	}
	fmt.Fprintf(b, "# HELP attached_shard_lines Distinct lines stored, per shard.\n# TYPE attached_shard_lines gauge\n")
	for i, sh := range snap.PerShard {
		fmt.Fprintf(b, "attached_shard_lines{shard=\"%d\"} %d\n", i, sh.Lines)
	}

	gauges := s.cl.Gauges()
	fmt.Fprintf(b, "# HELP attached_shard_queue_depth Tasks buffered in the shard's pipeline queue.\n# TYPE attached_shard_queue_depth gauge\n")
	for _, g := range gauges {
		fmt.Fprintf(b, "attached_shard_queue_depth{shard=\"%d\"} %d\n", g.Shard, g.QueueDepth)
	}
	fmt.Fprintf(b, "# HELP attached_shard_inflight Tasks admitted to the shard but not yet completed.\n# TYPE attached_shard_inflight gauge\n")
	for _, g := range gauges {
		fmt.Fprintf(b, "attached_shard_inflight{shard=\"%d\"} %d\n", g.Shard, g.InFlight)
	}
	fmt.Fprintf(b, "# HELP attached_shard_last_batch_ops Ops in the shard's most recently dequeued batch.\n# TYPE attached_shard_last_batch_ops gauge\n")
	for _, g := range gauges {
		fmt.Fprintf(b, "attached_shard_last_batch_ops{shard=\"%d\"} %d\n", g.Shard, g.LastBatchOps)
	}
}

func (s *Server) renderHTTP(b *strings.Builder) {
	m := s.metrics
	endpoints := make([]string, 0, len(m.hists))
	for ep := range m.hists {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)

	fmt.Fprintf(b, "# HELP attached_http_requests_total HTTP requests served, by endpoint and status code.\n# TYPE attached_http_requests_total counter\n")
	m.mu.Lock()
	for _, ep := range endpoints {
		codes := make([]int, 0, len(m.codes[ep]))
		for c := range m.codes[ep] {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(b, "attached_http_requests_total{endpoint=%q,code=\"%d\"} %d\n", ep, c, m.codes[ep][c])
		}
	}
	m.mu.Unlock()

	fmt.Fprintf(b, "# HELP attached_http_request_duration_seconds HTTP request latency, by endpoint.\n# TYPE attached_http_request_duration_seconds histogram\n")
	for _, ep := range endpoints {
		h := m.hists[ep]
		var cum uint64
		for i, le := range latencyBuckets {
			cum += h.buckets[i].Load()
			fmt.Fprintf(b, "attached_http_request_duration_seconds_bucket{endpoint=%q,le=\"%g\"} %d\n", ep, le, cum)
		}
		cum += h.buckets[len(latencyBuckets)].Load()
		fmt.Fprintf(b, "attached_http_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, cum)
		fmt.Fprintf(b, "attached_http_request_duration_seconds_sum{endpoint=%q} %g\n", ep, float64(h.sumNano.Load())/1e9)
		fmt.Fprintf(b, "attached_http_request_duration_seconds_count{endpoint=%q} %d\n", ep, h.count.Load())
	}
}
