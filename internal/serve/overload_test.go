package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"attache/internal/core"
	"attache/internal/shard"
)

// TestOverloadShedsWhileHealthzStaysGreen pins the acceptance criterion
// for graceful degradation: with a 1-deep queue and a saturating load,
// the daemon answers 429 (with a Retry-After hint) instead of stalling,
// /healthz stays green the whole time, and shutdown still drains
// cleanly afterwards.
func TestOverloadShedsWhileHealthzStaysGreen(t *testing.T) {
	eng, err := shard.New(core.DefaultOptions(), shard.Config{
		Shards:     1,
		QueueDepth: 1,
		// Slow the single worker down so the queue is full almost always.
		Faults: shard.FaultPlan{Seed: 2, DelayP: 1, Delay: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng, Config{Addr: "127.0.0.1:0", ShutdownTimeout: 10 * time.Second})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(ctx) }()
	select {
	case <-srv.Ready():
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + srv.Addr()

	var ok200, shed429, retryAfterMissing atomic.Uint64
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	const clients = 16
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				body := fmt.Sprintf(`{"addr":%d,"data":%q}`, c*1000+i, b64(testLine(byte(c))))
				resp, err := http.Post(base+"/v1/write", "application/json", strings.NewReader(body))
				if err != nil {
					errc <- fmt.Errorf("client %d: %v", c, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok200.Add(1)
				case http.StatusTooManyRequests:
					shed429.Add(1)
					if resp.Header.Get("Retry-After") == "" {
						retryAfterMissing.Add(1)
					}
				default:
					errc <- fmt.Errorf("client %d: unexpected status %d", c, resp.StatusCode)
					return
				}
			}
		}(c)
	}

	// Liveness probes race the overload: every one must be green.
	probeStop := make(chan struct{})
	probeDone := make(chan error, 1)
	go func() {
		defer close(probeDone)
		for {
			select {
			case <-probeStop:
				return
			default:
			}
			resp, err := http.Get(base + "/healthz")
			if err != nil {
				probeDone <- fmt.Errorf("healthz during overload: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				probeDone <- fmt.Errorf("healthz went %d under overload", resp.StatusCode)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	wg.Wait()
	close(probeStop)
	if err, ok := <-probeDone; ok && err != nil {
		t.Fatal(err)
	}
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	if shed429.Load() == 0 {
		t.Fatalf("saturating a 1-deep queue produced no 429s (200s: %d)", ok200.Load())
	}
	if retryAfterMissing.Load() != 0 {
		t.Fatalf("%d of %d 429 responses lacked Retry-After", retryAfterMissing.Load(), shed429.Load())
	}
	if snap := eng.StatsSnapshot(); snap.Robust.Sheds == 0 {
		t.Fatalf("engine shed counter did not move: %+v", snap.Robust)
	}

	// The daemon must still drain cleanly after all that shedding.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain after overload: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("drain never finished after overload")
	}
}
