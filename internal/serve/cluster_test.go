package serve

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"attache/internal/cluster"
	"attache/internal/core"
	"attache/internal/obs"
	"attache/internal/shard"
)

// newClusterServer spins up a 3-instance least-loaded cluster behind the
// HTTP surface, with a frozen admission clock so quota outcomes are
// exact: tenant "hog" gets 4 ops, "vip" (gold) is unlimited.
func newClusterServer(t *testing.T) *Server {
	t.Helper()
	frozen := time.Unix(1_700_000_000, 0)
	cl, err := cluster.New(core.DefaultOptions(), shard.Config{Shards: 2}, 3, cluster.Config{
		Router:  cluster.LeastLoaded,
		Quotas:  map[string]cluster.Quota{"hog": {Rate: 4, Burst: 4}},
		Classes: map[string]cluster.Class{"vip": cluster.ClassGold},
		Now:     func() time.Time { return frozen },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return NewCluster(cl, Config{})
}

func postWrite(t *testing.T, srv *Server, tenant string, addr uint64) int {
	t.Helper()
	line := base64.StdEncoding.EncodeToString(make([]byte, core.LineSize))
	body := fmt.Sprintf(`{"addr":%d,"data":%q}`, addr, line)
	req := httptest.NewRequest(http.MethodPost, "/v1/write", strings.NewReader(body))
	if tenant != "" {
		req.Header.Set(obs.TenantHeader, tenant)
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code == http.StatusTooManyRequests && rec.Header().Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After: %s", rec.Body)
	}
	return rec.Code
}

// TestClusterServeEndToEnd is the serve-layer acceptance test for
// cluster mode: multi-tenant traffic over HTTP, 429s only for the
// over-quota tenant, per-tenant books that conserve, and the full v2
// stats surface (with v1 still round-tripping and unknown versions
// rejected).
func TestClusterServeEndToEnd(t *testing.T) {
	srv := newClusterServer(t)

	// Over-quota tenant: 4 admitted, 2 refused with 429.
	var ok429 int
	for i := 0; i < 6; i++ {
		switch code := postWrite(t, srv, "hog", uint64(i)); code {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			ok429++
		default:
			t.Fatalf("hog write %d = %d", i, code)
		}
	}
	if ok429 != 2 {
		t.Fatalf("hog got %d 429s of 6 writes, want exactly 2", ok429)
	}
	// Unlimited gold tenant: never refused.
	for i := 0; i < 8; i++ {
		if code := postWrite(t, srv, "vip", uint64(100+i)); code != http.StatusOK {
			t.Fatalf("vip write %d = %d, want 200", i, code)
		}
	}

	// Default stats = schema v2.
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats?decisions=5", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats = %d: %s", rec.Code, rec.Body)
	}
	var v2 statsV2
	if err := json.Unmarshal(rec.Body.Bytes(), &v2); err != nil {
		t.Fatalf("bad v2 JSON: %v", err)
	}
	if v2.SchemaVersion != 2 {
		t.Fatalf("schema_version = %d, want 2", v2.SchemaVersion)
	}
	if v2.Cluster.Instances != 3 || v2.Cluster.Router != cluster.LeastLoaded {
		t.Fatalf("cluster section = %+v, want 3 least-loaded instances", v2.Cluster)
	}
	if len(v2.Engine.PerInstance) != 3 || v2.Engine.Shards != 6 {
		t.Fatalf("engine section: %d instances / %d shards, want 3 / 6", len(v2.Engine.PerInstance), v2.Engine.Shards)
	}
	if v2.Engine.Total.Writes != 12 {
		t.Fatalf("merged writes = %d, want the 12 admitted", v2.Engine.Total.Writes)
	}
	if len(v2.Telemetry.Gauges) != 6 {
		t.Fatalf("telemetry gauges = %d, want one per global shard", len(v2.Telemetry.Gauges))
	}
	if n := len(v2.Cluster.Decisions); n == 0 || n > 5 {
		t.Fatalf("decisions = %d, want 1..5 as requested", n)
	}

	// Per-tenant books: present, classed, and conserving.
	if len(v2.Tenants) != 2 {
		t.Fatalf("tenants = %+v, want hog and vip", v2.Tenants)
	}
	for _, tn := range v2.Tenants {
		if tn.Ops != tn.OK+tn.ShedQuota+tn.ShedBackend+tn.Errors {
			t.Fatalf("tenant %s books do not conserve: %+v", tn.Tenant, tn)
		}
	}
	hog, vip := v2.Tenants[0], v2.Tenants[1]
	if hog.Tenant != "hog" || hog.OK != 4 || hog.ShedQuota != 2 {
		t.Fatalf("hog book = %+v, want 4 ok / 2 quota-shed", hog)
	}
	if vip.Tenant != "vip" || vip.OK != 8 || vip.ShedQuota != 0 || vip.Class != cluster.ClassGold {
		t.Fatalf("vip book = %+v, want 8 ok gold", vip)
	}

	// Per-class quantiles: gold ahead of best-effort, with real samples.
	if len(v2.Cluster.Classes) != 2 || v2.Cluster.Classes[0].Class != cluster.ClassGold {
		t.Fatalf("classes = %+v, want gold then best-effort", v2.Cluster.Classes)
	}
	for _, c := range v2.Cluster.Classes {
		if c.Samples == 0 || c.P99us <= 0 || c.P99us < c.P50us {
			t.Fatalf("class %s quantiles malformed: %+v", c.Class, c)
		}
	}
	if j := v2.Cluster.JainFairness; j <= 0 || j > 1 {
		t.Fatalf("jain_fairness = %v, want in (0, 1]", j)
	}

	// v1 still round-trips the flat shape for existing clients.
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats?v=1", nil))
	var v1 statsV1
	if err := json.Unmarshal(rec.Body.Bytes(), &v1); err != nil {
		t.Fatalf("bad v1 JSON: %v", err)
	}
	if v1.Total.Writes != 12 || v1.Shards != 6 || len(v1.Telemetry) != 6 {
		t.Fatalf("v1 = writes %d / shards %d / telemetry %d, want 12 / 6 / 6",
			v1.Total.Writes, v1.Shards, len(v1.Telemetry))
	}
	if strings.Contains(rec.Body.String(), "schema_version") {
		t.Fatal("v1 response leaked v2 fields")
	}

	// Unknown schema versions are rejected, not guessed at.
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats?v=3", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("stats?v=3 = %d, want 400", rec.Code)
	}

	// Metrics exposition carries the cluster gauges and per-tenant series.
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	for _, want := range []string{
		"attached_cluster_instances 3",
		"attached_cluster_jain_fairness",
		`attached_tenant_ops_total{tenant="hog",class="best-effort"}`,
		`attached_tenant_shed_quota_total{tenant="hog",class="best-effort"} 2`,
		`attached_tenant_ops_total{tenant="vip",class="gold"} 8`,
		`attached_shard_queue_depth{shard="5"}`,
	} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
