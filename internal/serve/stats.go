package serve

import (
	"time"

	"attache/internal/cluster"
	"attache/internal/core"
	"attache/internal/obs"
	"attache/internal/shard"
	"attache/internal/tier"
)

// statsV1 is the deprecated flat stats shape served under /v1/stats?v=1:
// the engine snapshot's fields at the top level, plus daemon extras.
// Built from the cluster's merged snapshot, so for a 1-instance cluster
// it is byte-identical to what the pre-cluster daemon served.
type statsV1 struct {
	shard.Snapshot
	Shards        int              `json:"shards"`
	UptimeSeconds float64          `json:"uptime_seconds"`
	Telemetry     []obs.ShardGauge `json:"telemetry"`
}

// statsV2 is the current stats document (schema_version 2): nested
// sections instead of a flat blob, with per-instance, per-class, and
// per-tenant breakdowns the cluster layer introduces.
type statsV2 struct {
	SchemaVersion int                      `json:"schema_version"`
	Engine        engineSection            `json:"engine"`
	Robust        shard.RobustStats        `json:"robust"`
	Telemetry     telemetrySection         `json:"telemetry"`
	Cluster       clusterSection           `json:"cluster"`
	Tenants       []cluster.TenantSnapshot `json:"tenants"`
}

// engineSection is the storage-side view: merged totals plus each
// instance's own engine snapshot.
type engineSection struct {
	Shards      int                `json:"shards"`
	SRAMBytes   int                `json:"sram_bytes"`
	Total       core.StatsSnapshot `json:"total"`
	PerInstance []shard.Snapshot   `json:"per_instance"`
	// Tiers is the merged two-tier view (near/far residency, tier
	// traffic, far-link cost model figures), present only when the
	// cluster runs a tiered backend. Per-instance tier sections live in
	// each PerInstance snapshot. On tiered engines Total describes the
	// far (compressed) tier; near-tier accounting is all here.
	Tiers *tier.Snapshot `json:"tiers,omitempty"`
}

// telemetrySection is the daemon-side view: uptime and live queue
// gauges (shard indices are global across instances).
type telemetrySection struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	Gauges        []obs.ShardGauge `json:"gauges"`
}

// clusterSection is the routing/SLO view: per-class latency quantiles,
// the Jain fairness index over per-tenant throughput, and (on request)
// recent routing decisions for counterfactual analysis.
type clusterSection struct {
	Instances    int                     `json:"instances"`
	Router       string                  `json:"router"`
	Classes      []cluster.ClassSnapshot `json:"classes"`
	JainFairness float64                 `json:"jain_fairness"`
	Decisions    []cluster.Decision      `json:"decisions,omitempty"`
}

func (s *Server) statsV1() statsV1 {
	return statsV1{
		Snapshot:      s.cl.EngineSnapshot(),
		Shards:        s.cl.Shards(),
		UptimeSeconds: time.Since(s.started).Seconds(),
		Telemetry:     s.cl.Gauges(),
	}
}

func (s *Server) statsV2(decisions int) statsV2 {
	merged := s.cl.EngineSnapshot()
	return statsV2{
		SchemaVersion: 2,
		Engine: engineSection{
			Shards:      s.cl.Shards(),
			SRAMBytes:   merged.SRAMBytes,
			Total:       merged.Total,
			PerInstance: s.cl.PerInstanceSnapshots(),
			Tiers:       merged.Tiers,
		},
		Robust: merged.Robust,
		Telemetry: telemetrySection{
			UptimeSeconds: time.Since(s.started).Seconds(),
			Gauges:        s.cl.Gauges(),
		},
		Cluster: clusterSection{
			Instances:    s.cl.Instances(),
			Router:       s.cl.RouterName(),
			Classes:      s.cl.ClassSnapshots(),
			JainFairness: s.cl.JainFairness(),
			Decisions:    s.cl.Decisions(decisions),
		},
		Tenants: s.cl.TenantSnapshots(),
	}
}
