package serve

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"reflect"
	"testing"

	"attache/client"
	"attache/internal/core"
	"attache/internal/loadgen"
	"attache/internal/shard"
	"attache/internal/workload"
)

// TestRecordMiddlewareCapturesOfferedLoad: every op the data endpoints
// offer to the engine lands in the capture — in submission order, with
// payloads, including ops the engine rejects (recording sits before
// admission, so a replay re-offers the same load, not the same luck).
func TestRecordMiddlewareCapturesOfferedLoad(t *testing.T) {
	eng, err := shard.New(core.DefaultOptions(), shard.Config{Shards: 2, MaxLines: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	var buf bytes.Buffer
	tw := workload.NewTraceWriter(&buf)
	srv := New(eng, Config{Record: tw})
	h := srv.Handler()

	line := testLine(0x5A)
	if w := do(t, h, "POST", "/v1/write", fmt.Sprintf(`{"addr":7,"data":%q}`, b64(line))); w.Code != 200 {
		t.Fatalf("write: %d %s", w.Code, w.Body)
	}
	if w := do(t, h, "POST", "/v1/read", `{"addr":7}`); w.Code != 200 {
		t.Fatalf("read: %d %s", w.Code, w.Body)
	}
	// A never-written read fails — but the offer is still recorded.
	if w := do(t, h, "POST", "/v1/read", `{"addr":9999}`); w.Code != 404 {
		t.Fatalf("missing read: %d %s", w.Code, w.Body)
	}
	// Malformed requests never reach the engine, so they are not offered
	// load and must not pollute the capture.
	if w := do(t, h, "POST", "/v1/read", `{"addr":`); w.Code != 400 {
		t.Fatalf("bad json read: %d", w.Code)
	}
	batch := fmt.Sprintf(`{"op":"write","addr":11,"data":%q}`+"\n"+`{"op":"read","addr":7}`, b64(line))
	if w := do(t, h, "POST", "/v1/batch", batch); w.Code != 200 {
		t.Fatalf("batch: %d %s", w.Code, w.Body)
	}

	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := workload.DecodeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := []loadgen.Event{
		{Kind: loadgen.Write, Ops: []shard.Op{{Write: true, Addr: 7, Data: line}}},
		{Kind: loadgen.Read, Ops: []shard.Op{{Addr: 7}}},
		{Kind: loadgen.Read, Ops: []shard.Op{{Addr: 9999}}},
		{Kind: loadgen.Batch, Ops: []shard.Op{{Write: true, Addr: 11, Data: line}, {Addr: 7}}},
	}
	if len(events) != len(want) {
		t.Fatalf("captured %d events, want %d", len(events), len(want))
	}
	for i := range want {
		got := events[i]
		got.At = 0 // wall clock; compare content only
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("event %d:\ngot  %+v\nwant %+v", i, got, want[i])
		}
	}
}

// TestTraceRecordReplayConservation is the end-to-end acceptance pass
// for record/replay: a live daemon records a scenario driven over real
// HTTP, the capture decodes to the exact op sequence that was offered
// (OpChecksum equality), and replaying it against a fresh identical
// engine conserves everything the live run observed — op counts,
// success counts, error taxonomy, and engine totals. Runs under -race
// in CI's tracing-race job, which exercises the recorder's
// every-request-goroutine locking.
func TestTraceRecordReplayConservation(t *testing.T) {
	spec, err := workload.Preset("write-burst", 31, 400)
	if err != nil {
		t.Fatal(err)
	}
	events, err := workload.Compose(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := loadgen.Config{
		Concurrency: 1, // sequential offers: capture order == plan order
		AddrSpace:   spec.AddrSpace,
		Prefill:     -1, // the capture must be exactly the offered load
	}

	newEngine := func() *shard.Engine {
		opts := core.DefaultOptions()
		opts.Seed = spec.Seed
		eng, err := shard.New(opts, shard.Config{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { eng.Close() })
		return eng
	}

	// Live leg: scenario → HTTP client → recording daemon → engine A.
	liveEng := newEngine()
	var capture bytes.Buffer
	tw := workload.NewTraceWriter(&capture)
	ts := httptest.NewServer(New(liveEng, Config{Record: tw}).Handler())
	t.Cleanup(ts.Close)
	liveRep, err := loadgen.RunEvents(context.Background(), client.New(ts.URL, client.WithMaxRetries(0)), cfg, events)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}

	// The capture must decode to the op sequence that was offered.
	decoded, err := workload.DecodeTrace(bytes.NewReader(capture.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(events) {
		t.Fatalf("capture has %d events, offered %d", len(decoded), len(events))
	}
	if got, want := workload.OpChecksum(decoded), workload.OpChecksum(events); got != want {
		t.Fatalf("capture op checksum %s, offered plan %s — recorded traffic is not the offered traffic", got, want)
	}

	// Replay leg: decoded capture → fresh identical engine B, in-process.
	replayEng := newEngine()
	replayRep, err := loadgen.RunEvents(context.Background(), replayEng, cfg, decoded)
	if err != nil {
		t.Fatal(err)
	}

	// Conservation: the replay run observes exactly what the live run did.
	if liveRep.Ops != replayRep.Ops || liveRep.OpsOK != replayRep.OpsOK {
		t.Fatalf("op conservation broken: live %d/%d ok, replay %d/%d ok",
			liveRep.Ops, liveRep.OpsOK, replayRep.Ops, replayRep.OpsOK)
	}
	if !reflect.DeepEqual(liveRep.Errors, replayRep.Errors) {
		t.Fatalf("error taxonomy not conserved:\nlive   %v\nreplay %v", liveRep.Errors, replayRep.Errors)
	}
	liveSnap, replaySnap := liveEng.StatsSnapshot().Total, replayEng.StatsSnapshot().Total
	if liveSnap.Reads != replaySnap.Reads || liveSnap.Writes != replaySnap.Writes || liveSnap.Lines != replaySnap.Lines {
		t.Fatalf("engine totals not conserved: live reads/writes/lines %d/%d/%d, replay %d/%d/%d",
			liveSnap.Reads, liveSnap.Writes, liveSnap.Lines,
			replaySnap.Reads, replaySnap.Writes, replaySnap.Lines)
	}
	if liveSnap.CompressedLineRatio() != replaySnap.CompressedLineRatio() {
		t.Fatalf("compression ratio not conserved: live %g, replay %g",
			liveSnap.CompressedLineRatio(), replaySnap.CompressedLineRatio())
	}
}
