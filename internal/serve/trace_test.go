package serve

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"attache/internal/core"
	"attache/internal/obs"
	"attache/internal/shard"
)

func newTracedServer(t *testing.T, o *obs.Observer) (*Server, *shard.Engine) {
	t.Helper()
	eng, err := shard.New(core.DefaultOptions(), shard.Config{Shards: 2, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return New(eng, Config{Obs: o}), eng
}

// TestTraceHeaderRoundTrip is the serve-layer half of the acceptance
// path: a request with an X-Attache-Trace header is traced under that
// ID, the header is echoed, and /v1/trace/{id} returns a timeline with
// all four pipeline stages and the queue-wait/service decomposition.
func TestTraceHeaderRoundTrip(t *testing.T) {
	o := obs.New(obs.Config{Seed: 1})
	srv, _ := newTracedServer(t, o)

	line := base64.StdEncoding.EncodeToString(make([]byte, core.LineSize))
	body := fmt.Sprintf(`{"addr":42,"data":%q}`, line)
	req := httptest.NewRequest(http.MethodPost, "/v1/write", strings.NewReader(body))
	req.Header.Set(obs.TraceHeader, "00000000deadbeef")
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("write = %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get(obs.TraceHeader); got != "00000000deadbeef" {
		t.Fatalf("response trace header = %q, want echoed 00000000deadbeef", got)
	}

	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/trace/00000000deadbeef", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("trace lookup = %d: %s", rec.Code, rec.Body)
	}
	var tl obs.Timeline
	if err := json.Unmarshal(rec.Body.Bytes(), &tl); err != nil {
		t.Fatalf("bad timeline JSON: %v", err)
	}
	if tl.TraceID != "00000000deadbeef" {
		t.Fatalf("timeline ID = %s", tl.TraceID)
	}
	stages := make(map[string]int)
	for _, ev := range tl.Events {
		stages[ev.Stage]++
	}
	for _, want := range []string{"enqueue", "dequeue", "execute", "respond"} {
		if stages[want] == 0 {
			t.Fatalf("timeline missing stage %q: %+v", want, tl.Events)
		}
	}
	if tl.ServiceNanos <= 0 {
		t.Fatalf("service time = %d ns, want > 0", tl.ServiceNanos)
	}
	if tl.TotalNanos < tl.ServiceNanos || tl.QueueWaitNanos < 0 {
		t.Fatalf("decomposition inconsistent: wait %d, service %d, total %d",
			tl.QueueWaitNanos, tl.ServiceNanos, tl.TotalNanos)
	}
}

// TestTraceSamplingAndRecent covers the sampled (headerless) path and
// the /v1/trace listing.
func TestTraceSamplingAndRecent(t *testing.T) {
	o := obs.New(obs.Config{SampleRate: 1, Seed: 1})
	srv, _ := newTracedServer(t, o)

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/read", strings.NewReader(`{"addr":1}`)))
	// Never-written read: 404 at the HTTP layer, but still traced.
	if rec.Code != http.StatusNotFound {
		t.Fatalf("read = %d", rec.Code)
	}
	id := rec.Header().Get(obs.TraceHeader)
	if id == "" {
		t.Fatal("sampled request carried no trace header")
	}
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/trace/"+id, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("trace lookup of sampled request = %d: %s", rec.Code, rec.Body)
	}

	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/trace", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("trace listing = %d", rec.Code)
	}
	var listing struct {
		Traces []obs.Timeline `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil || len(listing.Traces) == 0 {
		t.Fatalf("trace listing empty or bad (%v): %s", err, rec.Body)
	}
}

func TestTraceEndpointErrors(t *testing.T) {
	o := obs.New(obs.Config{Seed: 1})
	srv, _ := newTracedServer(t, o)
	for path, want := range map[string]int{
		"/v1/trace/zz":               http.StatusBadRequest,
		"/v1/trace/00000000000000aa": http.StatusNotFound, // never traced
	} {
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != want {
			t.Errorf("GET %s = %d, want %d", path, rec.Code, want)
		}
	}

	plain, _ := newTracedServer(t, nil)
	rec := httptest.NewRecorder()
	plain.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/trace/1", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("trace endpoint without observer = %d, want 404", rec.Code)
	}
}

func TestPprofMounted(t *testing.T) {
	eng, err := shard.New(core.DefaultOptions(), shard.Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	with := New(eng, Config{EnablePprof: true})
	rec := httptest.NewRecorder()
	with.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("pprof index = %d with EnablePprof", rec.Code)
	}

	without := New(eng, Config{})
	rec = httptest.NewRecorder()
	without.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("pprof index = %d without EnablePprof, want 404", rec.Code)
	}
}

func TestAccessLogLevels(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	o := obs.New(obs.Config{Logger: logger, SampleRate: 1, Seed: 1})
	srv, _ := newTracedServer(t, o)

	// 404 (client error) → Info; bad method 405 → Info; healthz 200 → Debug.
	srv.Handler().ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodPost, "/v1/read", strings.NewReader(`{"addr":9}`)))
	srv.Handler().ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/healthz", nil))
	out := buf.String()
	if !strings.Contains(out, "level=INFO") || !strings.Contains(out, "code=404") {
		t.Fatalf("404 access log missing: %q", out)
	}
	if !strings.Contains(out, "level=DEBUG") || !strings.Contains(out, "path=/healthz") {
		t.Fatalf("healthz debug log missing: %q", out)
	}
	if !strings.Contains(out, "trace_id=") {
		t.Fatalf("traced request logged no trace_id: %q", out)
	}
}

func TestStatsIncludesTelemetry(t *testing.T) {
	srv, _ := newTracedServer(t, nil)

	// Default schema (v2): gauges nested under telemetry.gauges.
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	var stats struct {
		Telemetry struct {
			Gauges []obs.ShardGauge `json:"gauges"`
		} `json:"telemetry"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Telemetry.Gauges) != 2 {
		t.Fatalf("stats telemetry gauges = %+v, want 2 shards", stats.Telemetry.Gauges)
	}

	// Deprecated v1 keeps the flat telemetry list.
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats?v=1", nil))
	var v1 struct {
		Telemetry []obs.ShardGauge `json:"telemetry"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &v1); err != nil {
		t.Fatal(err)
	}
	if len(v1.Telemetry) != 2 {
		t.Fatalf("v1 stats telemetry = %+v, want 2 shards", v1.Telemetry)
	}
}

func TestMetricsIncludeQueueGauges(t *testing.T) {
	srv, _ := newTracedServer(t, nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		`attached_shard_queue_depth{shard="0"}`,
		`attached_shard_inflight{shard="1"}`,
		`attached_shard_last_batch_ops{shard="0"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %s", want)
		}
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer for concurrent slog use.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
