package twin

import (
	"sync"

	"attache/internal/compress"
	"attache/internal/workload"
)

// ClassProfile is the per-codec size distribution of one payload class:
// the probability a line of that class compresses under the engine's
// codecs, and the expected packed size when it does. These are measured
// once per process by running the class's deterministic line builder
// through the real compression engine — the twin never hardcodes codec
// behavior, so a codec change recalibrates the model automatically.
type ClassProfile struct {
	// PCompress is the probability a write of this class stores
	// compressed (fits one sub-rank block).
	PCompress float64
	// MeanPackedBytes is the mean packed payload size of the compressed
	// fraction (0 when nothing compresses).
	MeanPackedBytes float64
}

// classProbeSamples is the number of (addr, version) points probed per
// class. The builders are pure and their compressibility depends only
// on coarse address structure (e.g. parity for the mixed class), so a
// small deterministic sweep measures the exact class mix.
const classProbeSamples = 256

var (
	classOnce     sync.Once
	classProfiles map[workload.PayloadKind]ClassProfile
)

// Classes returns the per-class compression profiles, probing the
// compression engine on first use.
func Classes() map[workload.PayloadKind]ClassProfile {
	classOnce.Do(func() {
		eng := compress.NewEngine()
		classProfiles = make(map[workload.PayloadKind]ClassProfile, 5)
		for _, kind := range workload.Kinds() {
			var compressed, packed float64
			for i := 0; i < classProbeSamples; i++ {
				// Spread addresses and versions so parity- and
				// version-dependent builders are sampled evenly.
				line := workload.PayloadLine(kind, uint64(i)*3+1, uint64(i)/2)
				c := eng.Compress(line)
				if c.Algo != compress.AlgoNone {
					compressed++
					packed += float64(len(c.Pack()))
				}
			}
			p := ClassProfile{PCompress: compressed / classProbeSamples}
			if compressed > 0 {
				p.MeanPackedBytes = packed / compressed
			}
			classProfiles[kind] = p
		}
	})
	return classProfiles
}
