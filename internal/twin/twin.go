// Package twin is the analytical twin of the Attaché pipeline: a
// closed-form model that predicts, from a workload Spec's moments and
// an engine configuration, the same headline metrics the simulator
// measures — compression ratio, COPR accuracy, bandwidth savings, CID
// collisions, and (for tiered engines) far-link traffic — in
// microseconds instead of a full simulation run.
//
// The model (derivations in DESIGN.md §16):
//
//   - Occupancy: the address space is partitioned into segments of
//     statistically identical lines (prefill boundary, Zipf page-rank
//     buckets). Random writers Poissonize (P(never written) = e^{−w});
//     stream writers cover deterministically; the last writer wins, with
//     ownership weights proportional to per-line write rates.
//   - Compression ratio: per-class compression probabilities are probed
//     through the real codecs (classes.go), then mixed by ownership.
//   - COPR accuracy: every readable line was trained by the write that
//     stored it, and class membership is a stable function of the
//     address, so LiPR-covered reads are exact; beyond LiPR capacity the
//     model falls to PaPR's per-page majority, then the GI's global
//     majority, then the uncompressed default.
//   - Bandwidth: E[blocks/read] = 2 − q·â (q = P(line compressed),
//     â = predictor accuracy); E[blocks/write] = 2 − p(class). Savings
//     is 1 − blocks/(2·accesses), exactly the simulator's definition.
//   - Collisions: each uncompressed (scrambled) store collides with the
//     boot-time CID independently with probability 2^{−CIDBits}.
//   - Far link: the lru near tier is an LRU cache over the unified
//     access stream; Che's approximation (lru.go) gives the hit curve,
//     cold misses and demotion writebacks close the books.
//
// Evaluate is pure and allocation-light: one call runs in well under a
// millisecond (BenchmarkTwinEvaluate pins this), which is what makes
// the twin usable for capacity planning and for the cluster router's
// cost scoring (CostModel).
package twin

import (
	"fmt"
	"math"
	"sort"

	"attache/internal/copr"
	"attache/internal/tier"
	"attache/internal/workload"
)

// Config is the engine configuration the twin models — the same knobs
// the calibration sweep varies on the simulator side.
type Config struct {
	// Shards is carried for sim parity; the model's metrics are
	// shard-count-invariant (addresses split by hash, counters merge
	// exactly), so it does not enter the equations.
	Shards int `json:"shards"`
	// CIDBits is the Compression ID width (15 in the paper).
	CIDBits int `json:"cid_bits"`
	// Predictor sizes COPR; the zero value takes copr.DefaultConfig,
	// mirroring the engine's own defaulting.
	Predictor copr.Config `json:"-"`
	// DisablePredictor models the BLEM-only engine (always fetch both
	// sub-ranks; reported accuracy is 1 by convention, as in core).
	DisablePredictor bool `json:"disable_predictor,omitempty"`
	// Tier, when non-nil, models a two-tier backend. Only the lru
	// policy has a closed form here; Evaluate rejects others.
	Tier *tier.Config `json:"tier,omitempty"`
}

// Prediction is the twin's output for one (spec, config) point. When
// Tier is set, the headline metrics describe the far (compressed)
// memory — matching what a tiered engine's StatsSnapshot reports —
// and Tier carries the link-model figures.
type Prediction struct {
	// Lines is the expected resident line count (far-tier lines when
	// tiered).
	Lines float64 `json:"lines"`
	// CompressionRatio is the expected fraction of resident lines
	// stored compressed.
	CompressionRatio float64 `json:"compression_ratio"`
	// PredictorAccuracy is COPR's expected read-prediction accuracy.
	PredictorAccuracy float64 `json:"predictor_accuracy"`
	// BandwidthSavings is the expected fraction of 32-byte transfers
	// avoided vs. an uncompressed system (2 blocks per access).
	BandwidthSavings float64 `json:"bandwidth_savings"`
	// Reads are expected successful reads (far reads when tiered);
	// FailedReads the expected never-written read errors; Writes all
	// writes reaching the modeled memory, prefill included.
	Reads       float64 `json:"reads"`
	FailedReads float64 `json:"failed_reads"`
	Writes      float64 `json:"writes"`
	// BlocksRead/BlocksWritten are expected 32-byte sub-rank transfers.
	BlocksRead    float64 `json:"blocks_read"`
	BlocksWritten float64 `json:"blocks_written"`
	// Collisions is the expected number of CID-collision inserts over
	// the run; RAOccupancy the expected collided lines still resident.
	Collisions  float64 `json:"collisions"`
	RAOccupancy float64 `json:"ra_occupancy"`
	// Tier holds the far-link figures for tiered configs.
	Tier *TierPrediction `json:"tier,omitempty"`
}

// TierPrediction is the twin's far-link model output.
type TierPrediction struct {
	NearHitRate   float64 `json:"near_hit_rate"`
	FarReads      float64 `json:"far_reads"`
	FarWrites     float64 `json:"far_writes"`
	Promotions    float64 `json:"promotions"`
	Demotions     float64 `json:"demotions"`
	FarAccesses   float64 `json:"far_accesses"`
	FarLinkBlocks float64 `json:"far_link_blocks"`
	FarLinkBytes  float64 `json:"far_link_bytes"`
	FarLatencyNs  float64 `json:"far_latency_ns"`
}

// segment is one group of statistically identical line addresses.
type segment struct {
	lo, hi    float64 // line-address range [lo, hi)
	prefilled bool

	readOps  float64 // expected read ops landing in the segment
	writeOps float64 // expected client write ops landing in the segment

	// Per-writer per-line intensities, for the time-resolved coverage
	// integral (writers finish at different wall-clock horizons).
	writers []writerLoad

	// Derived occupancy and accuracy.
	exists  float64 // P(line holds data at end of run)
	q       float64 // P(resident line is compressed at end of run)
	qw      float64 // compressed fraction of client-written lines
	qRead   float64 // P(line is compressed as seen by a read mid-run)
	readsOK float64 // expected successful reads
	acc     float64 // COPR accuracy for reads landing here
}

// writerLoad is one client's write pressure on a segment: w expected
// writes per line over the client's whole run, finishing at horizon h
// (seconds). det marks stream writers (deterministic coverage).
type writerLoad struct {
	w, h float64
	det  bool
}

func (s *segment) lines() float64 { return s.hi - s.lo }

// clientShape precomputes one client's address distribution.
type clientShape struct {
	cm  workload.ClientMoments
	pc  float64   // P(write compresses) for the client's payload class
	det bool      // stream: deterministic coverage
	cum []float64 // zipf cumulative page weights (len npages+1), nil otherwise
}

// mass reports the fraction of the client's ops landing in line range
// [lo, hi) of a space of `space` lines.
func (c *clientShape) mass(lo, hi, space float64) float64 {
	if c.cum == nil {
		return (hi - lo) / space
	}
	pl := float64(c.cm.Addr.PageLines)
	npages := float64(len(c.cum) - 1)
	total := c.cum[len(c.cum)-1]
	cumAt := func(addr float64) float64 {
		r := addr / pl
		if r >= npages {
			return total
		}
		k := int(r)
		return c.cum[k] + (r-float64(k))*(c.cum[k+1]-c.cum[k])
	}
	return (cumAt(hi) - cumAt(lo)) / total
}

// Evaluate runs the closed-form model for spec under cfg.
func Evaluate(spec workload.Spec, cfg Config) (Prediction, error) {
	if err := spec.Validate(); err != nil {
		return Prediction{}, err
	}
	if cfg.CIDBits < 1 || cfg.CIDBits > 15 {
		return Prediction{}, fmt.Errorf("twin: CID width %d not in [1,15]", cfg.CIDBits)
	}
	var tcfg tier.Config
	if cfg.Tier != nil {
		if err := cfg.Tier.Validate(); err != nil {
			return Prediction{}, err
		}
		tcfg = cfg.Tier.WithDefaults()
		if tcfg.Policy != tier.PolicyLRU {
			return Prediction{}, fmt.Errorf("twin: tier policy %q has no closed form (only %q is modeled; freq and static are documented divergence areas)", tcfg.Policy, tier.PolicyLRU)
		}
	}
	m := spec.Moments()
	classes := Classes()
	space := float64(m.AddrSpace)
	prefill := float64(m.Prefill)
	pc0 := classes[m.PrefillPayload].PCompress

	shapes := make([]clientShape, len(m.Clients))
	for i, cm := range m.Clients {
		shapes[i] = clientShape{
			cm:  cm,
			pc:  classes[cm.Payload].PCompress,
			det: cm.Addr.Kind == workload.AddrStream,
		}
		if w := cm.Addr.ZipfPageWeights(m.AddrSpace); w != nil {
			cum := make([]float64, len(w)+1)
			for k, v := range w {
				cum[k+1] = cum[k] + v
			}
			shapes[i].cum = cum
		}
	}
	segs := buildSegments(m, shapes)

	// Per-segment occupancy, class mix, and read success. Clients run
	// over different wall-clock horizons (Events/Rate), so both read
	// availability and the read-visible class mix come from integrating
	// coverage over each reader's own horizon — a read early in the run
	// sees the prefill image where a late read sees the overwrite.
	for si := range segs {
		s := &segs[si]
		n := s.lines()
		var qNum, wSum float64
		type readerLoad struct{ r, h float64 }
		var readers []readerLoad
		for ci := range shapes {
			c := &shapes[ci]
			mass := c.mass(s.lo, s.hi, space)
			if mass <= 0 {
				continue
			}
			h := horizon(c.cm)
			if w := c.cm.WriteOps * mass / n; w > 0 {
				s.writers = append(s.writers, writerLoad{w: w, h: h, det: c.det})
				wSum += w
				qNum += w * c.pc
				s.writeOps += c.cm.WriteOps * mass
			}
			if r := c.cm.ReadOps * mass; r > 0 {
				readers = append(readers, readerLoad{r: r, h: h})
				s.readOps += r
			}
		}
		if wSum > 0 {
			s.qw = qNum / wSum
		}
		u0 := unwrittenAt(s.writers, math.Inf(1)) // end state: all writers done
		if s.prefilled {
			s.exists = 1
			s.q = u0*pc0 + (1-u0)*s.qw
		} else {
			s.exists = 1 - u0
			s.q = s.qw
		}
		var okSum, qrNum float64
		for _, rd := range readers {
			avgU := avgUnwritten(s.writers, rd.h)
			if s.prefilled {
				okSum += rd.r
				qrNum += rd.r * (avgU*pc0 + (1-avgU)*s.qw)
			} else {
				ok := rd.r * (1 - avgU)
				okSum += ok
				qrNum += ok * s.qw
			}
		}
		s.readsOK = okSum
		s.qRead = s.q
		if okSum > 0 {
			s.qRead = qrNum / okSum
		}
	}

	// Predictor coverage geometry: trained pages vs table capacities.
	pcfg := cfg.Predictor
	if pcfg.MemorySize == 0 {
		pcfg = copr.DefaultConfig()
	}
	var pagesTouched float64
	for si := range segs {
		s := &segs[si]
		pagesTouched += s.lines() / float64(copr.LinesPerPage) *
			(1 - math.Pow(1-s.exists, float64(copr.LinesPerPage)))
	}
	covL, covP := 0.0, 0.0
	if pagesTouched > 0 {
		if pcfg.EnableLiPR {
			covL = math.Min(1, float64(liprEntries(pcfg))/pagesTouched)
		}
		if pcfg.EnablePaPR {
			covP = math.Min(1, float64(paprEntries(pcfg))/pagesTouched)
		}
	}
	// The GI predicts the global majority: its counters saturate toward
	// the write-weighted compressed fraction of all traffic.
	var qGlobal float64
	for kind, weight := range m.PayloadWeights {
		qGlobal += weight * classes[kind].PCompress
	}
	giUp := counterUp(qGlobal)

	var p Prediction
	pCollide := 1 / float64(uint64(1)<<uint(cfg.CIDBits))
	var accNum float64
	for si := range segs {
		s := &segs[si]
		// The per-page training stream mixes prefill writes, client
		// writes, and read updates; its compressed fraction drives the
		// PaPR counter's steady state.
		prefillW := 0.0
		if s.prefilled {
			prefillW = s.lines()
		}
		qs := s.q
		if den := prefillW + s.writeOps + s.readsOK; den > 0 {
			qs = (prefillW*pc0 + s.writeOps*s.qw + s.readsOK*s.qRead) / den
		}
		s.acc = segAccuracy(qs, s.qRead, covL, covP, pcfg.EnableGI, giUp)
		if cfg.DisablePredictor {
			s.acc = 0 // never fetch speculatively: always 2 blocks/read
			p.BlocksRead += s.readsOK * 2
		} else {
			p.BlocksRead += s.readsOK * (2 - s.qRead*s.acc)
			accNum += s.readsOK * s.acc
		}
		p.Reads += s.readsOK
		p.FailedReads += s.readOps - s.readsOK
		p.Lines += s.lines() * s.exists
		p.CompressionRatio += s.lines() * s.exists * s.q
		p.RAOccupancy += s.lines() * s.exists * (1 - s.q) * pCollide
	}
	if p.Lines > 0 {
		p.CompressionRatio /= p.Lines
	}
	p.PredictorAccuracy = 1
	if !cfg.DisablePredictor && p.Reads > 0 {
		p.PredictorAccuracy = accNum / p.Reads
	}

	p.Writes = prefill
	p.BlocksWritten = prefill * (2 - pc0)
	p.Collisions = prefill * (1 - pc0) * pCollide
	for i := range shapes {
		c := &shapes[i]
		p.Writes += c.cm.WriteOps
		p.BlocksWritten += c.cm.WriteOps * (2 - c.pc)
		p.Collisions += c.cm.WriteOps * (1 - c.pc) * pCollide
	}
	if total := p.Reads + p.Writes; total > 0 {
		p.BandwidthSavings = 1 - (p.BlocksRead+p.BlocksWritten)/(2*total)
	}

	if cfg.Tier != nil {
		applyTier(&p, segs, tcfg, prefill, pc0, pCollide)
	}
	return p, nil
}

// horizon is the client's wall-clock run length in seconds.
func horizon(cm workload.ClientMoments) float64 {
	if cm.MeanRate <= 0 {
		return 1
	}
	return float64(cm.Events) / cm.MeanRate
}

// unwrittenAt is P(a line is still client-unwritten at time t): a
// stream writer at per-line intensity w has deterministically covered
// min(w·frac, 1) of its range frac of the way through its horizon;
// random writers Poissonize (e^{−w·frac}).
func unwrittenAt(writers []writerLoad, t float64) float64 {
	u := 1.0
	for _, w := range writers {
		frac := 1.0
		if t < w.h {
			frac = t / w.h
		}
		done := w.w * frac
		if w.det {
			u *= 1 - math.Min(done, 1)
		} else {
			u *= math.Exp(-done)
		}
	}
	return u
}

// avgUnwritten is the time average of unwrittenAt over a reader's
// horizon (midpoint rule — the integrand is piecewise smooth with at
// most one kink per writer, so a handful of points suffices).
func avgUnwritten(writers []writerLoad, h float64) float64 {
	if len(writers) == 0 {
		return 1
	}
	const steps = 32
	var sum float64
	for i := 0; i < steps; i++ {
		t := h * (float64(i) + 0.5) / steps
		sum += unwrittenAt(writers, t)
	}
	return sum / steps
}

// counterUp is the steady-state probability that a 2-bit saturating
// counter trained by a Bernoulli(q) compressibility stream predicts
// "compressed" (state ≥ 2): the birth–death chain has geometric
// stationary weights ρ^i with ρ = q/(1−q).
func counterUp(q float64) float64 {
	if q <= 0 {
		return 0
	}
	if q >= 1 {
		return 1
	}
	rho := q / (1 - q)
	r2 := rho * rho
	return (r2 + r2*rho) / (1 + rho + r2 + r2*rho)
}

// segAccuracy models COPR for reads landing on a segment whose page
// training stream (prefill + writes + read updates) carries compressed
// fraction qs and whose reads observe compressed fraction qr.
// LiPR-covered reads are exact (stable classes, trained by the storing
// write); PaPR's per-page 2-bit counter sits at counterUp(qs); the
// GI's counter follows the global stream (giUp); the default
// (everything disabled) predicts uncompressed.
func segAccuracy(qs, qr, covL, covP float64, giEnabled bool, giUp float64) float64 {
	up := counterUp(qs)
	paprAcc := up*qr + (1-up)*(1-qr)
	tailAcc := 1 - qr
	if giEnabled {
		tailAcc = giUp*qr + (1-giUp)*(1-qr)
	}
	return covL + (1-covL)*(covP*paprAcc+(1-covP)*tailAcc)
}

// liprEntries / paprEntries mirror copr's internal table geometry:
// 145 bits per LiPR entry (pred + seen vectors, tag, valid), 19 bits
// per PaPR entry (tag + 2-bit counter + valid).
func liprEntries(cfg copr.Config) int { return cfg.LiPRBytes * 8 / 145 }
func paprEntries(cfg copr.Config) int { return cfg.PaPRBytes * 8 / 19 }

// buildSegments partitions the line-address space at the prefill
// boundary and at geometric Zipf page-rank cuts, so each segment's
// lines share (approximately) one access probability per client.
func buildSegments(m workload.SpecMoments, shapes []clientShape) []segment {
	space := float64(m.AddrSpace)
	cuts := []float64{float64(m.Prefill), space}
	for i := range shapes {
		c := &shapes[i]
		if c.cum == nil {
			continue
		}
		pl := float64(c.cm.Addr.PageLines)
		npages := float64(len(c.cum) - 1)
		// Geometric rank ladder: 1, 2, 3, 4, 6, 9, 13, ... pages.
		for r := 1.0; r < npages; {
			cuts = append(cuts, r*pl)
			if n := math.Floor(r * 1.5); n > r {
				r = n
			} else {
				r++
			}
		}
		cuts = append(cuts, npages*pl) // tail past the last reachable page
	}
	sort.Float64s(cuts)
	segs := make([]segment, 0, len(cuts))
	prev := 0.0
	for _, c := range cuts {
		if c <= prev || c > space {
			continue
		}
		segs = append(segs, segment{lo: prev, hi: c, prefilled: c <= float64(m.Prefill)})
		prev = c
	}
	return segs
}

// applyTier rewrites the prediction's headline metrics to describe the
// far (compressed) memory of a two-tier lru backend — matching what a
// tiered engine's StatsSnapshot reports — and attaches the link model.
//
// Mechanics being modeled (see internal/tier): every write to a
// non-resident line write-allocates into the near tier; a full near
// tier demotes its LRU victim with a far writeback; client reads that
// miss near are served by a far read and then promoted. So far writes
// are exactly demotions, and far reads are exactly near read-misses.
func applyTier(p *Prediction, segs []segment, tcfg tier.Config, prefill, pc0, pCollide float64) {
	link := tcfg.Link
	t := &TierPrediction{}

	switch {
	case tcfg.NearLines == 0:
		// Zero-capacity near tier: bit-identical to the untiered engine.
		t.FarReads = p.Reads
		t.FarWrites = p.Writes
		t.FarAccesses = p.Reads + p.Writes
		t.FarLinkBlocks = p.BlocksRead + p.BlocksWritten
	case tcfg.NearLines < 0:
		// Unbounded near tier: every write installs near and nothing is
		// ever demoted, so any readable line is near-resident and the far
		// memory never sees traffic.
		t.NearHitRate = 1
		t.Promotions = p.Writes
		p.Lines, p.CompressionRatio, p.RAOccupancy = 0, 0, 0
		p.Reads, p.Writes = 0, 0
		p.BlocksRead, p.BlocksWritten = 0, 0
		p.BandwidthSavings, p.Collisions = 0, 0
		p.PredictorAccuracy = 1
	default:
		applyTierFinite(p, segs, float64(tcfg.NearLines), prefill, pc0, pCollide, t)
	}

	t.FarLinkBytes = t.FarLinkBlocks * 32 * link.FarBandwidthMult
	t.FarLatencyNs = t.FarAccesses * link.FarLatencyNs
	p.Tier = t
}

// applyTierFinite is the capacity-pressured case: Che's approximation
// over the unified access stream gives the near hit curve.
func applyTierFinite(p *Prediction, segs []segment, capacity, prefill, pc0, pCollide float64, t *TierPrediction) {
	// Prefill phase: P write-allocates in address order; once the near
	// tier fills, each install demotes the LRU victim (the oldest
	// prefill line). Residents at run start are the last min(P,C) lines.
	preResident := math.Min(prefill, capacity)
	demPre := math.Max(0, prefill-capacity)
	resLo, resHi := prefill-preResident, prefill

	// Run phase: per-segment access totals and distinct lines touched.
	var accTotal float64
	for si := range segs {
		accTotal += segs[si].readsOK + segs[si].writeOps
	}
	type segTier struct {
		acc, touched, pLine, resFrac float64
	}
	st := make([]segTier, len(segs))
	classes := make([]lruClass, 0, len(segs))
	for si := range segs {
		s := &segs[si]
		a := s.readsOK + s.writeOps
		if a <= 0 || accTotal <= 0 {
			continue
		}
		n := s.lines()
		touched := n * -math.Expm1(-a/n)
		overlap := math.Max(0, math.Min(s.hi, resHi)-math.Max(s.lo, resLo))
		st[si] = segTier{
			acc:     a,
			touched: touched,
			pLine:   a / touched / accTotal,
			resFrac: overlap / n,
		}
		classes = append(classes, lruClass{lines: touched, p: st[si].pLine})
	}
	ct := cheT(classes, capacity)

	// Misses: cold (first touch, unless pre-resident and still warm)
	// plus steady-state Che misses on re-references. Every miss
	// promotes; demotions absorb what free room cannot.
	var missTotal, farReads, farReadBlocks, farAccNum float64
	var touchedTotal, qTouchNum, occSteady, occCompressed float64
	for si := range segs {
		s := &segs[si]
		d := &st[si]
		if d.acc <= 0 {
			continue
		}
		h := cheHit(d.pLine, ct)
		misses := d.touched*(1-d.resFrac*h) + (d.acc-d.touched)*(1-h)
		missTotal += misses
		fr := misses * s.readsOK / d.acc
		farReads += fr
		farReadBlocks += fr * (2 - s.q*s.acc)
		farAccNum += fr * s.acc
		touchedTotal += d.touched
		qTouchNum += d.touched * s.q
		occSteady += d.touched * h
		occCompressed += d.touched * h * s.q
	}
	freeRoom := capacity - preResident
	demRun := math.Max(0, missTotal-freeRoom)
	qTouch := 0.0
	if touchedTotal > 0 {
		qTouch = qTouchNum / touchedTotal
	}
	// Demotion victims: stale prefill residents go first (coldest), then
	// the cold tail of client traffic.
	demFromPre := math.Min(demRun, preResident)
	demFromRun := demRun - demFromPre

	t.Promotions = prefill + missTotal
	t.Demotions = demPre + demRun
	t.FarReads = farReads
	t.FarWrites = t.Demotions
	t.FarAccesses = farReads + t.Demotions
	if accTotal > 0 {
		t.NearHitRate = 1 - missTotal/accTotal
	}

	farWriteBlocks := (demPre+demFromPre)*(2-pc0) + demFromRun*(2-qTouch)
	t.FarLinkBlocks = farReadBlocks + farWriteBlocks

	// Headline metrics now describe the far memory only.
	nearEnd := math.Min(capacity, preResident-demFromPre+occSteady)
	nearCompressed := math.Min(nearEnd, (preResident-demFromPre)*pc0+occCompressed)
	farLines := math.Max(0, p.Lines-nearEnd)
	farCompressed := math.Max(0, p.Lines*p.CompressionRatio-nearCompressed)
	p.Lines = farLines
	p.CompressionRatio = 0
	if farLines > 0 {
		p.CompressionRatio = math.Min(1, farCompressed/farLines)
	}
	p.RAOccupancy = math.Max(0, farLines-farCompressed) * pCollide
	p.Reads = farReads
	p.Writes = t.Demotions
	p.BlocksRead = farReadBlocks
	p.BlocksWritten = farWriteBlocks
	p.Collisions = ((demPre+demFromPre)*(1-pc0) + demFromRun*(1-qTouch)) * pCollide
	p.BandwidthSavings = 0
	if total := p.Reads + p.Writes; total > 0 {
		p.BandwidthSavings = 1 - (p.BlocksRead+p.BlocksWritten)/(2*total)
	}
	p.PredictorAccuracy = 1
	if farReads > 0 {
		p.PredictorAccuracy = farAccNum / farReads
	}
}
