package twin

// CostModel prices individual ops in 32-byte sub-rank block units —
// the per-op weights a load-aware router needs to balance work rather
// than op counts (ROADMAP #2 residue: the cluster's least-loaded
// policy treats a hostile-payload write, which always moves two blocks
// plus corrective traffic, the same as a compressed read that moves
// one). Derive it from a twin Prediction for the expected workload and
// hand OpCost to cluster.Config.
type CostModel struct {
	// ReadCost / WriteCost are the expected blocks moved per read and
	// per write on the modeled memory (the far memory when tiered —
	// the constrained resource a router should balance).
	ReadCost  float64 `json:"read_cost"`
	WriteCost float64 `json:"write_cost"`
	// FarPenalty is added to every op when a tiered prediction says
	// traffic spills over the far link: the miss fraction weighted as
	// two block-equivalents per far access (link latency dwarfs a
	// block move). Zero when untiered. The absolute scale cancels in
	// an argmin router; only relative weights matter.
	FarPenalty float64 `json:"far_penalty"`
}

// CostModel derives per-op routing costs from the prediction.
func (p Prediction) CostModel() CostModel {
	c := CostModel{ReadCost: 2, WriteCost: 2}
	if p.Reads > 0 {
		c.ReadCost = p.BlocksRead / p.Reads
	}
	if p.Writes > 0 {
		c.WriteCost = p.BlocksWritten / p.Writes
	}
	if p.Tier != nil {
		c.FarPenalty = 2 * (1 - p.Tier.NearHitRate)
	}
	return c
}

// OpCost prices one op; it satisfies cluster.Config's OpCost hook.
// A zero-value model prices every op at the uninformed default of two
// blocks, so an unpopulated CostModel degrades to op counting.
func (c CostModel) OpCost(write bool) float64 {
	cost := c.ReadCost
	if write {
		cost = c.WriteCost
	}
	if cost == 0 {
		cost = 2
	}
	return cost + c.FarPenalty
}
