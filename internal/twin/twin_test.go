package twin

import (
	"math"
	"testing"
	"time"

	"attache/internal/tier"
	"attache/internal/workload"
)

func mustSpec(t testing.TB, scenario string) workload.Spec {
	t.Helper()
	spec, err := workload.Preset(scenario, calibrationSeed, 1200)
	if err != nil {
		t.Fatalf("Preset(%s): %v", scenario, err)
	}
	return spec
}

func TestEvaluateValidation(t *testing.T) {
	spec := mustSpec(t, "streaming")
	if _, err := Evaluate(spec, Config{CIDBits: 0}); err == nil {
		t.Error("CIDBits 0 accepted")
	}
	if _, err := Evaluate(spec, Config{CIDBits: 16}); err == nil {
		t.Error("CIDBits 16 accepted")
	}
	if _, err := Evaluate(spec, Config{CIDBits: 15, Tier: &tier.Config{NearLines: 64, Policy: "freq"}}); err == nil {
		t.Error("non-lru tier policy accepted (only lru has a closed form)")
	}
	if _, err := Evaluate(workload.Spec{}, Config{CIDBits: 15}); err == nil {
		t.Error("empty spec accepted")
	}
}

// A tier with NearLines 0 is documented as bit-identical to the
// untiered engine; the twin must predict identical headline metrics.
func TestEvaluateZeroNearMatchesUntiered(t *testing.T) {
	spec := mustSpec(t, "write-burst")
	flat, err := Evaluate(spec, Config{CIDBits: 15})
	if err != nil {
		t.Fatal(err)
	}
	tiered, err := Evaluate(spec, Config{CIDBits: 15, Tier: &tier.Config{NearLines: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if tiered.Tier == nil {
		t.Fatal("tiered config produced no tier prediction")
	}
	if tiered.BandwidthSavings != flat.BandwidthSavings || tiered.BlocksRead != flat.BlocksRead ||
		tiered.CompressionRatio != flat.CompressionRatio || tiered.RAOccupancy != flat.RAOccupancy {
		t.Errorf("NearLines 0 diverges from untiered: %+v vs %+v", tiered, flat)
	}
	if tiered.Tier.NearHitRate != 0 {
		t.Errorf("NearLines 0 near hit rate = %v, want 0 (everything is far)", tiered.Tier.NearHitRate)
	}
}

// An unbounded near tier (NearLines < 0) never demotes and never
// misses: the far link must see zero traffic.
func TestEvaluateUnboundedNear(t *testing.T) {
	spec := mustSpec(t, "zipfian-hot-page")
	pred, err := Evaluate(spec, Config{CIDBits: 15, Tier: &tier.Config{NearLines: -1}})
	if err != nil {
		t.Fatal(err)
	}
	tp := pred.Tier
	if tp == nil {
		t.Fatal("no tier prediction")
	}
	if tp.NearHitRate != 1 || tp.FarReads != 0 || tp.FarWrites != 0 || tp.FarLinkBytes != 0 {
		t.Errorf("unbounded near leaked far traffic: %+v", tp)
	}
}

// Pressuring the near tier must monotonically increase predicted
// far-link traffic and the BLEM-only engine must predict exactly two
// blocks per access (savings 0).
func TestEvaluateMonotoneTierPressure(t *testing.T) {
	spec := mustSpec(t, "tiered-hotset")
	var prev float64
	for i, near := range []int64{-1, 4096, 1024, 256} {
		pred, err := Evaluate(spec, Config{CIDBits: 15, Tier: &tier.Config{NearLines: near}})
		if err != nil {
			t.Fatal(err)
		}
		if pred.Tier.FarLinkBytes < prev {
			t.Errorf("near=%d: far link bytes %v fell below looser config's %v", near, pred.Tier.FarLinkBytes, prev)
		}
		if i > 0 && pred.Tier.NearHitRate > 1 {
			t.Errorf("near=%d: hit rate %v > 1", near, pred.Tier.NearHitRate)
		}
		prev = pred.Tier.FarLinkBytes
	}
}

func TestEvaluateBLEMOnly(t *testing.T) {
	spec := mustSpec(t, "pointer-chasing")
	pred, err := Evaluate(spec, Config{CIDBits: 15, DisablePredictor: true})
	if err != nil {
		t.Fatal(err)
	}
	if pred.PredictorAccuracy != 1 {
		t.Errorf("BLEM accuracy = %v, want 1 (header read is always right)", pred.PredictorAccuracy)
	}
	if pred.Reads > 0 {
		wantBlocks := pred.Reads * 2
		if math.Abs(pred.BlocksRead-wantBlocks) > 1e-9 {
			t.Errorf("BLEM blocks read = %v, want exactly 2/read = %v", pred.BlocksRead, wantBlocks)
		}
	}
}

func TestCounterUp(t *testing.T) {
	cases := []struct{ q, want float64 }{
		{0, 0},
		{1, 1},
		{0.5, 0.5},
	}
	for _, c := range cases {
		if got := counterUp(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("counterUp(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Symmetry: counterUp(q) + counterUp(1-q) = 1 for the birth–death
	// chain, and monotonicity in q.
	prev := -1.0
	for q := 0.05; q < 1; q += 0.05 {
		up := counterUp(q)
		if s := up + counterUp(1-q); math.Abs(s-1) > 1e-9 {
			t.Errorf("counterUp(%v)+counterUp(%v) = %v, want 1", q, 1-q, s)
		}
		if up <= prev {
			t.Errorf("counterUp not increasing at q=%v", q)
		}
		prev = up
	}
}

func TestUnwrittenAt(t *testing.T) {
	// One deterministic writer covering its whole range by t=h.
	det := []writerLoad{{w: 1, h: 2, det: true}}
	if got := unwrittenAt(det, 2); got != 0 {
		t.Errorf("stream writer at full horizon: unwritten = %v, want 0", got)
	}
	if got := unwrittenAt(det, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("stream writer at half horizon: unwritten = %v, want 0.5", got)
	}
	// Poisson writer: e^{-w} at full horizon.
	poi := []writerLoad{{w: 2, h: 1}}
	if got := unwrittenAt(poi, 5); math.Abs(got-math.Exp(-2)) > 1e-12 {
		t.Errorf("poisson writer past horizon: unwritten = %v, want e^-2", got)
	}
	if got := avgUnwritten(nil, 1); got != 1 {
		t.Errorf("no writers: avgUnwritten = %v, want 1", got)
	}
	// The time average of a decaying quantity sits strictly between its
	// endpoint values.
	avg := avgUnwritten(poi, 1)
	if avg <= math.Exp(-2) || avg >= 1 {
		t.Errorf("avgUnwritten = %v, want in (e^-2, 1)", avg)
	}
}

func TestCheT(t *testing.T) {
	// Population fits: characteristic time is infinite, every class hits.
	classes := []lruClass{{lines: 100, p: 0.01}}
	if tc := cheT(classes, 200); !math.IsInf(tc, 1) {
		t.Errorf("fitting population: T = %v, want +Inf", tc)
	}
	if h := cheHit(0.01, math.Inf(1)); h != 1 {
		t.Errorf("hit at infinite T = %v, want 1", h)
	}
	// Under pressure, Che's fixed point conserves capacity:
	// Σ lines·(1−e^{−p·T}) = C.
	classes = []lruClass{
		{lines: 1000, p: 0.005},
		{lines: 3000, p: 0.0005},
	}
	const cap = 800
	tc := cheT(classes, cap)
	var occ float64
	for _, c := range classes {
		occ += c.lines * cheHit(c.p, tc)
	}
	if math.Abs(occ-cap) > 1e-6*cap {
		t.Errorf("Che occupancy = %v, want %v", occ, cap)
	}
	// Hotter classes hit more.
	if cheHit(0.005, tc) <= cheHit(0.0005, tc) {
		t.Error("hotter class does not hit more often")
	}
}

func TestClassesProfile(t *testing.T) {
	for _, kind := range workload.Kinds() {
		prof, ok := Classes()[kind]
		if !ok {
			t.Errorf("no class profile for payload kind %q", kind)
			continue
		}
		if prof.PCompress < 0 || prof.PCompress > 1 {
			t.Errorf("%s: PCompress %v out of [0,1]", kind, prof.PCompress)
		}
	}
	comp, hostile := Classes()[workload.PayloadCompressible], Classes()[workload.PayloadHostile]
	if comp.PCompress < 0.95 {
		t.Errorf("compressible class PCompress = %v, want ≈1", comp.PCompress)
	}
	if hostile.PCompress > 0.05 {
		t.Errorf("hostile class PCompress = %v, want ≈0", hostile.PCompress)
	}
}

func TestCostModel(t *testing.T) {
	spec := mustSpec(t, "compression-hostile")
	pred, err := Evaluate(spec, Config{CIDBits: 15})
	if err != nil {
		t.Fatal(err)
	}
	cm := pred.CostModel()
	if cm.ReadCost < 1 || cm.ReadCost > 2 {
		t.Errorf("ReadCost %v out of [1,2]", cm.ReadCost)
	}
	if cm.WriteCost < 1 || cm.WriteCost > 2 {
		t.Errorf("WriteCost %v out of [1,2]", cm.WriteCost)
	}
	if cm.FarPenalty != 0 {
		t.Errorf("untiered FarPenalty = %v, want 0", cm.FarPenalty)
	}
	if cm.OpCost(false) != cm.ReadCost || cm.OpCost(true) != cm.WriteCost {
		t.Error("OpCost does not dispatch on op direction")
	}
	// Hostile payloads compress rarely: writes should cost nearly the
	// full two blocks.
	if cm.WriteCost < 1.8 {
		t.Errorf("hostile WriteCost = %v, want ≈2", cm.WriteCost)
	}
	var zero CostModel
	if zero.OpCost(false) != 2 || zero.OpCost(true) != 2 {
		t.Error("zero-value CostModel must default to 2 blocks/op")
	}
}

// The acceptance bound: one twin evaluation of a (spec, config) point
// must stay under a millisecond. Measured directly (10-run average)
// in addition to BenchmarkTwinEvaluate so plain `go test` enforces it.
func TestEvaluateUnderMillisecond(t *testing.T) {
	spec := mustSpec(t, "tiered-hotset")
	cfg := Config{CIDBits: 15, Tier: &tier.Config{NearLines: 1024}}
	if _, err := Evaluate(spec, cfg); err != nil { // warm the class probe
		t.Fatal(err)
	}
	const runs = 10
	start := time.Now()
	for i := 0; i < runs; i++ {
		if _, err := Evaluate(spec, cfg); err != nil {
			t.Fatal(err)
		}
	}
	avg := time.Since(start) / runs
	if avg > time.Millisecond {
		t.Errorf("Evaluate averaged %v per point, want < 1ms", avg)
	}
}

func BenchmarkTwinEvaluate(b *testing.B) {
	spec := mustSpec(b, "tiered-hotset")
	cfg := Config{CIDBits: 15, Tier: &tier.Config{NearLines: 1024}}
	if _, err := Evaluate(spec, cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(spec, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
