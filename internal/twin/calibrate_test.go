package twin

import (
	"context"
	"flag"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "regenerate testdata/calibration.json from the observed sweep")

const bandsFile = "calibration.json"

// TestCalibration is the twin's accuracy contract: it runs the full
// DefaultSweep (every preset scenario × every stress config) through
// both the closed-form model and the real simulator, scores per-metric
// MAPE and Pearson correlation, and enforces the committed bands.
// After an intentional model or engine change, regenerate with
//
//	go test ./internal/twin -run TestCalibration -update
//
// Regeneration still fails if the observed calibration violates the
// hard acceptance ceilings (MAPE ≤ 15%, Pearson ≥ 0.95 for the
// paper-level metrics), so -update cannot launder a real regression.
func TestCalibration(t *testing.T) {
	pts := DefaultSweep(0)
	events := pts[0].Events
	obs, err := Calibrate(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(obs)
	for name, s := range sum {
		t.Logf("%-20s n=%d MAPE=%.4f Pearson=%.4f", name, s.N, s.MAPE, s.Pearson)
	}

	path := filepath.Join("testdata", bandsFile)
	if *update {
		bands, err := DeriveBands(sum, events)
		if err != nil {
			t.Fatalf("observed calibration misses a hard ceiling; not writing bands: %v", err)
		}
		if err := WriteBands(path, bands); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}

	bands, err := LoadBands(path)
	if err != nil {
		t.Fatalf("load committed bands (regenerate with -update): %v", err)
	}
	if bands.Events != events {
		t.Errorf("committed bands were derived at %d events but the sweep ran %d", bands.Events, events)
	}
	for _, err := range CheckBands(sum, bands) {
		t.Error(err)
	}

	// The acceptance bound on model cost, measured on the sweep itself:
	// the twin must evaluate each point in well under a millisecond.
	var worst time.Duration
	for _, o := range obs {
		if d := time.Duration(o.TwinNanos); d > worst {
			worst = d
		}
	}
	if worst > time.Millisecond {
		t.Errorf("slowest twin evaluation took %v, want < 1ms", worst)
	}
}

// Committed bands must never be looser than the hard ceilings — a
// hand-edited file cannot widen the acceptance contract.
func TestCommittedBandsWithinCeilings(t *testing.T) {
	bands, err := LoadBands(filepath.Join("testdata", bandsFile))
	if err != nil {
		t.Fatalf("load committed bands (regenerate with -update): %v", err)
	}
	for name, ceil := range HardCeilings.MaxMAPE {
		got, ok := bands.MaxMAPE[name]
		if !ok {
			t.Errorf("committed bands missing MAPE for %s", name)
			continue
		}
		if got > ceil {
			t.Errorf("committed MAPE band for %s = %v exceeds hard ceiling %v", name, got, ceil)
		}
	}
	for name, floor := range HardCeilings.MinPearson {
		got, ok := bands.MinPearson[name]
		if !ok {
			t.Errorf("committed bands missing Pearson for %s", name)
			continue
		}
		if got < floor {
			t.Errorf("committed Pearson band for %s = %v below hard floor %v", name, got, floor)
		}
	}
}

func TestDeriveBandsRejectsRegression(t *testing.T) {
	bad := map[string]MetricSummary{
		"compression_ratio": {N: 30, MAPE: 0.5, Pearson: 0.99},
	}
	if _, err := DeriveBands(bad, 1200); err == nil {
		t.Error("DeriveBands accepted a MAPE above the hard ceiling")
	}
	bad = map[string]MetricSummary{
		"compression_ratio": {N: 30, MAPE: 0.01, Pearson: 0.5},
	}
	if _, err := DeriveBands(bad, 1200); err == nil {
		t.Error("DeriveBands accepted a Pearson below the hard floor")
	}
	if _, err := DeriveBands(map[string]MetricSummary{"bogus_metric": {}}, 1200); err == nil {
		t.Error("DeriveBands accepted a metric with no hard ceiling")
	}
}

func TestCheckBandsReportsViolations(t *testing.T) {
	bands := Bands{
		MaxMAPE:    map[string]float64{"m": 0.1},
		MinPearson: map[string]float64{"m": 0.9},
	}
	sum := map[string]MetricSummary{"m": {N: 5, MAPE: 0.2, Pearson: 0.5}}
	if errs := CheckBands(sum, bands); len(errs) != 2 {
		t.Errorf("got %d violations, want 2 (MAPE and Pearson): %v", len(errs), errs)
	}
	sum = map[string]MetricSummary{"m": {N: 5, MAPE: 0.05, Pearson: 0.95}}
	if errs := CheckBands(sum, bands); len(errs) != 0 {
		t.Errorf("clean summary reported violations: %v", errs)
	}
	sum = map[string]MetricSummary{"unbanded": {N: 5}}
	if errs := CheckBands(sum, bands); len(errs) != 2 {
		t.Errorf("unbanded metric: got %d violations, want 2 (no bands committed): %v", len(errs), errs)
	}
}

func TestPearsonDegenerateCases(t *testing.T) {
	flat := []float64{3, 3, 3}
	rising := []float64{1, 2, 3}
	if r := pearson(flat, flat); r != 1 {
		t.Errorf("flat vs flat: r = %v, want 1", r)
	}
	if r := pearson(flat, rising); r != 0 {
		t.Errorf("flat vs rising: r = %v, want 0", r)
	}
	if r := pearson(rising, rising); r < 0.999999 {
		t.Errorf("identical series: r = %v, want 1", r)
	}
	falling := []float64{3, 2, 1}
	if r := pearson(rising, falling); r > -0.999999 {
		t.Errorf("reversed series: r = %v, want -1", r)
	}
}
