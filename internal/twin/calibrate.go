package twin

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"attache/internal/core"
	"attache/internal/loadgen"
	"attache/internal/shard"
	"attache/internal/tier"
	"attache/internal/workload"
)

// This file is the calibration harness: it runs the twin and the real
// simulator over the same (scenario, config) sweep and scores how well
// the closed forms track the measured metrics — per-metric MAPE and
// Pearson correlation. The committed tolerance bands live under
// testdata/calibration.json; the calibration test enforces them and CI
// runs it as the twin-calibration job.

// Point is one (scenario, config) pair in the calibration sweep.
type Point struct {
	Scenario string `json:"scenario"`
	Events   int    `json:"events"`
	Seed     int64  `json:"seed"`
	Label    string `json:"label"`
	Config   Config `json:"config"`
}

// Metrics maps metric name → value. The calibrated metrics are
// compression_ratio, bandwidth_savings, predictor_accuracy,
// ra_occupancy, and (tiered points only) far_link_bytes.
type Metrics map[string]float64

// Observation pairs the twin's prediction with the simulator's
// measurement for one point.
type Observation struct {
	Label     string  `json:"label"`
	Twin      Metrics `json:"twin"`
	Sim       Metrics `json:"sim"`
	TwinNanos int64   `json:"twin_nanos"`
}

// MetricSummary scores one metric across the sweep.
type MetricSummary struct {
	N       int     `json:"n"`
	MAPE    float64 `json:"mape"`
	Pearson float64 `json:"pearson"`
}

// Bands is the committed calibration contract: per-metric MAPE
// ceilings and Pearson floors. Regenerate with
// `go test ./internal/twin -run TestCalibration -update` after an
// intentional model or engine change.
type Bands struct {
	Description string             `json:"description"`
	Events      int                `json:"events"`
	MaxMAPE     map[string]float64 `json:"max_mape"`
	MinPearson  map[string]float64 `json:"min_pearson"`
}

// HardCeilings are the acceptance bounds the bands themselves may never
// exceed, even when regenerated: the paper-level metrics must calibrate
// to ≤15% MAPE and ≥0.95 Pearson; the count-like metrics (collision
// occupancy, far-link bytes) are noisier — small expected counts and
// LRU transients — and get documented looser bounds.
var HardCeilings = struct {
	MaxMAPE    map[string]float64
	MinPearson map[string]float64
}{
	MaxMAPE: map[string]float64{
		"compression_ratio":  0.15,
		"bandwidth_savings":  0.15,
		"predictor_accuracy": 0.15,
		"ra_occupancy":       0.40,
		"far_link_bytes":     0.40,
	},
	MinPearson: map[string]float64{
		"compression_ratio":  0.95,
		"bandwidth_savings":  0.95,
		"predictor_accuracy": 0.90,
		"ra_occupancy":       0.90,
		"far_link_bytes":     0.90,
	},
}

// metricFloor is the absolute error floor per metric: relative error is
// |twin−sim| / max(|sim|, floor), so near-zero measurements (an
// expected collision count of 0.4, a ratio of 0) do not explode MAPE.
func metricFloor(name string) float64 {
	switch name {
	case "ra_occupancy":
		return 8 // lines; collisions are rare events at wide CIDs
	case "far_link_bytes":
		return 64 * 1024 // two thousand blocks over a whole run
	default:
		return 0.02 // ratio-valued metrics
	}
}

// DefaultSweep is the committed calibration grid: every preset scenario
// crossed with engine configurations that stress each closed form —
// the paper default, a collision-heavy narrow CID at four shards, a
// PaPR-only predictor (exercises the accuracy model below LiPR's
// perfect regime), BLEM-only, and a capacity-pressured lru tier.
func DefaultSweep(events int) []Point {
	if events <= 0 {
		events = DefaultEvents
	}
	paprOnly := core.DefaultOptions().Predictor
	paprOnly.EnableLiPR = false
	configs := []struct {
		label string
		cfg   Config
	}{
		{"base", Config{Shards: 2, CIDBits: 15}},
		{"cid4-s4", Config{Shards: 4, CIDBits: 4}},
		{"papr", Config{Shards: 2, CIDBits: 15, Predictor: paprOnly}},
		{"blem", Config{Shards: 2, CIDBits: 15, DisablePredictor: true}},
		{"tier-lru", Config{Shards: 2, CIDBits: 15, Tier: &tierLRU}},
	}
	var pts []Point
	for _, scen := range workload.Names() {
		for _, c := range configs {
			pts = append(pts, Point{
				Scenario: scen,
				Events:   events,
				Seed:     calibrationSeed,
				Label:    scen + "/" + c.label,
				Config:   c.cfg,
			})
		}
	}
	return pts
}

// calibrationSeed pins the sweep's workload seed: calibration compares
// expectations against one realization, so the realization must be
// fixed for the committed bands to be meaningful.
const calibrationSeed = 0x7717

// DefaultEvents is the per-client event budget the committed bands were
// derived at; DefaultSweep(0) uses it.
const DefaultEvents = 1200

// tierLRU is the sweep's tiered configuration: a near tier of 1/16th
// of the largest scenario's address space, enough pressure that Che's
// approximation (not just cold misses) carries the prediction.
var tierLRU = tier.Config{NearLines: 1024}

// RunPoint evaluates the twin and runs the simulator for one point.
func RunPoint(ctx context.Context, pt Point) (Observation, error) {
	spec, err := workload.Preset(pt.Scenario, pt.Seed, pt.Events)
	if err != nil {
		return Observation{}, err
	}
	start := time.Now()
	pred, err := Evaluate(spec, pt.Config)
	twinNanos := time.Since(start).Nanoseconds()
	if err != nil {
		return Observation{}, fmt.Errorf("twin %s: %w", pt.Label, err)
	}
	sim, err := simulate(ctx, spec, pt.Config)
	if err != nil {
		return Observation{}, fmt.Errorf("sim %s: %w", pt.Label, err)
	}
	obs := Observation{
		Label:     pt.Label,
		Twin:      predictionMetrics(pred),
		Sim:       sim,
		TwinNanos: twinNanos,
	}
	return obs, nil
}

// Calibrate runs the whole sweep.
func Calibrate(ctx context.Context, pts []Point) ([]Observation, error) {
	Classes() // pay the one-time codec probe outside the timed region
	obs := make([]Observation, 0, len(pts))
	for _, pt := range pts {
		o, err := RunPoint(ctx, pt)
		if err != nil {
			return nil, err
		}
		obs = append(obs, o)
	}
	return obs, nil
}

// predictionMetrics projects a Prediction onto the calibrated metrics.
func predictionMetrics(p Prediction) Metrics {
	m := Metrics{
		"compression_ratio":  p.CompressionRatio,
		"bandwidth_savings":  p.BandwidthSavings,
		"predictor_accuracy": p.PredictorAccuracy,
		"ra_occupancy":       p.RAOccupancy,
	}
	if p.Tier != nil {
		m["far_link_bytes"] = p.Tier.FarLinkBytes
	}
	return m
}

// simulate runs spec on a real engine under the point's configuration —
// the same deterministic regime the scenario goldens pin (sequential
// submission, spec-seeded engine).
func simulate(ctx context.Context, spec workload.Spec, cfg Config) (Metrics, error) {
	events, err := workload.Compose(spec)
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions()
	opts.Seed = spec.Seed
	opts.CIDBits = cfg.CIDBits
	opts.DisablePredictor = cfg.DisablePredictor
	if cfg.Predictor.MemorySize != 0 {
		opts.Predictor = cfg.Predictor
	}
	eng, err := shard.New(opts, shard.Config{Shards: cfg.Shards, Tier: cfg.Tier})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	lcfg := loadgen.Config{
		Seed:           spec.Seed,
		Concurrency:    1,
		AddrSpace:      spec.AddrSpace,
		Prefill:        spec.Prefill,
		PrefillPayload: workload.PrefillPayload(spec),
	}
	if _, err := loadgen.RunEvents(ctx, eng, lcfg, events); err != nil {
		return nil, err
	}
	snap := eng.StatsSnapshot()
	m := Metrics{
		"compression_ratio":  snap.Total.CompressedLineRatio(),
		"bandwidth_savings":  snap.Total.BandwidthSavings(),
		"predictor_accuracy": snap.Total.PredictionAccuracy,
		"ra_occupancy":       float64(snap.Total.RAOccupancy),
	}
	if snap.Tiers != nil {
		m["far_link_bytes"] = snap.Tiers.FarLinkBytes
	}
	return m, nil
}

// Summarize scores every metric present in the observations.
func Summarize(obs []Observation) map[string]MetricSummary {
	names := map[string]bool{}
	for _, o := range obs {
		for k := range o.Sim {
			names[k] = true
		}
	}
	out := make(map[string]MetricSummary, len(names))
	for name := range names {
		var tw, sm []float64
		for _, o := range obs {
			sv, okS := o.Sim[name]
			tv, okT := o.Twin[name]
			if okS && okT {
				tw = append(tw, tv)
				sm = append(sm, sv)
			}
		}
		var apeSum float64
		for i := range tw {
			apeSum += math.Abs(tw[i]-sm[i]) / math.Max(math.Abs(sm[i]), metricFloor(name))
		}
		out[name] = MetricSummary{
			N:       len(tw),
			MAPE:    apeSum / float64(len(tw)),
			Pearson: pearson(tw, sm),
		}
	}
	return out
}

// pearson is the sample correlation, with the degenerate cases pinned:
// two flat series agree perfectly (r = 1); one flat series cannot
// correlate (r = 0).
func pearson(x, y []float64) float64 {
	n := float64(len(x))
	if n < 2 {
		return 1
	}
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var sxx, syy, sxy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	const eps = 1e-12
	if sxx < eps && syy < eps {
		return 1
	}
	if sxx < eps || syy < eps {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// CheckBands verifies a summary against the committed bands, returning
// every violation (nil when calibrated).
func CheckBands(sum map[string]MetricSummary, b Bands) []error {
	var errs []error
	names := make([]string, 0, len(sum))
	for name := range sum {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := sum[name]
		maxM, ok := b.MaxMAPE[name]
		if !ok {
			errs = append(errs, fmt.Errorf("metric %s has no committed MAPE band", name))
		} else if s.MAPE > maxM {
			errs = append(errs, fmt.Errorf("metric %s: MAPE %.4f exceeds band %.4f", name, s.MAPE, maxM))
		}
		minP, ok := b.MinPearson[name]
		if !ok {
			errs = append(errs, fmt.Errorf("metric %s has no committed Pearson band", name))
		} else if s.Pearson < minP {
			errs = append(errs, fmt.Errorf("metric %s: Pearson %.4f below band %.4f", name, s.Pearson, minP))
		}
	}
	return errs
}

// DeriveBands turns an observed summary into committable bands with
// headroom (×1.3 MAPE, ×0.99 Pearson), clamped to the hard acceptance
// ceilings. It fails when the observed calibration misses a ceiling:
// regeneration must never launder a real regression into the contract.
func DeriveBands(sum map[string]MetricSummary, events int) (Bands, error) {
	b := Bands{
		Description: "Calibration contract: twin-vs-simulator MAPE ceilings and Pearson floors over the DefaultSweep grid. Regenerate with: go test ./internal/twin -run TestCalibration -update",
		Events:      events,
		MaxMAPE:     map[string]float64{},
		MinPearson:  map[string]float64{},
	}
	for name, s := range sum {
		ceilM, ok := HardCeilings.MaxMAPE[name]
		if !ok {
			return b, fmt.Errorf("metric %s has no hard MAPE ceiling", name)
		}
		floorP, ok := HardCeilings.MinPearson[name]
		if !ok {
			return b, fmt.Errorf("metric %s has no hard Pearson floor", name)
		}
		if s.MAPE > ceilM {
			return b, fmt.Errorf("metric %s: observed MAPE %.4f exceeds hard ceiling %.4f", name, s.MAPE, ceilM)
		}
		if s.Pearson < floorP {
			return b, fmt.Errorf("metric %s: observed Pearson %.4f below hard floor %.4f", name, s.Pearson, floorP)
		}
		b.MaxMAPE[name] = math.Min(ceilM, roundUp(s.MAPE*1.3+0.005, 3))
		b.MinPearson[name] = math.Max(floorP, roundDown(s.Pearson*0.99, 3))
	}
	return b, nil
}

func roundUp(v float64, digits int) float64 {
	scale := math.Pow(10, float64(digits))
	return math.Ceil(v*scale) / scale
}

func roundDown(v float64, digits int) float64 {
	scale := math.Pow(10, float64(digits))
	return math.Floor(v*scale) / scale
}

// LoadBands reads a committed bands file.
func LoadBands(path string) (Bands, error) {
	var b Bands
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// WriteBands writes a bands file with a trailing newline.
func WriteBands(path string, b Bands) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
