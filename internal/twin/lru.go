package twin

import "math"

// Che's approximation for LRU hit ratios under the independent
// reference model: a cache of C lines behaves as if every line stays
// resident for a fixed characteristic time T (measured in accesses),
// so a line referenced with per-access probability p hits with
// probability 1 − e^{−pT}. T solves Σ_i (1 − e^{−p_i T}) = C over the
// distinct lines. See DESIGN.md §16 for why this fits the near tier:
// the lru policy promotes on every access and evicts the LRU victim,
// which is exactly the cache Che models.

// lruClass is one group of statistically identical lines: `lines`
// distinct addresses, each referenced with per-access probability `p`.
type lruClass struct {
	lines float64
	p     float64
}

// cheT solves the characteristic-time fixed point by bisection on T.
// Returns +Inf when the whole population fits (no capacity pressure).
func cheT(classes []lruClass, capacity float64) float64 {
	var total float64
	for _, c := range classes {
		total += c.lines
	}
	if total <= capacity || capacity <= 0 {
		return math.Inf(1)
	}
	occupied := func(t float64) float64 {
		var o float64
		for _, c := range classes {
			if c.p <= 0 {
				continue
			}
			o += c.lines * -math.Expm1(-c.p*t)
		}
		return o
	}
	// Occupancy is monotone in T; bracket then bisect. The upper bound
	// grows until occupancy exceeds capacity (or the population is so
	// cold it never fills within any horizon we care about).
	lo, hi := 0.0, 1.0
	for i := 0; i < 200 && occupied(hi) < capacity; i++ {
		hi *= 2
	}
	if occupied(hi) < capacity {
		return math.Inf(1)
	}
	for i := 0; i < 64; i++ {
		mid := (lo + hi) / 2
		if occupied(mid) < capacity {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// cheHit reports the steady-state hit probability of a line referenced
// with per-access probability p under characteristic time T.
func cheHit(p, t float64) float64 {
	if math.IsInf(t, 1) {
		return 1
	}
	if p <= 0 {
		return 0
	}
	return -math.Expm1(-p * t)
}
