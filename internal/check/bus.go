package check

import "attache/internal/sim"

// BusAudit asserts one DRAM channel's conservation and timing
// invariants:
//
//   - every submitted request is eventually issued (checked at drain);
//   - issued never exceeds submitted (queue accounting cannot go
//     negative);
//   - per-sub-rank data-bus bursts never overlap: each burst must start
//     at or after the previous burst on that sub-rank ended.
//
// The audit is pure observation: the channel reports what it decided and
// the audit validates, so enabling it cannot perturb scheduling.
type BusAudit struct {
	rec       *Recorder
	id        int // channel id, for diagnostics
	busEnd    [2]sim.Time
	submitted uint64
	issued    uint64
}

// NewBusAudit builds an audit for channel id reporting into rec.
func NewBusAudit(rec *Recorder, id int) *BusAudit {
	return &BusAudit{rec: rec, id: id}
}

// OnSubmit records one request entering the channel queues.
func (a *BusAudit) OnSubmit() { a.submitted++ }

// OnBurst validates one data-bus burst on sub-rank sub, for the request
// addressed by row/col (folded into the diagnostic address).
func (a *BusAudit) OnBurst(sub int, start, end sim.Time, addr uint64, now sim.Time) {
	if start < a.busEnd[sub] {
		a.rec.Failf(addr, now,
			"channel %d sub-rank %d data-bus overlap: burst starts at %d before previous ends at %d",
			a.id, sub, start, a.busEnd[sub])
	}
	if end < start {
		a.rec.Failf(addr, now, "channel %d sub-rank %d burst ends (%d) before it starts (%d)", a.id, sub, end, start)
	}
	a.busEnd[sub] = end
}

// OnIssue records one request leaving the queues for service.
func (a *BusAudit) OnIssue(addr uint64, now sim.Time) {
	a.issued++
	if a.issued > a.submitted {
		a.rec.Failf(addr, now,
			"channel %d issued more requests (%d) than were submitted (%d)", a.id, a.issued, a.submitted)
	}
}

// CheckDrained validates end-of-simulation conservation: with empty
// queues, every submitted request must have been issued.
func (a *BusAudit) CheckDrained(queuedReads, queuedWrites int, now sim.Time) {
	if queuedReads < 0 || queuedWrites < 0 {
		a.rec.Failf(0, now, "channel %d negative queue occupancy (reads=%d writes=%d)", a.id, queuedReads, queuedWrites)
	}
	inQueue := uint64(queuedReads + queuedWrites)
	if a.issued+inQueue != a.submitted {
		a.rec.Failf(0, now,
			"channel %d request conservation: submitted=%d issued=%d still-queued=%d",
			a.id, a.submitted, a.issued, inQueue)
	}
}
