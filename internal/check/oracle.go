package check

import (
	"bytes"

	"attache/internal/copr"
	"attache/internal/core"
	"attache/internal/sim"
)

// DataModel supplies the actual bytes of every line, so the oracle can
// run the real compression/scrambling/BLEM machinery instead of the
// timing simulator's boolean classification. trace.DataModel implements
// it; the experiment harness's region router forwards to it.
type DataModel interface {
	LineInto(lineAddr uint64, buf []byte) []byte
}

// Oracle is the differential oracle for one Attaché memory system. The
// timing simulator models Attaché with booleans (compressed? collided?);
// the oracle shadows every request with the functional framework — the
// line's real bytes are compressed, scrambled, and blended through BLEM —
// and with an ideal oracle-metadata memory that stores the raw bytes.
// After every read the two flows must agree bit-for-bit.
//
// It also mirrors the timing simulator's COPR with its own predictor,
// replaying exactly the Predict/Update/Train sequence the simulator is
// specified to perform. Any dropped or reordered training call in the
// simulator makes the two predictors disagree on a later prediction,
// which the oracle reports with the (address, cycle) of that read.
//
// Note on collisions: the timing simulator's LineModel.CIDCollides is a
// probability-matched hash, deliberately not the functional BLEM's
// scrambled-data collision (DESIGN.md §4), so the oracle validates each
// flow against its own ground truth and never equates the two collision
// bits.
type Oracle struct {
	rec *Recorder
	dm  DataModel
	// fw is the Attaché flow under test. Its own predictor is disabled:
	// the shadow predictor below mirrors the *simulator's* training
	// sequence instead, which is the thing being validated.
	fw     *core.Framework
	shadow *copr.Predictor

	// stored holds the Attaché-side physical images; ideal holds the
	// oracle-metadata flow's raw lines. Both are materialized lazily on
	// first access (DRAM content before the first write is unobservable
	// by software, so the first access defines it).
	stored map[uint64]core.StoredLine
	ideal  map[uint64][core.LineSize]byte

	// collided tracks every address whose store collided with the CID,
	// for the Replacement-Area conservation invariant: RA bits in use
	// must exactly equal observed collisions.
	collided map[uint64]bool

	buf [core.LineSize]byte // scratch for DataModel.LineInto
}

// NewOracle builds an oracle. coprCfg must be the same predictor
// configuration the simulated system runs; seed must be the framework
// seed (CID value and scrambler key derive from it).
func NewOracle(rec *Recorder, dm DataModel, cidBits int, seed int64, coprCfg copr.Config) (*Oracle, error) {
	fw, err := core.New(core.Options{CIDBits: cidBits, Seed: seed, DisablePredictor: true})
	if err != nil {
		return nil, err
	}
	return &Oracle{
		rec:      rec,
		dm:       dm,
		fw:       fw,
		shadow:   copr.New(coprCfg),
		stored:   make(map[uint64]core.StoredLine),
		ideal:    make(map[uint64][core.LineSize]byte),
		collided: make(map[uint64]bool),
	}, nil
}

// Recorder exposes the failure recorder the oracle reports into.
func (o *Oracle) Recorder() *Recorder { return o.rec }

// ensure materializes the stored image and ideal copy of lineAddr on
// first touch, running the full Attaché store path on the line's real
// bytes.
func (o *Oracle) ensure(lineAddr uint64, now sim.Time) {
	if _, ok := o.stored[lineAddr]; ok {
		return
	}
	o.store(lineAddr, now)
}

// store runs the Attaché write flow and the ideal write flow on the same
// line content.
func (o *Oracle) store(lineAddr uint64, now sim.Time) {
	line := o.dm.LineInto(lineAddr, o.buf[:])
	st, _, err := o.fw.Store(lineAddr, line)
	if err != nil {
		o.rec.Failf(lineAddr, now, "attaché store failed: %v", err)
		return
	}
	o.stored[lineAddr] = st
	var raw [core.LineSize]byte
	copy(raw[:], line)
	o.ideal[lineAddr] = raw
	if st.Collision {
		o.collided[lineAddr] = true
	}
	// Conservation: every Replacement-Area bit in use corresponds to
	// exactly one observed collision insert, and vice versa.
	if got, want := o.fw.Blem.ReplacementArea().Len(), len(o.collided); got != want {
		o.rec.Failf(lineAddr, now, "replacement-area bits in use (%d) != observed CID collisions (%d)", got, want)
	}
}

// OnWrite shadows one simulated Attaché write: it stores through both
// flows, asserts the functional compression outcome matches the timing
// model's ground truth, and trains the shadow predictor exactly as the
// simulator's write path is specified to (train with the known outcome;
// no prediction is consulted).
func (o *Oracle) OnWrite(lineAddr uint64, simCompressed bool, now sim.Time) {
	o.store(lineAddr, now)
	if st, ok := o.stored[lineAddr]; ok && st.Compressed != simCompressed {
		o.rec.Failf(lineAddr, now,
			"compression outcome diverges on write: functional store compressed=%v, timing model compressed=%v",
			st.Compressed, simCompressed)
	}
	o.shadow.Train(lineAddr*core.LineSize, simCompressed)
}

// OnReadIssue shadows the prediction point of one simulated Attaché
// read. simPredicted and simActual are the values the simulator just
// computed; the oracle asserts they match its shadow predictor and the
// functional ground truth, then runs the full read flow of both systems
// and compares the returned bytes bit-for-bit.
func (o *Oracle) OnReadIssue(lineAddr uint64, simPredicted, simActual bool, now sim.Time) {
	o.ensure(lineAddr, now)

	// BLEM ground truth vs the timing model's classification.
	st := o.stored[lineAddr]
	if st.Compressed != simActual {
		o.rec.Failf(lineAddr, now,
			"compression outcome diverges on read: functional BLEM stored compressed=%v, timing model compressed=%v",
			st.Compressed, simActual)
	}

	// The shadow predictor replays the simulator's specified training
	// sequence; its prediction must therefore equal the simulator's.
	shadowPred, _ := o.shadow.Predict(lineAddr * core.LineSize)
	if shadowPred != simPredicted {
		o.rec.Failf(lineAddr, now,
			"COPR prediction diverges: simulator predicted compressed=%v, oracle predictor says %v (training sequence drift)",
			simPredicted, shadowPred)
	}

	// Attaché flow vs ideal oracle-metadata flow, bit for bit.
	got, tr, err := o.fw.Load(lineAddr, st)
	if err != nil {
		o.rec.Failf(lineAddr, now, "attaché read flow failed: %v", err)
		return
	}
	want := o.ideal[lineAddr]
	if !bytes.Equal(got, want[:]) {
		o.rec.Failf(lineAddr, now,
			"returned line data diverges from ideal oracle-metadata system (first differing byte %d)",
			firstDiff(got, want[:]))
		return
	}
	// COPR-corrected outcome: after BLEM reveals the truth, the
	// controller's view must equal ground truth regardless of the guess.
	if tr.ActualCompressed != st.Compressed {
		o.rec.Failf(lineAddr, now,
			"BLEM ground truth diverges from stored outcome: load saw compressed=%v, store produced %v",
			tr.ActualCompressed, st.Compressed)
	}
}

// OnReadComplete shadows the training point of one simulated Attaché
// read: the simulator updates COPR when the data (and with it BLEM's
// ground truth) returns.
func (o *Oracle) OnReadComplete(lineAddr uint64, simActual bool, now sim.Time) {
	o.shadow.Update(lineAddr*core.LineSize, simActual)
}

// Finish runs the end-of-simulation conservation checks.
func (o *Oracle) Finish(now sim.Time) {
	if got, want := o.fw.Blem.ReplacementArea().Len(), len(o.collided); got != want {
		o.rec.Failf(0, now, "replacement-area bits in use (%d) != observed CID collisions (%d)", got, want)
	}
}

// CorruptStoredBit flips one bit of the stored Attaché image of
// lineAddr — block 0 carries the BLEM header in its first two bytes.
// This is the fault-injection hook for the mutation tests that prove the
// oracle has teeth; it has no other callers.
func (o *Oracle) CorruptStoredBit(lineAddr uint64, block, bit int) bool {
	st, ok := o.stored[lineAddr]
	if !ok {
		return false
	}
	st.Blocks[block][bit/8] ^= 1 << uint(bit%8)
	o.stored[lineAddr] = st
	return true
}

// Lines reports how many distinct lines the oracle has materialized.
func (o *Oracle) Lines() int { return len(o.stored) }

func firstDiff(a, b []byte) int {
	for i := range a {
		if i >= len(b) || a[i] != b[i] {
			return i
		}
	}
	return len(a)
}
