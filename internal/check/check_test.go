package check

import (
	"strings"
	"testing"
)

func TestRecorderKeepsFirstFailure(t *testing.T) {
	var r Recorder
	if !r.OK() || r.Err() != nil {
		t.Fatal("fresh recorder must be clean")
	}
	r.Failf(0xabc, 120, "first: %d", 1)
	r.Failf(0xdef, 240, "second: %d", 2)
	if r.OK() {
		t.Fatal("recorder must report failure")
	}
	err := r.Err()
	if err == nil {
		t.Fatal("Err must be non-nil after Failf")
	}
	msg := err.Error()
	if !strings.Contains(msg, "first: 1") {
		t.Fatalf("first failure must stick, got %q", msg)
	}
	if strings.Contains(msg, "second") {
		t.Fatalf("later failures must not overwrite the first, got %q", msg)
	}
}

func TestFailureMessageCarriesAddressAndCycle(t *testing.T) {
	var r Recorder
	r.Failf(0x1f40, 777, "something diverged")
	msg := r.Err().Error()
	for _, want := range []string{"addr=0x1f40", "cycle=777", "check:", "something diverged"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("diagnostic %q missing %q", msg, want)
		}
	}
}

func TestBusAuditOverlapDetected(t *testing.T) {
	var r Recorder
	a := NewBusAudit(&r, 3)
	a.OnSubmit()
	a.OnSubmit()
	a.OnIssue(10, 5)
	a.OnBurst(0, 100, 116, 10, 100)
	a.OnIssue(11, 6)
	a.OnBurst(0, 110, 126, 11, 110) // starts before the previous burst ended
	if r.OK() {
		t.Fatal("overlapping bursts on one sub-rank must fail")
	}
	if !strings.Contains(r.Err().Error(), "data-bus overlap") {
		t.Fatalf("unexpected diagnostic %q", r.Err().Error())
	}
}

func TestBusAuditIndependentSubRanks(t *testing.T) {
	var r Recorder
	a := NewBusAudit(&r, 0)
	a.OnSubmit()
	a.OnSubmit()
	a.OnIssue(1, 0)
	a.OnIssue(2, 0)
	// Same window on different sub-ranks: legal (that is the point of
	// sub-ranking).
	a.OnBurst(0, 100, 116, 1, 100)
	a.OnBurst(1, 100, 116, 2, 100)
	a.CheckDrained(0, 0, 200)
	if err := r.Err(); err != nil {
		t.Fatalf("legal schedule flagged: %v", err)
	}
}

func TestBusAuditConservationAtDrain(t *testing.T) {
	var r Recorder
	a := NewBusAudit(&r, 1)
	a.OnSubmit()
	a.OnSubmit()
	a.OnIssue(1, 0)
	a.CheckDrained(0, 0, 50) // one submitted request vanished
	if r.OK() {
		t.Fatal("lost request must fail conservation")
	}
	if !strings.Contains(r.Err().Error(), "request conservation") {
		t.Fatalf("unexpected diagnostic %q", r.Err().Error())
	}
}

func TestBusAuditIssueOverrun(t *testing.T) {
	var r Recorder
	a := NewBusAudit(&r, 2)
	a.OnSubmit()
	a.OnIssue(1, 0)
	a.OnIssue(2, 0) // issued a request that was never submitted
	if r.OK() {
		t.Fatal("issuing more than submitted must fail")
	}
}
