// Package check is the simulator's runtime self-validation layer
// (DESIGN.md §8). The paper's whole argument rests on Attaché being
// functionally invisible: BLEM + COPR must return bit-identical data to
// an ideal oracle-metadata system while only timing changes (§I,
// Fig. 12). This package makes that claim executable:
//
//   - Recorder collects the first divergence a checker observes, with a
//     precise (address, cycle) diagnostic;
//   - Oracle is the differential oracle: it drives the functional
//     Attaché flow (compress + scramble + BLEM) and an ideal
//     oracle-metadata flow from the same request stream, mirrors the
//     timing simulator's COPR training sequence in a shadow predictor,
//     and asserts data, compression outcomes, and predictions agree;
//   - BusAudit asserts the DRAM channel's conservation/timing
//     invariants: requests retire, data-bus bursts never overlap.
//
// Checking is enabled by config.CheckLevel (CLI: attachesim -check) and
// never mutates simulated state, so results with checking on are
// bit-identical to results with it off — only wall-clock time changes.
package check

import (
	"fmt"

	"attache/internal/sim"
)

// Failure describes one detected divergence or invariant violation: what
// went wrong, at which line address, at which simulation cycle.
type Failure struct {
	Addr  uint64
	Cycle sim.Time
	What  string
}

// Error formats the diagnostic the acceptance tests grep for.
func (f *Failure) Error() string {
	return fmt.Sprintf("check: %s at addr=%#x cycle=%d", f.What, f.Addr, f.Cycle)
}

// Recorder keeps the first failure any checker sharing it observed.
// Later failures are dropped: the first divergence is the actionable one,
// everything after it is usually fallout. The zero value is ready to use.
// Recorders are used from a single simulation goroutine; they need no
// locking.
type Recorder struct {
	first *Failure
}

// Failf records a failure if none has been recorded yet.
func (r *Recorder) Failf(addr uint64, cycle sim.Time, format string, args ...any) {
	if r.first != nil {
		return
	}
	r.first = &Failure{Addr: addr, Cycle: cycle, What: fmt.Sprintf(format, args...)}
}

// Err reports the first recorded failure, or nil when every check passed.
func (r *Recorder) Err() error {
	if r.first == nil {
		return nil
	}
	return r.first
}

// OK reports whether no failure has been recorded.
func (r *Recorder) OK() bool { return r.first == nil }
