package exp

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"attache/internal/blem"
	"attache/internal/compress"
	"attache/internal/config"
	"attache/internal/dram"
	"attache/internal/scramble"
	"attache/internal/sim"
	"attache/internal/stats"
	"attache/internal/trace"
)

// Harness runs the paper's experiments with memoized simulation results,
// so figures that share runs (12/13/14 share the four-system sweep;
// 1/11/15 reuse slices of it) pay for them once. The memo cache is
// concurrency-safe with singleflight semantics: two goroutines asking for
// the same run execute it exactly once. Prefetch fans the planned runs of
// a set of experiments across Parallelism workers; results are identical
// to serial execution because every run is an independent deterministic
// simulation and aggregation always happens in experiment order.
type Harness struct {
	Cfg             config.Config
	AccessesPerCore int64
	Seeds           []int64
	// Progress, when set, receives one line per completed run. Calls are
	// serialized by an internal mutex so concurrent runs do not interleave
	// mid-line.
	Progress func(msg string)
	// Parallelism bounds how many simulations Prefetch executes
	// concurrently. Values <= 0 fall back to runtime.GOMAXPROCS(0).
	// Results do not depend on it.
	Parallelism int

	mu         sync.Mutex // guards cache and inflight
	cache      map[string]cachedRun
	inflight   map[string]*inflightRun
	progressMu sync.Mutex
}

// cachedRun memoizes one run's outcome; errors are cached too, so a failed
// simulation is not retried by every figure that shares it.
type cachedRun struct {
	m   Metrics
	err error
}

// inflightRun is the singleflight rendezvous for one executing run.
type inflightRun struct {
	done chan struct{} // closed when m/err are final
	m    Metrics
	err  error
}

// NewHarness builds a harness; scale multiplies the default per-core
// access count (12000).
func NewHarness(scale float64) *Harness {
	n := int64(12000 * scale)
	if n < 500 {
		n = 500
	}
	return &Harness{
		Cfg:             config.Default(),
		AccessesPerCore: n,
		Seeds:           []int64{42},
		Parallelism:     runtime.GOMAXPROCS(0),
		cache:           map[string]cachedRun{},
		inflight:        map[string]*inflightRun{},
	}
}

// Workloads lists every workload of the evaluation: the catalog plus the
// two mixes.
func (h *Harness) Workloads() []string {
	names := trace.Names()
	for _, m := range trace.Mixes() {
		names = append(names, m.Name)
	}
	return names
}

func (h *Harness) profilesFor(name string) ([]trace.Profile, error) {
	for _, m := range trace.Mixes() {
		if m.Name == name {
			return MixProfiles(m)
		}
	}
	p, err := trace.ByName(name)
	if err != nil {
		return nil, err
	}
	return RateMode(p, h.Cfg.CPU.Cores), nil
}

// runKey is the memoization identity of one simulation. The config is not
// part of the key: variant must uniquely describe every non-default
// configuration, which the planner in parallel.go relies on too.
func runKey(name string, kind config.SystemKind, variant string) string {
	return fmt.Sprintf("%s|%v|%s", name, kind, variant)
}

// runCached executes (or recalls) one simulation, averaging over the
// harness seeds. variant distinguishes non-default configurations.
// It is safe for concurrent use: the first caller for a key executes the
// run, any later caller blocks until that result is final (singleflight).
func (h *Harness) runCached(name string, kind config.SystemKind, variant string, cfg config.Config) (Metrics, error) {
	key := runKey(name, kind, variant)
	h.mu.Lock()
	if h.cache == nil {
		h.cache = map[string]cachedRun{}
	}
	if h.inflight == nil {
		h.inflight = map[string]*inflightRun{}
	}
	if c, ok := h.cache[key]; ok {
		h.mu.Unlock()
		return c.m, c.err
	}
	if fl, ok := h.inflight[key]; ok {
		h.mu.Unlock()
		<-fl.done
		return fl.m, fl.err
	}
	fl := &inflightRun{done: make(chan struct{})}
	h.inflight[key] = fl
	h.mu.Unlock()

	fl.m, fl.err = h.executeRun(key, name, kind, cfg)

	h.mu.Lock()
	h.cache[key] = cachedRun{m: fl.m, err: fl.err}
	delete(h.inflight, key)
	h.mu.Unlock()
	close(fl.done)

	if fl.err == nil {
		h.progress(fmt.Sprintf("ran %-28s cycles=%d", key, fl.m.Cycles))
	}
	return fl.m, fl.err
}

// executeRun performs the actual simulations for one cache key.
func (h *Harness) executeRun(key, name string, kind config.SystemKind, cfg config.Config) (Metrics, error) {
	profs, err := h.profilesFor(name)
	if err != nil {
		return Metrics{}, err
	}
	var acc Metrics
	for _, seed := range h.Seeds {
		m, err := Run(RunConfig{
			Cfg:             cfg,
			Kind:            kind,
			Profiles:        profs,
			AccessesPerCore: h.AccessesPerCore,
			Seed:            seed,
		})
		if err != nil {
			return Metrics{}, fmt.Errorf("run %s: %w", key, err)
		}
		acc = addMetrics(acc, m)
	}
	return scaleMetrics(acc, 1/float64(len(h.Seeds))), nil
}

// progress forwards one line to the Progress callback under a mutex, so
// parallel runs never interleave output mid-line.
func (h *Harness) progress(msg string) {
	if h.Progress == nil {
		return
	}
	h.progressMu.Lock()
	defer h.progressMu.Unlock()
	h.Progress(msg)
}

func (h *Harness) run(name string, kind config.SystemKind) (Metrics, error) {
	return h.runCached(name, kind, "", h.Cfg)
}

func addMetrics(a, b Metrics) Metrics {
	a.Cycles += b.Cycles
	a.Instructions += b.Instructions
	a.IPC += b.IPC
	a.DataReads += b.DataReads
	a.DataWrites += b.DataWrites
	a.MetaReads += b.MetaReads
	a.MetaWrites += b.MetaWrites
	a.RAReads += b.RAReads
	a.RAWrites += b.RAWrites
	a.CorrectionReads += b.CorrectionReads
	a.TotalRequests += b.TotalRequests
	a.BytesMoved += b.BytesMoved
	a.AvgReadLatency += b.AvgReadLatency
	a.BandwidthBytesPerKCycle += b.BandwidthBytesPerKCycle
	a.EnergyNJ += b.EnergyNJ
	a.EnergyActivateNJ += b.EnergyActivateNJ
	a.EnergyReadNJ += b.EnergyReadNJ
	a.EnergyWriteNJ += b.EnergyWriteNJ
	a.EnergyRefreshNJ += b.EnergyRefreshNJ
	a.EnergyBackgroundNJ += b.EnergyBackgroundNJ
	a.CoprAccuracy += b.CoprAccuracy
	a.ECCAccuracy += b.ECCAccuracy
	for i := range a.CoprSourceShare {
		a.CoprSourceShare[i] += b.CoprSourceShare[i]
		a.CoprSourceAcc[i] += b.CoprSourceAcc[i]
	}
	a.MDHitRate += b.MDHitRate
	a.CompressedReadFrac += b.CompressedReadFrac
	a.LLCMissRate += b.LLCMissRate
	a.RowHitRate += b.RowHitRate
	return a
}

func scaleMetrics(a Metrics, f float64) Metrics {
	a.Cycles = sim.Time(float64(a.Cycles) * f)
	a.Instructions = int64(float64(a.Instructions) * f)
	a.IPC *= f
	a.DataReads = uint64(float64(a.DataReads) * f)
	a.DataWrites = uint64(float64(a.DataWrites) * f)
	a.MetaReads = uint64(float64(a.MetaReads) * f)
	a.MetaWrites = uint64(float64(a.MetaWrites) * f)
	a.RAReads = uint64(float64(a.RAReads) * f)
	a.RAWrites = uint64(float64(a.RAWrites) * f)
	a.CorrectionReads = uint64(float64(a.CorrectionReads) * f)
	a.TotalRequests = uint64(float64(a.TotalRequests) * f)
	a.BytesMoved = uint64(float64(a.BytesMoved) * f)
	a.AvgReadLatency *= f
	a.BandwidthBytesPerKCycle *= f
	a.EnergyNJ *= f
	a.EnergyActivateNJ *= f
	a.EnergyReadNJ *= f
	a.EnergyWriteNJ *= f
	a.EnergyRefreshNJ *= f
	a.EnergyBackgroundNJ *= f
	a.CoprAccuracy *= f
	a.ECCAccuracy *= f
	for i := range a.CoprSourceShare {
		a.CoprSourceShare[i] *= f
		a.CoprSourceAcc[i] *= f
	}
	a.MDHitRate *= f
	a.CompressedReadFrac *= f
	a.LLCMissRate *= f
	a.RowHitRate *= f
	return a
}

// Fig1 reproduces Figure 1: per benchmark, the proportion of compressed
// memory blocks and the extra memory traffic caused by metadata accesses
// with a 1 MB Metadata-Cache.
func (h *Harness) Fig1() (*stats.Table, error) {
	t := stats.NewTable("Fig 1: metadata traffic overhead (1MB metadata cache)",
		"compressed_pct", "extra_traffic_pct")
	for _, w := range h.Workloads() {
		m, err := h.run(w, config.SystemMDCache)
		if err != nil {
			return nil, err
		}
		data := float64(m.DataReads + m.DataWrites)
		meta := float64(m.MetaReads + m.MetaWrites)
		t.AddRow(w, m.CompressedReadFrac*100, meta/data*100)
	}
	t.AddMeanRow()
	return t, nil
}

// Fig2 reproduces Figure 2's latency/bandwidth comparison with a
// micro-stream on one channel: (a) baseline lockstep, (b) sub-ranking
// without compression (double burst from one sub-rank), (c) sub-ranking
// with compression (32-byte blocks alternating sub-ranks).
func (h *Harness) Fig2() (*stats.Table, error) {
	t := stats.NewTable("Fig 2: sub-ranking latency/bandwidth micro-comparison",
		"idle_latency_cycles", "stream_cycles", "relative_bandwidth")
	const n = 512
	type variant struct {
		name string
		mask func(i int) dram.SubRankMask
		dbl  bool
	}
	alternate := func(i int) dram.SubRankMask {
		if i%2 == 0 {
			return dram.SubRank0
		}
		return dram.SubRank1
	}
	variants := []variant{
		// (a) all chips lockstep: 64B per request over the full bus.
		{"(a) baseline lockstep", func(int) dram.SubRankMask { return dram.SubRankBoth }, false},
		// (b) sub-ranked but uncompressed: each 64B request occupies one
		// half-bus for twice as long; two requests proceed in parallel,
		// so throughput matches (a) while per-request latency doubles.
		{"(b) sub-rank, no compression", alternate, true},
		// (c) sub-ranked + compressed to 32B: same latency as (a), two
		// requests per burst slot.
		{"(c) sub-rank + compression", alternate, false},
	}
	var baseCycles float64
	for vi, v := range variants {
		// Idle latency: one cold read.
		eng := sim.NewEngine()
		ch := dram.NewChannel(eng, h.Cfg, 0)
		var idle sim.Time
		ch.Submit(&dram.Request{Loc: dram.Location{Row: 1}, SubRanks: v.mask(0), DoubleBurst: v.dbl,
			Done: func(now sim.Time) { idle = now }})
		eng.RunUntilDone(1e6)

		// Stream: n line-reads (each variant moves the same n*64 bytes;
		// variant (c) models every line compressed to one block).
		eng2 := sim.NewEngine()
		ch2 := dram.NewChannel(eng2, h.Cfg, 0)
		var last sim.Time
		for i := 0; i < n; i++ {
			ch2.Submit(&dram.Request{Loc: dram.Location{Row: 1 + i/128, Col: i % 128},
				SubRanks: v.mask(i), DoubleBurst: v.dbl,
				Done: func(now sim.Time) { last = now }})
		}
		eng2.RunUntilDone(1e7)
		if vi == 0 {
			baseCycles = float64(last)
		}
		t.AddRow(v.name, float64(idle), float64(last), baseCycles/float64(last))
	}
	return t, nil
}

// Fig4 reproduces Figure 4: the percentage of cachelines compressible to
// 30 bytes, measured by running both real codecs over each benchmark's
// synthesized data.
func (h *Harness) Fig4() (*stats.Table, error) {
	t := stats.NewTable("Fig 4: % of 64B lines compressible to 30B", "compressible_pct")
	eng := compress.NewEngine()
	const samples = 4000
	scratch := make([]byte, trace.LineSize)
	for _, p := range trace.Catalog() {
		dm := p.DataModel()
		rng := rand.New(rand.NewSource(7))
		comp := 0
		for i := 0; i < samples; i++ {
			addr := uint64(rng.Int63n(int64(p.FootprintBytes / 64)))
			if eng.Compressible(dm.LineInto(addr, scratch)) {
				comp++
			}
		}
		t.AddRow(p.Name, float64(comp)/samples*100)
	}
	t.AddMeanRow()
	return t, nil
}

// Fig5 reproduces Figure 5: metadata-cache hit rate and resulting speedup
// as the cache grows from 64 KB to 1 MB (suite averages).
func (h *Harness) Fig5() (*stats.Table, error) {
	t := stats.NewTable("Fig 5: metadata-cache size sweep (suite averages)",
		"hit_rate", "speedup")
	for _, size := range mdcacheSweepSizes {
		cfg := h.Cfg
		cfg.MDCache.Bytes = size
		var hit, speedup float64
		n := 0
		for _, w := range h.Workloads() {
			base, err := h.run(w, config.SystemBaseline)
			if err != nil {
				return nil, err
			}
			md, err := h.runCached(w, config.SystemMDCache, mdcacheSizeVariant(size), cfg)
			if err != nil {
				return nil, err
			}
			hit += md.MDHitRate
			speedup += float64(base.Cycles) / float64(md.Cycles)
			n++
		}
		t.AddRow(fmt.Sprintf("%dKB", size>>10), hit/float64(n), speedup/float64(n))
	}
	return t, nil
}

// Fig8 reproduces Figure 8: probability of at least one CID collision
// versus the number of accesses to uncompressed lines, analytically and
// by Monte-Carlo through the real scrambler + BLEM classifier.
func (h *Harness) Fig8() (*stats.Table, error) {
	t := stats.NewTable("Fig 8: CID collision probability vs accesses (15-bit CID)",
		"analytic_p", "measured_p")
	e := blem.NewEngine(15, 2024)
	scr := scramble.New(0xFEEDFACE)
	line := make([]byte, 64)
	const trials = 64
	counts := map[int]int{}
	ns := []int{1024, 4096, 16384, 32768, 65536, 131072}
	maxN := ns[len(ns)-1]
	for trial := 0; trial < trials; trial++ {
		eTrial := blem.NewEngine(15, int64(trial)*131+7)
		firstHit := maxN + 1
		for i := 0; i < maxN; i++ {
			for j := range line {
				line[j] = 0 // adversarially constant data...
			}
			addr := uint64(trial*maxN + i)
			scr.Apply(addr, line) // ...made safe by scrambling
			if _, collision := eTrial.StoreUncompressed(addr, line); collision {
				firstHit = i + 1
				break
			}
		}
		for _, n := range ns {
			if firstHit <= n {
				counts[n]++
			}
		}
	}
	_ = e
	for _, n := range ns {
		analytic := 1 - math.Pow(1-blem.CollisionProbability(15), float64(n))
		t.AddRow(fmt.Sprintf("%d accesses", n), analytic, float64(counts[n])/trials)
	}
	return t, nil
}

// Table1 reproduces Table I: CID width versus spare information bits and
// collision probability (analytic and Monte-Carlo measured).
func (h *Harness) Table1() (*stats.Table, error) {
	t := stats.NewTable("Table I: extending CID to store additional information",
		"info_bits", "analytic_collision_pct", "measured_collision_pct")
	scr := scramble.New(0xABCD)
	for _, bits := range []int{15, 14, 13} {
		e := blem.NewEngine(bits, 99)
		const trials = 1 << 21
		collisions := 0
		line := make([]byte, 64)
		for i := 0; i < trials; i++ {
			for j := range line {
				line[j] = 0
			}
			scr.Apply(uint64(i), line)
			if _, c := e.StoreUncompressed(uint64(i), line); c {
				collisions++
			}
		}
		t.AddRow(fmt.Sprintf("CID %d bits", bits),
			float64(15-bits),
			blem.CollisionProbability(bits)*100,
			float64(collisions)/trials*100)
	}
	return t, nil
}

// Fig11 reproduces Figure 11: COPR prediction accuracy per benchmark.
func (h *Harness) Fig11() (*stats.Table, error) {
	t := stats.NewTable("Fig 11: COPR prediction accuracy", "accuracy")
	for _, w := range h.Workloads() {
		m, err := h.run(w, config.SystemAttache)
		if err != nil {
			return nil, err
		}
		t.AddRow(w, m.CoprAccuracy)
	}
	t.AddMeanRow()
	return t, nil
}

// Fig12 reproduces Figure 12: speedup of the Metadata-Cache system,
// Attaché, and the ideal system, normalized to the uncompressed baseline.
func (h *Harness) Fig12() (*stats.Table, error) {
	t := stats.NewTable("Fig 12: speedup normalized to baseline",
		"mdcache", "attache", "ideal")
	for _, w := range h.Workloads() {
		base, err := h.run(w, config.SystemBaseline)
		if err != nil {
			return nil, err
		}
		row := make([]float64, 0, 3)
		for _, k := range []config.SystemKind{config.SystemMDCache, config.SystemAttache, config.SystemIdeal} {
			m, err := h.run(w, k)
			if err != nil {
				return nil, err
			}
			row = append(row, float64(base.Cycles)/float64(m.Cycles))
		}
		t.AddRow(w, row...)
	}
	t.AddMeanRow()
	return t, nil
}

// Fig13 reproduces Figure 13: energy consumption normalized to baseline.
func (h *Harness) Fig13() (*stats.Table, error) {
	t := stats.NewTable("Fig 13: energy normalized to baseline",
		"mdcache", "attache", "ideal")
	for _, w := range h.Workloads() {
		base, err := h.run(w, config.SystemBaseline)
		if err != nil {
			return nil, err
		}
		row := make([]float64, 0, 3)
		for _, k := range []config.SystemKind{config.SystemMDCache, config.SystemAttache, config.SystemIdeal} {
			m, err := h.run(w, k)
			if err != nil {
				return nil, err
			}
			row = append(row, m.EnergyNJ/base.EnergyNJ)
		}
		t.AddRow(w, row...)
	}
	t.AddMeanRow()
	return t, nil
}

// Fig14 reproduces Figure 14: memory bandwidth improvement (a) and
// average memory latency (b), per benchmark, normalized to the baseline.
// "Useful bandwidth" is work per cycle: the systems move the same
// payload, so the payload rate ratio is the inverse cycle ratio.
func (h *Harness) Fig14() (*stats.Table, error) {
	t := stats.NewTable("Fig 14: useful bandwidth (a) and memory latency (b), normalized to baseline",
		"bw_mdcache", "bw_attache", "bw_ideal", "lat_mdcache", "lat_attache", "lat_ideal")
	kinds := []config.SystemKind{config.SystemMDCache, config.SystemAttache, config.SystemIdeal}
	for _, w := range h.Workloads() {
		base, err := h.run(w, config.SystemBaseline)
		if err != nil {
			return nil, err
		}
		row := make([]float64, 0, 6)
		var lats []float64
		for _, k := range kinds {
			m, err := h.run(w, k)
			if err != nil {
				return nil, err
			}
			row = append(row, float64(base.Cycles)/float64(m.Cycles))
			lats = append(lats, m.AvgReadLatency/base.AvgReadLatency)
		}
		t.AddRow(w, append(row, lats...)...)
	}
	t.AddMeanRow()
	return t, nil
}

// Fig15 reproduces Figure 15: number of memory requests in the
// Metadata-Cache system normalized to its own data requests, split into
// reads and writes.
func (h *Harness) Fig15() (*stats.Table, error) {
	t := stats.NewTable("Fig 15: normalized requests with metadata caching",
		"norm_reads", "norm_writes", "norm_total")
	for _, w := range h.Workloads() {
		m, err := h.run(w, config.SystemMDCache)
		if err != nil {
			return nil, err
		}
		dataReads := float64(m.DataReads + m.CorrectionReads)
		dataWrites := float64(m.DataWrites)
		t.AddRow(w,
			(dataReads+float64(m.MetaReads))/dataReads,
			(dataWrites+float64(m.MetaWrites))/dataWrites,
			(dataReads+dataWrites+float64(m.MetaReads+m.MetaWrites))/(dataReads+dataWrites))
	}
	t.AddMeanRow()
	return t, nil
}

// Fig16 reproduces Figure 16: 1MB metadata-cache hit rate under LRU,
// DRRIP, and SHiP replacement.
func (h *Harness) Fig16() (*stats.Table, error) {
	t := stats.NewTable("Fig 16: metadata-cache hit rate by replacement policy",
		"lru", "drrip", "ship")
	for _, w := range h.Workloads() {
		row := make([]float64, 0, 3)
		for _, pol := range mdcachePolicies {
			cfg := h.Cfg
			cfg.MDCache.Policy = pol
			m, err := h.runCached(w, config.SystemMDCache, mdcachePolicyVariant(pol), cfg)
			if err != nil {
				return nil, err
			}
			row = append(row, m.MDHitRate)
		}
		t.AddRow(w, row...)
	}
	t.AddMeanRow()
	return t, nil
}

// Fig17 reproduces Figure 17: Attaché speedup with different COPR
// component combinations: PaPR alone, PaPR + GI, and the full predictor
// (adding LiPR, which matters for the mixed workloads).
func (h *Harness) Fig17() (*stats.Table, error) {
	t := stats.NewTable("Fig 17: speedup by COPR component mix",
		"papr_only", "papr_gi", "full")
	for _, w := range h.Workloads() {
		base, err := h.run(w, config.SystemBaseline)
		if err != nil {
			return nil, err
		}
		row := make([]float64, 0, 3)
		for _, v := range coprVariants {
			m, err := h.runCached(w, config.SystemAttache, v.name, v.apply(h.Cfg))
			if err != nil {
				return nil, err
			}
			row = append(row, float64(base.Cycles)/float64(m.Cycles))
		}
		t.AddRow(w, row...)
	}
	t.AddMeanRow()
	return t, nil
}

// EnergyBreakdown is an extension experiment: where each system's energy
// goes (activation / read / write / refresh / background), as suite-mean
// fractions. It explains Fig. 13: compression saves dynamic transfer and
// activation energy directly, and background energy through shorter
// runtime.
func (h *Harness) EnergyBreakdown() (*stats.Table, error) {
	t := stats.NewTable("Energy breakdown by component (suite-mean fractions)",
		"activate", "read", "write", "refresh", "background")
	kinds := []config.SystemKind{config.SystemBaseline, config.SystemMDCache, config.SystemAttache, config.SystemIdeal}
	for _, k := range kinds {
		var act, rd, wr, ref, bg, tot float64
		for _, w := range h.Workloads() {
			m, err := h.run(w, k)
			if err != nil {
				return nil, err
			}
			act += m.EnergyActivateNJ
			rd += m.EnergyReadNJ
			wr += m.EnergyWriteNJ
			ref += m.EnergyRefreshNJ
			bg += m.EnergyBackgroundNJ
			tot += m.EnergyNJ
		}
		t.AddRow(k.String(), act/tot, rd/tot, wr/tot, ref/tot, bg/tot)
	}
	return t, nil
}

// Predictors is an extension experiment isolating COPR's contribution:
// it compares Attaché against the Deb et al. alternative (§VII-A) where
// metadata rides in ECC bits and the pre-read guess comes from a simple
// last-outcome predictor with the same storage budget. Both systems have
// metadata-free reads, so the remaining gap is pure predictor quality.
func (h *Harness) Predictors() (*stats.Table, error) {
	t := stats.NewTable("COPR vs last-outcome predictor (ECC metadata, Deb et al.)",
		"ecc_speedup", "attache_speedup", "ecc_accuracy", "copr_accuracy")
	for _, w := range h.Workloads() {
		base, err := h.run(w, config.SystemBaseline)
		if err != nil {
			return nil, err
		}
		ecc, err := h.run(w, config.SystemECC)
		if err != nil {
			return nil, err
		}
		att, err := h.run(w, config.SystemAttache)
		if err != nil {
			return nil, err
		}
		t.AddRow(w,
			float64(base.Cycles)/float64(ecc.Cycles),
			float64(base.Cycles)/float64(att.Cycles),
			ecc.ECCAccuracy,
			att.CoprAccuracy)
	}
	t.AddMeanRow()
	return t, nil
}

// CoprAnatomy is an extension experiment: which COPR level answers each
// prediction and how accurate each level is, per workload. It shows the
// division of labor Fig. 10 implies: LiPR for observed lines, PaPR for
// page-resident pages, GI for cold pages.
func (h *Harness) CoprAnatomy() (*stats.Table, error) {
	t := stats.NewTable("COPR anatomy: share of predictions (and accuracy) by level",
		"lipr_share", "lipr_acc", "papr_share", "papr_acc", "gi_share", "gi_acc")
	for _, w := range h.Workloads() {
		m, err := h.run(w, config.SystemAttache)
		if err != nil {
			return nil, err
		}
		t.AddRow(w,
			m.CoprSourceShare[0], m.CoprSourceAcc[0],
			m.CoprSourceShare[1], m.CoprSourceAcc[1],
			m.CoprSourceShare[2], m.CoprSourceAcc[2])
	}
	t.AddMeanRow()
	return t, nil
}

// Experiment names in paper order.
var experimentOrder = []string{
	"fig1", "fig2", "fig4", "fig5", "fig8", "tab1",
	"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
	"compare", "energy", "predictors", "copr-anatomy",
}

// Experiments returns the experiment registry: id -> runner.
func (h *Harness) Experiments() (order []string, runners map[string]func() (*stats.Table, error)) {
	return experimentOrder, map[string]func() (*stats.Table, error){
		"fig1":         h.Fig1,
		"fig2":         h.Fig2,
		"fig4":         h.Fig4,
		"fig5":         h.Fig5,
		"fig8":         h.Fig8,
		"tab1":         h.Table1,
		"fig11":        h.Fig11,
		"fig12":        h.Fig12,
		"fig13":        h.Fig13,
		"fig14":        h.Fig14,
		"fig15":        h.Fig15,
		"fig16":        h.Fig16,
		"fig17":        h.Fig17,
		"compare":      h.Compare,
		"energy":       h.EnergyBreakdown,
		"predictors":   h.Predictors,
		"copr-anatomy": h.CoprAnatomy,
	}
}
