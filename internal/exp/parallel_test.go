package exp

import (
	"sync"
	"sync/atomic"
	"testing"

	"attache/internal/config"
)

// parTestHarness is a harness small enough to simulate every (workload,
// system) pair quickly: default cores (the mixes need all 8), but only
// 300 references each.
func parTestHarness() *Harness {
	h := NewHarness(1)
	h.AccessesPerCore = 300
	return h
}

func experimentTable(t *testing.T, h *Harness, id string) string {
	t.Helper()
	_, runners := h.Experiments()
	tab, err := runners[id]()
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return tab.String()
}

// TestParallelMatchesSerial is the determinism guarantee: a harness that
// prefetches across 8 workers must produce byte-identical tables and
// bit-identical Metrics to one that runs everything serially on demand.
func TestParallelMatchesSerial(t *testing.T) {
	serial := parTestHarness()
	serial.Parallelism = 1
	par := parTestHarness()
	par.Parallelism = 8
	par.Prefetch("fig12", "fig13")

	for _, id := range []string{"fig12", "fig13"} {
		want := experimentTable(t, serial, id)
		got := experimentTable(t, par, id)
		if got != want {
			t.Errorf("%s: table differs between serial and parallel runs\nserial:\n%s\nparallel:\n%s", id, want, got)
		}
	}

	kinds := []config.SystemKind{
		config.SystemBaseline, config.SystemMDCache,
		config.SystemAttache, config.SystemIdeal,
	}
	for _, w := range serial.Workloads() {
		for _, k := range kinds {
			ms, err1 := serial.runCached(w, k, "", serial.Cfg)
			mp, err2 := par.runCached(w, k, "", par.Cfg)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s/%v: errors %v / %v", w, k, err1, err2)
			}
			if ms != mp {
				t.Errorf("%s/%v: Metrics differ between serial and parallel harnesses", w, k)
			}
		}
	}
}

// TestRunCachedSingleflight hammers one key from many goroutines: the
// simulation must execute exactly once and every caller must observe the
// same result. Run under -race this also exercises the cache locking.
func TestRunCachedSingleflight(t *testing.T) {
	h := parTestHarness()
	var executions atomic.Int32
	h.Progress = func(string) { executions.Add(1) }

	const callers = 16
	results := make([]Metrics, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = h.runCached("lbm", config.SystemAttache, "", h.Cfg)
		}(i)
	}
	wg.Wait()

	if n := executions.Load(); n != 1 {
		t.Errorf("run executed %d times, want exactly 1", n)
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Errorf("caller %d observed a different Metrics than caller 0", i)
		}
	}
}

// TestPlanRunsDedup: runs shared between experiments are planned once, in
// first-declaration order.
func TestPlanRunsDedup(t *testing.T) {
	h := parTestHarness()
	reqs := h.planRuns([]string{"fig12", "fig13", "fig1"})
	seen := map[string]bool{}
	for _, r := range reqs {
		k := r.key()
		if seen[k] {
			t.Errorf("duplicate planned run %q", k)
		}
		seen[k] = true
	}
	// fig13 and fig1 need only subsets of fig12's four-system sweep, so
	// the whole plan is exactly fig12's: 4 systems x every workload.
	if want := 4 * len(h.Workloads()); len(reqs) != want {
		t.Errorf("planned %d runs, want %d", len(reqs), want)
	}
}
