package exp

import (
	"math"
	"testing"

	"attache/internal/config"
	"attache/internal/trace"
)

// TestSameSeedByteIdentical runs the same experiment three times from
// fresh harnesses: the rendered report (table text and CSV) must be
// byte-identical every time. This is the simulator's core reproducibility
// contract — results depend only on (config, seed), never on memoization
// state, goroutine scheduling, or map iteration order.
func TestSameSeedByteIdentical(t *testing.T) {
	render := func() string {
		h := NewHarness(0.05)
		h.Seeds = []int64{42}
		tab, err := h.Fig11()
		if err != nil {
			t.Fatal(err)
		}
		return tab.String() + "\n" + tab.CSV()
	}
	first := render()
	for i := 1; i < 3; i++ {
		if got := render(); got != first {
			t.Fatalf("run %d differs from run 0:\n--- run 0 ---\n%s\n--- run %d ---\n%s", i, first, i, got)
		}
	}
}

// TestSameSeedIdenticalMetrics is the raw-metric version of the contract:
// two fresh simulations with the same config and seed must agree on every
// cycle count and request counter exactly.
func TestSameSeedIdenticalMetrics(t *testing.T) {
	p, err := trace.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default()
	run := func() Metrics {
		m, err := Run(RunConfig{Cfg: cfg, Kind: config.SystemAttache,
			Profiles: RateMode(p, cfg.CPU.Cores), AccessesPerCore: 2000, Seed: 1337})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different metrics:\n%+v\n%+v", a, b)
	}
}

// TestDistinctSeedsStayWithinBand checks that the seed only perturbs
// trace generation noise, not the physics: distinct seeds must land
// within ±3% of their common mean cycle count (measured spread is well
// under 1.5%, so a trip means a seed-dependent modeling bug).
func TestDistinctSeedsStayWithinBand(t *testing.T) {
	p, err := trace.ByName("zeusmp")
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default()
	seeds := []int64{42, 1337, 7, 99991}
	cycles := make([]float64, len(seeds))
	var mean float64
	for i, seed := range seeds {
		m, err := Run(RunConfig{Cfg: cfg, Kind: config.SystemAttache,
			Profiles: RateMode(p, cfg.CPU.Cores), AccessesPerCore: 3000, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		cycles[i] = float64(m.Cycles)
		mean += cycles[i]
	}
	mean /= float64(len(seeds))
	if mean == 0 {
		t.Fatal("no cycles simulated")
	}
	var distinct bool
	for i, c := range cycles {
		if dev := math.Abs(c-mean) / mean; dev > 0.03 {
			t.Errorf("seed %d deviates %.2f%% from mean (cycles=%v)", seeds[i], dev*100, cycles)
		}
		if c != cycles[0] {
			distinct = true
		}
	}
	// The seeds must actually do something: identical cycle counts for
	// every seed would mean the seed is ignored.
	if !distinct {
		t.Error("all seeds produced identical cycle counts; seed plumbing is dead")
	}
}
