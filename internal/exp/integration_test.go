package exp

import (
	"bytes"
	"testing"

	"attache/internal/compress"
	"attache/internal/config"
	"attache/internal/core"
	"attache/internal/trace"
)

// TestFunctionalAndPerformanceModelsAgree cross-checks the two layers of
// the library: the performance simulator classifies lines through the
// workload DataModel, while the functional framework actually compresses,
// scrambles, and blends the same bytes. For every sampled line the two
// must agree on compressibility, and the functional path must round-trip.
func TestFunctionalAndPerformanceModelsAgree(t *testing.T) {
	f, err := core.New(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"lbm", "mcf", "RAND", "gcc", "libquantum"} {
		p, err := trace.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		dm := p.DataModel()
		gen := trace.NewGenerator(p, 3, 0)
		for i := 0; i < 500; i++ {
			a := gen.Next()
			line := dm.Line(a.LineAddr)
			st, _, err := f.Store(a.LineAddr, line)
			if err != nil {
				t.Fatal(err)
			}
			if st.Compressed != dm.Compressible(a.LineAddr) {
				t.Fatalf("%s line %d: framework says compressed=%v, model says %v",
					name, a.LineAddr, st.Compressed, dm.Compressible(a.LineAddr))
			}
			got, _, err := f.Load(a.LineAddr, st)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, line) {
				t.Fatalf("%s line %d: functional round trip mismatch", name, a.LineAddr)
			}
		}
	}
}

// TestTrafficConservation checks request accounting across the stack:
// every system must issue exactly one data read per LLC fill, and the
// byte traffic ordering baseline >= attache >= ideal must hold for a
// compressible workload.
func TestTrafficConservation(t *testing.T) {
	p, err := trace.ByName("zeusmp")
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default()
	results := map[config.SystemKind]Metrics{}
	for _, k := range []config.SystemKind{config.SystemBaseline, config.SystemAttache, config.SystemIdeal} {
		m, err := Run(RunConfig{
			Cfg: cfg, Kind: k,
			Profiles:        RateMode(p, cfg.CPU.Cores),
			AccessesPerCore: 2500, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		results[k] = m
	}
	base, att, ideal := results[config.SystemBaseline], results[config.SystemAttache], results[config.SystemIdeal]

	// Same trace -> same LLC behaviour -> near-identical data-request
	// counts (timing shifts whether a racing pair of misses coalesces in
	// the MSHRs, so allow a handful of fills of slack).
	near := func(a, b uint64) bool {
		d := int64(a) - int64(b)
		if d < 0 {
			d = -d
		}
		return float64(d) <= 0.005*float64(a)
	}
	if !near(base.DataReads, att.DataReads) || !near(base.DataReads, ideal.DataReads) {
		t.Fatalf("data reads diverge: %d / %d / %d", base.DataReads, att.DataReads, ideal.DataReads)
	}
	if !near(base.DataWrites, att.DataWrites) || !near(base.DataWrites, ideal.DataWrites) {
		t.Fatalf("data writes diverge: %d / %d / %d", base.DataWrites, att.DataWrites, ideal.DataWrites)
	}

	// Bytes: compression can only reduce traffic; corrections can only
	// add back at most what prediction saved.
	if !(ideal.BytesMoved <= att.BytesMoved) {
		t.Fatalf("ideal moved %d > attache %d", ideal.BytesMoved, att.BytesMoved)
	}
	if !(att.BytesMoved < base.BytesMoved) {
		t.Fatalf("attache moved %d >= baseline %d on 68%%-compressible workload",
			att.BytesMoved, base.BytesMoved)
	}

	// Baseline issues nothing but data requests.
	if base.TotalRequests != base.DataReads+base.DataWrites {
		t.Fatal("baseline issued non-data requests")
	}
	// Ideal likewise (oracle metadata is free).
	if ideal.TotalRequests != ideal.DataReads+ideal.DataWrites {
		t.Fatal("ideal issued non-data requests")
	}
	// Attaché extras are exactly corrections + RA traffic.
	extras := att.TotalRequests - att.DataReads - att.DataWrites
	if extras != att.CorrectionReads+att.RAReads+att.RAWrites {
		t.Fatalf("attache extras %d != corrections %d + RA %d",
			extras, att.CorrectionReads, att.RAReads+att.RAWrites)
	}
}

// TestCompressedReadFracMatchesDataModel: the fraction of compressed
// reads observed by the controller must match the workload's target
// compressibility (the controller sees the same line distribution the
// data model defines).
func TestCompressedReadFracMatchesDataModel(t *testing.T) {
	for _, name := range []string{"lbm", "libquantum", "gcc"} {
		p, _ := trace.ByName(name)
		cfg := config.Default()
		m, err := Run(RunConfig{
			Cfg: cfg, Kind: config.SystemIdeal,
			Profiles:        RateMode(p, cfg.CPU.Cores),
			AccessesPerCore: 2500, Seed: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		diff := m.CompressedReadFrac - p.CompressibleFrac
		if diff < -0.1 || diff > 0.1 {
			t.Errorf("%s: compressed read frac %.3f vs profile %.3f",
				name, m.CompressedReadFrac, p.CompressibleFrac)
		}
	}
}

// TestRareRATrafficAtPaperRate: with a 15-bit CID, Replacement Area
// traffic must be a vanishing fraction of requests (the paper's 0.003%
// claim, allowing Monte-Carlo slack at simulation scale).
func TestRareRATrafficAtPaperRate(t *testing.T) {
	p, _ := trace.ByName("libquantum") // almost everything uncompressed: worst case for collisions
	cfg := config.Default()
	m, err := Run(RunConfig{
		Cfg: cfg, Kind: config.SystemAttache,
		Profiles:        RateMode(p, cfg.CPU.Cores),
		AccessesPerCore: 4000, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	ra := float64(m.RAReads + m.RAWrites)
	frac := ra / float64(m.TotalRequests)
	if frac > 0.001 {
		t.Fatalf("RA traffic fraction %.5f, want ~0.00003", frac)
	}
}

// TestCompressionEngineAgreesWithPackedStorage: everything the engine
// calls compressible must pack (with its algorithm tag) into the 30-byte
// payload budget BLEM reserves beside the header — across every
// workload's data distribution.
func TestCompressionEngineAgreesWithPackedStorage(t *testing.T) {
	e := compress.NewEngine()
	for _, p := range trace.Catalog() {
		dm := p.DataModel()
		for addr := uint64(0); addr < 300; addr++ {
			line := dm.Line(addr)
			c := e.Compress(line)
			if c.Algo == compress.AlgoNone {
				continue
			}
			if got := len(c.Pack()); got > 30 {
				t.Fatalf("%s line %d: packed %d bytes > 30", p.Name, addr, got)
			}
		}
	}
}

// TestMixSlicesIsolated: in a mixed workload, each core's traffic must
// stay inside its own address slice so per-core data models never alias.
func TestMixSlicesIsolated(t *testing.T) {
	mix := trace.Mixes()[1]
	profs, err := MixProfiles(mix)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range profs {
		gen := trace.NewGeneratorAt(p, 9, uint64(i)*mixSliceLines)
		lo := uint64(i) * mixSliceLines
		hi := lo + mixSliceLines
		for j := 0; j < 1000; j++ {
			a := gen.Next().LineAddr
			if a < lo || a >= hi {
				t.Fatalf("core %d (%s) escaped its slice: %d not in [%d,%d)", i, p.Name, a, lo, hi)
			}
		}
	}
}
