// Package exp is the experiment harness: it assembles full systems
// (cores -> shared LLC -> memory controller -> DRAM channels), runs the
// paper's workloads on each organization, and regenerates every table
// and figure of the evaluation section (see DESIGN.md §3 for the index).
package exp

import (
	"fmt"

	"attache/internal/cache"
	"attache/internal/config"
	"attache/internal/cpu"
	"attache/internal/dram"
	"attache/internal/memctrl"
	"attache/internal/sim"
	"attache/internal/trace"
)

// mixSliceLines is the per-core address slice for mixed workloads: large
// enough for the biggest catalog footprint.
const mixSliceLines = (256 << 20) / 64

// RunConfig describes one simulation run.
type RunConfig struct {
	Cfg  config.Config
	Kind config.SystemKind
	// Profiles holds one profile per core (rate mode repeats the same
	// profile; mixes differ per core).
	Profiles []trace.Profile
	// AccessesPerCore is the number of memory references each core
	// issues.
	AccessesPerCore int64
	Seed            int64

	// Sources, when set, overrides the per-core synthetic generators
	// with externally supplied access streams (e.g. trace.FileTrace).
	// Must have one entry per core.
	Sources []trace.Source
	// LineModel, when set, overrides the data model derived from
	// Profiles — required when Sources replay recorded traces whose
	// data contents are unknown.
	LineModel memctrl.LineModel
}

// Metrics are the measurements one run produces.
type Metrics struct {
	Cycles       sim.Time
	Instructions int64
	IPC          float64

	DataReads, DataWrites   uint64
	MetaReads, MetaWrites   uint64
	RAReads, RAWrites       uint64
	CorrectionReads         uint64
	TotalRequests           uint64
	BytesMoved              uint64
	AvgReadLatency          float64 // controller submit -> data, CPU cycles
	BandwidthBytesPerKCycle float64
	EnergyNJ                float64
	// Energy components (nanojoules): dynamic split + background.
	EnergyActivateNJ, EnergyReadNJ, EnergyWriteNJ float64
	EnergyRefreshNJ, EnergyBackgroundNJ           float64
	CoprAccuracy                                  float64
	ECCAccuracy                                   float64
	// CoprSourceShare/Acc break COPR predictions down by the level
	// that answered (LiPR, PaPR, GI, default).
	CoprSourceShare    [4]float64
	CoprSourceAcc      [4]float64
	MDHitRate          float64
	CompressedReadFrac float64
	LLCMissRate        float64
	RowHitRate         float64 // DRAM row-buffer hit rate across channels
}

// regionModel routes line-model queries to the per-core data model owning
// that address slice (mixes run different data per core).
type regionModel struct {
	sliceLines uint64
	models     []*trace.DataModel
}

func (r regionModel) modelFor(a uint64) *trace.DataModel {
	i := int(a / r.sliceLines)
	if i >= len(r.models) {
		i = len(r.models) - 1
	}
	return r.models[i]
}

func (r regionModel) Compressible(a uint64) bool { return r.modelFor(a).Compressible(a) }

func (r regionModel) CIDCollides(a uint64, bits int) bool {
	return r.modelFor(a).CIDCollides(a, bits)
}

// LineInto satisfies check.DataModel so the differential oracle can run
// the functional Attaché flow on the same bytes the owning data model
// synthesizes for each slice.
func (r regionModel) LineInto(a uint64, buf []byte) []byte {
	return r.modelFor(a).LineInto(a, buf)
}

// RateMode builds the per-core profile list for a rate-mode run (every
// core runs the same benchmark, paper §V).
func RateMode(p trace.Profile, cores int) []trace.Profile {
	out := make([]trace.Profile, cores)
	for i := range out {
		out[i] = p
	}
	return out
}

// MixProfiles resolves a mix's benchmark names to profiles.
func MixProfiles(m trace.Mix) ([]trace.Profile, error) {
	out := make([]trace.Profile, len(m.PerCore))
	for i, n := range m.PerCore {
		p, err := trace.ByName(n)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// Run executes one simulation to completion and reports its metrics.
func Run(rc RunConfig) (Metrics, error) {
	if len(rc.Profiles) == 0 {
		return Metrics{}, fmt.Errorf("exp: no profiles")
	}
	if rc.AccessesPerCore <= 0 {
		return Metrics{}, fmt.Errorf("exp: accesses per core must be positive")
	}
	cfg := rc.Cfg
	if len(rc.Profiles) != cfg.CPU.Cores {
		return Metrics{}, fmt.Errorf("exp: %d profiles for %d cores", len(rc.Profiles), cfg.CPU.Cores)
	}

	if rc.Sources != nil && len(rc.Sources) != cfg.CPU.Cores {
		return Metrics{}, fmt.Errorf("exp: %d sources for %d cores", len(rc.Sources), cfg.CPU.Cores)
	}
	eng := sim.NewEngine()

	// Data models: one per core slice. Identical profiles share a model
	// (rate mode); the slice size is uniform so the region router works
	// for both modes.
	var lm memctrl.LineModel
	if rc.LineModel != nil {
		lm = rc.LineModel
	} else {
		models := make([]*trace.DataModel, len(rc.Profiles))
		for i, p := range rc.Profiles {
			models[i] = p.DataModel()
		}
		lm = regionModel{sliceLines: mixSliceLines, models: models}
	}

	sys, err := memctrl.New(eng, cfg, rc.Kind, lm, rc.Seed)
	if err != nil {
		return Metrics{}, err
	}
	llc := cache.New(eng, sys, cfg.CPU.LLCBytes, cfg.CPU.LLCWays, cfg.CPU.LLCLatency)
	llc.EnableNextLinePrefetch(cfg.CPU.LLCPrefetch)

	coreCfg := cpu.Config{
		IssueWidth: cfg.CPU.IssueWidth,
		ROBSize:    int64(cfg.CPU.ROBSize),
		MSHRs:      cfg.CPU.MSHRs,
		Audit:      sys.Audit(), // nil when cfg.Check is off
	}
	// Warm the LLC to steady state (the paper warms for 40 B
	// instructions): each core's stream flows into the cache without
	// timing, then the measured run continues from the warmed state.
	gens := make([]trace.Source, len(rc.Profiles))
	warmPerCore := 2 * cfg.CPU.LLCBytes / config.LineSize / int64(len(rc.Profiles))
	for i, p := range rc.Profiles {
		if rc.Sources != nil {
			gens[i] = rc.Sources[i]
		} else {
			gens[i] = trace.NewGeneratorAt(p, rc.Seed+int64(i)*7919, uint64(i)*mixSliceLines)
		}
		for w := int64(0); w < warmPerCore; w++ {
			a := gens[i].Next()
			llc.Prefill(a.LineAddr, a.Store)
		}
	}

	cores := make([]*cpu.Core, len(rc.Profiles))
	for i := range rc.Profiles {
		cores[i] = cpu.NewCore(eng, i, coreCfg, gens[i], rc.AccessesPerCore, llc, nil)
		// Staggered starts break the lockstep of identical rate-mode
		// traces, which otherwise phase-locks with write draining.
		cores[i].StartAt(sim.Time(i) * 61)
	}

	maxEvents := uint64(rc.AccessesPerCore) * uint64(len(rc.Profiles)) * 400
	if maxEvents < 1_000_000 {
		maxEvents = 1_000_000
	}
	if !eng.RunUntilDone(maxEvents) {
		return Metrics{}, fmt.Errorf("exp: simulation exceeded %d events (deadlock or runaway)", maxEvents)
	}

	if cfg.Check >= config.CheckInvariants {
		// Event conservation: with the queue drained, every event that was
		// ever scheduled must have fired exactly once.
		if sch, fired := eng.Scheduled(), eng.Steps(); sch != fired {
			return Metrics{}, fmt.Errorf("exp: event conservation violated: %d events scheduled, %d fired", sch, fired)
		}
		if !sys.Drained() {
			return Metrics{}, fmt.Errorf("exp: channel queues not drained at end of run")
		}
		if err := sys.CheckErr(); err != nil {
			return Metrics{}, err
		}
	}

	var m Metrics
	var instr int64
	for _, c := range cores {
		done, ft := c.Finished()
		if !done {
			return Metrics{}, fmt.Errorf("exp: core did not finish")
		}
		if ft > m.Cycles {
			m.Cycles = ft
		}
		instr += c.Stats.Instructions
	}
	m.Instructions = instr
	if m.Cycles > 0 {
		m.IPC = float64(instr) / float64(m.Cycles)
	}

	st := &sys.Stats
	m.DataReads = st.DataReads.Value()
	m.DataWrites = st.DataWrites.Value()
	m.MetaReads = st.MetaReads.Value()
	m.MetaWrites = st.MetaWrites.Value()
	m.RAReads = st.RAReads.Value()
	m.RAWrites = st.RAWrites.Value()
	m.CorrectionReads = st.CorrectionReads.Value()
	m.TotalRequests = st.TotalRequests()
	m.AvgReadLatency = st.ReadLatency.Value()
	m.CompressedReadFrac = st.CompressedReads.Value()

	var rowHits, rowTotal uint64
	for _, ch := range sys.Channels() {
		m.BytesMoved += ch.Stats.BytesRead.Value() + ch.Stats.BytesWritten.Value()
		rowHits += ch.Stats.RowHits.Hits()
		rowTotal += ch.Stats.RowHits.Total()
	}
	if rowTotal > 0 {
		m.RowHitRate = float64(rowHits) / float64(rowTotal)
	}
	if m.Cycles > 0 {
		m.BandwidthBytesPerKCycle = float64(m.BytesMoved) / float64(m.Cycles) * 1000
	}
	e := sys.TotalEnergy()
	ranks := cfg.DRAM.Channels * cfg.DRAM.RanksPerCh
	m.EnergyNJ = e.TotalNJ(m.Cycles, cfg.CPU.ClockGHz, ranks)
	m.EnergyActivateNJ, m.EnergyReadNJ, m.EnergyWriteNJ, m.EnergyRefreshNJ = e.Components()
	m.EnergyBackgroundNJ = dram.BackgroundNJ(m.Cycles, cfg.CPU.ClockGHz, ranks)

	if p := sys.Predictor(); p != nil {
		m.CoprAccuracy = p.Accuracy()
		total := p.Stats.Overall.Total()
		for i := range m.CoprSourceShare {
			r := p.Stats.BySource[i]
			if total > 0 {
				m.CoprSourceShare[i] = float64(r.Total()) / float64(total)
			}
			m.CoprSourceAcc[i] = r.Value()
		}
	}
	m.ECCAccuracy = sys.Stats.ECCPrediction.Value()
	if mc := sys.MetadataCache(); mc != nil {
		m.MDHitRate = mc.Stats.HitRate()
	}
	if llc.Stats.Accesses.Value() > 0 {
		m.LLCMissRate = 1 - llc.Stats.HitRate()
	}
	return m, nil
}
