package exp

import (
	"testing"

	"attache/internal/config"
	"attache/internal/trace"
)

// TestCheckedRunsClean runs whole-system simulations with checking fully
// on: the invariant audits and (for Attaché) the differential oracle must
// stay silent on correct code. The mix workload exercises the region
// router's byte-level forwarding.
func TestCheckedRunsClean(t *testing.T) {
	cases := []struct {
		name     string
		workload string
		kind     config.SystemKind
	}{
		{"attache-rate", "zeusmp", config.SystemAttache},
		{"attache-mix", "MIX1", config.SystemAttache},
		{"baseline", "lbm", config.SystemBaseline},
		{"mdcache", "mcf", config.SystemMDCache},
		{"ideal", "milc", config.SystemIdeal},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := config.Default()
			cfg.Check = config.CheckOracle
			var profs []trace.Profile
			var err error
			if m, ok := mixByName(tc.workload); ok {
				profs, err = MixProfiles(m)
			} else {
				var p trace.Profile
				p, err = trace.ByName(tc.workload)
				if err == nil {
					profs = RateMode(p, cfg.CPU.Cores)
				}
			}
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Run(RunConfig{
				Cfg: cfg, Kind: tc.kind, Profiles: profs,
				AccessesPerCore: 1500, Seed: 42,
			}); err != nil {
				t.Fatalf("checked %s run failed: %v", tc.name, err)
			}
		})
	}
}

func mixByName(name string) (trace.Mix, bool) {
	for _, m := range trace.Mixes() {
		if m.Name == name {
			return m, true
		}
	}
	return trace.Mix{}, false
}
