package exp

import (
	"math"
	"strings"
	"testing"

	"attache/internal/stats"
	"attache/internal/trace"
)

func statsTableForTest() *stats.Table {
	tb := stats.NewTable("t", "a", "b")
	tb.AddRow("x|y", 1, 2.5)
	return tb
}

// tinyHarness trims the workload set and run length so every experiment
// can execute in test time. Experiments are exercised end-to-end; the
// paper-scale numbers are produced by the CLI / benchmarks.
func tinyHarness() *Harness {
	h := NewHarness(0.1) // 1200 accesses per core
	return h
}

// tinyWorkloads monkey-patches nothing: the harness always runs the full
// catalog, so tests that sweep all workloads use an even smaller scale.
func sweepHarness() *Harness {
	h := NewHarness(0)
	h.AccessesPerCore = 600
	return h
}

func TestFig4CompressibilityShape(t *testing.T) {
	h := tinyHarness()
	tab, err := h.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != len(trace.Catalog())+1 {
		t.Fatalf("rows = %d", tab.Rows())
	}
	// Suite mean ~50% (paper Fig. 4); per-benchmark values match their
	// profile targets within sampling noise.
	mean := tab.Cell(tab.Rows()-1, 0)
	if mean < 45 || mean > 55 {
		t.Fatalf("mean compressibility = %.1f%%, want ~50%%", mean)
	}
	for i, p := range trace.Catalog() {
		got := tab.Cell(i, 0)
		if math.Abs(got-p.CompressibleFrac*100) > 6 {
			t.Errorf("%s: measured %.1f%%, profile %.1f%%", p.Name, got, p.CompressibleFrac*100)
		}
	}
}

func TestFig2SubRankingShape(t *testing.T) {
	h := tinyHarness()
	tab, err := h.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	// (a) baseline: idle latency 120 cycles.
	if tab.Cell(0, 0) != 120 {
		t.Fatalf("baseline idle latency = %v", tab.Cell(0, 0))
	}
	// (b) sub-ranking alone: same bandwidth as one bus, higher latency.
	if tab.Cell(1, 0) <= tab.Cell(0, 0) {
		t.Fatal("sub-rank-only idle latency should exceed baseline")
	}
	// (c) sub-ranking + compression: baseline latency, ~2x bandwidth.
	if tab.Cell(2, 0) != 120 {
		t.Fatalf("compressed idle latency = %v, want 120", tab.Cell(2, 0))
	}
	if rb := tab.Cell(2, 2); rb < 1.7 {
		t.Fatalf("compressed relative bandwidth = %.2f, want ~2", rb)
	}
	if rb := tab.Cell(1, 2); rb > 1.2 {
		t.Fatalf("sub-rank-only relative bandwidth = %.2f, want ~1", rb)
	}
}

func TestFig8CollisionCurve(t *testing.T) {
	h := tinyHarness()
	tab, err := h.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	// Analytic column is monotonically increasing; at 32K accesses the
	// collision probability is ~63% (paper: "a 15-bit CID collides every
	// 32K accesses").
	prev := 0.0
	for i := 0; i < tab.Rows(); i++ {
		if tab.Cell(i, 0) < prev {
			t.Fatal("analytic curve not monotone")
		}
		prev = tab.Cell(i, 0)
	}
	found32k := false
	for i := 0; i < tab.Rows(); i++ {
		if tab.RowLabel(i) == "32768 accesses" {
			found32k = true
			if a := tab.Cell(i, 0); a < 0.60 || a > 0.66 {
				t.Fatalf("P(collision | 32K) = %.3f, want ~0.63", a)
			}
			// Measured within Monte-Carlo noise of analytic.
			if m := tab.Cell(i, 1); math.Abs(m-tab.Cell(i, 0)) > 0.2 {
				t.Fatalf("measured %.3f far from analytic %.3f", m, tab.Cell(i, 0))
			}
		}
	}
	if !found32k {
		t.Fatal("32K row missing")
	}
}

func TestTable1Shape(t *testing.T) {
	h := tinyHarness()
	tab, err := h.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 3 {
		t.Fatalf("rows = %d, want 3", tab.Rows())
	}
	// Paper Table I: 15 bits -> 0.003%, halving the width doubles it.
	wants := []float64{0.003, 0.006, 0.012}
	for i, want := range wants {
		got := tab.Cell(i, 1)
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("row %d analytic = %.4f%%, want %.4f%%", i, got, want)
		}
		measured := tab.Cell(i, 2)
		if measured <= 0 || math.Abs(measured-want)/want > 0.6 {
			t.Errorf("row %d measured = %.4f%%, want ~%.4f%%", i, measured, want)
		}
	}
}

func TestFig12SmallSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite sweep")
	}
	h := sweepHarness()
	tab, err := h.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	mean := tab.Rows() - 1
	mdAvg, attAvg, idealAvg := tab.Cell(mean, 0), tab.Cell(mean, 1), tab.Cell(mean, 2)
	t.Logf("fig12 means at tiny scale: md=%.3f att=%.3f ideal=%.3f", mdAvg, attAvg, idealAvg)
	if !(attAvg > mdAvg) {
		t.Fatalf("attache (%.3f) must beat metadata caching (%.3f) on average", attAvg, mdAvg)
	}
	if !(idealAvg >= attAvg-0.02) {
		t.Fatalf("ideal (%.3f) must bound attache (%.3f)", idealAvg, attAvg)
	}
	if attAvg < 1.02 {
		t.Fatalf("attache average speedup %.3f, want clearly positive", attAvg)
	}
}

func TestFig13EnergyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite sweep")
	}
	h := sweepHarness()
	tab, err := h.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	mean := tab.Rows() - 1
	mdE, attE, idealE := tab.Cell(mean, 0), tab.Cell(mean, 1), tab.Cell(mean, 2)
	t.Logf("fig13 means at tiny scale: md=%.3f att=%.3f ideal=%.3f", mdE, attE, idealE)
	if !(attE < 1.0) {
		t.Fatalf("attache energy %.3f, want < baseline", attE)
	}
	if !(attE < mdE) {
		t.Fatalf("attache energy (%.3f) must beat metadata caching (%.3f)", attE, mdE)
	}
	if !(idealE <= attE+0.02) {
		t.Fatalf("ideal energy (%.3f) must bound attache (%.3f)", idealE, attE)
	}
}

func TestFig16PolicyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite sweep")
	}
	h := sweepHarness()
	tab, err := h.Fig16()
	if err != nil {
		t.Fatal(err)
	}
	mean := tab.Rows() - 1
	lru := tab.Cell(mean, 0)
	if lru <= 0.3 || lru > 1 {
		t.Fatalf("LRU mean hit rate = %.3f", lru)
	}
	// Paper: fancy policies buy only ~2%; allow generous slack but they
	// must be in the same ballpark as LRU.
	for c := 1; c < 3; c++ {
		if math.Abs(tab.Cell(mean, c)-lru) > 0.15 {
			t.Fatalf("policy %s mean %.3f far from LRU %.3f", tab.Columns[c], tab.Cell(mean, c), lru)
		}
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	h := tinyHarness()
	order, runners := h.Experiments()
	if len(order) != 17 {
		t.Fatalf("experiments = %d, want 17 (13 paper artifacts + 4 extensions)", len(order))
	}
	for _, id := range order {
		if runners[id] == nil {
			t.Fatalf("experiment %q has no runner", id)
		}
	}
}

func TestRunCacheReused(t *testing.T) {
	h := sweepHarness()
	runs := 0
	h.Progress = func(string) { runs++ }
	if _, err := h.run("lbm", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.run("lbm", 0); err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Fatalf("cache miss: %d runs for identical request", runs)
	}
}

func TestMarkdownTableRender(t *testing.T) {
	tb := statsTableForTest()
	md := MarkdownTable(tb)
	want := "| benchmark | a | b |\n|---|---:|---:|\n| x\\|y | 1.000 | 2.500 |\n"
	if md != want {
		t.Fatalf("markdown = %q, want %q", md, want)
	}
}

func TestWriteReportTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	h := sweepHarness()
	var sb strings.Builder
	if err := h.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"# Attaché reproduction report", "Fig 12", "Paper vs measured", "COPR anatomy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

// TestExperimentShapesShareOneSweep validates the structural properties
// of the remaining experiment tables from a single cached sweep.
func TestExperimentShapesShareOneSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite sweep")
	}
	h := sweepHarness()
	n := len(h.Workloads())

	fig1, err := h.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if fig1.Rows() != n+1 {
		t.Fatalf("fig1 rows = %d", fig1.Rows())
	}
	if mean := fig1.Cell(n, 1); mean <= 0 {
		t.Fatalf("fig1 mean extra traffic = %v, want positive", mean)
	}

	fig11, err := h.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if acc := fig11.Cell(n, 0); acc < 0.5 || acc > 1 {
		t.Fatalf("fig11 mean accuracy = %v", acc)
	}

	fig14, err := h.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	// Mean row: attache latency must beat mdcache latency; attache
	// bandwidth must beat mdcache bandwidth.
	if !(fig14.Cell(n, 1) > fig14.Cell(n, 0)) {
		t.Fatalf("fig14: attache bw %.3f not above mdcache %.3f", fig14.Cell(n, 1), fig14.Cell(n, 0))
	}
	if !(fig14.Cell(n, 4) < fig14.Cell(n, 3)) {
		t.Fatalf("fig14: attache latency %.3f not below mdcache %.3f", fig14.Cell(n, 4), fig14.Cell(n, 3))
	}

	fig15, err := h.Fig15()
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < fig15.Rows(); r++ {
		if fig15.Cell(r, 2) < 1 {
			t.Fatalf("fig15 %s: normalized total %.3f below 1", fig15.RowLabel(r), fig15.Cell(r, 2))
		}
	}

	anat, err := h.CoprAnatomy()
	if err != nil {
		t.Fatal(err)
	}
	// Shares of the three levels (plus the default source, not shown)
	// cannot exceed 1.
	for r := 0; r < anat.Rows(); r++ {
		share := anat.Cell(r, 0) + anat.Cell(r, 2) + anat.Cell(r, 4)
		if share > 1.0001 {
			t.Fatalf("%s: source shares sum to %.3f", anat.RowLabel(r), share)
		}
	}

	pred, err := h.Predictors()
	if err != nil {
		t.Fatal(err)
	}
	// COPR must be at least as accurate as the last-outcome predictor on
	// average (that is the point of the comparison).
	if !(pred.Cell(n, 3) > pred.Cell(n, 2)) {
		t.Fatalf("copr accuracy %.3f not above last-outcome %.3f", pred.Cell(n, 3), pred.Cell(n, 2))
	}

	eb, err := h.EnergyBreakdown()
	if err != nil {
		t.Fatal(err)
	}
	// Component fractions sum to ~1 for every system.
	for r := 0; r < eb.Rows(); r++ {
		var sum float64
		for c := 0; c < 5; c++ {
			sum += eb.Cell(r, c)
		}
		if sum < 0.98 || sum > 1.02 {
			t.Fatalf("%s: energy fractions sum to %.3f", eb.RowLabel(r), sum)
		}
	}
}
