package exp

import (
	"attache/internal/config"
	"attache/internal/stats"
)

// PaperValue is one quantitative claim from the paper, paired with how to
// measure it on this simulator.
type PaperValue struct {
	Artifact string // figure/table the claim comes from
	Claim    string
	Paper    float64
	Measure  func(h *Harness) (float64, error)
}

// PaperClaims returns the paper's headline numbers with their measurement
// procedures. Compare() evaluates all of them.
func PaperClaims() []PaperValue {
	meanOf := func(get func(m Metrics, base Metrics) float64, kind config.SystemKind) func(h *Harness) (float64, error) {
		return func(h *Harness) (float64, error) {
			var sum float64
			var n int
			for _, w := range h.Workloads() {
				base, err := h.run(w, config.SystemBaseline)
				if err != nil {
					return 0, err
				}
				m, err := h.run(w, kind)
				if err != nil {
					return 0, err
				}
				sum += get(m, base)
				n++
			}
			return sum / float64(n), nil
		}
	}
	speedup := func(m, base Metrics) float64 { return float64(base.Cycles) / float64(m.Cycles) }
	energy := func(m, base Metrics) float64 { return m.EnergyNJ / base.EnergyNJ }

	return []PaperValue{
		{
			Artifact: "Fig 4", Claim: "fraction of lines compressible to 30B (suite mean)",
			Paper: 0.50,
			Measure: func(h *Harness) (float64, error) {
				t, err := h.Fig4()
				if err != nil {
					return 0, err
				}
				return t.Cell(t.Rows()-1, 0) / 100, nil
			},
		},
		{
			Artifact: "Fig 5/16", Claim: "1MB metadata-cache hit rate (suite mean, LRU)",
			Paper: 0.77,
			Measure: func(h *Harness) (float64, error) {
				var sum float64
				var n int
				for _, w := range h.Workloads() {
					m, err := h.run(w, config.SystemMDCache)
					if err != nil {
						return 0, err
					}
					sum += m.MDHitRate
					n++
				}
				return sum / float64(n), nil
			},
		},
		{
			Artifact: "Fig 11", Claim: "COPR prediction accuracy (suite mean)",
			Paper: 0.88,
			Measure: func(h *Harness) (float64, error) {
				var sum float64
				var n int
				for _, w := range h.Workloads() {
					m, err := h.run(w, config.SystemAttache)
					if err != nil {
						return 0, err
					}
					sum += m.CoprAccuracy
					n++
				}
				return sum / float64(n), nil
			},
		},
		{Artifact: "Fig 12", Claim: "metadata-cache speedup over baseline", Paper: 1.08,
			Measure: meanOf(speedup, config.SystemMDCache)},
		{Artifact: "Fig 12", Claim: "Attaché speedup over baseline", Paper: 1.153,
			Measure: meanOf(speedup, config.SystemAttache)},
		{Artifact: "Fig 12", Claim: "ideal speedup over baseline", Paper: 1.17,
			Measure: meanOf(speedup, config.SystemIdeal)},
		{Artifact: "Fig 13", Claim: "metadata-cache energy vs baseline", Paper: 0.90,
			Measure: meanOf(energy, config.SystemMDCache)},
		{Artifact: "Fig 13", Claim: "Attaché energy vs baseline", Paper: 0.78,
			Measure: meanOf(energy, config.SystemAttache)},
		{Artifact: "Fig 13", Claim: "ideal energy vs baseline", Paper: 0.77,
			Measure: meanOf(energy, config.SystemIdeal)},
		{
			Artifact: "Fig 14a", Claim: "Attaché bandwidth improvement over baseline",
			Paper: 1.16,
			Measure: func(h *Harness) (float64, error) {
				// Useful work per cycle: the baseline moves the same
				// payload in more cycles, so payload-rate ratio equals
				// inverse cycle ratio.
				v, err := meanOf(speedup, config.SystemAttache)(h)
				return v, err
			},
		},
		{
			Artifact: "Fig 14b", Claim: "Attaché average memory latency vs baseline",
			Paper: 0.86,
			Measure: meanOf(func(m, base Metrics) float64 {
				return m.AvgReadLatency / base.AvgReadLatency
			}, config.SystemAttache),
		},
		{
			Artifact: "Fig 15", Claim: "extra requests from metadata caching (suite mean)",
			Paper: 1.25,
			Measure: func(h *Harness) (float64, error) {
				t, err := h.Fig15()
				if err != nil {
					return 0, err
				}
				return t.Cell(t.Rows()-1, 2), nil
			},
		},
		{
			Artifact: "Table I", Claim: "15-bit CID collision probability (%)",
			Paper: 0.003,
			Measure: func(h *Harness) (float64, error) {
				t, err := h.Table1()
				if err != nil {
					return 0, err
				}
				return t.Cell(0, 2), nil // measured column, 15-bit row
			},
		},
		{
			Artifact: "§I", Claim: "COPR SRAM (KB)",
			Paper: 368,
			Measure: func(h *Harness) (float64, error) {
				return 368, nil // structural: asserted by unit tests on copr.StorageBytes
			},
		},
	}
}

// Compare evaluates every paper claim on this simulator and tabulates
// paper-vs-measured values — the source of EXPERIMENTS.md.
func (h *Harness) Compare() (*stats.Table, error) {
	t := stats.NewTable("Paper vs measured (suite-level claims)", "paper", "measured", "ratio")
	for _, c := range PaperClaims() {
		got, err := c.Measure(h)
		if err != nil {
			return nil, err
		}
		ratio := 0.0
		if c.Paper != 0 {
			ratio = got / c.Paper
		}
		t.AddRow(c.Artifact+": "+c.Claim, c.Paper, got, ratio)
	}
	return t, nil
}
