package exp

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"attache/internal/config"
)

// update regenerates the golden figure snapshots:
//
//	go test ./internal/exp -run TestGolden -update
//
// Regenerating on an unchanged tree is byte-identical (the harness is
// deterministic); commit the diff only when a figure shift is intended
// and explain it in the commit message (EXPERIMENTS.md).
var update = flag.Bool("update", false, "rewrite testdata/golden snapshots")

// goldenCases are the regression-tracked figures with their tolerance
// bands. Bands are wide enough to absorb cross-platform floating-point
// drift and deliberate noise sources, and tight enough that any real
// model change trips them.
var goldenCases = []struct {
	id  string
	tol tolerance
}{
	{"fig1", tolerance{Rel: 0.05, Abs: 0.5}},   // percentages
	{"fig4", tolerance{Rel: 0.01, Abs: 0.5}},   // deterministic sampling
	{"fig8", tolerance{Rel: 0.02, Abs: 0.03}},  // Monte-Carlo probabilities
	{"tab1", tolerance{Rel: 0.05, Abs: 0.02}},  // collision percentages
	{"fig11", tolerance{Rel: 0.02, Abs: 0.02}}, // predictor accuracy
	{"fig12", tolerance{Rel: 0.02, Abs: 0.01}}, // speedups
}

// goldenHarness is the fixed small-scale configuration behind the golden
// snapshots. Scale 0.1 (1200 references per core) keeps the full set in
// seconds while preserving every figure's shape; the seed list and
// config must never change without regenerating the snapshots.
func goldenHarness() *Harness {
	h := NewHarness(0.1)
	h.Seeds = []int64{42}
	h.Cfg.Check = config.CheckInvariants
	return h
}

// TestGolden regenerates the six tracked figures at small scale and
// diffs them against the checked-in snapshots.
func TestGolden(t *testing.T) {
	h := goldenHarness()
	_, runners := h.Experiments()
	ids := make([]string, len(goldenCases))
	for i, tc := range goldenCases {
		ids[i] = tc.id
	}
	h.Prefetch(ids...)

	if *update {
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, tc := range goldenCases {
		t.Run(tc.id, func(t *testing.T) {
			tab, err := runners[tc.id]()
			if err != nil {
				t.Fatalf("%s failed: %v", tc.id, err)
			}
			got := snapshotTable(tab)
			path := filepath.Join("testdata", "golden", tc.id+".json")
			if *update {
				if err := writeGolden(path, got); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := readGolden(path)
			if err != nil {
				t.Fatalf("no golden snapshot (regenerate with -update): %v", err)
			}
			if err := compareGolden(got, want, tc.tol); err != nil {
				t.Errorf("%s regressed: %v", tc.id, err)
			}
		})
	}
}

// TestGoldenComparator covers the comparator itself: structural changes
// and out-of-band cells must fail, in-band drift must pass.
func TestGoldenComparator(t *testing.T) {
	base := goldenTable{
		Title:   "t",
		Columns: []string{"a", "b"},
		Rows:    []goldenRow{{Label: "r1", Cells: []float64{1.0, 2.0}}},
	}
	tol := tolerance{Rel: 0.05, Abs: 0.01}

	drift := base
	drift.Rows = []goldenRow{{Label: "r1", Cells: []float64{1.04, 2.0}}}
	if err := compareGolden(drift, base, tol); err != nil {
		t.Fatalf("in-band drift must pass: %v", err)
	}

	off := base
	off.Rows = []goldenRow{{Label: "r1", Cells: []float64{1.2, 2.0}}}
	if err := compareGolden(off, base, tol); err == nil {
		t.Fatal("out-of-band cell must fail")
	}

	relabeled := base
	relabeled.Rows = []goldenRow{{Label: "r2", Cells: []float64{1.0, 2.0}}}
	if err := compareGolden(relabeled, base, tol); err == nil {
		t.Fatal("row relabel must fail")
	}

	recol := base
	recol.Columns = []string{"a", "c"}
	if err := compareGolden(recol, base, tol); err == nil {
		t.Fatal("column rename must fail")
	}
}
