package exp

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"attache/internal/stats"
)

// goldenTable is the JSON snapshot of one experiment's result table, the
// unit of the golden-figure regression harness (EXPERIMENTS.md): small
// deterministic runs of the paper's figures are checked in under
// testdata/golden/ and every change to the simulator is diffed against
// them within per-experiment tolerance bands.
type goldenTable struct {
	Title   string      `json:"title"`
	Columns []string    `json:"columns"`
	Rows    []goldenRow `json:"rows"`
}

type goldenRow struct {
	Label string    `json:"label"`
	Cells []float64 `json:"cells"`
}

// snapshotTable converts a result table into its golden form.
func snapshotTable(t *stats.Table) goldenTable {
	g := goldenTable{Title: t.Title, Columns: append([]string(nil), t.Columns...)}
	for r := 0; r < t.Rows(); r++ {
		row := goldenRow{Label: t.RowLabel(r), Cells: make([]float64, len(t.Columns))}
		for c := range t.Columns {
			row.Cells[c] = t.Cell(r, c)
		}
		g.Rows = append(g.Rows, row)
	}
	return g
}

// tolerance is one experiment's accepted deviation: a cell passes when
// |got-want| <= Abs + Rel*|want|. Structure (title, columns, row labels)
// must always match exactly.
type tolerance struct {
	Rel float64
	Abs float64
}

// compareGolden diffs a regenerated table against its checked-in golden
// snapshot and reports the first out-of-band cell.
func compareGolden(got, want goldenTable, tol tolerance) error {
	if got.Title != want.Title {
		return fmt.Errorf("title changed: got %q, want %q", got.Title, want.Title)
	}
	if len(got.Columns) != len(want.Columns) {
		return fmt.Errorf("column count changed: got %d, want %d", len(got.Columns), len(want.Columns))
	}
	for i := range got.Columns {
		if got.Columns[i] != want.Columns[i] {
			return fmt.Errorf("column %d changed: got %q, want %q", i, got.Columns[i], want.Columns[i])
		}
	}
	if len(got.Rows) != len(want.Rows) {
		return fmt.Errorf("row count changed: got %d, want %d", len(got.Rows), len(want.Rows))
	}
	for r := range got.Rows {
		if got.Rows[r].Label != want.Rows[r].Label {
			return fmt.Errorf("row %d label changed: got %q, want %q", r, got.Rows[r].Label, want.Rows[r].Label)
		}
		for c := range want.Rows[r].Cells {
			g, w := got.Rows[r].Cells[c], want.Rows[r].Cells[c]
			if math.Abs(g-w) > tol.Abs+tol.Rel*math.Abs(w) {
				return fmt.Errorf("%s / %s: got %.6g, want %.6g (tolerance rel=%g abs=%g)",
					got.Rows[r].Label, want.Columns[c], g, w, tol.Rel, tol.Abs)
			}
		}
	}
	return nil
}

// writeGolden serializes a snapshot with a trailing newline; regenerating
// an unchanged tree is byte-identical (json.MarshalIndent is
// deterministic).
func writeGolden(path string, g goldenTable) error {
	data, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// readGolden loads a checked-in snapshot.
func readGolden(path string) (goldenTable, error) {
	var g goldenTable
	data, err := os.ReadFile(path)
	if err != nil {
		return g, err
	}
	if err := json.Unmarshal(data, &g); err != nil {
		return g, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}
