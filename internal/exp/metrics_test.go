package exp

import (
	"testing"

	"attache/internal/trace"
)

func TestAddAndScaleMetrics(t *testing.T) {
	a := Metrics{Cycles: 100, DataReads: 10, EnergyNJ: 5, CoprAccuracy: 0.8}
	b := Metrics{Cycles: 300, DataReads: 30, EnergyNJ: 15, CoprAccuracy: 0.6}
	sum := addMetrics(a, b)
	if sum.Cycles != 400 || sum.DataReads != 40 || sum.EnergyNJ != 20 {
		t.Fatalf("add wrong: %+v", sum)
	}
	avg := scaleMetrics(sum, 0.5)
	if avg.Cycles != 200 || avg.DataReads != 20 || avg.EnergyNJ != 10 {
		t.Fatalf("scale wrong: %+v", avg)
	}
	if avg.CoprAccuracy != 0.7 {
		t.Fatalf("accuracy avg = %v", avg.CoprAccuracy)
	}
}

func TestSeedAveraging(t *testing.T) {
	runWith := func(seeds []int64) Metrics {
		h := NewHarness(0)
		h.AccessesPerCore = 400
		h.Seeds = seeds
		m, err := h.run("lbm", 0)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m := runWith([]int64{1, 2})
	m1 := runWith([]int64{1})
	m2 := runWith([]int64{2})
	want := (m1.Cycles + m2.Cycles) / 2
	diff := m.Cycles - want
	if diff < -1 || diff > 1 {
		t.Fatalf("seed average %d != mean(%d, %d)", m.Cycles, m1.Cycles, m2.Cycles)
	}
}

func TestRegionModelRouting(t *testing.T) {
	lbm, err := trace.ByName("lbm")
	if err != nil {
		t.Fatal(err)
	}
	libq, err := trace.ByName("libquantum")
	if err != nil {
		t.Fatal(err)
	}
	rm := regionModel{
		sliceLines: mixSliceLines,
		models:     []*trace.DataModel{lbm.DataModel(), libq.DataModel()},
	}
	// Slice 0 behaves like lbm (56% compressible), slice 1 like
	// libquantum (4%).
	countComp := func(base uint64) int {
		n := 0
		for i := uint64(0); i < 2000; i++ {
			if rm.Compressible(base + i) {
				n++
			}
		}
		return n
	}
	if c := countComp(0); c < 800 {
		t.Fatalf("slice 0 compressible = %d/2000, want lbm-like", c)
	}
	if c := countComp(mixSliceLines); c > 300 {
		t.Fatalf("slice 1 compressible = %d/2000, want libquantum-like", c)
	}
	// Out-of-range addresses clamp to the last model instead of panicking.
	if rm.Compressible(mixSliceLines*10) != rm.modelFor(mixSliceLines*10).Compressible(mixSliceLines*10) {
		t.Fatal("overflow address routing inconsistent")
	}
}

func TestLLCWarmupProducesWriteTraffic(t *testing.T) {
	// The warmup makes eviction writebacks appear from the very start of
	// measurement: a short run must already show writes for a workload
	// with stores.
	m := smallRun(t, "lbm", 0, 1500)
	if m.DataWrites == 0 {
		t.Fatal("no write traffic despite warmed LLC and 45% stores")
	}
}
