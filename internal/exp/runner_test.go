package exp

import (
	"strings"
	"testing"

	"attache/internal/config"
	"attache/internal/trace"
)

func smallRun(t *testing.T, name string, kind config.SystemKind, accesses int64) Metrics {
	t.Helper()
	p, err := trace.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default()
	m, err := Run(RunConfig{
		Cfg:             cfg,
		Kind:            kind,
		Profiles:        RateMode(p, cfg.CPU.Cores),
		AccessesPerCore: accesses,
		Seed:            42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunCompletesAndCounts(t *testing.T) {
	m := smallRun(t, "lbm", config.SystemBaseline, 2000)
	if m.Cycles <= 0 || m.Instructions <= 0 {
		t.Fatalf("cycles=%d instr=%d", m.Cycles, m.Instructions)
	}
	if m.IPC <= 0 || m.IPC > 32 {
		t.Fatalf("aggregate IPC = %v", m.IPC)
	}
	if m.DataReads == 0 || m.BytesMoved == 0 {
		t.Fatal("no memory traffic recorded")
	}
	if m.MetaReads != 0 || m.RAReads != 0 {
		t.Fatal("baseline must not issue metadata or RA traffic")
	}
}

func TestIdealFasterThanBaselineOnCompressibleWorkload(t *testing.T) {
	base := smallRun(t, "lbm", config.SystemBaseline, 3000)
	ideal := smallRun(t, "lbm", config.SystemIdeal, 3000)
	speedup := float64(base.Cycles) / float64(ideal.Cycles)
	if speedup < 1.02 {
		t.Fatalf("ideal speedup = %.3f on lbm (56%% compressible), want > 1.02", speedup)
	}
	if ideal.BytesMoved >= base.BytesMoved {
		t.Fatalf("ideal moved %d bytes vs baseline %d", ideal.BytesMoved, base.BytesMoved)
	}
}

func TestAttacheBetweenMDCacheAndIdeal(t *testing.T) {
	base := smallRun(t, "zeusmp", config.SystemBaseline, 3000)
	md := smallRun(t, "zeusmp", config.SystemMDCache, 3000)
	att := smallRun(t, "zeusmp", config.SystemAttache, 3000)
	ideal := smallRun(t, "zeusmp", config.SystemIdeal, 3000)

	sMD := float64(base.Cycles) / float64(md.Cycles)
	sAtt := float64(base.Cycles) / float64(att.Cycles)
	sIdeal := float64(base.Cycles) / float64(ideal.Cycles)
	t.Logf("speedups: md=%.3f attache=%.3f ideal=%.3f", sMD, sAtt, sIdeal)
	if !(sAtt > sMD) {
		t.Fatalf("attache (%.3f) should beat mdcache (%.3f)", sAtt, sMD)
	}
	if !(sIdeal >= sAtt) {
		t.Fatalf("ideal (%.3f) should bound attache (%.3f)", sIdeal, sAtt)
	}
	if att.CoprAccuracy < 0.7 {
		t.Fatalf("COPR accuracy = %.3f on homogeneous workload", att.CoprAccuracy)
	}
	if md.MDHitRate <= 0 {
		t.Fatal("mdcache hit rate not recorded")
	}
	if md.MetaReads == 0 {
		t.Fatal("mdcache system must fetch metadata")
	}
	if att.MetaReads != 0 {
		t.Fatal("attache must not fetch metadata")
	}
}

func TestIncompressibleWorkloadNoHarm(t *testing.T) {
	base := smallRun(t, "libquantum", config.SystemBaseline, 3000)
	att := smallRun(t, "libquantum", config.SystemAttache, 3000)
	s := float64(base.Cycles) / float64(att.Cycles)
	if s < 0.95 {
		t.Fatalf("attache slows incompressible workload by %.3f", s)
	}
}

func TestMixRunsPerCoreProfiles(t *testing.T) {
	mix := trace.Mixes()[0]
	profs, err := MixProfiles(mix)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(RunConfig{
		Cfg:             config.Default(),
		Kind:            config.SystemAttache,
		Profiles:        profs,
		AccessesPerCore: 1500,
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Cycles == 0 || m.CoprAccuracy == 0 {
		t.Fatal("mix run produced no results")
	}
}

func TestRunValidation(t *testing.T) {
	p, _ := trace.ByName("lbm")
	cfg := config.Default()
	if _, err := Run(RunConfig{Cfg: cfg, Profiles: nil, AccessesPerCore: 10}); err == nil {
		t.Fatal("expected error for no profiles")
	}
	if _, err := Run(RunConfig{Cfg: cfg, Profiles: RateMode(p, 3), AccessesPerCore: 10}); err == nil {
		t.Fatal("expected error for profile/core mismatch")
	}
	if _, err := Run(RunConfig{Cfg: cfg, Profiles: RateMode(p, cfg.CPU.Cores), AccessesPerCore: 0}); err == nil {
		t.Fatal("expected error for zero accesses")
	}
}

func TestRunDeterministic(t *testing.T) {
	a := smallRun(t, "mcf", config.SystemAttache, 1000)
	b := smallRun(t, "mcf", config.SystemAttache, 1000)
	if a.Cycles != b.Cycles || a.TotalRequests != b.TotalRequests {
		t.Fatalf("runs differ: %d/%d vs %d/%d", a.Cycles, a.TotalRequests, b.Cycles, b.TotalRequests)
	}
}

func TestRunWithExternalSources(t *testing.T) {
	cfg := config.Default()
	// A small looping trace shared by every core, with an explicit line
	// model (70% compressible).
	mkSource := func() trace.Source {
		ft, err := trace.ParseTrace(strings.NewReader(
			"R 0x100000 10\nW 0x200000 10\nR 0x300040 10\nR 0x8000000 10\n"))
		if err != nil {
			t.Fatal(err)
		}
		return ft
	}
	sources := make([]trace.Source, cfg.CPU.Cores)
	for i := range sources {
		sources[i] = mkSource()
	}
	p, _ := trace.ByName("lbm")
	m, err := Run(RunConfig{
		Cfg:             cfg,
		Kind:            config.SystemAttache,
		Profiles:        RateMode(p, cfg.CPU.Cores),
		AccessesPerCore: 2000,
		Seed:            3,
		Sources:         sources,
		LineModel:       trace.NewDataModel(1, 0.7, 0.9),
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Cycles == 0 {
		t.Fatal("no cycles simulated")
	}
	// Four distinct lines per core shared across cores: tiny footprint,
	// so after warmup nearly everything hits the LLC.
	if m.LLCMissRate > 0.05 {
		t.Fatalf("LLC miss rate %.3f on a 4-line trace, want ~0", m.LLCMissRate)
	}
}

func TestRunSourceCountValidated(t *testing.T) {
	cfg := config.Default()
	p, _ := trace.ByName("lbm")
	_, err := Run(RunConfig{
		Cfg:             cfg,
		Kind:            config.SystemBaseline,
		Profiles:        RateMode(p, cfg.CPU.Cores),
		AccessesPerCore: 100,
		Sources:         make([]trace.Source, 2), // wrong count
	})
	if err == nil {
		t.Fatal("expected source-count error")
	}
}
