package exp

import (
	"fmt"
	"sync"

	"attache/internal/config"
)

// This file is the parallel run scheduler. The paper's evaluation is
// embarrassingly parallel — every (workload, system, variant) simulation
// builds its own engine and shares no mutable state — so the harness
// splits experiment execution into two phases:
//
//  1. Plan: each experiment declares the runs it needs (needs below).
//     Runs shared across experiments (fig1/5/11..15 all reuse slices of
//     the four-system sweep) are deduplicated in declaration order.
//  2. Execute: Prefetch fans the deduplicated runs across
//     Harness.Parallelism workers. runCached's singleflight memoization
//     guarantees each key is simulated exactly once even when an
//     experiment races a prefetch worker for it.
//
// The experiment functions then aggregate from the warm cache serially, in
// planned order, so every table is byte-identical to a serial run: each
// run is a deterministic function of its key and the harness parameters,
// and no aggregation arithmetic is reordered.

// Shared sweep definitions — single source of truth for the experiment
// bodies (Fig5/Fig16/Fig17) and the planner, so declared needs cannot
// drift from what the figures actually request.

// mdcacheSweepSizes are Fig5's metadata-cache sizes.
var mdcacheSweepSizes = []int{64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20}

func mdcacheSizeVariant(size int) string { return fmt.Sprintf("size=%d", size) }

// mdcachePolicies are Fig16's replacement policies; "lru" is the default
// configuration and caches under the default ("") variant.
var mdcachePolicies = []string{"lru", "drrip", "ship"}

func mdcachePolicyVariant(pol string) string {
	if pol == "lru" {
		return ""
	}
	return "policy=" + pol
}

// coprVariant is one COPR component mix of Fig17.
type coprVariant struct {
	name           string // cache variant; "" is the full default predictor
	gi, papr, lipr bool
}

func (v coprVariant) apply(cfg config.Config) config.Config {
	cfg.Attache.EnableGI = v.gi
	cfg.Attache.EnablePaPR = v.papr
	cfg.Attache.EnableLiPR = v.lipr
	return cfg
}

var coprVariants = []coprVariant{
	{"papr", false, true, false},
	{"papr+gi", true, true, false},
	{"", true, true, true}, // default config: cached under ""
}

// runRequest is one planned simulation: the arguments of a runCached call.
type runRequest struct {
	name    string
	kind    config.SystemKind
	variant string
	cfg     config.Config
}

func (r runRequest) key() string { return runKey(r.name, r.kind, r.variant) }

// needs declares the simulations experiment id will request. Experiments
// that do not drive the full-system simulator (fig2/fig4/fig8/tab1)
// declare nothing. The declaration is a performance hint, not a
// correctness requirement: an undeclared run is simply executed by the
// experiment itself, serially, through the same memo cache.
func (h *Harness) needs(id string) []runRequest {
	defaults := func(kinds ...config.SystemKind) []runRequest {
		var out []runRequest
		for _, w := range h.Workloads() {
			for _, k := range kinds {
				out = append(out, runRequest{name: w, kind: k, cfg: h.Cfg})
			}
		}
		return out
	}
	switch id {
	case "fig1", "fig15":
		return defaults(config.SystemMDCache)
	case "fig5":
		out := defaults(config.SystemBaseline)
		for _, size := range mdcacheSweepSizes {
			cfg := h.Cfg
			cfg.MDCache.Bytes = size
			for _, w := range h.Workloads() {
				out = append(out, runRequest{
					name: w, kind: config.SystemMDCache,
					variant: mdcacheSizeVariant(size), cfg: cfg,
				})
			}
		}
		return out
	case "fig11", "copr-anatomy":
		return defaults(config.SystemAttache)
	case "fig12", "fig13", "fig14", "compare", "energy":
		return defaults(config.SystemBaseline, config.SystemMDCache,
			config.SystemAttache, config.SystemIdeal)
	case "fig16":
		var out []runRequest
		for _, pol := range mdcachePolicies {
			cfg := h.Cfg
			cfg.MDCache.Policy = pol
			for _, w := range h.Workloads() {
				out = append(out, runRequest{
					name: w, kind: config.SystemMDCache,
					variant: mdcachePolicyVariant(pol), cfg: cfg,
				})
			}
		}
		return out
	case "fig17":
		out := defaults(config.SystemBaseline)
		for _, v := range coprVariants {
			cfg := v.apply(h.Cfg)
			for _, w := range h.Workloads() {
				out = append(out, runRequest{
					name: w, kind: config.SystemAttache,
					variant: v.name, cfg: cfg,
				})
			}
		}
		return out
	case "predictors":
		return defaults(config.SystemBaseline, config.SystemECC, config.SystemAttache)
	default:
		return nil
	}
}

// planRuns flattens and deduplicates the needs of the given experiments,
// preserving first-declaration order.
func (h *Harness) planRuns(ids []string) []runRequest {
	seen := map[string]bool{}
	var out []runRequest
	for _, id := range ids {
		for _, r := range h.needs(id) {
			if k := r.key(); !seen[k] {
				seen[k] = true
				out = append(out, r)
			}
		}
	}
	return out
}

// Prefetch plans and executes every simulation the named experiments need,
// fanning them across Parallelism workers. It never fails: run errors are
// memoized and surface, unchanged, from the experiment that needs the
// failed run. Calling Prefetch is optional — experiments find any missing
// run on demand — and results are bit-identical with or without it, at any
// parallelism, because runs are independent deterministic simulations and
// tables are always aggregated serially in experiment order.
func (h *Harness) Prefetch(ids ...string) {
	reqs := h.planRuns(ids)
	par := h.parallelism()
	if par > len(reqs) {
		par = len(reqs)
	}
	if par <= 1 {
		// Serial mode: let the experiments themselves run on demand, in
		// exactly the order they would without a scheduler.
		return
	}
	work := make(chan runRequest)
	var wg sync.WaitGroup
	for i := 0; i < par; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range work {
				_, _ = h.runCached(r.name, r.kind, r.variant, r.cfg)
			}
		}()
	}
	for _, r := range reqs {
		work <- r
	}
	close(work)
	wg.Wait()
}

func (h *Harness) parallelism() int {
	if h.Parallelism > 0 {
		return h.Parallelism
	}
	// Zero value (harness built without NewHarness): stay serial.
	return 1
}
