// Package dram models the main-memory system of Table II: DDR4-style
// channels, ranks, sub-ranks, bank groups, banks, and rows with
// tRCD/tRP/tCAS timing, FR-FCFS scheduling, refresh, a watermark-drained
// write buffer, and a DRAMSim2-style energy calculator.
//
// The model is event-driven and queueing-level: individual DDR commands
// are folded into per-request service times computed against per-bank row
// state and per-sub-rank data-bus occupancy. That preserves exactly the
// behaviours the paper measures — bandwidth, latency, bank/row locality,
// and sub-rank parallelism — without simulating every command slot.
package dram

import (
	"fmt"

	"attache/internal/config"
)

// Location is a fully decoded DRAM coordinate for one 64-byte block.
type Location struct {
	Channel int
	Rank    int
	Group   int // bank group
	Bank    int // bank within group
	Row     int
	Col     int // block index within the row
}

// AddressMapper decodes physical line addresses into DRAM coordinates.
// The interleaving, low bits to high:
//
//	[column][channel][bank group][bank][row]
//
// so consecutive lines stream within one row, channels interleave at row
// granularity, and successive rows spread across bank groups and banks
// for parallelism.
type AddressMapper struct {
	channels, groups, banks, rows, cols int
	colBits, chBits, bgBits, bankBits   uint
}

// NewAddressMapper builds the mapper for cfg's geometry.
func NewAddressMapper(cfg config.Config) *AddressMapper {
	m := &AddressMapper{
		channels: cfg.DRAM.Channels,
		groups:   cfg.DRAM.BankGroups,
		banks:    cfg.DRAM.BanksPerGroup,
		rows:     cfg.DRAM.RowsPerBank,
		cols:     cfg.DRAM.BlocksPerRow,
	}
	m.colBits = log2(m.cols)
	m.chBits = log2(m.channels)
	m.bgBits = log2(m.groups)
	m.bankBits = log2(m.banks)
	return m
}

func log2(v int) uint {
	var b uint
	for 1<<b < v {
		b++
	}
	if 1<<b != v {
		panic(fmt.Sprintf("dram: %d is not a power of two", v))
	}
	return b
}

// Decode maps a line address (the physical byte address divided by 64) to
// its DRAM location. Addresses beyond the modeled capacity wrap.
//
// Bank and bank-group bits are XOR-hashed with low row bits — the
// standard controller permutation that keeps equal-rate streams from
// camping persistently in the same bank: a transient collision dissolves
// as soon as either stream advances a row.
func (m *AddressMapper) Decode(lineAddr uint64) Location {
	a := lineAddr
	col := int(a & (uint64(m.cols) - 1))
	a >>= m.colBits
	ch := int(a & (uint64(m.channels) - 1))
	a >>= m.chBits
	bg := int(a & (uint64(m.groups) - 1))
	a >>= m.bgBits
	bank := int(a & (uint64(m.banks) - 1))
	a >>= m.bankBits
	row := int(a % uint64(m.rows))
	bank ^= row & (m.banks - 1)
	bg ^= (row >> m.bankBits) & (m.groups - 1)
	return Location{Channel: ch, Group: bg, Bank: bank, Row: row, Col: col}
}

// Encode is the inverse of Decode for in-capacity locations; tests use it
// to build addresses with specific locality. The bank XOR hash is an
// involution, so encoding applies the same permutation.
func (m *AddressMapper) Encode(loc Location) uint64 {
	bank := loc.Bank ^ (loc.Row & (m.banks - 1))
	bg := loc.Group ^ ((loc.Row >> m.bankBits) & (m.groups - 1))
	a := uint64(loc.Row)
	a = a<<m.bankBits | uint64(bank)
	a = a<<m.bgBits | uint64(bg)
	a = a<<m.chBits | uint64(loc.Channel)
	a = a<<m.colBits | uint64(loc.Col)
	return a
}

// BankIndex flattens (group, bank) into one index in [0, groups*banks).
func (m *AddressMapper) BankIndex(loc Location) int {
	return loc.Group*m.banks + loc.Bank
}

// BanksPerChannel reports the number of banks a channel schedules across.
func (m *AddressMapper) BanksPerChannel() int { return m.groups * m.banks }

// Channels reports the channel count.
func (m *AddressMapper) Channels() int { return m.channels }

// LinesPerRow reports blocks per row (the metadata-region covering unit).
func (m *AddressMapper) LinesPerRow() int { return m.cols }
