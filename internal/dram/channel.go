package dram

import (
	"fmt"

	"attache/internal/check"
	"attache/internal/config"
	"attache/internal/sim"
	"attache/internal/stats"
)

// SubRankMask selects which sub-ranks a request touches.
type SubRankMask uint8

// Masks for the two sub-ranks of a rank. A non-sub-ranked (baseline)
// system always uses SubRankBoth: the chips operate in lockstep.
const (
	SubRank0    SubRankMask = 1
	SubRank1    SubRankMask = 2
	SubRankBoth SubRankMask = 3
)

// Request is one DRAM access submitted to a channel.
type Request struct {
	Write    bool
	Loc      Location
	SubRanks SubRankMask
	// DoubleBurst doubles the data-transfer time: a 64-byte access
	// serviced by a single sub-rank (Fig. 2(b), sub-ranking without
	// compression).
	DoubleBurst bool
	// Priority requests jump the queue (still honoring bus
	// availability): used for misprediction-correction fetches, whose
	// load already blocks a core's ROB head.
	Priority bool
	// Done runs at completion (reads: data returned; writes: written).
	// May be nil for posted writes.
	Done func(now sim.Time)

	arrive sim.Time
}

// ChannelStats aggregates per-channel activity.
type ChannelStats struct {
	Reads          stats.Counter
	Writes         stats.Counter
	BytesRead      stats.Counter
	BytesWritten   stats.Counter
	RowHits        stats.Ratio // over issued requests
	ReadLatency    stats.Mean  // arrival to data return, CPU cycles
	QueuedReadMax  int
	QueuedWriteMax int
	BusBusy        [2]sim.Time // per-sub-rank data-bus occupancy, CPU cycles
}

type bank struct {
	open    bool
	row     int
	readyAt sim.Time
}

// Channel is one memory channel: banks (per sub-rank), the data buses,
// request queues, and the FR-FCFS scheduler with read priority and
// watermark-based write draining (paper §V).
type Channel struct {
	eng    *sim.Engine
	cfg    config.Config
	id     int
	nbanks int

	banks   [2][]bank // [subRank][bankIndex]; lockstep in baseline mode
	busFree [2]sim.Time

	readQ  []*Request
	writeQ []*Request

	draining    bool
	nextRefresh sim.Time
	wakeAt      sim.Time
	wakePending bool
	tickFn      sim.Event // cached method value: avoids a closure per wake

	// Converted timing, in CPU cycles.
	tRCD, tRP, tCAS, tBurst, tRFC, tREFI, tFAW sim.Time

	// actTimes tracks the last four activation times per sub-rank for
	// the tFAW constraint (ring buffers).
	actTimes [2][4]sim.Time
	actHead  [2]int

	// audit, when non-nil, validates bus/conservation invariants on
	// every request (config.CheckInvariants and above).
	audit *check.BusAudit

	Stats  ChannelStats
	Energy Energy
}

// NewChannel builds channel id for cfg, attached to the engine.
func NewChannel(eng *sim.Engine, cfg config.Config, id int) *Channel {
	nb := cfg.DRAM.BankGroups * cfg.DRAM.BanksPerGroup
	c := &Channel{
		eng:    eng,
		cfg:    cfg,
		id:     id,
		nbanks: nb,
		tRCD:   cfg.BusToCPU(cfg.DRAM.TRCD),
		tRP:    cfg.BusToCPU(cfg.DRAM.TRP),
		tCAS:   cfg.BusToCPU(cfg.DRAM.TCAS),
		tBurst: cfg.BusToCPU(cfg.DRAM.BurstBusCycles),
		tRFC:   cfg.BusToCPU(cfg.DRAM.TRFC),
		tREFI:  cfg.BusToCPU(cfg.DRAM.TREFI),
		tFAW:   cfg.BusToCPU(cfg.DRAM.TFAW),
	}
	c.banks[0] = make([]bank, nb)
	c.banks[1] = make([]bank, nb)
	c.nextRefresh = c.tREFI
	c.tickFn = c.tick
	return c
}

// QueueDepths reports current read and write queue occupancy.
func (c *Channel) QueueDepths() (reads, writes int) {
	return len(c.readQ), len(c.writeQ)
}

// EnableAudit attaches a bus/conservation invariant checker reporting
// into rec. Auditing observes scheduling decisions without changing
// them, so timing and stats are identical with or without it.
func (c *Channel) EnableAudit(rec *check.Recorder) {
	c.audit = check.NewBusAudit(rec, c.id)
}

// AuditDrained runs the end-of-simulation conservation check (no-op
// without an audit).
func (c *Channel) AuditDrained(now sim.Time) {
	if c.audit != nil {
		c.audit.CheckDrained(len(c.readQ), len(c.writeQ), now)
	}
}

// Submit enqueues a request. Writes are posted into the write buffer;
// reads go to the read queue. The scheduler wakes immediately if it is
// not already due sooner.
func (c *Channel) Submit(r *Request) {
	if r.SubRanks == 0 || r.SubRanks > SubRankBoth {
		panic(fmt.Sprintf("dram: invalid sub-rank mask %d", r.SubRanks))
	}
	now := c.eng.Now()
	r.arrive = now
	if c.audit != nil {
		c.audit.OnSubmit()
	}
	if r.Write {
		c.writeQ = append(c.writeQ, r)
		if len(c.writeQ) > c.Stats.QueuedWriteMax {
			c.Stats.QueuedWriteMax = len(c.writeQ)
		}
	} else {
		c.readQ = append(c.readQ, r)
		if len(c.readQ) > c.Stats.QueuedReadMax {
			c.Stats.QueuedReadMax = len(c.readQ)
		}
	}
	c.wake(now)
}

// wake ensures a scheduler event fires no later than at.
func (c *Channel) wake(at sim.Time) {
	if c.wakePending && c.wakeAt <= at {
		return
	}
	c.wakePending = true
	c.wakeAt = at
	c.eng.Schedule(at, c.tickFn)
}

func (c *Channel) tick(now sim.Time) {
	if c.wakePending && now < c.wakeAt {
		return // stale wake superseded by an earlier one
	}
	c.wakePending = false
	c.refreshIfDue(now)

	// Issue up to one request per sub-rank bus per wake; decisions are
	// refreshed every burst slot so FR-FCFS reacts to newly open rows.
	for issued := 0; issued < 2; issued++ {
		q := c.pickQueue()
		if q == nil {
			break
		}
		idx := c.pickIssuable(*q, now)
		if idx < 0 {
			break
		}
		r := (*q)[idx]
		*q = append((*q)[:idx], (*q)[idx+1:]...)
		c.issue(now, r)
	}

	if len(c.readQ) > 0 || len(c.writeQ) > 0 {
		next := c.busFree[0]
		if c.busFree[1] < next {
			next = c.busFree[1]
		}
		// Wake a CAS latency before the bus frees so the next column
		// command overlaps the in-flight burst — but no later than one
		// burst from now, so bank-preparation-bound requests (which may
		// become issuable before the bus frees) are reconsidered.
		next -= c.tCAS
		if next > now+c.tBurst {
			next = now + c.tBurst
		}
		if next <= now {
			next = now + 1
		}
		c.wake(next)
	}
}

// pickQueue applies read priority with watermark write draining: writes
// are serviced when the buffer passes the high watermark (until it falls
// to the low watermark) or opportunistically when no reads wait.
func (c *Channel) pickQueue() *[]*Request {
	if len(c.writeQ) >= c.cfg.DRAM.WriteHighWater {
		c.draining = true
	}
	if c.draining && len(c.writeQ) <= c.cfg.DRAM.WriteLowWater {
		c.draining = false
	}
	useWrites := c.draining || len(c.readQ) == 0
	if useWrites && len(c.writeQ) > 0 {
		return &c.writeQ
	}
	if len(c.readQ) > 0 {
		return &c.readQ
	}
	return nil
}

// pickIssuable applies FR-FCFS among requests whose data bus will be free
// within one burst slot: the first row hit wins, then the oldest priority
// request (a blocking metadata fetch or misprediction correction), then
// the oldest request. It returns -1 when every candidate's bus is
// committed too far ahead, keeping scheduling decisions within a burst of
// real time.
func (c *Channel) pickIssuable(q []*Request, now sim.Time) int {
	oldest, prio := -1, -1
	for i, r := range q {
		if !c.busAvailable(r, now) {
			continue
		}
		if !c.cfg.DRAM.SchedFCFS && c.isRowHit(r) {
			return i
		}
		if prio < 0 && r.Priority {
			prio = i
		}
		if oldest < 0 {
			oldest = i
		}
	}
	if prio >= 0 {
		return prio
	}
	return oldest
}

// busAvailable reports whether the request could deliver its data within
// one burst of when its bus frees. The estimate accounts for the
// request's own bank preparation (precharge + activate + CAS): a row-miss
// request whose data cannot arrive before the bus frees anyway is
// issuable — its bank work overlaps the in-flight bursts — while
// requests that would stack the bus more than one burst ahead wait. This
// keeps bank-level parallelism alive under row-miss-heavy traffic without
// over-committing the data bus.
func (c *Channel) busAvailable(r *Request, now sim.Time) bool {
	bi := r.Loc.Group*c.cfg.DRAM.BanksPerGroup + r.Loc.Bank
	for s := 0; s < 2; s++ {
		if r.SubRanks&(1<<uint(s)) == 0 {
			continue
		}
		b := &c.banks[s][bi]
		start := b.readyAt
		if start < now {
			start = now
		}
		if !b.open || b.row != r.Loc.Row {
			if b.open {
				start += c.tRP
			}
			start += c.tRCD
		}
		casDone := start + c.tCAS
		if c.busFree[s] > casDone+c.tBurst {
			return false
		}
	}
	return true
}

func (c *Channel) isRowHit(r *Request) bool {
	bi := r.Loc.Group*c.cfg.DRAM.BanksPerGroup + r.Loc.Bank
	for s := 0; s < 2; s++ {
		if r.SubRanks&(1<<uint(s)) == 0 {
			continue
		}
		b := &c.banks[s][bi]
		if !b.open || b.row != r.Loc.Row {
			return false
		}
	}
	return true
}

// issue computes the request's service against bank and bus state,
// charges energy, and schedules its completion.
func (c *Channel) issue(now sim.Time, r *Request) {
	bi := r.Loc.Group*c.cfg.DRAM.BanksPerGroup + r.Loc.Bank
	burst := c.tBurst
	if r.DoubleBurst {
		burst *= 2
	}
	rowHit := c.isRowHit(r)
	c.Stats.RowHits.Observe(rowHit)
	if c.audit != nil {
		c.audit.OnIssue(auditAddr(r.Loc), now)
	}

	subranks := 0
	var finish sim.Time
	for s := 0; s < 2; s++ {
		if r.SubRanks&(1<<uint(s)) == 0 {
			continue
		}
		subranks++
		b := &c.banks[s][bi]
		start := b.readyAt
		if start < now {
			start = now
		}
		if !b.open || b.row != r.Loc.Row {
			if b.open {
				start += c.tRP // precharge the old row
			}
			// The four-activate window: the new ACT may not issue until
			// tFAW after the fourth-last activation on this sub-rank.
			if c.tFAW > 0 {
				if earliest := c.actTimes[s][c.actHead[s]] + c.tFAW; start < earliest {
					start = earliest
				}
				c.actTimes[s][c.actHead[s]] = start
				c.actHead[s] = (c.actHead[s] + 1) % 4
			}
			start += c.tRCD // activate the new row
			b.open = true
			b.row = r.Loc.Row
			// Each half-rank activation is charged separately; a
			// lockstep (both-sub-rank) activation costs two halves,
			// which equals one full-rank activate.
			c.Energy.HalfActivates++
		}
		casDone := start + c.tCAS
		dataStart := casDone
		if c.busFree[s] > dataStart {
			dataStart = c.busFree[s]
		}
		dataEnd := dataStart + burst
		if c.audit != nil {
			c.audit.OnBurst(s, dataStart, dataEnd, auditAddr(r.Loc), now)
		}
		c.busFree[s] = dataEnd
		c.Stats.BusBusy[s] += burst
		// The bank accepts its next column command one burst after this
		// one (tCCD); CAS commands pipeline so bursts run back-to-back.
		b.readyAt = start + burst
		if c.cfg.DRAM.ClosedPage {
			// Auto-precharge: the row closes after the access; the
			// precharge overlaps the data burst.
			b.open = false
		}
		if dataEnd > finish {
			finish = dataEnd
		}
	}
	bytes := uint64(subranks) * 32
	if r.DoubleBurst {
		bytes *= 2
	}
	if r.Write {
		c.Stats.Writes.Inc()
		c.Stats.BytesWritten.Add(bytes)
		if subranks == 2 {
			c.Energy.Writes64++
		} else if r.DoubleBurst {
			c.Energy.Writes64++
		} else {
			c.Energy.Writes32++
		}
	} else {
		c.Stats.Reads.Inc()
		c.Stats.BytesRead.Add(bytes)
		if subranks == 2 {
			c.Energy.Reads64++
		} else if r.DoubleBurst {
			c.Energy.Reads64++
		} else {
			c.Energy.Reads32++
		}
		c.Stats.ReadLatency.Observe(float64(finish - r.arrive))
	}
	if r.Done != nil {
		done := r.Done
		c.eng.Schedule(finish, done)
	}
}

// auditAddr folds a DRAM coordinate into one diagnostic address for
// check failures: row and column identify the block within the channel.
func auditAddr(loc Location) uint64 {
	return uint64(loc.Row)<<16 | uint64(loc.Col)
}

// refreshIfDue blocks all banks for tRFC once per tREFI window.
func (c *Channel) refreshIfDue(now sim.Time) {
	for now >= c.nextRefresh {
		start := c.nextRefresh
		for s := 0; s < 2; s++ {
			for i := range c.banks[s] {
				b := &c.banks[s][i]
				if b.readyAt < start {
					b.readyAt = start
				}
				b.readyAt += c.tRFC
				b.open = false // refresh closes rows
			}
		}
		c.Energy.Refreshes++
		c.nextRefresh += c.tREFI
	}
}

// Drained reports whether both queues are empty (simulation end check).
func (c *Channel) Drained() bool {
	return len(c.readQ) == 0 && len(c.writeQ) == 0
}
