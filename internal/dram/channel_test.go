package dram

import (
	"testing"

	"attache/internal/config"
	"attache/internal/sim"
)

func testChannel() (*sim.Engine, *Channel, config.Config) {
	cfg := config.Default()
	eng := sim.NewEngine()
	ch := NewChannel(eng, cfg, 0)
	return eng, ch, cfg
}

// submitRead issues a read and returns a pointer that receives the
// completion time (-1 until then).
func submitRead(eng *sim.Engine, ch *Channel, loc Location, mask SubRankMask) *sim.Time {
	done := sim.Time(-1)
	p := &done
	ch.Submit(&Request{Loc: loc, SubRanks: mask, Done: func(now sim.Time) { *p = now }})
	return p
}

func TestColdReadLatency(t *testing.T) {
	eng, ch, _ := testChannel()
	done := submitRead(eng, ch, Location{Row: 5}, SubRankBoth)
	eng.RunUntilDone(1000)
	// tRCD (55) + tCAS (55) + burst (10) in CPU cycles.
	if *done != 120 {
		t.Fatalf("cold read finished at %d, want 120", *done)
	}
}

func TestRowHitLatency(t *testing.T) {
	eng, ch, _ := testChannel()
	first := submitRead(eng, ch, Location{Row: 5, Col: 0}, SubRankBoth)
	eng.RunUntilDone(1000)
	start := eng.Now()
	second := sim.Time(-1)
	eng.Schedule(start+100, func(sim.Time) {
		p := submitRead(eng, ch, Location{Row: 5, Col: 1}, SubRankBoth)
		_ = p
		// Capture via closure below instead.
	})
	_ = first
	// Simpler: submit directly at a known quiet time.
	eng.RunUntilDone(1000)
	at := eng.Now() + 1000
	eng.Schedule(at, func(sim.Time) {
		ch.Submit(&Request{Loc: Location{Row: 5, Col: 1}, SubRanks: SubRankBoth,
			Done: func(now sim.Time) { second = now - at }})
	})
	eng.RunUntilDone(10000)
	// Row hit: tCAS (55) + burst (10) = 65.
	if second != 65 {
		t.Fatalf("row-hit latency = %d, want 65", second)
	}
}

func TestRowConflictLatency(t *testing.T) {
	eng, ch, _ := testChannel()
	submitRead(eng, ch, Location{Row: 1}, SubRankBoth)
	eng.RunUntilDone(1000)
	at := eng.Now() + 1000
	var lat sim.Time
	eng.Schedule(at, func(sim.Time) {
		ch.Submit(&Request{Loc: Location{Row: 2}, SubRanks: SubRankBoth,
			Done: func(now sim.Time) { lat = now - at }})
	})
	eng.RunUntilDone(10000)
	// Conflict: tRP (55) + tRCD (55) + tCAS (55) + burst (10) = 175.
	if lat != 175 {
		t.Fatalf("row-conflict latency = %d, want 175", lat)
	}
}

func TestSubRankParallelism(t *testing.T) {
	// Two 32-byte reads on different sub-ranks finish together; two
	// full-width reads serialize on the shared bus.
	eng, ch, _ := testChannel()
	a := submitRead(eng, ch, Location{Row: 1}, SubRank0)
	b := submitRead(eng, ch, Location{Row: 3}, SubRank1)
	eng.RunUntilDone(1000)
	if *a != 120 || *b != 120 {
		t.Fatalf("parallel sub-rank reads finished at %d/%d, want 120/120", *a, *b)
	}

	eng2 := sim.NewEngine()
	ch2 := NewChannel(eng2, config.Default(), 0)
	c := submitRead(eng2, ch2, Location{Row: 1, Col: 0}, SubRankBoth)
	d := submitRead(eng2, ch2, Location{Row: 1, Col: 1}, SubRankBoth)
	eng2.RunUntilDone(1000)
	if *c != 120 {
		t.Fatalf("first full read at %d, want 120", *c)
	}
	if *d != 130 {
		t.Fatalf("second full read at %d, want 130 (bus serialized)", *d)
	}
}

func TestStreamBandwidthBusBound(t *testing.T) {
	// 64 row-hit reads: after warmup the bus streams one 64-byte burst
	// per 10 CPU cycles.
	eng, ch, _ := testChannel()
	var last sim.Time
	const n = 64
	for i := 0; i < n; i++ {
		ch.Submit(&Request{Loc: Location{Row: 1, Col: i}, SubRanks: SubRankBoth,
			Done: func(now sim.Time) { last = now }})
	}
	eng.RunUntilDone(100000)
	// Ideal: 120 (first) + 63*10 = 750. Allow scheduler slack.
	if last < 750 || last > 900 {
		t.Fatalf("stream of %d reads finished at %d, want ~750", n, last)
	}
	if ch.Stats.Reads.Value() != n {
		t.Fatalf("reads = %d", ch.Stats.Reads.Value())
	}
	if ch.Stats.BytesRead.Value() != n*64 {
		t.Fatalf("bytes read = %d", ch.Stats.BytesRead.Value())
	}
}

func TestSubRankDoublesStreamBandwidth(t *testing.T) {
	// 2N compressed (32B) reads across both sub-ranks take about as long
	// as N full-width reads: the 2x effective bandwidth of Fig. 2(c).
	run := func(mask func(i int) SubRankMask, n int) sim.Time {
		eng := sim.NewEngine()
		ch := NewChannel(eng, config.Default(), 0)
		var last sim.Time
		for i := 0; i < n; i++ {
			ch.Submit(&Request{Loc: Location{Row: 1, Col: i % 128}, SubRanks: mask(i),
				Done: func(now sim.Time) { last = now }})
		}
		eng.RunUntilDone(1000000)
		return last
	}
	full := run(func(int) SubRankMask { return SubRankBoth }, 64)
	split := run(func(i int) SubRankMask {
		if i%2 == 0 {
			return SubRank0
		}
		return SubRank1
	}, 128)
	if float64(split) > float64(full)*1.2 {
		t.Fatalf("128 sub-rank reads took %d vs 64 full reads %d; expected ~equal", split, full)
	}
}

func TestDoubleBurstHalvesBandwidth(t *testing.T) {
	// Fig. 2(b): 64-byte reads from one sub-rank transfer twice as long.
	eng, ch, _ := testChannel()
	var last sim.Time
	for i := 0; i < 32; i++ {
		ch.Submit(&Request{Loc: Location{Row: 1, Col: i}, SubRanks: SubRank0, DoubleBurst: true,
			Done: func(now sim.Time) { last = now }})
	}
	eng.RunUntilDone(100000)
	// First: 55+55+20 = 130; then one per 20 cycles: +31*20 = 750.
	if last < 730 || last > 950 {
		t.Fatalf("double-burst stream finished at %d, want ~750", last)
	}
	if ch.Stats.BytesRead.Value() != 32*64 {
		t.Fatalf("bytes = %d, want %d", ch.Stats.BytesRead.Value(), 32*64)
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	eng, ch, _ := testChannel()
	// Open row 1 in bank 0.
	submitRead(eng, ch, Location{Row: 1, Col: 0}, SubRankBoth)
	eng.RunUntilDone(1000)
	at := eng.Now() + 1000
	var missDone, hitDone sim.Time
	eng.Schedule(at, func(sim.Time) {
		// Older request misses the row; younger hits it.
		ch.Submit(&Request{Loc: Location{Row: 9, Col: 0}, SubRanks: SubRankBoth,
			Done: func(now sim.Time) { missDone = now }})
		ch.Submit(&Request{Loc: Location{Row: 1, Col: 7}, SubRanks: SubRankBoth,
			Done: func(now sim.Time) { hitDone = now }})
	})
	eng.RunUntilDone(10000)
	if hitDone >= missDone {
		t.Fatalf("row hit (%d) should finish before older miss (%d)", hitDone, missDone)
	}
	if ch.Stats.RowHits.Hits() == 0 {
		t.Fatal("row-hit counter not charged")
	}
}

func TestWritesDrainAtWatermark(t *testing.T) {
	eng, ch, cfg := testChannel()
	// Below the high watermark and with no reads... writes drain
	// opportunistically; with reads pending they wait.
	var reads int
	for i := 0; i < cfg.DRAM.WriteHighWater-1; i++ {
		ch.Submit(&Request{Write: true, Loc: Location{Row: i, Col: 0}, SubRanks: SubRankBoth})
	}
	for i := 0; i < 4; i++ {
		ch.Submit(&Request{Loc: Location{Row: 100 + i}, SubRanks: SubRankBoth,
			Done: func(sim.Time) { reads++ }})
	}
	eng.RunUntilDone(1000000)
	if !ch.Drained() {
		t.Fatal("channel did not drain")
	}
	if reads != 4 {
		t.Fatalf("reads completed = %d", reads)
	}
	if ch.Stats.Writes.Value() != uint64(cfg.DRAM.WriteHighWater-1) {
		t.Fatalf("writes = %d", ch.Stats.Writes.Value())
	}
}

func TestReadsPrioritizedOverWrites(t *testing.T) {
	eng, ch, _ := testChannel()
	order := []string{}
	// A few writes first (below watermark), then a read: the read should
	// be serviced before the write queue drains fully.
	for i := 0; i < 8; i++ {
		ch.Submit(&Request{Write: true, Loc: Location{Row: i}, SubRanks: SubRankBoth,
			Done: func(sim.Time) { order = append(order, "w") }})
	}
	ch.Submit(&Request{Loc: Location{Row: 50}, SubRanks: SubRankBoth,
		Done: func(sim.Time) { order = append(order, "r") }})
	eng.RunUntilDone(100000)
	// The read must not be last.
	if order[len(order)-1] == "r" {
		t.Fatalf("read serviced last: %v", order)
	}
}

func TestRefreshChargesEnergyAndBlocksBanks(t *testing.T) {
	eng, ch, cfg := testChannel()
	// Run past several tREFI windows with sparse traffic.
	trefi := cfg.BusToCPU(cfg.DRAM.TREFI)
	for i := 0; i < 5; i++ {
		at := sim.Time(i) * trefi * 2
		eng.Schedule(at, func(sim.Time) {
			ch.Submit(&Request{Loc: Location{Row: 1}, SubRanks: SubRankBoth})
		})
	}
	eng.RunUntilDone(100000)
	if ch.Energy.Refreshes < 8 {
		t.Fatalf("refreshes = %d, want >= 8 over 10 tREFI windows", ch.Energy.Refreshes)
	}
}

func TestEnergyCountsPerAccessKind(t *testing.T) {
	eng, ch, _ := testChannel()
	submitRead(eng, ch, Location{Row: 1}, SubRankBoth)       // full read, 2 half-activates
	submitRead(eng, ch, Location{Row: 2, Bank: 1}, SubRank0) // 32B read, 1 half-activate
	ch.Submit(&Request{Write: true, Loc: Location{Row: 3, Bank: 2}, SubRanks: SubRank1})
	eng.RunUntilDone(10000)
	if ch.Energy.Reads64 != 1 || ch.Energy.Reads32 != 1 {
		t.Fatalf("read counts = %d/%d, want 1/1", ch.Energy.Reads64, ch.Energy.Reads32)
	}
	if ch.Energy.Writes32 != 1 {
		t.Fatalf("write32 = %d, want 1", ch.Energy.Writes32)
	}
	if ch.Energy.HalfActivates != 4 {
		t.Fatalf("half activates = %d, want 4", ch.Energy.HalfActivates)
	}
}

func TestSubmitPanicsOnBadMask(t *testing.T) {
	eng, ch, _ := testChannel()
	_ = eng
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ch.Submit(&Request{Loc: Location{}, SubRanks: 0})
}

func TestReadLatencyStatTracked(t *testing.T) {
	eng, ch, _ := testChannel()
	for i := 0; i < 10; i++ {
		submitRead(eng, ch, Location{Row: 1, Col: i}, SubRankBoth)
	}
	eng.RunUntilDone(10000)
	if ch.Stats.ReadLatency.N() != 10 {
		t.Fatalf("latency samples = %d", ch.Stats.ReadLatency.N())
	}
	if ch.Stats.ReadLatency.Min() < 65 {
		t.Fatalf("min latency %v below row-hit floor", ch.Stats.ReadLatency.Min())
	}
}
