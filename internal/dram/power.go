package dram

// Energy accumulates DRAM energy DRAMSim2-style: per-event charges for
// activations, read/write bursts, and refreshes, plus background power
// integrated over simulated time. Absolute values are representative DDR4
// numbers; the figures the harness reproduces (Fig. 13) are ratios
// between systems, which depend on event *counts* and runtime, not on the
// constants' absolute calibration.
type Energy struct {
	// Event counters. "Half" events touch one 4-chip sub-rank and cost
	// half the corresponding full-rank energy.
	FullActivates uint64
	HalfActivates uint64
	Reads64       uint64 // full-width 64-byte bursts
	Reads32       uint64 // single sub-rank 32-byte bursts
	Writes64      uint64
	Writes32      uint64
	Refreshes     uint64
}

// Per-event energy constants in nanojoules, and background power in watts.
// Sources: DDR4 x8 datasheet IDD values folded into per-operation charges,
// the same style as DRAMSim2's calculator.
const (
	EnergyActivateNJ = 2.0 // full 8-chip activate + precharge
	EnergyRead64NJ   = 4.0 // array read + I/O for a 64-byte burst
	EnergyWrite64NJ  = 4.4
	EnergyRefreshNJ  = 28.0 // one all-bank refresh of one rank
	BackgroundWatts  = 0.30 // per rank, standby + peripheral
)

// Components reports the dynamic energy split by source, in nanojoules.
func (e *Energy) Components() (activateNJ, readNJ, writeNJ, refreshNJ float64) {
	activateNJ = float64(e.FullActivates)*EnergyActivateNJ + float64(e.HalfActivates)*EnergyActivateNJ/2
	readNJ = float64(e.Reads64)*EnergyRead64NJ + float64(e.Reads32)*EnergyRead64NJ/2
	writeNJ = float64(e.Writes64)*EnergyWrite64NJ + float64(e.Writes32)*EnergyWrite64NJ/2
	refreshNJ = float64(e.Refreshes) * EnergyRefreshNJ
	return
}

// DynamicNJ reports the accumulated event energy in nanojoules.
func (e *Energy) DynamicNJ() float64 {
	a, r, w, f := e.Components()
	return a + r + w + f
}

// BackgroundNJ reports background energy for a run of the given length.
func BackgroundNJ(cpuCycles int64, cpuGHz float64, ranks int) float64 {
	seconds := float64(cpuCycles) / (cpuGHz * 1e9)
	return BackgroundWatts * float64(ranks) * seconds * 1e9
}

// TotalNJ reports dynamic plus background energy for a run.
func (e *Energy) TotalNJ(cpuCycles int64, cpuGHz float64, ranks int) float64 {
	return e.DynamicNJ() + BackgroundNJ(cpuCycles, cpuGHz, ranks)
}

// Add merges another accumulator (per-channel totals into a system total).
func (e *Energy) Add(o *Energy) {
	e.FullActivates += o.FullActivates
	e.HalfActivates += o.HalfActivates
	e.Reads64 += o.Reads64
	e.Reads32 += o.Reads32
	e.Writes64 += o.Writes64
	e.Writes32 += o.Writes32
	e.Refreshes += o.Refreshes
}
