package dram

import (
	"math/rand"
	"testing"

	"attache/internal/config"
	"attache/internal/sim"
)

func TestPriorityBeatsOlderRowMiss(t *testing.T) {
	eng, ch, _ := testChannel()
	// Open row 1 so the queue has no row hits, then enqueue an older
	// plain miss and a younger priority miss while the channel is busy.
	submitRead(eng, ch, Location{Row: 1}, SubRankBoth)
	eng.RunUntilDone(1000)
	at := eng.Now() + 500
	var plain, prio sim.Time
	eng.Schedule(at, func(sim.Time) {
		ch.Submit(&Request{Loc: Location{Row: 5, Bank: 1}, SubRanks: SubRankBoth,
			Done: func(now sim.Time) { plain = now }})
		ch.Submit(&Request{Loc: Location{Row: 9, Bank: 2}, SubRanks: SubRankBoth, Priority: true,
			Done: func(now sim.Time) { prio = now }})
	})
	eng.RunUntilDone(100000)
	if prio >= plain {
		t.Fatalf("priority request finished at %d, after plain at %d", prio, plain)
	}
}

func TestRowHitStillBeatsPriority(t *testing.T) {
	eng, ch, _ := testChannel()
	submitRead(eng, ch, Location{Row: 1, Col: 0}, SubRankBoth)
	eng.RunUntilDone(1000)
	at := eng.Now() + 500
	var hit, prio sim.Time
	eng.Schedule(at, func(sim.Time) {
		// Priority miss submitted first, row hit second: FR-FCFS keeps
		// preferring the open row.
		ch.Submit(&Request{Loc: Location{Row: 9, Bank: 3}, SubRanks: SubRankBoth, Priority: true,
			Done: func(now sim.Time) { prio = now }})
		ch.Submit(&Request{Loc: Location{Row: 1, Col: 5}, SubRanks: SubRankBoth,
			Done: func(now sim.Time) { hit = now }})
	})
	eng.RunUntilDone(100000)
	if hit >= prio {
		t.Fatalf("row hit at %d should finish before priority miss at %d", hit, prio)
	}
}

func TestDoubleBurstEnergyCountsFullLine(t *testing.T) {
	eng, ch, _ := testChannel()
	ch.Submit(&Request{Loc: Location{Row: 1}, SubRanks: SubRank0, DoubleBurst: true})
	ch.Submit(&Request{Write: true, Loc: Location{Row: 2, Bank: 1}, SubRanks: SubRank1, DoubleBurst: true})
	eng.RunUntilDone(10000)
	if ch.Energy.Reads64 != 1 || ch.Energy.Reads32 != 0 {
		t.Fatalf("double-burst read counted as %d/%d", ch.Energy.Reads64, ch.Energy.Reads32)
	}
	if ch.Energy.Writes64 != 1 || ch.Energy.Writes32 != 0 {
		t.Fatalf("double-burst write counted as %d/%d", ch.Energy.Writes64, ch.Energy.Writes32)
	}
	if ch.Stats.BytesRead.Value() != 64 || ch.Stats.BytesWritten.Value() != 64 {
		t.Fatalf("bytes = %d/%d, want 64/64",
			ch.Stats.BytesRead.Value(), ch.Stats.BytesWritten.Value())
	}
}

func TestQueueDepthsVisible(t *testing.T) {
	eng, ch, _ := testChannel()
	for i := 0; i < 5; i++ {
		ch.Submit(&Request{Loc: Location{Row: i}, SubRanks: SubRankBoth})
	}
	for i := 0; i < 3; i++ {
		ch.Submit(&Request{Write: true, Loc: Location{Row: i}, SubRanks: SubRankBoth})
	}
	r, w := ch.QueueDepths()
	if r != 5 || w != 3 {
		t.Fatalf("depths = %d/%d, want 5/3", r, w)
	}
	eng.RunUntilDone(1000000)
	if !ch.Drained() {
		t.Fatal("channel did not drain")
	}
}

func TestBankHashDecorrelatesStreams(t *testing.T) {
	// Two streams separated by an arbitrary distance should land in the
	// same bank only ~1/16 of the time thanks to the XOR hash — without
	// it, any separation that preserves the raw bank bits collides on
	// every single row.
	m := NewAddressMapper(config.Default())
	same, total := 0, 0
	for _, sep := range []uint64{4096 * 7, 4096 * 33, 4096 * 129, 4096*513 + 4096} {
		for r := uint64(0); r < 64; r++ {
			a := m.Decode(r * 4096 * 16) // walk rows of one raw bank
			b := m.Decode(r*4096*16 + sep)
			total++
			if m.BankIndex(a) == m.BankIndex(b) && a.Channel == b.Channel {
				same++
			}
		}
	}
	if float64(same)/float64(total) > 0.35 {
		t.Fatalf("bank collisions %d/%d; hash not decorrelating", same, total)
	}
}

func TestRefreshClosesRows(t *testing.T) {
	eng, ch, cfg := testChannel()
	submitRead(eng, ch, Location{Row: 7}, SubRankBoth)
	eng.RunUntilDone(1000)
	// Jump past a refresh window; the next access to the same row must
	// pay a full activate again (row closed by refresh).
	trefi := cfg.BusToCPU(cfg.DRAM.TREFI)
	at := trefi + 100
	var lat sim.Time
	eng.Schedule(at, func(sim.Time) {
		ch.Submit(&Request{Loc: Location{Row: 7}, SubRanks: SubRankBoth,
			Done: func(now sim.Time) { lat = now - at }})
	})
	eng.RunUntilDone(10000000)
	// Row hit would be 65; after refresh it must include tRCD again.
	if lat < 120 {
		t.Fatalf("post-refresh access latency %d, want a full activate", lat)
	}
}

func TestWriteDrainHysteresis(t *testing.T) {
	eng, ch, cfg := testChannel()
	// Saturate the write buffer beyond the high watermark along with a
	// steady read stream; all writes must eventually drain and reads
	// complete.
	reads := 0
	for i := 0; i < cfg.DRAM.WriteHighWater+10; i++ {
		ch.Submit(&Request{Write: true, Loc: Location{Row: i % 64, Col: i % 128}, SubRanks: SubRankBoth})
	}
	for i := 0; i < 20; i++ {
		ch.Submit(&Request{Loc: Location{Row: 100 + i}, SubRanks: SubRankBoth,
			Done: func(sim.Time) { reads++ }})
	}
	eng.RunUntilDone(10000000)
	if reads != 20 {
		t.Fatalf("reads completed = %d", reads)
	}
	if !ch.Drained() {
		t.Fatal("writes not drained")
	}
	if ch.Stats.Writes.Value() != uint64(cfg.DRAM.WriteHighWater+10) {
		t.Fatalf("writes = %d", ch.Stats.Writes.Value())
	}
}

func TestMixedSubRankRowStatesIndependent(t *testing.T) {
	// Opening a row on sub-rank 0 must not make sub-rank 1 hit.
	eng, ch, _ := testChannel()
	submitRead(eng, ch, Location{Row: 3}, SubRank0)
	eng.RunUntilDone(1000)
	at := eng.Now() + 1000
	var lat sim.Time
	eng.Schedule(at, func(sim.Time) {
		ch.Submit(&Request{Loc: Location{Row: 3}, SubRanks: SubRank1,
			Done: func(now sim.Time) { lat = now - at }})
	})
	eng.RunUntilDone(100000)
	if lat != 120 {
		t.Fatalf("other sub-rank latency %d, want cold 120", lat)
	}
}

func TestFAWLimitsActivationRate(t *testing.T) {
	// With tFAW enabled, a burst of row activations to one sub-rank is
	// throttled to four per window.
	cfg := config.Default()
	cfg.DRAM.TFAW = 28
	eng := sim.NewEngine()
	ch := NewChannel(eng, cfg, 0)
	var last sim.Time
	const n = 16 // 16 activations to 16 distinct banks/rows
	for i := 0; i < n; i++ {
		ch.Submit(&Request{Loc: Location{Group: i % 4, Bank: (i / 4) % 4, Row: 1 + i}, SubRanks: SubRankBoth,
			Done: func(now sim.Time) { last = now }})
	}
	eng.RunUntilDone(1_000_000)
	faw := cfg.BusToCPU(28)
	// 16 activations need at least 3 full windows beyond the first four.
	if last < 3*faw {
		t.Fatalf("16 activations finished at %d, want >= %d (tFAW-bound)", last, 3*faw)
	}

	// Without tFAW the same burst is bank-parallel and much faster.
	eng2 := sim.NewEngine()
	ch2 := NewChannel(eng2, config.Default(), 0)
	var last2 sim.Time
	for i := 0; i < n; i++ {
		ch2.Submit(&Request{Loc: Location{Group: i % 4, Bank: (i / 4) % 4, Row: 1 + i}, SubRanks: SubRankBoth,
			Done: func(now sim.Time) { last2 = now }})
	}
	eng2.RunUntilDone(1_000_000)
	if last2 >= last {
		t.Fatalf("tFAW off (%d) should be faster than on (%d)", last2, last)
	}
}

func TestFAWDefaultDisabled(t *testing.T) {
	if config.Default().DRAM.TFAW != 0 {
		t.Fatal("Table II does not specify tFAW; the default must disable it")
	}
}

// Property: the per-sub-rank data bus is never overlapped — total busy
// time cannot exceed wall-clock time — across random traffic mixes.
func TestBusNeverOverlapped(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		eng := sim.NewEngine()
		ch := NewChannel(eng, config.Default(), 0)
		rng := rand.New(rand.NewSource(seed))
		var last sim.Time
		for i := 0; i < 500; i++ {
			mask := SubRankMask(rng.Intn(3) + 1)
			ch.Submit(&Request{
				Write:    rng.Intn(3) == 0,
				Loc:      Location{Group: rng.Intn(4), Bank: rng.Intn(4), Row: rng.Intn(64), Col: rng.Intn(128)},
				SubRanks: mask,
				Done:     func(now sim.Time) { last = now },
			})
		}
		if !eng.RunUntilDone(10_000_000) {
			t.Fatal("did not drain")
		}
		for s := 0; s < 2; s++ {
			if ch.Stats.BusBusy[s] > last {
				t.Fatalf("seed %d: sub-rank %d busy %d cycles in %d wall cycles (overlap!)",
					seed, s, ch.Stats.BusBusy[s], last)
			}
		}
	}
}

// Property: under a saturating row-hit stream the bus approaches full
// utilization — the scheduler does not leave burst slots idle.
func TestStreamBusUtilizationHigh(t *testing.T) {
	eng := sim.NewEngine()
	ch := NewChannel(eng, config.Default(), 0)
	var last sim.Time
	const n = 512
	for i := 0; i < n; i++ {
		ch.Submit(&Request{Loc: Location{Row: 1 + i/128, Col: i % 128}, SubRanks: SubRankBoth,
			Done: func(now sim.Time) { last = now }})
	}
	eng.RunUntilDone(10_000_000)
	util := float64(ch.Stats.BusBusy[0]) / float64(last)
	if util < 0.85 {
		t.Fatalf("stream bus utilization %.2f, want > 0.85", util)
	}
}

func TestFCFSIgnoresRowHits(t *testing.T) {
	cfg := config.Default()
	cfg.DRAM.SchedFCFS = true
	eng := sim.NewEngine()
	ch := NewChannel(eng, cfg, 0)
	// Open row 1, then queue an older miss and a younger hit: FCFS must
	// serve the older miss first.
	ch.Submit(&Request{Loc: Location{Row: 1}, SubRanks: SubRankBoth})
	eng.RunUntilDone(1000)
	at := eng.Now() + 500
	var missDone, hitDone sim.Time
	eng.Schedule(at, func(sim.Time) {
		ch.Submit(&Request{Loc: Location{Row: 9}, SubRanks: SubRankBoth,
			Done: func(now sim.Time) { missDone = now }})
		ch.Submit(&Request{Loc: Location{Row: 1, Col: 3}, SubRanks: SubRankBoth,
			Done: func(now sim.Time) { hitDone = now }})
	})
	eng.RunUntilDone(100000)
	if missDone >= hitDone {
		t.Fatalf("FCFS must serve the older miss first (miss=%d hit=%d)", missDone, hitDone)
	}
}

func TestClosedPagePolicyClosesRows(t *testing.T) {
	cfg := config.Default()
	cfg.DRAM.ClosedPage = true
	eng := sim.NewEngine()
	ch := NewChannel(eng, cfg, 0)
	ch.Submit(&Request{Loc: Location{Row: 5, Col: 0}, SubRanks: SubRankBoth})
	eng.RunUntilDone(10000)
	at := eng.Now() + 1000
	var lat sim.Time
	eng.Schedule(at, func(sim.Time) {
		ch.Submit(&Request{Loc: Location{Row: 5, Col: 1}, SubRanks: SubRankBoth,
			Done: func(now sim.Time) { lat = now - at }})
	})
	eng.RunUntilDone(100000)
	// Under closed-page the second access re-activates: tRCD+tCAS+burst.
	if lat != 120 {
		t.Fatalf("closed-page same-row latency = %d, want 120", lat)
	}
}
