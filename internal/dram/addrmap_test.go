package dram

import (
	"testing"
	"testing/quick"

	"attache/internal/config"
)

func TestDecodeEncodeRoundTrip(t *testing.T) {
	m := NewAddressMapper(config.Default())
	f := func(lineAddr uint64) bool {
		// Stay within capacity so Encode is an exact inverse.
		lineAddr %= uint64(config.Default().MemorySize() / 64)
		loc := m.Decode(lineAddr)
		return m.Encode(loc) == lineAddr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRanges(t *testing.T) {
	cfg := config.Default()
	m := NewAddressMapper(cfg)
	for addr := uint64(0); addr < 100000; addr += 37 {
		loc := m.Decode(addr)
		if loc.Channel < 0 || loc.Channel >= cfg.DRAM.Channels {
			t.Fatalf("channel %d out of range", loc.Channel)
		}
		if loc.Group < 0 || loc.Group >= cfg.DRAM.BankGroups {
			t.Fatalf("group %d out of range", loc.Group)
		}
		if loc.Bank < 0 || loc.Bank >= cfg.DRAM.BanksPerGroup {
			t.Fatalf("bank %d out of range", loc.Bank)
		}
		if loc.Row < 0 || loc.Row >= cfg.DRAM.RowsPerBank {
			t.Fatalf("row %d out of range", loc.Row)
		}
		if loc.Col < 0 || loc.Col >= cfg.DRAM.BlocksPerRow {
			t.Fatalf("col %d out of range", loc.Col)
		}
	}
}

func TestSequentialLinesShareRow(t *testing.T) {
	m := NewAddressMapper(config.Default())
	base := m.Decode(0)
	for i := uint64(1); i < 128; i++ {
		loc := m.Decode(i)
		if loc.Row != base.Row || loc.Channel != base.Channel || m.BankIndex(loc) != m.BankIndex(base) {
			t.Fatalf("line %d left the row: %+v vs %+v", i, loc, base)
		}
		if loc.Col != int(i) {
			t.Fatalf("line %d col = %d", i, loc.Col)
		}
	}
	// Line 128 moves to the next channel (channel bit above column bits).
	if loc := m.Decode(128); loc.Channel == base.Channel {
		t.Fatal("row-crossing line should change channel")
	}
}

func TestRowStridesSpreadBanks(t *testing.T) {
	m := NewAddressMapper(config.Default())
	seen := map[int]bool{}
	// Stride of 256 lines = one full row per channel pair: walks bank
	// groups then banks.
	for i := uint64(0); i < 16; i++ {
		loc := m.Decode(i * 256)
		seen[m.BankIndex(loc)] = true
	}
	if len(seen) != 16 {
		t.Fatalf("16 row-strided lines hit %d banks, want 16", len(seen))
	}
}

func TestBankIndexBounds(t *testing.T) {
	cfg := config.Default()
	m := NewAddressMapper(cfg)
	if m.BanksPerChannel() != 16 {
		t.Fatalf("banks per channel = %d, want 16", m.BanksPerChannel())
	}
	for addr := uint64(0); addr < 10000; addr++ {
		if bi := m.BankIndex(m.Decode(addr)); bi < 0 || bi >= 16 {
			t.Fatalf("bank index %d out of range", bi)
		}
	}
}

func TestLog2PanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	log2(12)
}

func TestEnergyAccumulator(t *testing.T) {
	var e Energy
	e.HalfActivates = 2 // == one full activate
	e.Reads64 = 1
	e.Reads32 = 2 // == one more 64B worth
	want := EnergyActivateNJ + 2*EnergyRead64NJ
	if got := e.DynamicNJ(); got != want {
		t.Fatalf("dynamic = %v nJ, want %v", got, want)
	}

	var o Energy
	o.Refreshes = 3
	e.Add(&o)
	if e.Refreshes != 3 {
		t.Fatal("Add did not merge refreshes")
	}
}

func TestBackgroundEnergyScalesWithTime(t *testing.T) {
	// 4e9 cycles at 4 GHz = 1 second; 2 ranks at 0.3 W = 0.6 J = 6e8 nJ.
	got := BackgroundNJ(4e9, 4.0, 2)
	if got < 5.9e8 || got > 6.1e8 {
		t.Fatalf("background = %v nJ, want ~6e8", got)
	}
}
