package compress

import "fmt"

// Algorithm identifies which codec produced a compressed line.
type Algorithm uint8

// The algorithms the engine can select between. The paper's controller
// "compresses a memory block using both BDI and FPC, and selects the one
// with the best compression ratio" (§V).
const (
	AlgoNone Algorithm = iota // stored uncompressed
	AlgoBDI
	AlgoFPC
	// AlgoCPack is the dictionary codec of the extended engine — the
	// "CID selects among multiple algorithms" extension of §IV-A5.
	AlgoCPack
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgoNone:
		return "none"
	case AlgoBDI:
		return "bdi"
	case AlgoFPC:
		return "fpc"
	case AlgoCPack:
		return "cpack"
	default:
		return fmt.Sprintf("Algorithm(%d)", uint8(a))
	}
}

// Compressed is the engine's output for one cacheline.
type Compressed struct {
	Algo    Algorithm
	Payload []byte // codec output for AlgoBDI/AlgoFPC; the raw line for AlgoNone
}

// Size reports the stored payload size in bytes: the packed form that
// actually lands in a sub-rank (see Pack). It allocates nothing.
func (c Compressed) Size() int {
	switch c.Algo {
	case AlgoFPC, AlgoCPack:
		return 1 + len(c.Payload) // one tag byte (see Pack)
	default:
		return len(c.Payload)
	}
}

// fpcTag and cpackTag mark packed FPC/CPack payloads. BDI payloads are
// self-tagging: their first byte is a BDIEncoding in [0, 7], so any first
// byte >= 8 is free.
const (
	fpcTag   = 8
	cpackTag = 9
)

// Pack serializes the compressed line into the byte string stored in
// memory. BDI output is stored as-is (its leading tag byte is in [0,7]);
// FPC output gets a one-byte tag so the decompressor can identify the
// algorithm from the stored bits alone — the in-line equivalent of the
// paper's "use the 15th CID bit to identify the compression algorithm"
// extension (§IV-A5). AlgoNone packs the raw 64-byte line.
func (c Compressed) Pack() []byte {
	switch c.Algo {
	case AlgoFPC, AlgoCPack:
		out := make([]byte, 1+len(c.Payload))
		out[0] = fpcTag
		if c.Algo == AlgoCPack {
			out[0] = cpackTag
		}
		copy(out[1:], c.Payload)
		return out
	default:
		return c.Payload
	}
}

// Unpack parses a packed payload (the output of Pack for AlgoBDI/AlgoFPC)
// back into a Compressed value.
func Unpack(packed []byte) (Compressed, error) {
	if len(packed) == 0 {
		return Compressed{}, fmt.Errorf("compress: empty packed payload")
	}
	switch {
	case packed[0] == fpcTag:
		return Compressed{Algo: AlgoFPC, Payload: append([]byte(nil), packed[1:]...)}, nil
	case packed[0] == cpackTag:
		return Compressed{Algo: AlgoCPack, Payload: append([]byte(nil), packed[1:]...)}, nil
	case packed[0] < fpcTag:
		return Compressed{Algo: AlgoBDI, Payload: append([]byte(nil), packed...)}, nil
	default:
		return Compressed{}, fmt.Errorf("compress: unknown packed tag %d", packed[0])
	}
}

// Engine is the compression-decompression engine in the memory controller
// (paper Fig. 3). Latency is modeled by the memory controller (1 cycle per
// the paper, §V); the engine itself is purely functional.
type Engine struct {
	// Target is the payload size a line must reach to fit one sub-rank
	// alongside the Metadata-Header. The paper's configuration is 30
	// bytes (32-byte sub-rank minus the 2-byte CID/XID header).
	Target int
	// EnableCPack adds the dictionary codec to the selection (see
	// NewExtendedEngine).
	EnableCPack bool
}

// NewEngine returns an engine with the paper's 30-byte target and the
// paper's algorithm pair (BDI + FPC, §V).
func NewEngine() *Engine { return &Engine{Target: 30} }

// NewExtendedEngine returns an engine that also runs the CPack dictionary
// codec — the multi-algorithm configuration the CID information bits of
// §IV-A5 / Table I make addressable.
func NewExtendedEngine() *Engine { return &Engine{Target: 30, EnableCPack: true} }

// Compress runs both codecs and returns the smaller result. When neither
// codec reaches the target, the result carries AlgoNone with a copy of the
// raw line so callers can store it directly.
func (e *Engine) Compress(line []byte) Compressed {
	if len(line) != LineSize {
		panic(fmt.Sprintf("compress: Engine.Compress needs a %d-byte line, got %d", LineSize, len(line)))
	}
	best := Compressed{Algo: AlgoNone}
	if bdi, ok := BDICompress(line); ok && len(bdi) <= e.Target {
		best = Compressed{Algo: AlgoBDI, Payload: bdi}
	}
	// FPC pays one tag byte in packed form (see Pack).
	if fpc, ok := FPCCompress(line); ok && len(fpc)+1 <= e.Target &&
		(best.Algo == AlgoNone || len(fpc)+1 < best.Size()) {
		best = Compressed{Algo: AlgoFPC, Payload: fpc}
	}
	if e.EnableCPack {
		if cp, ok := CPackCompress(line); ok && len(cp)+1 <= e.Target &&
			(best.Algo == AlgoNone || len(cp)+1 < best.Size()) {
			best = Compressed{Algo: AlgoCPack, Payload: cp}
		}
	}
	if best.Algo == AlgoNone {
		best.Payload = append([]byte(nil), line...)
	}
	return best
}

// Decompress reverses Compress.
func (e *Engine) Decompress(c Compressed) ([]byte, error) {
	switch c.Algo {
	case AlgoNone:
		if len(c.Payload) != LineSize {
			return nil, fmt.Errorf("compress: uncompressed payload is %d bytes, want %d", len(c.Payload), LineSize)
		}
		return append([]byte(nil), c.Payload...), nil
	case AlgoBDI:
		return BDIDecompress(c.Payload)
	case AlgoFPC:
		return FPCDecompress(c.Payload)
	case AlgoCPack:
		return CPackDecompress(c.Payload)
	default:
		return nil, fmt.Errorf("compress: unknown algorithm %v", c.Algo)
	}
}

// Compressible reports whether line compresses to at most the engine's
// target payload under either codec. This is the predicate the whole paper
// is built on ("compressible to 30 bytes", Fig. 4). It runs the size-only
// codec paths, so it allocates nothing.
func (e *Engine) Compressible(line []byte) bool {
	if s := BDISize(line); s < LineSize && s <= e.Target {
		return true
	}
	// FPC and CPack pay one tag byte in packed form (see Pack).
	if s := FPCSize(line); s < LineSize && s+1 <= e.Target {
		return true
	}
	if e.EnableCPack {
		if s := CPackSize(line); s < LineSize && s+1 <= e.Target {
			return true
		}
	}
	return false
}

// BestSize reports the smallest size either codec achieves regardless of
// the target — useful for compressibility CDFs.
func BestSize(line []byte) int {
	b, f := BDISize(line), FPCSize(line)
	if b < f {
		return b
	}
	return f
}
