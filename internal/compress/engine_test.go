package compress

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEngineSelectsBest(t *testing.T) {
	e := NewEngine()

	// Zero line: both codecs work; BDI (1 byte) beats FPC (6 bytes).
	c := e.Compress(make([]byte, LineSize))
	if c.Algo != AlgoBDI || c.Size() != 1 {
		t.Fatalf("zero line: algo=%v size=%d, want bdi/1", c.Algo, c.Size())
	}

	// A line of small independent 32-bit values: FPC-friendly, BDI-hostile
	// (no common 8-byte base, values too big for immediates at small delta).
	l := make([]byte, LineSize)
	rng := rand.New(rand.NewSource(5))
	for w := 0; w < 16; w++ {
		binary.LittleEndian.PutUint32(l[w*4:], uint32(rng.Intn(100)))
	}
	c = e.Compress(l)
	if c.Algo == AlgoNone {
		t.Fatal("small-word line should compress")
	}
}

func TestEngineIncompressibleKeepsRaw(t *testing.T) {
	e := NewEngine()
	rng := rand.New(rand.NewSource(21))
	l := line64(func(int) byte { return byte(rng.Intn(256)) })
	c := e.Compress(l)
	if c.Algo != AlgoNone {
		t.Fatalf("random line compressed with %v", c.Algo)
	}
	if !bytes.Equal(c.Payload, l) {
		t.Fatal("AlgoNone payload must be the raw line")
	}
	dec, err := e.Decompress(c)
	if err != nil || !bytes.Equal(dec, l) {
		t.Fatal("AlgoNone round trip failed")
	}
}

func TestEngineTargetEnforced(t *testing.T) {
	e := NewEngine()
	if e.Target != 30 {
		t.Fatalf("default target = %d, want 30 (paper)", e.Target)
	}
	// Construct a line BDI compresses to 26 bytes (b8d2): compressible.
	l := make([]byte, LineSize)
	base := uint64(0x123456789ABC0000)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(l[i*8:], base+uint64(i*1000))
	}
	if !e.Compressible(l) {
		t.Fatal("b8d2 line should be compressible to 30B")
	}

	// With an impossible target nothing is compressible.
	tight := &Engine{Target: 0}
	if tight.Compressible(l) {
		t.Fatal("target 0 should reject everything")
	}
}

func TestEngineCompressedPayloadIsolated(t *testing.T) {
	// Mutating the input line after Compress must not change the result.
	e := NewEngine()
	l := make([]byte, LineSize)
	c := e.Compress(l)
	l[0] = 0xFF
	dec, err := e.Decompress(c)
	if err != nil {
		t.Fatal(err)
	}
	if dec[0] != 0 {
		t.Fatal("compressed payload aliases the input line")
	}
}

func TestEngineDecompressErrors(t *testing.T) {
	e := NewEngine()
	cases := []Compressed{
		{Algo: AlgoNone, Payload: make([]byte, 10)},
		{Algo: AlgoBDI, Payload: nil},
		{Algo: Algorithm(9), Payload: make([]byte, LineSize)},
	}
	for i, c := range cases {
		if _, err := e.Decompress(c); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	for a, want := range map[Algorithm]string{AlgoNone: "none", AlgoBDI: "bdi", AlgoFPC: "fpc", Algorithm(7): "Algorithm(7)"} {
		if a.String() != want {
			t.Errorf("%d.String() = %q", uint8(a), a.String())
		}
	}
}

func TestBestSize(t *testing.T) {
	if s := BestSize(make([]byte, LineSize)); s != 1 {
		t.Fatalf("zero line best size = %d, want 1 (BDI)", s)
	}
}

// Property: engine round-trips every line exactly, compressed or not.
func TestEngineQuickRoundTrip(t *testing.T) {
	e := NewEngine()
	f := func(raw [LineSize]byte) bool {
		l := raw[:]
		c := e.Compress(l)
		dec, err := e.Decompress(c)
		return err == nil && bytes.Equal(dec, l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: anything the engine marks compressible fits the target with
// room for the 2-byte metadata header in a 32-byte sub-rank.
func TestEngineCompressibleFitsSubRank(t *testing.T) {
	e := NewEngine()
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 2000; trial++ {
		l := genCompressibleCandidate(rng)
		c := e.Compress(l)
		if c.Algo != AlgoNone && c.Size() > e.Target {
			t.Fatalf("compressed size %d exceeds target %d", c.Size(), e.Target)
		}
		if c.Algo != AlgoNone && c.Size()+2 > 32 {
			t.Fatalf("compressed line + header does not fit a sub-rank")
		}
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	e := NewEngine()
	rng := rand.New(rand.NewSource(13))
	seen := map[Algorithm]int{}
	for trial := 0; trial < 3000; trial++ {
		var l []byte
		switch trial % 3 {
		case 0:
			l = genCompressibleCandidate(rng)
		case 1:
			l = make([]byte, LineSize)
			for w := 0; w < 16; w++ {
				binary.LittleEndian.PutUint32(l[w*4:], uint32(rng.Intn(64)))
			}
		default:
			l = line64(func(int) byte { return byte(rng.Intn(256)) })
		}
		c := e.Compress(l)
		seen[c.Algo]++
		if c.Algo == AlgoNone {
			continue
		}
		packed := c.Pack()
		if len(packed) > e.Target {
			t.Fatalf("packed size %d exceeds target", len(packed))
		}
		u, err := Unpack(packed)
		if err != nil {
			t.Fatal(err)
		}
		if u.Algo != c.Algo || !bytes.Equal(u.Payload, c.Payload) {
			t.Fatalf("unpack mismatch: %v vs %v", u.Algo, c.Algo)
		}
		dec, err := e.Decompress(u)
		if err != nil || !bytes.Equal(dec, l) {
			t.Fatal("packed round trip failed")
		}
	}
	if seen[AlgoBDI] == 0 || seen[AlgoFPC] == 0 || seen[AlgoNone] == 0 {
		t.Fatalf("test corpus did not exercise all algorithms: %v", seen)
	}
}

func TestUnpackErrors(t *testing.T) {
	if _, err := Unpack(nil); err == nil {
		t.Fatal("expected error on empty payload")
	}
	if _, err := Unpack([]byte{200}); err == nil {
		t.Fatal("expected error on unknown tag")
	}
}

func BenchmarkBDICompress(b *testing.B) {
	l := make([]byte, LineSize)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(l[i*8:], 0x1000+uint64(i*3))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BDICompress(l)
	}
}

func BenchmarkFPCCompress(b *testing.B) {
	l := make([]byte, LineSize)
	for w := 0; w < 16; w++ {
		binary.LittleEndian.PutUint32(l[w*4:], uint32(w))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FPCCompress(l)
	}
}

func BenchmarkEngineCompress(b *testing.B) {
	e := NewEngine()
	l := make([]byte, LineSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Compress(l)
	}
}
