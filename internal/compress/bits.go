package compress

import "fmt"

// BitWriter serializes values MSB-first into a byte buffer. FPC's variable
// width codes are packed with it.
type BitWriter struct {
	buf   []byte
	nbits int
}

// WriteBits appends the low n bits of v, most significant bit first.
func (w *BitWriter) WriteBits(v uint64, n int) {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("compress: WriteBits width %d out of range", n))
	}
	for i := n - 1; i >= 0; i-- {
		bit := (v >> uint(i)) & 1
		byteIdx := w.nbits >> 3
		if byteIdx == len(w.buf) {
			w.buf = append(w.buf, 0)
		}
		if bit != 0 {
			w.buf[byteIdx] |= 1 << uint(7-w.nbits&7)
		}
		w.nbits++
	}
}

// Bytes returns the packed buffer; the final byte is zero-padded.
func (w *BitWriter) Bytes() []byte { return w.buf }

// Len reports the number of bits written.
func (w *BitWriter) Len() int { return w.nbits }

// BitReader consumes values MSB-first from a byte buffer.
type BitReader struct {
	buf []byte
	pos int
}

// NewBitReader wraps buf for reading.
func NewBitReader(buf []byte) *BitReader { return &BitReader{buf: buf} }

// ReadBits consumes n bits and returns them right-aligned. It returns an
// error when the buffer is exhausted.
func (r *BitReader) ReadBits(n int) (uint64, error) {
	if n < 0 || n > 64 {
		return 0, fmt.Errorf("compress: ReadBits width %d out of range", n)
	}
	if r.pos+n > len(r.buf)*8 {
		return 0, fmt.Errorf("compress: bitstream exhausted (need %d bits at offset %d, have %d)", n, r.pos, len(r.buf)*8)
	}
	var v uint64
	for i := 0; i < n; i++ {
		byteIdx := r.pos >> 3
		bit := (r.buf[byteIdx] >> uint(7-r.pos&7)) & 1
		v = v<<1 | uint64(bit)
		r.pos++
	}
	return v, nil
}

// Remaining reports the number of unread bits.
func (r *BitReader) Remaining() int { return len(r.buf)*8 - r.pos }

// signExtend interprets the low `bits` bits of v as a two's-complement
// value and returns it sign-extended to int64.
func signExtend(v uint64, bits int) int64 {
	shift := uint(64 - bits)
	return int64(v<<shift) >> shift
}

// fitsSigned reports whether the signed value x is representable in `bits`
// two's-complement bits.
func fitsSigned(x int64, bits int) bool {
	if bits >= 64 {
		return true
	}
	limit := int64(1) << uint(bits-1)
	return x >= -limit && x < limit
}
