package compress

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func lineFromWords32(words []uint32) []byte {
	l := make([]byte, LineSize)
	for i := 0; i < fpcWords; i++ {
		binary.LittleEndian.PutUint32(l[i*4:], words[i%len(words)])
	}
	return l
}

func TestFPCZeroLine(t *testing.T) {
	enc, ok := FPCCompress(make([]byte, LineSize))
	if !ok {
		t.Fatal("zero line did not compress")
	}
	// 16 words x 3 bits = 48 bits = 6 bytes.
	if len(enc) != 6 {
		t.Fatalf("zero line size = %d, want 6", len(enc))
	}
	dec, err := FPCDecompress(enc)
	if err != nil || !bytes.Equal(dec, make([]byte, LineSize)) {
		t.Fatal("zero round trip failed")
	}
}

func TestFPCPatterns(t *testing.T) {
	cases := []struct {
		name    string
		word    uint32
		pattern int
	}{
		{"zero", 0, fpcZero},
		{"sign4 pos", 7, fpcSign4},
		{"sign4 neg", 0xFFFFFFF9, fpcSign4}, // -7
		{"sign8", 100, fpcSign8},
		{"sign8 neg", 0xFFFFFF80, fpcSign8}, // -128
		{"sign16", 30000, fpcSign16},
		{"sign16 neg", 0xFFFF8000, fpcSign16},
		{"high half", 0x12340000, fpcHighHalf},
		{"two halves", 0xFF850003, fpcTwoHalves}, // hi=-123, lo=3: both fit 8-bit signed
		{"rep byte", 0xABABABAB, fpcRepByte},
		{"uncompressed", 0x12345678, fpcUncompressed},
	}
	for _, c := range cases {
		pat, _ := fpcClassify(c.word)
		if pat != c.pattern {
			t.Errorf("%s: classify(%#x) = %d, want %d", c.name, c.word, pat, c.pattern)
		}
	}
}

func TestFPCClassifyExpandRoundTrip(t *testing.T) {
	words := []uint32{
		0, 1, 7, 0xFFFFFFF8, 127, 0xFFFFFF80, 32767, 0xFFFF8000,
		0xBEEF0000, 0x00050003, 0xFF03FF7F, 0x77777777, 0xDEADBEEF,
		0x80000000, 0x7FFFFFFF, 0x0001FFFF,
	}
	for _, w := range words {
		pat, data := fpcClassify(w)
		got, err := fpcExpand(pat, data)
		if err != nil {
			t.Fatalf("expand(%d, %#x): %v", pat, data, err)
		}
		if got != w {
			t.Errorf("word %#x: pattern %d expanded to %#x", w, pat, got)
		}
	}
}

func TestFPCSmallValueLine(t *testing.T) {
	l := lineFromWords32([]uint32{1, 2, 3, 0xFFFFFFFF})
	enc, ok := FPCCompress(l)
	if !ok {
		t.Fatal("small-value line did not compress")
	}
	// 16 words x (3+4) bits = 112 bits = 14 bytes.
	if len(enc) != 14 {
		t.Fatalf("small-value line size = %d, want 14", len(enc))
	}
	dec, err := FPCDecompress(enc)
	if err != nil || !bytes.Equal(dec, l) {
		t.Fatal("round trip failed")
	}
}

func TestFPCIncompressibleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	fails := 0
	for trial := 0; trial < 50; trial++ {
		l := line64(func(int) byte { return byte(rng.Intn(256)) })
		if _, ok := FPCCompress(l); !ok {
			fails++
		}
	}
	if fails < 45 {
		t.Fatalf("only %d/50 random lines incompressible under FPC", fails)
	}
}

func TestFPCDecompressTruncated(t *testing.T) {
	l := lineFromWords32([]uint32{5})
	enc, _ := FPCCompress(l)
	if _, err := FPCDecompress(enc[:len(enc)-1]); err == nil {
		t.Fatal("expected error on truncated stream")
	}
	if _, err := FPCDecompress(nil); err == nil {
		t.Fatal("expected error on empty stream")
	}
}

func TestFPCCompressPanicsOnShortLine(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on short line")
		}
	}()
	FPCCompress(make([]byte, 63))
}

func TestFPCSize(t *testing.T) {
	if s := FPCSize(make([]byte, LineSize)); s != 6 {
		t.Fatalf("zero line FPC size = %d, want 6", s)
	}
	rng := rand.New(rand.NewSource(3))
	l := line64(func(int) byte { return byte(rng.Intn(256)) })
	if s := FPCSize(l); s != LineSize {
		t.Fatalf("random line FPC size = %d, want %d", s, LineSize)
	}
}

// Property: FPC always round-trips exactly, for every possible line,
// because every word has a fallback uncompressed pattern.
func TestFPCQuickRoundTrip(t *testing.T) {
	f := func(raw [LineSize]byte) bool {
		l := raw[:]
		enc, _ := FPCCompress(l)
		dec, err := FPCDecompress(enc)
		return err == nil && bytes.Equal(dec, l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: FPC size equals the analytic sum of per-word pattern widths.
func TestFPCSizeMatchesAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		l := make([]byte, LineSize)
		for w := 0; w < fpcWords; w++ {
			var v uint32
			switch rng.Intn(5) {
			case 0:
				v = 0
			case 1:
				v = uint32(rng.Intn(16)) // sign4-ish
			case 2:
				v = uint32(rng.Intn(65536))
			case 3:
				b := uint32(rng.Intn(256))
				v = b | b<<8 | b<<16 | b<<24
			default:
				v = rng.Uint32()
			}
			binary.LittleEndian.PutUint32(l[w*4:], v)
		}
		bits := 0
		for w := 0; w < fpcWords; w++ {
			pat, _ := fpcClassify(binary.LittleEndian.Uint32(l[w*4:]))
			bits += 3 + fpcDataBits[pat]
		}
		wantBytes := (bits + 7) / 8
		enc, _ := FPCCompress(l)
		if len(enc) != wantBytes {
			t.Fatalf("trial %d: size %d, analytic %d", trial, len(enc), wantBytes)
		}
	}
}
