package compress

import (
	"encoding/binary"
	"fmt"
)

// C-Pack-style dictionary compression (Chen et al., "C-Pack: A
// High-Performance Microprocessor Cache Compression Algorithm"). The
// paper's CID extension (§IV-A5, Table I) exists precisely to select
// among multiple algorithms on the fly; this codec is the third
// algorithm of the extended engine (NewExtendedEngine).
//
// The line is processed as sixteen 32-bit words against a small FIFO
// dictionary built online from the line's own words; the decompressor
// reconstructs the identical dictionary, so no table is stored.
//
// Per-word codes (prefix, payload bits):
//
//	00    zero word                         (0)
//	01    uncompressed word, pushed to dict (32)
//	10    full dictionary match             (4: index)
//	1100  match on upper 16 bits            (4 + 16)
//	1101  match on upper 24 bits            (4 + 8)
//	1110  three zero bytes + one literal    (8)
const (
	cpackDictSize = 16
)

// CPackCompress compresses a 64-byte line. ok is false when the encoding
// does not beat the raw line.
func CPackCompress(line []byte) (encoded []byte, ok bool) {
	if len(line) != LineSize {
		panic(fmt.Sprintf("compress: CPackCompress needs a %d-byte line, got %d", LineSize, len(line)))
	}
	// Worst case is 16 uncompressed words: 16 x 34 bits = 68 bytes.
	w := BitWriter{buf: make([]byte, 0, 68)}
	var dictArr [cpackDictSize]uint32
	dict := dictArr[:0]
	for i := 0; i < fpcWords; i++ {
		word := binary.LittleEndian.Uint32(line[i*4:])
		switch {
		case word == 0:
			w.WriteBits(0b00, 2)
		case word&0xFFFFFF00 == 0:
			w.WriteBits(0b1110, 4)
			w.WriteBits(uint64(word), 8)
		default:
			if idx, kind := cpackMatch(dict, word); kind == 2 {
				w.WriteBits(0b10, 2)
				w.WriteBits(uint64(idx), 4)
			} else if kind == 1 {
				w.WriteBits(0b1101, 4)
				w.WriteBits(uint64(idx), 4)
				w.WriteBits(uint64(word&0xFF), 8)
			} else if kind == 0 {
				w.WriteBits(0b1100, 4)
				w.WriteBits(uint64(idx), 4)
				w.WriteBits(uint64(word&0xFFFF), 16)
			} else {
				w.WriteBits(0b01, 2)
				w.WriteBits(uint64(word), 32)
			}
			dict = cpackPush(dict, word)
		}
	}
	out := w.Bytes()
	return out, len(out) < LineSize
}

// cpackMatch finds the best dictionary match for word: kind 2 = full,
// 1 = upper 24 bits, 0 = upper 16 bits, -1 = none.
func cpackMatch(dict []uint32, word uint32) (idx, kind int) {
	idx, kind = -1, -1
	for i, d := range dict {
		switch {
		case d == word:
			return i, 2
		case kind < 1 && d&0xFFFFFF00 == word&0xFFFFFF00:
			idx, kind = i, 1
		case kind < 0 && d&0xFFFF0000 == word&0xFFFF0000:
			idx, kind = i, 0
		}
	}
	return idx, kind
}

// cpackPush appends to the FIFO dictionary, evicting the oldest entry
// when full. Both sides of the codec perform identical pushes.
func cpackPush(dict []uint32, word uint32) []uint32 {
	if len(dict) == cpackDictSize {
		copy(dict, dict[1:])
		dict[len(dict)-1] = word
		return dict
	}
	return append(dict, word)
}

// CPackDecompress reverses CPackCompress.
func CPackDecompress(encoded []byte) ([]byte, error) {
	r := NewBitReader(encoded)
	out := make([]byte, LineSize)
	var dict []uint32
	for i := 0; i < fpcWords; i++ {
		word, pushed, err := cpackDecodeWord(r, dict)
		if err != nil {
			return nil, fmt.Errorf("compress: cpack word %d: %w", i, err)
		}
		if pushed {
			dict = cpackPush(dict, word)
		}
		binary.LittleEndian.PutUint32(out[i*4:], word)
	}
	return out, nil
}

func cpackDecodeWord(r *BitReader, dict []uint32) (word uint32, pushed bool, err error) {
	b1, err := r.ReadBits(2)
	if err != nil {
		return 0, false, err
	}
	switch b1 {
	case 0b00:
		return 0, false, nil
	case 0b01:
		v, err := r.ReadBits(32)
		return uint32(v), true, err
	case 0b10:
		idx, err := r.ReadBits(4)
		if err != nil {
			return 0, false, err
		}
		if int(idx) >= len(dict) {
			return 0, false, fmt.Errorf("dictionary index %d out of range %d", idx, len(dict))
		}
		return dict[idx], true, nil
	default: // 11: read two more prefix bits
		b2, err := r.ReadBits(2)
		if err != nil {
			return 0, false, err
		}
		switch b2 {
		case 0b00: // mmxx
			idx, err := r.ReadBits(4)
			if err != nil {
				return 0, false, err
			}
			low, err := r.ReadBits(16)
			if err != nil {
				return 0, false, err
			}
			if int(idx) >= len(dict) {
				return 0, false, fmt.Errorf("dictionary index %d out of range %d", idx, len(dict))
			}
			return dict[idx]&0xFFFF0000 | uint32(low), true, nil
		case 0b01: // mmmx
			idx, err := r.ReadBits(4)
			if err != nil {
				return 0, false, err
			}
			low, err := r.ReadBits(8)
			if err != nil {
				return 0, false, err
			}
			if int(idx) >= len(dict) {
				return 0, false, fmt.Errorf("dictionary index %d out of range %d", idx, len(dict))
			}
			return dict[idx]&0xFFFFFF00 | uint32(low), true, nil
		case 0b10: // zzzx
			low, err := r.ReadBits(8)
			return uint32(low), false, err
		default:
			return 0, false, fmt.Errorf("invalid prefix 11%02b", b2)
		}
	}
}

// CPackSize reports the compressed size CPack achieves, or LineSize when
// it does not beat the raw line. Unlike CPackCompress it allocates
// nothing: it runs the same dictionary walk but only counts code widths.
func CPackSize(line []byte) int {
	if len(line) != LineSize {
		panic(fmt.Sprintf("compress: CPackSize needs a %d-byte line, got %d", LineSize, len(line)))
	}
	var dictArr [cpackDictSize]uint32
	dict := dictArr[:0]
	bits := 0
	for i := 0; i < fpcWords; i++ {
		word := binary.LittleEndian.Uint32(line[i*4:])
		switch {
		case word == 0:
			bits += 2
		case word&0xFFFFFF00 == 0:
			bits += 4 + 8
		default:
			switch _, kind := cpackMatch(dict, word); kind {
			case 2:
				bits += 2 + 4
			case 1:
				bits += 4 + 4 + 8
			case 0:
				bits += 4 + 4 + 16
			default:
				bits += 2 + 32
			}
			dict = cpackPush(dict, word)
		}
	}
	if n := (bits + 7) / 8; n < LineSize {
		return n
	}
	return LineSize
}

// cpackEncodedLen walks a CPack bitstream and reports its byte length,
// tracking dictionary occupancy only (contents do not affect lengths).
func cpackEncodedLen(buf []byte) (int, error) {
	r := NewBitReader(buf)
	bits := 0
	dictLen := 0
	push := func() {
		if dictLen < cpackDictSize {
			dictLen++
		}
	}
	for i := 0; i < fpcWords; i++ {
		b1, err := r.ReadBits(2)
		if err != nil {
			return 0, fmt.Errorf("compress: cpack length scan word %d: %w", i, err)
		}
		bits += 2
		switch b1 {
		case 0b00:
		case 0b01:
			if _, err := r.ReadBits(32); err != nil {
				return 0, err
			}
			bits += 32
			push()
		case 0b10:
			idx, err := r.ReadBits(4)
			if err != nil {
				return 0, err
			}
			if int(idx) >= dictLen {
				return 0, fmt.Errorf("compress: cpack length scan word %d: bad index", i)
			}
			bits += 4
			push()
		default:
			b2, err := r.ReadBits(2)
			if err != nil {
				return 0, err
			}
			bits += 2
			var need int
			switch b2 {
			case 0b00:
				need = 4 + 16
				push()
			case 0b01:
				need = 4 + 8
				push()
			case 0b10:
				need = 8
			default:
				return 0, fmt.Errorf("compress: cpack length scan word %d: bad prefix", i)
			}
			if _, err := r.ReadBits(need); err != nil {
				return 0, err
			}
			bits += need
		}
	}
	return (bits + 7) / 8, nil
}
