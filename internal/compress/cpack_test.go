package compress

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

// dictFriendlyLine builds data CPack handles well and BDI/FPC handle
// poorly: a few distinct full 32-bit values repeated in arbitrary order,
// plus partial matches sharing upper bytes.
func dictFriendlyLine(rng *rand.Rand) []byte {
	vocab := []uint32{
		rng.Uint32() | 0x10000, rng.Uint32() | 0x20000, rng.Uint32() | 0x30000,
	}
	l := make([]byte, LineSize)
	for w := 0; w < 16; w++ {
		v := vocab[rng.Intn(len(vocab))]
		if rng.Intn(4) == 0 {
			v = v&0xFFFFFF00 | uint32(rng.Intn(256)) // partial match
		}
		binary.LittleEndian.PutUint32(l[w*4:], v)
	}
	return l
}

func TestCPackZeroLine(t *testing.T) {
	enc, ok := CPackCompress(make([]byte, LineSize))
	if !ok {
		t.Fatal("zero line did not compress")
	}
	// 16 words x 2 bits = 32 bits = 4 bytes.
	if len(enc) != 4 {
		t.Fatalf("zero line size = %d, want 4", len(enc))
	}
	dec, err := CPackDecompress(enc)
	if err != nil || !bytes.Equal(dec, make([]byte, LineSize)) {
		t.Fatal("round trip failed")
	}
}

func TestCPackDictionaryMatches(t *testing.T) {
	// One value repeated 16 times: first word is a miss (34 bits), the
	// remaining 15 full matches (6 bits each): 124 bits = 16 bytes.
	l := make([]byte, LineSize)
	for w := 0; w < 16; w++ {
		binary.LittleEndian.PutUint32(l[w*4:], 0xDEADBEEF)
	}
	enc, ok := CPackCompress(l)
	if !ok {
		t.Fatal("repeated line did not compress")
	}
	if len(enc) != 16 {
		t.Fatalf("size = %d, want 16", len(enc))
	}
	dec, err := CPackDecompress(enc)
	if err != nil || !bytes.Equal(dec, l) {
		t.Fatal("round trip failed")
	}
}

func TestCPackPartialMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 500; trial++ {
		l := dictFriendlyLine(rng)
		enc, ok := CPackCompress(l)
		if !ok {
			continue
		}
		dec, err := CPackDecompress(enc)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(dec, l) {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
	}
}

func TestCPackBeatsBDIAndFPCOnDictionaryData(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	wins := 0
	const trials = 300
	for i := 0; i < trials; i++ {
		l := dictFriendlyLine(rng)
		cp := CPackSize(l)
		if cp < BDISize(l) && cp < FPCSize(l) {
			wins++
		}
	}
	if wins < trials/2 {
		t.Fatalf("cpack won only %d/%d on dictionary-friendly data", wins, trials)
	}
}

func TestCPackSmallByteWords(t *testing.T) {
	l := make([]byte, LineSize)
	for w := 0; w < 16; w++ {
		binary.LittleEndian.PutUint32(l[w*4:], uint32(w*7))
	}
	enc, ok := CPackCompress(l)
	if !ok {
		t.Fatal("small-byte line did not compress")
	}
	dec, err := CPackDecompress(enc)
	if err != nil || !bytes.Equal(dec, l) {
		t.Fatal("round trip failed")
	}
}

func TestCPackDecompressErrors(t *testing.T) {
	if _, err := CPackDecompress(nil); err == nil {
		t.Fatal("expected error on empty stream")
	}
	// A stream starting with a dictionary reference is invalid: the
	// dictionary is empty.
	var w BitWriter
	w.WriteBits(0b10, 2)
	w.WriteBits(0, 4)
	if _, err := CPackDecompress(w.Bytes()); err == nil {
		t.Fatal("expected dictionary-index error")
	}
	// Invalid 1111 prefix.
	var w2 BitWriter
	w2.WriteBits(0b1111, 4)
	w2.WriteBits(0, 60)
	if _, err := CPackDecompress(w2.Bytes()); err == nil {
		t.Fatal("expected prefix error")
	}
}

func TestCPackCompressPanicsOnShortLine(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CPackCompress(make([]byte, 10))
}

// Property: CPack round-trips every compressible line exactly.
func TestCPackQuickRoundTrip(t *testing.T) {
	f := func(raw [LineSize]byte) bool {
		l := raw[:]
		enc, ok := CPackCompress(l)
		if !ok {
			return true
		}
		dec, err := CPackDecompress(enc)
		return err == nil && bytes.Equal(dec, l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestExtendedEngineSelectsCPack(t *testing.T) {
	std := NewEngine()
	ext := NewExtendedEngine()
	rng := rand.New(rand.NewSource(7))
	cpWins, extBetter := 0, 0
	for trial := 0; trial < 400; trial++ {
		l := dictFriendlyLine(rng)
		ce := ext.Compress(l)
		cs := std.Compress(l)
		if ce.Algo == AlgoCPack {
			cpWins++
			dec, err := ext.Decompress(ce)
			if err != nil || !bytes.Equal(dec, l) {
				t.Fatal("extended round trip failed")
			}
		}
		if ce.Algo != AlgoNone && cs.Algo == AlgoNone {
			extBetter++
		}
	}
	if cpWins < 100 {
		t.Fatalf("cpack selected only %d/400 times on dictionary data", cpWins)
	}
	if extBetter < 50 {
		t.Fatalf("extended engine rescued only %d lines the standard engine rejected", extBetter)
	}
}

func TestExtendedEnginePackedMeasurable(t *testing.T) {
	ext := NewExtendedEngine()
	rng := rand.New(rand.NewSource(13))
	checked := 0
	for trial := 0; trial < 1000; trial++ {
		l := dictFriendlyLine(rng)
		c := ext.Compress(l)
		if c.Algo != AlgoCPack {
			continue
		}
		packed := c.Pack()
		padded := make([]byte, 30)
		copy(padded, packed)
		n, err := MeasurePacked(padded)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(packed) {
			t.Fatalf("measured %d, want %d", n, len(packed))
		}
		u, err := Unpack(padded[:n])
		if err != nil || u.Algo != AlgoCPack {
			t.Fatalf("unpack: %v %v", u.Algo, err)
		}
		dec, err := ext.Decompress(u)
		if err != nil || !bytes.Equal(dec, l) {
			t.Fatal("padded round trip failed")
		}
		checked++
	}
	if checked < 100 {
		t.Fatalf("only %d cpack payloads checked", checked)
	}
}

func BenchmarkCPackCompress(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	l := dictFriendlyLine(rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CPackCompress(l)
	}
}
