package compress

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

func TestMeasurePackedAgainstRealPayloads(t *testing.T) {
	e := NewEngine()
	rng := rand.New(rand.NewSource(8))
	checked := 0
	for trial := 0; trial < 3000; trial++ {
		var l []byte
		if trial%2 == 0 {
			l = genCompressibleCandidate(rng)
		} else {
			l = make([]byte, LineSize)
			for w := 0; w < 16; w++ {
				binary.LittleEndian.PutUint32(l[w*4:], uint32(rng.Intn(1<<uint(rng.Intn(20)+1))))
			}
		}
		c := e.Compress(l)
		if c.Algo == AlgoNone {
			continue
		}
		packed := c.Pack()
		// Pad to a full sub-rank as BLEM stores it.
		padded := make([]byte, 30)
		copy(padded, packed)
		n, err := MeasurePacked(padded)
		if err != nil {
			t.Fatalf("measure error on %v payload: %v", c.Algo, err)
		}
		if n != len(packed) {
			t.Fatalf("measured %d, want %d (algo %v)", n, len(packed), c.Algo)
		}
		// The measured prefix must decode to the original line.
		u, err := Unpack(padded[:n])
		if err != nil {
			t.Fatal(err)
		}
		dec, err := e.Decompress(u)
		if err != nil || !bytes.Equal(dec, l) {
			t.Fatal("measured prefix does not round-trip")
		}
		checked++
	}
	if checked < 300 {
		t.Fatalf("only %d payloads checked", checked)
	}
}

func TestMeasurePackedErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{byte(BDIRep), 0}, // truncated rep
		{byte(BDIB8D1)},   // truncated base-delta
		{7},               // BDIB2D1 tag but empty body
		{200},             // unknown tag
		{fpcTag},          // empty FPC stream
		{fpcTag, 0xFF},    // truncated FPC stream
	}
	for i, c := range cases {
		if _, err := MeasurePacked(c); err == nil {
			t.Errorf("case %d (% x): expected error", i, c)
		}
	}
}

func TestMeasurePackedZeros(t *testing.T) {
	n, err := MeasurePacked(make([]byte, 30)) // zeros tag + padding
	if err != nil || n != 1 {
		t.Fatalf("zeros: n=%d err=%v", n, err)
	}
}
