package compress

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func line64(fill func(i int) byte) []byte {
	l := make([]byte, LineSize)
	for i := range l {
		l[i] = fill(i)
	}
	return l
}

func lineFromWords64(base uint64, deltas []int64) []byte {
	l := make([]byte, LineSize)
	for i := 0; i < 8; i++ {
		d := deltas[i%len(deltas)]
		binary.LittleEndian.PutUint64(l[i*8:], base+uint64(d))
	}
	return l
}

func TestBDIZeros(t *testing.T) {
	enc, ok := BDICompress(make([]byte, LineSize))
	if !ok || len(enc) != 1 || BDIEncoding(enc[0]) != BDIZeros {
		t.Fatalf("zero line: enc=%v ok=%v", enc, ok)
	}
	dec, err := BDIDecompress(enc)
	if err != nil || !bytes.Equal(dec, make([]byte, LineSize)) {
		t.Fatalf("zero round trip failed: %v", err)
	}
}

func TestBDIRepeated(t *testing.T) {
	l := lineFromWords64(0xDEADBEEFCAFEBABE, []int64{0})
	enc, ok := BDICompress(l)
	if !ok || BDIEncoding(enc[0]) != BDIRep || len(enc) != 9 {
		t.Fatalf("repeated line: tag=%v len=%d ok=%v", enc[0], len(enc), ok)
	}
	dec, err := BDIDecompress(enc)
	if err != nil || !bytes.Equal(dec, l) {
		t.Fatal("repeated round trip failed")
	}
}

func TestBDIBase8Delta1(t *testing.T) {
	l := lineFromWords64(0x1000000000, []int64{0, 5, -3, 100, 7, -120, 64, 1})
	enc, ok := BDICompress(l)
	if !ok {
		t.Fatal("b8d1-shaped line did not compress")
	}
	if len(enc) > 18 {
		t.Fatalf("b8d1 line compressed to %d bytes, want <= 18", len(enc))
	}
	dec, err := BDIDecompress(enc)
	if err != nil || !bytes.Equal(dec, l) {
		t.Fatal("b8d1 round trip failed")
	}
}

func TestBDIImmediateMix(t *testing.T) {
	// Half the segments near zero (immediates), half near a large base.
	l := make([]byte, LineSize)
	for i := 0; i < 8; i++ {
		var v uint64
		if i%2 == 0 {
			v = uint64(i) // immediate
		} else {
			v = 0x5000000000000 + uint64(i)
		}
		binary.LittleEndian.PutUint64(l[i*8:], v)
	}
	enc, ok := BDICompress(l)
	if !ok {
		t.Fatal("immediate-mix line did not compress")
	}
	dec, err := BDIDecompress(enc)
	if err != nil || !bytes.Equal(dec, l) {
		t.Fatal("immediate-mix round trip failed")
	}
}

func TestBDIIncompressibleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	incompressible := 0
	for trial := 0; trial < 50; trial++ {
		l := line64(func(int) byte { return byte(rng.Intn(256)) })
		if _, ok := BDICompress(l); !ok {
			incompressible++
		}
	}
	if incompressible < 45 {
		t.Fatalf("only %d/50 random lines incompressible under BDI", incompressible)
	}
}

func TestBDIDecompressErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{byte(BDIRep)},          // truncated rep
		{byte(BDIB8D1), 0, 0},   // truncated base-delta
		{200},                   // unknown tag
		{byte(BDIUncompressed)}, // not a stored form
	}
	for i, c := range cases {
		if _, err := BDIDecompress(c); err == nil {
			t.Errorf("case %d: expected decode error", i)
		}
	}
}

func TestBDICompressPanicsOnShortLine(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on short line")
		}
	}()
	BDICompress(make([]byte, 32))
}

func TestBDISizeBounds(t *testing.T) {
	if s := BDISize(make([]byte, LineSize)); s != 1 {
		t.Fatalf("zero-line BDI size = %d, want 1", s)
	}
	rng := rand.New(rand.NewSource(1))
	l := line64(func(int) byte { return byte(rng.Intn(256)) })
	if s := BDISize(l); s != LineSize {
		t.Fatalf("random line BDI size = %d, want %d", s, LineSize)
	}
}

func TestBDIShapeSizes(t *testing.T) {
	// Sizes from the BDI paper (+1 tag byte, +mask bytes).
	want := map[BDIEncoding]int{
		BDIB8D1: 18, BDIB8D2: 26, BDIB8D4: 42,
		BDIB4D1: 23, BDIB4D2: 39, BDIB2D1: 39,
	}
	for _, s := range bdiShapes {
		if got := bdiShapeSize(s); got != want[s.enc] {
			t.Errorf("%v size = %d, want %d", s.enc, got, want[s.enc])
		}
	}
}

// Property: every line BDI compresses round-trips exactly.
func TestBDIRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		l := genCompressibleCandidate(rng)
		enc, ok := BDICompress(l)
		if !ok {
			continue
		}
		dec, err := BDIDecompress(enc)
		if err != nil {
			t.Fatalf("trial %d: decode error: %v", trial, err)
		}
		if !bytes.Equal(dec, l) {
			t.Fatalf("trial %d: round trip mismatch\n in=%x\nout=%x", trial, l, dec)
		}
	}
}

// Property (testing/quick): arbitrary byte lines either refuse compression
// or round-trip exactly.
func TestBDIQuickRoundTrip(t *testing.T) {
	f := func(raw [LineSize]byte) bool {
		l := raw[:]
		enc, ok := BDICompress(l)
		if !ok {
			return true
		}
		dec, err := BDIDecompress(enc)
		return err == nil && bytes.Equal(dec, l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// genCompressibleCandidate produces lines biased toward BDI-friendly
// shapes: common bases with varied delta widths and immediate mixes.
func genCompressibleCandidate(rng *rand.Rand) []byte {
	l := make([]byte, LineSize)
	segSizes := []int{2, 4, 8}
	seg := segSizes[rng.Intn(len(segSizes))]
	deltaRange := []int64{120, 30000, 2000000000}[rng.Intn(3)]
	base := rng.Uint64()
	for i := 0; i < LineSize/seg; i++ {
		v := base + uint64(rng.Int63n(deltaRange*2)-deltaRange)
		if rng.Intn(4) == 0 {
			v = uint64(rng.Int63n(100)) // immediate
		}
		writeSeg(l, i*seg, seg, v&maskBits(seg*8))
	}
	return l
}
