package compress

import "testing"

// The size-only paths (BDISize/FPCSize/CPackSize, Engine.Compressible)
// are the compression hot path of the Monte-Carlo experiments and the
// functional framework's classification step; they must stay
// allocation-free. The full codecs allocate only their output payload.

func benchLines() [][]byte { return testLines(64) }

func BenchmarkBDISize(b *testing.B) {
	lines := benchLines()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BDISize(lines[i%len(lines)])
	}
}

func BenchmarkFPCSize(b *testing.B) {
	lines := benchLines()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FPCSize(lines[i%len(lines)])
	}
}

func BenchmarkCPackSize(b *testing.B) {
	lines := benchLines()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CPackSize(lines[i%len(lines)])
	}
}

func BenchmarkCompressible(b *testing.B) {
	e := Engine{Target: 32, EnableCPack: true}
	lines := benchLines()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Compressible(lines[i%len(lines)])
	}
}

func BenchmarkCompress(b *testing.B) {
	e := Engine{Target: 32, EnableCPack: true}
	lines := benchLines()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Compress(lines[i%len(lines)])
	}
}
