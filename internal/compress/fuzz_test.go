package compress

import (
	"bytes"
	"testing"
)

// Fuzz targets: `go test` runs the seed corpus; `go test -fuzz=Fuzz...`
// explores further. Every target asserts the codec invariants — exact
// round trips for valid inputs, graceful errors (never panics) for
// arbitrary ones.

func fuzzSeedLines(f *testing.F) {
	f.Helper()
	f.Add(make([]byte, LineSize))
	rep := bytes.Repeat([]byte{0xAB, 0xCD}, LineSize/2)
	f.Add(rep)
	seq := make([]byte, LineSize)
	for i := range seq {
		seq[i] = byte(i)
	}
	f.Add(seq)
}

func FuzzBDIRoundTrip(f *testing.F) {
	fuzzSeedLines(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) != LineSize {
			return
		}
		enc, ok := BDICompress(data)
		if !ok {
			return
		}
		dec, err := BDIDecompress(enc)
		if err != nil {
			t.Fatalf("compressed output failed to decode: %v", err)
		}
		if !bytes.Equal(dec, data) {
			t.Fatal("round trip mismatch")
		}
	})
}

func FuzzFPCRoundTrip(f *testing.F) {
	fuzzSeedLines(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) != LineSize {
			return
		}
		enc, _ := FPCCompress(data)
		dec, err := FPCDecompress(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !bytes.Equal(dec, data) {
			t.Fatal("round trip mismatch")
		}
	})
}

func FuzzCPackRoundTrip(f *testing.F) {
	fuzzSeedLines(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) != LineSize {
			return
		}
		enc, ok := CPackCompress(data)
		if !ok {
			return
		}
		dec, err := CPackDecompress(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !bytes.Equal(dec, data) {
			t.Fatal("round trip mismatch")
		}
	})
}

// FuzzCPackSizeAgreement asserts the allocation-free size estimator
// agrees exactly with the real encoder on every line: CPackSize must
// report the encoded length when CPack wins and LineSize when it does
// not. The simulator's timing model classifies lines with CPackSize, so
// any disagreement would make timing diverge from the functional flow.
func FuzzCPackSizeAgreement(f *testing.F) {
	fuzzSeedLines(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) != LineSize {
			return
		}
		enc, ok := CPackCompress(data)
		size := CPackSize(data)
		if ok {
			if size != len(enc) {
				t.Fatalf("CPackSize=%d but encoder produced %d bytes", size, len(enc))
			}
			if size >= LineSize {
				t.Fatalf("encoder claimed a win at %d bytes", size)
			}
		} else if size != LineSize {
			t.Fatalf("CPackSize=%d for a line the encoder rejects, want %d", size, LineSize)
		}
	})
}

// FuzzDecodersNeverPanic feeds arbitrary bytes to every decoder: errors
// are fine, panics are not (a corrupted DRAM block must not crash the
// controller model).
func FuzzDecodersNeverPanic(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{8, 0xFF})
	f.Add([]byte{9, 0xFF, 0x00})
	f.Add([]byte{200})
	f.Fuzz(func(t *testing.T, data []byte) {
		BDIDecompress(data)
		FPCDecompress(data)
		CPackDecompress(data)
		MeasurePacked(data)
		if u, err := Unpack(data); err == nil {
			NewExtendedEngine().Decompress(u)
		}
	})
}
