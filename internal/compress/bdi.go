// Package compress implements the cacheline compression algorithms the
// Attaché paper builds on: Base-Delta-Immediate (BDI, Pekhimenko et al.,
// PACT 2012) and Frequent-Pattern-Compression (FPC, Alameldeen & Wood),
// plus the best-of-both engine the paper's memory controller runs (§V).
//
// All codecs operate on 64-byte cachelines and provide exact round-trips;
// sizes reported include the per-line encoding byte so they are directly
// comparable against the paper's "compressible to 30 bytes" threshold.
package compress

import (
	"encoding/binary"
	"fmt"
)

// LineSize is the cacheline size every codec in this package operates on.
const LineSize = 64

// BDIEncoding identifies one of the BDI line formats.
type BDIEncoding uint8

// The BDI encodings, ordered roughly by compressed size. BxDy means
// x-byte segments with y-byte deltas against a single base, with a
// per-segment immediate flag for segments that are small relative to zero.
const (
	BDIZeros BDIEncoding = iota // all-zero line
	BDIRep                      // one repeated 8-byte value
	BDIB8D1
	BDIB8D2
	BDIB8D4
	BDIB4D1
	BDIB4D2
	BDIB2D1
	BDIUncompressed
)

var bdiNames = map[BDIEncoding]string{
	BDIZeros: "zeros", BDIRep: "rep", BDIB8D1: "b8d1", BDIB8D2: "b8d2",
	BDIB8D4: "b8d4", BDIB4D1: "b4d1", BDIB4D2: "b4d2", BDIB2D1: "b2d1",
	BDIUncompressed: "uncompressed",
}

// String names the encoding as in the BDI paper.
func (e BDIEncoding) String() string {
	if n, ok := bdiNames[e]; ok {
		return n
	}
	return fmt.Sprintf("BDIEncoding(%d)", uint8(e))
}

type bdiShape struct {
	enc   BDIEncoding
	seg   int // segment size in bytes
	delta int // delta size in bytes
}

// bdiShapes is ordered by encoded size (bdiShapeSize ascending: 18, 23,
// 26, 39, 39, 42 bytes). BDICompress and BDISize rely on this order to
// return the first shape that fits, which is also the smallest.
var bdiShapes = []bdiShape{
	{BDIB8D1, 8, 1},
	{BDIB4D1, 4, 1},
	{BDIB8D2, 8, 2},
	{BDIB2D1, 2, 1},
	{BDIB4D2, 4, 2},
	{BDIB8D4, 8, 4},
}

// bdiMaxSegs is the largest segment count any shape produces (2-byte
// segments of a 64-byte line) — the scratch-array bound for the planners.
const bdiMaxSegs = LineSize / 2

// bdiShapeSize reports the encoded byte size for a base-delta shape:
// encoding byte + immediate mask + base + one delta per segment.
func bdiShapeSize(s bdiShape) int {
	nseg := LineSize / s.seg
	return 1 + nseg/8 + s.seg + nseg*s.delta
}

// BDICompress compresses a 64-byte line with the smallest applicable BDI
// encoding. It returns the encoded bytes (first byte is the encoding tag)
// and ok=false when no encoding beats the raw line.
func BDICompress(line []byte) (encoded []byte, ok bool) {
	if len(line) != LineSize {
		panic(fmt.Sprintf("compress: BDICompress needs a %d-byte line, got %d", LineSize, len(line)))
	}
	if isZeros(line) {
		return []byte{byte(BDIZeros)}, true
	}
	if v, rep := repeated8(line); rep {
		out := make([]byte, 9)
		out[0] = byte(BDIRep)
		binary.LittleEndian.PutUint64(out[1:], v)
		return out, true
	}
	var segs [bdiMaxSegs]uint64
	var immediate [bdiMaxSegs]bool
	for _, s := range bdiShapes {
		base, ok := bdiPlan(line, s, &segs, &immediate)
		if !ok {
			continue
		}
		return bdiEncode(s, base, &segs, &immediate), true
	}
	return nil, false
}

// BDIDecompress reverses BDICompress. It returns an error on a malformed
// encoding.
func BDIDecompress(encoded []byte) ([]byte, error) {
	if len(encoded) == 0 {
		return nil, fmt.Errorf("compress: empty BDI encoding")
	}
	enc := BDIEncoding(encoded[0])
	switch enc {
	case BDIZeros:
		return make([]byte, LineSize), nil
	case BDIRep:
		if len(encoded) != 9 {
			return nil, fmt.Errorf("compress: rep encoding needs 9 bytes, got %d", len(encoded))
		}
		out := make([]byte, LineSize)
		v := binary.LittleEndian.Uint64(encoded[1:])
		for i := 0; i < LineSize; i += 8 {
			binary.LittleEndian.PutUint64(out[i:], v)
		}
		return out, nil
	}
	for _, s := range bdiShapes {
		if s.enc == enc {
			return decodeBaseDelta(encoded, s)
		}
	}
	return nil, fmt.Errorf("compress: unknown BDI encoding tag %d", encoded[0])
}

// BDISize reports the compressed size in bytes BDI achieves for line, or
// LineSize when the line is incompressible under BDI. Unlike BDICompress
// it allocates nothing: it only plans the encodings.
func BDISize(line []byte) int {
	if len(line) != LineSize {
		panic(fmt.Sprintf("compress: BDISize needs a %d-byte line, got %d", LineSize, len(line)))
	}
	if isZeros(line) {
		return 1
	}
	if _, rep := repeated8(line); rep {
		return 9
	}
	var segs [bdiMaxSegs]uint64
	var immediate [bdiMaxSegs]bool
	for _, s := range bdiShapes {
		if _, ok := bdiPlan(line, s, &segs, &immediate); ok {
			return bdiShapeSize(s)
		}
	}
	return LineSize
}

func isZeros(line []byte) bool {
	for _, b := range line {
		if b != 0 {
			return false
		}
	}
	return true
}

func repeated8(line []byte) (uint64, bool) {
	v := binary.LittleEndian.Uint64(line)
	for i := 8; i < LineSize; i += 8 {
		if binary.LittleEndian.Uint64(line[i:]) != v {
			return 0, false
		}
	}
	return v, true
}

func readSeg(line []byte, off, size int) uint64 {
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(line[off+i])
	}
	return v
}

func writeSeg(out []byte, off, size int, v uint64) {
	for i := 0; i < size; i++ {
		out[off+i] = byte(v >> uint(8*i))
	}
}

// bdiPlan decides whether the given shape fits. Each segment is stored
// either as a delta from the line's base (the first non-immediate segment)
// or, when it is small on its own, as an "immediate" delta from zero.
// Segment values and the immediate flags land in the caller's scratch
// arrays (no allocation) for bdiEncode; ok is false when some segment fits
// neither form.
func bdiPlan(line []byte, s bdiShape, segs *[bdiMaxSegs]uint64, immediate *[bdiMaxSegs]bool) (base uint64, ok bool) {
	nseg := LineSize / s.seg
	segBits := s.seg * 8
	deltaBits := s.delta * 8

	haveBase := false
	for i := 0; i < nseg; i++ {
		v := readSeg(line, i*s.seg, s.seg)
		segs[i] = v
		if fitsSigned(signExtend(v, segBits), deltaBits) {
			immediate[i] = true
			continue
		}
		immediate[i] = false
		if !haveBase {
			base = v
			haveBase = true
		}
		delta := (v - base) & maskBits(segBits)
		if !fitsSigned(signExtend(delta, segBits), deltaBits) {
			return 0, false
		}
	}
	return base, true
}

// bdiEncode materializes the encoding bdiPlan validated.
func bdiEncode(s bdiShape, base uint64, segs *[bdiMaxSegs]uint64, immediate *[bdiMaxSegs]bool) []byte {
	nseg := LineSize / s.seg
	segBits := s.seg * 8
	deltaBits := s.delta * 8
	out := make([]byte, bdiShapeSize(s))
	out[0] = byte(s.enc)
	maskOff := 1
	baseOff := maskOff + nseg/8
	deltaOff := baseOff + s.seg
	writeSeg(out, baseOff, s.seg, base)
	for i := 0; i < nseg; i++ {
		v := segs[i]
		if immediate[i] {
			out[maskOff+i/8] |= 1 << uint(i%8)
			writeSeg(out, deltaOff+i*s.delta, s.delta, v&maskBits(deltaBits))
			continue
		}
		delta := (v - base) & maskBits(segBits)
		writeSeg(out, deltaOff+i*s.delta, s.delta, delta&maskBits(deltaBits))
	}
	return out
}

func decodeBaseDelta(encoded []byte, s bdiShape) ([]byte, error) {
	nseg := LineSize / s.seg
	want := bdiShapeSize(s)
	if len(encoded) != want {
		return nil, fmt.Errorf("compress: %s encoding needs %d bytes, got %d", s.enc, want, len(encoded))
	}
	segBits := s.seg * 8
	deltaBits := s.delta * 8
	maskOff := 1
	baseOff := maskOff + nseg/8
	deltaOff := baseOff + s.seg
	base := readSeg(encoded, baseOff, s.seg)

	out := make([]byte, LineSize)
	for i := 0; i < nseg; i++ {
		raw := readSeg(encoded, deltaOff+i*s.delta, s.delta)
		delta := uint64(signExtend(raw, deltaBits)) & maskBits(segBits)
		var v uint64
		if encoded[maskOff+i/8]&(1<<uint(i%8)) != 0 {
			v = delta // immediate: delta from zero
		} else {
			v = (base + delta) & maskBits(segBits)
		}
		writeSeg(out, i*s.seg, s.seg, v)
	}
	return out, nil
}

func maskBits(bits int) uint64 {
	if bits >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(bits)) - 1
}
