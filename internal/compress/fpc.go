package compress

import (
	"encoding/binary"
	"fmt"
)

// FPC patterns, one 3-bit prefix per 32-bit word (Alameldeen & Wood's
// frequent-pattern table). Data widths per pattern are in fpcDataBits.
const (
	fpcZero         = 0 // all-zero word
	fpcSign4        = 1 // 4-bit sign-extended
	fpcSign8        = 2 // 8-bit sign-extended
	fpcSign16       = 3 // 16-bit sign-extended
	fpcHighHalf     = 4 // lower halfword zero, upper halfword stored
	fpcTwoHalves    = 5 // two halfwords, each sign-extended from 8 bits
	fpcRepByte      = 6 // four repeated bytes
	fpcUncompressed = 7
)

var fpcDataBits = [8]int{0, 4, 8, 16, 16, 16, 8, 32}

const fpcWords = LineSize / 4

// FPCCompress compresses a 64-byte line with Frequent-Pattern-Compression.
// The returned buffer packs sixteen (3-bit prefix, variable data) codes
// MSB-first; the last byte is zero-padded. FPC always succeeds — in the
// worst case every word is stored uncompressed (16 x 35 bits = 70 bytes),
// in which case ok=false signals the encoding did not beat the raw line.
func FPCCompress(line []byte) (encoded []byte, ok bool) {
	if len(line) != LineSize {
		panic(fmt.Sprintf("compress: FPCCompress needs a %d-byte line, got %d", LineSize, len(line)))
	}
	// Worst case is 16 uncompressed words: 16 x 35 bits = 70 bytes.
	w := BitWriter{buf: make([]byte, 0, 70)}
	for i := 0; i < fpcWords; i++ {
		word := binary.LittleEndian.Uint32(line[i*4:])
		pat, data := fpcClassify(word)
		w.WriteBits(uint64(pat), 3)
		if bits := fpcDataBits[pat]; bits > 0 {
			w.WriteBits(uint64(data), bits)
		}
	}
	out := w.Bytes()
	return out, len(out) < LineSize
}

// FPCDecompress reverses FPCCompress.
func FPCDecompress(encoded []byte) ([]byte, error) {
	r := NewBitReader(encoded)
	out := make([]byte, LineSize)
	for i := 0; i < fpcWords; i++ {
		pat, err := r.ReadBits(3)
		if err != nil {
			return nil, fmt.Errorf("compress: FPC word %d prefix: %w", i, err)
		}
		var data uint64
		if bits := fpcDataBits[pat]; bits > 0 {
			data, err = r.ReadBits(bits)
			if err != nil {
				return nil, fmt.Errorf("compress: FPC word %d data: %w", i, err)
			}
		}
		word, err := fpcExpand(int(pat), uint32(data))
		if err != nil {
			return nil, fmt.Errorf("compress: FPC word %d: %w", i, err)
		}
		binary.LittleEndian.PutUint32(out[i*4:], word)
	}
	return out, nil
}

// FPCSize reports the compressed size in bytes FPC achieves for line, or
// LineSize when FPC does not beat the raw line. Unlike FPCCompress it
// allocates nothing: the size needs only the per-word pattern widths.
func FPCSize(line []byte) int {
	if len(line) != LineSize {
		panic(fmt.Sprintf("compress: FPCSize needs a %d-byte line, got %d", LineSize, len(line)))
	}
	bits := 0
	for i := 0; i < fpcWords; i++ {
		pat, _ := fpcClassify(binary.LittleEndian.Uint32(line[i*4:]))
		bits += 3 + fpcDataBits[pat]
	}
	if n := (bits + 7) / 8; n < LineSize {
		return n
	}
	return LineSize
}

func fpcClassify(word uint32) (pattern int, data uint32) {
	switch {
	case word == 0:
		return fpcZero, 0
	case fitsSigned(int64(int32(word)), 4):
		return fpcSign4, word & 0xF
	case fitsSigned(int64(int32(word)), 8):
		return fpcSign8, word & 0xFF
	case fitsSigned(int64(int32(word)), 16):
		return fpcSign16, word & 0xFFFF
	case word&0xFFFF == 0:
		return fpcHighHalf, word >> 16
	case fpcHalfFits(word):
		lo := word & 0xFFFF
		hi := word >> 16
		return fpcTwoHalves, (hi&0xFF)<<8 | lo&0xFF
	case fpcRepeatedByte(word):
		return fpcRepByte, word & 0xFF
	default:
		return fpcUncompressed, word
	}
}

func fpcHalfFits(word uint32) bool {
	lo := int64(int16(word & 0xFFFF))
	hi := int64(int16(word >> 16))
	return fitsSigned(lo, 8) && fitsSigned(hi, 8)
}

func fpcRepeatedByte(word uint32) bool {
	b := word & 0xFF
	return word == b|b<<8|b<<16|b<<24
}

func fpcExpand(pattern int, data uint32) (uint32, error) {
	switch pattern {
	case fpcZero:
		return 0, nil
	case fpcSign4:
		return uint32(signExtend(uint64(data), 4)), nil
	case fpcSign8:
		return uint32(signExtend(uint64(data), 8)), nil
	case fpcSign16:
		return uint32(signExtend(uint64(data), 16)), nil
	case fpcHighHalf:
		return data << 16, nil
	case fpcTwoHalves:
		lo := uint32(signExtend(uint64(data&0xFF), 8)) & 0xFFFF
		hi := uint32(signExtend(uint64(data>>8), 8)) & 0xFFFF
		return hi<<16 | lo, nil
	case fpcRepByte:
		b := data & 0xFF
		return b | b<<8 | b<<16 | b<<24, nil
	case fpcUncompressed:
		return data, nil
	default:
		return 0, fmt.Errorf("invalid pattern %d", pattern)
	}
}
