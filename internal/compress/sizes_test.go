package compress

import (
	"math/rand"
	"testing"
)

// testLines yields a mix of adversarial and random lines covering every
// codec's encode classes.
func testLines(n int) [][]byte {
	rng := rand.New(rand.NewSource(17))
	lines := make([][]byte, 0, n+6)
	zero := make([]byte, LineSize)
	lines = append(lines, zero)
	rep := make([]byte, LineSize)
	for i := range rep {
		rep[i] = byte(0xAB >> uint(i%2))
	}
	lines = append(lines, rep)
	for k := 0; k < n; k++ {
		line := make([]byte, LineSize)
		switch k % 4 {
		case 0: // random bytes: incompressible
			rng.Read(line)
		case 1: // small deltas from a shared base
			base := rng.Uint64()
			for i := 0; i < LineSize; i += 8 {
				v := base + uint64(rng.Intn(200))
				for j := 0; j < 8; j++ {
					line[i+j] = byte(v >> uint(8*j))
				}
			}
		case 2: // small sign-extended words
			for i := 0; i < LineSize; i += 4 {
				line[i] = byte(rng.Intn(128))
			}
		default: // few distinct words: dictionary-friendly
			vocab := [2]uint32{rng.Uint32(), rng.Uint32()}
			for i := 0; i < LineSize; i += 4 {
				v := vocab[rng.Intn(2)]
				line[i], line[i+1], line[i+2], line[i+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
			}
		}
		lines = append(lines, line)
	}
	return lines
}

// TestSizeOnlyPathsMatchCodecs pins the allocation-free size paths to the
// real encoders: BDISize/FPCSize/CPackSize must report exactly the length
// the corresponding Compress function produces.
func TestSizeOnlyPathsMatchCodecs(t *testing.T) {
	for i, line := range testLines(400) {
		if enc, ok := BDICompress(line); ok {
			if got := BDISize(line); got != len(enc) {
				t.Fatalf("line %d: BDISize=%d, BDICompress produced %d bytes", i, got, len(enc))
			}
		} else if got := BDISize(line); got != LineSize {
			t.Fatalf("line %d: BDISize=%d for BDI-incompressible line", i, got)
		}
		if enc, ok := FPCCompress(line); ok {
			if got := FPCSize(line); got != len(enc) {
				t.Fatalf("line %d: FPCSize=%d, FPCCompress produced %d bytes", i, got, len(enc))
			}
		} else if got := FPCSize(line); got != LineSize {
			t.Fatalf("line %d: FPCSize=%d for FPC-incompressible line", i, got)
		}
		if enc, ok := CPackCompress(line); ok {
			if got := CPackSize(line); got != len(enc) {
				t.Fatalf("line %d: CPackSize=%d, CPackCompress produced %d bytes", i, got, len(enc))
			}
		} else if got := CPackSize(line); got != LineSize {
			t.Fatalf("line %d: CPackSize=%d for CPack-incompressible line", i, got)
		}
	}
}

// TestCompressibleMatchesCompress pins the size-only Compressible predicate
// to the allocating Compress selection for both engine configurations.
func TestCompressibleMatchesCompress(t *testing.T) {
	for _, e := range []*Engine{NewEngine(), NewExtendedEngine()} {
		for i, line := range testLines(400) {
			want := e.Compress(line).Algo != AlgoNone
			if got := e.Compressible(line); got != want {
				t.Fatalf("engine cpack=%v line %d: Compressible=%v, Compress says %v",
					e.EnableCPack, i, got, want)
			}
		}
	}
}

// TestCompressedSizeMatchesPack pins the allocation-free Size against the
// packed byte string.
func TestCompressedSizeMatchesPack(t *testing.T) {
	e := NewExtendedEngine()
	for i, line := range testLines(200) {
		c := e.Compress(line)
		if c.Size() != len(c.Pack()) {
			t.Fatalf("line %d (%v): Size=%d, len(Pack)=%d", i, c.Algo, c.Size(), len(c.Pack()))
		}
	}
}
