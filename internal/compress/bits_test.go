package compress

import (
	"testing"
	"testing/quick"
)

func TestBitWriterReaderRoundTrip(t *testing.T) {
	var w BitWriter
	w.WriteBits(0b101, 3)
	w.WriteBits(0xFF, 8)
	w.WriteBits(0, 1)
	w.WriteBits(0xDEADBEEF, 32)
	if w.Len() != 44 {
		t.Fatalf("bit length = %d, want 44", w.Len())
	}
	r := NewBitReader(w.Bytes())
	for _, c := range []struct {
		n    int
		want uint64
	}{{3, 0b101}, {8, 0xFF}, {1, 0}, {32, 0xDEADBEEF}} {
		got, err := r.ReadBits(c.n)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Fatalf("ReadBits(%d) = %#x, want %#x", c.n, got, c.want)
		}
	}
}

func TestBitReaderExhaustion(t *testing.T) {
	r := NewBitReader([]byte{0xAB})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBits(1); err == nil {
		t.Fatal("expected exhaustion error")
	}
}

func TestBitReaderRemaining(t *testing.T) {
	r := NewBitReader([]byte{1, 2, 3})
	if r.Remaining() != 24 {
		t.Fatalf("remaining = %d, want 24", r.Remaining())
	}
	r.ReadBits(5)
	if r.Remaining() != 19 {
		t.Fatalf("remaining = %d, want 19", r.Remaining())
	}
}

func TestBitWidthValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WriteBits(65) should panic")
		}
	}()
	var w BitWriter
	w.WriteBits(0, 65)
}

func TestReadBitsWidthValidation(t *testing.T) {
	r := NewBitReader(make([]byte, 16))
	if _, err := r.ReadBits(65); err == nil {
		t.Fatal("ReadBits(65) should error")
	}
	if _, err := r.ReadBits(-1); err == nil {
		t.Fatal("ReadBits(-1) should error")
	}
}

func TestSignExtend(t *testing.T) {
	cases := []struct {
		v    uint64
		bits int
		want int64
	}{
		{0xF, 4, -1},
		{0x7, 4, 7},
		{0x8, 4, -8},
		{0xFF, 8, -1},
		{0x80, 8, -128},
		{0x7F, 8, 127},
		{0xFFFF, 16, -1},
		{0xFFFFFFFFFFFFFFFF, 64, -1},
	}
	for _, c := range cases {
		if got := signExtend(c.v, c.bits); got != c.want {
			t.Errorf("signExtend(%#x, %d) = %d, want %d", c.v, c.bits, got, c.want)
		}
	}
}

func TestFitsSigned(t *testing.T) {
	cases := []struct {
		x    int64
		bits int
		want bool
	}{
		{127, 8, true}, {128, 8, false}, {-128, 8, true}, {-129, 8, false},
		{0, 1, true}, {-1, 1, true}, {1, 1, false},
		{1 << 40, 64, true},
	}
	for _, c := range cases {
		if got := fitsSigned(c.x, c.bits); got != c.want {
			t.Errorf("fitsSigned(%d, %d) = %v, want %v", c.x, c.bits, got, c.want)
		}
	}
}

// Property: any sequence of (value, width) writes reads back identically.
func TestBitStreamRoundTripProperty(t *testing.T) {
	f := func(vals []uint64, widths []uint8) bool {
		var w BitWriter
		n := len(vals)
		if len(widths) < n {
			n = len(widths)
		}
		type rec struct {
			v    uint64
			bits int
		}
		var recs []rec
		for i := 0; i < n; i++ {
			bits := int(widths[i]%64) + 1
			v := vals[i] & maskBits(bits)
			w.WriteBits(v, bits)
			recs = append(recs, rec{v, bits})
		}
		r := NewBitReader(w.Bytes())
		for _, rc := range recs {
			got, err := r.ReadBits(rc.bits)
			if err != nil || got != rc.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
