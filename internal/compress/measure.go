package compress

import "fmt"

// MeasurePacked reports the true byte length of a packed payload whose
// buffer may carry trailing padding (e.g. the zero fill of a 32-byte
// sub-rank block). The length is recovered from the leading tag alone:
// BDI encodings have fixed sizes per tag; FPC streams are walked
// prefix-by-prefix. An error means the leading bytes are not a valid
// packed payload.
func MeasurePacked(buf []byte) (int, error) {
	if len(buf) == 0 {
		return 0, fmt.Errorf("compress: empty packed payload")
	}
	switch tag := buf[0]; {
	case tag == byte(BDIZeros):
		return 1, nil
	case tag == byte(BDIRep):
		if len(buf) < 9 {
			return 0, fmt.Errorf("compress: truncated rep payload")
		}
		return 9, nil
	case tag < fpcTag:
		for _, s := range bdiShapes {
			if byte(s.enc) == tag {
				n := bdiShapeSize(s)
				if len(buf) < n {
					return 0, fmt.Errorf("compress: truncated %s payload (%d < %d)", s.enc, len(buf), n)
				}
				return n, nil
			}
		}
		return 0, fmt.Errorf("compress: unknown BDI tag %d", tag)
	case tag == fpcTag:
		n, err := fpcEncodedLen(buf[1:])
		if err != nil {
			return 0, err
		}
		return 1 + n, nil
	case tag == cpackTag:
		n, err := cpackEncodedLen(buf[1:])
		if err != nil {
			return 0, err
		}
		return 1 + n, nil
	default:
		return 0, fmt.Errorf("compress: unknown packed tag %d", tag)
	}
}

// fpcEncodedLen walks an FPC bitstream and reports its byte length.
func fpcEncodedLen(buf []byte) (int, error) {
	r := NewBitReader(buf)
	bits := 0
	for i := 0; i < fpcWords; i++ {
		pat, err := r.ReadBits(3)
		if err != nil {
			return 0, fmt.Errorf("compress: FPC length scan at word %d: %w", i, err)
		}
		need := fpcDataBits[pat]
		if _, err := r.ReadBits(need); err != nil {
			return 0, fmt.Errorf("compress: FPC length scan at word %d: %w", i, err)
		}
		bits += 3 + need
	}
	return (bits + 7) / 8, nil
}
