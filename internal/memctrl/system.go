// Package memctrl assembles the four memory-system organizations the
// paper compares (Fig. 12/13): the uncompressed baseline, sub-ranking +
// compression with a Metadata-Cache, Attaché (BLEM + COPR), and the
// oracle Ideal system. Each organization decides, per request, which
// sub-ranks to enable and which extra metadata / Replacement Area
// requests to issue, then drives the shared DRAM channel model.
package memctrl

import (
	"fmt"
	"math/rand"

	"attache/internal/check"
	"attache/internal/config"
	"attache/internal/copr"
	"attache/internal/dram"
	"attache/internal/mdcache"
	"attache/internal/sim"
	"attache/internal/stats"
)

// LineModel supplies the ground-truth stored state of every line: its
// compressibility (what the compression engine would achieve on its
// content) and whether its scrambled form collides with the CID. The
// trace package's DataModel implements it; tests use stubs.
type LineModel interface {
	Compressible(lineAddr uint64) bool
	CIDCollides(lineAddr uint64, cidBits int) bool
}

// Stats aggregates system-level request accounting. The Data/Meta/RA
// split is the decomposition behind Fig. 15.
type Stats struct {
	DataReads       stats.Counter
	DataWrites      stats.Counter
	CorrectionReads stats.Counter // COPR misprediction second fetches
	MetaReads       stats.Counter // metadata-cache installs
	MetaWrites      stats.Counter // metadata-cache dirty evictions
	RAReads         stats.Counter
	RAWrites        stats.Counter
	ReadLatency     stats.Mean // submit -> data return, CPU cycles
	CompressedReads stats.Ratio
	// ECCPrediction tracks the ECC-metadata system's last-outcome
	// predictor accuracy (COPR accuracy lives in the copr package).
	ECCPrediction stats.Ratio
}

// TotalRequests reports every DRAM request the system issued.
func (s *Stats) TotalRequests() uint64 {
	return s.DataReads.Value() + s.DataWrites.Value() + s.CorrectionReads.Value() +
		s.MetaReads.Value() + s.MetaWrites.Value() + s.RAReads.Value() + s.RAWrites.Value()
}

// System is one configured memory system.
type System struct {
	eng    *sim.Engine
	cfg    config.Config
	kind   config.SystemKind
	mapper *dram.AddressMapper
	chans  []*dram.Channel
	lines  LineModel

	copr    *copr.Predictor // Attaché only
	cidBits int
	mdc     *mdcache.Cache // MDCache only
	lastOut *lastOutcome   // ECC-metadata system only
	rng     *rand.Rand

	raBase   uint64 // first line of the Replacement Area region
	capLines uint64

	// Runtime checking (config.Check; DESIGN.md §8). rec collects the
	// first invariant violation; checker is the differential oracle,
	// present only on Attaché systems at CheckOracle when the line model
	// can supply real bytes.
	rec     *check.Recorder
	checker *check.Oracle
	// suppressTrain is the fault-injection state of the mutation tests:
	// the next write to a listed address skips its COPR training call.
	suppressTrain map[uint64]bool

	Stats Stats
}

// New builds a system of the given kind.
func New(eng *sim.Engine, cfg config.Config, kind config.SystemKind, lines LineModel, seed int64) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{
		eng:     eng,
		cfg:     cfg,
		kind:    kind,
		mapper:  dram.NewAddressMapper(cfg),
		lines:   lines,
		cidBits: cfg.Attache.CIDBits,
		rng:     rand.New(rand.NewSource(seed)),
	}
	s.capLines = uint64(cfg.MemorySize() / config.LineSize)
	// The Replacement Area is the top 1/512 of memory (paper §IV-A7).
	s.raBase = s.capLines - s.capLines/512
	for ch := 0; ch < cfg.DRAM.Channels; ch++ {
		s.chans = append(s.chans, dram.NewChannel(eng, cfg, ch))
	}
	switch kind {
	case config.SystemAttache:
		s.copr = copr.New(coprConfigFor(cfg))
	case config.SystemMDCache:
		pol, err := mdcache.ParsePolicy(cfg.MDCache.Policy)
		if err != nil {
			return nil, err
		}
		s.mdc = mdcache.New(cfg.MDCache.Bytes, cfg.MDCache.Ways, pol)
	case config.SystemECC:
		s.lastOut = newLastOutcome()
	case config.SystemBaseline, config.SystemIdeal:
	default:
		return nil, fmt.Errorf("memctrl: unknown system kind %v", kind)
	}
	if cfg.Check >= config.CheckInvariants {
		s.rec = &check.Recorder{}
		for _, ch := range s.chans {
			ch.EnableAudit(s.rec)
		}
		// The differential oracle needs real line bytes and the Attaché
		// flow; it attaches only when both are present.
		if cfg.Check >= config.CheckOracle && kind == config.SystemAttache {
			if dm, ok := lines.(check.DataModel); ok {
				o, err := check.NewOracle(s.rec, dm, cfg.Attache.CIDBits, seed, coprConfigFor(cfg))
				if err != nil {
					return nil, err
				}
				s.checker = o
			}
		}
	}
	return s, nil
}

// coprConfigFor maps the system configuration onto the predictor's.
func coprConfigFor(cfg config.Config) copr.Config {
	return copr.Config{
		MemorySize:  cfg.MemorySize(),
		GICounters:  cfg.Attache.GICounters,
		GIThreshold: 2,
		PaPRBytes:   cfg.Attache.PaPRBytes,
		PaPRWays:    cfg.Attache.PaPRWays,
		LiPRBytes:   cfg.Attache.LiPRBytes,
		LiPRWays:    cfg.Attache.LiPRWays,
		EnableGI:    cfg.Attache.EnableGI,
		EnablePaPR:  cfg.Attache.EnablePaPR,
		EnableLiPR:  cfg.Attache.EnableLiPR,
	}
}

// Kind reports the system organization.
func (s *System) Kind() config.SystemKind { return s.kind }

// Predictor exposes COPR (Attaché systems only; nil otherwise).
func (s *System) Predictor() *copr.Predictor { return s.copr }

// MetadataCache exposes the metadata cache (MDCache systems only).
func (s *System) MetadataCache() *mdcache.Cache { return s.mdc }

// Channels exposes per-channel stats and energy.
func (s *System) Channels() []*dram.Channel { return s.chans }

// Drained reports whether every channel queue is empty.
func (s *System) Drained() bool {
	for _, c := range s.chans {
		if !c.Drained() {
			return false
		}
	}
	return true
}

// Audit exposes the failure recorder (nil when checking is off).
func (s *System) Audit() *check.Recorder { return s.rec }

// Checker exposes the differential oracle (nil unless the system runs at
// CheckOracle, is an Attaché system, and its LineModel supplies bytes).
func (s *System) Checker() *check.Oracle { return s.checker }

// CheckErr finalizes the end-of-run checks — per-channel request
// conservation at drain and the oracle's Replacement-Area conservation —
// and reports the first failure recorded anywhere, or nil. Call it after
// the simulation drains; it is a no-op when checking is off.
func (s *System) CheckErr() error {
	if s.rec == nil {
		return nil
	}
	now := s.eng.Now()
	for _, ch := range s.chans {
		ch.AuditDrained(now)
	}
	if s.checker != nil {
		s.checker.Finish(now)
	}
	return s.rec.Err()
}

// TotalEnergy sums channel energy accumulators.
func (s *System) TotalEnergy() dram.Energy {
	var e dram.Energy
	for _, c := range s.chans {
		e.Add(&c.Energy)
	}
	return e
}

// subRankFor maps a location to the sub-rank that holds its compressed
// form. The paper's implementation uses row parity (odd rows to the first
// sub-rank, §IV-E); we refine it to (row+column) parity so consecutive
// lines of a streamed row alternate sub-ranks and both half-buses stay
// busy. Like row parity it is a pure address function, so reads need no
// metadata to pick the sub-rank.
func subRankFor(loc dram.Location) dram.SubRankMask {
	if (loc.Row+loc.Col)%2 == 1 {
		return dram.SubRank0
	}
	return dram.SubRank1
}

// submit routes a request to its channel.
func (s *System) submit(r *dram.Request) {
	s.chans[r.Loc.Channel].Submit(r)
}

// metaKeyFor maps a data line to its metadata-cache key: one 64-byte
// metadata block holds 4-bit entries for the 128 lines of one row
// (§IV-A1, Fig. 7).
func (s *System) metaKeyFor(lineAddr uint64) uint64 {
	return lineAddr / uint64(s.mapper.LinesPerRow())
}

// metaLocFor places a metadata block in DRAM: the conventional scheme
// stores each row's metadata in that same row (Fig. 7), so metadata
// fetches are usually row hits after the data access opens the row. The
// key identifies a row; its metadata occupies the row's last column.
func (s *System) metaLocFor(key uint64) dram.Location {
	loc := s.mapper.Decode(key * uint64(s.mapper.LinesPerRow()))
	loc.Col = s.mapper.LinesPerRow() - 1
	return loc
}

// raLineFor maps a data line to its Replacement Area line (1 bit per
// line, direct mapped).
func (s *System) raLineFor(lineAddr uint64) uint64 {
	return s.raBase + (lineAddr/512)%(s.capLines-s.raBase)
}

// compressed reports the stored compressibility of a line.
func (s *System) compressed(lineAddr uint64) bool {
	return s.lines.Compressible(lineAddr)
}

// collides reports whether an uncompressed line needs the RA.
func (s *System) collides(lineAddr uint64) bool {
	return !s.compressed(lineAddr) && s.lines.CIDCollides(lineAddr, s.cidBits)
}
