package memctrl

import (
	"strings"
	"testing"

	"attache/internal/config"
	"attache/internal/sim"
	"attache/internal/trace"
)

// newCheckedSystem builds an Attaché system over a real data model with
// the given check level, so the differential oracle can attach.
func newCheckedSystem(t *testing.T, level config.CheckLevel) (*sim.Engine, *System, *trace.DataModel) {
	t.Helper()
	cfg := config.Default()
	cfg.Check = level
	dm := trace.NewDataModel(7, 0.5, 0.8)
	eng := sim.NewEngine()
	s, err := New(eng, cfg, config.SystemAttache, dm, 1)
	if err != nil {
		t.Fatal(err)
	}
	return eng, s, dm
}

func drain(t *testing.T, eng *sim.Engine) {
	t.Helper()
	if !eng.RunUntilDone(5_000_000) {
		t.Fatal("engine did not drain")
	}
}

func TestCheckOffHasNoRecorder(t *testing.T) {
	eng, s := newSystem(t, config.SystemAttache, allCompressible())
	if s.Audit() != nil || s.Checker() != nil {
		t.Fatal("check off must not allocate checking state")
	}
	readSync(t, eng, s, 42)
	if err := s.CheckErr(); err != nil {
		t.Fatalf("CheckErr with check off: %v", err)
	}
}

func TestOracleNeedsDataModel(t *testing.T) {
	// A boolean-only LineModel cannot feed the functional flows: the
	// system still audits invariants but attaches no oracle.
	cfg := config.Default()
	cfg.Check = config.CheckOracle
	s, err := New(sim.NewEngine(), cfg, config.SystemAttache, allCompressible(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Audit() == nil {
		t.Fatal("recorder must exist at CheckOracle")
	}
	if s.Checker() != nil {
		t.Fatal("oracle must not attach without line bytes")
	}

	_, sc, _ := newCheckedSystem(t, config.CheckOracle)
	if sc.Checker() == nil {
		t.Fatal("oracle must attach to an Attaché system over a DataModel")
	}
}

func TestInvariantLevelSkipsOracle(t *testing.T) {
	_, s, _ := newCheckedSystem(t, config.CheckInvariants)
	if s.Audit() == nil {
		t.Fatal("recorder must exist at CheckInvariants")
	}
	if s.Checker() != nil {
		t.Fatal("oracle must not attach below CheckOracle")
	}
}

// TestCheckedTrafficClean is the no-false-positives test: a mixed
// read/write workload through the full Attaché flow must satisfy every
// invariant and match the ideal flow bit for bit.
func TestCheckedTrafficClean(t *testing.T) {
	eng, s, _ := newCheckedSystem(t, config.CheckOracle)
	for i := uint64(0); i < 400; i++ {
		addr := 1000 + i%128
		if i%3 == 0 {
			s.Write(addr)
		} else {
			s.Read(addr, nil)
		}
		drain(t, eng)
	}
	if err := s.CheckErr(); err != nil {
		t.Fatalf("clean traffic flagged: %v", err)
	}
	if s.Checker().Lines() == 0 {
		t.Fatal("oracle saw no lines; hooks are not wired")
	}
}

// TestMutationHeaderBitFlip proves the oracle has teeth: corrupting one
// bit of a stored line's header-bearing block must make the next read
// fail with the read's (address, cycle).
func TestMutationHeaderBitFlip(t *testing.T) {
	eng, s, _ := newCheckedSystem(t, config.CheckOracle)
	const addr = 5000
	s.Write(addr)
	drain(t, eng)
	if err := s.CheckErr(); err != nil {
		t.Fatalf("pre-mutation state already dirty: %v", err)
	}
	if !s.InjectHeaderBitFlip(addr, 0, 3) {
		t.Fatal("injection found no stored line")
	}
	s.Read(addr, nil)
	drain(t, eng)
	err := s.CheckErr()
	if err == nil {
		t.Fatal("flipped BLEM header bit escaped the oracle")
	}
	msg := err.Error()
	if !strings.Contains(msg, "addr=0x1388") || !strings.Contains(msg, "cycle=") {
		t.Fatalf("diagnostic must pinpoint (address, cycle), got %q", msg)
	}
}

// TestMutationHeaderBitFlipSweep hardens the single-bit case: every bit
// of the header-bearing block's first two bytes must be caught.
func TestMutationHeaderBitFlipSweep(t *testing.T) {
	for bit := 0; bit < 16; bit++ {
		eng, s, _ := newCheckedSystem(t, config.CheckOracle)
		addr := uint64(9000 + bit)
		s.Write(addr)
		drain(t, eng)
		if !s.InjectHeaderBitFlip(addr, 0, bit) {
			t.Fatalf("bit %d: injection found no stored line", bit)
		}
		s.Read(addr, nil)
		drain(t, eng)
		if s.CheckErr() == nil {
			t.Errorf("header bit %d flip escaped the oracle", bit)
		}
	}
}

// TestMutationSuppressTrain proves the oracle catches a lost COPR
// training call: the simulator's predictor and the oracle's shadow
// predictor drift apart, and a later prediction comparison fails.
func TestMutationSuppressTrain(t *testing.T) {
	// A skewed model (85% compressible, every page line-mixed) guarantees
	// pages that are almost entirely compressible yet contain a probe.
	cfg := config.Default()
	cfg.Check = config.CheckOracle
	dm := trace.NewDataModel(7, 0.85, 0)
	eng := sim.NewEngine()
	s, err := New(eng, cfg, config.SystemAttache, dm, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Pick a page whose lines are mostly compressible, and a probe line
	// within it that is NOT: the suppressed training call then leaves the
	// simulator's line-level predictor without the probe's "uncompressed"
	// observation while the page-level bias says "compressed".
	var probe uint64
	found := false
	for page := uint64(10); page < 5000 && !found; page++ {
		base := page * trace.LinesPerPage
		comp := 0
		probeCand := uint64(0)
		for i := uint64(0); i < trace.LinesPerPage; i++ {
			if dm.Compressible(base + i) {
				comp++
			} else if probeCand == 0 {
				probeCand = base + i
			}
		}
		if comp >= trace.LinesPerPage-8 && probeCand != 0 {
			probe, found = probeCand, true
		}
	}
	if !found {
		t.Fatal("no suitable page in the data model")
	}

	// Warm the page bias toward "compressed" through ordinary writes.
	base := (probe / trace.LinesPerPage) * trace.LinesPerPage
	for i := uint64(0); i < trace.LinesPerPage; i++ {
		if a := base + i; a != probe && dm.Compressible(a) {
			s.Write(a)
		}
	}
	drain(t, eng)
	if err := s.CheckErr(); err != nil {
		t.Fatalf("warmup already dirty: %v", err)
	}

	// The mutation: the write happens, but its training call is dropped.
	s.InjectSuppressTrain(probe)
	s.Write(probe)
	drain(t, eng)

	// The probe read must expose the drift.
	s.Read(probe, nil)
	drain(t, eng)
	err = s.CheckErr()
	if err == nil {
		t.Fatal("suppressed COPR training call escaped the oracle")
	}
	if !strings.Contains(err.Error(), "training sequence drift") {
		t.Fatalf("want a prediction-drift diagnostic, got %q", err.Error())
	}
}

// TestSuppressTrainControl is the control experiment for the mutation
// above: the identical sequence without the injection must stay clean.
func TestSuppressTrainControl(t *testing.T) {
	eng, s, dm := newCheckedSystem(t, config.CheckOracle)
	var probe uint64
	for a := uint64(640); a < 320000; a++ {
		if !dm.Compressible(a) {
			probe = a
			break
		}
	}
	base := (probe / trace.LinesPerPage) * trace.LinesPerPage
	for i := uint64(0); i < trace.LinesPerPage; i++ {
		if a := base + i; a != probe && dm.Compressible(a) {
			s.Write(a)
		}
	}
	s.Write(probe)
	drain(t, eng)
	s.Read(probe, nil)
	drain(t, eng)
	if err := s.CheckErr(); err != nil {
		t.Fatalf("control sequence flagged: %v", err)
	}
}
