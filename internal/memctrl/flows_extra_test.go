package memctrl

import (
	"testing"

	"attache/internal/config"
	"attache/internal/sim"
)

func TestIdealCompressedWriteMoves32Bytes(t *testing.T) {
	eng, s := newSystem(t, config.SystemIdeal, allCompressible())
	s.Write(77)
	eng.RunUntilDone(100000)
	var written uint64
	for _, c := range s.Channels() {
		written += c.Stats.BytesWritten.Value()
	}
	if written != 32 {
		t.Fatalf("compressed write moved %d bytes, want 32", written)
	}
}

func TestAttacheCompressedWriteMoves32Bytes(t *testing.T) {
	eng, s := newSystem(t, config.SystemAttache, allCompressible())
	s.Write(77)
	eng.RunUntilDone(100000)
	var written uint64
	for _, c := range s.Channels() {
		written += c.Stats.BytesWritten.Value()
	}
	if written != 32 {
		t.Fatalf("compressed write moved %d bytes, want 32", written)
	}
}

func TestMDCacheWriteInstallIsPosted(t *testing.T) {
	// A write whose metadata misses must not delay anything: the install
	// read is posted in parallel. We just check counts: one data write,
	// one metadata install read.
	eng, s := newSystem(t, config.SystemMDCache, allCompressible())
	s.Write(1000)
	eng.RunUntilDone(1000000)
	if s.Stats.DataWrites.Value() != 1 {
		t.Fatalf("data writes = %d", s.Stats.DataWrites.Value())
	}
	if s.Stats.MetaReads.Value() != 1 {
		t.Fatalf("meta installs = %d, want 1", s.Stats.MetaReads.Value())
	}
	// A second write to the same row hits the metadata cache: no install.
	s.Write(1001)
	eng.RunUntilDone(1000000)
	if s.Stats.MetaReads.Value() != 1 {
		t.Fatal("metadata hit should not install again")
	}
}

func TestMDCacheMissFetchesInParallel(t *testing.T) {
	// The conservative parallel fetch: a cold read costs one data read +
	// one metadata read, both full-width, completing at max of the two —
	// not their sum.
	eng, s := newSystem(t, config.SystemMDCache, noneCompressible())
	lat := readSync(t, eng, s, 4096)
	// Serialized fetches would take >= 2x the cold access time (120);
	// parallel ones finish within ~one access plus queueing on the
	// shared row.
	cold := int64(120) + config.Default().MDCache.Latency
	if lat > 2*cold {
		t.Fatalf("metadata-miss read latency %d looks serialized (cold=%d)", lat, cold)
	}
	if s.Stats.MetaReads.Value() != 1 || s.Stats.DataReads.Value() != 1 {
		t.Fatalf("requests = %d meta, %d data", s.Stats.MetaReads.Value(), s.Stats.DataReads.Value())
	}
}

func TestMDCacheMissLosesSubRankSaving(t *testing.T) {
	// On a metadata miss even a compressible line is fetched full-width.
	eng, s := newSystem(t, config.SystemMDCache, allCompressible())
	readSync(t, eng, s, 5000)
	if got := bytesRead(s); got != 128 { // 64 data + 64 metadata
		t.Fatalf("cold compressed read moved %d bytes, want 128", got)
	}
	// Warm: same row hits metadata, now only 32 bytes move.
	before := bytesRead(s)
	readSync(t, eng, s, 5001)
	if got := bytesRead(s) - before; got != 32 {
		t.Fatalf("warm compressed read moved %d bytes, want 32", got)
	}
}

func TestAttacheWriteTrainsPredictor(t *testing.T) {
	eng, s := newSystem(t, config.SystemAttache, allCompressible())
	// Writes only — no reads, so no accuracy observations, but the
	// predictor tables warm up.
	for i := uint64(0); i < 16; i++ {
		s.Write(9000 + i)
	}
	eng.RunUntilDone(1000000)
	if s.Predictor().Stats.Overall.Total() != 0 {
		t.Fatal("write training must not score accuracy")
	}
	// First read of a nearby line in the same page predicts compressed
	// thanks to write-path training: only 32 bytes move.
	before := bytesRead(s)
	readSync(t, eng, s, 9020)
	if got := bytesRead(s) - before; got != 32 {
		t.Fatalf("read after write-training moved %d bytes, want 32", got)
	}
}

func TestRARegionRoutedInsideCapacity(t *testing.T) {
	_, s := newSystem(t, config.SystemAttache, noneCompressible())
	cap := s.capLines
	for a := uint64(0); a < 1<<22; a += 131071 {
		ra := s.raLineFor(a)
		loc := s.mapper.Decode(ra)
		if uint64(loc.Row) >= uint64(config.Default().DRAM.RowsPerBank) {
			t.Fatalf("RA row out of range: %+v", loc)
		}
		if ra >= cap {
			t.Fatalf("RA line %d beyond capacity %d", ra, cap)
		}
	}
}

func TestReadLatencyStatCoversAllSystems(t *testing.T) {
	for _, kind := range []config.SystemKind{config.SystemBaseline, config.SystemMDCache, config.SystemAttache, config.SystemIdeal} {
		eng, s := newSystem(t, kind, allCompressible())
		for i := uint64(0); i < 5; i++ {
			readSync(t, eng, s, 100+i)
		}
		if s.Stats.ReadLatency.N() != 5 {
			t.Errorf("%v: latency samples = %d", kind, s.Stats.ReadLatency.N())
		}
		if s.Stats.ReadLatency.Value() <= 0 {
			t.Errorf("%v: zero latency", kind)
		}
	}
}

func TestConcurrentReadsAllComplete(t *testing.T) {
	eng, s := newSystem(t, config.SystemAttache, allCompressible())
	done := 0
	const n = 200
	for i := 0; i < n; i++ {
		s.Read(uint64(i*64), func(sim.Time) { done++ })
	}
	if !eng.RunUntilDone(10_000_000) {
		t.Fatal("engine did not drain")
	}
	if done != n {
		t.Fatalf("completed = %d/%d", done, n)
	}
}

func TestECCSystemBasics(t *testing.T) {
	eng, s := newSystem(t, config.SystemECC, allCompressible())
	// Cold predictor says uncompressed: conservative 64B fetch, no
	// metadata traffic ever (it rides in the ECC bits).
	readSync(t, eng, s, 42)
	if got := bytesRead(s); got != 64 {
		t.Fatalf("cold ECC read moved %d bytes, want 64", got)
	}
	if s.Stats.MetaReads.Value() != 0 || s.Stats.RAReads.Value() != 0 {
		t.Fatal("ECC system must not issue metadata or RA requests")
	}
	// The outcome trains the last-outcome predictor: the next read of
	// the same line fetches one sub-rank.
	before := bytesRead(s)
	readSync(t, eng, s, 42)
	if got := bytesRead(s) - before; got != 32 {
		t.Fatalf("trained ECC read moved %d bytes, want 32", got)
	}
	if s.Stats.ECCPrediction.Total() != 2 {
		t.Fatalf("accuracy observations = %d, want 2", s.Stats.ECCPrediction.Total())
	}
}

func TestECCMispredictionCorrects(t *testing.T) {
	// Train "compressed" on a line, then the model flips: an aliased
	// incompressible line must trigger a corrective fetch, never corrupt.
	flip := false
	m := stubModel{compressible: func(uint64) bool { return !flip }}
	eng, s := newSystem(t, config.SystemECC, m)
	readSync(t, eng, s, 7) // trains compressed
	flip = true
	before := bytesRead(s)
	readSync(t, eng, s, 7)
	if s.Stats.CorrectionReads.Value() != 1 {
		t.Fatalf("corrections = %d, want 1", s.Stats.CorrectionReads.Value())
	}
	if got := bytesRead(s) - before; got != 64 {
		t.Fatalf("mispredicted read moved %d bytes, want 64", got)
	}
}

func TestECCWritesTrainPredictor(t *testing.T) {
	eng, s := newSystem(t, config.SystemECC, allCompressible())
	s.Write(9)
	eng.RunUntilDone(100000)
	before := bytesRead(s)
	readSync(t, eng, s, 9)
	if got := bytesRead(s) - before; got != 32 {
		t.Fatalf("read after write-training moved %d bytes, want 32", got)
	}
}
