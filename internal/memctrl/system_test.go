package memctrl

import (
	"testing"

	"attache/internal/config"
	"attache/internal/sim"
)

// stubModel gives deterministic per-address compressibility for tests.
type stubModel struct {
	compressible func(uint64) bool
	collides     func(uint64) bool
}

func (m stubModel) Compressible(a uint64) bool { return m.compressible(a) }
func (m stubModel) CIDCollides(a uint64, bits int) bool {
	if m.collides == nil {
		return false
	}
	return m.collides(a)
}

func allCompressible() stubModel {
	return stubModel{compressible: func(uint64) bool { return true }}
}

func noneCompressible() stubModel {
	return stubModel{compressible: func(uint64) bool { return false }}
}

func newSystem(t *testing.T, kind config.SystemKind, m LineModel) (*sim.Engine, *System) {
	t.Helper()
	eng := sim.NewEngine()
	s, err := New(eng, config.Default(), kind, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	return eng, s
}

func readSync(t *testing.T, eng *sim.Engine, s *System, addr uint64) sim.Time {
	t.Helper()
	var finish sim.Time = -1
	s.Read(addr, func(now sim.Time) { finish = now })
	if !eng.RunUntilDone(1_000_000) {
		t.Fatal("engine did not drain")
	}
	if finish < 0 {
		t.Fatal("read never completed")
	}
	return finish
}

func TestBaselineReadUses64Bytes(t *testing.T) {
	eng, s := newSystem(t, config.SystemBaseline, allCompressible())
	readSync(t, eng, s, 1000)
	var bytes uint64
	for _, c := range s.Channels() {
		bytes += c.Stats.BytesRead.Value()
	}
	if bytes != 64 {
		t.Fatalf("baseline read moved %d bytes, want 64", bytes)
	}
	if s.Stats.TotalRequests() != 1 {
		t.Fatalf("requests = %d, want 1", s.Stats.TotalRequests())
	}
}

func TestIdealCompressedReadUses32Bytes(t *testing.T) {
	eng, s := newSystem(t, config.SystemIdeal, allCompressible())
	readSync(t, eng, s, 1000)
	var bytes uint64
	for _, c := range s.Channels() {
		bytes += c.Stats.BytesRead.Value()
	}
	if bytes != 32 {
		t.Fatalf("ideal compressed read moved %d bytes, want 32", bytes)
	}
}

func TestIdealUncompressedReadUses64Bytes(t *testing.T) {
	eng, s := newSystem(t, config.SystemIdeal, noneCompressible())
	readSync(t, eng, s, 1000)
	var bytes uint64
	for _, c := range s.Channels() {
		bytes += c.Stats.BytesRead.Value()
	}
	if bytes != 64 {
		t.Fatalf("ideal uncompressed read moved %d bytes, want 64", bytes)
	}
}

func TestAttacheCorrectPredictionSingleBlock(t *testing.T) {
	eng, s := newSystem(t, config.SystemAttache, allCompressible())
	// Warm COPR on the page via reads (updates happen at completion).
	for i := uint64(0); i < 8; i++ {
		readSync(t, eng, s, 1000+i)
	}
	before := bytesRead(s)
	readSync(t, eng, s, 1012)
	moved := bytesRead(s) - before
	if moved != 32 {
		t.Fatalf("predicted-compressed read moved %d bytes, want 32", moved)
	}
	if s.Stats.CorrectionReads.Value() != 0 {
		t.Fatal("no corrections expected on correct predictions")
	}
}

func TestAttacheMispredictionIssuesCorrection(t *testing.T) {
	// Model: all lines in the warm page compressible, the probe line not.
	probe := uint64(2000)
	m := stubModel{compressible: func(a uint64) bool { return a != probe }}
	eng, s := newSystem(t, config.SystemAttache, m)
	for i := uint64(0); i < 8; i++ {
		readSync(t, eng, s, probe-8+i) // same page, warms "compressible"
	}
	before := bytesRead(s)
	readSync(t, eng, s, probe)
	moved := bytesRead(s) - before
	if s.Stats.CorrectionReads.Value() != 1 {
		t.Fatalf("corrections = %d, want 1", s.Stats.CorrectionReads.Value())
	}
	if moved != 64 {
		t.Fatalf("mispredicted read moved %d bytes, want 64 (32+32)", moved)
	}
}

func TestAttacheCollisionReadsRA(t *testing.T) {
	m := stubModel{
		compressible: func(uint64) bool { return false },
		collides:     func(a uint64) bool { return a == 555 },
	}
	eng, s := newSystem(t, config.SystemAttache, m)
	// Cold predictor defaults to uncompressed: both halves fetched, then
	// the RA read gates completion.
	readSync(t, eng, s, 555)
	if s.Stats.RAReads.Value() != 1 {
		t.Fatalf("RA reads = %d, want 1", s.Stats.RAReads.Value())
	}
}

func TestAttacheCollisionWritePostsRAWrite(t *testing.T) {
	m := stubModel{
		compressible: func(uint64) bool { return false },
		collides:     func(a uint64) bool { return a == 700 },
	}
	eng, s := newSystem(t, config.SystemAttache, m)
	s.Write(700)
	s.Write(701) // no collision
	eng.RunUntilDone(1_000_000)
	if s.Stats.RAWrites.Value() != 1 {
		t.Fatalf("RA writes = %d, want 1", s.Stats.RAWrites.Value())
	}
	if s.Stats.DataWrites.Value() != 2 {
		t.Fatalf("data writes = %d, want 2", s.Stats.DataWrites.Value())
	}
}

func TestMDCacheMissFetchesMetadataFirst(t *testing.T) {
	eng, s := newSystem(t, config.SystemMDCache, allCompressible())
	lat1 := readSync(t, eng, s, 3000)
	if s.Stats.MetaReads.Value() != 1 {
		t.Fatalf("meta reads = %d, want 1 (cold cache)", s.Stats.MetaReads.Value())
	}
	// Second read to the same row hits the metadata cache: no extra
	// metadata request, and lower latency.
	start := eng.Now()
	var fin sim.Time
	s.Read(3001, func(now sim.Time) { fin = now })
	eng.RunUntilDone(1_000_000)
	if s.Stats.MetaReads.Value() != 1 {
		t.Fatal("metadata hit should not refetch")
	}
	if fin-start >= lat1 {
		t.Fatalf("metadata-hit read (%d) not faster than cold read (%d)", fin-start, lat1)
	}
}

func TestMDCacheDirtyEvictionWritesBack(t *testing.T) {
	cfg := config.Default()
	cfg.MDCache.Bytes = 64 * 4 // 4 metadata lines: tiny, forces evictions
	cfg.MDCache.Ways = 4
	eng := sim.NewEngine()
	s, err := New(eng, cfg, config.SystemMDCache, allCompressible(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the cache with writes to distinct rows, then overflow it.
	for i := uint64(0); i < 8; i++ {
		s.Write(i * 128 * 64) // distinct metadata keys
	}
	eng.RunUntilDone(1_000_000)
	if s.Stats.MetaWrites.Value() == 0 {
		t.Fatal("expected metadata writebacks from dirty evictions")
	}
}

func TestMDCacheNeverMispredicts(t *testing.T) {
	eng, s := newSystem(t, config.SystemMDCache, noneCompressible())
	for i := uint64(0); i < 50; i++ {
		readSync(t, eng, s, i)
	}
	if s.Stats.CorrectionReads.Value() != 0 {
		t.Fatal("metadata is ground truth; no corrections possible")
	}
}

func TestAttacheLatencyIncludesPredictorLookup(t *testing.T) {
	engA, a := newSystem(t, config.SystemAttache, noneCompressible())
	latA := readSync(t, engA, a, 42)
	engB, b := newSystem(t, config.SystemBaseline, noneCompressible())
	latB := readSync(t, engB, b, 42)
	if latA != latB+config.Default().Attache.PredictorLatency {
		t.Fatalf("attache cold read %d vs baseline %d: want +%d predictor cycles",
			latA, latB, config.Default().Attache.PredictorLatency)
	}
}

func TestSystemKindAccessors(t *testing.T) {
	_, a := newSystem(t, config.SystemAttache, allCompressible())
	if a.Kind() != config.SystemAttache || a.Predictor() == nil || a.MetadataCache() != nil {
		t.Fatal("attache accessors wrong")
	}
	_, m := newSystem(t, config.SystemMDCache, allCompressible())
	if m.Predictor() != nil || m.MetadataCache() == nil {
		t.Fatal("mdcache accessors wrong")
	}
}

func TestInvalidPolicyRejected(t *testing.T) {
	cfg := config.Default()
	cfg.MDCache.Policy = "bogus"
	_, err := New(sim.NewEngine(), cfg, config.SystemMDCache, allCompressible(), 1)
	if err == nil {
		t.Fatal("expected policy error")
	}
}

func TestRAAndDataRegionsDisjoint(t *testing.T) {
	_, s := newSystem(t, config.SystemAttache, noneCompressible())
	// Workload addresses (first 2 GB of lines) never fall in the RA.
	for a := uint64(0); a < 1<<25; a += 99991 {
		ra := s.raLineFor(a)
		if ra < s.raBase || ra >= s.capLines {
			t.Fatalf("RA line %d outside region [%d, %d)", ra, s.raBase, s.capLines)
		}
		if a >= s.raBase {
			t.Fatalf("test address %d inside RA region", a)
		}
	}
}

func bytesRead(s *System) uint64 {
	var b uint64
	for _, c := range s.Channels() {
		b += c.Stats.BytesRead.Value()
	}
	return b
}
