package memctrl

import (
	"attache/internal/dram"
	"attache/internal/sim"
)

// The ECC-metadata system (Deb et al., ICCD 2016 — the alternative the
// paper discusses in §VII-A): compression metadata is carried in the
// module's ECC bits, so like BLEM it travels with the data and costs no
// extra requests. The pre-read sub-rank decision, however, comes from a
// simple last-outcome predictor — a table of 1-bit "was the last line in
// this region compressed?" entries — rather than COPR's multi-granularity
// design. Comparing this system against Attaché isolates COPR's
// contribution from BLEM's.
//
// lastOutcome is that predictor: direct-mapped, one bit per line-group.
type lastOutcome struct {
	bits []uint8 // 0 = unknown/uncompressed, 1 = compressed
	mask uint64
}

// lastOutcomeEntries gives the predictor the same storage budget as
// COPR's PaPR+LiPR (368 KB of 1-bit entries ~= 3M entries) so the
// comparison is about structure, not capacity.
const lastOutcomeEntries = 1 << 21

func newLastOutcome() *lastOutcome {
	return &lastOutcome{bits: make([]uint8, lastOutcomeEntries), mask: lastOutcomeEntries - 1}
}

func (l *lastOutcome) index(lineAddr uint64) uint64 {
	return (lineAddr * 0x9E3779B97F4A7C15 >> 20) & l.mask
}

func (l *lastOutcome) predict(lineAddr uint64) bool {
	return l.bits[l.index(lineAddr)] != 0
}

func (l *lastOutcome) update(lineAddr uint64, compressed bool) {
	v := uint8(0)
	if compressed {
		v = 1
	}
	l.bits[l.index(lineAddr)] = v
}

func (s *System) readECC(lineAddr uint64, done func(sim.Time)) {
	// Same lookup latency as COPR / the metadata cache.
	s.eng.ScheduleAfter(s.cfg.Attache.PredictorLatency, func(sim.Time) {
		s.issueECCRead(lineAddr, done)
	})
}

func (s *System) issueECCRead(lineAddr uint64, done func(sim.Time)) {
	loc := s.mapper.Decode(lineAddr)
	actual := s.compressed(lineAddr)
	predicted := s.lastOut.predict(lineAddr)
	s.Stats.CompressedReads.Observe(actual)
	s.Stats.DataReads.Inc()

	complete := func(now sim.Time) {
		s.Stats.ECCPrediction.Observe(predicted == actual)
		s.lastOut.update(lineAddr, actual)
		done(now)
	}

	if predicted {
		s.submit(&dram.Request{Loc: loc, SubRanks: subRankFor(loc), Done: func(now sim.Time) {
			if actual {
				complete(now)
				return
			}
			// ECC metadata arrived with the half-line and revealed the
			// truth: fetch the rest. No Replacement Area exists here —
			// the ECC bits are the metadata store.
			s.Stats.CorrectionReads.Inc()
			other := dram.SubRank0
			if subRankFor(loc) == dram.SubRank0 {
				other = dram.SubRank1
			}
			s.submit(&dram.Request{Loc: loc, SubRanks: other, Done: complete})
		}})
		return
	}
	s.submit(&dram.Request{Loc: loc, SubRanks: dram.SubRankBoth, Done: complete})
}

func (s *System) writeECC(lineAddr uint64) {
	s.Stats.DataWrites.Inc()
	loc := s.mapper.Decode(lineAddr)
	actual := s.compressed(lineAddr)
	s.lastOut.update(lineAddr, actual)
	mask := dram.SubRankBoth
	if actual {
		mask = subRankFor(loc)
	}
	s.submit(&dram.Request{Write: true, Loc: loc, SubRanks: mask})
}
